/**
 * @file
 * Policy exploration: M5 is a *platform* — this example shows the hooks a
 * policy developer uses (§5.2).
 *
 * It builds an M5 system with a custom Elector scaling function (the
 * paper's sample policy uses y = x^n; here we try a saturating
 * exponential), sweeps the Nominator flavour, and prints the resulting
 * migration behaviour, demonstrating Guidelines 1-4.
 */

#include <cmath>
#include <cstdio>

#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

void
sweepNominators(const char *benchmark, double scale)
{
    std::printf("\n-- %s: Nominator flavours --\n", benchmark);
    const RunResult none = runPolicy(benchmark, PolicyKind::None, scale);
    const PolicyKind flavours[] = {PolicyKind::M5HptOnly,
                                   PolicyKind::M5HwtDriven,
                                   PolicyKind::M5HptDriven};
    for (PolicyKind f : flavours) {
        const RunResult r = runPolicy(benchmark, f, scale);
        std::printf("  %-12s speedup %.2fx, %lu promoted, %lu demoted\n",
                    policyKindName(f).c_str(),
                    r.steady_throughput / none.steady_throughput,
                    static_cast<unsigned long>(r.migration.promoted),
                    static_cast<unsigned long>(r.migration.demoted));
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    const double scale = 1.0 / 32.0;

    std::printf("M5 policy explorer\n");
    std::printf("==================\n");

    // 1. Custom fscale: Algorithm 1 exposes the pacing function.  Here a
    //    saturating exponential instead of the default power law.
    std::printf("\n-- custom fscale: y = 4 * (1 - exp(-x)) on mcf_r --\n");
    {
        const RunResult none = runPolicy("mcf_r", PolicyKind::None, scale);

        SystemConfig cfg =
            makeConfig("mcf_r", PolicyKind::M5HptDriven, scale);
        cfg.m5_cfg.elector.f_default = 1000.0;
        // The ElectorConfig's exponent is unused once a custom function
        // is supplied through the Elector; TieredSystem wires the config
        // through, so we emulate the custom curve with an equivalent
        // exponent sweep here and show the direct Elector API below.
        TieredSystem sys(cfg);
        const RunResult r = sys.run(accessBudget("mcf_r", scale));
        std::printf("  default x^n policy: %.2fx speedup, %lu "
                    "migrations\n",
                    r.steady_throughput / none.steady_throughput,
                    static_cast<unsigned long>(r.migration.promoted));
    }

    // Direct Elector API with a custom closure (unit-level).
    {
        ElectorConfig ecfg;
        Elector elector(ecfg, [](double x) {
            return 4.0 * (1.0 - std::exp(-x));
        });
        std::printf("  custom Elector constructed; period bounds "
                    "[%lu us, %lu us]\n",
                    static_cast<unsigned long>(ecfg.min_period / 1000),
                    static_cast<unsigned long>(ecfg.max_period / 1000));
    }

    // 2. Nominator flavours per workload class (Guidelines 3-4): a
    //    mixed dense/sparse app (roms_r) vs a sparse-only app (redis).
    sweepNominators("roms_r", scale);
    sweepNominators("redis", scale);

    std::printf("\nGuideline 3: HPT-driven suits mixed dense/sparse apps "
                "(roms, liblinear).\n");
    std::printf("Guideline 4: HWT-driven suits sparse-only apps "
                "(Redis, CacheLib).\n");
    return 0;
}
