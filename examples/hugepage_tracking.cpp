/**
 * @file
 * Hot huge-page tracking — the §8 extension.
 *
 * Applications backed by 2MB huge pages need migration decisions at 2MB
 * granularity.  This example demonstrates both routes the paper
 * proposes:
 *   1. aggregate HPT's hot 4KB PFNs into their enclosing 2MB regions
 *      (HugePageAggregator), with an OS filter for regions that really
 *      are allocated huge pages;
 *   2. run a second HPT keyed directly by 2MB frame numbers.
 * It then compares what the two report on a skewed workload.
 */

#include <cstdio>
#include <unordered_set>

#include "cxl/hpt.hh"
#include "m5/hugepage.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    const double scale = 1.0 / 32.0;
    std::printf("Hot huge-page tracking (Sec 8 extension), roms_r\n\n");

    // Run the workload over CXL with an HPT, collecting 4KB hot pages.
    SystemConfig cfg =
        makeConfig("roms_r", PolicyKind::M5HptOnly, scale);
    cfg.record_only = true;
    TieredSystem sys(cfg);

    // Route 2 runs alongside: a 2MB-granularity HPT fed by the same
    // access stream through a memory-system observer.
    TrackerConfig huge_cfg;
    huge_cfg.entries = 8 * 1024;
    huge_cfg.k = 8;
    HptUnit huge_hpt(huge_cfg);
    sys.memory().attachObserver(kNodeCxl, [&](Addr pa, bool, Tick) {
        // Key by 2MB frame: PA[47:21].
        huge_hpt.observe(pa >> 9); // pfnOf(pa>>9) == PA >> 21.
    });

    const RunResult r = sys.run(accessBudget("roms_r", scale));

    // Route 1: aggregate the identified 4KB pages.  Pretend the OS says
    // every even-numbered 2MB region is an allocated huge page.
    HugePageAggregator agg(
        [](std::uint64_t frame) { return frame % 2 == 0; });
    std::vector<TopKEntry> hot4k;
    for (Pfn pfn : r.hot_pages)
        hot4k.push_back({pfn, sys.pac().count(pfn)});
    agg.update(hot4k);

    std::printf("route 1 — aggregated from %zu hot 4KB pages "
                "(OS filter: even regions only):\n",
                hot4k.size());
    for (const auto &e : agg.topHugePages(5)) {
        std::printf("  2MB frame %-8lu count %-10lu (%u constituent "
                    "4KB-page buckets)\n",
                    static_cast<unsigned long>(e.tag),
                    static_cast<unsigned long>(e.count),
                    agg.constituentPages(e.tag));
    }

    std::printf("\nroute 2 — dedicated 2MB-granularity HPT:\n");
    const auto huge_top = huge_hpt.queryAndReset();
    for (std::size_t i = 0; i < std::min<std::size_t>(5, huge_top.size());
         ++i) {
        std::printf("  2MB frame %-8lu estimated count %lu\n",
                    static_cast<unsigned long>(huge_top[i].tag),
                    static_cast<unsigned long>(huge_top[i].count));
    }

    // Overlap between the two routes' top regions.
    std::unordered_set<std::uint64_t> route2;
    for (const auto &e : huge_top)
        route2.insert(e.tag);
    std::size_t common = 0;
    for (const auto &e : agg.topHugePages(8))
        common += route2.count(e.tag);
    std::printf("\noverlap of top regions between routes: %zu of 8\n",
                common);
    std::printf("either route gives M5 2MB-granularity candidates; both "
                "must consult the OS before migrating (Sec 8).\n");
    return 0;
}
