/**
 * @file
 * Latency-sensitive tiering: the paper's Redis scenario (§7.2).
 *
 * Redis under YCSB-A has near-uniform page-level access with very sparse
 * pages (Figure 4: <=16 of 64 words touched in 86% of pages).  That makes
 * it the worst case for CPU-driven migration — ANB's hinting faults land
 * in the request path, and DAMON keeps scanning at equilibrium — and the
 * best case for M5's HWT-driven Nominator, which finds the pages whose
 * few words are genuinely hot.
 *
 * This example reproduces the comparison and prints p99 request
 * latencies for each policy.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    const double scale = 1.0 / 32.0;
    std::printf("Redis (YCSB-A) tiering, p99 request latency by "
                "policy\n\n");

    struct Row
    {
        const char *label;
        PolicyKind policy;
    };
    const Row rows[] = {
        {"no migration", PolicyKind::None},
        {"ANB", PolicyKind::Anb},
        {"DAMON", PolicyKind::Damon},
        {"M5 (HWT-driven)", PolicyKind::M5HwtDriven},
    };

    double baseline_p99 = 0.0;
    std::printf("%-18s %10s %10s %12s %10s\n", "policy", "p50 (us)",
                "p99 (us)", "vs baseline", "migrations");
    for (const Row &row : rows) {
        const RunResult r = runPolicy("redis", row.policy, scale);
        if (row.policy == PolicyKind::None)
            baseline_p99 = r.p99_request;
        std::printf("%-18s %10.1f %10.1f %11.2fx %10lu\n", row.label,
                    r.p50_request / 1e3, r.p99_request / 1e3,
                    baseline_p99 / r.p99_request,
                    static_cast<unsigned long>(r.migration.promoted));
        std::fflush(stdout);
    }

    std::printf("\npaper (Figure 9, inverse-p99 metric): ANB 1.08x, "
                "DAMON 0.84x, M5(HWT) ~1.18x\n");
    std::printf("Guideline 4: HWT-driven nomination suits apps with "
                "only sparse hot pages, like Redis.\n");
    return 0;
}
