/**
 * @file
 * Quickstart: build a tiered DDR+CXL system, run a memory-intensive
 * workload under M5, and compare against no migration.
 *
 *   $ ./build/examples/quickstart [benchmark]
 *
 * This touches the three layers of the public API most users need:
 *  1. the benchmark registry (workload models, Table 3 metadata),
 *  2. TieredSystem (the simulated machine + a page-migration policy),
 *  3. RunResult / PAC analysis (what happened, and was it the right
 *     pages?).
 */

#include <cstdio>
#include <string>

#include "analysis/ratio.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "mcf_r";
    const double scale = 1.0 / 32.0; // 1/32 of the paper's footprints.

    std::printf("M5 quickstart: %s at scale 1/32\n", benchmark.c_str());
    const SyntheticParams params = benchmarkParams(benchmark, scale);
    std::printf("  footprint: %zu pages (%.0f MB), DDR cap 3/8 of that\n",
                params.footprint_pages,
                static_cast<double>(params.footprint_pages * kPageBytes) /
                    1048576.0);

    const std::uint64_t budget = accessBudget(benchmark, scale);

    // Baseline: every page lives in CXL DRAM, nothing migrates.
    RunResult baseline = runPolicy(benchmark, PolicyKind::None, scale);

    // M5 with the HPT-driven Nominator (HPT + HWT word masks).
    SystemConfig cfg =
        makeConfig(benchmark, PolicyKind::M5HptDriven, scale);
    TieredSystem sys(cfg);
    RunResult m5 = sys.run(budget);

    std::printf("\n%-22s %15s %15s\n", "", "no migration", "M5(HPT+HWT)");
    std::printf("%-22s %12.2f M/s %12.2f M/s\n", "steady throughput",
                baseline.steady_throughput / 1e6,
                m5.steady_throughput / 1e6);
    std::printf("%-22s %15s %15s\n", "pages promoted", "0",
                std::to_string(m5.migration.promoted).c_str());
    std::printf("%-22s %14.1f%% %14.1f%%\n", "kernel time share",
                100.0 * static_cast<double>(baseline.kernel_time) /
                    static_cast<double>(baseline.runtime),
                100.0 * static_cast<double>(m5.kernel_time) /
                    static_cast<double>(m5.runtime));
    std::printf("\nspeedup over no migration: %.2fx\n",
                m5.steady_throughput / baseline.steady_throughput);

    // How precise is HPT?  Measured the paper's way (§4.1): a record-only
    // run (identification without migration, so PAC's counts stay
    // comparable), scored against PAC's same-size top-K.
    const double ratio =
        recordOnlyAccessRatio(benchmark, PolicyKind::M5HptDriven, scale);
    std::printf("access-count ratio of identified hot pages: %.2f "
                "(1.0 = exactly the hottest)\n", ratio);
    return 0;
}
