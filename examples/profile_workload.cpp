/**
 * @file
 * Offline profiling with PAC and WAC (§3): run a workload with every page
 * in CXL DRAM, then read back exact per-page access counts and per-word
 * sparsity — the methodology behind Figures 3, 4 and 10.
 *
 *   $ ./build/examples/profile_workload [benchmark]
 */

#include <cstdio>
#include <string>

#include "analysis/cdf.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "roms_r";
    const double scale = 1.0 / 32.0;

    std::printf("PAC/WAC profile of %s\n", benchmark.c_str());

    SystemConfig cfg = makeConfig(benchmark, PolicyKind::None, scale);
    cfg.enable_pac = true;
    cfg.enable_wac = true;
    TieredSystem sys(cfg);
    sys.run(accessBudget(benchmark, scale));

    // Page hotness (Figure 10's data).
    const PacUnit &pac = sys.pac();
    std::printf("\npage hotness (PAC, %lu accesses observed):\n",
                static_cast<unsigned long>(pac.totalAccesses()));
    for (double p : {50.0, 90.0, 95.0, 99.0}) {
        std::printf("  p%-4.0f page access count: %.0f\n", p,
                    accessCountPercentile(pac, p));
    }
    const double p50 = accessCountPercentile(pac, 50);
    std::printf("  skew p99/p50 = %.1fx (roms_r in the paper: 17x)\n",
                accessCountPercentile(pac, 99) / p50);

    std::printf("\nhottest pages (PAC top-5):\n");
    for (const auto &e : pac.topK(5)) {
        std::printf("  pfn %-10lu %lu accesses\n",
                    static_cast<unsigned long>(e.tag),
                    static_cast<unsigned long>(e.count));
    }

    // Word sparsity (Figure 4's data).
    const auto cdf = sparsityCdf(sys.wac(), 96);
    std::printf("\nword sparsity (WAC, well-sampled pages):\n");
    const unsigned thresholds[] = {4, 8, 16, 32, 48};
    for (std::size_t i = 0; i < 5; ++i) {
        std::printf("  P(<= %2u of 64 words touched) = %.2f\n",
                    thresholds[i], cdf[i]);
    }
    std::printf("\nsparse pages waste fast-memory capacity and pollute "
                "the cache when migrated whole (§4.1);\n"
                "dense pages reward page migration. Compare redis vs "
                "mcf_r.\n");
    return 0;
}
