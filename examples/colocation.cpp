/**
 * @file
 * Colocation: two heterogeneous tenants — a batch job (mcf_r) and a
 * sparse key-value store (memcached) — share one tiered-memory node.
 *
 * The interesting question for a datacenter operator: when a skewed
 * batch tenant and a flat latency-ish tenant compete for the same 3/8
 * DDR budget, does precise (M5) migration spend the fast memory on the
 * pages that matter, compared to a CPU-driven policy?
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

RunResult
runMix(PolicyKind policy, double scale)
{
    SystemConfig cfg = makeConfig("mcf_r", policy, scale, 11);
    cfg.colocated_benchmarks = {"mcf_r", "memcached"};
    TieredSystem sys(cfg);
    return sys.run(6'000'000);
}

} // namespace

int
main()
{
    const double scale = 1.0 / 64.0; // Two tenants: keep each small.
    std::printf("Colocation: mcf_r + memcached sharing one tiered node\n"
                "(DDR budget = 3/8 of the combined footprint)\n\n");

    const RunResult none = runMix(PolicyKind::None, scale);
    std::printf("%-14s %14s %12s %12s %10s\n", "policy", "steady M/s",
                "vs none", "promoted", "kernel%");
    for (PolicyKind policy : {PolicyKind::None, PolicyKind::Anb,
                              PolicyKind::Damon,
                              PolicyKind::M5HptDriven}) {
        const RunResult r = policy == PolicyKind::None
            ? none : runMix(policy, scale);
        std::printf("%-14s %14.2f %11.2fx %12lu %9.1f%%\n",
                    r.policy.c_str(), r.steady_throughput / 1e6,
                    r.steady_throughput / none.steady_throughput,
                    static_cast<unsigned long>(r.migration.promoted),
                    100.0 * static_cast<double>(r.kernel_time) /
                        static_cast<double>(r.runtime));
        std::fflush(stdout);
    }
    std::printf("\nworkload name reported by the system: %s\n",
                none.benchmark.c_str());
    std::printf("the skewed tenant's hot pages should win the DDR "
                "budget; precise policies find them with less churn.\n");
    return 0;
}
