/**
 * @file
 * m5lint internals shared between the per-file rule engine
 * (m5lint_lib.cc) and the project-model layer (m5lint_model.cc,
 * m5lint_project.cc): the comment/string stripper, token helpers, the
 * statement-prefix walker, and the suppression-comment parser.
 *
 * Everything here is an implementation detail — the public surface is
 * m5lint.hh + m5lint_model.hh.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace m5lint {
namespace detail {

/**
 * One source line in three synchronized channels (same length, same
 * column positions):
 *  - raw:      the original text;
 *  - stripped: comments and string/char-literal contents blanked, so
 *              token rules never fire inside them;
 *  - comment:  only comment text preserved (everything else blanked),
 *              so suppression directives are recognized exclusively in
 *              comments — an `allow(...)` inside a string literal is
 *              data, not a suppression.
 */
struct Line
{
    std::string raw;
    std::string stripped;
    std::string comment;
};

/** Split `content` into lines and fill all three channels. */
std::vector<Line> splitAndStrip(const std::string &content);

bool isIdentChar(char c);

/** True when path is `prefix` itself or lives under it. */
bool pathHasPrefix(const std::string &path, const std::string &prefix);

/** True when path is inside top-level directory `dir` (e.g. "src"). */
bool inDir(const std::string &path, const std::string &dir);

bool isHeaderPath(const std::string &path);

/** All positions where `tok` occurs as a whole word. */
std::vector<std::size_t> findTokens(const std::string &s,
                                    const std::string &tok);

/** True when the token at `pos` is reached via `.` or `->` (a member). */
bool isMemberAccess(const std::string &s, std::size_t pos);

/** True when the token ending at `end` is directly called: `tok (`. */
bool followedByParen(const std::string &s, std::size_t end);

/** Word-token call sites (`tok(`), skipping member calls `x.tok(`. */
std::vector<std::size_t> findCalls(const std::string &s,
                                   const std::string &tok);

/** First word token at/after position `i` (skipping spaces/parens). */
std::string wordAt(const std::string &s, std::size_t i);

/** True when the stripped line is a preprocessor directive. */
bool isPreprocessor(const std::string &stripped);

/**
 * The statement prefix of the token at (line `li`, column `pos`):
 * text from the last `;`/`{`/`}` before the token up to the token,
 * accumulated across up to four previous lines for continuations,
 * with `->` normalized to `.` and leading whitespace trimmed.
 */
std::string statementPrefix(const std::vector<Line> &lines, std::size_t li,
                            std::size_t pos);

/** Classification of a statement prefix for discard analysis. */
struct PrefixKind
{
    bool bare = false;        //!< only idents/scopes/member dots precede
    bool void_cast = false;   //!< starts with (void) — deliberate discard
    bool returned = false;    //!< return / co_return statement
};
PrefixKind classifyPrefix(const std::string &norm);

/** Suppression rule ids named by `// m5lint: allow(a, b)` in a comment
 *  channel line (raw ids, unvalidated; `*` allows everything). */
std::vector<std::string> lineSuppressions(const std::string &comment);

/** A counter-shaped member declaration: `std::uint64_t <name>_ = 0;`
 *  with a stat-flavoured name (see docs/LINT.md, no-untracked-stat). */
struct StatMember
{
    int line;          //!< 1-based declaration line
    std::string name;  //!< member identifier, e.g. "hits_"
};

/** All counter-shaped members declared in `lines`. */
std::vector<StatMember> statShapedMembers(const std::vector<Line> &lines);

} // namespace detail

struct Diag;

namespace detail {

/** Run every per-file rule over pre-lexed lines; no suppression applied
 *  (the caller filters, so project mode can track which suppressions
 *  actually fire — the stale-suppression rule needs that). */
std::vector<Diag> rawLintSource(const std::string &path,
                                const std::vector<Line> &lines);

} // namespace detail
} // namespace m5lint
