/**
 * @file
 * m5prof — inspect and compare host-time profiles (docs/PROFILING.md).
 *
 *   m5prof report FILE [--top N] [--calls-only]
 *   m5prof top    FILE [--n N] [--json]
 *   m5prof diff   A B  [--top N]
 *
 * FILE is a `.prof.json` written by `m5sim --profile` (or a sweep run
 * under M5_BENCH_PROF).  `report` prints the per-component rollup
 * sorted by self time; with --calls-only it prints only the
 * deterministic columns (path and call count), which rerun-identical
 * profiles must reproduce byte-for-byte.  `top` emits the N hottest
 * components by self time — `--json` shapes them for embedding in
 * BENCH_runner.json (tools/bench_wallclock.sh).  `diff` is the
 * perf-regression explainer: it joins two profiles by scope path and
 * prints the components whose self time moved the most, normalized to
 * each run's attributed wall time; tools/perf_gate.sh runs it when the
 * throughput gate fails.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"

using namespace m5;

namespace {

struct ProfRow
{
    std::string path;
    std::uint64_t depth = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t calls = 0;
};

struct ProfFile
{
    std::uint64_t wall_ns = 0;
    std::vector<ProfRow> rows; //!< In the file's depth-first order.
};

const char *
findArg(int argc, char **argv, const char *name)
{
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

std::uint64_t
argU64(const char *flag, const char *value)
{
    const auto v = parseU64(value);
    if (!v)
        m5_fatal("%s wants a non-negative integer, got '%s'", flag, value);
    return *v;
}

/** Value of `"key": <digits>` in `line`; fatal when absent. */
std::uint64_t
jsonU64(const std::string &line, const char *key, const char *path)
{
    const std::string needle = std::string("\"") + key + "\": ";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        m5_fatal("%s: missing field '%s' in line: %s", path, key,
                 line.c_str());
    std::size_t end = pos + needle.size();
    while (end < line.size() && line[end] >= '0' && line[end] <= '9')
        ++end;
    const auto v = parseU64(
        line.substr(pos + needle.size(), end - pos - needle.size()));
    if (!v)
        m5_fatal("%s: bad value for '%s' in line: %s", path, key,
                 line.c_str());
    return *v;
}

/** Value of `"key": "<string>"` in `line`; fatal when absent. */
std::string
jsonString(const std::string &line, const char *key, const char *path)
{
    const std::string needle = std::string("\"") + key + "\": \"";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        m5_fatal("%s: missing field '%s' in line: %s", path, key,
                 line.c_str());
    const auto start = pos + needle.size();
    const auto end = line.find('"', start);
    if (end == std::string::npos)
        m5_fatal("%s: unterminated string for '%s'", path, key);
    return line.substr(start, end - start);
}

/** Load a .prof.json (the pinned one-node-per-line shape written by
 *  Profiler::exportJson; anything else is fatal, not guessed at). */
ProfFile
load(const char *path)
{
    std::ifstream in(path);
    if (!in)
        m5_fatal("cannot open profile '%s'", path);
    ProfFile pf;
    bool saw_wall = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"wall_ns\":") != std::string::npos) {
            pf.wall_ns = jsonU64(line, "wall_ns", path);
            saw_wall = true;
        } else if (line.find("\"path\":") != std::string::npos) {
            ProfRow r;
            r.path = jsonString(line, "path", path);
            r.depth = jsonU64(line, "depth", path);
            r.self_ns = jsonU64(line, "self_ns", path);
            r.total_ns = jsonU64(line, "total_ns", path);
            r.calls = jsonU64(line, "calls", path);
            pf.rows.push_back(std::move(r));
        }
    }
    if (!saw_wall)
        m5_fatal("'%s' is not a .prof.json (no wall_ns field)", path);
    return pf;
}

/** Rows sorted by self time descending, path ascending on ties — the
 *  same order Profiler::rollup uses. */
std::vector<ProfRow>
bySelf(const ProfFile &pf)
{
    std::vector<ProfRow> rows = pf.rows;
    std::sort(rows.begin(), rows.end(),
              [](const ProfRow &a, const ProfRow &b) {
                  if (a.self_ns != b.self_ns)
                      return a.self_ns > b.self_ns;
                  return a.path < b.path;
              });
    return rows;
}

double
pctOf(std::uint64_t part, std::uint64_t whole)
{
    return 100.0 * static_cast<double>(part) /
           static_cast<double>(std::max<std::uint64_t>(1, whole));
}

int
cmdReport(int argc, char **argv)
{
    if (argc < 3)
        m5_fatal("usage: m5prof report FILE [--top N] [--calls-only]");
    const char *path = argv[2];
    const ProfFile pf = load(path);
    if (hasFlag(argc, argv, "--calls-only")) {
        // Only the deterministic columns, in the file's depth-first
        // order: two profiles of the same run must print identically
        // even though their host nanoseconds differ (check.sh pins
        // this in its profile stage).
        for (const ProfRow &r : pf.rows)
            std::printf("%s %lu\n", r.path.c_str(),
                        static_cast<unsigned long>(r.calls));
        return 0;
    }
    std::size_t top = pf.rows.size();
    if (const char *n = findArg(argc, argv, "--top"))
        top = argU64("--top", n);
    std::printf("%s: %zu scopes, %.2f ms attributed\n", path,
                pf.rows.size(), static_cast<double>(pf.wall_ns) / 1e6);
    std::printf("%-52s %12s %6s %12s %10s\n", "path", "self_ms", "self%",
                "total_ms", "calls");
    const std::vector<ProfRow> rows = bySelf(pf);
    for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
        const ProfRow &r = rows[i];
        std::printf("%-52s %12.3f %6.1f %12.3f %10lu\n", r.path.c_str(),
                    static_cast<double>(r.self_ns) / 1e6,
                    pctOf(r.self_ns, pf.wall_ns),
                    static_cast<double>(r.total_ns) / 1e6,
                    static_cast<unsigned long>(r.calls));
    }
    return 0;
}

int
cmdTop(int argc, char **argv)
{
    if (argc < 3)
        m5_fatal("usage: m5prof top FILE [--n N] [--json]");
    const ProfFile pf = load(argv[2]);
    std::size_t n = 5;
    if (const char *v = findArg(argc, argv, "--n"))
        n = argU64("--n", v);
    const std::vector<ProfRow> rows = bySelf(pf);
    const std::size_t count = std::min(n, rows.size());
    if (hasFlag(argc, argv, "--json")) {
        // One line, ready to splice into BENCH_runner.json as the
        // value of "profile_top" (tools/bench_wallclock.sh).
        std::printf("[");
        for (std::size_t i = 0; i < count; ++i) {
            std::printf("%s{\"name\": \"%s\", \"self_pct\": %.1f}",
                        i ? ", " : "", rows[i].path.c_str(),
                        pctOf(rows[i].self_ns, pf.wall_ns));
        }
        std::printf("]\n");
        return 0;
    }
    for (std::size_t i = 0; i < count; ++i)
        std::printf("%-52s %5.1f%%\n", rows[i].path.c_str(),
                    pctOf(rows[i].self_ns, pf.wall_ns));
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    if (argc < 4)
        m5_fatal("usage: m5prof diff A B [--top N]");
    const char *path_a = argv[2];
    const char *path_b = argv[3];
    const ProfFile a = load(path_a);
    const ProfFile b = load(path_b);
    std::size_t top = 10;
    if (const char *n = findArg(argc, argv, "--top"))
        top = argU64("--top", n);

    // Join by scope path.  Self percentages are normalized to each
    // run's own attributed wall time, so the diff explains a *shift in
    // where the time goes* even when the two runs' absolute wall times
    // differ (the usual case for a perf regression).
    struct Delta
    {
        std::string path;
        double self_ms_a = 0.0;
        double self_ms_b = 0.0;
        double pct_a = 0.0;
        double pct_b = 0.0;
    };
    std::vector<Delta> deltas;
    for (const ProfRow &ra : a.rows) {
        Delta d;
        d.path = ra.path;
        d.self_ms_a = static_cast<double>(ra.self_ns) / 1e6;
        d.pct_a = pctOf(ra.self_ns, a.wall_ns);
        deltas.push_back(std::move(d));
    }
    for (const ProfRow &rb : b.rows) {
        auto it = std::find_if(deltas.begin(), deltas.end(),
                               [&](const Delta &d) {
                                   return d.path == rb.path;
                               });
        if (it == deltas.end()) {
            Delta d;
            d.path = rb.path;
            deltas.push_back(std::move(d));
            it = deltas.end() - 1;
        }
        it->self_ms_b = static_cast<double>(rb.self_ns) / 1e6;
        it->pct_b = pctOf(rb.self_ns, b.wall_ns);
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const Delta &x, const Delta &y) {
                  const double dx = std::abs(x.self_ms_b - x.self_ms_a);
                  const double dy = std::abs(y.self_ms_b - y.self_ms_a);
                  if (dx != dy)
                      return dx > dy;
                  return x.path < y.path;
              });

    std::printf("profile diff: %s (%.2f ms) -> %s (%.2f ms)\n", path_a,
                static_cast<double>(a.wall_ns) / 1e6, path_b,
                static_cast<double>(b.wall_ns) / 1e6);
    std::printf("%-52s %10s %10s %9s %7s\n", "path", "a_self_ms",
                "b_self_ms", "delta_ms", "d_pct");
    for (std::size_t i = 0; i < deltas.size() && i < top; ++i) {
        const Delta &d = deltas[i];
        std::printf("%-52s %10.3f %10.3f %+9.3f %+6.1fpp\n",
                    d.path.c_str(), d.self_ms_a, d.self_ms_b,
                    d.self_ms_b - d.self_ms_a, d.pct_b - d.pct_a);
    }
    return 0;
}

void
usage()
{
    std::printf(
        "usage: m5prof <verb> ...\n"
        "  report FILE [--top N] [--calls-only]   per-component rollup\n"
        "  top    FILE [--n N] [--json]           hottest components\n"
        "  diff   A B  [--top N]                  regression explainer\n"
        "FILE is a .prof.json from `m5sim --profile` "
        "(docs/PROFILING.md)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string verb = argv[1];
    if (verb == "report")
        return cmdReport(argc, argv);
    if (verb == "top")
        return cmdTop(argc, argv);
    if (verb == "diff")
        return cmdDiff(argc, argv);
    if (verb == "--help" || verb == "-h") {
        usage();
        return 0;
    }
    usage();
    m5_fatal("unknown verb '%s'", verb.c_str());
}
