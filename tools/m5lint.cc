/**
 * @file
 * m5lint command-line driver.
 *
 * Usage: m5lint [options] <dir-or-file>...
 *
 * Scans the given roots for C++ sources and reports repo-rule
 * violations as `file:line: rule-id: message`, one per line, exiting 1
 * when anything fires (2 on usage errors).  Run it from the repo root
 * so the directory-scoped rules (src/, bench/, ...) resolve:
 *
 *     build/tools/m5lint src bench tests tools
 *
 * See docs/LINT.md for the rule catalogue and suppression syntax.
 */

#include "m5lint.hh"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: m5lint [options] <dir-or-file>...\n"
                 "\n"
                 "options:\n"
                 "  --allowlist FILE         load suppressions from FILE\n"
                 "                           (default: tools/m5lint.allow"
                 " when present)\n"
                 "  --no-default-allowlist   skip the default allowlist\n"
                 "  --list-rules             print rule ids and exit\n"
                 "  -h, --help               this message\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string allow_path;
    bool use_default_allow = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--list-rules") {
            for (const auto &r : m5lint::allRules())
                std::printf("%s\n", r.c_str());
            return 0;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "m5lint: --allowlist needs a file\n");
                return 2;
            }
            allow_path = argv[++i];
        } else if (arg == "--no-default-allowlist") {
            use_default_allow = false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "m5lint: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        usage(stderr);
        return 2;
    }

    if (allow_path.empty() && use_default_allow &&
        std::filesystem::exists("tools/m5lint.allow"))
        allow_path = "tools/m5lint.allow";

    m5lint::Config cfg;
    if (!allow_path.empty()) {
        std::vector<std::string> errors;
        cfg = m5lint::loadAllowFile(allow_path, &errors);
        for (const auto &e : errors)
            std::fprintf(stderr, "m5lint: %s\n", e.c_str());
        if (!errors.empty())
            return 2;
    }

    const std::vector<std::string> files = m5lint::collectFiles(roots);
    if (files.empty()) {
        std::fprintf(stderr, "m5lint: no lintable files under given roots\n");
        return 2;
    }

    std::size_t n_diags = 0, n_files_bad = 0;
    for (const auto &f : files) {
        const auto diags = m5lint::lintFile(f, cfg);
        if (!diags.empty())
            ++n_files_bad;
        for (const auto &d : diags) {
            std::printf("%s\n", d.str().c_str());
            ++n_diags;
        }
    }
    std::fprintf(stderr, "m5lint: %zu issue(s) in %zu of %zu file(s)\n",
                 n_diags, n_files_bad, files.size());
    return n_diags == 0 ? 0 : 1;
}
