/**
 * @file
 * m5lint command-line driver.
 *
 * Usage: m5lint [options] <dir-or-file>...
 *
 * Scans the given roots for C++ sources, builds the project model
 * (include graph, symbol index, call graph), runs the per-file and
 * cross-file rules, and reports violations as
 * `file:line: rule-id: message`, one per line, exiting 1 when anything
 * fires (2 on usage errors).  Run it from the repo root so the
 * directory-scoped rules and the layers spec resolve:
 *
 *     build/tools/m5lint src bench tests tools
 *
 * See docs/LINT.md for the rule catalogue, the module DAG, and
 * suppression syntax.
 */

#include "m5lint.hh"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: m5lint [options] <dir-or-file>...\n"
                 "\n"
                 "options:\n"
                 "  --allowlist FILE         load suppressions from FILE\n"
                 "                           (default: tools/m5lint.allow"
                 " when present)\n"
                 "  --no-default-allowlist   skip the default allowlist\n"
                 "  --layers FILE            module-DAG spec for the\n"
                 "                           layering rule (default:\n"
                 "                           tools/m5lint.layers when"
                 " present)\n"
                 "  --no-default-layers      skip the default layers spec\n"
                 "  --sarif FILE             also write diagnostics as\n"
                 "                           SARIF 2.1.0 to FILE\n"
                 "  --jobs N                 lexing worker threads\n"
                 "                           (default: one per hw thread)\n"
                 "  --no-stale               skip the stale-suppression\n"
                 "                           audit (use on partial scans)\n"
                 "  --list-rules             print rule ids and exit\n"
                 "  -h, --help               this message\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string allow_path, layers_path, sarif_path;
    bool use_default_allow = true, use_default_layers = true;
    m5lint::ProjectOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--list-rules") {
            for (const auto &r : m5lint::allRules())
                std::printf("%-38s %s\n", r.c_str(),
                            m5lint::ruleHelp(r).c_str());
            return 0;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "m5lint: --allowlist needs a file\n");
                return 2;
            }
            allow_path = argv[++i];
        } else if (arg == "--no-default-allowlist") {
            use_default_allow = false;
        } else if (arg == "--layers") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "m5lint: --layers needs a file\n");
                return 2;
            }
            layers_path = argv[++i];
        } else if (arg == "--no-default-layers") {
            use_default_layers = false;
        } else if (arg == "--sarif") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "m5lint: --sarif needs a file\n");
                return 2;
            }
            sarif_path = argv[++i];
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "m5lint: --jobs needs a count\n");
                return 2;
            }
            const std::string v = argv[++i];
            const auto end = v.data() + v.size();
            const auto res = std::from_chars(v.data(), end, opts.jobs);
            if (res.ec != std::errc{} || res.ptr != end)
                opts.jobs = 0;
            if (opts.jobs < 1) {
                std::fprintf(stderr, "m5lint: --jobs must be >= 1\n");
                return 2;
            }
        } else if (arg == "--no-stale") {
            opts.stale_check = false;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "m5lint: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty()) {
        usage(stderr);
        return 2;
    }

    if (allow_path.empty() && use_default_allow &&
        std::filesystem::exists("tools/m5lint.allow"))
        allow_path = "tools/m5lint.allow";
    if (layers_path.empty() && use_default_layers &&
        std::filesystem::exists("tools/m5lint.layers"))
        layers_path = "tools/m5lint.layers";

    m5lint::Config cfg;
    if (!allow_path.empty()) {
        std::vector<std::string> errors;
        cfg = m5lint::loadAllowFile(allow_path, &errors);
        for (const auto &e : errors)
            std::fprintf(stderr, "m5lint: %s\n", e.c_str());
        if (!errors.empty())
            return 2;
    }

    m5lint::LayersFile layers;
    bool have_layers = false;
    if (!layers_path.empty()) {
        std::vector<std::string> errors;
        layers = m5lint::loadLayersFile(layers_path, &errors);
        for (const auto &e : errors)
            std::fprintf(stderr, "m5lint: %s\n", e.c_str());
        if (!errors.empty())
            return 2;
        have_layers = true;
    }

    const std::vector<std::string> files = m5lint::collectFiles(roots);
    if (files.empty()) {
        std::fprintf(stderr, "m5lint: no lintable files under given roots\n");
        return 2;
    }

    // steady_clock: interval only, never a timestamp (no-wallclock
    // allows it).
    const auto t0 = std::chrono::steady_clock::now();
    m5lint::ProjectModel model;
    const auto diags = m5lint::lintProject(
        files, cfg, have_layers ? &layers : nullptr, opts, &model);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    std::size_t n_stale = 0;
    std::vector<std::string> bad_files;
    for (const auto &d : diags) {
        std::printf("%s\n", d.str().c_str());
        if (d.rule == "stale-suppression")
            ++n_stale;
        if (bad_files.empty() || bad_files.back() != d.file)
            bad_files.push_back(d.file);
    }

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "m5lint: cannot write SARIF to '%s'\n",
                         sarif_path.c_str());
            return 2;
        }
        out << m5lint::sarifReport(diags);
    }

    std::size_t n_edges = 0, n_funcs = 0;
    for (const auto &fm : model.files) {
        n_edges += fm.includes.size();
        n_funcs += fm.functions.size();
    }
    std::fprintf(stderr,
                 "m5lint: %zu issue(s) (%zu stale) in %zu of %zu file(s); "
                 "%zu include edge(s), %zu function(s); %.0f ms\n",
                 diags.size(), n_stale, bad_files.size(), files.size(),
                 n_edges, n_funcs, ms);
    return diags.empty() ? 0 : 1;
}
