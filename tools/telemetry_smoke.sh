#!/bin/sh
# Telemetry + trace end-to-end smoke test (docs/TELEMETRY.md,
# docs/TRACING.md):
#
#   1. run m5sim with --telemetry and check the stream is valid JSONL
#      whose key counters actually moved;
#   2. check the final epoch's counters equal the end-of-run rollup
#      table m5sim prints (including the p50/p90/p99 histogram columns);
#   3. rerun with the same seed and require byte-identical telemetry
#      AND trace files (the repo's determinism guarantee,
#      docs/RUNNER.md);
#   4. check the --trace output is valid Chrome trace_event JSON with
#      ph/ts/name on every event, and that the event count grows with
#      the workload.
#
# Usage: tools/telemetry_smoke.sh [build-dir]   (default: build)
# Set M5_SMOKE_KEEP_DIR=<dir> to write artifacts there and keep them
# for inspection (CI uploads the directory on failure).
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
M5SIM="$BUILD/tools/m5sim"
[ -x "$M5SIM" ] || { echo "telemetry_smoke: $M5SIM not built" >&2; exit 2; }

if [ -n "${M5_SMOKE_KEEP_DIR:-}" ]; then
    OUT="$M5_SMOKE_KEEP_DIR"
    mkdir -p "$OUT"
    echo "telemetry_smoke: keeping artifacts in $OUT" >&2
else
    OUT="$(mktemp -d)"
    trap 'rm -rf "$OUT"' EXIT
fi

run() {
    "$M5SIM" --bench mcf_r --policy m5 --scale 64 --seed 7 \
             --accesses "$2" --telemetry "$1.jsonl" --trace "$1.trace.json"
}

run "$OUT/a" 200000 > "$OUT/report_a.txt"
run "$OUT/b" 200000 > /dev/null
run "$OUT/small" 50000 > /dev/null

cmp -s "$OUT/a.jsonl" "$OUT/b.jsonl" || {
    echo "telemetry_smoke: FAIL: identical seeded runs produced" \
         "different telemetry streams" >&2
    exit 1
}
cmp -s "$OUT/a.trace.json" "$OUT/b.trace.json" || {
    echo "telemetry_smoke: FAIL: identical seeded runs produced" \
         "different trace files" >&2
    exit 1
}

python3 - "$OUT/a.jsonl" "$OUT/report_a.txt" <<'EOF'
import json
import sys

jsonl, report = sys.argv[1], sys.argv[2]

lines = [json.loads(line) for line in open(jsonl)]
assert lines, "telemetry stream is empty"
assert [l["epoch"] for l in lines] == sorted(l["epoch"] for l in lines), \
    "epoch indices are not monotonic"

final = lines[-1]["stats"]
for key in ("sim.core.app_time", "mem.ddr.accesses", "mem.cxl.accesses",
            "cache.llc.misses", "os.migration.pages_promoted",
            "telemetry.trace.emitted"):
    assert key in final, f"missing stat {key}"
    assert int(final[key]) > 0, f"stat {key} never moved (still 0)"

# Histogram stats carry percentile fields that agree with the stream.
hists = {k: v for k, v in final.items() if isinstance(v, dict)}
assert hists, "no histogram stats in the final epoch"
for name, h in hists.items():
    for p in ("p50", "p90", "p99"):
        assert p in h, f"histogram {name} lacks {p}"

# The rollup table m5sim appends must match the final JSONL line.  The
# table starts after the "telemetry: N epochs -> path" report line with
# a "stat value p50 p90 p99" header and a dashed separator; the value
# cell never contains spaces (compact JSON), so a plain split works.
rollup = {}
pcts = {}
in_rollup = False
for line in open(report):
    if line.startswith("telemetry:"):
        in_rollup = True
        continue
    if not in_rollup or line.startswith("-"):
        continue
    fields = line.split()
    if len(fields) < 2 or fields[0] == "stat":
        continue
    rollup[fields[0]] = json.loads(fields[1])
    if len(fields) >= 5:
        pcts[fields[0]] = fields[2:5]

assert rollup, "no telemetry rollup section in the m5sim report"
for name, value in final.items():
    assert name in rollup, f"rollup is missing stat {name}"
    assert rollup[name] == value, \
        f"rollup mismatch for {name}: stream={value!r} table={rollup[name]!r}"
for name, h in hists.items():
    want = [str(h["p50"]), str(h["p90"]), str(h["p99"])]
    assert pcts.get(name) == want, \
        f"percentile columns for {name}: table={pcts.get(name)} want={want}"

print(f"telemetry_smoke: OK ({len(lines)} epochs, {len(final)} stats, "
      f"{len(hists)} histograms, rollup matches final epoch)")
EOF

python3 - "$OUT/a.trace.json" "$OUT/small.trace.json" <<'EOF'
import json
import sys

big_path, small_path = sys.argv[1], sys.argv[2]

def load(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert events, f"{path}: no trace events"
    for ev in events:
        assert "ph" in ev and "name" in ev, f"{path}: event lacks ph/name"
        if ev["ph"] != "M":          # metadata records carry no timestamp
            assert "ts" in ev, f"{path}: event lacks ts"
            assert float(ev["ts"]) >= 0
        if ev["ph"] == "i":
            assert ev.get("s") == "t", f"{path}: instant lacks scope"
    phases = {ev["ph"] for ev in events}
    assert "X" in phases, f"{path}: no duration spans"
    assert "i" in phases, f"{path}: no instant events"
    names = {ev["name"] for ev in events}
    for want in ("epoch", "monitor.sample", "nominator.nominate",
                 "elector.decision", "migration.promote"):
        assert want in names, f"{path}: missing event {want}"
    return [ev for ev in events if ev["ph"] != "M"]

big = load(big_path)
small = load(small_path)
assert len(big) > len(small), \
    f"event count does not grow with workload ({len(big)} vs {len(small)})"
print(f"trace_smoke: OK ({len(big)} events, valid Chrome trace JSON, "
      f"count scales with workload)")
EOF
