#!/bin/sh
# Telemetry end-to-end smoke test (docs/TELEMETRY.md):
#
#   1. run m5sim with --telemetry and check the stream is valid JSONL
#      whose key counters actually moved;
#   2. check the final epoch's counters equal the end-of-run rollup
#      table m5sim prints;
#   3. rerun with the same seed and require a byte-identical stream
#      (the repo's determinism guarantee, docs/RUNNER.md).
#
# Usage: tools/telemetry_smoke.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
M5SIM="$BUILD/tools/m5sim"
[ -x "$M5SIM" ] || { echo "telemetry_smoke: $M5SIM not built" >&2; exit 2; }

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

run() {
    "$M5SIM" --bench mcf_r --policy m5 --scale 64 --seed 7 \
             --accesses 200000 --telemetry "$1"
}

run "$OUT/a.jsonl" > "$OUT/report_a.txt"
run "$OUT/b.jsonl" > /dev/null

cmp -s "$OUT/a.jsonl" "$OUT/b.jsonl" || {
    echo "telemetry_smoke: FAIL: identical seeded runs produced" \
         "different telemetry streams" >&2
    exit 1
}

python3 - "$OUT/a.jsonl" "$OUT/report_a.txt" <<'EOF'
import json
import sys

jsonl, report = sys.argv[1], sys.argv[2]

lines = [json.loads(line) for line in open(jsonl)]
assert lines, "telemetry stream is empty"
assert [l["epoch"] for l in lines] == sorted(l["epoch"] for l in lines), \
    "epoch indices are not monotonic"

final = lines[-1]["stats"]
for key in ("sim.core.app_time", "mem.ddr.accesses", "mem.cxl.accesses",
            "cache.llc.misses", "os.migration.pages_promoted"):
    assert key in final, f"missing stat {key}"
    assert int(final[key]) > 0, f"stat {key} never moved (still 0)"

# The rollup table m5sim appends must match the final JSONL line.
# The table starts after the "telemetry: N epochs -> path" report line
# and has a "stat value" header row.
rollup = {}
in_rollup = False
for line in open(report):
    if line.startswith("telemetry:"):
        in_rollup = True
        continue
    if not in_rollup:
        continue
    parts = line.split(None, 1)
    if len(parts) != 2 or parts[0] == "stat":
        continue
    rollup[parts[0]] = json.loads(parts[1].strip())

assert rollup, "no telemetry rollup section in the m5sim report"
for name, value in final.items():
    assert name in rollup, f"rollup is missing stat {name}"
    assert rollup[name] == value, \
        f"rollup mismatch for {name}: stream={value!r} table={rollup[name]!r}"

print(f"telemetry_smoke: OK ({len(lines)} epochs, "
      f"{len(final)} stats, rollup matches final epoch)")
EOF
