/**
 * @file
 * m5lint project-model construction: the layers-spec parser, include
 * extraction, the function/declaration scanner, call-site extraction,
 * and the parallel whole-project build.  See m5lint_model.hh for the
 * contract; the rules that consume the model live in
 * m5lint_project.cc.
 */

#include "m5lint_model.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "m5lint.hh"

namespace m5lint {

using detail::findTokens;
using detail::followedByParen;
using detail::isIdentChar;
using detail::isMemberAccess;
using detail::isPreprocessor;
using detail::Line;
using detail::lineSuppressions;
using detail::pathHasPrefix;
using detail::wordAt;

// ---------------------------------------------------------------------
// Layers spec.
// ---------------------------------------------------------------------

std::string
LayersFile::layerOf(const std::string &file_path) const
{
    // Longest matching prefix wins, so "src/sim/fault" can be its own
    // layer inside "src/sim" if a spec ever wants that.
    std::string best_name;
    std::size_t best_len = 0;
    for (const auto &l : layers) {
        if (pathHasPrefix(file_path, l.prefix) &&
            l.prefix.size() >= best_len) {
            best_len = l.prefix.size();
            best_name = l.name;
        }
    }
    return best_name;
}

bool
LayersFile::allows(const std::string &from, const std::string &to) const
{
    if (from == to)
        return true;
    // BFS over the declared dep edges: allowed = reachable.
    std::vector<std::string> queue = {from};
    std::set<std::string> seen = {from};
    while (!queue.empty()) {
        const std::string cur = queue.back();
        queue.pop_back();
        for (const auto &l : layers) {
            if (l.name != cur)
                continue;
            for (const auto &d : l.deps) {
                if (d == "*" || d == to)
                    return true;
                if (seen.insert(d).second)
                    queue.push_back(d);
            }
        }
    }
    return false;
}

LayersFile
loadLayersFile(const std::string &path, std::vector<std::string> *errors)
{
    LayersFile lf;
    lf.path = path;
    std::ifstream in(path);
    if (!in) {
        if (errors)
            errors->push_back("cannot open layers spec '" + path + "'");
        return lf;
    }
    auto err = [&](int ln, const std::string &msg) {
        if (errors)
            errors->push_back(path + ":" + std::to_string(ln) + ": " + msg);
    };

    std::string line;
    int ln = 0;
    while (std::getline(in, line)) {
        ++ln;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream is(line);
        std::string kw;
        if (!(is >> kw))
            continue;
        if (kw == "layer") {
            LayerSpec spec;
            spec.line = ln;
            std::string tok;
            if (!(is >> spec.name >> spec.prefix)) {
                err(ln, "expected `layer NAME PATH-PREFIX [: DEP ...]`");
                continue;
            }
            bool dup = false;
            for (const auto &l : lf.layers)
                if (l.name == spec.name)
                    dup = true;
            if (dup) {
                err(ln, "duplicate layer name '" + spec.name + "'");
                continue;
            }
            bool colon_seen = false, bad = false;
            while (is >> tok) {
                if (tok == ":") {
                    if (colon_seen)
                        bad = true;
                    colon_seen = true;
                } else if (colon_seen) {
                    spec.deps.push_back(tok);
                } else {
                    bad = true;
                }
            }
            if (bad) {
                err(ln, "expected `layer NAME PATH-PREFIX [: DEP ...]`");
                continue;
            }
            lf.layers.push_back(spec);
        } else if (kw == "except") {
            LayerException ex;
            ex.line = ln;
            std::string arrow;
            if (!(is >> ex.src >> arrow >> ex.dst) || arrow != "->") {
                err(ln, "expected `except SRC-PREFIX -> DST-PREFIX`");
                continue;
            }
            lf.exceptions.push_back(ex);
        } else {
            err(ln, "unknown directive '" + kw + "'");
        }
    }

    // Deps must name declared layers (or "*").
    auto known = [&](const std::string &name) {
        for (const auto &l : lf.layers)
            if (l.name == name)
                return true;
        return false;
    };
    for (auto &l : lf.layers) {
        auto &d = l.deps;
        d.erase(std::remove_if(d.begin(), d.end(),
                               [&](const std::string &dep) {
                                   if (dep == "*" || known(dep))
                                       return false;
                                   err(l.line, "layer '" + l.name +
                                                   "' depends on unknown "
                                                   "layer '" +
                                                   dep + "'");
                                   return true;
                               }),
                d.end());
    }

    // The declared dep graph must itself be a DAG.
    // Colors: 0 = white, 1 = gray (on stack), 2 = black.
    std::map<std::string, int> color;
    std::function<bool(const std::string &)> dfs =
        [&](const std::string &name) -> bool {
        color[name] = 1;
        for (const auto &l : lf.layers) {
            if (l.name != name)
                continue;
            for (const auto &d : l.deps) {
                if (d == "*")
                    continue;
                if (color[d] == 1)
                    return false;
                if (color[d] == 0 && !dfs(d))
                    return false;
            }
        }
        color[name] = 2;
        return true;
    };
    for (const auto &l : lf.layers) {
        if (color[l.name] == 0 && !dfs(l.name)) {
            err(l.line, "cycle in layer dependency graph involving '" +
                            l.name + "'");
            break;
        }
    }
    return lf;
}

// ---------------------------------------------------------------------
// Per-file extraction.
// ---------------------------------------------------------------------

namespace {

/** Parse `#include "target"` from a RAW line (the stripper blanks the
 *  quoted path).  Angle-bracket includes are system headers — not
 *  project edges — and are skipped. */
bool
parseQuotedInclude(const std::string &raw, std::string &target)
{
    std::size_t i = raw.find_first_not_of(" \t");
    if (i == std::string::npos || raw[i] != '#')
        return false;
    ++i;
    i = raw.find_first_not_of(" \t", i);
    if (i == std::string::npos || raw.compare(i, 7, "include") != 0)
        return false;
    i = raw.find_first_not_of(" \t", i + 7);
    if (i == std::string::npos || raw[i] != '"')
        return false;
    const std::size_t close = raw.find('"', i + 1);
    if (close == std::string::npos)
        return false;
    target = raw.substr(i + 1, close - i - 1);
    return !target.empty();
}

/** What kind of scope a `{` opened. */
enum class ScopeKind { Namespace, Type, Function, Other };

const char *kScanKeywords[] = {"if",     "for",    "while", "switch",
                               "catch",  "return", "sizeof", "do",
                               "else",   "new",    "delete", "throw"};

bool
isScanKeyword(const std::string &w)
{
    for (const char *k : kScanKeywords)
        if (w == k)
            return true;
    return false;
}

/**
 * Try to read a function-shaped `ret qualified::name(` out of an
 * accumulated statement.  Returns false when the statement does not
 * look like a function declaration/definition head.
 */
bool
parseFunctionHead(const std::string &stmt, const std::vector<int> &stmt_lines,
                  FunctionInfo &fn)
{
    const std::size_t paren = stmt.find('(');
    if (paren == std::string::npos)
        return false;
    // Walk back over spaces, then over the qualified-name characters.
    std::size_t e = paren;
    while (e > 0 && stmt[e - 1] == ' ')
        --e;
    std::size_t b = e;
    while (b > 0 && (isIdentChar(stmt[b - 1]) || stmt[b - 1] == ':'))
        --b;
    while (b < e && stmt[b] == ':')
        ++b; // a stray leading "::"
    if (b == e)
        return false;
    const std::string qualified = stmt.substr(b, e - b);
    const std::size_t last_colon = qualified.rfind(':');
    const std::string name = last_colon == std::string::npos
                                 ? qualified
                                 : qualified.substr(last_colon + 1);
    if (name.empty() || isScanKeyword(name) ||
        std::isdigit(static_cast<unsigned char>(name[0])))
        return false;
    // `operator` overloads and macros-in-caps are not useful call-graph
    // nodes; skip names with no lowercase letter unless short.
    if (qualified.find("operator") != std::string::npos)
        return false;

    std::string ret = stmt.substr(0, b);
    // Access specifiers are not statement-terminated, so they bleed
    // into the accumulated text: "public: MigrateResult" -> strip.
    for (bool again = true; again;) {
        again = false;
        const std::size_t rb = ret.find_first_not_of(" \t");
        ret = rb == std::string::npos ? "" : ret.substr(rb);
        for (const char *spec : {"public:", "protected:", "private:"}) {
            const std::string s(spec);
            if (ret.rfind(s, 0) == 0 &&
                (ret.size() == s.size() || ret[s.size()] != ':')) {
                ret.erase(0, s.size());
                again = true;
            }
        }
    }
    while (!ret.empty() && ret.back() == ' ')
        ret.pop_back();

    fn.name = name;
    fn.qualified = qualified;
    fn.ret = ret;
    fn.line = b < stmt_lines.size() ? stmt_lines[b] : 0;
    fn.nodiscard = !findTokens(ret, "nodiscard").empty();
    return true;
}

/** Scan one body line for call-shaped tokens. */
void
collectCallsOnLine(const std::vector<Line> &lines, std::size_t li,
                   std::vector<CallSite> &out)
{
    const std::string &s = lines[li].stripped;
    if (isPreprocessor(s))
        return;
    for (std::size_t i = 0; i < s.size();) {
        if (!isIdentChar(s[i]) || (i > 0 && isIdentChar(s[i - 1]))) {
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < s.size() && isIdentChar(s[j]))
            ++j;
        const std::string name = s.substr(i, j - i);
        if (!isScanKeyword(name) &&
            !std::isdigit(static_cast<unsigned char>(name[0])) &&
            followedByParen(s, j)) {
            CallSite cs;
            cs.name = name;
            cs.line = static_cast<int>(li + 1);
            cs.member = isMemberAccess(s, i);
            std::string prefix = detail::statementPrefix(lines, li, i);
            const auto kind = detail::classifyPrefix(prefix);
            cs.returned = kind.returned;
            // A discarded call's prefix is empty or a member/namespace
            // chain ("engine_.", "m5::").  A trailing identifier means
            // a preceding word — a declaration (`MigrateResult doMove(`
            // in a signature) or an initializer, not a bare discard.
            while (!prefix.empty() && prefix.back() == ' ')
                prefix.pop_back();
            const bool chain_prefix =
                prefix.empty() || prefix.back() == '.' ||
                prefix.back() == ':';
            cs.discarded = kind.bare && chain_prefix && !kind.void_cast &&
                           !kind.returned;
            out.push_back(cs);
        }
        i = j;
    }
}

/**
 * The brace-stack scanner: classify every `{` as namespace / type /
 * function / other scope, record function definitions (with body
 * ranges) and namespace/type-scope declarations.
 */
void
scanFunctions(const std::vector<Line> &lines, std::vector<FunctionInfo> &out)
{
    std::vector<ScopeKind> scopes;
    std::string stmt;            // statement accumulated since ;/{/}
    std::vector<int> stmt_lines; // per-char 1-based source line
    // Indices into `out` of open definitions, parallel to the subset of
    // `scopes` that are Function.
    std::vector<std::size_t> open_defs;

    auto innermostCode = [&]() {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
            if (*it == ScopeKind::Function || *it == ScopeKind::Other)
                return true;
        return false;
    };

    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &s = lines[li].stripped;
        if (isPreprocessor(s))
            continue;
        for (std::size_t i = 0; i < s.size(); ++i) {
            const char c = s[i];
            if (c == '{') {
                ScopeKind kind = ScopeKind::Other;
                if (!findTokens(stmt, "namespace").empty()) {
                    kind = ScopeKind::Namespace;
                } else if (!findTokens(stmt, "struct").empty() ||
                           !findTokens(stmt, "class").empty() ||
                           !findTokens(stmt, "enum").empty() ||
                           !findTokens(stmt, "union").empty()) {
                    kind = ScopeKind::Type;
                } else if (!innermostCode() &&
                           stmt.find('=') == std::string::npos) {
                    FunctionInfo fn;
                    if (parseFunctionHead(stmt, stmt_lines, fn)) {
                        kind = ScopeKind::Function;
                        fn.is_definition = true;
                        fn.body_begin = static_cast<int>(li + 1);
                        out.push_back(fn);
                        open_defs.push_back(out.size() - 1);
                    }
                }
                scopes.push_back(kind);
                stmt.clear();
                stmt_lines.clear();
            } else if (c == '}') {
                if (!scopes.empty()) {
                    if (scopes.back() == ScopeKind::Function &&
                        !open_defs.empty()) {
                        out[open_defs.back()].body_end =
                            static_cast<int>(li + 1);
                        open_defs.pop_back();
                    }
                    scopes.pop_back();
                }
                stmt.clear();
                stmt_lines.clear();
            } else if (c == ';') {
                // Declaration?  Only at namespace/type scope.
                if (!innermostCode() &&
                    stmt.find('=') == std::string::npos) {
                    FunctionInfo fn;
                    if (parseFunctionHead(stmt, stmt_lines, fn))
                        out.push_back(fn);
                }
                stmt.clear();
                stmt_lines.clear();
            } else {
                stmt.push_back(c);
                stmt_lines.push_back(static_cast<int>(li + 1));
            }
        }
        stmt.push_back(' ');
        stmt_lines.push_back(static_cast<int>(li + 1));
    }

    // Body call sites for every definition.
    for (auto &fn : out) {
        if (!fn.is_definition || fn.body_end < fn.body_begin)
            continue;
        for (int ln = fn.body_begin; ln <= fn.body_end; ++ln)
            collectCallsOnLine(lines, static_cast<std::size_t>(ln - 1),
                               fn.calls);
    }
}

} // namespace

FileModel
buildFileModel(const std::string &path, const std::string &content)
{
    FileModel fm;
    fm.path = path;
    fm.lines = detail::splitAndStrip(content);

    for (std::size_t i = 0; i < fm.lines.size(); ++i) {
        std::string target;
        if (parseQuotedInclude(fm.lines[i].raw, target))
            fm.includes.push_back({static_cast<int>(i + 1), target, ""});

        const auto rules = lineSuppressions(fm.lines[i].comment);
        if (!rules.empty()) {
            // Keep only catalogued ids (or "*"): a doc comment that
            // merely mentions `allow(rule-id)` is not a directive.
            InlineAllow ia;
            ia.line = static_cast<int>(i + 1);
            const auto &all = allRules();
            for (const auto &r : rules)
                if (r == "*" ||
                    std::find(all.begin(), all.end(), r) != all.end())
                    ia.rules.push_back(r);
            if (!ia.rules.empty())
                fm.allows.push_back(ia);
        }
    }

    scanFunctions(fm.lines, fm.functions);
    fm.stat_members = detail::statShapedMembers(fm.lines);
    return fm;
}

const FileModel *
ProjectModel::find(const std::string &path) const
{
    const auto it = by_path.find(path);
    return it == by_path.end() ? nullptr : &files[it->second];
}

void
resolveIncludes(ProjectModel &model)
{
    namespace fs = std::filesystem;
    auto normalize = [](const std::string &p) {
        return fs::path(p).lexically_normal().generic_string();
    };
    for (auto &fm : model.files) {
        const std::string dir = fs::path(fm.path).parent_path()
                                    .generic_string();
        for (auto &inc : fm.includes) {
            const std::string cands[] = {
                inc.target,
                "src/" + inc.target,
                dir.empty() ? inc.target : dir + "/" + inc.target,
            };
            for (const auto &c : cands) {
                const std::string n = normalize(c);
                if (model.by_path.count(n)) {
                    inc.resolved = n;
                    break;
                }
            }
        }
    }
}

ProjectModel
buildProjectModel(const std::vector<std::string> &files, int jobs)
{
    ProjectModel model;
    model.files.resize(files.size());

    unsigned n = jobs > 0 ? static_cast<unsigned>(jobs)
                          : std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    const std::size_t cap = files.empty() ? 1 : files.size();
    if (cap < n)
        n = static_cast<unsigned>(cap);

    // Worker pool: atomic work index, results slotted by file position,
    // so the model is byte-identical at any worker count.
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= files.size())
                return;
            std::ifstream in(files[i], std::ios::binary);
            if (!in) {
                model.files[i].path = files[i];
                model.files[i].io_error = true;
                continue;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            model.files[i] = buildFileModel(files[i], ss.str());
        }
    };
    if (n <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < model.files.size(); ++i)
        model.by_path.emplace(model.files[i].path, i);
    resolveIncludes(model);
    return model;
}

} // namespace m5lint
