/**
 * @file
 * m5lint — repo-specific determinism/safety static analysis.
 *
 * The repo's headline guarantee is determinism under parallelism (the
 * 1-worker and 4-worker sweeps in tests/test_runner.cc must be
 * byte-identical; see docs/RUNNER.md).  That guarantee rests on coding
 * rules no compiler enforces: no wall-clock reads, no unseeded
 * randomness, no iteration order from unordered containers reaching
 * results, all env parsing through common/env, all output through
 * common/logging or analysis/report.  m5lint scans the tree for
 * violations of those rules and exits non-zero with
 * `file:line: rule-id: message` diagnostics.
 *
 * Since v2 the linter is project-wide: a first pass builds a model of
 * the whole tree (include graph, symbol index, approximate call graph
 * — m5lint_model.hh), then cross-file rules run over it: module
 * layering against the checked-in DAG (tools/m5lint.layers),
 * transitive MigrateResult-discard taint, dead stats, and stale
 * suppressions.  Diagnostics can also be emitted as SARIF 2.1.0 for
 * CI code-scanning annotations.
 *
 * Suppression:
 *  - per line:  `// m5lint: allow(rule-id)` (comma-separate several,
 *    `*` allows everything on the line); only recognized in comments;
 *  - per file:  an allowlist file (tools/m5lint.allow) with
 *    `rule-id path-prefix` entries.
 * Suppressions that no longer suppress anything are themselves flagged
 * (rule: stale-suppression).
 *
 * The engine lives in this header + m5lint_lib.cc (per-file rules),
 * m5lint_model.cc (project model) and m5lint_project.cc (cross-file
 * rules, SARIF) so tests/test_lint.cc can drive it over fixture files
 * without spawning the binary.
 */

#pragma once

#include <string>
#include <vector>

#include "m5lint_model.hh"

namespace m5lint {

/** One rule violation. */
struct Diag
{
    std::string file;   //!< path as given to the linter
    int line;           //!< 1-based line number
    std::string rule;   //!< rule id, e.g. "no-wallclock"
    std::string msg;    //!< human-readable explanation

    /** Render as `file:line: rule: msg` (the canonical output form). */
    std::string str() const;
};

/** One allowlist entry: suppress `rule` under path prefix `path`. */
struct AllowEntry
{
    std::string rule;   //!< rule id or "*"
    std::string path;   //!< repo-relative path prefix, e.g. "src/sim/"

    //! Where the entry was declared (allowlist file + line), when
    //! loaded from disk; stale-suppression only audits located entries.
    std::string from_file;
    int from_line = 0;
};

/** Linter configuration (currently just the allowlist). */
struct Config
{
    std::vector<AllowEntry> allow;
};

/** Rule ids, in diagnostic order. */
const std::vector<std::string> &allRules();

/** One-line description of a rule id ("" for unknown ids). */
const std::string &ruleHelp(const std::string &rule);

/**
 * Parse an allowlist file (`# comments`, blank lines, and
 * `rule-id path-prefix` entries).  Unknown rule ids are reported via
 * `errors` (one message per bad line) and skipped.
 */
Config loadAllowFile(const std::string &path,
                     std::vector<std::string> *errors = nullptr);

/**
 * Lint one translation unit given as text.  `path` determines which
 * rules apply (scoping is by directory, e.g. no-raw-output only fires
 * under src/) and appears verbatim in the diagnostics.  Per-file rules
 * only; the cross-file rules need lintProject().
 */
std::vector<Diag> lintSource(const std::string &path,
                             const std::string &content,
                             const Config &cfg = {});

/** Lint a file on disk (reads it, then lintSource). */
std::vector<Diag> lintFile(const std::string &path,
                           const Config &cfg = {});

/**
 * Recursively collect lintable files (.cc/.cpp/.cxx/.hh/.hpp/.h) under
 * each root (a root may also name a single file).  The result is
 * sorted so diagnostics are emitted in a deterministic order.
 */
std::vector<std::string> collectFiles(const std::vector<std::string> &roots);

// ---------------------------------------------------------------------
// Project-wide analysis.
// ---------------------------------------------------------------------

/** Options for lintProject(). */
struct ProjectOptions
{
    //! Worker threads for the per-file lex (0 = hardware concurrency).
    int jobs = 0;

    //! Audit suppressions that suppressed nothing (stale-suppression).
    //! Disable when linting a subset of the tree, where an allowlist
    //! entry for an unscanned path would be reported stale.
    bool stale_check = true;
};

/**
 * Lint `files` (as produced by collectFiles) as one project: builds
 * the ProjectModel, runs the per-file rules and the cross-file rules
 * (layering when `layers` is non-null, transitive-unchecked-migrate-
 * result, dead-stat, stale-suppression), applies suppression, and
 * returns the surviving diagnostics sorted by (file, line, rule).
 *
 * When `model_out` is non-null the built model is moved there, so
 * callers (CLI, tests) can report model statistics.
 */
std::vector<Diag> lintProject(const std::vector<std::string> &files,
                              const Config &cfg,
                              const LayersFile *layers,
                              const ProjectOptions &opts = {},
                              ProjectModel *model_out = nullptr);

/** Like lintProject, but over pre-built models (exposed for tests so
 *  fixtures can be in-memory via buildFileModel). */
std::vector<Diag> lintProjectModel(const ProjectModel &model,
                                   const Config &cfg,
                                   const LayersFile *layers,
                                   const ProjectOptions &opts = {});

/**
 * Render diagnostics as a SARIF 2.1.0 log (one run, driver "m5lint",
 * every catalogued rule listed, one result per diagnostic with an
 * artifact location + startLine region).  GitHub code scanning
 * consumes this for PR annotations (docs/LINT.md).
 */
std::string sarifReport(const std::vector<Diag> &diags);

} // namespace m5lint
