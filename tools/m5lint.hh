/**
 * @file
 * m5lint — repo-specific determinism/safety static analysis.
 *
 * The repo's headline guarantee is determinism under parallelism (the
 * 1-worker and 4-worker sweeps in tests/test_runner.cc must be
 * byte-identical; see docs/RUNNER.md).  That guarantee rests on coding
 * rules no compiler enforces: no wall-clock reads, no unseeded
 * randomness, no iteration order from unordered containers reaching
 * results, all env parsing through common/env, all output through
 * common/logging or analysis/report.  m5lint scans the tree for
 * violations of those rules and exits non-zero with
 * `file:line: rule-id: message` diagnostics.
 *
 * Suppression:
 *  - per line:  `// m5lint: allow(rule-id)` (comma-separate several,
 *    `*` allows everything on the line);
 *  - per file:  an allowlist file (tools/m5lint.allow) with
 *    `rule-id path-prefix` entries.
 *
 * The engine lives in this header + m5lint_lib.cc so tests/test_lint.cc
 * can drive it over fixture files without spawning the binary.
 */

#pragma once

#include <string>
#include <vector>

namespace m5lint {

/** One rule violation. */
struct Diag
{
    std::string file;   //!< path as given to the linter
    int line;           //!< 1-based line number
    std::string rule;   //!< rule id, e.g. "no-wallclock"
    std::string msg;    //!< human-readable explanation

    /** Render as `file:line: rule: msg` (the canonical output form). */
    std::string str() const;
};

/** One allowlist entry: suppress `rule` under path prefix `path`. */
struct AllowEntry
{
    std::string rule;   //!< rule id or "*"
    std::string path;   //!< repo-relative path prefix, e.g. "src/sim/"
};

/** Linter configuration (currently just the allowlist). */
struct Config
{
    std::vector<AllowEntry> allow;
};

/** Rule ids, in diagnostic order. */
const std::vector<std::string> &allRules();

/**
 * Parse an allowlist file (`# comments`, blank lines, and
 * `rule-id path-prefix` entries).  Unknown rule ids are reported via
 * `errors` (one message per bad line) and skipped.
 */
Config loadAllowFile(const std::string &path,
                     std::vector<std::string> *errors = nullptr);

/**
 * Lint one translation unit given as text.  `path` determines which
 * rules apply (scoping is by directory, e.g. no-raw-output only fires
 * under src/) and appears verbatim in the diagnostics.
 */
std::vector<Diag> lintSource(const std::string &path,
                             const std::string &content,
                             const Config &cfg = {});

/** Lint a file on disk (reads it, then lintSource). */
std::vector<Diag> lintFile(const std::string &path,
                           const Config &cfg = {});

/**
 * Recursively collect lintable files (.cc/.cpp/.cxx/.hh/.hpp/.h) under
 * each root (a root may also name a single file).  The result is
 * sorted so diagnostics are emitted in a deterministic order.
 */
std::vector<std::string> collectFiles(const std::vector<std::string> &roots);

} // namespace m5lint
