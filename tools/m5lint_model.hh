/**
 * @file
 * m5lint project model — the whole-program view the cross-file rules
 * run over (docs/LINT.md):
 *
 *  - the include graph (quoted includes, resolved against the repo
 *    layout, with the edge's source line for diagnostics);
 *  - a declaration/symbol index: every function-shaped declaration or
 *    definition with its return-type text, [[nodiscard]]-ness, and —
 *    for definitions — its body range;
 *  - an approximate call graph: call-shaped tokens inside each body,
 *    annotated with member-access and discarded-result classification;
 *  - stat-member and registerStats bookkeeping for the dead-stat rule;
 *  - every inline `// m5lint: allow(...)` directive, for the
 *    stale-suppression rule.
 *
 * The model is *approximate by design*: it is built from the same
 * token stream the per-file rules lex, not from a real C++ frontend.
 * Rules that consume it are written so a missed edge degrades to a
 * missed finding, never a false build break.
 *
 * The layering DAG itself is data, checked in as tools/m5lint.layers
 * (grammar below and in docs/LINT.md).
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "m5lint_internal.hh"

namespace m5lint {

// ---------------------------------------------------------------------
// Layers spec (tools/m5lint.layers).
// ---------------------------------------------------------------------

/** One `layer NAME PREFIX [: DEP ...]` line. */
struct LayerSpec
{
    std::string name;               //!< layer id, e.g. "os"
    std::string prefix;             //!< path prefix, e.g. "src/os"
    std::vector<std::string> deps;  //!< allowed layers ("*" = any)
    int line = 0;                   //!< declaration line in the spec
};

/** One `except SRC-PREFIX -> DST-PREFIX` line: a justified edge the
 *  DAG would otherwise forbid.  Unused exceptions go stale
 *  (stale-suppression). */
struct LayerException
{
    std::string src;  //!< including-file path prefix
    std::string dst;  //!< included-file path prefix
    int line = 0;
};

/** Parsed tools/m5lint.layers. */
struct LayersFile
{
    std::string path;  //!< spec path, for diagnostics
    std::vector<LayerSpec> layers;
    std::vector<LayerException> exceptions;

    /** Layer name owning `path` (longest prefix match), or "". */
    std::string layerOf(const std::string &file_path) const;

    /** True when layer `from` may include layer `to` (reflexive,
     *  transitively closed over deps; "*" allows everything). */
    bool allows(const std::string &from, const std::string &to) const;
};

/**
 * Parse a layers spec.  Grammar (# comments, blank lines allowed):
 *
 *     layer NAME PATH-PREFIX [: DEP ...]
 *     except SRC-PREFIX -> DST-PREFIX
 *
 * Malformed lines, duplicate/unknown names, and cycles in the declared
 * dep graph are reported via `errors`; the offending entries are
 * dropped (a cyclic spec drops nothing but is reported — the caller
 * should treat any error as fatal).
 */
LayersFile loadLayersFile(const std::string &path,
                          std::vector<std::string> *errors = nullptr);

// ---------------------------------------------------------------------
// Per-file model.
// ---------------------------------------------------------------------

/** One resolved `#include "..."` edge. */
struct IncludeEdge
{
    int line = 0;          //!< 1-based line of the directive
    std::string target;    //!< path as written between the quotes
    std::string resolved;  //!< repo-relative path, or "" when unknown
};

/** One call-shaped token inside a function body. */
struct CallSite
{
    std::string name;      //!< callee base name
    int line = 0;          //!< 1-based line
    bool member = false;   //!< reached via `.` or `->`
    bool discarded = false; //!< bare-statement call: result dropped
    bool returned = false;  //!< `return callee(...)`
};

/** One function-shaped declaration or definition. */
struct FunctionInfo
{
    std::string name;       //!< base name, e.g. "promote"
    std::string qualified;  //!< as written, e.g. "MigrationEngine::promote"
    std::string ret;        //!< return-type text preceding the name
    int line = 0;           //!< declaration line (the name's line)
    bool is_definition = false;
    bool nodiscard = false; //!< [[nodiscard]] present on the declaration
    int body_begin = 0;     //!< first body line (definitions only)
    int body_end = 0;       //!< last body line (definitions only)
    std::vector<CallSite> calls;  //!< body call sites (definitions only)
};

/** One inline `// m5lint: allow(...)` directive. */
struct InlineAllow
{
    int line = 0;
    std::vector<std::string> rules;  //!< validated ids (or "*") only
};

/** Everything the project rules need to know about one file. */
struct FileModel
{
    std::string path;
    std::vector<detail::Line> lines;
    std::vector<IncludeEdge> includes;
    std::vector<FunctionInfo> functions;
    std::vector<detail::StatMember> stat_members;
    std::vector<InlineAllow> allows;
    bool io_error = false;  //!< file could not be read
};

/** The whole-project model. */
struct ProjectModel
{
    std::vector<FileModel> files;  //!< same order as the input list
    std::map<std::string, std::size_t> by_path;  //!< path -> files index

    const FileModel *find(const std::string &path) const;
};

/**
 * Build the model for `files` (paths as produced by collectFiles).
 * The per-file lex runs on a worker pool of `jobs` threads (0 = one
 * per hardware thread); results are indexed by file, so the model is
 * byte-identical at any worker count.
 */
ProjectModel buildProjectModel(const std::vector<std::string> &files,
                               int jobs = 0);

/** Model extraction for one in-memory file (exposed for tests). */
FileModel buildFileModel(const std::string &path,
                         const std::string &content);

/**
 * Fill every IncludeEdge::resolved against the model's own file set
 * (candidates, in order: the target verbatim, "src/" + target, and
 * the including file's directory + target).  buildProjectModel calls
 * this; tests assembling a ProjectModel from buildFileModel results
 * must call it themselves before lintProjectModel.
 */
void resolveIncludes(ProjectModel &model);

} // namespace m5lint
