#!/bin/sh
# CI perf-regression gate: re-measure the host's single-thread
# simulation rate with tools/bench_wallclock.sh and compare it against
# the sim_accesses_per_second recorded in the committed
# BENCH_runner.json.  A drop of more than M5_PERF_THRESHOLD_PCT
# (default 15%) fails the gate; a faster run just updates nothing.
#
# The committed baseline and the fresh measurement come from the SAME
# fixed m5sim run (mcf_r, scale 1/128, 2M accesses), so the comparison
# tracks simulator throughput, not benchmark-suite drift.  Both sides
# are best-of-N (see bench_wallclock.sh), which damps scheduler noise.
# The fresh measurement — BENCH_runner.json plus the profile artifacts
# BENCH_runner.prof.json / BENCH_runner.folded — is always kept at
# <build-dir>/perf-gate/ so CI can upload it as an artifact on every
# run, pass or fail, giving a per-commit history of the sim rate and
# its component breakdown.  The committed files are restored afterwards
# so the gate never dirties the tree.
#
# On failure the gate doesn't just report the drop: it runs
#   m5prof diff <baseline>.prof.json <fresh>.prof.json --top 3
# to name the components whose share of the run moved most
# (docs/PROFILING.md), turning "15% slower" into "promote got slower".
#
# When the committed baseline predates the sim-rate field (or records
# 0 because m5sim was missing at capture time), the gate degrades to a
# warning and exits 0: a missing baseline is a reason to regenerate it,
# not to block unrelated changes.
#
# Usage: tools/perf_gate.sh [build-dir]   (default: build)
set -u

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BASELINE="BENCH_runner.json"
BASELINE_PROF="BENCH_runner.prof.json"
BASELINE_FOLDED="BENCH_runner.folded"
THRESHOLD="${M5_PERF_THRESHOLD_PCT:-15}"

json_field() {
    sed -n "s/.*\"$2\": *\([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

if [ ! -f "$BASELINE" ]; then
    echo "perf gate: SKIPPED ($BASELINE not committed — run" \
         "tools/bench_wallclock.sh and commit the result)" >&2
    exit 0
fi
BASE_APS="$(json_field "$BASELINE" sim_accesses_per_second)"
if [ -z "$BASE_APS" ] || [ "$BASE_APS" -eq 0 ]; then
    echo "perf gate: SKIPPED (baseline lacks a usable" \
         "sim_accesses_per_second — regenerate $BASELINE)" >&2
    exit 0
fi

# bench_wallclock.sh writes its results over the committed files in the
# repo root; stash them so the gate leaves the tree clean.  The profile
# pair may be absent in older baselines — stash what exists.
SAVED_DIR="$(mktemp -d)"
cp "$BASELINE" "$SAVED_DIR/"
for f in "$BASELINE_PROF" "$BASELINE_FOLDED"; do
    [ -f "$f" ] && cp "$f" "$SAVED_DIR/"
done
restore() {
    cp "$SAVED_DIR/$BASELINE" "$BASELINE"
    for f in "$BASELINE_PROF" "$BASELINE_FOLDED"; do
        if [ -f "$SAVED_DIR/$f" ]; then
            cp "$SAVED_DIR/$f" "$f"
        else
            rm -f "$f"
        fi
    done
    rm -rf "$SAVED_DIR"
}
trap restore EXIT

echo "perf gate: baseline $BASE_APS accesses/s, threshold -$THRESHOLD%"
tools/bench_wallclock.sh "$BUILD" || exit 1

NEW_APS="$(json_field "$BASELINE" sim_accesses_per_second)"
mkdir -p "$BUILD/perf-gate"
cp "$BASELINE" "$BUILD/perf-gate/BENCH_runner.json"
for f in "$BASELINE_PROF" "$BASELINE_FOLDED"; do
    [ -f "$f" ] && cp "$f" "$BUILD/perf-gate/"
done

if [ -z "$NEW_APS" ] || [ "$NEW_APS" -eq 0 ]; then
    echo "perf gate: FAILED (fresh run recorded no sim rate — is" \
         "$BUILD/tools/m5sim built?)" >&2
    exit 1
fi

# Integer math: fail when new * 100 < base * (100 - threshold).
FLOOR=$((BASE_APS * (100 - THRESHOLD)))
SCALED=$((NEW_APS * 100))
DELTA_PCT="$(echo "$NEW_APS $BASE_APS" | \
    awk '{printf "%+.1f", ($1 - $2) * 100.0 / $2}')"

echo "perf gate: measured $NEW_APS accesses/s (${DELTA_PCT}% vs baseline)"
if [ "$SCALED" -lt "$FLOOR" ]; then
    echo "perf gate: FAILED — sim rate regressed more than $THRESHOLD%" \
         "(baseline $BASE_APS, measured $NEW_APS)" >&2
    if [ -x "$BUILD/tools/m5prof" ] && \
       [ -f "$SAVED_DIR/$BASELINE_PROF" ] && \
       [ -f "$BUILD/perf-gate/$BASELINE_PROF" ]; then
        echo "perf gate: components whose share of the run moved most:" >&2
        "$BUILD/tools/m5prof" diff "$SAVED_DIR/$BASELINE_PROF" \
            "$BUILD/perf-gate/$BASELINE_PROF" --top 3 >&2 || true
    fi
    echo "perf gate: if the slowdown is intentional, regenerate the" \
         "baseline with tools/bench_wallclock.sh and commit it" >&2
    exit 1
fi
echo "perf gate: OK (within $THRESHOLD% of baseline)"
