#!/bin/sh
# Full verification story, in tiers (docs/LINT.md):
#
#   tier1  configure + build (warnings-as-errors) + full ctest
#   lint   m5lint repo-rule scan over src bench tests tools examples
#   tidy   clang-tidy over the library sources (skipped with a warning
#          when clang-tidy is not installed)
#   smoke  telemetry end-to-end smoke: JSONL stream parses, counters
#          move, reruns are byte-identical, the Chrome trace validates
#          (tools/telemetry_smoke.sh)
#   trace  m5sim --trace + m5trace explain end-to-end: a migrated page's
#          lifecycle is reconstructed; artifacts kept in
#          <build-dir>/trace-smoke for CI upload (docs/TRACING.md)
#   faults seeded fault campaign end-to-end: m5sim --faults injects,
#          the retry/breaker counters move, invariants stay clean, and
#          a rerun is byte-identical; artifacts kept in
#          <build-dir>/faults-smoke for CI upload (docs/FAULTS.md)
#   txn    transactional-migration campaign: m5sim under a seeded
#          copy_race storm commits and aborts transactions, demotes
#          shadowed pages for free, invariants stay clean, a rerun is
#          byte-identical, and --no-txn-migrate really disarms the
#          path; artifacts kept in <build-dir>/txn-smoke for CI upload
#          (docs/MIGRATION.md)
#   topology  3-tier m5sim --tiers smoke under a ddr_alloc storm: the
#          exchange counters move, invariants stay clean, and a rerun
#          is byte-identical; artifacts kept in
#          <build-dir>/topology-smoke for CI upload (docs/TOPOLOGY.md)
#   colocation  3-tenant m5sim --tenants campaign: per-tenant DDR caps
#          are enforced (cap demotions fire, no tenant over budget),
#          fairness telemetry moves, invariants stay clean, and a rerun
#          is byte-identical; artifacts kept in
#          <build-dir>/colocation-smoke for CI upload (docs/MULTITENANT.md)
#   profile  host-time attribution end-to-end: m5sim --profile writes a
#          parseable .prof.json + .folded flamegraph with a non-empty
#          top frame, call counts are rerun-identical, and a profiled
#          report minus its profile section is byte-identical to a
#          plain run; artifacts kept in <build-dir>/profile-smoke for
#          CI upload (docs/PROFILING.md)
#   tsan   ThreadSanitizer build + runner determinism tests
#   asan   AddressSanitizer build + full ctest (leaks on)
#   ubsan  UndefinedBehaviorSanitizer build + full ctest (halt on error)
#
# Usage: tools/check.sh [--stage NAME]... [build-dir]
#
#   --stage NAME   run only the named stage(s); repeat the flag or
#                  comma-separate (--stage lint,tidy).  Default: all,
#                  in the order above.  Each stage is self-contained so
#                  CI runs them as independent matrix legs.
#   build-dir      base build directory (default: build; sanitizer
#                  stages use <build-dir>-tsan/-asan/-ubsan).
#
# Without --stage, every stage runs even after an earlier one fails;
# the script prints a PASS/FAIL summary and exits non-zero when any
# stage failed, so a broken tier1 cannot mask a broken lint (or vice
# versa) in a single local run.
set -u

cd "$(dirname "$0")/.."
BUILD="build"
STAGES=""
JOBS="${M5_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

while [ $# -gt 0 ]; do
    case "$1" in
        --stage)
            [ $# -ge 2 ] || { echo "check.sh: --stage needs a name" >&2; exit 2; }
            STAGES="$STAGES $(echo "$2" | tr ',' ' ')"
            shift 2
            ;;
        --help|-h)
            sed -n '2,45p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        -*)
            echo "check.sh: unknown option '$1' (try --help)" >&2
            exit 2
            ;;
        *)
            BUILD="$1"
            shift
            ;;
    esac
done
[ -n "$STAGES" ] || STAGES="tier1 lint tidy smoke trace faults txn topology colocation profile tsan asan ubsan"

for s in $STAGES; do
    case "$s" in
        tier1|lint|tidy|smoke|trace|faults|txn|topology|colocation|profile|tsan|asan|ubsan) ;;
        *)
            echo "check.sh: unknown stage '$s'" \
                 "(want tier1|lint|tidy|smoke|trace|faults|txn|topology|colocation|profile|tsan|asan|ubsan)" >&2
            exit 2
            ;;
    esac
done

# Configure + build a tree; $1 = dir, rest = extra cmake args.
build_tree() {
    _dir="$1"; shift
    cmake -B "$_dir" -S . "$@" && cmake --build "$_dir" -j "$JOBS"
}

stage_tier1() {
    echo "== tier1: configure + build -DM5_WERROR=ON ($BUILD) ==" &&
    build_tree "$BUILD" -DM5_WERROR=ON &&
    echo "== tier1: ctest ==" &&
    ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"
}

stage_lint() {
    echo "== lint: m5lint src bench tests tools examples =="
    # Reuse the tier1 build when present; otherwise build just m5lint.
    if [ ! -x "$BUILD/tools/m5lint" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5lint || return 1
    fi
    # Project-wide scan: per-file rules plus the module-DAG / taint /
    # dead-stat / stale-suppression passes, SARIF for CI annotation.
    # The stderr summary line carries the wall time; stale suppressions
    # are ordinary diagnostics, so they fail the stage by themselves.
    "$BUILD/tools/m5lint" --sarif "$BUILD/m5lint.sarif" \
        src bench tests tools examples
    rc=$?
    [ -f "$BUILD/m5lint.sarif" ] &&
        echo "lint: SARIF written to $BUILD/m5lint.sarif"
    return $rc
}

stage_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "== tidy: SKIPPED (clang-tidy not installed) =="
        return 0
    fi
    echo "== tidy: clang-tidy over src/ tools/ =="
    # compile_commands.json is exported by the main configure.
    if [ ! -f "$BUILD/compile_commands.json" ]; then
        cmake -B "$BUILD" -S . || return 1
    fi
    find src tools -name '*.cc' -print \
        | xargs -P "$JOBS" -n 1 clang-tidy -p "$BUILD" --quiet
}

stage_smoke() {
    echo "== smoke: telemetry JSONL end-to-end =="
    if [ ! -x "$BUILD/tools/m5sim" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim || return 1
    fi
    tools/telemetry_smoke.sh "$BUILD"
}

stage_trace() {
    echo "== trace: Chrome trace + m5trace explain end-to-end =="
    if [ ! -x "$BUILD/tools/m5sim" ] || [ ! -x "$BUILD/tools/m5trace" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim m5trace || return 1
    fi
    _out="$BUILD/trace-smoke"
    rm -rf "$_out" && mkdir -p "$_out" &&
    "$BUILD/tools/m5sim" --bench mcf_r --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --trace "$_out/run.trace.json" \
        > "$_out/report.txt" &&
    grep -q '^trace:' "$_out/report.txt" &&
    [ -s "$_out/run.trace.json" ] &&
    "$BUILD/tools/m5trace" explain --bench mcf_r --scale 128 \
        --accesses 60000 > "$_out/pages.txt" &&
    _page="$(awk '/^  page /{print $2; exit}' "$_out/pages.txt")" &&
    [ -n "$_page" ] &&
    "$BUILD/tools/m5trace" explain --bench mcf_r --scale 128 \
        --accesses 60000 --page "$_page" \
        --out "$_out/page.trace.json" > "$_out/lifecycle.txt" &&
    grep -q 'migrated to DDR' "$_out/lifecycle.txt" &&
    grep -q 'nominated' "$_out/lifecycle.txt" &&
    echo "trace stage: OK (page $_page lifecycle reconstructed)"
}

stage_faults() {
    echo "== faults: seeded fault campaign end-to-end =="
    if [ ! -x "$BUILD/tools/m5sim" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim || return 1
    fi
    _out="$BUILD/faults-smoke"
    _spec='migrate_busy:p=0.2,mmio_stale:p=0.2,ddr_alloc:burst=50@1ms,wake_drop:p=0.05'
    rm -rf "$_out" && mkdir -p "$_out" &&
    "$BUILD/tools/m5sim" --bench mcf_r --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --faults "$_spec" > "$_out/report.txt" &&
    "$BUILD/tools/m5sim" --bench mcf_r --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --faults "$_spec" > "$_out/report2.txt" || return 1
    # Same seed, same plan -> byte-identical report (docs/FAULTS.md).
    cmp -s "$_out/report.txt" "$_out/report2.txt" || {
        echo "faults stage: rerun is not byte-identical" >&2
        diff "$_out/report.txt" "$_out/report2.txt" >&2
        return 1
    }
    # Faults were injected, the retry pipeline engaged, and the
    # invariant checker ran without finding corruption.
    awk '
        /^faults:/      { injected = $(NF - 1) }
        /^  resilience:/ { transient = $2; retries = $4 }
        /^  invariants:/ { checks = $2; violations = $4 }
        END {
            if (injected + 0 == 0)  { print "no faults injected"; exit 1 }
            if (transient + 0 == 0) { print "no transient failures"; exit 1 }
            if (retries + 0 == 0)   { print "no retries issued"; exit 1 }
            if (checks + 0 == 0)    { print "invariant checker never ran"; exit 1 }
            if (violations + 0 != 0) {
                print "invariant violations: " violations; exit 1
            }
            printf "faults stage: OK (%d injected, %d retries, %d invariant checks clean)\n",
                   injected, retries, checks
        }' "$_out/report.txt"
}

stage_txn() {
    echo "== txn: transactional migration under a copy_race storm =="
    if [ ! -x "$BUILD/tools/m5sim" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim || return 1
    fi
    _out="$BUILD/txn-smoke"
    # redis is write-heavy (YCSB-A, 40% stores), so shadows get
    # invalidated and the abort ladder is exercised for real; the tight
    # DDR fraction forces demotions so free (zero-copy) demotes fire.
    _spec='migrate_busy:p=0.02,copy_race:p=0.1'
    rm -rf "$_out" && mkdir -p "$_out" &&
    "$BUILD/tools/m5sim" --bench redis --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --ddr-frac 0.15 --faults "$_spec" \
        > "$_out/report.txt" &&
    "$BUILD/tools/m5sim" --bench redis --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --ddr-frac 0.15 --faults "$_spec" \
        > "$_out/report2.txt" &&
    "$BUILD/tools/m5sim" --bench redis --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --ddr-frac 0.15 --faults "$_spec" \
        --no-txn-migrate > "$_out/report-off.txt" || return 1
    # Same seed, same plan -> byte-identical report (docs/MIGRATION.md).
    cmp -s "$_out/report.txt" "$_out/report2.txt" || {
        echo "txn stage: rerun is not byte-identical" >&2
        diff "$_out/report.txt" "$_out/report2.txt" >&2
        return 1
    }
    # The storm produced commits AND aborts (the validation check really
    # decides), shadowed pages were demoted for free, and the shadow
    # invariant sweep ran without finding corruption.
    awk '
        /^  txn:/        { commits = $2; aborts = $4; free = $8 }
        /^  invariants:/ { checks = $2; violations = $4 }
        END {
            if (commits + 0 == 0) { print "no transactions committed"; exit 1 }
            if (aborts + 0 == 0)  { print "no transactions aborted"; exit 1 }
            if (free + 0 == 0)    { print "no zero-copy (free) demotions"; exit 1 }
            if (checks + 0 == 0)  { print "invariant checker never ran"; exit 1 }
            if (violations + 0 != 0) {
                print "invariant violations: " violations; exit 1
            }
            printf "txn stage: OK (%d commits, %d aborts, %d free demotes, %d invariant checks clean)\n",
                   commits, aborts, free, checks
        }' "$_out/report.txt" || return 1
    # The kill switch really disarms the path: no transactions at all.
    grep -q '^  txn: 0 commits, 0 aborts, 0 degraded, 0 free_demote (disabled)' \
        "$_out/report-off.txt" || {
        echo "txn stage: --no-txn-migrate did not disable transactions" >&2
        return 1
    }
}

stage_topology() {
    echo "== topology: 3-tier --tiers smoke with exchange fallback =="
    if [ ! -x "$BUILD/tools/m5sim" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim || return 1
    fi
    _out="$BUILD/topology-smoke"
    _tiers='ddr:100,cxl:270:0.4,far:400,ddr>far:600:8e9'
    _spec='ddr_alloc:burst=50@1ms'
    rm -rf "$_out" && mkdir -p "$_out" &&
    "$BUILD/tools/m5sim" --bench mcf_r --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --tiers "$_tiers" --faults "$_spec" \
        > "$_out/report.txt" &&
    "$BUILD/tools/m5sim" --bench mcf_r --policy m5 --scale 128 --seed 7 \
        --accesses 60000 --tiers "$_tiers" --faults "$_spec" \
        > "$_out/report2.txt" || return 1
    # Same seed, same topology -> byte-identical report.
    cmp -s "$_out/report.txt" "$_out/report2.txt" || {
        echo "topology stage: rerun is not byte-identical" >&2
        diff "$_out/report.txt" "$_out/report2.txt" >&2
        return 1
    }
    # The topology line names all three tiers, the ddr_alloc storm was
    # absorbed by atomic exchanges, and invariants stayed clean.
    grep -q '^topology: .*ddr(.*cxl(.*far(' "$_out/report.txt" || {
        echo "topology stage: report is missing the 3-tier topology line" >&2
        return 1
    }
    awk '
        /^  exchange:/   { swapped = $2 }
        /^  invariants:/ { checks = $2; violations = $4 }
        END {
            if (swapped + 0 == 0)  { print "no exchanges performed"; exit 1 }
            if (checks + 0 == 0)   { print "invariant checker never ran"; exit 1 }
            if (violations + 0 != 0) {
                print "invariant violations: " violations; exit 1
            }
            printf "topology stage: OK (%d exchanges, %d invariant checks clean)\n",
                   swapped, checks
        }' "$_out/report.txt"
}

stage_colocation() {
    echo "== colocation: 3-tenant --tenants campaign with DDR caps =="
    if [ ! -x "$BUILD/tools/m5sim" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim || return 1
    fi
    _out="$BUILD/colocation-smoke"
    # mcf_r's cap is deliberately below its hot set so the allocator has
    # to demote-within-tenant; redis's cap is roomy and must never trip.
    _spec='mcf_r:cap=0.1,roms_r:share=2,redis:cap=0.25'
    rm -rf "$_out" && mkdir -p "$_out" &&
    "$BUILD/tools/m5sim" --tenants "$_spec" --policy m5 --scale 128 \
        --seed 7 --accesses 80000 > "$_out/report.txt" &&
    "$BUILD/tools/m5sim" --tenants "$_spec" --policy m5 --scale 128 \
        --seed 7 --accesses 80000 > "$_out/report2.txt" || return 1
    # Same seed, same spec -> byte-identical report (docs/MULTITENANT.md).
    cmp -s "$_out/report.txt" "$_out/report2.txt" || {
        echo "colocation stage: rerun is not byte-identical" >&2
        diff "$_out/report.txt" "$_out/report2.txt" >&2
        return 1
    }
    grep -q '^tenants: *3 colocated' "$_out/report.txt" || {
        echo "colocation stage: report is missing the 3-tenant summary" >&2
        return 1
    }
    grep -q '^  caps: OK' "$_out/report.txt" || {
        echo "colocation stage: a tenant exceeded its DDR cap" >&2
        return 1
    }
    # Caps actually bit (cap demotions fired), the weighted share gave
    # roms_r twice the accesses, fairness telemetry is live, and the
    # per-tenant invariant checker ran clean.
    awk '
        /^  tenant\.0 /  { cap_demoted = $7; sub(/\(/, "", cap_demoted) }
        /^  tenant\.0 /  { t0_acc = $3 }
        /^  tenant\.1 /  { t1_acc = $3 }
        /^  fairness:/   { jain = $3 }
        /^  invariants:/ { checks = $2; violations = $4 }
        END {
            if (cap_demoted + 0 == 0) { print "cap never bit (no cap demotions)"; exit 1 }
            if (t1_acc + 0 != 2 * t0_acc) {
                print "share=2 tenant did not get 2x accesses"; exit 1
            }
            if (jain + 0 <= 0 || jain + 0 > 1) {
                print "jain fairness index out of (0, 1]: " jain; exit 1
            }
            if (checks + 0 == 0)    { print "invariant checker never ran"; exit 1 }
            if (violations + 0 != 0) {
                print "invariant violations: " violations; exit 1
            }
            printf "colocation stage: OK (%d cap demotions, jain %.3f, %d invariant checks clean)\n",
                   cap_demoted, jain, checks
        }' "$_out/report.txt"
}

stage_profile() {
    echo "== profile: host-time attribution end-to-end =="
    if [ ! -x "$BUILD/tools/m5sim" ] || [ ! -x "$BUILD/tools/m5prof" ]; then
        cmake -B "$BUILD" -S . &&
        cmake --build "$BUILD" -j "$JOBS" --target m5sim m5prof || return 1
    fi
    _out="$BUILD/profile-smoke"
    _cell="--bench mcf_r --policy m5 --scale 128 --seed 7 --accesses 60000"
    rm -rf "$_out" && mkdir -p "$_out" &&
    "$BUILD/tools/m5sim" $_cell > "$_out/plain.txt" &&
    "$BUILD/tools/m5sim" $_cell --profile "$_out/a" > "$_out/report_a.txt" &&
    "$BUILD/tools/m5sim" $_cell --profile "$_out/b" > "$_out/report_b.txt" \
        || return 1
    # Host time never leaks into the result domain: with its profile
    # section stripped, a profiled report is byte-identical to a plain
    # run (docs/PROFILING.md).
    sed '/^profile:/d; /^  prof\./d' "$_out/report_a.txt" \
        > "$_out/report_a_stripped.txt"
    cmp -s "$_out/plain.txt" "$_out/report_a_stripped.txt" || {
        echo "profile stage: --profile perturbed the report outside its own section" >&2
        diff "$_out/plain.txt" "$_out/report_a_stripped.txt" >&2
        return 1
    }
    # Both artifacts exist and the rollup names a real top component.
    [ -s "$_out/a.prof.json" ] && [ -s "$_out/a.folded" ] || {
        echo "profile stage: missing .prof.json/.folded artifacts" >&2
        return 1
    }
    _top="$("$BUILD/tools/m5prof" top "$_out/a.prof.json" --n 1 \
        | awk '{print $1}')"
    [ -n "$_top" ] || {
        echo "profile stage: m5prof top returned an empty frame" >&2
        return 1
    }
    # Scope paths and call counts are deterministic across reruns even
    # though host nanoseconds are not.
    "$BUILD/tools/m5prof" report "$_out/a.prof.json" --calls-only \
        > "$_out/calls_a.txt" &&
    "$BUILD/tools/m5prof" report "$_out/b.prof.json" --calls-only \
        > "$_out/calls_b.txt" || return 1
    cmp -s "$_out/calls_a.txt" "$_out/calls_b.txt" || {
        echo "profile stage: call counts differ between reruns" >&2
        diff "$_out/calls_a.txt" "$_out/calls_b.txt" >&2
        return 1
    }
    # The regression explainer runs over the pair.
    "$BUILD/tools/m5prof" diff "$_out/a.prof.json" "$_out/b.prof.json" \
        --top 3 > "$_out/diff.txt" || return 1
    echo "profile stage: OK (top component $_top, call counts rerun-identical)"
}

stage_tsan() {
    echo "== tsan: build tests with -DM5_SANITIZE=thread ==" &&
    cmake -B "$BUILD-tsan" -S . -DM5_SANITIZE=thread &&
    cmake --build "$BUILD-tsan" -j "$JOBS" --target test_runner &&
    echo "== tsan: runner determinism + failure capture ==" &&
    TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
        "$BUILD-tsan/tests/test_runner" \
        --gtest_filter='RunnerTest.*:RunnerDeterminismTest.*'
}

stage_asan() {
    echo "== asan: build with -DM5_SANITIZE=address ==" &&
    build_tree "$BUILD-asan" -DM5_SANITIZE=address &&
    echo "== asan: full ctest (detect_leaks=1) ==" &&
    ASAN_OPTIONS="detect_leaks=1 ${ASAN_OPTIONS:-}" \
        ctest --test-dir "$BUILD-asan" --output-on-failure -j "$JOBS"
}

stage_ubsan() {
    echo "== ubsan: build with -DM5_SANITIZE=undefined ==" &&
    build_tree "$BUILD-ubsan" -DM5_SANITIZE=undefined &&
    echo "== ubsan: full ctest (halt_on_error=1) ==" &&
    UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
        ctest --test-dir "$BUILD-ubsan" --output-on-failure -j "$JOBS"
}

FAILED=""
for s in $STAGES; do
    if "stage_$s"; then
        :
    else
        echo "== check.sh: stage '$s' FAILED ==" >&2
        FAILED="$FAILED $s"
    fi
done

echo "== check.sh summary =="
for s in $STAGES; do
    case " $FAILED " in
        *" $s "*) echo "  FAIL  $s" ;;
        *)        echo "  pass  $s" ;;
    esac
done
if [ -n "$FAILED" ]; then
    echo "== check.sh: FAILED stages:$FAILED ==" >&2
    exit 1
fi
echo "== check.sh: all requested stages green ($STAGES) =="
