#!/bin/sh
# Tier-1 verification: configure, build, run the full test suite, then
# rebuild with ThreadSanitizer and re-run the runner determinism test
# (the multi-worker ExperimentRunner must be data-race free).
#
# Usage: tools/check.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
JOBS="${M5_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== tier-1: configure + build ($BUILD) =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== tsan: build tests with -DM5_SANITIZE=thread =="
cmake -B "$BUILD-tsan" -S . -DM5_SANITIZE=thread
cmake --build "$BUILD-tsan" -j "$JOBS" --target test_runner

echo "== tsan: runner determinism + failure capture =="
# TSAN_OPTIONS makes any report fail the run instead of just printing.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    "$BUILD-tsan/tests/test_runner" \
    --gtest_filter='RunnerTest.*:RunnerDeterminismTest.*'

echo "== check.sh: all green =="
