/**
 * @file
 * m5lint per-file engine: lexing (comment/string stripping), rule
 * scoping, per-line pattern rules, suppression, and file discovery.
 * The cross-file rules live in m5lint_project.cc, over the model built
 * by m5lint_model.cc.
 *
 * The matcher is deliberately token-based rather than regex-based: the
 * linter scans its own source, and keeping every pattern as a plain
 * string that the stripper blanks out (patterns only ever appear inside
 * string literals) avoids the self-flagging problem without any
 * special-casing.
 */

#include "m5lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "m5lint_internal.hh"

namespace m5lint {
namespace detail {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
pathHasPrefix(const std::string &path, const std::string &prefix)
{
    std::string p = path;
    while (p.rfind("./", 0) == 0)
        p.erase(0, 2);
    std::string want = prefix;
    if (!want.empty() && want.back() == '/')
        want.pop_back();
    if (p == want || p.rfind(want + "/", 0) == 0)
        return true;
    // Absolute or nested invocation: match ".../<prefix>/" anywhere.
    return p.find("/" + want + "/") != std::string::npos ||
           (p.size() > want.size() &&
            p.compare(p.size() - want.size() - 1, want.size() + 1,
                      "/" + want) == 0);
}

bool
inDir(const std::string &path, const std::string &dir)
{
    return pathHasPrefix(path, dir);
}

bool
isHeaderPath(const std::string &path)
{
    auto ends = [&](const char *s) {
        const std::string suf(s);
        return path.size() >= suf.size() &&
               path.compare(path.size() - suf.size(), suf.size(), suf) == 0;
    };
    return ends(".hh") || ends(".hpp") || ends(".h");
}

// ---------------------------------------------------------------------
// Stripper: blank out comments and string/char literals, preserving
// line structure and column positions so diagnostics stay accurate.
// ---------------------------------------------------------------------

namespace {
enum class LexState { Normal, LineComment, BlockComment, Str, Chr, RawStr };
} // namespace

std::vector<Line>
splitAndStrip(const std::string &content)
{
    std::vector<Line> lines;
    std::string raw, stripped, comment;
    LexState st = LexState::Normal;
    std::string raw_delim;        // delimiter of the raw string being skipped
    std::size_t block_start = 0;  // index of the '/' opening a /* comment

    const std::size_t n = content.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = content[i];
        const char next = i + 1 < n ? content[i + 1] : '\0';
        if (c == '\n') {
            if (st == LexState::LineComment)
                st = LexState::Normal;
            lines.push_back({raw, stripped, comment});
            raw.clear();
            stripped.clear();
            comment.clear();
            continue;
        }
        raw.push_back(c);
        switch (st) {
        case LexState::Normal:
            if (c == '/' && next == '/') {
                st = LexState::LineComment;
                stripped.push_back(' ');
                comment.push_back(c);
            } else if (c == '/' && next == '*') {
                st = LexState::BlockComment;
                block_start = i;
                stripped.push_back(' ');
                comment.push_back(c);
            } else if (c == '"') {
                // Raw string?  The opening quote follows R (possibly
                // with a u8/u/U/L encoding prefix before the R).
                const bool raw_str = !raw.empty() && raw.size() >= 2 &&
                                     raw[raw.size() - 2] == 'R' &&
                                     (raw.size() == 2 ||
                                      !isIdentChar(raw[raw.size() - 3]) ||
                                      raw[raw.size() - 3] == '8' ||
                                      raw[raw.size() - 3] == 'u' ||
                                      raw[raw.size() - 3] == 'U' ||
                                      raw[raw.size() - 3] == 'L');
                if (raw_str) {
                    raw_delim.clear();
                    std::size_t j = i + 1;
                    while (j < n && content[j] != '(' &&
                           content[j] != '\n') {
                        raw_delim.push_back(content[j]);
                        ++j;
                    }
                    st = LexState::RawStr;
                } else {
                    st = LexState::Str;
                }
                stripped.push_back(' ');
                comment.push_back(' ');
            } else if (c == '\'') {
                // Distinguish '0' literals from 1'000'000 separators.
                const char prev =
                    raw.size() >= 2 ? raw[raw.size() - 2] : '\0';
                const bool sep =
                    std::isalnum(static_cast<unsigned char>(prev)) &&
                    std::isalnum(static_cast<unsigned char>(next));
                if (sep) {
                    stripped.push_back(' ');
                } else {
                    st = LexState::Chr;
                    stripped.push_back(' ');
                }
                comment.push_back(' ');
            } else {
                stripped.push_back(c);
                comment.push_back(' ');
            }
            break;
        case LexState::LineComment:
            stripped.push_back(' ');
            comment.push_back(c);
            break;
        case LexState::BlockComment:
            stripped.push_back(' ');
            comment.push_back(c);
            // The closing '*' must come after the opening "/*" pair
            // (so "/*/" stays open).
            if (c == '/' && i >= block_start + 3 && content[i - 1] == '*')
                st = LexState::Normal;
            break;
        case LexState::Str:
            stripped.push_back(' ');
            comment.push_back(' ');
            if (c == '\\') {
                if (next && next != '\n') {
                    raw.push_back(next);
                    stripped.push_back(' ');
                    comment.push_back(' ');
                    ++i;
                }
            } else if (c == '"') {
                st = LexState::Normal;
            }
            break;
        case LexState::Chr:
            stripped.push_back(' ');
            comment.push_back(' ');
            if (c == '\\') {
                if (next && next != '\n') {
                    raw.push_back(next);
                    stripped.push_back(' ');
                    comment.push_back(' ');
                    ++i;
                }
            } else if (c == '\'') {
                st = LexState::Normal;
            }
            break;
        case LexState::RawStr: {
            stripped.push_back(' ');
            comment.push_back(' ');
            const std::string close = ")" + raw_delim + "\"";
            if (c == '"' && raw.size() >= close.size() &&
                raw.compare(raw.size() - close.size(), close.size(),
                            close) == 0)
                st = LexState::Normal;
            break;
        }
        }
    }
    if (!raw.empty() || !stripped.empty())
        lines.push_back({raw, stripped, comment});
    return lines;
}

// ---------------------------------------------------------------------
// Token helpers on stripped lines.
// ---------------------------------------------------------------------

std::vector<std::size_t>
findTokens(const std::string &s, const std::string &tok)
{
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while ((pos = s.find(tok, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(s[pos - 1]);
        const std::size_t end = pos + tok.size();
        const bool right_ok = end >= s.size() || !isIdentChar(s[end]);
        if (left_ok && right_ok)
            out.push_back(pos);
        pos = end;
    }
    return out;
}

bool
isMemberAccess(const std::string &s, std::size_t pos)
{
    std::size_t i = pos;
    while (i > 0 && s[i - 1] == ' ')
        --i;
    if (i == 0)
        return false;
    if (s[i - 1] == '.')
        return true;
    return s[i - 1] == '>' && i >= 2 && s[i - 2] == '-';
}

bool
followedByParen(const std::string &s, std::size_t end)
{
    std::size_t i = end;
    while (i < s.size() && s[i] == ' ')
        ++i;
    return i < s.size() && s[i] == '(';
}

std::vector<std::size_t>
findCalls(const std::string &s, const std::string &tok)
{
    std::vector<std::size_t> out;
    for (std::size_t pos : findTokens(s, tok))
        if (followedByParen(s, pos + tok.size()) && !isMemberAccess(s, pos))
            out.push_back(pos);
    return out;
}

std::string
wordAt(const std::string &s, std::size_t i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '('))
        ++i;
    std::size_t j = i;
    while (j < s.size() && isIdentChar(s[j]))
        ++j;
    return s.substr(i, j - i);
}

bool
isPreprocessor(const std::string &stripped)
{
    for (char c : stripped) {
        if (c == ' ' || c == '\t')
            continue;
        return c == '#';
    }
    return false;
}

std::string
statementPrefix(const std::vector<Line> &lines, std::size_t li,
                std::size_t pos)
{
    std::string prefix;
    std::size_t end = pos;
    for (int back = 0; back < 4; ++back) {
        const std::string &t = lines[li].stripped;
        const std::size_t b = end == 0 ? std::string::npos
                                       : t.find_last_of(";{}", end - 1);
        if (b != std::string::npos) {
            prefix = t.substr(b + 1, end - b - 1) + prefix;
            break;
        }
        prefix = t.substr(0, end) + " " + prefix;
        if (li == 0)
            break;
        --li;
        end = lines[li].stripped.size();
    }
    // Normalize `->` to `.`, then trim leading whitespace.
    std::string norm;
    for (std::size_t j = 0; j < prefix.size(); ++j) {
        if (prefix[j] == '-' && j + 1 < prefix.size() &&
            prefix[j + 1] == '>') {
            norm.push_back('.');
            ++j;
        } else {
            norm.push_back(prefix[j]);
        }
    }
    const std::size_t b = norm.find_first_not_of(" \t");
    return b == std::string::npos ? "" : norm.substr(b);
}

PrefixKind
classifyPrefix(const std::string &norm)
{
    PrefixKind k;
    k.void_cast = norm.rfind("(void)", 0) == 0;
    k.returned = !findTokens(norm, "return").empty() ||
                 !findTokens(norm, "co_return").empty();
    // Consumed if anything but a bare object expression (identifiers,
    // scopes, member dots) precedes the call.
    k.bare = true;
    for (char c : norm) {
        if (!(isIdentChar(c) || c == '.' || c == ':' || c == ' ' ||
              c == '\t'))
            k.bare = false;
    }
    return k;
}

// ---------------------------------------------------------------------
// Suppression comments: `// m5lint: allow(rule-a, rule-b)` or
// `allow(*)` — recognized only in the comment channel, so the
// directive inside a string literal is data, not a suppression.
// ---------------------------------------------------------------------

std::vector<std::string>
lineSuppressions(const std::string &comment)
{
    std::vector<std::string> out;
    std::size_t pos = comment.find("m5lint:");
    if (pos == std::string::npos)
        return out;
    pos = comment.find("allow(", pos);
    if (pos == std::string::npos)
        return out;
    const std::size_t open = pos + 6;
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return out;
    std::string inside = comment.substr(open, close - open);
    std::string cur;
    for (char c : inside + ",") {
        if (c == ',' || c == ' ') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    return out;
}

std::vector<StatMember>
statShapedMembers(const std::vector<Line> &lines)
{
    // Heuristic: zero-initialized uint64_t members with stat-shaped
    // names (`hits_ = 0;`) are almost always event tallies.
    static const std::vector<std::string> statWords = {
        "hits",     "misses",   "count",  "counts",   "total",
        "accesses", "promoted", "demoted", "observed", "queries",
        "samples",  "faults",   "spills", "scans",     "evictions",
        "wakeups",  "drops",    "bytes",  "shootdowns"};
    std::vector<StatMember> out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        for (auto pos : findTokens(s, "uint64_t")) {
            std::size_t j = pos + 8;
            while (j < s.size() && (s[j] == ' ' || s[j] == '&'))
                ++j;
            std::size_t k = j;
            while (k < s.size() && isIdentChar(s[k]))
                ++k;
            if (k == j)
                continue;
            const std::string name = s.substr(j, k - j);
            std::size_t eq = k;
            while (eq < s.size() && s[eq] == ' ')
                ++eq;
            const bool zero_init =
                eq + 1 < s.size() && s[eq] == '=' &&
                wordAt(s, eq + 1) == "0";
            if (!zero_init)
                continue;
            bool statish = false;
            for (const auto &w : statWords) {
                if (!findTokens(name, w).empty() ||
                    name.find(w) != std::string::npos)
                    statish = true;
            }
            if (statish)
                out.push_back({static_cast<int>(i + 1), name});
        }
    }
    return out;
}

} // namespace detail

namespace {

using detail::findCalls;
using detail::findTokens;
using detail::followedByParen;
using detail::inDir;
using detail::isHeaderPath;
using detail::isIdentChar;
using detail::isMemberAccess;
using detail::isPreprocessor;
using detail::Line;
using detail::lineSuppressions;
using detail::pathHasPrefix;
using detail::wordAt;

bool
suppressed(const Diag &d, const std::vector<Line> &lines, const Config &cfg)
{
    if (d.line >= 1 && d.line <= static_cast<int>(lines.size())) {
        for (const auto &r : lineSuppressions(
                 lines[static_cast<std::size_t>(d.line - 1)].comment))
            if (r == "*" || r == d.rule)
                return true;
    }
    for (const auto &e : cfg.allow)
        if ((e.rule == "*" || e.rule == d.rule) &&
            pathHasPrefix(d.file, e.path))
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------

void
checkWallclock(const std::string &path, const std::vector<Line> &lines,
               std::vector<Diag> &out)
{
    const std::string rule = "no-wallclock";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        if (isPreprocessor(s))
            continue;
        const int ln = static_cast<int>(i + 1);
        for (auto pos : findTokens(s, "system_clock")) {
            (void)pos;
            out.push_back({path, ln, rule,
                           "std::chrono::system_clock reads the wall "
                           "clock; use steady_clock for intervals or the "
                           "sim Tick domain"});
        }
        for (const char *fn : {"gettimeofday", "clock_gettime", "time",
                               "localtime", "ctime", "mktime"}) {
            for (auto pos : findCalls(s, fn)) {
                (void)pos;
                out.push_back({path, ln, rule,
                               std::string(fn) +
                                   "() reads the wall clock; results "
                                   "must not depend on real time"});
            }
        }
    }
}

void
checkRawClock(const std::string &path, const std::vector<Line> &lines,
              std::vector<Diag> &out)
{
    // Monotonic clocks are determinism-safe, but host time must still
    // be *attributed*: every steady_clock read outside the profiler
    // bypasses the per-component accounting in src/telemetry/prof
    // (docs/PROFILING.md).  ProfClock::nowNs() is the sanctioned read,
    // so the prof module itself is exempt by path; the progress
    // display's repaint throttle is exempt via tools/m5lint.allow.
    if (path.find("src/telemetry/prof") != std::string::npos)
        return;
    const std::string rule = "no-raw-clock-outside-prof";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        if (isPreprocessor(s))
            continue;
        const int ln = static_cast<int>(i + 1);
        for (const char *clock : {"steady_clock", "high_resolution_clock"}) {
            for (auto pos : findTokens(s, clock)) {
                (void)pos;
                out.push_back({path, ln, rule,
                               std::string(clock) +
                                   " read outside src/telemetry/prof; "
                                   "host time belongs to the profiler — "
                                   "use ProfClock/PROF_SCOPE "
                                   "(docs/PROFILING.md)"});
            }
        }
    }
}

void
checkUnseededRng(const std::string &path, const std::vector<Line> &lines,
                 std::vector<Diag> &out)
{
    const std::string rule = "no-unseeded-rng";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        const int ln = static_cast<int>(i + 1);
        if (!findTokens(s, "random_device").empty())
            out.push_back({path, ln, rule,
                           "std::random_device is non-deterministic "
                           "entropy; route randomness through m5::Rng "
                           "(common/rng.hh) with an explicit seed"});
        for (const char *fn : {"rand", "srand"}) {
            for (auto pos : findCalls(s, fn)) {
                (void)pos;
                out.push_back({path, ln, rule,
                               std::string(fn) +
                                   "() is unseeded global state; use "
                                   "m5::Rng with an explicit seed"});
            }
        }
    }
}

/** Scope of the unordered-iteration rule: result-producing code. */
bool
unorderedRuleApplies(const std::string &path)
{
    return inDir(path, "bench") || pathHasPrefix(path, "src/analysis") ||
           path.find("src/sim/runner") != std::string::npos ||
           path.find("src/sim/sweep") != std::string::npos;
}

void
checkUnorderedIteration(const std::string &path,
                        const std::vector<Line> &lines,
                        std::vector<Diag> &out)
{
    const std::string rule = "no-unordered-result-iteration";
    if (!unorderedRuleApplies(path))
        return;

    // Pass A: names declared with an unordered container type.
    std::vector<std::string> names;
    for (const auto &l : lines) {
        const std::string &s = l.stripped;
        for (const char *ty : {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"}) {
            for (auto pos : findTokens(s, ty)) {
                std::size_t j = pos + std::string(ty).size();
                if (j >= s.size() || s[j] != '<')
                    continue;
                int depth = 0;
                for (; j < s.size(); ++j) {
                    if (s[j] == '<')
                        ++depth;
                    else if (s[j] == '>' && --depth == 0) {
                        ++j;
                        break;
                    }
                }
                if (depth != 0)
                    continue; // declaration spans lines; name unknown
                while (j < s.size() &&
                       (s[j] == ' ' || s[j] == '&' || s[j] == '*'))
                    ++j;
                std::size_t k = j;
                while (k < s.size() && isIdentChar(s[k]))
                    ++k;
                if (k > j)
                    names.push_back(s.substr(j, k - j));
            }
        }
    }

    // Pass B: range-for whose range is (or mentions) an unordered
    // container.
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        for (auto pos : findTokens(s, "for")) {
            std::size_t open = pos + 3;
            while (open < s.size() && s[open] == ' ')
                ++open;
            if (open >= s.size() || s[open] != '(')
                continue;
            // Find the range-for ':' at paren depth 1 (ignoring "::").
            int depth = 0;
            std::size_t colon = std::string::npos, close = std::string::npos;
            for (std::size_t j = open; j < s.size(); ++j) {
                if (s[j] == '(')
                    ++depth;
                else if (s[j] == ')') {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (s[j] == ':' && depth == 1 &&
                           colon == std::string::npos) {
                    const bool dbl = (j + 1 < s.size() && s[j + 1] == ':') ||
                                     (j > 0 && s[j - 1] == ':');
                    if (!dbl)
                        colon = j;
                }
            }
            if (colon == std::string::npos)
                continue;
            const std::string range = s.substr(
                colon + 1, (close == std::string::npos ? s.size() : close) -
                               colon - 1);
            bool hit = range.find("unordered_") != std::string::npos;
            for (const auto &nm : names)
                if (!hit && !findTokens(range, nm).empty())
                    hit = true;
            if (hit)
                out.push_back(
                    {path, static_cast<int>(i + 1), rule,
                     "range-for over an unordered container in "
                     "result-producing code; iteration order is "
                     "unspecified and must not reach output (copy into a "
                     "sorted container first)"});
        }
    }
}

void
checkRawParse(const std::string &path, const std::vector<Line> &lines,
              std::vector<Diag> &out)
{
    const std::string rule = "no-raw-parse";
    if (path.find("common/env") != std::string::npos)
        return; // the one sanctioned home of strto*/ato*
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        const int ln = static_cast<int>(i + 1);
        for (const char *fn :
             {"atof", "atoi", "atol", "atoll", "strtof", "strtod",
              "strtold", "strtol", "strtoll", "strtoul", "strtoull"}) {
            for (auto pos : findCalls(s, fn)) {
                (void)pos;
                out.push_back({path, ln, rule,
                               std::string(fn) +
                                   "() silently turns garbage into 0; "
                                   "parse through m5::env* "
                                   "(common/env.hh) instead"});
            }
        }
    }
}

void
checkRawOutput(const std::string &path, const std::vector<Line> &lines,
               std::vector<Diag> &out)
{
    const std::string rule = "no-raw-output";
    if (!inDir(path, "src"))
        return; // tools/bench own their stdout
    if (path.find("common/logging") != std::string::npos ||
        path.find("analysis/report") != std::string::npos)
        return; // the sanctioned emission funnels
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        const int ln = static_cast<int>(i + 1);
        for (auto pos : findCalls(s, "printf")) {
            (void)pos;
            out.push_back({path, ln, rule,
                           "printf() bypasses common/logging; library "
                           "output must flow through m5_inform/m5_warn or "
                           "analysis/report"});
        }
        for (auto pos : findCalls(s, "puts")) {
            (void)pos;
            out.push_back({path, ln, rule,
                           "puts() bypasses common/logging"});
        }
        for (auto pos : findCalls(s, "fprintf")) {
            std::size_t open = s.find('(', pos);
            if (open != std::string::npos &&
                wordAt(s, open + 1) == "stdout")
                out.push_back({path, ln, rule,
                               "fprintf(stdout, ...) bypasses "
                               "common/logging (stderr diagnostics are "
                               "fine)"});
        }
        for (auto pos : findTokens(s, "cout")) {
            (void)pos;
            out.push_back({path, ln, rule,
                           "std::cout in library code bypasses "
                           "common/logging and analysis/report"});
        }
    }
}

void
checkNakedNew(const std::string &path, const std::vector<Line> &lines,
              std::vector<Diag> &out)
{
    const std::string rule = "no-naked-new";
    if (!inDir(path, "src"))
        return;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        const int ln = static_cast<int>(i + 1);
        for (auto pos : findTokens(s, "new")) {
            (void)pos;
            out.push_back({path, ln, rule,
                           "naked new in library code; use "
                           "std::make_unique/std::vector so ownership is "
                           "explicit"});
        }
        for (const char *fn :
             {"malloc", "calloc", "realloc", "aligned_alloc", "strdup"}) {
            for (auto pos : findCalls(s, fn)) {
                (void)pos;
                out.push_back({path, ln, rule,
                               std::string(fn) +
                                   "() in library code; use RAII "
                                   "containers instead"});
            }
        }
    }
}

void
checkHeaderHygiene(const std::string &path, const std::vector<Line> &lines,
                   std::vector<Diag> &out)
{
    const std::string rule = "header-hygiene";
    if (!isHeaderPath(path))
        return;

    bool has_pragma = false;
    for (const auto &l : lines) {
        std::string t = l.raw;
        const std::size_t b = t.find_first_not_of(" \t");
        if (b != std::string::npos && t.compare(b, 12, "#pragma once") == 0) {
            has_pragma = true;
            break;
        }
    }
    if (!has_pragma)
        out.push_back({path, 1, rule,
                       "header lacks #pragma once (double inclusion "
                       "breaks the one-definition rule)"});

    // `using namespace` at namespace scope leaks into every includer.
    // Track whether any enclosing brace is a non-namespace scope.
    std::vector<bool> is_ns_brace;
    std::string ctx; // code since the last '{', '}' or ';'
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        for (std::size_t j = 0; j < s.size(); ++j) {
            const char c = s[j];
            if (c == '{') {
                is_ns_brace.push_back(!findTokens(ctx, "namespace").empty());
                ctx.clear();
            } else if (c == '}') {
                if (!is_ns_brace.empty())
                    is_ns_brace.pop_back();
                ctx.clear();
            } else if (c == ';') {
                ctx.clear();
            } else {
                ctx.push_back(c);
            }
            // At a potential `using namespace` token start?
            if (isIdentChar(c) && (j == 0 || !isIdentChar(s[j - 1])) &&
                s.compare(j, 5, "using") == 0 &&
                (j + 5 >= s.size() || !isIdentChar(s[j + 5]))) {
                const std::string word2 = wordAt(s, j + 5);
                if (word2 == "namespace" &&
                    std::none_of(is_ns_brace.begin(), is_ns_brace.end(),
                                 [](bool ns) { return !ns; }))
                    out.push_back(
                        {path, static_cast<int>(i + 1), rule,
                         "using-namespace at namespace scope in a header "
                         "leaks into every includer; qualify names or "
                         "move it into a function body"});
            }
        }
        ctx.push_back(' '); // keep tokens on adjacent lines separate
    }
}

void
checkWallclockTrace(const std::string &path, const std::vector<Line> &lines,
                    std::vector<Diag> &out)
{
    const std::string rule = "no-wallclock-trace";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        if (isPreprocessor(s))
            continue; // the macro definitions themselves
        for (const char *macro :
             {"TRACE_EVENT", "TRACE_SPAN", "TRACE_PAGE_ACCESS"}) {
            for (auto pos : findTokens(s, macro)) {
                // Collect the macro's argument text, which may span
                // lines, by walking to the matching close paren.
                std::string args;
                int depth = 0;
                bool done = false;
                for (std::size_t li = i; li < lines.size() && !done;
                     ++li) {
                    const std::string &t = lines[li].stripped;
                    for (std::size_t j = li == i ? pos : 0;
                         j < t.size(); ++j) {
                        const char c = t[j];
                        if (c == '(') {
                            ++depth;
                        } else if (c == ')' && --depth == 0) {
                            done = true;
                            break;
                        }
                        if (depth > 0)
                            args.push_back(c);
                    }
                    args.push_back(' ');
                }
                for (const char *tok :
                     {"chrono", "steady_clock", "system_clock",
                      "high_resolution_clock", "clock_gettime",
                      "gettimeofday"}) {
                    if (findTokens(args, tok).empty())
                        continue;
                    out.push_back(
                        {path, static_cast<int>(i + 1), rule,
                         std::string(macro) +
                             " argument reads the wall clock ('" + tok +
                             "'); trace timestamps must come from the "
                             "simulated Tick domain or reruns stop "
                             "being byte-identical"});
                    break;
                }
            }
        }
    }
}

/** Scope of the untracked-stat rule: instrumented simulator layers.
 *  common/, workloads/, analysis/ and telemetry/ itself keep plain
 *  tallies; everything the StatRegistry walks must register them. */
bool
untrackedStatRuleApplies(const std::string &path)
{
    if (!isHeaderPath(path))
        return false;
    for (const char *dir : {"src/mem", "src/cache", "src/cxl", "src/os",
                            "src/m5", "src/sim", "src/fault"})
        if (pathHasPrefix(path, dir))
            return true;
    return false;
}

void
checkUntrackedStat(const std::string &path, const std::vector<Line> &lines,
                   std::vector<Diag> &out)
{
    const std::string rule = "no-untracked-stat";
    if (!untrackedStatRuleApplies(path))
        return;

    // A header that exposes registerStats is assumed to register its
    // tallies there; the cross-file dead-stat rule audits that claim.
    for (const auto &l : lines)
        if (!findTokens(l.stripped, "registerStats").empty())
            return;

    for (const auto &m : detail::statShapedMembers(lines))
        out.push_back(
            {path, m.line, rule,
             "counter-shaped member '" + m.name +
                 "' in an instrumented layer but the header has no "
                 "registerStats(); expose it to the StatRegistry or "
                 "allowlist the file (docs/LINT.md)"});
}

/**
 * no-unchecked-migrate-result: a member call to promote()/promoteBatch()/
 * move()/exchange()/demote()/moveTxn() whose result is discarded.
 * MigrateResult/BatchResult/PromoteRound/TxnMoveResult carry the
 * per-page outcome (transient vs permanent failure, commit vs abort)
 * that the retry pipeline runs on; dropping one silently swallows
 * failures.
 * `[[nodiscard]]` + -DM5_WERROR is the compile-time enforcement — this
 * is the greppable complement that also covers unbuilt configurations.
 * An explicit `(void)` cast marks a deliberate discard and passes.
 * The cross-file twin (transitive-unchecked-migrate-result,
 * m5lint_project.cc) chases the same defect through wrapper functions.
 */
void
checkUncheckedMigrateResult(const std::string &path,
                            const std::vector<Line> &lines,
                            std::vector<Diag> &out)
{
    const std::string rule = "no-unchecked-migrate-result";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &s = lines[i].stripped;
        if (isPreprocessor(s))
            continue;
        for (const char *fn :
             {"promote", "promoteBatch", "move", "exchange", "demote",
              "moveTxn"}) {
            for (auto pos : findTokens(s, fn)) {
                if (!isMemberAccess(s, pos) ||
                    !followedByParen(s, pos + std::string(fn).size()))
                    continue;
                const auto kind = detail::classifyPrefix(
                    detail::statementPrefix(lines, i, pos));
                if (kind.void_cast || kind.returned || !kind.bare)
                    continue;
                out.push_back(
                    {path, static_cast<int>(i + 1), rule,
                     std::string(fn) +
                         "() result discarded; MigrateResult/"
                         "BatchResult/PromoteRound/TxnMoveResult carry "
                         "the per-page failure outcome the retry "
                         "pipeline needs — check it or cast to (void) "
                         "deliberately"});
            }
        }
    }
}

} // namespace

std::string
Diag::str() const
{
    std::ostringstream os;
    os << file << ":" << line << ": " << rule << ": " << msg;
    return os.str();
}

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        "no-wallclock",
        "no-wallclock-trace",
        "no-raw-clock-outside-prof",
        "no-unseeded-rng",
        "no-unordered-result-iteration",
        "no-raw-parse",
        "no-raw-output",
        "no-naked-new",
        "header-hygiene",
        "no-untracked-stat",
        "no-unchecked-migrate-result",
        "layering",
        "transitive-unchecked-migrate-result",
        "dead-stat",
        "stale-suppression",
    };
    return rules;
}

const std::string &
ruleHelp(const std::string &rule)
{
    static const std::map<std::string, std::string> help = {
        {"no-wallclock",
         "wall-clock read; results must not depend on real time"},
        {"no-wallclock-trace",
         "wall-clock value inside a TRACE_* argument list"},
        {"no-raw-clock-outside-prof",
         "monotonic-clock read outside src/telemetry/prof; use "
         "ProfClock/PROF_SCOPE"},
        {"no-unseeded-rng",
         "non-deterministic randomness; use m5::Rng with an explicit seed"},
        {"no-unordered-result-iteration",
         "unordered-container iteration order reaching results"},
        {"no-raw-parse",
         "atof/strto* parsing; use m5::env*/m5::parse* instead"},
        {"no-raw-output",
         "stdout bypassing common/logging or analysis/report"},
        {"no-naked-new",
         "raw allocation in library code; use RAII"},
        {"header-hygiene",
         "missing #pragma once or namespace-scope using-directive"},
        {"no-untracked-stat",
         "counter-shaped member invisible to the StatRegistry"},
        {"no-unchecked-migrate-result",
         "MigrateResult/BatchResult/PromoteRound discarded at a call site"},
        {"layering",
         "include edge violating the module DAG in tools/m5lint.layers"},
        {"transitive-unchecked-migrate-result",
         "MigrateResult discarded through a wrapper (call-graph taint)"},
        {"dead-stat",
         "stat registered but never incremented, or declared but never "
         "registered"},
        {"stale-suppression",
         "allow() comment, allowlist entry or layer exception that no "
         "longer suppresses anything"},
    };
    static const std::string empty;
    const auto it = help.find(rule);
    return it == help.end() ? empty : it->second;
}

namespace detail {

std::vector<Diag>
rawLintSource(const std::string &path, const std::vector<Line> &lines)
{
    std::vector<Diag> diags;
    checkWallclock(path, lines, diags);
    checkWallclockTrace(path, lines, diags);
    checkRawClock(path, lines, diags);
    checkUnseededRng(path, lines, diags);
    checkUnorderedIteration(path, lines, diags);
    checkRawParse(path, lines, diags);
    checkRawOutput(path, lines, diags);
    checkNakedNew(path, lines, diags);
    checkHeaderHygiene(path, lines, diags);
    checkUntrackedStat(path, lines, diags);
    checkUncheckedMigrateResult(path, lines, diags);
    std::stable_sort(diags.begin(), diags.end(),
                     [](const Diag &a, const Diag &b) {
                         return a.line < b.line;
                     });
    return diags;
}

} // namespace detail

Config
loadAllowFile(const std::string &path, std::vector<std::string> *errors)
{
    Config cfg;
    std::ifstream in(path);
    if (!in) {
        if (errors)
            errors->push_back("cannot open allowlist '" + path + "'");
        return cfg;
    }
    std::string line;
    int ln = 0;
    while (std::getline(in, line)) {
        ++ln;
        const std::size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos || line[b] == '#')
            continue;
        std::istringstream is(line);
        std::string rule, prefix, extra;
        is >> rule >> prefix;
        const auto &rules = allRules();
        if (prefix.empty() ||
            (rule != "*" &&
             std::find(rules.begin(), rules.end(), rule) == rules.end())) {
            if (errors)
                errors->push_back(path + ":" + std::to_string(ln) +
                                  ": bad allowlist entry '" + line + "'");
            continue;
        }
        cfg.allow.push_back({rule, prefix, path, ln});
    }
    return cfg;
}

std::vector<Diag>
lintSource(const std::string &path, const std::string &content,
           const Config &cfg)
{
    const std::vector<Line> lines = detail::splitAndStrip(content);
    std::vector<Diag> diags = detail::rawLintSource(path, lines);
    diags.erase(std::remove_if(diags.begin(), diags.end(),
                               [&](const Diag &d) {
                                   return suppressed(d, lines, cfg);
                               }),
                diags.end());
    return diags;
}

std::vector<Diag>
lintFile(const std::string &path, const Config &cfg)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {{path, 0, "io-error", "cannot read file"}};
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(path, ss.str(), cfg);
}

std::vector<std::string>
collectFiles(const std::vector<std::string> &roots)
{
    namespace fs = std::filesystem;
    auto lintable = [](const fs::path &p) {
        const std::string ext = p.extension().string();
        return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
               ext == ".hh" || ext == ".hpp" || ext == ".h";
    };
    std::vector<std::string> files;
    for (const auto &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 it != fs::recursive_directory_iterator();
                 it.increment(ec)) {
                if (ec)
                    break;
                if (it->is_regular_file(ec) && lintable(it->path()))
                    files.push_back(it->path().generic_string());
            }
        } else if (fs::is_regular_file(root, ec)) {
            files.push_back(fs::path(root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

} // namespace m5lint
