/**
 * @file
 * m5lint cross-file rules, run over the ProjectModel
 * (m5lint_model.cc):
 *
 *  - layering: quoted-include edges checked against the module DAG in
 *    tools/m5lint.layers, plus include-cycle detection;
 *  - transitive-unchecked-migrate-result: call-graph taint — a
 *    discarded call to anything that (transitively) returns a
 *    MigrateResult/BatchResult/PromoteRound/TxnMoveResult, and wrapped
 *    seed return types missing [[nodiscard]];
 *  - dead-stat: stats registered in registerStats() but never
 *    incremented, and counter-shaped members never registered;
 *  - stale-suppression: allow() comments, allowlist entries and layer
 *    exceptions that no longer suppress anything.
 *
 * Plus the SARIF 2.1.0 renderer for CI code-scanning annotations.
 */

#include "m5lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>

#include "m5lint_internal.hh"

namespace m5lint {

namespace {

using detail::findTokens;
using detail::isHeaderPath;
using detail::isIdentChar;
using detail::isPreprocessor;
using detail::pathHasPrefix;

std::string
dirOf(const std::string &path)
{
    return std::filesystem::path(path).parent_path().generic_string();
}

// ---------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------

void
checkLayering(const ProjectModel &model, const LayersFile &layers,
              std::vector<bool> &exception_used, std::vector<Diag> &out)
{
    for (const auto &fm : model.files) {
        const std::string from_layer = layers.layerOf(fm.path);
        if (from_layer.empty())
            continue; // unowned files are unconstrained
        for (const auto &inc : fm.includes) {
            if (inc.resolved.empty())
                continue; // not a project file (or unresolvable)
            const std::string to_layer = layers.layerOf(inc.resolved);
            if (to_layer.empty() ||
                layers.allows(from_layer, to_layer))
                continue;
            bool excepted = false;
            for (std::size_t e = 0; e < layers.exceptions.size(); ++e) {
                const auto &ex = layers.exceptions[e];
                if (pathHasPrefix(fm.path, ex.src) &&
                    pathHasPrefix(inc.resolved, ex.dst)) {
                    exception_used[e] = true;
                    excepted = true;
                    break;
                }
            }
            if (excepted)
                continue;
            out.push_back(
                {fm.path, inc.line, "layering",
                 "include of '" + inc.target + "' crosses the module "
                 "DAG: layer '" + from_layer + "' may not depend on '" +
                 to_layer + "' (" + layers.path + "; add the edge or an "
                 "`except` with justification)"});
        }
    }

    // Include cycles are layering defects even inside one layer.
    // Iterative DFS, white(0)/gray(1)/black(2), canonicalized by
    // rotating each cycle to start at its smallest path.
    std::map<std::string, int> color;
    std::set<std::string> reported;
    for (const auto &root : model.files) {
        if (color[root.path])
            continue;
        std::vector<std::string> stack = {root.path};
        std::vector<std::string> path_stack;
        while (!stack.empty()) {
            const std::string cur = stack.back();
            if (color[cur] == 0) {
                color[cur] = 1;
                path_stack.push_back(cur);
                const FileModel *fm = model.find(cur);
                if (fm) {
                    for (auto it = fm->includes.rbegin();
                         it != fm->includes.rend(); ++it) {
                        const std::string &nxt = it->resolved;
                        if (nxt.empty())
                            continue;
                        if (color[nxt] == 1) {
                            // Found a back edge: extract the cycle.
                            auto b = std::find(path_stack.begin(),
                                               path_stack.end(), nxt);
                            std::vector<std::string> cyc(b,
                                                         path_stack.end());
                            auto small = std::min_element(cyc.begin(),
                                                          cyc.end());
                            std::rotate(cyc.begin(), small, cyc.end());
                            std::string key;
                            for (const auto &p : cyc)
                                key += p + " -> ";
                            if (reported.insert(key).second) {
                                const FileModel *head =
                                    model.find(cyc.front());
                                int line = 1;
                                if (head)
                                    for (const auto &i2 : head->includes)
                                        if (i2.resolved ==
                                            cyc[1 % cyc.size()])
                                            line = i2.line;
                                out.push_back(
                                    {cyc.front(), line, "layering",
                                     "include cycle: " + key +
                                         cyc.front()});
                            }
                        } else if (color[nxt] == 0) {
                            stack.push_back(nxt);
                        }
                    }
                }
            } else {
                if (color[cur] == 1 && !path_stack.empty() &&
                    path_stack.back() == cur) {
                    color[cur] = 2;
                    path_stack.pop_back();
                }
                stack.pop_back();
            }
        }
    }
}

// ---------------------------------------------------------------------
// transitive-unchecked-migrate-result
// ---------------------------------------------------------------------

const char *kSeedTypes[] = {"MigrateResult", "BatchResult", "PromoteRound",
                            "TxnMoveResult"};

// Method names so common (std::move!) that only member calls count.
const char *kAmbiguous[] = {"promote", "promoteBatch", "move", "exchange",
                            "demote", "moveTxn"};

bool
isAmbiguousName(const std::string &name)
{
    for (const char *a : kAmbiguous)
        if (name == a)
            return true;
    return false;
}

bool
retHasSeed(const std::string &ret, std::string *which = nullptr)
{
    for (const char *t : kSeedTypes) {
        if (!findTokens(ret, t).empty()) {
            if (which)
                *which = t;
            return true;
        }
    }
    return false;
}

void
checkTransitiveMigrate(const ProjectModel &model, std::vector<Diag> &out)
{
    const std::string rule = "transitive-unchecked-migrate-result";

    // Seeds: every function whose declared return type carries a
    // result type.  chain[name] records how the taint was established,
    // for the diagnostic.
    std::map<std::string, std::vector<std::string>> chain;
    for (const auto &fm : model.files)
        for (const auto &fn : fm.functions)
            if (retHasSeed(fn.ret) && !chain.count(fn.name))
                chain[fn.name] = {fn.name};

    // Wrapped seed returns (std::optional<MigrateResult> etc.) lose the
    // result type's own [[nodiscard]]; the declaration must restore it.
    // [[nodiscard]] on any declaration covers the out-of-line
    // definition, so a name marked anywhere is satisfied everywhere.
    // Dedupe per qualified name, preferring the header declaration.
    std::set<std::string> nodiscard_names;
    for (const auto &fm : model.files)
        for (const auto &fn : fm.functions)
            if (fn.nodiscard)
                nodiscard_names.insert(fn.name);
    std::map<std::string, Diag> nodiscard_gap;
    for (const auto &fm : model.files) {
        for (const auto &fn : fm.functions) {
            std::string seed;
            if (!retHasSeed(fn.ret, &seed) || fn.nodiscard ||
                nodiscard_names.count(fn.name))
                continue;
            const std::size_t sp = fn.ret.find(seed);
            const std::size_t lt = fn.ret.find('<');
            if (lt == std::string::npos || lt > sp)
                continue; // bare seed type: [[nodiscard]] on the struct
            Diag d{fm.path, fn.line, rule,
                   fn.qualified + "() returns " + seed + " wrapped in a "
                   "template; the wrapper is not [[nodiscard]], so "
                   "callers can silently drop the migration outcome — "
                   "mark the declaration [[nodiscard]]"};
            auto it = nodiscard_gap.find(fn.qualified);
            if (it == nodiscard_gap.end() ||
                (isHeaderPath(fm.path) && !isHeaderPath(it->second.file)))
                nodiscard_gap[fn.qualified] = d;
        }
    }
    for (const auto &kv : nodiscard_gap)
        out.push_back(kv.second);

    auto isSeedCall = [&](const CallSite &cs) {
        if (isAmbiguousName(cs.name))
            return cs.member; // engine.move(...) yes, std::move(...) no
        return chain.count(cs.name) != 0;
    };

    // Fixpoint: `auto wrap() { return doMove(); }` — returning a
    // tainted call's result makes the wrapper a seed too, so discards
    // of the wrapper are flagged with the full chain.
    for (bool changed = true; changed;) {
        changed = false;
        for (const auto &fm : model.files) {
            for (const auto &fn : fm.functions) {
                if (!fn.is_definition || chain.count(fn.name))
                    continue;
                for (const auto &cs : fn.calls) {
                    if (!cs.returned || !isSeedCall(cs))
                        continue;
                    std::vector<std::string> c = {fn.name};
                    const auto it = chain.find(cs.name);
                    if (it != chain.end())
                        c.insert(c.end(), it->second.begin(),
                                 it->second.end());
                    else
                        c.push_back(cs.name);
                    chain[fn.name] = c;
                    changed = true;
                    break;
                }
            }
        }
    }

    // Swallow points: a discarded call to anything tainted.  Member
    // calls on the ambiguous five are already the per-file
    // no-unchecked-migrate-result rule's territory — don't double-flag.
    for (const auto &fm : model.files) {
        for (const auto &fn : fm.functions) {
            if (!fn.is_definition)
                continue;
            for (const auto &cs : fn.calls) {
                if (!cs.discarded || !isSeedCall(cs))
                    continue;
                if (isAmbiguousName(cs.name) && cs.member)
                    continue;
                std::string via;
                const auto it = chain.find(cs.name);
                if (it != chain.end() && it->second.size() > 1) {
                    via = " (taint chain: ";
                    for (std::size_t i = 0; i < it->second.size(); ++i)
                        via += (i ? " -> " : "") + it->second[i];
                    via += ")";
                }
                out.push_back(
                    {fm.path, cs.line, rule,
                     fn.qualified + "() discards the result of " +
                         cs.name + "(), which carries a migration "
                         "outcome" + via + "; check it or cast to "
                         "(void) deliberately"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// dead-stat
// ---------------------------------------------------------------------

/** Instrumented layers (keep in sync with no-untracked-stat). */
bool
instrumentedLayer(const std::string &path)
{
    for (const char *dir : {"src/mem", "src/cache", "src/cxl", "src/os",
                            "src/m5", "src/sim", "src/fault"})
        if (pathHasPrefix(path, dir))
            return true;
    return false;
}

struct Registration
{
    std::string name;  //!< registered member identifier (chain root)
    std::string chain; //!< last member of `&root.a.b` (empty: no chain)
    int line = 0;      //!< line of the `&member` argument
};

/** Step `pos` over a `.ident` / `->ident` member chain (subscripts
 *  allowed after each member); returns the index just past the chain
 *  and, via `last`, the final member identifier.  `pos` itself must
 *  already sit just past an identifier. */
std::size_t
stepMemberChain(const std::string &s, std::size_t pos, std::string *last)
{
    while (true) {
        std::size_t m = pos;
        while (m < s.size() && s[m] == ' ')
            ++m;
        if (m < s.size() && s[m] == '.') {
            ++m;
        } else if (m + 1 < s.size() && s[m] == '-' && s[m + 1] == '>') {
            m += 2;
        } else {
            return pos;
        }
        while (m < s.size() && s[m] == ' ')
            ++m;
        // Member access, not a floating literal or operator soup.
        if (m >= s.size() || !isIdentChar(s[m]) ||
            (s[m] >= '0' && s[m] <= '9'))
            return pos;
        const std::size_t mb = m;
        while (m < s.size() && isIdentChar(s[m]))
            ++m;
        // `x.add(` is a method call, not a deeper member — stop before
        // it so callers can still see the call shape at `pos`.
        std::size_t after = m;
        while (after < s.size() && s[after] == ' ')
            ++after;
        if (after < s.size() && s[after] == '(')
            return pos;
        if (last)
            *last = s.substr(mb, m - mb);
        // Step a subscript on the member: `c.cycles[i]`.
        if (after < s.size() && s[after] == '[') {
            int depth = 0;
            while (after < s.size()) {
                if (s[after] == '[')
                    ++depth;
                else if (s[after] == ']' && --depth == 0) {
                    ++after;
                    break;
                }
                ++after;
            }
            m = after;
        }
        pos = m;
    }
}

/** registerStats() definitions in a file: `&ident` registrations plus
 *  the set of every identifier its bodies mention (gauge lambdas pull
 *  counters in without taking their address). */
void
registerStatsInfo(const FileModel &fm, std::vector<Registration> &regs,
                  std::set<std::string> &exposed,
                  std::vector<std::pair<int, int>> &bodies)
{
    for (const auto &fn : fm.functions) {
        if (fn.name != "registerStats" || !fn.is_definition ||
            fn.body_end < fn.body_begin)
            continue;
        bodies.emplace_back(fn.body_begin, fn.body_end);
        for (int ln = fn.body_begin; ln <= fn.body_end; ++ln) {
            const std::string &s =
                fm.lines[static_cast<std::size_t>(ln - 1)].stripped;
            for (std::size_t i = 0; i < s.size(); ++i) {
                if (!isIdentChar(s[i]) ||
                    (i > 0 && isIdentChar(s[i - 1])))
                    continue;
                std::size_t j = i;
                while (j < s.size() && isIdentChar(s[j]))
                    ++j;
                const std::string ident = s.substr(i, j - i);
                exposed.insert(ident);
                // Registration: `&ident` (not `&&`).  The ident may be
                // a chain root (`&c.accesses` registers the counter of
                // a loop-local ref); record the chain's last member too
                // so liveness can match either end.
                std::size_t k = i;
                while (k > 0 && s[k - 1] == ' ')
                    --k;
                if (k > 0 && s[k - 1] == '&' &&
                    !(k > 1 && s[k - 2] == '&')) {
                    // `Counters &c : counters_` / `auto &e = ...` are
                    // reference declarations, not address-of: a type
                    // (identifier or closing template `>`) sits left
                    // of the `&`.
                    std::size_t t = k - 1;
                    while (t > 0 && s[t - 1] == ' ')
                        --t;
                    const bool ref_decl =
                        t > 0 && (isIdentChar(s[t - 1]) || s[t - 1] == '>');
                    if (!ref_decl) {
                        std::string chain;
                        stepMemberChain(s, j, &chain);
                        regs.push_back({ident, chain, ln});
                    }
                }
                i = j;
            }
        }
    }
}

/** Any statement in `fm` (outside the given registerStats bodies) that
 *  plausibly mutates `name`: ++/--, compound assign, plain assign,
 *  address-taken, or .add()/.observe()/.record() member growth. */
bool
mutatesIdent(const FileModel &fm, const std::string &name,
             const std::vector<std::pair<int, int>> &skip_bodies)
{
    auto inSkip = [&](int ln) {
        for (const auto &b : skip_bodies)
            if (ln >= b.first && ln <= b.second)
                return true;
        return false;
    };
    for (std::size_t li = 0; li < fm.lines.size(); ++li) {
        const std::string &s = fm.lines[li].stripped;
        for (auto pos : findTokens(s, name)) {
            const int ln = static_cast<int>(li + 1);
            // Chars around the token, skipping spaces.
            std::size_t b = pos;
            while (b > 0 && s[b - 1] == ' ')
                --b;
            std::size_t a = pos + name.size();
            while (a < s.size() && s[a] == ' ')
                ++a;
            // Step over a subscript: `cycles_[i] += c` mutates too.
            if (a < s.size() && s[a] == '[') {
                int depth = 0;
                while (a < s.size()) {
                    if (s[a] == '[')
                        ++depth;
                    else if (s[a] == ']' && --depth == 0) {
                        ++a;
                        break;
                    }
                    ++a;
                }
                while (a < s.size() && s[a] == ' ')
                    ++a;
            }
            // ++x / --x
            if (b >= 2 && ((s[b - 1] == '+' && s[b - 2] == '+') ||
                           (s[b - 1] == '-' && s[b - 2] == '-')))
                return true;
            // x++ / x--
            if (a + 1 < s.size() && ((s[a] == '+' && s[a + 1] == '+') ||
                                     (s[a] == '-' && s[a + 1] == '-')))
                return true;
            // x +=, -=, |=, &=, ^=
            if (a + 1 < s.size() && s[a + 1] == '=' &&
                (s[a] == '+' || s[a] == '-' || s[a] == '|' ||
                 s[a] == '&' || s[a] == '^'))
                return true;
            // Plain assignment `x = ...` — but not `==`, and not the
            // declaration itself (`uint64_t x = 0`: a type token sits
            // right before the name).
            if (a < s.size() && s[a] == '=' &&
                !(a + 1 < s.size() && s[a + 1] == '=') &&
                !(b > 0 && isIdentChar(s[b - 1])))
                return true;
            // Address escapes outside registerStats (someone else
            // updates it through a pointer).
            if (b > 0 && s[b - 1] == '&' &&
                !(b > 1 && s[b - 2] == '&') && !inSkip(ln))
                return true;
            // Histogram-style growth: x.add(...), x->observe(...)
            if (a < s.size() && (s[a] == '.' ||
                                 (s[a] == '-' && a + 1 < s.size() &&
                                  s[a + 1] == '>'))) {
                const std::string rest = s.substr(a);
                for (const char *m : {"add", "observe", "record", "sample"}) {
                    const std::string dot = "." + std::string(m) + "(";
                    const std::string arr = "->" + std::string(m) + "(";
                    if (rest.rfind(dot, 0) == 0 || rest.rfind(arr, 0) == 0)
                        return true;
                }
            }
            // Mutation through a member chain: `hits_[i].count++` or
            // `stats_.promoted += n` mutates the root object too.
            // Re-run the postfix shapes at the end of the chain; the
            // call-shape stop in stepMemberChain keeps `x.size()`-style
            // reads from matching.
            const std::size_t ce = stepMemberChain(s, a, nullptr);
            if (ce != a) {
                std::size_t c = ce;
                while (c < s.size() && s[c] == ' ')
                    ++c;
                if (c + 1 < s.size() &&
                    ((s[c] == '+' && s[c + 1] == '+') ||
                     (s[c] == '-' && s[c + 1] == '-')))
                    return true;
                if (c + 1 < s.size() && s[c + 1] == '=' &&
                    (s[c] == '+' || s[c] == '-' || s[c] == '|' ||
                     s[c] == '&' || s[c] == '^'))
                    return true;
                if (c < s.size() && s[c] == '=' &&
                    !(c + 1 < s.size() && s[c + 1] == '='))
                    return true;
            }
        }
    }
    return false;
}

void
checkDeadStat(const ProjectModel &model, std::vector<Diag> &out)
{
    const std::string rule = "dead-stat";

    // Group files by directory: a stat registered in a header counts as
    // live when anything in the same directory mutates it (the class
    // impl lives next to its header; name-matching across the whole
    // tree would alias unrelated `hits_` members).
    std::map<std::string, std::vector<const FileModel *>> by_dir;
    for (const auto &fm : model.files)
        by_dir[dirOf(fm.path)].push_back(&fm);

    for (const auto &fm : model.files) {
        if (!instrumentedLayer(fm.path))
            continue;
        std::vector<Registration> regs;
        std::set<std::string> exposed;
        std::vector<std::pair<int, int>> bodies;
        registerStatsInfo(fm, regs, exposed, bodies);

        const auto &neighbors = by_dir[dirOf(fm.path)];

        // Direction 1: registered but never incremented.  A chained
        // registration (`&c.accesses` through a loop-local ref, the
        // dynamically-named `tenant.<id>.*` pattern) is live when
        // EITHER end of the chain mutates: the root is often a
        // never-reassigned local, while the member is what the hot
        // path actually increments.
        std::set<std::string> seen;
        for (const auto &r : regs) {
            if (!seen.insert(r.name + "." + r.chain).second)
                continue;
            bool live = false;
            for (const FileModel *nb : neighbors) {
                const auto skip = nb == &fm
                                      ? bodies
                                      : std::vector<std::pair<int, int>>{};
                if (mutatesIdent(*nb, r.name, skip) ||
                    (!r.chain.empty() && mutatesIdent(*nb, r.chain, skip))) {
                    live = true;
                    break;
                }
            }
            const std::string shown =
                r.chain.empty() ? r.name : r.name + "." + r.chain;
            if (!live)
                out.push_back(
                    {fm.path, r.line, rule,
                     "stat '" + shown + "' is registered here but "
                     "nothing in " + dirOf(fm.path) + "/ ever updates "
                     "it; it will report 0 forever — wire it up or "
                     "delete the registration"});
        }

        // Direction 2: counter-shaped member in a header that has
        // registerStats(), but the member never appears in any
        // registerStats body.  (Headers with no registerStats at all
        // are the per-file no-untracked-stat rule's case.)
        if (isHeaderPath(fm.path) && !bodies.empty()) {
            for (const auto &m : fm.stat_members) {
                if (exposed.count(m.name))
                    continue;
                out.push_back(
                    {fm.path, m.line, rule,
                     "counter-shaped member '" + m.name + "' is never "
                     "registered in this header's registerStats(); the "
                     "StatRegistry cannot see it — register it or "
                     "allowlist the file (docs/LINT.md)"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// Suppression accounting + stale-suppression.
// ---------------------------------------------------------------------

struct SuppressionLedger
{
    //! (file index, allows index) of inline directives that suppressed.
    std::set<std::pair<std::size_t, std::size_t>> inline_used;
    std::vector<bool> allow_used;      //!< parallel to cfg.allow
    std::vector<bool> exception_used;  //!< parallel to layers->exceptions
};

/** True (and records usage) when `d` is suppressed by an inline
 *  directive or an allowlist entry. */
bool
suppressedTracked(const Diag &d, const ProjectModel &model,
                  const Config &cfg, SuppressionLedger &ledger)
{
    const auto it = model.by_path.find(d.file);
    if (it != model.by_path.end()) {
        const FileModel &fm = model.files[it->second];
        for (std::size_t ai = 0; ai < fm.allows.size(); ++ai) {
            const InlineAllow &ia = fm.allows[ai];
            if (ia.line != d.line)
                continue;
            for (const auto &r : ia.rules) {
                if (r == "*" || r == d.rule) {
                    ledger.inline_used.insert({it->second, ai});
                    return true;
                }
            }
        }
    }
    for (std::size_t ei = 0; ei < cfg.allow.size(); ++ei) {
        const AllowEntry &e = cfg.allow[ei];
        if ((e.rule == "*" || e.rule == d.rule) &&
            pathHasPrefix(d.file, e.path)) {
            ledger.allow_used[ei] = true;
            return true;
        }
    }
    return false;
}

} // namespace

std::vector<Diag>
lintProjectModel(const ProjectModel &model, const Config &cfg,
                 const LayersFile *layers, const ProjectOptions &opts)
{
    SuppressionLedger ledger;
    ledger.allow_used.assign(cfg.allow.size(), false);
    ledger.exception_used.assign(
        layers ? layers->exceptions.size() : 0, false);

    std::vector<Diag> raw;
    for (const auto &fm : model.files) {
        if (fm.io_error) {
            raw.push_back({fm.path, 0, "io-error", "cannot read file"});
            continue;
        }
        auto d = detail::rawLintSource(fm.path, fm.lines);
        raw.insert(raw.end(), d.begin(), d.end());
    }

    if (layers)
        checkLayering(model, *layers, ledger.exception_used, raw);
    checkTransitiveMigrate(model, raw);
    checkDeadStat(model, raw);

    std::vector<Diag> out;
    for (const auto &d : raw)
        if (!suppressedTracked(d, model, cfg, ledger))
            out.push_back(d);

    if (opts.stale_check) {
        std::vector<Diag> stale;
        for (std::size_t fi = 0; fi < model.files.size(); ++fi) {
            const FileModel &fm = model.files[fi];
            for (std::size_t ai = 0; ai < fm.allows.size(); ++ai) {
                if (ledger.inline_used.count({fi, ai}))
                    continue;
                const InlineAllow &ia = fm.allows[ai];
                std::string rules;
                for (std::size_t r = 0; r < ia.rules.size(); ++r)
                    rules += (r ? ", " : "") + ia.rules[r];
                stale.push_back(
                    {fm.path, ia.line, "stale-suppression",
                     "allow(" + rules + ") suppresses nothing on this "
                     "line any more; delete the comment"});
            }
        }
        for (std::size_t ei = 0; ei < cfg.allow.size(); ++ei) {
            if (ledger.allow_used[ei])
                continue;
            const AllowEntry &e = cfg.allow[ei];
            if (e.from_line == 0)
                continue; // synthesized in-memory, not auditable
            // Only audit entries whose prefix is actually covered by
            // this scan; a partial scan must not flag entries for the
            // unscanned rest of the tree.
            bool covered = false;
            for (const auto &fm : model.files)
                if (pathHasPrefix(fm.path, e.path))
                    covered = true;
            if (!covered)
                continue;
            stale.push_back(
                {e.from_file, e.from_line, "stale-suppression",
                 "allowlist entry `" + e.rule + " " + e.path + "` "
                 "suppresses nothing any more; delete it"});
        }
        if (layers) {
            for (std::size_t ei = 0; ei < layers->exceptions.size();
                 ++ei) {
                if (ledger.exception_used[ei])
                    continue;
                const auto &ex = layers->exceptions[ei];
                stale.push_back(
                    {layers->path, ex.line, "stale-suppression",
                     "layer exception `" + ex.src + " -> " + ex.dst +
                         "` matches no include edge any more; delete "
                         "it"});
            }
        }
        // Stale diagnostics obey suppression themselves (one level: a
        // suppression used only to hide a stale diag is not re-audited).
        for (const auto &d : stale)
            if (!suppressedTracked(d, model, cfg, ledger))
                out.push_back(d);
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const Diag &a, const Diag &b) {
                         if (a.file != b.file)
                             return a.file < b.file;
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return out;
}

std::vector<Diag>
lintProject(const std::vector<std::string> &files, const Config &cfg,
            const LayersFile *layers, const ProjectOptions &opts,
            ProjectModel *model_out)
{
    ProjectModel model = buildProjectModel(files, opts.jobs);
    auto diags = lintProjectModel(model, cfg, layers, opts);
    if (model_out)
        *model_out = std::move(model);
    return diags;
}

// ---------------------------------------------------------------------
// SARIF 2.1.0.
// ---------------------------------------------------------------------

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':  out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
sarifReport(const std::vector<Diag> &diags)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"m5lint\",\n"
       << "          \"informationUri\": \"docs/LINT.md\",\n"
       << "          \"rules\": [\n";
    const auto &rules = allRules();
    std::map<std::string, std::size_t> rule_index;
    for (std::size_t i = 0; i < rules.size(); ++i) {
        rule_index[rules[i]] = i;
        os << "            {\n"
           << "              \"id\": \"" << jsonEscape(rules[i]) << "\",\n"
           << "              \"shortDescription\": { \"text\": \""
           << jsonEscape(ruleHelp(rules[i])) << "\" },\n"
           << "              \"helpUri\": \"docs/LINT.md\"\n"
           << "            }" << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diag &d = diags[i];
        os << "        {\n"
           << "          \"ruleId\": \"" << jsonEscape(d.rule) << "\",\n";
        const auto ri = rule_index.find(d.rule);
        if (ri != rule_index.end())
            os << "          \"ruleIndex\": " << ri->second << ",\n";
        os << "          \"level\": \"error\",\n"
           << "          \"message\": { \"text\": \"" << jsonEscape(d.msg)
           << "\" },\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": { \"uri\": \""
           << jsonEscape(d.file) << "\" },\n"
           << "                \"region\": { \"startLine\": "
           << (d.line > 0 ? d.line : 1) << " }\n"
           << "              }\n"
           << "            }\n"
           << "          ]\n"
           << "        }" << (i + 1 < diags.size() ? "," : "") << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

} // namespace m5lint
