#!/bin/sh
# Wall-clock benefit of the parallel ExperimentRunner: time the fig09
# end-to-end sweep at 1 worker and at N workers and record the result in
# BENCH_runner.json.  The speedup naturally depends on the core count of
# the machine running this script, which is recorded alongside, as is
# the host's single-thread simulation rate (simulated accesses per
# wall-clock second, measured with a fixed m5sim run).
#
# The rate is measured best-of-N (M5_BENCH_RATE_RUNS, default 3): the
# per-run rates land in "sim_rate_runs" and the best one becomes
# "sim_accesses_per_second", which is what tools/perf_gate.sh compares.
# Best-of damps scheduler noise on shared CI hosts; a regression has to
# slow down every run to slip past it.
#
# A final profiled run of the same cell attributes the host time to
# components (docs/PROFILING.md): it writes BENCH_runner.prof.json and
# BENCH_runner.folded next to BENCH_runner.json and embeds the top-5
# self-time components as "profile_top" so a rate regression comes with
# its own first-level explanation.
#
# Usage: tools/bench_wallclock.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/fig09_end2end"
SIM="$BUILD/tools/m5sim"
PROF="$BUILD/tools/m5prof"
OUT="BENCH_runner.json"

# A coarse footprint keeps a timing run to a few minutes; the worker
# sweep is about relative wall-clock, not fidelity.
SCALE="${M5_BENCH_SCALE:-64}"
SEEDS="${M5_BENCH_SEEDS:-1}"
CORES="$(nproc 2>/dev/null || echo 1)"
NJOBS="${M5_BENCH_JOBS:-$CORES}"
RATE_RUNS="${M5_BENCH_RATE_RUNS:-3}"

[ -x "$BIN" ] || { echo "missing $BIN — build first" >&2; exit 1; }

run_timed() {
    jobs="$1"
    start="$(date +%s.%N)"
    M5_BENCH_SCALE="$SCALE" M5_BENCH_SEEDS="$SEEDS" \
        M5_BENCH_JOBS="$jobs" M5_BENCH_PROGRESS=0 \
        "$BIN" > /dev/null
    end="$(date +%s.%N)"
    echo "$start $end" | awk '{printf "%.3f", $2 - $1}'
}

echo "timing fig09_end2end at scale=1/$SCALE seeds=$SEEDS ..."
echo "  1 worker ..."
T1="$(run_timed 1)"
echo "  ${T1}s"
echo "  $NJOBS workers ..."
TN="$(run_timed "$NJOBS")"
echo "  ${TN}s"

SPEEDUP="$(echo "$T1 $TN" | awk '{printf "%.2f", $1 / $2}')"

# Single-thread simulation rate: a fixed m5sim run, accesses / wall,
# best of $RATE_RUNS attempts.
SIM_ACCESSES=2000000
SIM_CELL="--bench mcf_r --policy m5 --scale 128 --seed 7"
echo "  simulation rate ($SIM_ACCESSES accesses, 1 thread," \
     "best of $RATE_RUNS) ..."
if [ -x "$SIM" ]; then
    TS=0; APS=0; RUNS_JSON=""
    i=1
    while [ "$i" -le "$RATE_RUNS" ]; do
        S0="$(date +%s.%N)"
        # shellcheck disable=SC2086
        "$SIM" $SIM_CELL --accesses "$SIM_ACCESSES" > /dev/null
        S1="$(date +%s.%N)"
        TS_I="$(echo "$S0 $S1" | awk '{printf "%.3f", $2 - $1}')"
        APS_I="$(echo "$SIM_ACCESSES $TS_I" | awk '{printf "%.0f", $1 / $2}')"
        echo "    run $i/$RATE_RUNS: ${TS_I}s -> ${APS_I} accesses/s"
        RUNS_JSON="${RUNS_JSON}${RUNS_JSON:+, }$APS_I"
        if [ "$APS_I" -gt "$APS" ]; then
            APS="$APS_I"; TS="$TS_I"
        fi
        i=$((i + 1))
    done
    echo "  best: ${TS}s -> ${APS} accesses/s"
else
    echo "  missing $SIM — skipping (rate recorded as 0)"
    TS=0; APS=0; RUNS_JSON=""
fi

# Host-time attribution: rerun the rate cell once with --profile so the
# recorded rate ships with its component breakdown.  The profiled run is
# never timed — PROF_SCOPE overhead stays out of the rate above.
PROFILE_TOP="[]"
if [ -x "$SIM" ] && [ -x "$PROF" ]; then
    echo "  profiled run (host-time attribution) ..."
    # shellcheck disable=SC2086
    "$SIM" $SIM_CELL --accesses "$SIM_ACCESSES" \
        --profile BENCH_runner > /dev/null
    PROFILE_TOP="$("$PROF" top BENCH_runner.prof.json --n 5 --json)"
    echo "  top components -> BENCH_runner.prof.json, BENCH_runner.folded"
else
    echo "  missing $SIM or $PROF — skipping profile (profile_top empty)"
fi

cat > "$OUT" <<EOF
{
  "benchmark": "fig09_end2end",
  "scale_divisor": $SCALE,
  "seeds": $SEEDS,
  "machine_cores": $CORES,
  "parallel_workers": $NJOBS,
  "wallclock_seconds_serial": $T1,
  "wallclock_seconds_parallel": $TN,
  "speedup": $SPEEDUP,
  "sim_rate_accesses": $SIM_ACCESSES,
  "sim_rate_seconds": $TS,
  "sim_rate_best_of": $RATE_RUNS,
  "sim_rate_runs": [$RUNS_JSON],
  "sim_accesses_per_second": $APS,
  "profile_top": $PROFILE_TOP,
  "note": "speedup is bounded by machine_cores; on a single-core host the two runs are expected to tie"
}
EOF

echo "speedup: ${SPEEDUP}x on $CORES core(s) -> $OUT"
