#!/bin/sh
# Wall-clock benefit of the parallel ExperimentRunner: time the fig09
# end-to-end sweep at 1 worker and at N workers and record the result in
# BENCH_runner.json.  The speedup naturally depends on the core count of
# the machine running this script, which is recorded alongside, as is
# the host's single-thread simulation rate (simulated accesses per
# wall-clock second, measured with a fixed m5sim run).
#
# Usage: tools/bench_wallclock.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
BIN="$BUILD/bench/fig09_end2end"
SIM="$BUILD/tools/m5sim"
OUT="BENCH_runner.json"

# A coarse footprint keeps a timing run to a few minutes; the worker
# sweep is about relative wall-clock, not fidelity.
SCALE="${M5_BENCH_SCALE:-64}"
SEEDS="${M5_BENCH_SEEDS:-1}"
CORES="$(nproc 2>/dev/null || echo 1)"
NJOBS="${M5_BENCH_JOBS:-$CORES}"

[ -x "$BIN" ] || { echo "missing $BIN — build first" >&2; exit 1; }

run_timed() {
    jobs="$1"
    start="$(date +%s.%N)"
    M5_BENCH_SCALE="$SCALE" M5_BENCH_SEEDS="$SEEDS" \
        M5_BENCH_JOBS="$jobs" M5_BENCH_PROGRESS=0 \
        "$BIN" > /dev/null
    end="$(date +%s.%N)"
    echo "$start $end" | awk '{printf "%.3f", $2 - $1}'
}

echo "timing fig09_end2end at scale=1/$SCALE seeds=$SEEDS ..."
echo "  1 worker ..."
T1="$(run_timed 1)"
echo "  ${T1}s"
echo "  $NJOBS workers ..."
TN="$(run_timed "$NJOBS")"
echo "  ${TN}s"

SPEEDUP="$(echo "$T1 $TN" | awk '{printf "%.2f", $1 / $2}')"

# Single-thread simulation rate: one fixed m5sim run, accesses / wall.
SIM_ACCESSES=2000000
echo "  simulation rate ($SIM_ACCESSES accesses, 1 thread) ..."
if [ -x "$SIM" ]; then
    S0="$(date +%s.%N)"
    "$SIM" --bench mcf_r --policy m5 --scale 128 --seed 7 \
        --accesses "$SIM_ACCESSES" > /dev/null
    S1="$(date +%s.%N)"
    TS="$(echo "$S0 $S1" | awk '{printf "%.3f", $2 - $1}')"
    APS="$(echo "$SIM_ACCESSES $TS" | awk '{printf "%.0f", $1 / $2}')"
    echo "  ${TS}s -> ${APS} accesses/s"
else
    echo "  missing $SIM — skipping (rate recorded as 0)"
    TS=0; APS=0
fi

cat > "$OUT" <<EOF
{
  "benchmark": "fig09_end2end",
  "scale_divisor": $SCALE,
  "seeds": $SEEDS,
  "machine_cores": $CORES,
  "parallel_workers": $NJOBS,
  "wallclock_seconds_serial": $T1,
  "wallclock_seconds_parallel": $TN,
  "speedup": $SPEEDUP,
  "sim_rate_accesses": $SIM_ACCESSES,
  "sim_rate_seconds": $TS,
  "sim_accesses_per_second": $APS,
  "note": "speedup is bounded by machine_cores; on a single-core host the two runs are expected to tie"
}
EOF

echo "speedup: ${SPEEDUP}x on $CORES core(s) -> $OUT"
