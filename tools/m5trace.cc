/**
 * @file
 * m5trace — record, inspect and replay cache-filtered access traces.
 *
 *   m5trace record  --bench NAME --out FILE [--scale D] [--accesses N]
 *                   [--telemetry FILE]
 *   m5trace info    --in FILE
 *   m5trace replay  --in FILE [--tracker cm|ss] [--entries N] [--k K]
 *                   [--period-us P] [--words]
 *   m5trace explain [--bench NAME] [--page VPN] [--scale D] [--seed N]
 *                   [--accesses N] [--out FILE] [--tiers SPEC]
 *                   [--faults SPEC]
 *
 * `record` captures the post-LLC physical access stream of a simulated
 * run (the §7.1 Pin + Ramulator methodology); `info` summarizes a trace;
 * `replay` drives a standalone top-K tracker over it and reports the
 * accumulated access-count ratio against exact counts; `explain` runs
 * the M5 policy with the lifecycle ledger enabled and prints the ordered
 * decision history of one page — accesses, tracking, nomination,
 * Elector verdicts, and migration (docs/TRACING.md).  Without --page it
 * lists the pages that were migrated to DDR; --out additionally writes
 * the run's Chrome trace_event JSON.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>

#include "analysis/ratio.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

const char *
findArg(int argc, char **argv, const char *name)
{
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

/** Tick/count to double, spelled short for the report printfs. */
double
dbl(std::uint64_t v)
{
    return static_cast<double>(v);
}

/** Strict numeric argument parsing: garbage is fatal, not silently 0. */
double
argDouble(const char *flag, const char *value)
{
    const auto v = m5::parseDouble(value);
    if (!v)
        m5_fatal("%s wants a number, got '%s'", flag, value);
    return *v;
}

std::uint64_t
argU64(const char *flag, const char *value)
{
    const auto v = m5::parseU64(value);
    if (!v)
        m5_fatal("%s wants a non-negative integer, got '%s'", flag, value);
    return *v;
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

int
cmdRecord(int argc, char **argv)
{
    const char *bench = findArg(argc, argv, "--bench");
    const char *out = findArg(argc, argv, "--out");
    if (!bench || !out)
        m5_fatal("record needs --bench and --out");
    const char *scale_s = findArg(argc, argv, "--scale");
    const double scale = scale_s ? 1.0 / argDouble("--scale", scale_s)
                                 : kDefaultScale;
    const char *acc_s = findArg(argc, argv, "--accesses");

    SystemConfig cfg = makeConfig(bench, PolicyKind::None, scale, 1);
    cfg.enable_pac = false;
    cfg.record_trace = true;
    if (const char *telem = findArg(argc, argv, "--telemetry"))
        cfg.telemetry.path = telem;
    TieredSystem sys(cfg);
    const std::uint64_t budget = acc_s
        ? argU64("--accesses", acc_s)
        : accessBudget(bench, scale) / 2;
    sys.run(budget);
    sys.trace().save(out);
    std::printf("recorded %zu post-LLC accesses of %s to %s\n",
                sys.trace().size(), bench, out);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    const char *in = findArg(argc, argv, "--in");
    if (!in)
        m5_fatal("info needs --in");
    const TraceBuffer trace = TraceBuffer::load(in);
    if (trace.size() == 0) {
        std::printf("%s: empty trace\n", in);
        return 0;
    }
    ExactCounter pages, words;
    std::uint64_t writes = 0;
    for (const auto &rec : trace.records()) {
        pages.observe(pfnOf(rec.pa));
        words.observe(wordOf(rec.pa));
        writes += rec.is_write;
    }
    const Tick span = trace.records().back().time -
                      trace.records().front().time;
    std::printf("%s:\n", in);
    std::printf("  records:        %zu (%.1f%% writes)\n", trace.size(),
                100.0 * dbl(writes) / dbl(trace.size()));
    std::printf("  time span:      %.1f ms (%.2f M accesses/s)\n",
                dbl(span) / 1e6,
                span ? dbl(trace.size()) / (dbl(span) * 1e-9) / 1e6 : 0.0);
    std::printf("  distinct pages: %zu\n", pages.distinct());
    std::printf("  distinct words: %zu\n", words.distinct());
    std::printf("  top-5 pages by count:\n");
    for (const auto &e : pages.topK(5)) {
        std::printf("    pfn %-10lu %lu\n",
                    static_cast<unsigned long>(e.tag),
                    static_cast<unsigned long>(e.count));
    }
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    const char *in = findArg(argc, argv, "--in");
    if (!in)
        m5_fatal("replay needs --in");
    const TraceBuffer trace = TraceBuffer::load(in);

    TrackerConfig cfg;
    const char *kind = findArg(argc, argv, "--tracker");
    cfg.kind = (kind && std::strcmp(kind, "ss") == 0)
        ? TrackerKind::SpaceSavingTopK : TrackerKind::CmSketchTopK;
    if (const char *n = findArg(argc, argv, "--entries"))
        cfg.entries = argU64("--entries", n);
    if (const char *k = findArg(argc, argv, "--k"))
        cfg.k = argU64("--k", k);
    const char *p = findArg(argc, argv, "--period-us");
    const Tick period = usToTicks(p ? argDouble("--period-us", p) : 1000.0);
    const bool words = hasFlag(argc, argv, "--words");

    auto tracker = makeTracker(cfg);
    ExactCounter exact;
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> reported;
    Tick epoch_end = period;
    std::uint64_t queries = 0;
    auto serve = [&]() {
        for (const auto &e : tracker->query()) {
            if (seen.insert(e.tag).second)
                reported.push_back(e.tag);
        }
        tracker->reset();
        ++queries;
    };
    for (const auto &rec : trace.records()) {
        while (rec.time >= epoch_end) {
            serve();
            epoch_end += period;
        }
        const std::uint64_t key =
            words ? wordOf(rec.pa) : pfnOf(rec.pa);
        tracker->access(key);
        exact.observe(key);
    }
    serve();

    std::uint64_t k_sum = 0;
    for (std::uint64_t key : reported)
        k_sum += exact.count(key);
    const std::uint64_t top = exact.topKSum(reported.size());
    std::printf("%s tracker, N=%lu, K=%zu, period %.0f us, %s keys\n",
                trackerKindName(cfg.kind).c_str(),
                static_cast<unsigned long>(cfg.entries), cfg.k,
                dbl(period) / 1e3, words ? "word" : "page");
    std::printf("  queries:            %lu\n",
                static_cast<unsigned long>(queries));
    std::printf("  reported (unique):  %zu\n", reported.size());
    std::printf("  access-count ratio: %.3f\n",
                top ? static_cast<double>(k_sum) /
                      static_cast<double>(top) : 0.0);
    return 0;
}

int
cmdExplain(int argc, char **argv)
{
    const char *bench_s = findArg(argc, argv, "--bench");
    const std::string bench = bench_s ? bench_s : "mcf_r";
    const char *scale_s = findArg(argc, argv, "--scale");
    const double scale = scale_s ? 1.0 / argDouble("--scale", scale_s)
                                 : kDefaultScale;
    const char *seed_s = findArg(argc, argv, "--seed");
    const std::uint64_t seed = seed_s ? argU64("--seed", seed_s) : 1;
    const char *page_s = findArg(argc, argv, "--page");

    SystemConfig cfg =
        makeConfig(bench, PolicyKind::M5HptDriven, scale, seed);
    cfg.trace.collect = true;
    cfg.trace.ledger = true;
    cfg.trace.categories = kTraceAllCats;
    if (page_s)
        cfg.trace.ledger_page = argU64("--page", page_s);
    if (const char *out = findArg(argc, argv, "--out"))
        cfg.trace.path = out;
    // Optional topology / fault overlays so exchange and multi-hop move
    // lifecycles can be reproduced and explained (docs/TOPOLOGY.md).
    if (const char *tiers = findArg(argc, argv, "--tiers"))
        cfg.tiers = tiers;
    if (const char *faults = findArg(argc, argv, "--faults"))
        cfg.faults = faults;

    TieredSystem sys(cfg);
    const char *acc_s = findArg(argc, argv, "--accesses");
    const std::uint64_t budget = acc_s ? argU64("--accesses", acc_s)
                                       : accessBudget(bench, scale);
    sys.run(budget);

    const PageLedger &ledger = sys.tracer()->ledger();
    if (!page_s) {
        const auto pages = ledger.migratedPages();
        std::printf("%s (scale 1/%.0f, seed %lu): %zu pages migrated "
                    "to DDR\n",
                    bench.c_str(), 1.0 / scale,
                    static_cast<unsigned long>(seed), pages.size());
        for (Vpn p : pages)
            std::printf("  page %lu\n", static_cast<unsigned long>(p));
        std::printf("rerun with --page N for the full lifecycle\n");
        return 0;
    }

    const Vpn page = *cfg.trace.ledger_page;
    const auto records = ledger.lifecycle(page);
    std::printf("page %lu lifecycle (%s, scale 1/%.0f, seed %lu):\n",
                static_cast<unsigned long>(page), bench.c_str(),
                1.0 / scale, static_cast<unsigned long>(seed));
    if (records.empty()) {
        std::printf("  no recorded events — the page was never accessed "
                    "post-LLC\n");
        return 0;
    }
    for (const auto &rec : records) {
        std::printf("  %12.3f us  %s\n", dbl(rec.ts) / 1e3,
                    rec.text.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: m5trace record|info|replay|explain [options]\n"
                    "see the file header for details\n");
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(argc, argv);
    if (cmd == "info")
        return cmdInfo(argc, argv);
    if (cmd == "replay")
        return cmdReplay(argc, argv);
    if (cmd == "explain")
        return cmdExplain(argc, argv);
    m5_fatal("unknown command '%s'", cmd.c_str());
}
