/**
 * @file
 * m5sim — command-line driver for the tiered-memory simulator.
 *
 *   m5sim [--bench NAME] [--policy NAME] [--scale DENOM] [--seed N]
 *         [--accesses N] [--instances N] [--record-only] [--wac]
 *         [--ddr-frac F] [--tenants SPEC] [--telemetry FILE]
 *         [--telemetry-every N] [--trace FILE] [--trace-cats CSV]
 *         [--profile BASE] [--faults SPEC] [--csv] [--list]
 *
 * Runs one experiment and prints a full report: timing, tier traffic,
 * migration and TLB statistics, the kernel-cycle breakdown, request
 * latencies for latency-sensitive workloads, and (record-only) the
 * access-count ratio of the identified hot pages.  --telemetry streams
 * per-epoch StatRegistry snapshots to FILE as JSONL and appends the
 * end-of-run rollup to the report (docs/TELEMETRY.md).  --trace writes
 * a Chrome trace_event JSON of migration-decision spans and instants,
 * loadable in Perfetto or chrome://tracing (docs/TRACING.md).
 * --profile attributes host wall time to simulator components and
 * writes BASE.prof.json plus a collapsed-stack flamegraph BASE.folded,
 * appending a self-time rollup to the report (docs/PROFILING.md).
 * --faults arms the deterministic fault injector with a spec like
 * "migrate_busy:p=0.05,mmio_stale:after=2ms" and appends a resilience
 * section to the report (docs/FAULTS.md).  --tenants colocates several
 * workloads with per-tenant DDR caps and interleave shares, e.g.
 * "redis:cap=0.25,mcf_r:cap=0.5:share=2", and appends a per-tenant
 * fairness section (docs/MULTITENANT.md).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/ratio.hh"
#include "analysis/report.hh"
#include "common/env.hh"
#include "common/stats.hh"
#include "common/logging.hh"
#include "os/costs.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

/** Tick/count to double, spelled short for the report printfs. */
double
dbl(std::uint64_t v)
{
    return static_cast<double>(v);
}

/** Kernel-time share of runtime, in percent. */
double
kernelPct(Tick kernel_time, Tick runtime)
{
    return 100.0 * dbl(kernel_time) / dbl(std::max<Tick>(1, runtime));
}

/** Strict numeric argument parsing: garbage is fatal, not silently 0. */
double
argDouble(const std::string &flag, const char *value)
{
    const auto v = parseDouble(value);
    if (!v)
        m5_fatal("%s wants a number, got '%s'", flag.c_str(), value);
    return *v;
}

std::uint64_t
argU64(const std::string &flag, const char *value)
{
    const auto v = parseU64(value);
    if (!v)
        m5_fatal("%s wants a non-negative integer, got '%s'",
                 flag.c_str(), value);
    return *v;
}

struct Options
{
    std::string bench = "mcf_r";
    std::string policy = "m5";
    double scale = kDefaultScale;
    std::uint64_t seed = 1;
    std::uint64_t accesses = 0; // 0 = default budget.
    std::size_t instances = 1;
    bool record_only = false;
    bool wac = false;
    double ddr_frac = -1.0;
    std::string tenants;
    std::string tiers;
    bool exchange = true;
    bool txn = true;
    bool csv = false;
    std::string telemetry;
    std::uint64_t telemetry_every = 1;
    std::string trace;
    std::uint32_t trace_cats = kTraceDefaultCats;
    std::string profile;
    std::string faults;
};

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "none")
        return PolicyKind::None;
    if (name == "anb")
        return PolicyKind::Anb;
    if (name == "damon")
        return PolicyKind::Damon;
    if (name == "memtis")
        return PolicyKind::Memtis;
    if (name == "m5-hpt")
        return PolicyKind::M5HptOnly;
    if (name == "m5-hwt")
        return PolicyKind::M5HwtDriven;
    if (name == "m5" || name == "m5-hpt-hwt")
        return PolicyKind::M5HptDriven;
    m5_fatal("unknown policy '%s' (try: none, anb, damon, memtis, "
             "m5, m5-hpt, m5-hwt)", name.c_str());
}

void
usage()
{
    std::printf(
        "usage: m5sim [options]\n"
        "  --bench NAME      benchmark (default mcf_r; --list to see all)\n"
        "  --policy NAME     none|anb|damon|memtis|m5|m5-hpt|m5-hwt\n"
        "  --scale DENOM     system scale 1/DENOM (default 16)\n"
        "  --seed N          RNG seed (default 1)\n"
        "  --accesses N      post-L2 access budget (default: auto)\n"
        "  --instances N     co-running instances (default 1)\n"
        "  --ddr-frac F      DDR capacity / footprint (default 0.375)\n"
        "  --tenants SPEC    colocate tenants with DDR caps and shares,\n"
        "                    e.g. redis:cap=0.25,mcf_r:cap=0.5:share=2\n"
        "                    (replaces --bench/--instances;\n"
        "                    docs/MULTITENANT.md)\n"
        "  --tiers SPEC      N-tier topology, e.g.\n"
        "                    ddr:100,cxl:270:0.5,far:400 — tiers fastest\n"
        "                    first, last tier is the spill tier; optional\n"
        "                    src>dst:floor[:bw] edge costs\n"
        "                    (docs/TOPOLOGY.md)\n"
        "  --no-exchange     disable the atomic page-exchange fallback\n"
        "                    for failed top-tier allocations\n"
        "  --no-txn-migrate  disable transactional migration (shadow\n"
        "                    copies, abort/retry) and restore the legacy\n"
        "                    stop-the-world path (docs/MIGRATION.md)\n"
        "  --record-only     identify hot pages without migrating\n"
        "  --wac             enable word-access counting\n"
        "  --telemetry FILE  stream per-epoch stat snapshots to FILE "
        "(JSONL)\n"
        "  --telemetry-every N  sample every N epochs (default 1)\n"
        "  --trace FILE      write a Chrome trace_event JSON of decision\n"
        "                    spans and instants (docs/TRACING.md)\n"
        "  --trace-cats CSV  categories to record (sim,monitor,nominate,\n"
        "                    elect,promote,migrate,cxl,access,default,all)\n"
        "  --profile BASE    attribute host time to components; writes\n"
        "                    BASE.prof.json and BASE.folded flamegraph\n"
        "                    (docs/PROFILING.md)\n"
        "  --faults SPEC     deterministic fault plan, e.g.\n"
        "                    migrate_busy:p=0.05,mmio_stale:after=2ms\n"
        "                    (docs/FAULTS.md)\n"
        "  --csv             machine-readable one-line output\n"
        "  --list            list benchmarks and exit\n");
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                m5_fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--bench") {
            opt.bench = next();
        } else if (arg == "--policy") {
            opt.policy = next();
        } else if (arg == "--scale") {
            const double denom = argDouble(arg, next());
            if (denom < 1.0)
                m5_fatal("--scale wants a denominator >= 1");
            opt.scale = 1.0 / denom;
        } else if (arg == "--seed") {
            opt.seed = argU64(arg, next());
        } else if (arg == "--accesses") {
            opt.accesses = argU64(arg, next());
        } else if (arg == "--instances") {
            opt.instances = argU64(arg, next());
        } else if (arg == "--ddr-frac") {
            opt.ddr_frac = argDouble(arg, next());
        } else if (arg == "--tenants") {
            opt.tenants = next();
        } else if (arg == "--tiers") {
            opt.tiers = next();
        } else if (arg == "--no-exchange") {
            opt.exchange = false;
        } else if (arg == "--no-txn-migrate") {
            opt.txn = false;
        } else if (arg == "--telemetry") {
            opt.telemetry = next();
        } else if (arg == "--telemetry-every") {
            opt.telemetry_every = argU64(arg, next());
            if (opt.telemetry_every == 0)
                m5_fatal("--telemetry-every wants an integer >= 1");
        } else if (arg == "--trace") {
            opt.trace = next();
        } else if (arg == "--trace-cats") {
            opt.trace_cats = parseTraceCats(next());
        } else if (arg == "--profile") {
            opt.profile = next();
        } else if (arg == "--faults") {
            opt.faults = next();
        } else if (arg == "--record-only") {
            opt.record_only = true;
        } else if (arg == "--wac") {
            opt.wac = true;
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--list") {
            std::printf("benchmarks (Table 3):\n");
            for (const auto &b : sparsityBenchmarkNames()) {
                const auto &info = benchmarkInfo(b);
                std::printf("  %-12s %.1f GB, %u cores, %u CAT ways\n",
                            b.c_str(), info.footprint_gb, info.cores,
                            info.cat_ways);
            }
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            m5_fatal("unknown option '%s'", arg.c_str());
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    SystemConfig cfg = makeConfig(opt.bench, parsePolicy(opt.policy),
                                  opt.scale, opt.seed);
    cfg.instances = opt.instances;
    cfg.record_only = opt.record_only;
    cfg.enable_wac = opt.wac;
    if (opt.ddr_frac > 0.0)
        cfg.ddr_capacity_fraction = opt.ddr_frac;
    cfg.tenants = opt.tenants;
    cfg.tiers = opt.tiers;
    cfg.exchange = opt.exchange;
    cfg.txn_migrate = opt.txn;
    cfg.telemetry.path = opt.telemetry;
    cfg.telemetry.every = opt.telemetry_every;
    cfg.trace.path = opt.trace;
    cfg.trace.categories = opt.trace_cats;
    cfg.prof.base = opt.profile;
    cfg.faults = opt.faults;

    TieredSystem sys(cfg);
    const std::uint64_t budget = opt.accesses
        ? opt.accesses : accessBudget(opt.bench, opt.scale);
    const RunResult r = sys.run(budget);

    const double ddr_frac_reads =
        static_cast<double>(r.steady_ddr_read_bytes) /
        static_cast<double>(std::max<std::uint64_t>(1,
            r.steady_ddr_read_bytes + r.steady_cxl_read_bytes));

    if (opt.csv) {
        std::printf("bench,policy,accesses,runtime_ms,steady_mops,"
                    "kernel_pct,promoted,demoted,llc_miss,ddr_read_frac,"
                    "p50_us,p99_us\n");
        std::printf("%s,%s,%lu,%.1f,%.3f,%.2f,%lu,%lu,%.4f,%.4f,%.2f,"
                    "%.2f\n",
                    r.benchmark.c_str(), r.policy.c_str(),
                    static_cast<unsigned long>(r.accesses),
                    dbl(r.runtime) / 1e6, r.steady_throughput / 1e6,
                    kernelPct(r.kernel_time, r.runtime),
                    static_cast<unsigned long>(r.migration.promoted),
                    static_cast<unsigned long>(r.migration.demoted),
                    r.llc.missRatio(), ddr_frac_reads,
                    r.p50_request / 1e3, r.p99_request / 1e3);
        return 0;
    }

    std::printf("== m5sim: %s under %s (scale 1/%.0f, seed %lu) ==\n",
                r.benchmark.c_str(), r.policy.c_str(), 1.0 / opt.scale,
                static_cast<unsigned long>(opt.seed));
    std::printf("footprint:     %zu pages, DDR cap %zu frames\n",
                sys.pageTable().numPages(),
                static_cast<std::size_t>(
                    sys.memory().tier(kNodeDdr).framesTotal()));
    // Only printed for explicit --tiers specs, so the default two-tier
    // report stays byte-identical to the pre-topology simulator.
    if (!opt.tiers.empty()) {
        std::printf("topology:      %s\n",
                    sys.topology().describe().c_str());
    }
    std::printf("accesses:      %lu (runtime %.1f ms)\n",
                static_cast<unsigned long>(r.accesses),
                dbl(r.runtime) / 1e6);
    std::printf("throughput:    %.2f M/s full-run, %.2f M/s steady\n",
                r.throughput / 1e6, r.steady_throughput / 1e6);
    std::printf("kernel share:  %.1f%%\n",
                kernelPct(r.kernel_time, r.runtime));
    std::printf("LLC:           %.1f%% miss (%lu hits, %lu misses)\n",
                100.0 * r.llc.missRatio(),
                static_cast<unsigned long>(r.llc.hits),
                static_cast<unsigned long>(r.llc.misses));
    std::printf("TLB:           %lu misses, %lu shootdowns\n",
                static_cast<unsigned long>(r.tlb.misses),
                static_cast<unsigned long>(r.tlb.shootdowns));
    std::printf("migration:     %lu promoted, %lu demoted, %lu rejected "
                "(%lu pinned, %lu not_cxl, %lu capacity)\n",
                static_cast<unsigned long>(r.migration.promoted),
                static_cast<unsigned long>(r.migration.demoted),
                static_cast<unsigned long>(r.migration.rejected_pinned +
                                           r.migration.rejected_not_cxl +
                                           r.migration.failed_capacity),
                static_cast<unsigned long>(r.migration.rejected_pinned),
                static_cast<unsigned long>(r.migration.rejected_not_cxl),
                static_cast<unsigned long>(r.migration.failed_capacity));
    // Exchange / best-fit outcomes only occur under fault injection or
    // N-tier topologies; the line is omitted when both counters are zero
    // so default reports keep their historical bytes.
    if (r.migration.exchanged || r.migration.placed_lower ||
        r.migration.moved_lateral) {
        std::printf("  alternates:  %lu exchanged, %lu placed lower, "
                    "%lu lateral\n",
                    static_cast<unsigned long>(r.migration.exchanged),
                    static_cast<unsigned long>(r.migration.placed_lower),
                    static_cast<unsigned long>(r.migration.moved_lateral));
    }
    std::printf("steady reads:  %.1f%% from DDR\n",
                100.0 * ddr_frac_reads);
    if (r.p99_request > 0.0) {
        std::printf("requests:      p50 %.1f us, p99 %.1f us "
                    "(open-loop)\n",
                    r.p50_request / 1e3, r.p99_request / 1e3);
    }

    std::printf("kernel cycles by category:\n");
    for (unsigned c = 0;
         c < static_cast<unsigned>(KernelWork::NumCategories); ++c) {
        const auto work = static_cast<KernelWork>(c);
        const Cycles cycles = sys.ledger().category(work);
        if (cycles) {
            std::printf("  %-16s %12lu (%.2f ms)\n",
                        kernelWorkName(work).c_str(),
                        static_cast<unsigned long>(cycles),
                        static_cast<double>(cyclesToNs(cycles)) / 1e6);
        }
    }

    if (opt.record_only && !r.hot_pages.empty()) {
        std::printf("identified:    %zu hot pages, access-count ratio "
                    "%.3f\n", r.hot_pages.size(),
                    accessCountRatio(sys.pac(), r.hot_pages));
    }
    if (opt.wac) {
        const auto pages = sys.wac().pagesWithUniqueWords(96);
        std::size_t sparse = 0;
        for (const auto &[pfn, words] : pages)
            sparse += words <= 16;
        if (!pages.empty()) {
            std::printf("sparsity:      %.1f%% of well-sampled pages "
                        "touch <= 16/64 words\n",
                        100.0 * dbl(sparse) / dbl(pages.size()));
        }
    }
    if (Tracer *tracer = sys.tracer()) {
        std::printf("trace:         %lu events (%lu dropped) -> %s\n",
                    static_cast<unsigned long>(tracer->emitted()),
                    static_cast<unsigned long>(tracer->dropped()),
                    opt.trace.c_str());
    }
    if (EpochSnapshotter *telem = sys.telemetry()) {
        std::printf("telemetry:     %lu epochs -> %s\n",
                    static_cast<unsigned long>(telem->epochs()),
                    opt.telemetry.c_str());
        std::fflush(stdout);
        // The rollup is the final JSONL line rendered as a table; the
        // smoke test diffs the two, so emit it verbatim.
        emitTable(std::cout, telem->rollupTable(), "telemetry rollup");
    }
    if (const Profiler *prof = sys.profiler()) {
        // Host-time attribution (docs/PROFILING.md).  Host nanoseconds
        // are nondeterministic by nature, so this section — like the
        // .prof.json and .folded artifacts — is excluded from every
        // determinism comparison; everything above stays byte-identical
        // with or without --profile.  check.sh's profile stage strips
        // lines matching '^profile:' and '^  prof\.' to verify that.
        const std::uint64_t wall = prof->wallNs();
        std::printf("profile:       %zu scopes, %.2f ms attributed -> "
                    "%s.prof.json\n",
                    prof->scopeCount(), dbl(wall) / 1e6,
                    opt.profile.c_str());
        for (const ProfEntry &e : prof->rollup(5)) {
            std::printf("  prof.%-42s %9.3f ms self (%5.1f%%) "
                        "%9.3f ms total, %lu calls\n",
                        e.path.c_str(), dbl(e.self_ns) / 1e6,
                        100.0 * dbl(e.self_ns) /
                            dbl(std::max<std::uint64_t>(1, wall)),
                        dbl(e.total_ns) / 1e6,
                        static_cast<unsigned long>(e.calls));
        }
    }
    if (const FaultInjector *faults = sys.faults()) {
        // Resilience section (docs/FAULTS.md).  check.sh's faults stage
        // greps these lines, so keep the key names stable.
        std::printf("faults:        spec '%s', %lu injected\n",
                    faults->plan().spec.c_str(),
                    static_cast<unsigned long>(faults->injectedTotal()));
        for (unsigned i = 0; i < kNumFaultPoints; ++i) {
            const auto pt = static_cast<FaultPoint>(i);
            if (faults->injected(pt)) {
                std::printf("  injected.%-12s %12lu\n",
                            faultPointName(pt),
                            static_cast<unsigned long>(
                                faults->injected(pt)));
            }
        }
        std::printf("  resilience: %lu transient, %lu retries, "
                    "%lu dropped\n",
                    static_cast<unsigned long>(r.migration.transient_fail),
                    static_cast<unsigned long>(r.migration.retries),
                    static_cast<unsigned long>(r.migration.dropped));
        std::printf("  exchange: %lu swapped, %lu no_victim (%s)\n",
                    static_cast<unsigned long>(r.migration.exchanged),
                    static_cast<unsigned long>(r.migration.exchange_failed),
                    sys.migrationEngine().exchangeEnabled() ? "enabled"
                                                            : "disabled");
        std::printf("  txn: %lu commits, %lu aborts, %lu degraded, "
                    "%lu free_demote (%s)\n",
                    static_cast<unsigned long>(r.txn.commits),
                    static_cast<unsigned long>(r.txn.aborts),
                    static_cast<unsigned long>(r.txn.degraded_pages),
                    static_cast<unsigned long>(r.txn.demoted_free),
                    sys.migrationEngine().txnEnabled() ? "enabled"
                                                       : "disabled");
        std::printf("  mmio: %lu timeouts, degrade %s\n",
                    static_cast<unsigned long>(
                        sys.controller().mmioTimeouts()),
                    monitorDegradeName(sys.monitor().degrade()));
        if (const M5Manager *m5 = sys.m5Manager()) {
            const Elector &el = m5->elector();
            std::printf("  breaker: state %s, %lu opened, %lu closed, "
                        "%lu deferred\n",
                        breakerStateName(el.breakerState()),
                        static_cast<unsigned long>(el.breakerOpened()),
                        static_cast<unsigned long>(el.breakerClosed()),
                        static_cast<unsigned long>(el.breakerDeferred()));
        }
        const InvariantChecker *inv = sys.invariants();
        std::printf("  invariants: %lu checks, %lu violations\n",
                    static_cast<unsigned long>(inv->checks()),
                    static_cast<unsigned long>(inv->violations()));
    }
    if (!r.tenants.empty()) {
        // Colocation section (docs/MULTITENANT.md).  check.sh's
        // colocation stage greps the `caps:` and `invariants:` lines, so
        // keep the key names stable.
        std::printf("tenants:       %zu colocated, spec '%s'\n",
                    r.tenants.size(), opt.tenants.c_str());
        std::vector<double> promoted, ddr_frames;
        bool capped = true;
        for (std::size_t t = 0; t < r.tenants.size(); ++t) {
            const TenantResult &tr = r.tenants[t];
            std::printf("  tenant.%zu %-12s %10lu accesses, %lu promoted "
                        "(%lu cap-demoted, %lu cap-rejected), "
                        "ddr %zu/%zu frames, p99 %.0f ns\n",
                        t, tr.name.c_str(),
                        static_cast<unsigned long>(tr.accesses),
                        static_cast<unsigned long>(tr.promoted),
                        static_cast<unsigned long>(tr.cap_demotions),
                        static_cast<unsigned long>(tr.cap_rejects),
                        tr.ddr_frames, tr.cap_frames, tr.p99_access_ns);
            promoted.push_back(dbl(tr.promoted));
            ddr_frames.push_back(static_cast<double>(tr.ddr_frames));
            capped = capped && tr.ddr_frames <= tr.cap_frames;
        }
        std::printf("  fairness: jain(promoted) %.3f, jain(ddr_frames) "
                    "%.3f\n",
                    jainIndex(promoted), jainIndex(ddr_frames));
        std::printf("  caps: %s\n",
                    capped ? "OK (every tenant within its DDR budget)"
                           : "EXCEEDED");
        if (!sys.faults()) {
            // With faults the invariants line above already covers it.
            const InvariantChecker *inv = sys.invariants();
            std::printf("  invariants: %lu checks, %lu violations\n",
                        static_cast<unsigned long>(inv->checks()),
                        static_cast<unsigned long>(inv->violations()));
        }
    }
    return 0;
}
