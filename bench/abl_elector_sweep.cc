/**
 * @file
 * Ablation: Elector pacing parameters (§5.2 Algorithm 1, §7.2).
 *
 * The paper's sample policy uses fscale(x) = x^n and reports trying
 * n in 3..6 and a few f_default values, picking the best per benchmark.
 * This sweep regenerates that tuning surface for a skewed (roms_r) and a
 * flat (pr) workload.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Ablation: Elector fscale exponent n and f_default "
        "(M5(HPT), normalized to no migration)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const char *benches[] = {"roms_r", "pr"};
    const double exponents[] = {2.0, 4.0, 6.0};
    const double freqs[] = {500.0, 1000.0, 2000.0};

    TextTable table({"bench", "n", "f_default", "norm perf",
                     "migrations"});
    for (const char *benchname : benches) {
        const RunResult none =
            runPolicy(benchname, PolicyKind::None, scale);
        for (double n : exponents) {
            for (double f : freqs) {
                SystemConfig cfg = makeConfig(
                    benchname, PolicyKind::M5HptOnly, scale, 1);
                cfg.m5_cfg.elector.fscale_exponent = n;
                cfg.m5_cfg.elector.f_default = f;
                TieredSystem sys(cfg);
                const RunResult r =
                    sys.run(accessBudget(benchname, scale));
                table.addRow({bench::shortName(benchname),
                              TextTable::num(n, 0),
                              TextTable::num(f, 0),
                              TextTable::num(r.steady_throughput /
                                             none.steady_throughput, 3),
                              std::to_string(r.migration.promoted)});
                std::fflush(stdout);
            }
        }
    }
    table.print(std::cout);
    std::printf("\npaper: n in 3..6 with f_default ~1 gave the best "
                "results; flat workloads are insensitive\n");
    return 0;
}
