/**
 * @file
 * Ablation: Elector pacing parameters (§5.2 Algorithm 1, §7.2).
 *
 * The paper's sample policy uses fscale(x) = x^n and reports trying
 * n in 3..6 and a few f_default values, picking the best per benchmark.
 * This sweep regenerates that tuning surface for a skewed (roms_r) and a
 * flat (pr) workload: a no-migration baseline grid plus a 9-point
 * (n, f_default) axis on M5(HPT).
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Ablation: Elector fscale exponent n and f_default "
        "(M5(HPT), normalized to no migration)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const std::vector<std::string> benches = {"roms_r", "pr"};
    const double exponents[] = {2.0, 4.0, 6.0};
    const double freqs[] = {500.0, 1000.0, 2000.0};

    ExperimentRunner runner({.name = "abl_elector"});

    SweepGrid base;
    base.benchmarks(benches).policy(PolicyKind::None).scale(scale);
    const auto none = runner.run(base);

    std::vector<SweepPoint> points;
    for (double n : exponents) {
        for (double f : freqs) {
            points.push_back({"n" + TextTable::num(n, 0) + "/f" +
                                  TextTable::num(f, 0),
                              [n, f](SystemConfig &cfg) {
                                  cfg.m5_cfg.elector.fscale_exponent = n;
                                  cfg.m5_cfg.elector.f_default = f;
                              }});
        }
    }
    SweepGrid grid;
    grid.benchmarks(benches)
        .policy(PolicyKind::M5HptOnly)
        .scale(scale)
        .axis(points);
    const auto results = runner.run(grid);

    TextTable table({"bench", "n", "f_default", "norm perf",
                     "migrations"});
    const std::size_t nv = points.size();
    for (std::size_t b = 0; b < benches.size(); ++b) {
        if (!none[b].ok)
            m5_fatal("baseline failed: %s", none[b].error.c_str());
        const double baseline = none[b].value.steady_throughput;
        std::size_t v = 0;
        for (double n : exponents) {
            for (double f : freqs) {
                const auto &r = results[b * nv + v++];
                table.addRow({shortBenchName(benches[b]),
                              TextTable::num(n, 0),
                              TextTable::num(f, 0),
                              r.ok ? TextTable::num(
                                         r.value.steady_throughput /
                                             baseline, 3)
                                   : "-",
                              r.ok ? std::to_string(
                                         r.value.migration.promoted)
                                   : "-"});
            }
        }
    }
    emitTable(std::cout, table, "abl_elector_sweep");
    std::printf("\npaper: n in 3..6 with f_default ~1 gave the best "
                "results; flat workloads are insensitive\n");
    return 0;
}
