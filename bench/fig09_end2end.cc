/**
 * @file
 * Figure 9: end-to-end performance of ANB, DAMON, and the three M5
 * Nominator configurations — M5(HPT) = HPT-only, M5(HWT) = HWT-driven,
 * M5(HPT+HWT) = HPT-driven — normalized to no page migration.
 *
 * Methodology (§7.2): all pages start in CXL DRAM; DDR capacity is 3/8 of
 * the footprint; once DDR fills, each promotion demotes an MGLRU victim.
 * Batch workloads report steady-state throughput; Redis reports inverse
 * p99 request latency.
 *
 * The whole 12-benchmark × 6-policy × seed grid is declared as one
 * SweepGrid and executed by the parallel ExperimentRunner; output is
 * identical to a serial run (M5_BENCH_JOBS=1) because results are
 * collected in grid order.
 *
 * Paper reference: DAMON averages 1.81x over no migration (+6% over ANB);
 * M5 averages 2.06x (+14% over DAMON, +20% over ANB).  Redis: ANB +8%,
 * DAMON -16%, M5 +18-19% with the HWT-driven Nominator best; roms_r is
 * M5's largest win (+96% over ANB); PageRank is flat for everyone.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

int
main()
{
    const double scale = benchScale();
    const int seeds = benchSeeds(1);
    printBanner(std::cout,
        "Figure 9: end-to-end performance normalized to no page "
        "migration");
    std::printf("scale=1/%.0f, %d seed(s) (Redis scored by inverse p99 "
                "latency)\n", 1.0 / scale, seeds);

    // Policy 0 is the normalization baseline; the rest are columns.
    const std::vector<PolicyKind> policies = {
        PolicyKind::None,        PolicyKind::Anb,
        PolicyKind::Damon,       PolicyKind::M5HptOnly,
        PolicyKind::M5HwtDriven, PolicyKind::M5HptDriven};
    const char *names[] = {"ANB", "DAMON", "M5(HPT)", "M5(HWT)",
                           "M5(HPT+HWT)"};

    const std::vector<SweepJob> jobs =
        evaluationGrid(policies, scale, seeds).expand();
    ExperimentRunner runner({.name = "fig09"});
    const auto results = runner.run(jobs);

    const auto &benches = benchmarkNames();
    const std::size_t np = policies.size();
    const std::size_t ns = static_cast<std::size_t>(seeds);
    auto at = [&](std::size_t b, std::size_t p,
                  std::size_t s) -> const Outcome<RunResult> & {
        return results[(b * np + p) * ns + s];
    };

    TextTable table({"bench", "ANB", "DAMON", "M5(HPT)", "M5(HWT)",
                     "M5(HPT+HWT)"});
    std::vector<std::vector<double>> norm(np - 1);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const bool latency = benches[b] == "redis";
        std::vector<std::string> row = {shortBenchName(benches[b])};
        for (std::size_t p = 1; p < np; ++p) {
            double sum = 0.0;
            std::size_t valid = 0;
            for (std::size_t s = 0; s < ns; ++s) {
                const auto &base = at(b, 0, s);
                const auto &run = at(b, p, s);
                if (!base.ok || !run.ok)
                    continue;
                sum += normalizedPerformance(
                    base.value.steady_throughput,
                    run.value.steady_throughput, base.value.p99_request,
                    run.value.p99_request, latency);
                ++valid;
            }
            if (!valid) {
                row.push_back("-");
                continue;
            }
            const double v = sum / static_cast<double>(valid);
            norm[p - 1].push_back(v);
            row.push_back(TextTable::num(v, 2));
        }
        table.addRow(row);
    }
    emitTable(std::cout, table, "fig09_end2end");

    std::printf("\ngeometric means over the suite:\n");
    std::vector<double> means;
    for (std::size_t p = 0; p + 1 < np; ++p) {
        means.push_back(geomean(norm[p]));
        std::printf("  %-12s %.2fx\n", names[p], means.back());
    }
    const double m5_best = std::max({means[2], means[3], means[4]});
    std::printf("\nM5 best vs DAMON: %+.0f%% (paper +14%%); vs ANB: "
                "%+.0f%% (paper +20%%)\n",
                100.0 * (m5_best / means[1] - 1.0),
                100.0 * (m5_best / means[0] - 1.0));
    std::printf("paper: DAMON 1.81x, M5 2.06x over no migration\n");
    return 0;
}
