/**
 * @file
 * Figure 9: end-to-end performance of ANB, DAMON, and the three M5
 * Nominator configurations — M5(HPT) = HPT-only, M5(HWT) = HWT-driven,
 * M5(HPT+HWT) = HPT-driven — normalized to no page migration.
 *
 * Methodology (§7.2): all pages start in CXL DRAM; DDR capacity is 3/8 of
 * the footprint; once DDR fills, each promotion demotes an MGLRU victim.
 * Batch workloads report steady-state throughput; Redis reports inverse
 * p99 request latency.
 *
 * Paper reference: DAMON averages 1.81x over no migration (+6% over ANB);
 * M5 averages 2.06x (+14% over DAMON, +20% over ANB).  Redis: ANB +8%,
 * DAMON -16%, M5 +18-19% with the HWT-driven Nominator best; roms_r is
 * M5's largest win (+96% over ANB); PageRank is flat for everyone.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

double
normPerf(const RunResult &baseline, const RunResult &r,
         bool latency_sensitive)
{
    return normalizedPerformance(baseline.steady_throughput,
                                 r.steady_throughput,
                                 baseline.p99_request, r.p99_request,
                                 latency_sensitive);
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Figure 9: end-to-end performance normalized to no page "
        "migration");
    std::printf("scale=1/%.0f (Redis scored by inverse p99 latency)\n",
                1.0 / scale);

    const PolicyKind policies[] = {PolicyKind::Anb, PolicyKind::Damon,
                                   PolicyKind::M5HptOnly,
                                   PolicyKind::M5HwtDriven,
                                   PolicyKind::M5HptDriven};

    TextTable table({"bench", "ANB", "DAMON", "M5(HPT)", "M5(HWT)",
                     "M5(HPT+HWT)"});
    std::vector<std::vector<double>> norm(std::size(policies));
    for (const auto &benchname : benchmarkNames()) {
        const bool latency = benchname == "redis";
        const RunResult none =
            runPolicy(benchname, PolicyKind::None, scale);
        std::vector<std::string> row = {bench::shortName(benchname)};
        for (std::size_t p = 0; p < std::size(policies); ++p) {
            const RunResult r = runPolicy(benchname, policies[p], scale);
            const double v = normPerf(none, r, latency);
            norm[p].push_back(v);
            row.push_back(TextTable::num(v, 2));
        }
        table.addRow(row);
        std::fflush(stdout);
    }
    table.print(std::cout);

    std::printf("\ngeometric means over the suite:\n");
    const char *names[] = {"ANB", "DAMON", "M5(HPT)", "M5(HWT)",
                           "M5(HPT+HWT)"};
    std::vector<double> means;
    for (std::size_t p = 0; p < std::size(policies); ++p) {
        means.push_back(geomean(norm[p]));
        std::printf("  %-12s %.2fx\n", names[p], means.back());
    }
    const double m5_best =
        std::max({means[2], means[3], means[4]});
    std::printf("\nM5 best vs DAMON: %+.0f%% (paper +14%%); vs ANB: "
                "%+.0f%% (paper +20%%)\n",
                100.0 * (m5_best / means[1] - 1.0),
                100.0 * (m5_best / means[0] - 1.0));
    std::printf("paper: DAMON 1.81x, M5 2.06x over no migration\n");
    return 0;
}
