/**
 * @file
 * Shared plumbing for the figure/table harnesses: environment-controlled
 * scale (M5_BENCH_SCALE, M5_BENCH_SEEDS) and paper reference annotations.
 */

#ifndef M5_BENCH_BENCH_UTIL_HH
#define M5_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>

#include "sim/experiment.hh"
#include "workloads/registry.hh"

namespace m5::bench {

/** System scale for this harness run; M5_BENCH_SCALE overrides (e.g.
 *  "32" for 1/32 scale). */
inline double
benchScale()
{
    if (const char *env = std::getenv("M5_BENCH_SCALE")) {
        const double denom = std::atof(env);
        if (denom >= 1.0)
            return 1.0 / denom;
    }
    return kDefaultScale;
}

/** Number of repeated "execution points" (seeds); M5_BENCH_SEEDS
 *  overrides.  The paper uses 10 for Figure 3; the default here keeps a
 *  full bench sweep in minutes. */
inline int
benchSeeds(int fallback = 3)
{
    if (const char *env = std::getenv("M5_BENCH_SEEDS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    return fallback;
}

/** Short display name matching the paper's axis labels. */
inline std::string
shortName(const std::string &bench)
{
    if (bench == "liblinear")
        return "lib.";
    if (bench == "cactuBSSN_r")
        return "cactu.";
    if (bench == "fotonik3d_r")
        return "foto.";
    if (bench == "mcf_r")
        return "mcf";
    if (bench == "roms_r")
        return "roms";
    if (bench == "memcached")
        return "mcd";
    if (bench == "cachelib")
        return "c.-lib";
    return bench;
}

} // namespace m5::bench

#endif // M5_BENCH_BENCH_UTIL_HH
