/**
 * @file
 * §4.2: the performance cost of *identifying* hot pages.
 *
 * Methodology: pin the page-migration process and the benchmark to the
 * same CPU core, disable migrate_pages() (record-only mode), and measure
 * (1) the inflation of kernel CPU cycles over the baseline housekeeping,
 * (2) the Redis p99 latency increase, and (3) best-effort execution-time
 * increases.  The benchmark × {None, ANB, DAMON} grid runs in parallel.
 *
 * Paper reference: ANB inflates kernel cycles by up to 487% (avg 159%),
 * DAMON by up to 733% (avg 277%); Redis p99 +34% (ANB) / +39% (DAMON);
 * execution time up to +4.6% (SSSP, ANB) and +8.6% (Liblinear, DAMON).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

double
kernelInflationPct(const RunResult &r)
{
    return 100.0 * static_cast<double>(r.kernel_ident_cycles) /
           static_cast<double>(r.baseline_cycles);
}

} // namespace

int
main()
{
    const double scale = benchScale();

    printBanner(std::cout,
        "Sec 4.2: CPU cost of identifying hot pages "
        "(migrate_pages() disabled)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const std::vector<PolicyKind> policies = {
        PolicyKind::None, PolicyKind::Anb, PolicyKind::Damon};
    const std::vector<SweepJob> jobs =
        recordOnlyGrid(policies, scale).expand();
    ExperimentRunner runner({.name = "sec42"});
    const auto results = runner.run(jobs);

    const auto &benches = benchmarkNames();
    auto at = [&](std::size_t b, std::size_t p) -> const RunResult & {
        return results[b * policies.size() + p].value;
    };
    auto allOk = [&](std::size_t b) {
        return results[b * 3].ok && results[b * 3 + 1].ok &&
               results[b * 3 + 2].ok;
    };

    TextTable table({"bench", "ANB kcyc+%", "DAMON kcyc+%",
                     "ANB time+%", "DAMON time+%"});
    double anb_sum = 0.0, damon_sum = 0.0, anb_max = 0.0, damon_max = 0.0;
    double redis_anb_p99 = 0.0, redis_damon_p99 = 0.0;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        if (!allOk(b)) {
            table.addRow({shortBenchName(benches[b]), "-", "-", "-",
                          "-"});
            continue;
        }
        const RunResult &none = at(b, 0);
        const RunResult &anb = at(b, 1);
        const RunResult &damon = at(b, 2);

        const double anb_pct = kernelInflationPct(anb);
        const double damon_pct = kernelInflationPct(damon);
        anb_sum += anb_pct;
        damon_sum += damon_pct;
        anb_max = std::max(anb_max, anb_pct);
        damon_max = std::max(damon_max, damon_pct);

        const double anb_time = 100.0 *
            (static_cast<double>(anb.runtime) /
             static_cast<double>(none.runtime) - 1.0);
        const double damon_time = 100.0 *
            (static_cast<double>(damon.runtime) /
             static_cast<double>(none.runtime) - 1.0);

        if (benches[b] == "redis") {
            redis_anb_p99 =
                100.0 * (anb.p99_request / none.p99_request - 1.0);
            redis_damon_p99 =
                100.0 * (damon.p99_request / none.p99_request - 1.0);
        }

        table.addRow({shortBenchName(benches[b]),
                      TextTable::num(anb_pct, 0),
                      TextTable::num(damon_pct, 0),
                      TextTable::num(anb_time, 1),
                      TextTable::num(damon_time, 1)});
    }
    emitTable(std::cout, table, "sec42_overhead");

    const double n = static_cast<double>(benches.size());
    std::printf("\nkernel-cycle inflation: ANB avg %.0f%% max %.0f%% "
                "(paper avg 159%% max 487%%)\n",
                anb_sum / n, anb_max);
    std::printf("                        DAMON avg %.0f%% max %.0f%% "
                "(paper avg 277%% max 733%%)\n",
                damon_sum / n, damon_max);
    std::printf("Redis p99 increase: ANB +%.0f%% DAMON +%.0f%% "
                "(paper +34%% / +39%%)\n",
                redis_anb_p99, redis_damon_p99);
    return 0;
}
