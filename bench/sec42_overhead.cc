/**
 * @file
 * §4.2: the performance cost of *identifying* hot pages.
 *
 * Methodology: pin the page-migration process and the benchmark to the
 * same CPU core, disable migrate_pages() (record-only mode), and measure
 * (1) the inflation of kernel CPU cycles over the baseline housekeeping,
 * (2) the Redis p99 latency increase, and (3) best-effort execution-time
 * increases.
 *
 * Paper reference: ANB inflates kernel cycles by up to 487% (avg 159%),
 * DAMON by up to 733% (avg 277%); Redis p99 +34% (ANB) / +39% (DAMON);
 * execution time up to +4.6% (SSSP, ANB) and +8.6% (Liblinear, DAMON).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

RunResult
runIdentificationOnly(const std::string &bench, PolicyKind policy,
                      double scale)
{
    SystemConfig cfg = makeConfig(bench, policy, scale, 1);
    cfg.record_only = true; // migrate_pages() disabled.
    TieredSystem sys(cfg);
    return sys.run(accessBudget(bench, scale));
}

double
kernelInflationPct(const RunResult &r)
{
    return 100.0 * static_cast<double>(r.kernel_ident_cycles) /
           static_cast<double>(r.baseline_cycles);
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();

    printBanner(std::cout,
        "Sec 4.2: CPU cost of identifying hot pages "
        "(migrate_pages() disabled)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    TextTable table({"bench", "ANB kcyc+%", "DAMON kcyc+%",
                     "ANB time+%", "DAMON time+%"});
    double anb_sum = 0.0, damon_sum = 0.0, anb_max = 0.0, damon_max = 0.0;
    double redis_anb_p99 = 0.0, redis_damon_p99 = 0.0;
    for (const auto &benchname : benchmarkNames()) {
        const RunResult none =
            runIdentificationOnly(benchname, PolicyKind::None, scale);
        const RunResult anb =
            runIdentificationOnly(benchname, PolicyKind::Anb, scale);
        const RunResult damon =
            runIdentificationOnly(benchname, PolicyKind::Damon, scale);

        const double anb_pct = kernelInflationPct(anb);
        const double damon_pct = kernelInflationPct(damon);
        anb_sum += anb_pct;
        damon_sum += damon_pct;
        anb_max = std::max(anb_max, anb_pct);
        damon_max = std::max(damon_max, damon_pct);

        const double anb_time = 100.0 *
            (static_cast<double>(anb.runtime) / none.runtime - 1.0);
        const double damon_time = 100.0 *
            (static_cast<double>(damon.runtime) / none.runtime - 1.0);

        if (benchname == "redis") {
            redis_anb_p99 =
                100.0 * (anb.p99_request / none.p99_request - 1.0);
            redis_damon_p99 =
                100.0 * (damon.p99_request / none.p99_request - 1.0);
        }

        table.addRow({bench::shortName(benchname),
                      TextTable::num(anb_pct, 0),
                      TextTable::num(damon_pct, 0),
                      TextTable::num(anb_time, 1),
                      TextTable::num(damon_time, 1)});
        std::fflush(stdout);
    }
    table.print(std::cout);

    const double n = static_cast<double>(benchmarkNames().size());
    std::printf("\nkernel-cycle inflation: ANB avg %.0f%% max %.0f%% "
                "(paper avg 159%% max 487%%)\n",
                anb_sum / n, anb_max);
    std::printf("                        DAMON avg %.0f%% max %.0f%% "
                "(paper avg 277%% max 733%%)\n",
                damon_sum / n, damon_max);
    std::printf("Redis p99 increase: ANB +%.0f%% DAMON +%.0f%% "
                "(paper +34%% / +39%%)\n",
                redis_anb_p99, redis_damon_p99);
    return 0;
}
