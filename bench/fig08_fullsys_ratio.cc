/**
 * @file
 * Figure 8: full-system (Agilex7-based in the paper) average access-count
 * ratios of HPT, with the trackers queried at the rate chosen by Elector
 * (Algorithm 1), compared against the best CPU-driven solution.
 *
 * Three configurations per benchmark, all record-only over all-CXL
 * placement, scored against PAC's same-size top-K:
 *   - the better of ANB and DAMON (the "CPU-driven best" bar),
 *   - M5 with a Space-Saving HPT at its FPGA limit (N = 50),
 *   - M5 with a CM-Sketch HPT at N = 32K.
 *
 * Paper reference: CM-Sketch-32K averages 0.72 absolute — 3.5% above
 * Space-Saving-50 and 47% above the best CPU-driven solution.
 */

#include <cstdio>
#include <iostream>

#include "analysis/ratio.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

double
m5Ratio(const std::string &benchname, TrackerKind kind, std::uint64_t n,
        double scale)
{
    SystemConfig cfg =
        makeConfig(benchname, PolicyKind::M5HptOnly, scale, 1);
    cfg.record_only = true;
    cfg.hpt_cfg.kind = kind;
    cfg.hpt_cfg.entries = n;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(accessBudget(benchname, scale));
    return accessCountRatio(sys.pac(), r.hot_pages);
}

double
cpuRatio(const std::string &benchname, PolicyKind policy, double scale)
{
    SystemConfig cfg = makeConfig(benchname, policy, scale, 1);
    cfg.record_only = true;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(accessBudget(benchname, scale));
    return accessCountRatio(sys.pac(), r.hot_pages);
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Figure 8: full-system access-count ratios of HPT "
        "(Elector-driven query rate)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    TextTable table({"bench", "CPU-driven best", "M5 SS(50)",
                     "M5 CM(32K)"});
    double best_sum = 0.0, ss_sum = 0.0, cm_sum = 0.0;
    for (const auto &benchname : benchmarkNames()) {
        const double anb = cpuRatio(benchname, PolicyKind::Anb, scale);
        const double damon =
            cpuRatio(benchname, PolicyKind::Damon, scale);
        const double best = std::max(anb, damon);
        const double ss =
            m5Ratio(benchname, TrackerKind::SpaceSavingTopK, 50, scale);
        const double cm = m5Ratio(benchname, TrackerKind::CmSketchTopK,
                                  32 * 1024, scale);
        best_sum += best;
        ss_sum += ss;
        cm_sum += cm;
        table.addRow({bench::shortName(benchname), TextTable::num(best),
                      TextTable::num(ss), TextTable::num(cm)});
        std::fflush(stdout);
    }
    table.print(std::cout);

    const double n = static_cast<double>(benchmarkNames().size());
    std::printf("\nmeans: CPU-driven best %.2f, M5 SS(50) %.2f, "
                "M5 CM(32K) %.2f\n",
                best_sum / n, ss_sum / n, cm_sum / n);
    std::printf("paper: CM(32K) mean 0.72; +3.5%% over SS(50), +47%% "
                "over CPU-driven best\n");
    std::printf("measured: CM(32K) is %+.0f%% over SS(50), %+.0f%% over "
                "CPU-driven best\n",
                100.0 * (cm_sum / ss_sum - 1.0),
                100.0 * (cm_sum / best_sum - 1.0));
    return 0;
}
