/**
 * @file
 * Figure 8: full-system (Agilex7-based in the paper) average access-count
 * ratios of HPT, with the trackers queried at the rate chosen by Elector
 * (Algorithm 1), compared against the best CPU-driven solution.
 *
 * Three configurations per benchmark, all record-only over all-CXL
 * placement, scored against PAC's same-size top-K:
 *   - the better of ANB and DAMON (the "CPU-driven best" bar),
 *   - M5 with a Space-Saving HPT at its FPGA limit (N = 50),
 *   - M5 with a CM-Sketch HPT at N = 32K.
 * The four variants form a custom sweep axis over the suite.
 *
 * Paper reference: CM-Sketch-32K averages 0.72 absolute — 3.5% above
 * Space-Saving-50 and 47% above the best CPU-driven solution.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

SweepPoint
m5Point(std::string label, TrackerKind kind, std::uint64_t n)
{
    return {std::move(label), [kind, n](SystemConfig &cfg) {
                cfg.policy = PolicyKind::M5HptOnly;
                cfg.hpt_cfg.kind = kind;
                cfg.hpt_cfg.entries = n;
            }};
}

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Figure 8: full-system access-count ratios of HPT "
        "(Elector-driven query rate)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    SweepGrid grid = recordOnlyGrid({PolicyKind::None}, scale);
    grid.axis({
        {"ANB", [](SystemConfig &c) { c.policy = PolicyKind::Anb; }},
        {"DAMON", [](SystemConfig &c) { c.policy = PolicyKind::Damon; }},
        m5Point("SS50", TrackerKind::SpaceSavingTopK, 50),
        m5Point("CM32K", TrackerKind::CmSketchTopK, 32 * 1024),
    });
    const std::vector<SweepJob> jobs = grid.expand();
    ExperimentRunner runner({.name = "fig08"});
    const auto results = runner.map(jobs, accessRatioJob);

    const auto &benches = benchmarkNames();
    auto at = [&](std::size_t b, std::size_t v) {
        return results[b * 4 + v].ok ? results[b * 4 + v].value : 0.0;
    };

    TextTable table({"bench", "CPU-driven best", "M5 SS(50)",
                     "M5 CM(32K)"});
    double best_sum = 0.0, ss_sum = 0.0, cm_sum = 0.0;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const double best = std::max(at(b, 0), at(b, 1));
        const double ss = at(b, 2);
        const double cm = at(b, 3);
        best_sum += best;
        ss_sum += ss;
        cm_sum += cm;
        table.addRow({shortBenchName(benches[b]), TextTable::num(best),
                      TextTable::num(ss), TextTable::num(cm)});
    }
    emitTable(std::cout, table, "fig08_fullsys_ratio");

    const double n = static_cast<double>(benches.size());
    std::printf("\nmeans: CPU-driven best %.2f, M5 SS(50) %.2f, "
                "M5 CM(32K) %.2f\n",
                best_sum / n, ss_sum / n, cm_sum / n);
    std::printf("paper: CM(32K) mean 0.72; +3.5%% over SS(50), +47%% "
                "over CPU-driven best\n");
    std::printf("measured: CM(32K) is %+.0f%% over SS(50), %+.0f%% over "
                "CPU-driven best\n",
                100.0 * (cm_sum / ss_sum - 1.0),
                100.0 * (cm_sum / best_sum - 1.0));
    return 0;
}
