/**
 * @file
 * N-tier topology sweep (docs/TOPOLOGY.md).
 *
 * Runs a skewed and a streaming benchmark over a grid of topologies
 * (the default DDR/CXL pair, a 3-tier and a 4-tier latency ladder) and
 * top-tier capacity ratios, under a fixed small `ddr_alloc` burst so
 * the exchange fallback is exercised in every cell.  Reports steady
 * throughput normalized to the same benchmark/ratio's two-tier cell
 * next to the placement counters: promotions, atomic exchanges,
 * opportunistic best-fit placements, the promotion success rate
 * (successes over attempts), and invariant violations (which must stay
 * zero on every topology).
 *
 * Cells build TieredSystem directly so the engine and invariant
 * counters can be read off the live components after the run; the grid
 * itself is declared as a SweepGrid custom axis and executed by the
 * parallel ExperimentRunner.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct CellResult
{
    RunResult run;
    std::uint64_t exchanged = 0;
    std::uint64_t placed_lower = 0;
    std::uint64_t failed_capacity = 0;
    std::uint64_t transient_fail = 0;
    std::uint64_t invariant_violations = 0;
};

/** successes / attempts over the promotion-shaped outcomes. */
double
promoSuccessRate(const CellResult &r)
{
    const double ok = static_cast<double>(
        r.run.migration.promoted + r.exchanged + r.placed_lower);
    const double attempts =
        ok + static_cast<double>(r.failed_capacity + r.transient_fail);
    return attempts > 0.0 ? ok / attempts : 1.0;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
                "N-tier topology sweep: tiers x skew x DDR ratio "
                "(normalized to the two-tier cell)");
    std::printf("scale=1/%.0f, faults=ddr_alloc:burst=64@2ms in every "
                "cell (exercises the exchange fallback)\n",
                1.0 / scale);

    // mcf_r: hot-skewed pointer chasing; roms_r: streaming, flat tail.
    const std::vector<std::string> benches = {"mcf_r", "roms_r"};
    const std::vector<std::pair<std::string, std::string>> topologies = {
        {"2-tier", ""},
        {"3-tier", "ddr:100,cxl:270:0.25,far:400"},
        {"4-tier", "ddr:100,near:170:0.15,cxl:270:0.15,far:400"},
    };
    const std::vector<double> ratios = {0.125, 0.375};

    SweepGrid grid;
    std::vector<SweepPoint> points;
    for (const auto &[tname, tspec] : topologies) {
        for (double ratio : ratios) {
            points.push_back(
                {tname + "/d" + TextTable::num(ratio, 3),
                 [tspec = tspec, ratio](SystemConfig &cfg) {
                     cfg.tiers = tspec;
                     cfg.ddr_capacity_fraction = ratio;
                     cfg.faults = "ddr_alloc:burst=64@2ms";
                 }});
        }
    }
    grid.benchmarks(benches)
        .policy(PolicyKind::M5HptDriven)
        .scale(scale)
        .axis(points);
    const auto jobs = grid.expand();

    ExperimentRunner runner({.name = "ntier_sweep"});
    const auto results = runner.map(jobs, [](const SweepJob &job) {
        TieredSystem sys(job.config);
        CellResult out;
        out.run = sys.run(job.budget);
        const MigrationStats &ms = sys.migrationEngine().stats();
        out.exchanged = ms.exchanged;
        out.placed_lower = ms.placed_lower;
        out.failed_capacity = ms.failed_capacity;
        out.transient_fail = ms.transient_fail;
        if (sys.invariants())
            out.invariant_violations = sys.invariants()->violations();
        return out;
    });

    TextTable table({"bench", "topology", "ddr", "norm perf", "promoted",
                     "exchanged", "placed lower", "promo rate",
                     "inv viol"});
    const std::size_t nv = points.size();
    const std::size_t nr = ratios.size();
    bool clean = true;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        for (std::size_t v = 0; v < nv; ++v) {
            const auto &r = results[b * nv + v];
            // The two-tier cell with the same benchmark and DDR ratio.
            const auto &base = results[b * nv + v % nr];
            if (!base.ok)
                m5_fatal("two-tier baseline cell failed: %s",
                         base.error.c_str());
            const double baseline = base.value.run.steady_throughput;
            auto u = [&](std::uint64_t x) { return std::to_string(x); };
            table.addRow(
                {benches[b], topologies[v / nr].first,
                 TextTable::num(ratios[v % nr], 3),
                 r.ok ? TextTable::num(
                            r.value.run.steady_throughput / baseline, 3)
                      : "-",
                 r.ok ? u(r.value.run.migration.promoted) : "-",
                 r.ok ? u(r.value.exchanged) : "-",
                 r.ok ? u(r.value.placed_lower) : "-",
                 r.ok ? TextTable::num(promoSuccessRate(r.value), 3)
                      : "-",
                 r.ok ? u(r.value.invariant_violations) : "-"});
            if (r.ok && r.value.invariant_violations > 0)
                clean = false;
        }
    }
    emitTable(std::cout, table, "ntier_sweep");

    std::printf("\ninvariants: %s across every topology\n",
                clean ? "clean" : "VIOLATED");
    return clean ? 0 : 1;
}
