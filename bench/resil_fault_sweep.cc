/**
 * @file
 * Resilience sweep: fault rate x policy (docs/FAULTS.md).
 *
 * Runs mcf_r under ANB, DAMON, and M5(HPT+HWT) across a ladder of
 * deterministic fault plans — none, light (occasional EBUSY and stale
 * MMIO), heavy (frequent EBUSY, DDR allocation bursts, dropped
 * wakeups) — and reports steady throughput normalized to each policy's
 * own fault-free cell next to the resilience counters: transient
 * failures absorbed, retries issued, pages dropped, circuit-breaker
 * openings, stale MMIO queries, and invariant violations (which must
 * stay zero: faults may slow the system down, never corrupt it).
 *
 * Cells build TieredSystem directly instead of going through runJob so
 * the breaker / degradation / invariant counters can be read off the
 * live components after the run.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct Cell
{
    PolicyKind policy;
    std::string fault_name;
    std::string fault_spec;
};

struct CellResult
{
    RunResult run;
    std::uint64_t injected = 0;
    std::uint64_t breaker_opened = 0;
    std::uint64_t stale_mmio = 0;
    std::uint64_t invariant_checks = 0;
    std::uint64_t invariant_violations = 0;
};

} // namespace

int
main()
{
    const double scale = benchScale();
    const std::string bench = "mcf_r";
    printBanner(std::cout,
                "Resilience: fault rate x policy (mcf_r, normalized to "
                "each policy's fault-free cell)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const std::vector<PolicyKind> policies = {
        PolicyKind::Anb, PolicyKind::Damon, PolicyKind::M5HptDriven};
    const std::vector<std::pair<std::string, std::string>> plans = {
        {"none", ""},
        {"light", "migrate_busy:p=0.02,mmio_stale:p=0.05"},
        {"heavy", "migrate_busy:p=0.25,ddr_alloc:burst=200@2ms,"
                  "mmio_stale:p=0.3,wake_drop:p=0.05"},
    };

    std::vector<Cell> cells;
    for (PolicyKind p : policies)
        for (const auto &[name, spec] : plans)
            cells.push_back({p, name, spec});

    ExperimentRunner runner({.name = "resil_fault"});
    const std::uint64_t budget = accessBudget(bench, scale);
    const auto results =
        runner.mapItems(cells, [&](const Cell &cell) {
            SystemConfig cfg = makeConfig(bench, cell.policy, scale);
            cfg.faults = cell.fault_spec;
            TieredSystem sys(cfg);
            CellResult out;
            out.run = sys.run(budget);
            if (const FaultInjector *f = sys.faults()) {
                out.injected = f->injectedTotal();
                out.stale_mmio = sys.monitor().staleMmio();
                out.invariant_checks = sys.invariants()->checks();
                out.invariant_violations = sys.invariants()->violations();
                if (const M5Manager *m5 = sys.m5Manager())
                    out.breaker_opened = m5->elector().breakerOpened();
            }
            return out;
        });

    TextTable table({"policy", "faults", "norm perf", "promoted",
                     "transient", "retries", "dropped", "breaker",
                     "stale", "inv viol"});
    const std::size_t np = plans.size();
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const auto &base = results[p * np];
        if (!base.ok)
            m5_fatal("fault-free cell failed: %s", base.error.c_str());
        const double baseline = base.value.run.steady_throughput;
        for (std::size_t v = 0; v < np; ++v) {
            const auto &r = results[p * np + v];
            auto u = [&](std::uint64_t x) { return std::to_string(x); };
            table.addRow(
                {policyKindName(policies[p]), plans[v].first,
                 r.ok ? TextTable::num(
                            r.value.run.steady_throughput / baseline, 3)
                      : "-",
                 r.ok ? u(r.value.run.migration.promoted) : "-",
                 r.ok ? u(r.value.run.migration.transient_fail) : "-",
                 r.ok ? u(r.value.run.migration.retries) : "-",
                 r.ok ? u(r.value.run.migration.dropped) : "-",
                 r.ok ? u(r.value.breaker_opened) : "-",
                 r.ok ? u(r.value.stale_mmio) : "-",
                 r.ok ? u(r.value.invariant_violations) : "-"});
        }
    }
    emitTable(std::cout, table, "resil_fault_sweep");

    bool clean = true;
    for (const auto &r : results)
        if (r.ok && r.value.invariant_violations > 0)
            clean = false;
    std::printf("\ninvariants: %s — faults degrade throughput but must "
                "never corrupt placement state\n",
                clean ? "clean under every plan" : "VIOLATED");
    return clean ? 0 : 1;
}
