/**
 * @file
 * Resilience sweep: fault rate x policy (docs/FAULTS.md).
 *
 * Runs mcf_r under ANB, DAMON, and M5(HPT+HWT) across a ladder of
 * deterministic fault plans — none, light (occasional EBUSY and stale
 * MMIO), heavy (frequent EBUSY, DDR allocation bursts, dropped
 * wakeups) — and reports steady throughput normalized to each policy's
 * own fault-free cell next to the resilience counters: transient
 * failures absorbed, retries issued, pages dropped, circuit-breaker
 * openings, stale MMIO queries, and invariant violations (which must
 * stay zero: faults may slow the system down, never corrupt it).
 *
 * Cells build TieredSystem directly instead of going through runJob so
 * the breaker / degradation / invariant counters can be read off the
 * live components after the run.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct Cell
{
    PolicyKind policy;
    std::string fault_name;
    std::string fault_spec;
};

struct CellResult
{
    RunResult run;
    std::uint64_t injected = 0;
    std::uint64_t breaker_opened = 0;
    std::uint64_t stale_mmio = 0;
    std::uint64_t invariant_checks = 0;
    std::uint64_t invariant_violations = 0;
};

/** One cell of the ddr_alloc storm comparison (exchange on vs off). */
struct StormResult
{
    RunResult run;
    std::uint64_t storms = 0; //!< ddr_alloc faults injected.
    std::uint64_t exchanged = 0;
    std::uint64_t no_victim = 0;
    std::uint64_t invariant_violations = 0;
};

/** One cell of the txn-vs-legacy comparison under a copy_race storm. */
struct TxnCell
{
    std::string bench;   //!< Read-heavy (pr) or write-heavy (redis).
    bool txn;            //!< Transactional migration on or off.
};

struct TxnCellResult
{
    RunResult run;
    std::uint64_t invariant_violations = 0;
};

} // namespace

int
main()
{
    const double scale = benchScale();
    const std::string bench = "mcf_r";
    printBanner(std::cout,
                "Resilience: fault rate x policy (mcf_r, normalized to "
                "each policy's fault-free cell)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const std::vector<PolicyKind> policies = {
        PolicyKind::Anb, PolicyKind::Damon, PolicyKind::M5HptDriven};
    const std::vector<std::pair<std::string, std::string>> plans = {
        {"none", ""},
        {"light", "migrate_busy:p=0.02,mmio_stale:p=0.05"},
        {"heavy", "migrate_busy:p=0.25,ddr_alloc:burst=200@2ms,"
                  "mmio_stale:p=0.3,wake_drop:p=0.05"},
    };

    std::vector<Cell> cells;
    for (PolicyKind p : policies)
        for (const auto &[name, spec] : plans)
            cells.push_back({p, name, spec});

    ExperimentRunner runner({.name = "resil_fault"});
    const std::uint64_t budget = accessBudget(bench, scale);
    const auto results =
        runner.mapItems(cells, [&](const Cell &cell) {
            SystemConfig cfg = makeConfig(bench, cell.policy, scale);
            cfg.faults = cell.fault_spec;
            TieredSystem sys(cfg);
            CellResult out;
            out.run = sys.run(budget);
            if (const FaultInjector *f = sys.faults()) {
                out.injected = f->injectedTotal();
                out.stale_mmio = sys.monitor().staleMmio();
                out.invariant_checks = sys.invariants()->checks();
                out.invariant_violations = sys.invariants()->violations();
                if (const M5Manager *m5 = sys.m5Manager())
                    out.breaker_opened = m5->elector().breakerOpened();
            }
            return out;
        });

    TextTable table({"policy", "faults", "norm perf", "promoted",
                     "transient", "retries", "dropped", "breaker",
                     "stale", "inv viol"});
    const std::size_t np = plans.size();
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const auto &base = results[p * np];
        if (!base.ok)
            m5_fatal("fault-free cell failed: %s", base.error.c_str());
        const double baseline = base.value.run.steady_throughput;
        for (std::size_t v = 0; v < np; ++v) {
            const auto &r = results[p * np + v];
            auto u = [&](std::uint64_t x) { return std::to_string(x); };
            table.addRow(
                {policyKindName(policies[p]), plans[v].first,
                 r.ok ? TextTable::num(
                            r.value.run.steady_throughput / baseline, 3)
                      : "-",
                 r.ok ? u(r.value.run.migration.promoted) : "-",
                 r.ok ? u(r.value.run.migration.transient_fail) : "-",
                 r.ok ? u(r.value.run.migration.retries) : "-",
                 r.ok ? u(r.value.run.migration.dropped) : "-",
                 r.ok ? u(r.value.breaker_opened) : "-",
                 r.ok ? u(r.value.stale_mmio) : "-",
                 r.ok ? u(r.value.invariant_violations) : "-"});
        }
    }
    emitTable(std::cout, table, "resil_fault_sweep");

    bool clean = true;
    for (const auto &r : results)
        if (r.ok && r.value.invariant_violations > 0)
            clean = false;
    std::printf("\ninvariants: %s — faults degrade throughput but must "
                "never corrupt placement state\n",
                clean ? "clean under every plan" : "VIOLATED");

    // ddr_alloc storm: with the exchange fallback on, a failed top-tier
    // frame allocation swaps with the coldest DDR page instead of
    // reporting TransientNoFrame (docs/TOPOLOGY.md).  The conversion
    // rate must clear 50% for the fallback to count as absorbing the
    // storm rather than merely retrying through it.
    const std::string storm_spec = "ddr_alloc:burst=200@2ms";
    std::vector<bool> storm_cells = {true, false};
    const auto storm_results =
        runner.mapItems(storm_cells, [&](const bool &exchange_on) {
            SystemConfig cfg =
                makeConfig(bench, PolicyKind::M5HptDriven, scale);
            cfg.faults = storm_spec;
            cfg.exchange = exchange_on;
            TieredSystem sys(cfg);
            StormResult out;
            out.run = sys.run(budget);
            if (const FaultInjector *f = sys.faults())
                out.storms = f->injected(FaultPoint::DdrAlloc);
            const MigrationStats &ms = sys.migrationEngine().stats();
            out.exchanged = ms.exchanged;
            out.no_victim = ms.exchange_failed;
            out.invariant_violations = sys.invariants()->violations();
            return out;
        });

    TextTable storm({"exchange", "storms", "exchanged", "no_frame",
                     "converted", "norm perf", "inv viol"});
    double conversion = 0.0;
    bool storm_clean = true;
    const double storm_base =
        storm_results[0].ok
            ? storm_results[0].value.run.steady_throughput : 1.0;
    for (std::size_t i = 0; i < storm_results.size(); ++i) {
        const auto &r = storm_results[i];
        if (!r.ok)
            m5_fatal("storm cell failed: %s", r.error.c_str());
        const double rate = r.value.storms
            ? static_cast<double>(r.value.exchanged) /
                  static_cast<double>(r.value.storms)
            : 0.0;
        if (storm_cells[i])
            conversion = rate;
        if (r.value.invariant_violations > 0)
            storm_clean = false;
        storm.addRow(
            {storm_cells[i] ? "on" : "off",
             std::to_string(r.value.storms),
             std::to_string(r.value.exchanged),
             std::to_string(r.value.run.migration.transient_fail),
             TextTable::num(rate, 3),
             TextTable::num(r.value.run.steady_throughput / storm_base,
                            3),
             std::to_string(r.value.invariant_violations)});
    }
    std::printf("\nddr_alloc storm ('%s', M5, exchange on vs off):\n",
                storm_spec.c_str());
    emitTable(std::cout, storm, "resil_fault_sweep_storm");
    std::printf("\nexchange converted %.0f%% of would-be no-frame "
                "failures (%s, need >= 50%%)\n",
                conversion * 100.0,
                conversion >= 0.5 ? "ok" : "SHORT");

    // Transactional migration under a write-race storm
    // (docs/MIGRATION.md): migrate_busy EBUSY noise plus injected
    // copy_race stores inside the copy window.  Two workloads bracket
    // the design space — pr is read-heavy (shadows survive, demotions
    // go free), redis is the write-heavy antagonist (YCSB-A stores
    // invalidate shadows and race copies).  Each txn cell is normalized
    // to its own legacy (txn-off) cell; the storm must produce both
    // commits and aborts on the txn side, and nobody corrupts state.
    const std::string race_spec = "migrate_busy:p=0.02,copy_race:p=0.1";
    std::vector<TxnCell> txn_cells = {
        {"pr", false}, {"pr", true}, {"redis", false}, {"redis", true}};
    const auto txn_results =
        runner.mapItems(txn_cells, [&](const TxnCell &cell) {
            SystemConfig cfg =
                makeConfig(cell.bench, PolicyKind::M5HptDriven, scale);
            cfg.faults = race_spec;
            cfg.txn_migrate = cell.txn;
            // Shrink DDR so demotion pressure exercises the zero-copy
            // (shadow) demote path, not just promotion.
            cfg.ddr_capacity_fraction = 0.15;
            TieredSystem sys(cfg);
            TxnCellResult out;
            out.run = sys.run(budget);
            out.invariant_violations = sys.invariants()->violations();
            return out;
        });

    TextTable txn_table({"bench", "txn", "commits", "aborts", "commit%",
                         "degraded", "free_demote%", "shadow_drops",
                         "norm perf", "inv viol"});
    bool txn_clean = true;
    bool txn_exercised = true;
    for (std::size_t i = 0; i < txn_results.size(); ++i) {
        const auto &r = txn_results[i];
        if (!r.ok)
            m5_fatal("txn cell failed: %s", r.error.c_str());
        // Legacy cells precede their txn sibling: i - 1 is the baseline.
        const double legacy = txn_cells[i].txn
            ? txn_results[i - 1].value.run.steady_throughput
            : r.value.run.steady_throughput;
        const TxnStats &ts = r.value.run.txn;
        const std::uint64_t attempts = ts.commits + ts.aborts;
        const std::uint64_t demoted = r.value.run.migration.demoted;
        if (r.value.invariant_violations > 0)
            txn_clean = false;
        if (txn_cells[i].txn && (ts.commits == 0 || ts.aborts == 0))
            txn_exercised = false;
        txn_table.addRow(
            {txn_cells[i].bench, txn_cells[i].txn ? "on" : "off",
             std::to_string(ts.commits), std::to_string(ts.aborts),
             attempts ? TextTable::num(
                            100.0 * static_cast<double>(ts.commits) /
                                static_cast<double>(attempts), 1)
                      : "-",
             std::to_string(ts.degraded_pages),
             demoted ? TextTable::num(
                           100.0 * static_cast<double>(ts.demoted_free) /
                               static_cast<double>(demoted), 1)
                     : "-",
             std::to_string(ts.shadow_invalidated + ts.shadow_reclaimed),
             TextTable::num(r.value.run.steady_throughput / legacy, 3),
             std::to_string(r.value.invariant_violations)});
    }
    std::printf("\ncopy_race storm ('%s', M5, txn on vs off, ddr=15%%):\n",
                race_spec.c_str());
    emitTable(std::cout, txn_table, "resil_fault_sweep_txn");
    std::printf("\ntxn migration: %s, %s\n",
                txn_exercised
                    ? "storm exercised both commits and aborts"
                    : "storm MISSED a commit/abort path",
                txn_clean ? "invariants clean" : "invariants VIOLATED");

    return (clean && storm_clean && conversion >= 0.5 && txn_clean &&
            txn_exercised) ? 0 : 1;
}
