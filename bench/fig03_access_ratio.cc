/**
 * @file
 * Figure 3: average access-count ratio of hot pages identified by ANB and
 * DAMON, measured against PAC's same-size top-K (§4.1, steps S1-S5).
 *
 * Methodology: each benchmark runs with all pages cgroup-pinned to CXL
 * DRAM; the page-migration solution runs in record-only mode, storing
 * identified hot-page PFNs into a hot-page list (capped at ~1/16 of the
 * footprint, the paper's 128K-page budget); PAC counts every access.  The
 * run repeats over several seeds ("execution points") for min/max bars.
 * The benchmark × policy × seed grid runs on the ExperimentRunner pool.
 *
 * Paper reference: both solutions score below 0.4 on most benchmarks
 * (exceptions: cactuBSSN_r, fotonik3d_r, mcf_r), DAMON above ANB on
 * average (0.29 vs 0.21 across the suite).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct RatioStats
{
    double avg = 0.0;
    double min = 1.0;
    double max = 0.0;
};

/** Fold the per-seed ratios of one (bench, policy) cell block. */
RatioStats
fold(const std::vector<Outcome<double>> &results, std::size_t first,
     std::size_t seeds)
{
    RatioStats s;
    double sum = 0.0;
    std::size_t valid = 0;
    for (std::size_t i = first; i < first + seeds; ++i) {
        if (!results[i].ok)
            continue;
        const double ratio = results[i].value;
        sum += ratio;
        s.min = std::min(s.min, ratio);
        s.max = std::max(s.max, ratio);
        ++valid;
    }
    s.avg = valid ? sum / static_cast<double>(valid) : 0.0;
    return s;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    const int seeds = benchSeeds();

    printBanner(std::cout,
        "Figure 3: access-count ratio of ANB/DAMON hot pages vs PAC "
        "top-K");
    std::printf("scale=1/%.0f, %d execution points per bar\n",
                1.0 / scale, seeds);

    const std::vector<PolicyKind> policies = {PolicyKind::Anb,
                                              PolicyKind::Damon};
    const std::vector<SweepJob> jobs =
        recordOnlyGrid(policies, scale, seeds).expand();
    ExperimentRunner runner({.name = "fig03"});
    const auto results = runner.map(jobs, accessRatioJob);

    const auto &benches = benchmarkNames();
    const std::size_t ns = static_cast<std::size_t>(seeds);
    TextTable table({"bench", "ANB avg", "ANB min", "ANB max",
                     "DAMON avg", "DAMON min", "DAMON max"});
    std::vector<double> anb_avgs, damon_avgs;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const RatioStats anb = fold(results, (b * 2 + 0) * ns, ns);
        const RatioStats damon = fold(results, (b * 2 + 1) * ns, ns);
        anb_avgs.push_back(std::max(anb.avg, 1e-6));
        damon_avgs.push_back(std::max(damon.avg, 1e-6));
        table.addRow({shortBenchName(benches[b]),
                      TextTable::num(anb.avg), TextTable::num(anb.min),
                      TextTable::num(anb.max), TextTable::num(damon.avg),
                      TextTable::num(damon.min),
                      TextTable::num(damon.max)});
    }
    emitTable(std::cout, table, "fig03_access_ratio");

    double anb_mean = 0.0, damon_mean = 0.0;
    for (double v : anb_avgs)
        anb_mean += v;
    for (double v : damon_avgs)
        damon_mean += v;
    anb_mean /= static_cast<double>(anb_avgs.size());
    damon_mean /= static_cast<double>(damon_avgs.size());
    std::printf("\nsuite mean: ANB %.2f  DAMON %.2f "
                "(paper: ANB 0.21, DAMON 0.29; most bars < 0.4)\n",
                anb_mean, damon_mean);
    return 0;
}
