/**
 * @file
 * Figure 3: average access-count ratio of hot pages identified by ANB and
 * DAMON, measured against PAC's same-size top-K (§4.1, steps S1-S5).
 *
 * Methodology: each benchmark runs with all pages cgroup-pinned to CXL
 * DRAM; the page-migration solution runs in record-only mode, storing
 * identified hot-page PFNs into a hot-page list (capped at ~1/16 of the
 * footprint, the paper's 128K-page budget); PAC counts every access.  The
 * run repeats over several seeds ("execution points") for min/max bars.
 *
 * Paper reference: both solutions score below 0.4 on most benchmarks
 * (exceptions: cactuBSSN_r, fotonik3d_r, mcf_r), DAMON above ANB on
 * average (0.29 vs 0.21 across the suite).
 */

#include <cstdio>
#include <iostream>

#include "analysis/ratio.hh"
#include "analysis/report.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

namespace {

struct RatioStats
{
    double avg = 0.0;
    double min = 1.0;
    double max = 0.0;
};

RatioStats
measure(const std::string &bench, PolicyKind policy, double scale,
        int seeds)
{
    RatioStats s;
    double sum = 0.0;
    for (int seed = 1; seed <= seeds; ++seed) {
        SystemConfig cfg = makeConfig(bench, policy, scale, seed);
        cfg.record_only = true;
        TieredSystem sys(cfg);
        const RunResult r = sys.run(accessBudget(bench, scale));
        const double ratio = accessCountRatio(sys.pac(), r.hot_pages);
        sum += ratio;
        s.min = std::min(s.min, ratio);
        s.max = std::max(s.max, ratio);
    }
    s.avg = sum / seeds;
    return s;
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();
    const int seeds = bench::benchSeeds();

    printBanner(std::cout,
        "Figure 3: access-count ratio of ANB/DAMON hot pages vs PAC "
        "top-K");
    std::printf("scale=1/%.0f, %d execution points per bar\n",
                1.0 / scale, seeds);

    TextTable table({"bench", "ANB avg", "ANB min", "ANB max",
                     "DAMON avg", "DAMON min", "DAMON max"});
    std::vector<double> anb_avgs, damon_avgs;
    for (const auto &benchname : benchmarkNames()) {
        const RatioStats anb =
            measure(benchname, PolicyKind::Anb, scale, seeds);
        const RatioStats damon =
            measure(benchname, PolicyKind::Damon, scale, seeds);
        anb_avgs.push_back(std::max(anb.avg, 1e-6));
        damon_avgs.push_back(std::max(damon.avg, 1e-6));
        table.addRow({bench::shortName(benchname),
                      TextTable::num(anb.avg), TextTable::num(anb.min),
                      TextTable::num(anb.max), TextTable::num(damon.avg),
                      TextTable::num(damon.min),
                      TextTable::num(damon.max)});
        std::fflush(stdout);
    }
    table.print(std::cout);

    double anb_mean = 0.0, damon_mean = 0.0;
    for (double v : anb_avgs)
        anb_mean += v;
    for (double v : damon_avgs)
        damon_mean += v;
    anb_mean /= anb_avgs.size();
    damon_mean /= damon_avgs.size();
    std::printf("\nsuite mean: ANB %.2f  DAMON %.2f "
                "(paper: ANB 0.21, DAMON 0.29; most bars < 0.4)\n",
                anb_mean, damon_mean);
    return 0;
}
