/**
 * @file
 * Figure 10: CDF of per-4KB-page access counts, collected with PAC over a
 * full all-CXL run of each benchmark (one runner cell per benchmark).
 *
 * Paper reference: the skew explains Figure 9 — roms_r's p90/p95/p99
 * pages are ~2x/8x/17x hotter than its p50 page (rewarding precise
 * migration), while TC's bottom-p50 page sees only ~288 more accesses
 * than its bottom-p10 page, below the ~318 accesses needed to amortize
 * one 54us migration (54us / 170ns latency delta).
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/cdf.hh"
#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct CdfCell
{
    std::array<double, 6> cdf{}; //!< At log10 = 0.5 .. 3.0.
    double p95_over_p50 = 0.0;
    double p99_over_p50 = 0.0;
};

CdfCell
measure(const SweepJob &job)
{
    TieredSystem sys(job.config);
    sys.run(job.budget);

    // Sample the empirical CDF at fixed log10 thresholds.
    auto counts = sys.pac().nonZeroCounts();
    std::sort(counts.begin(), counts.end());
    auto cdf_at = [&](double lg) {
        const auto threshold =
            static_cast<std::uint64_t>(std::pow(10.0, lg));
        const auto it =
            std::upper_bound(counts.begin(), counts.end(), threshold);
        return static_cast<double>(it - counts.begin()) /
               static_cast<double>(counts.size());
    };
    CdfCell cell;
    for (int i = 0; i < 6; ++i)
        cell.cdf[i] = cdf_at(0.5 + 0.5 * i);
    const double p50 = accessCountPercentile(sys.pac(), 50);
    cell.p95_over_p50 = accessCountPercentile(sys.pac(), 95) / p50;
    cell.p99_over_p50 = accessCountPercentile(sys.pac(), 99) / p50;
    return cell;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Figure 10: CDF of access counts per 4KB page (PAC)");
    std::printf("scale=1/%.0f; rows are CDF values at log10(count) "
                "grid points\n", 1.0 / scale);

    const std::vector<SweepJob> jobs =
        evaluationGrid({PolicyKind::None}, scale).expand();
    ExperimentRunner runner({.name = "fig10"});
    const auto results = runner.map(jobs, measure);

    TextTable table({"bench", "lg=0.5", "lg=1.0", "lg=1.5", "lg=2.0",
                     "lg=2.5", "lg=3.0", "p95/p50", "p99/p50"});
    for (std::size_t b = 0; b < jobs.size(); ++b) {
        if (!results[b].ok) {
            table.addRow({shortBenchName(jobs[b].benchmark), "-", "-",
                          "-", "-", "-", "-", "-", "-"});
            continue;
        }
        const CdfCell &c = results[b].value;
        table.addRow({shortBenchName(jobs[b].benchmark),
                      TextTable::num(c.cdf[0], 2),
                      TextTable::num(c.cdf[1], 2),
                      TextTable::num(c.cdf[2], 2),
                      TextTable::num(c.cdf[3], 2),
                      TextTable::num(c.cdf[4], 2),
                      TextTable::num(c.cdf[5], 2),
                      TextTable::num(c.p95_over_p50, 1),
                      TextTable::num(c.p99_over_p50, 1)});
    }
    emitTable(std::cout, table, "fig10_access_cdf");
    std::printf("\npaper: roms_r p90/p95/p99 = 2x/8x/17x of p50; skewed "
                "apps (roms, liblinear) reward M5's precision,\n"
                "flat apps (pr, tc) leave little for any migration "
                "policy\n");
    return 0;
}
