/**
 * @file
 * Figure 10: CDF of per-4KB-page access counts, collected with PAC over a
 * full all-CXL run of each benchmark.
 *
 * Paper reference: the skew explains Figure 9 — roms_r's p90/p95/p99
 * pages are ~2x/8x/17x hotter than its p50 page (rewarding precise
 * migration), while TC's bottom-p50 page sees only ~288 more accesses
 * than its bottom-p10 page, below the ~318 accesses needed to amortize
 * one 54us migration (54us / 170ns latency delta).
 */

#include <cstdio>
#include <iostream>

#include "analysis/cdf.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Figure 10: CDF of access counts per 4KB page (PAC)");
    std::printf("scale=1/%.0f; rows are CDF values at log10(count) "
                "grid points\n", 1.0 / scale);

    TextTable table({"bench", "lg=0.5", "lg=1.0", "lg=1.5", "lg=2.0",
                     "lg=2.5", "lg=3.0", "p95/p50", "p99/p50"});
    for (const auto &benchname : benchmarkNames()) {
        SystemConfig cfg =
            makeConfig(benchname, PolicyKind::None, scale, 1);
        TieredSystem sys(cfg);
        sys.run(accessBudget(benchname, scale));

        // Sample the empirical CDF at fixed log10 thresholds.
        auto counts = sys.pac().nonZeroCounts();
        std::sort(counts.begin(), counts.end());
        auto cdf_at = [&](double lg) {
            const auto threshold =
                static_cast<std::uint64_t>(std::pow(10.0, lg));
            const auto it = std::upper_bound(counts.begin(), counts.end(),
                                             threshold);
            return static_cast<double>(it - counts.begin()) /
                   static_cast<double>(counts.size());
        };
        const double p50 = accessCountPercentile(sys.pac(), 50);
        const double p95 = accessCountPercentile(sys.pac(), 95);
        const double p99 = accessCountPercentile(sys.pac(), 99);
        table.addRow({bench::shortName(benchname),
                      TextTable::num(cdf_at(0.5), 2),
                      TextTable::num(cdf_at(1.0), 2),
                      TextTable::num(cdf_at(1.5), 2),
                      TextTable::num(cdf_at(2.0), 2),
                      TextTable::num(cdf_at(2.5), 2),
                      TextTable::num(cdf_at(3.0), 2),
                      TextTable::num(p95 / p50, 1),
                      TextTable::num(p99 / p50, 1)});
        std::fflush(stdout);
    }
    table.print(std::cout);
    std::printf("\npaper: roms_r p90/p95/p99 = 2x/8x/17x of p50; skewed "
                "apps (roms, liblinear) reward M5's precision,\n"
                "flat apps (pr, tc) leave little for any migration "
                "policy\n");
    return 0;
}
