/**
 * @file
 * Ablation: CM-Sketch geometry and query pacing (§7.1, §5.1).
 *
 * Three sweeps on an mcf_r cache-filtered trace:
 *  - hash rows H at fixed N = 32K (the paper sweeps H = 2..16 and sees
 *    only a secondary effect),
 *  - CAM size K at fixed N,
 *  - query period (the paper: preciseness increases as the query
 *    interval decreases).
 */

#include <cstdio>
#include <iostream>

#include <unordered_set>

#include "analysis/ratio.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

double
replayRatio(const TraceBuffer &trace, const TrackerConfig &cfg,
            Tick query_period)
{
    // Same metric as fig07: accumulate each query's report into a
    // deduplicated list, score against whole-trace exact counts.
    auto tracker = makeTracker(cfg);
    ExactCounter exact;
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> reported;
    Tick epoch_end = query_period;
    auto serve_query = [&]() {
        for (const auto &e : tracker->query()) {
            if (seen.insert(e.tag).second)
                reported.push_back(e.tag);
        }
        tracker->reset();
    };
    for (const auto &rec : trace.records()) {
        while (rec.time >= epoch_end) {
            serve_query();
            epoch_end += query_period;
        }
        tracker->access(pfnOf(rec.pa));
        exact.observe(pfnOf(rec.pa));
    }
    serve_query();
    if (reported.empty())
        return 0.0;
    std::uint64_t k_sum = 0;
    for (std::uint64_t key : reported)
        k_sum += exact.count(key);
    const std::uint64_t top_sum = exact.topKSum(reported.size());
    return top_sum ? static_cast<double>(k_sum) /
                     static_cast<double>(top_sum) : 0.0;
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout, "Ablation: CM-Sketch geometry (mcf_r trace)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    SystemConfig sys_cfg = makeConfig("mcf_r", PolicyKind::None, scale, 1);
    sys_cfg.enable_pac = false;
    sys_cfg.record_trace = true;
    TieredSystem sys(sys_cfg);
    sys.run(accessBudget("mcf_r", scale) / 2);
    const TraceBuffer &trace = sys.trace();

    {
        TextTable table({"H (N=32K, K=5)", "avg ratio"});
        for (unsigned h : {2u, 4u, 8u, 16u}) {
            TrackerConfig cfg;
            cfg.entries = 32 * 1024;
            cfg.hash_rows = h;
            cfg.k = 5;
            table.addRow({std::to_string(h),
                          TextTable::num(replayRatio(trace, cfg,
                                                     msToTicks(1.0)))});
        }
        table.print(std::cout);
        std::printf("paper: H has only a secondary effect at fixed N\n");
    }
    {
        TextTable table({"K (N=32K, H=4)", "avg ratio"});
        for (std::size_t k : {5u, 16u, 64u, 128u}) {
            TrackerConfig cfg;
            cfg.entries = 32 * 1024;
            cfg.k = k;
            table.addRow({std::to_string(k),
                          TextTable::num(replayRatio(trace, cfg,
                                                     msToTicks(1.0)))});
        }
        table.print(std::cout);
    }
    {
        TextTable table({"query period", "avg ratio"});
        const std::pair<const char *, Tick> periods[] = {
            {"200us", usToTicks(200.0)},
            {"1ms", msToTicks(1.0)},
            {"5ms", msToTicks(5.0)},
            {"20ms", msToTicks(20.0)},
        };
        for (const auto &[label, period] : periods) {
            TrackerConfig cfg;
            cfg.entries = 32 * 1024;
            cfg.k = 5;
            table.addRow({label,
                          TextTable::num(replayRatio(trace, cfg,
                                                     period))});
        }
        table.print(std::cout);
        std::printf("paper (Sec 7.1): preciseness increases as the "
                    "interval decreases.  In this scaled replay of a "
                    "*static* workload\nthe opposite edge of the "
                    "trade-off shows: longer epochs reduce per-query "
                    "top-K noise, while short epochs only pay\noff when "
                    "the hot set drifts between queries (see "
                    "EXPERIMENTS.md).\n");
    }
    return 0;
}
