/**
 * @file
 * Ablation: CM-Sketch geometry and query pacing (§7.1, §5.1).
 *
 * Three replay sweeps on one mcf_r cache-filtered trace (the trace is a
 * single runner cell; each sweep is a mapItems grid over the replayed
 * tracker configurations):
 *  - hash rows H at fixed N = 32K (the paper sweeps H = 2..16 and sees
 *    only a secondary effect),
 *  - CAM size K at fixed N,
 *  - query period (the paper: preciseness increases as the query
 *    interval decreases).
 */

#include <cstdio>
#include <iostream>

#include <unordered_set>

#include "analysis/ratio.hh"
#include "analysis/report.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

double
replayRatio(const TraceBuffer &trace, const TrackerConfig &cfg,
            Tick query_period)
{
    // Same metric as fig07: accumulate each query's report into a
    // deduplicated list, score against whole-trace exact counts.
    auto tracker = makeTracker(cfg);
    ExactCounter exact;
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> reported;
    Tick epoch_end = query_period;
    auto serve_query = [&]() {
        for (const auto &e : tracker->query()) {
            if (seen.insert(e.tag).second)
                reported.push_back(e.tag);
        }
        tracker->reset();
    };
    for (const auto &rec : trace.records()) {
        while (rec.time >= epoch_end) {
            serve_query();
            epoch_end += query_period;
        }
        tracker->access(pfnOf(rec.pa));
        exact.observe(pfnOf(rec.pa));
    }
    serve_query();
    if (reported.empty())
        return 0.0;
    std::uint64_t k_sum = 0;
    for (std::uint64_t key : reported)
        k_sum += exact.count(key);
    const std::uint64_t top_sum = exact.topKSum(reported.size());
    return top_sum ? static_cast<double>(k_sum) /
                     static_cast<double>(top_sum) : 0.0;
}

/** One replayed point: a tracker geometry plus its query period. */
struct GeomItem
{
    std::string label;
    TrackerConfig cfg;
    Tick query_period;
};

void
sweepGeometry(const ExperimentRunner &runner, const TraceBuffer &trace,
              const char *column, const char *section,
              const std::vector<GeomItem> &items, const char *note)
{
    const auto results =
        runner.mapItems(items, [&trace](const GeomItem &item) {
            return replayRatio(trace, item.cfg, item.query_period);
        });
    TextTable table({column, "avg ratio"});
    for (std::size_t i = 0; i < items.size(); ++i)
        table.addRow({items[i].label,
                      results[i].ok ? TextTable::num(results[i].value)
                                    : "-"});
    emitTable(std::cout, table, section);
    if (note)
        std::printf("%s", note);
}

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout, "Ablation: CM-Sketch geometry (mcf_r trace)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    SweepGrid grid;
    grid.benchmark("mcf_r").scale(scale).budgetScale(0.5).configure(
        [](SystemConfig &cfg) {
            cfg.enable_pac = false;
            cfg.record_trace = true;
        });
    ExperimentRunner runner({.name = "abl_sketch"});
    const auto collected =
        runner.map(grid.expand(), [](const SweepJob &job) {
            TieredSystem sys(job.config);
            sys.run(job.budget);
            return sys.trace();
        });
    if (!collected[0].ok)
        m5_fatal("trace collection failed: %s",
                 collected[0].error.c_str());
    const TraceBuffer &trace = collected[0].value;

    {
        std::vector<GeomItem> items;
        for (unsigned h : {2u, 4u, 8u, 16u}) {
            GeomItem item;
            item.label = std::to_string(h);
            item.cfg.entries = 32 * 1024;
            item.cfg.hash_rows = h;
            item.cfg.k = 5;
            item.query_period = msToTicks(1.0);
            items.push_back(item);
        }
        sweepGeometry(runner, trace, "H (N=32K, K=5)", "abl_sketch_h",
                      items,
                      "paper: H has only a secondary effect at fixed "
                      "N\n");
    }
    {
        std::vector<GeomItem> items;
        for (std::size_t k : {5u, 16u, 64u, 128u}) {
            GeomItem item;
            item.label = std::to_string(k);
            item.cfg.entries = 32 * 1024;
            item.cfg.k = k;
            item.query_period = msToTicks(1.0);
            items.push_back(item);
        }
        sweepGeometry(runner, trace, "K (N=32K, H=4)", "abl_sketch_k",
                      items, nullptr);
    }
    {
        const std::pair<const char *, Tick> periods[] = {
            {"200us", usToTicks(200.0)},
            {"1ms", msToTicks(1.0)},
            {"5ms", msToTicks(5.0)},
            {"20ms", msToTicks(20.0)},
        };
        std::vector<GeomItem> items;
        for (const auto &[label, period] : periods) {
            GeomItem item;
            item.label = label;
            item.cfg.entries = 32 * 1024;
            item.cfg.k = 5;
            item.query_period = period;
            items.push_back(item);
        }
        sweepGeometry(runner, trace, "query period", "abl_sketch_period",
                      items,
                      "paper (Sec 7.1): preciseness increases as the "
                      "interval decreases.  In this scaled replay of a "
                      "*static* workload\nthe opposite edge of the "
                      "trade-off shows: longer epochs reduce per-query "
                      "top-K noise, while short epochs only pay\noff "
                      "when the hot set drifts between queries (see "
                      "EXPERIMENTS.md).\n");
    }
    return 0;
}
