/**
 * @file
 * Microbenchmarks (google-benchmark) for the hot paths of the simulation:
 * tracker updates, PAC/WAC observation, cache access, and workload
 * generation.
 *
 * The hardware requirement behind these is §5.1's timing constraint: a
 * real tracker must absorb one update per tCCD = 2.5ns (400MHz).  The
 * software models here are functional, not cycle-accurate, but their
 * throughput bounds overall experiment time.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "cxl/pac.hh"
#include "cxl/wac.hh"
#include "sketch/topk_tracker.hh"
#include "workloads/registry.hh"

namespace m5 {
namespace {

void
BM_CmSketchTrackerAccess(benchmark::State &state)
{
    TrackerConfig cfg;
    cfg.kind = TrackerKind::CmSketchTopK;
    cfg.entries = static_cast<std::uint64_t>(state.range(0));
    cfg.k = 64;
    auto tracker = makeTracker(cfg);
    Rng rng(1);
    std::vector<std::uint64_t> keys(4096);
    for (auto &k : keys)
        k = rng.below(100'000);
    std::size_t i = 0;
    for (auto _ : state) {
        tracker->access(keys[i++ & 4095]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CmSketchTrackerAccess)->Arg(2048)->Arg(32 * 1024);

void
BM_SpaceSavingTrackerAccess(benchmark::State &state)
{
    TrackerConfig cfg;
    cfg.kind = TrackerKind::SpaceSavingTopK;
    cfg.entries = static_cast<std::uint64_t>(state.range(0));
    cfg.k = 5;
    auto tracker = makeTracker(cfg);
    Rng rng(1);
    std::vector<std::uint64_t> keys(4096);
    for (auto &k : keys)
        k = rng.below(100'000);
    std::size_t i = 0;
    for (auto _ : state) {
        tracker->access(keys[i++ & 4095]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingTrackerAccess)->Arg(50)->Arg(2048);

void
BM_TrackerQuery(benchmark::State &state)
{
    TrackerConfig cfg;
    cfg.entries = 32 * 1024;
    cfg.k = 64;
    auto tracker = makeTracker(cfg);
    Rng rng(1);
    for (int i = 0; i < 100'000; ++i)
        tracker->access(rng.below(50'000));
    for (auto _ : state) {
        benchmark::DoNotOptimize(tracker->query());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerQuery);

void
BM_PacObserve(benchmark::State &state)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 1 << 18;
    PacUnit pac(cfg);
    Rng rng(1);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = pageBase(rng.below(1 << 18));
    std::size_t i = 0;
    for (auto _ : state) {
        pac.observe(addrs[i++ & 4095]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacObserve);

void
BM_WacObserve(benchmark::State &state)
{
    WacConfig cfg;
    cfg.range_base = 0;
    cfg.range_bytes = 128ULL << 20;
    WacUnit wac(cfg);
    Rng rng(1);
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.below(128ULL << 20) & ~(kWordBytes - 1);
    std::size_t i = 0;
    for (auto _ : state) {
        wac.observe(addrs[i++ & 4095]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WacObserve);

void
BM_LlcAccess(benchmark::State &state)
{
    SetAssocCache llc(CacheConfig{4 << 20, 15});
    Rng rng(1);
    std::vector<Addr> addrs(8192);
    for (auto &a : addrs)
        a = rng.below(1ULL << 30) & ~(kWordBytes - 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(llc.access(addrs[i++ & 8191], false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcAccess);

void
BM_WorkloadNext(benchmark::State &state)
{
    auto w = makeWorkload("mcf_r", 1.0 / 64.0, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(w->next());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadNext);

} // namespace
} // namespace m5
