/**
 * @file
 * Figure 4: probability that at most {4, 8, 16, 32, 48} unique 64B words
 * of a 4KB page are accessed, measured with WAC over a full run.  One
 * runner cell per benchmark.
 *
 * Paper reference: P(<=16 words) = 86% / 76% / 74% for Redis / Memcached /
 * CacheLib; SPEC CPU 2017 pages (except roms_r) are dense with
 * P(>=48 words) = 87-92%; PageRank/SSSP dense (98%/89%); Liblinear, BC,
 * BFS, CC, TC show P(<=16) = 15%, 4%, 17%, 20%, 12%.
 */

#include <cstdio>
#include <iostream>

#include "analysis/cdf.hh"
#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

int
main()
{
    const double scale = benchScale();

    printBanner(std::cout,
        "Figure 4: P(page has at most N unique 64B words accessed)");
    std::printf("scale=1/%.0f (WAC, full-range window)\n", 1.0 / scale);

    SweepGrid grid;
    grid.benchmarks(sparsityBenchmarkNames())
        .scale(scale)
        .configure([](SystemConfig &cfg) {
            cfg.enable_pac = false;
            cfg.enable_wac = true;
        });
    const std::vector<SweepJob> jobs = grid.expand();
    ExperimentRunner runner({.name = "fig04"});
    const auto results = runner.map(jobs, [](const SweepJob &job) {
        TieredSystem sys(job.config);
        sys.run(job.budget);
        // Only well-sampled pages: at scaled budgets a cold page cannot
        // have touched all its words yet.
        return sparsityCdf(sys.wac(), 96);
    });

    TextTable table({"bench", "<=4", "<=8", "<=16", "<=32", "<=48"});
    for (std::size_t b = 0; b < jobs.size(); ++b) {
        if (!results[b].ok) {
            table.addRow({shortBenchName(jobs[b].benchmark), "-", "-",
                          "-", "-", "-"});
            continue;
        }
        const auto &cdf = results[b].value;
        table.addRow({shortBenchName(jobs[b].benchmark),
                      TextTable::num(cdf[0]), TextTable::num(cdf[1]),
                      TextTable::num(cdf[2]), TextTable::num(cdf[3]),
                      TextTable::num(cdf[4])});
    }
    emitTable(std::cout, table, "fig04_sparsity");
    std::printf("\npaper: redis/mcd/c.-lib P(<=16) = 0.86/0.76/0.74; "
                "SPEC (except roms) P(<=48) <= 0.13;\n"
                "       pr/sssp P(<=48) = 0.02/0.11; "
                "lib/bc/bfs/cc/tc P(<=16) = 0.15/0.04/0.17/0.20/0.12\n");
    return 0;
}
