/**
 * @file
 * Multi-tenant colocation sweep (docs/MULTITENANT.md).
 *
 * Sweeps tenant count x skew mix x DDR capacity ratio and reports the
 * isolation and fairness surface of the tenant model: per-cell steady
 * throughput, Jain fairness over the tenants' promotion counts and DDR
 * shares, the worst per-tenant p99 access latency, and the cap machinery
 * counters (forced demotions, refused promotions).  A second, antagonist
 * scenario pits a high-share streaming bandwidth hog against a
 * latency-sensitive Redis tenant and reports how much p99 the hog costs
 * Redis with and without a DDR cap restraining it.
 *
 * The harness is also a determinism gate: the full grid is executed
 * twice — once on a single worker, once on the default pool — and every
 * cell's results (including all per-tenant counters) must match
 * byte-for-byte; any mismatch, invariant violation, or tenant found
 * above its DDR cap fails the run (exit 1).
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct CellResult
{
    RunResult run;
    std::uint64_t invariant_violations = 0;
};

/** Byte-stable serialization of everything a cell computed. */
std::string
cellSig(const CellResult &r)
{
    std::ostringstream os;
    os << r.run.accesses << ':' << r.run.runtime << ':'
       << r.run.app_time << ':' << r.run.kernel_time << ':'
       << r.run.migration.promoted << ':' << r.run.migration.demoted << ':'
       << r.run.ddr_read_bytes << ':' << r.run.cxl_read_bytes << ':'
       << r.invariant_violations;
    for (const TenantResult &t : r.run.tenants) {
        os << '|' << t.name << ',' << t.accesses << ',' << t.ddr_hits
           << ',' << t.lower_hits << ',' << t.promoted << ',' << t.demoted
           << ',' << t.cap_demotions << ',' << t.cap_rejects << ','
           << t.ddr_frames << ',' << t.cap_frames << ',' << t.cxl_reads
           << ',' << t.cxl_writes;
    }
    return os.str();
}

CellResult
runCell(const SweepJob &job)
{
    TieredSystem sys(job.config);
    CellResult out;
    out.run = sys.run(job.budget);
    if (sys.invariants())
        out.invariant_violations = sys.invariants()->violations();
    return out;
}

/** Jain index over a per-tenant extractor. */
template <typename Fn>
double
jainOver(const RunResult &r, Fn fn)
{
    std::vector<double> xs;
    for (const TenantResult &t : r.tenants)
        xs.push_back(static_cast<double>(fn(t)));
    return jainIndex(xs);
}

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
                "Colocation sweep: tenants x skew mix x DDR ratio "
                "(fairness + isolation)");
    std::printf("scale=1/%.0f; every cell runs the per-tenant invariant "
                "checker\n", 1.0 / scale);

    // Mixes by tenant count and skew: homogeneous skewed, skewed vs
    // streaming, and a capped three/four-way datacenter mix.
    const std::vector<std::pair<std::string, std::string>> mixes = {
        {"2xskew", "mcf_r,mcf_r:share=2"},
        {"skew+stream", "mcf_r:cap=0.5,roms_r:cap=0.25"},
        {"3-way", "redis:cap=0.25,mcf_r:cap=0.5:share=2,bc"},
        {"4-way", "redis:cap=0.25,mcf_r:cap=0.5,roms_r:cap=0.25,pr"},
    };
    const std::vector<double> ratios = {0.125, 0.375};

    SweepGrid grid;
    std::vector<SweepPoint> points;
    for (const auto &[mname, mspec] : mixes) {
        for (double ratio : ratios) {
            points.push_back(
                {mname + "/d" + TextTable::num(ratio, 3),
                 [mspec = mspec, ratio](SystemConfig &cfg) {
                     cfg.tenants = mspec;
                     cfg.ddr_capacity_fraction = ratio;
                 }});
        }
    }
    grid.benchmark("mcf_r")
        .policy(PolicyKind::M5HptDriven)
        .scale(scale)
        .budgetScale(0.5)
        .axis(points);
    const auto jobs = grid.expand();

    // Determinism gate: the same grid on one worker and on the default
    // pool must produce byte-identical cells (docs/RUNNER.md).
    ExperimentRunner serial({.jobs = 1, .name = "colocation(1w)"});
    const auto first = serial.map(jobs, runCell);
    ExperimentRunner pool({.name = "colocation"});
    const auto second = pool.map(jobs, runCell);

    bool deterministic = true;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!first[i].ok || !second[i].ok)
            m5_fatal("cell %s failed: %s", jobs[i].label().c_str(),
                     (first[i].ok ? second[i] : first[i]).error.c_str());
        if (cellSig(first[i].value) != cellSig(second[i].value)) {
            std::printf("DETERMINISM VIOLATION in %s\n",
                        jobs[i].label().c_str());
            deterministic = false;
        }
    }

    TextTable table({"mix", "ddr", "steady acc/s", "jain(promo)",
                     "jain(ddr)", "worst p99", "cap demo", "cap rej",
                     "inv viol"});
    bool clean = true;
    bool capped = true;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const CellResult &r = first[i].value;
        std::uint64_t cap_demo = 0, cap_rej = 0;
        double worst_p99 = 0.0;
        for (const TenantResult &t : r.run.tenants) {
            cap_demo += t.cap_demotions;
            cap_rej += t.cap_rejects;
            worst_p99 = std::max(worst_p99, t.p99_access_ns);
            if (t.ddr_frames > t.cap_frames)
                capped = false;
        }
        if (r.invariant_violations > 0)
            clean = false;
        table.addRow(
            {jobs[i].variant.substr(0, jobs[i].variant.find('/')),
             TextTable::num(jobs[i].config.ddr_capacity_fraction, 3),
             TextTable::num(r.run.steady_throughput, 0),
             TextTable::num(
                 jainOver(r.run,
                          [](const TenantResult &t) { return t.promoted; }),
                 3),
             TextTable::num(
                 jainOver(r.run,
                          [](const TenantResult &t) {
                              return t.ddr_frames;
                          }),
                 3),
             TextTable::num(worst_p99, 0),
             std::to_string(cap_demo), std::to_string(cap_rej),
             std::to_string(r.invariant_violations)});
    }
    emitTable(std::cout, table, "colocation_sweep");

    // Antagonist: Redis vs a share-4 streaming hog, capped vs uncapped.
    // The cap cannot shield Redis from bandwidth interference, but it
    // must bound the hog's DDR squat.
    printBanner(std::cout,
                "Antagonist: redis vs share-4 streaming hog "
                "(cap bounds the DDR squat)");
    const std::vector<std::pair<std::string, std::string>> scenarios = {
        {"solo", "redis"},
        {"hog-uncapped", "redis,roms_r:share=4"},
        {"hog-capped", "redis,roms_r:cap=0.125:share=4"},
    };
    SweepGrid agrid;
    std::vector<SweepPoint> apoints;
    for (const auto &[sname, sspec] : scenarios) {
        apoints.push_back({sname, [sspec = sspec](SystemConfig &cfg) {
                               cfg.tenants = sspec;
                           }});
    }
    agrid.benchmark("redis")
        .policy(PolicyKind::M5HptDriven)
        .scale(scale)
        .budgetScale(0.5)
        .axis(apoints);
    const auto aresults = pool.map(agrid.expand(), runCell);

    TextTable atable({"scenario", "redis p99 (ns)", "redis mean (ns)",
                      "redis ddr frames", "hog ddr frames",
                      "hog cap", "inv viol"});
    for (std::size_t i = 0; i < aresults.size(); ++i) {
        if (!aresults[i].ok)
            m5_fatal("antagonist cell failed: %s",
                     aresults[i].error.c_str());
        const CellResult &r = aresults[i].value;
        const TenantResult &redis = r.run.tenants[0];
        const bool hog = r.run.tenants.size() > 1;
        if (r.invariant_violations > 0)
            clean = false;
        if (hog &&
            r.run.tenants[1].ddr_frames > r.run.tenants[1].cap_frames)
            capped = false;
        atable.addRow(
            {scenarios[i].first, TextTable::num(redis.p99_access_ns, 0),
             TextTable::num(redis.mean_access_ns, 1),
             std::to_string(redis.ddr_frames),
             hog ? std::to_string(r.run.tenants[1].ddr_frames) : "-",
             hog ? std::to_string(r.run.tenants[1].cap_frames) : "-",
             std::to_string(r.invariant_violations)});
    }
    emitTable(std::cout, atable, "colocation_antagonist");

    std::printf("\ndeterminism: %s (1-worker vs pooled grid)\n",
                deterministic ? "byte-identical" : "VIOLATED");
    std::printf("caps: %s\n", capped ? "all tenants within their DDR caps"
                                     : "EXCEEDED");
    std::printf("invariants: %s\n", clean ? "clean" : "VIOLATED");
    return (deterministic && clean && capped) ? 0 : 1;
}
