/**
 * @file
 * §5.2 Monitor validation: with pages *randomly* placed and no migration,
 * the consumed-read-bandwidth ratio bw(DDR)/bw(CXL) tracks the placement
 * ratio nr_pages(DDR)/nr_pages(CXL) — the hypothesis behind bw_den().
 *
 * Paper reference (mcf_r): placement ratios 2, 1 and 1/2 yield bandwidth
 * ratios 2.02, 0.919 and 0.571.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Sec 5.2: bw(DDR)/bw(CXL) vs nr_pages(DDR)/nr_pages(CXL), "
        "random placement, no migration (mcf_r)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    // Placement ratio r corresponds to a DDR fraction r/(1+r).
    const double ratios[] = {2.0, 1.0, 0.5};
    const double paper[] = {2.02, 0.919, 0.571};

    TextTable table({"target pages ratio", "actual pages ratio",
                     "bw ratio", "paper bw ratio"});
    for (std::size_t i = 0; i < std::size(ratios); ++i) {
        SystemConfig cfg =
            makeConfig("mcf_r", PolicyKind::None, scale, 7);
        cfg.initial_ddr_fraction = ratios[i] / (1.0 + ratios[i]);
        // Enough DDR capacity to honour the requested placement.
        cfg.ddr_capacity_fraction = cfg.initial_ddr_fraction + 0.02;
        TieredSystem sys(cfg);
        const RunResult r = sys.run(accessBudget("mcf_r", scale) / 2);
        const double page_ratio =
            static_cast<double>(sys.pageTable().pagesOnNode(kNodeDdr)) /
            static_cast<double>(sys.pageTable().pagesOnNode(kNodeCxl));
        const double bw_ratio =
            static_cast<double>(r.steady_ddr_read_bytes) /
            static_cast<double>(r.steady_cxl_read_bytes);
        table.addRow({TextTable::num(ratios[i], 2),
                      TextTable::num(page_ratio, 3),
                      TextTable::num(bw_ratio, 3),
                      TextTable::num(paper[i], 3)});
        std::fflush(stdout);
    }
    table.print(std::cout);
    std::printf("\nbw(node) is proportional to nr_pages(node) under "
                "random placement, validating bw_den() as a hot-page "
                "density metric (Guidelines 1-2)\n");
    return 0;
}
