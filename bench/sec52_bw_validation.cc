/**
 * @file
 * §5.2 Monitor validation: with pages *randomly* placed and no migration,
 * the consumed-read-bandwidth ratio bw(DDR)/bw(CXL) tracks the placement
 * ratio nr_pages(DDR)/nr_pages(CXL) — the hypothesis behind bw_den().
 * The three placement ratios form a custom sweep axis.
 *
 * Paper reference (mcf_r): placement ratios 2, 1 and 1/2 yield bandwidth
 * ratios 2.02, 0.919 and 0.571.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct BwCell
{
    double page_ratio = 0.0;
    double bw_ratio = 0.0;
};

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Sec 5.2: bw(DDR)/bw(CXL) vs nr_pages(DDR)/nr_pages(CXL), "
        "random placement, no migration (mcf_r)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    // Placement ratio r corresponds to a DDR fraction r/(1+r).
    const double ratios[] = {2.0, 1.0, 0.5};
    const double paper[] = {2.02, 0.919, 0.571};

    std::vector<SweepPoint> points;
    for (double r : ratios) {
        points.push_back({TextTable::num(r, 2), [r](SystemConfig &cfg) {
                              cfg.initial_ddr_fraction = r / (1.0 + r);
                              // Enough DDR capacity to honour the
                              // requested placement.
                              cfg.ddr_capacity_fraction =
                                  cfg.initial_ddr_fraction + 0.02;
                          }});
    }
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .scale(scale)
        .seedList({7})
        .budgetScale(0.5)
        .axis(points);
    ExperimentRunner runner({.name = "sec52"});
    const auto results =
        runner.map(grid.expand(), [](const SweepJob &job) {
            TieredSystem sys(job.config);
            const RunResult r = sys.run(job.budget);
            BwCell cell;
            cell.page_ratio =
                static_cast<double>(
                    sys.pageTable().pagesOnNode(kNodeDdr)) /
                static_cast<double>(
                    sys.pageTable().pagesOnNode(kNodeCxl));
            cell.bw_ratio =
                static_cast<double>(r.steady_ddr_read_bytes) /
                static_cast<double>(r.steady_cxl_read_bytes);
            return cell;
        });

    TextTable table({"target pages ratio", "actual pages ratio",
                     "bw ratio", "paper bw ratio"});
    for (std::size_t i = 0; i < std::size(ratios); ++i) {
        if (!results[i].ok) {
            table.addRow({TextTable::num(ratios[i], 2), "-", "-",
                          TextTable::num(paper[i], 3)});
            continue;
        }
        table.addRow({TextTable::num(ratios[i], 2),
                      TextTable::num(results[i].value.page_ratio, 3),
                      TextTable::num(results[i].value.bw_ratio, 3),
                      TextTable::num(paper[i], 3)});
    }
    emitTable(std::cout, table, "sec52_bw_validation");
    std::printf("\nbw(node) is proportional to nr_pages(node) under "
                "random placement, validating bw_den() as a hot-page "
                "density metric (Guidelines 1-2)\n");
    return 0;
}
