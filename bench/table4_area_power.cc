/**
 * @file
 * Table 4: size and power of the top-5 trackers in 7nm logic, sweeping
 * the number of count entries N (one runner cell per N — the analytic
 * model is cheap, but the harness shares the sweep plumbing).
 *
 * The Space-Saving tracker's stream summary is an N-entry parallel-match
 * CAM; CM-Sketch keeps counters in banked SRAM plus a constant K-entry
 * CAM.  Blank CAM rows mark points beyond the 400MHz-feasible N (the
 * ASIC flow caps Space-Saving at 2K entries; the FPGA at 50).
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "common/table.hh"
#include "hwmodel/area_power.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct EstimateCell
{
    SynthesisEstimate ss;
    SynthesisEstimate cm;
};

} // namespace

int
main()
{
    printBanner(std::cout,
        "Table 4: size and power of top-5 trackers (7nm, 400MHz, K=5)");

    const std::vector<std::uint64_t> entries = {50, 100, 512, 1024, 2048,
                                                8192, 32768, 131072};
    ExperimentRunner runner({.name = "table4"});
    const auto results =
        runner.mapItems(entries, [](const std::uint64_t &n) {
            EstimateCell cell;
            cell.ss = estimateTracker(TrackerKind::SpaceSavingTopK, n);
            cell.cm = estimateTracker(TrackerKind::CmSketchTopK, n);
            return cell;
        });

    TextTable table({"N", "SS area um2", "CM area um2", "SS power mW",
                     "CM power mW", "SS feasible", "CM feasible"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &ss = results[i].value.ss;
        const auto &cm = results[i].value.cm;
        table.addRow({std::to_string(entries[i]),
                      ss.asic_feasible ? TextTable::num(ss.area_um2, 0)
                                       : "-",
                      TextTable::num(cm.area_um2, 0),
                      ss.asic_feasible ? TextTable::num(ss.power_mw, 1)
                                       : "-",
                      TextTable::num(cm.power_mw, 1),
                      ss.asic_feasible ? "yes" : "no",
                      cm.asic_feasible ? "yes" : "no"});
    }
    emitTable(std::cout, table, "table4_area_power");

    const auto ss2k = estimateTracker(TrackerKind::SpaceSavingTopK, 2048);
    const auto cm2k = estimateTracker(TrackerKind::CmSketchTopK, 2048);
    std::printf("\nat N=2K, Space-Saving costs %.1fx area and %.1fx power "
                "of CM-Sketch (paper: 33.6x / 7.6x)\n",
                ss2k.area_um2 / cm2k.area_um2,
                ss2k.power_mw / cm2k.power_mw);
    std::printf("FPGA 400MHz limits: Space-Saving N<=%lu, CM-Sketch "
                "N<=%lu (paper: 50 / 128K)\n",
                static_cast<unsigned long>(
                    fpgaMaxEntries(TrackerKind::SpaceSavingTopK)),
                static_cast<unsigned long>(
                    fpgaMaxEntries(TrackerKind::CmSketchTopK)));
    std::printf("paper reference rows (SS area / CM area): N=50 "
                "3649/1899, N=2K 179625/5346, N=128K -/180530\n");
    return 0;
}
