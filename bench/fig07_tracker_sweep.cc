/**
 * @file
 * Figure 7: trace-driven average access-count ratio of (a) HPT and (b)
 * HWT, for Space-Saving and CM-Sketch trackers, sweeping the number of
 * count entries N at fixed K = 5.
 *
 * Methodology (§7.1): collect cache-filtered, time-stamped DRAM address
 * traces (the paper uses Pin + Ramulator; we record the post-LLC stream
 * of the simulator), then replay each trace into standalone trackers.
 * HPT is queried every 1ms, HWT every 100us; each query's top-5 report is
 * scored against exact per-epoch counts, and the ratios are averaged.
 *
 * Two runner phases: trace collection (one cell per benchmark — each
 * trace feeds both panels), then the trace × algorithm × N replay grid.
 *
 * Paper reference: Space-Saving is more precise than CM-Sketch at equal
 * (small) N, but under the 400MHz synthesis limits CM-Sketch at N = 32K
 * (avg ratio ~0.97) beats Space-Saving at its N = 50 cap (~0.49).
 */

#include <cstdio>
#include <iostream>

#include <unordered_set>

#include "analysis/ratio.hh"
#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

const std::vector<std::string> kBenches = {
    "mcf_r", "cactuBSSN_r", "fotonik3d_r", "roms_r", "liblinear", "pr"};

/**
 * Replay a trace into one tracker.  Each query period the tracker's top-K
 * is queried (and reset, §5.1); the reported addresses accumulate into a
 * deduplicated hot list that is scored at the end against the *whole
 * trace's* exact counts — the same S1-S5 metric as Figures 3 and 8, with
 * PAC/WAC as ground truth.
 */
double
replayRatio(const TraceBuffer &trace, const TrackerConfig &cfg,
            bool page_granularity, Tick query_period)
{
    auto tracker = makeTracker(cfg);
    ExactCounter exact;
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> reported;
    Tick epoch_end = query_period;

    auto serve_query = [&]() {
        for (const auto &e : tracker->query()) {
            if (seen.insert(e.tag).second)
                reported.push_back(e.tag);
        }
        tracker->reset();
    };

    for (const auto &rec : trace.records()) {
        while (rec.time >= epoch_end) {
            serve_query();
            epoch_end += query_period;
        }
        const std::uint64_t key =
            page_granularity ? pfnOf(rec.pa) : wordOf(rec.pa);
        tracker->access(key);
        exact.observe(key);
    }
    serve_query();

    if (reported.empty())
        return 0.0;
    std::uint64_t k_sum = 0;
    for (std::uint64_t key : reported)
        k_sum += exact.count(key);
    const std::uint64_t top_sum = exact.topKSum(reported.size());
    return top_sum ? static_cast<double>(k_sum) /
                     static_cast<double>(top_sum) : 0.0;
}

/** One replay cell: (trace, algorithm, N) under a panel's granularity. */
struct ReplayItem
{
    std::size_t bench; //!< Index into kBenches / the trace array.
    TrackerKind kind;
    std::uint64_t entries;
};

void
sweepPanel(const ExperimentRunner &runner,
           const std::vector<TraceBuffer> &traces, const char *title,
           const char *section, bool page_granularity, Tick query_period)
{
    printBanner(std::cout, title);
    const std::uint64_t ss_sizes[] = {50, 100, 512, 1024, 2048};
    const std::uint64_t cm_sizes[] = {50, 512, 2048, 8192, 32768, 131072};

    std::vector<ReplayItem> items;
    for (std::size_t b = 0; b < kBenches.size(); ++b) {
        for (std::uint64_t n : ss_sizes)
            items.push_back({b, TrackerKind::SpaceSavingTopK, n});
        for (std::uint64_t n : cm_sizes)
            items.push_back({b, TrackerKind::CmSketchTopK, n});
    }
    const auto results =
        runner.mapItems(items, [&](const ReplayItem &item) {
            TrackerConfig cfg;
            cfg.kind = item.kind;
            cfg.entries = item.entries;
            cfg.k = 5;
            return replayRatio(traces[item.bench], cfg,
                               page_granularity, query_period);
        });

    TextTable table({"bench", "algo", "N", "avg ratio"});
    double cm32k_sum = 0.0, ss50_sum = 0.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        const ReplayItem &item = items[i];
        const double r = results[i].ok ? results[i].value : 0.0;
        const bool ss = item.kind == TrackerKind::SpaceSavingTopK;
        if (ss && item.entries == 50)
            ss50_sum += r;
        if (!ss && item.entries == 32768)
            cm32k_sum += r;
        table.addRow({shortBenchName(kBenches[item.bench]),
                      ss ? "SS" : "CM", std::to_string(item.entries),
                      TextTable::num(r)});
    }
    emitTable(std::cout, table, section);
    const double n_benches = static_cast<double>(kBenches.size());
    std::printf("mean ratio: SS(50) %.2f, CM(32K) %.2f "
                "(paper HPT: 0.49 vs 0.97)\n",
                ss50_sum / n_benches, cm32k_sum / n_benches);
}

} // namespace

int
main()
{
    const double scale = benchScale();
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    // Phase 1: one cache-filtered trace per benchmark, shared by both
    // panels (the stream is policy-free, so collecting it once is
    // equivalent to the per-panel collection it replaces).
    SweepGrid grid;
    grid.benchmarks(kBenches).scale(scale).budgetScale(0.5).configure(
        [](SystemConfig &cfg) {
            cfg.enable_pac = false;
            cfg.record_trace = true;
        });
    ExperimentRunner runner({.name = "fig07"});
    const auto collected =
        runner.map(grid.expand(), [](const SweepJob &job) {
            TieredSystem sys(job.config);
            sys.run(job.budget);
            return sys.trace();
        });
    std::vector<TraceBuffer> traces;
    for (const auto &c : collected) {
        if (!c.ok)
            m5_fatal("trace collection failed: %s", c.error.c_str());
        traces.push_back(c.value);
    }

    // Phase 2: the replay grids.
    sweepPanel(runner, traces,
               "Figure 7a: HPT (page-granularity, 1ms query period)",
               "fig07a_hpt", true, msToTicks(1.0));
    sweepPanel(runner, traces,
               "Figure 7b: HWT (word-granularity, 100us query period)",
               "fig07b_hwt", false, usToTicks(100.0));
    return 0;
}
