/**
 * @file
 * Figure 7: trace-driven average access-count ratio of (a) HPT and (b)
 * HWT, for Space-Saving and CM-Sketch trackers, sweeping the number of
 * count entries N at fixed K = 5.
 *
 * Methodology (§7.1): collect cache-filtered, time-stamped DRAM address
 * traces (the paper uses Pin + Ramulator; we record the post-LLC stream
 * of the simulator), then replay each trace into standalone trackers.
 * HPT is queried every 1ms, HWT every 100us; each query's top-5 report is
 * scored against exact per-epoch counts, and the ratios are averaged.
 *
 * Paper reference: Space-Saving is more precise than CM-Sketch at equal
 * (small) N, but under the 400MHz synthesis limits CM-Sketch at N = 32K
 * (avg ratio ~0.97) beats Space-Saving at its N = 50 cap (~0.49).
 */

#include <cstdio>
#include <iostream>

#include <unordered_set>

#include "analysis/ratio.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

const char *kBenches[] = {"mcf_r", "cactuBSSN_r", "fotonik3d_r", "roms_r",
                          "liblinear", "pr"};

TraceBuffer
collectTrace(const std::string &benchname, double scale)
{
    SystemConfig cfg = makeConfig(benchname, PolicyKind::None, scale, 1);
    cfg.enable_pac = false;
    cfg.record_trace = true;
    TieredSystem sys(cfg);
    sys.run(accessBudget(benchname, scale) / 2);
    return sys.trace();
}

/**
 * Replay a trace into one tracker.  Each query period the tracker's top-K
 * is queried (and reset, §5.1); the reported addresses accumulate into a
 * deduplicated hot list that is scored at the end against the *whole
 * trace's* exact counts — the same S1-S5 metric as Figures 3 and 8, with
 * PAC/WAC as ground truth.
 */
double
replayRatio(const TraceBuffer &trace, const TrackerConfig &cfg,
            bool page_granularity, Tick query_period)
{
    auto tracker = makeTracker(cfg);
    ExactCounter exact;
    std::unordered_set<std::uint64_t> seen;
    std::vector<std::uint64_t> reported;
    Tick epoch_end = query_period;

    auto serve_query = [&]() {
        for (const auto &e : tracker->query()) {
            if (seen.insert(e.tag).second)
                reported.push_back(e.tag);
        }
        tracker->reset();
    };

    for (const auto &rec : trace.records()) {
        while (rec.time >= epoch_end) {
            serve_query();
            epoch_end += query_period;
        }
        const std::uint64_t key =
            page_granularity ? pfnOf(rec.pa) : wordOf(rec.pa);
        tracker->access(key);
        exact.observe(key);
    }
    serve_query();

    if (reported.empty())
        return 0.0;
    std::uint64_t k_sum = 0;
    for (std::uint64_t key : reported)
        k_sum += exact.count(key);
    const std::uint64_t top_sum = exact.topKSum(reported.size());
    return top_sum ? static_cast<double>(k_sum) /
                     static_cast<double>(top_sum) : 0.0;
}

void
sweepPanel(const char *title, bool page_granularity, Tick query_period,
           double scale)
{
    printBanner(std::cout, title);
    const std::uint64_t ss_sizes[] = {50, 100, 512, 1024, 2048};
    const std::uint64_t cm_sizes[] = {50, 512, 2048, 8192, 32768, 131072};

    TextTable table({"bench", "algo", "N", "avg ratio"});
    double cm32k_sum = 0.0, ss50_sum = 0.0;
    for (const char *benchname : kBenches) {
        const TraceBuffer trace = collectTrace(benchname, scale);
        for (std::uint64_t n : ss_sizes) {
            TrackerConfig cfg;
            cfg.kind = TrackerKind::SpaceSavingTopK;
            cfg.entries = n;
            cfg.k = 5;
            const double r =
                replayRatio(trace, cfg, page_granularity, query_period);
            if (n == 50)
                ss50_sum += r;
            table.addRow({bench::shortName(benchname), "SS",
                          std::to_string(n), TextTable::num(r)});
        }
        for (std::uint64_t n : cm_sizes) {
            TrackerConfig cfg;
            cfg.kind = TrackerKind::CmSketchTopK;
            cfg.entries = n;
            cfg.k = 5;
            const double r =
                replayRatio(trace, cfg, page_granularity, query_period);
            if (n == 32768)
                cm32k_sum += r;
            table.addRow({bench::shortName(benchname), "CM",
                          std::to_string(n), TextTable::num(r)});
        }
        std::fflush(stdout);
    }
    table.print(std::cout);
    const double n_benches = std::size(kBenches);
    std::printf("mean ratio: SS(50) %.2f, CM(32K) %.2f "
                "(paper HPT: 0.49 vs 0.97)\n",
                ss50_sum / n_benches, cm32k_sum / n_benches);
}

} // namespace

int
main()
{
    const double scale = bench::benchScale();
    std::printf("scale=1/%.0f\n", 1.0 / scale);
    sweepPanel("Figure 7a: HPT (page-granularity, 1ms query period)",
               true, msToTicks(1.0), scale);
    sweepPanel("Figure 7b: HWT (word-granularity, 100us query period)",
               false, usToTicks(100.0), scale);
    return 0;
}
