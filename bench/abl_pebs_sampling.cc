/**
 * @file
 * Extension: the sampling-based baseline the paper could not run.
 *
 * §2.1 Solution 3 / §4 note: Intel PEBS cannot sample LLC misses to CXL
 * devices, so the paper skips Memtis; it cites [75] that at a 1-in-100
 * sampling rate the interrupt processing alone costs > 15%.  This harness
 * assumes the capability exists and sweeps the sampling period on mcf_r:
 * precision (record-only access-count ratio) and overhead both rise as
 * the period shrinks, reproducing the cited trade-off, and an end-to-end
 * column compares Memtis against M5.
 */

#include <cstdio>
#include <iostream>

#include "analysis/ratio.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Extension: PEBS/Memtis sampling-rate sweep (mcf_r)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const RunResult none = runPolicy("mcf_r", PolicyKind::None, scale);

    TextTable table({"sample 1-in-N", "ratio", "kernel ident %",
                     "norm perf", "migrations"});
    for (std::uint64_t period : {1000ULL, 200ULL, 100ULL, 20ULL}) {
        // Record-only run for precision + identification cost.
        SystemConfig rc = makeConfig("mcf_r", PolicyKind::Memtis, scale, 1);
        rc.record_only = true;
        rc.pebs_cfg.sample_period = period;
        TieredSystem rsys(rc);
        const RunResult rr = rsys.run(accessBudget("mcf_r", scale));
        const double ratio = accessCountRatio(rsys.pac(), rr.hot_pages);
        const double ident_pct = 100.0 *
            static_cast<double>(rr.kernel_ident_cycles) /
            static_cast<double>(nsToCycles(rr.runtime));

        // End-to-end run.
        SystemConfig ec = makeConfig("mcf_r", PolicyKind::Memtis, scale, 1);
        ec.pebs_cfg.sample_period = period;
        TieredSystem esys(ec);
        const RunResult er = esys.run(accessBudget("mcf_r", scale));

        table.addRow({std::to_string(period), TextTable::num(ratio),
                      TextTable::num(ident_pct, 1),
                      TextTable::num(er.steady_throughput /
                                     none.steady_throughput),
                      std::to_string(er.migration.promoted)});
        std::fflush(stdout);
    }
    table.print(std::cout);

    const RunResult m5 = runPolicy("mcf_r", PolicyKind::M5HptDriven, scale);
    std::printf("\nreference: M5(HPT+HWT) norm perf %.2f with ~0%% "
                "identification cost\n",
                m5.steady_throughput / none.steady_throughput);
    std::printf("paper context: sampling 1-in-100 LLC misses costs >15%% "
                "[75]; PEBS cannot see CXL misses on real hardware "
                "[67]\n");
    return 0;
}
