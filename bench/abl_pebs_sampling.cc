/**
 * @file
 * Extension: the sampling-based baseline the paper could not run.
 *
 * §2.1 Solution 3 / §4 note: Intel PEBS cannot sample LLC misses to CXL
 * devices, so the paper skips Memtis; it cites [75] that at a 1-in-100
 * sampling rate the interrupt processing alone costs > 15%.  This harness
 * assumes the capability exists and sweeps the sampling period on mcf_r
 * as a custom axis: a record-only grid measures precision (access-count
 * ratio) and identification overhead, an end-to-end grid compares Memtis
 * against the no-migration and M5 reference runs.
 */

#include <cstdio>
#include <iostream>

#include "analysis/ratio.hh"
#include "analysis/report.hh"
#include "common/table.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

namespace {

struct SampleCell
{
    double ratio = 0.0;     //!< Record-only access-count ratio.
    double ident_pct = 0.0; //!< Kernel identification time share.
};

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Extension: PEBS/Memtis sampling-rate sweep (mcf_r)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    const std::uint64_t periods[] = {1000, 200, 100, 20};
    std::vector<SweepPoint> points;
    for (std::uint64_t period : periods) {
        points.push_back({"1-in-" + std::to_string(period),
                          [period](SystemConfig &cfg) {
                              cfg.pebs_cfg.sample_period = period;
                          }});
    }

    ExperimentRunner runner({.name = "abl_pebs"});

    // Reference runs: no migration, and M5(HPT+HWT).
    SweepGrid refs;
    refs.benchmark("mcf_r")
        .policies({PolicyKind::None, PolicyKind::M5HptDriven})
        .scale(scale);
    const auto ref = runner.run(refs);
    if (!ref[0].ok || !ref[1].ok)
        m5_fatal("reference run failed");
    const double none = ref[0].value.steady_throughput;

    // Record-only grid: precision + identification cost per period.
    SweepGrid record;
    record.benchmark("mcf_r")
        .policy(PolicyKind::Memtis)
        .scale(scale)
        .recordOnly()
        .axis(points);
    const auto recorded =
        runner.map(record.expand(), [](const SweepJob &job) {
            TieredSystem sys(job.config);
            const RunResult r = sys.run(job.budget);
            SampleCell cell;
            cell.ratio = accessCountRatio(sys.pac(), r.hot_pages);
            cell.ident_pct = 100.0 *
                static_cast<double>(r.kernel_ident_cycles) /
                static_cast<double>(nsToCycles(r.runtime));
            return cell;
        });

    // End-to-end grid over the same axis.
    SweepGrid e2e;
    e2e.benchmark("mcf_r")
        .policy(PolicyKind::Memtis)
        .scale(scale)
        .axis(points);
    const auto measured = runner.run(e2e);

    TextTable table({"sample 1-in-N", "ratio", "kernel ident %",
                     "norm perf", "migrations"});
    for (std::size_t i = 0; i < std::size(periods); ++i) {
        const auto &rc = recorded[i];
        const auto &er = measured[i];
        table.addRow({std::to_string(periods[i]),
                      rc.ok ? TextTable::num(rc.value.ratio) : "-",
                      rc.ok ? TextTable::num(rc.value.ident_pct, 1)
                            : "-",
                      er.ok ? TextTable::num(
                                  er.value.steady_throughput / none)
                            : "-",
                      er.ok ? std::to_string(
                                  er.value.migration.promoted)
                            : "-"});
    }
    emitTable(std::cout, table, "abl_pebs_sampling");

    std::printf("\nreference: M5(HPT+HWT) norm perf %.2f with ~0%% "
                "identification cost\n",
                ref[1].value.steady_throughput / none);
    std::printf("paper context: sampling 1-in-100 LLC misses costs >15%% "
                "[75]; PEBS cannot see CXL misses on real hardware "
                "[67]\n");
    return 0;
}
