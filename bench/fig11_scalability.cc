/**
 * @file
 * Figure 11: accuracy of the CM-Sketch-32K HPT as the working set grows.
 *
 * Methodology (§8): co-run more instances (processes) of mcf_r,
 * cactuBSSN_r, fotonik3d_r and roms_r, each in its own physical address
 * range, so the address cardinality scales with the process count; track
 * hot pages with a fixed 32K-entry CM-Sketch and score against PAC.
 *
 * Paper reference: preciseness degrades gracefully from x1 to x64.
 */

#include <cstdio>
#include <iostream>

#include "analysis/ratio.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "sim/system.hh"

using namespace m5;

int
main()
{
    // Keep the per-instance footprint constant while the instance count
    // grows, like the paper's co-run scaling: total scale = base * n.
    const double base_scale = bench::benchScale() / 4.0;
    printBanner(std::cout,
        "Figure 11: CM-Sketch(32K) accuracy vs working-set scaling");
    std::printf("per-instance scale=1/%.0f\n", 1.0 / base_scale);

    const char *benches[] = {"mcf_r", "roms_r", "fotonik3d_r",
                             "cactuBSSN_r"};
    const std::size_t counts[] = {1, 2, 4, 8, 16, 32, 64};

    TextTable table({"bench", "x1", "x2", "x4", "x8", "x16", "x32",
                     "x64"});
    for (const char *benchname : benches) {
        std::vector<std::string> row = {bench::shortName(benchname)};
        for (std::size_t n : counts) {
            SystemConfig cfg = makeConfig(benchname,
                                          PolicyKind::M5HptOnly,
                                          base_scale * n, 1);
            cfg.instances = n;
            cfg.record_only = true;
            cfg.hpt_cfg.kind = TrackerKind::CmSketchTopK;
            cfg.hpt_cfg.entries = 32 * 1024;
            TieredSystem sys(cfg);
            const RunResult r =
                sys.run(accessBudget(benchname, base_scale * n));
            row.push_back(TextTable::num(
                accessCountRatio(sys.pac(), r.hot_pages), 2));
            std::fflush(stdout);
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::printf("\npaper: accuracy decreases gracefully with process "
                "count (no cliff up to x64)\n");
    return 0;
}
