/**
 * @file
 * Figure 11: accuracy of the CM-Sketch-32K HPT as the working set grows.
 *
 * Methodology (§8): co-run more instances (processes) of mcf_r,
 * cactuBSSN_r, fotonik3d_r and roms_r, each in its own physical address
 * range, so the address cardinality scales with the process count; track
 * hot pages with a fixed 32K-entry CM-Sketch and score against PAC.  The
 * instance counts form a custom sweep axis (which also rescales the
 * footprint and the access budget).
 *
 * Paper reference: preciseness degrades gracefully from x1 to x64.
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

using namespace m5;

int
main()
{
    // Keep the per-instance footprint constant while the instance count
    // grows, like the paper's co-run scaling: total scale = base * n.
    const double base_scale = benchScale() / 4.0;
    printBanner(std::cout,
        "Figure 11: CM-Sketch(32K) accuracy vs working-set scaling");
    std::printf("per-instance scale=1/%.0f\n", 1.0 / base_scale);

    const std::vector<std::string> benches = {"mcf_r", "roms_r",
                                              "fotonik3d_r",
                                              "cactuBSSN_r"};
    const std::size_t counts[] = {1, 2, 4, 8, 16, 32, 64};

    std::vector<SweepPoint> points;
    for (std::size_t n : counts) {
        points.push_back({"x" + std::to_string(n),
                          [n, base_scale](SystemConfig &cfg) {
                              cfg.scale = base_scale *
                                          static_cast<double>(n);
                              cfg.instances = n;
                              cfg.hpt_cfg.kind =
                                  TrackerKind::CmSketchTopK;
                              cfg.hpt_cfg.entries = 32 * 1024;
                          }});
    }
    SweepGrid grid;
    grid.benchmarks(benches)
        .policy(PolicyKind::M5HptOnly)
        .scale(base_scale)
        .recordOnly()
        .axis(points);
    const std::vector<SweepJob> jobs = grid.expand();
    ExperimentRunner runner({.name = "fig11"});
    const auto results = runner.map(jobs, accessRatioJob);

    TextTable table({"bench", "x1", "x2", "x4", "x8", "x16", "x32",
                     "x64"});
    const std::size_t nc = std::size(counts);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> row = {shortBenchName(benches[b])};
        for (std::size_t c = 0; c < nc; ++c) {
            const auto &r = results[b * nc + c];
            row.push_back(r.ok ? TextTable::num(r.value, 2) : "-");
        }
        table.addRow(row);
    }
    emitTable(std::cout, table, "fig11_scalability");
    std::printf("\npaper: accuracy decreases gracefully with process "
                "count (no cliff up to x64)\n");
    return 0;
}
