/**
 * @file
 * Extension: the PAC SRAM-as-cache scalability mode (§3, Scalability).
 *
 * For CXL capacities whose per-frame counters exceed the 4MB SRAM, the
 * SRAM becomes a counter cache spilling evicted counts to the in-memory
 * access-count table over D2D writes.  Counting stays exact; the cost is
 * D2D traffic.  This sweep measures hit ratio and writeback traffic as
 * the cache shrinks relative to the footprint, on mcf_r's cache-filtered
 * stream (one trace cell, then a mapItems grid over the cache sizes).
 */

#include <cstdio>
#include <iostream>

#include "analysis/report.hh"
#include "common/table.hh"
#include "cxl/pac.hh"
#include "cxl/pac_cache.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

/** The replayed stream plus the CXL frame range it covers. */
struct StreamCell
{
    TraceBuffer trace;
    Pfn first = 0;
    std::size_t frames = 0;
};

struct CacheCell
{
    double hit_ratio = 0.0;
    std::uint64_t evictions = 0;
    bool exact = false;
};

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Extension: PAC counter-cache sweep (mcf_r post-LLC stream)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    SweepGrid grid;
    grid.benchmark("mcf_r").scale(scale).budgetScale(0.5).configure(
        [](SystemConfig &cfg) {
            cfg.enable_pac = true;
            cfg.record_trace = true;
        });
    ExperimentRunner runner({.name = "abl_pac_cache"});
    const auto collected =
        runner.map(grid.expand(), [](const SweepJob &job) {
            TieredSystem sys(job.config);
            sys.run(job.budget);
            StreamCell cell;
            cell.trace = sys.trace();
            cell.first = sys.memory().tier(kNodeCxl).firstPfn();
            cell.frames = sys.memory().tier(kNodeCxl).framesTotal();
            return cell;
        });
    if (!collected[0].ok)
        m5_fatal("trace collection failed: %s",
                 collected[0].error.c_str());
    const StreamCell &stream = collected[0].value;

    // Full-SRAM reference fed from the identical stream.
    PacConfig ref_cfg;
    ref_cfg.first_pfn = stream.first;
    ref_cfg.frames = stream.frames;
    PacUnit reference(ref_cfg);
    for (const auto &rec : stream.trace.records())
        reference.observe(rec.pa);

    const std::vector<std::size_t> sizes = {
        stream.frames, stream.frames / 4, stream.frames / 16,
        stream.frames / 64};
    const auto results =
        runner.mapItems(sizes, [&](const std::size_t &entries) {
            PacCacheConfig pc;
            pc.first_pfn = stream.first;
            pc.frames = stream.frames;
            pc.cache_entries = entries;
            PacCacheUnit pac(pc);
            for (const auto &rec : stream.trace.records())
                pac.observe(rec.pa);

            CacheCell cell;
            cell.hit_ratio = static_cast<double>(pac.hits()) /
                             static_cast<double>(pac.hits() +
                                                 pac.misses());
            cell.evictions = pac.evictions();
            // Exactness check against the full-SRAM reference.
            cell.exact = true;
            for (Pfn p = stream.first; p < stream.first + stream.frames;
                 p += 97) {
                if (pac.count(p) != reference.count(p)) {
                    cell.exact = false;
                    break;
                }
            }
            return cell;
        });

    TextTable table({"cache entries", "coverage", "hit ratio",
                     "D2D writebacks", "wb per access", "exact"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (!results[i].ok) {
            table.addRow({std::to_string(sizes[i]), "-", "-", "-", "-",
                          "-"});
            continue;
        }
        const CacheCell &c = results[i].value;
        table.addRow({std::to_string(sizes[i]),
                      TextTable::num(static_cast<double>(sizes[i]) /
                                     static_cast<double>(stream.frames),
                                     3),
                      TextTable::num(c.hit_ratio),
                      std::to_string(c.evictions),
                      TextTable::num(static_cast<double>(c.evictions) /
                                     static_cast<double>(
                                         stream.trace.size())),
                      c.exact ? "yes" : "NO"});
    }
    emitTable(std::cout, table, "abl_pac_cache");
    std::printf("\ncounting stays exact at every cache size; shrinking "
                "SRAM only trades D2D writeback bandwidth\n");
    return 0;
}
