/**
 * @file
 * Extension: the PAC SRAM-as-cache scalability mode (§3, Scalability).
 *
 * For CXL capacities whose per-frame counters exceed the 4MB SRAM, the
 * SRAM becomes a counter cache spilling evicted counts to the in-memory
 * access-count table over D2D writes.  Counting stays exact; the cost is
 * D2D traffic.  This sweep measures hit ratio and writeback traffic as
 * the cache shrinks relative to the footprint, on mcf_r's cache-filtered
 * stream.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "cxl/pac.hh"
#include "cxl/pac_cache.hh"
#include "sim/system.hh"
#include "workloads/trace.hh"

using namespace m5;

int
main()
{
    const double scale = bench::benchScale();
    printBanner(std::cout,
        "Extension: PAC counter-cache sweep (mcf_r post-LLC stream)");
    std::printf("scale=1/%.0f\n", 1.0 / scale);

    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::None, scale, 1);
    cfg.enable_pac = true;
    cfg.record_trace = true;
    TieredSystem sys(cfg);
    sys.run(accessBudget("mcf_r", scale) / 2);
    const TraceBuffer &trace = sys.trace();
    const Pfn first = sys.memory().tier(kNodeCxl).firstPfn();
    const std::size_t frames =
        sys.memory().tier(kNodeCxl).framesTotal();

    // Full-SRAM reference fed from the identical stream.
    PacConfig ref_cfg;
    ref_cfg.first_pfn = first;
    ref_cfg.frames = frames;
    PacUnit reference(ref_cfg);
    for (const auto &rec : trace.records())
        reference.observe(rec.pa);

    TextTable table({"cache entries", "coverage", "hit ratio",
                     "D2D writebacks", "wb per access", "exact"});
    for (std::size_t entries :
         {frames, frames / 4, frames / 16, frames / 64}) {
        PacCacheConfig pc;
        pc.first_pfn = first;
        pc.frames = frames;
        pc.cache_entries = entries;
        PacCacheUnit pac(pc);
        for (const auto &rec : trace.records())
            pac.observe(rec.pa);

        // Exactness check against the full-SRAM reference.
        bool exact = true;
        for (Pfn p = first; p < first + frames; p += 97) {
            if (pac.count(p) != reference.count(p)) {
                exact = false;
                break;
            }
        }
        table.addRow({std::to_string(entries),
                      TextTable::num(static_cast<double>(entries) /
                                     static_cast<double>(frames), 3),
                      TextTable::num(static_cast<double>(pac.hits()) /
                                     static_cast<double>(pac.hits() +
                                                         pac.misses())),
                      std::to_string(pac.evictions()),
                      TextTable::num(static_cast<double>(pac.evictions()) /
                                     static_cast<double>(trace.size())),
                      exact ? "yes" : "NO"});
        std::fflush(stdout);
    }
    table.print(std::cout);
    std::printf("\ncounting stays exact at every cache size; shrinking "
                "SRAM only trades D2D writeback bandwidth\n");
    return 0;
}
