/**
 * @file
 * Extension: IFMM vs page migration vs the hybrid — the §9 synergy
 * argument.
 *
 * Intel Flat Memory Mode swaps individual 64B words between DDR and CXL,
 * which suits *sparse* hot pages (no 4KB copies, no TLB shootdowns) but
 * is capacity-constrained by its direct mapping.  Page migration moves
 * whole 4KB pages, which suits *dense* hot pages.  The paper argues the
 * two compose: IFMM catches hot words of sparse pages while M5 migrates
 * dense hot pages.
 *
 * Methodology: replay a cache-filtered trace through three DDR-budget
 * deployments and report average post-LLC memory latency:
 *  1. page-migration only: DDR holds the hottest whole pages (an
 *     idealised M5 with perfect knowledge — an upper bound);
 *  2. IFMM only: all of DDR backs the word-swap directory;
 *  3. hybrid: half the DDR budget to each.
 * One runner cell per workload — a sparse one (redis) and a dense one
 * (mcf_r) — to show the crossover.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/report.hh"
#include "common/table.hh"
#include "mem/ifmm.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "workloads/trace.hh"

using namespace m5;

namespace {

constexpr Tick kDdrLat = 100;
constexpr Tick kCxlLat = 270;

/** Pick the hottest pages that fit a DDR page budget. */
std::unordered_set<Pfn>
hottestPages(const TraceBuffer &trace, std::size_t budget_pages)
{
    std::unordered_map<Pfn, std::uint64_t> counts;
    for (const auto &rec : trace.records())
        ++counts[pfnOf(rec.pa)];
    std::vector<std::pair<std::uint64_t, Pfn>> ranked;
    ranked.reserve(counts.size());
    // Order never escapes: ranked is fully sorted on (count, pfn) below.
    for (const auto &[pfn, c] : counts) // m5lint: allow(no-unordered-result-iteration)
        ranked.emplace_back(c, pfn);
    std::sort(ranked.rbegin(), ranked.rend());
    std::unordered_set<Pfn> out;
    for (const auto &[c, pfn] : ranked) {
        if (out.size() >= budget_pages)
            break;
        out.insert(pfn);
    }
    return out;
}

/** Average latency with the hottest pages pinned in DDR. */
double
pageMigrationLatency(const TraceBuffer &trace, std::size_t budget_pages)
{
    const auto hot = hottestPages(trace, budget_pages);
    double total = 0.0;
    for (const auto &rec : trace.records())
        total += static_cast<double>(
            hot.count(pfnOf(rec.pa)) ? kDdrLat : kCxlLat);
    return total / static_cast<double>(trace.size());
}

/** Average latency with DDR as an IFMM word-swap cache. */
double
ifmmLatency(const TraceBuffer &trace, std::uint64_t ddr_words,
            Addr cxl_base, std::uint64_t cxl_bytes)
{
    IfmmConfig cfg;
    cfg.cxl_base = cxl_base;
    cfg.cxl_bytes = cxl_bytes;
    cfg.ddr_words = ddr_words;
    cfg.ddr_latency = kDdrLat;
    cfg.cxl_latency = kCxlLat;
    IfmmDirectory dir(cfg);
    double total = 0.0;
    for (const auto &rec : trace.records())
        total += static_cast<double>(dir.access(rec.pa).latency);
    return total / static_cast<double>(trace.size());
}

/** Hybrid: hottest pages pinned; the rest goes through IFMM. */
double
hybridLatency(const TraceBuffer &trace, std::size_t page_budget,
              std::uint64_t ifmm_words, Addr cxl_base,
              std::uint64_t cxl_bytes)
{
    const auto hot = hottestPages(trace, page_budget);
    IfmmConfig cfg;
    cfg.cxl_base = cxl_base;
    cfg.cxl_bytes = cxl_bytes;
    cfg.ddr_words = ifmm_words;
    cfg.ddr_latency = kDdrLat;
    cfg.cxl_latency = kCxlLat;
    IfmmDirectory dir(cfg);
    double total = 0.0;
    for (const auto &rec : trace.records()) {
        if (hot.count(pfnOf(rec.pa)))
            total += kDdrLat;
        else
            total += static_cast<double>(dir.access(rec.pa).latency);
    }
    return total / static_cast<double>(trace.size());
}

struct DeploymentCell
{
    double pages = 0.0;
    double ifmm = 0.0;
    double hybrid = 0.0;
};

/** Collect the trace and replay it through the three deployments. */
DeploymentCell
measure(const SweepJob &job)
{
    TieredSystem sys(job.config);
    sys.run(job.budget);
    const TraceBuffer &trace = sys.trace();
    const MemTier &cxl = sys.memory().tier(kNodeCxl);

    const std::size_t budget_pages =
        sys.memory().tier(kNodeDdr).framesTotal();
    const std::uint64_t budget_words = budget_pages * kWordsPerPage;

    DeploymentCell cell;
    cell.pages = pageMigrationLatency(trace, budget_pages);
    cell.ifmm = ifmmLatency(trace, budget_words, cxl.config().base,
                            cxl.config().capacity_bytes);
    cell.hybrid = hybridLatency(trace, budget_pages / 2,
                                budget_words / 2, cxl.config().base,
                                cxl.config().capacity_bytes);
    return cell;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    printBanner(std::cout,
        "Extension: IFMM vs page migration vs hybrid (Sec 9)");
    std::printf("scale=1/%.0f; DDR budget = 3/8 footprint; average "
                "post-LLC latency in ns (lower is better)\n",
                1.0 / scale);

    const std::vector<std::string> benches = {"redis", "mcf_r"};
    SweepGrid grid;
    grid.benchmarks(benches).scale(scale).budgetScale(0.5).configure(
        [](SystemConfig &cfg) {
            cfg.enable_pac = false;
            cfg.record_trace = true;
        });
    ExperimentRunner runner({.name = "abl_ifmm"});
    const auto results = runner.map(grid.expand(), measure);

    TextTable table({"bench", "all-CXL", "pages only", "IFMM only",
                     "hybrid 50/50"});
    for (std::size_t b = 0; b < benches.size(); ++b) {
        if (!results[b].ok) {
            table.addRow({shortBenchName(benches[b]),
                          TextTable::num(static_cast<double>(kCxlLat),
                                         0),
                          "-", "-", "-"});
            continue;
        }
        const DeploymentCell &c = results[b].value;
        table.addRow({shortBenchName(benches[b]),
                      TextTable::num(static_cast<double>(kCxlLat), 0),
                      TextTable::num(c.pages, 0),
                      TextTable::num(c.ifmm, 0),
                      TextTable::num(c.hybrid, 0)});
    }
    emitTable(std::cout, table, "abl_ifmm");
    std::printf("\nexpected shape: sparse (redis) favours word-granular "
                "IFMM; dense (mcf_r) favours page migration; the hybrid "
                "tracks the better of the two (Sec 9's synergy)\n");
    return 0;
}
