/**
 * @file
 * Unit tests for the CXL controller AFUs: PAC, WAC, HPT, HWT, and the
 * controller wiring.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cxl/controller.hh"

namespace m5 {
namespace {

PacConfig
pacConfig(Pfn first = 100, std::size_t frames = 64)
{
    PacConfig c;
    c.first_pfn = first;
    c.frames = frames;
    return c;
}

TEST(Pac, ExactCounts)
{
    PacUnit pac(pacConfig());
    for (int i = 0; i < 7; ++i)
        pac.observe(pageBase(105) + 64 * i);
    EXPECT_EQ(pac.count(105), 7u);
    EXPECT_EQ(pac.count(106), 0u);
    EXPECT_EQ(pac.totalAccesses(), 7u);
}

TEST(Pac, IgnoresOutOfRange)
{
    PacUnit pac(pacConfig(100, 64));
    pac.observe(pageBase(99));
    pac.observe(pageBase(164));
    EXPECT_EQ(pac.totalAccesses(), 0u);
}

TEST(Pac, SaturationSpillsToTable)
{
    PacConfig cfg = pacConfig();
    cfg.counter_bits = 4; // Saturates at 15.
    PacUnit pac(cfg);
    for (int i = 0; i < 1000; ++i)
        pac.observe(pageBase(100));
    EXPECT_EQ(pac.count(100), 1000u); // Exact despite the narrow SRAM.
    EXPECT_GT(pac.spills(), 0u);
}

TEST(Pac, TopKSortedAndSized)
{
    PacUnit pac(pacConfig());
    for (Pfn p = 100; p < 110; ++p)
        for (Pfn i = 0; i <= p - 100; ++i)
            pac.observe(pageBase(p));
    auto top = pac.topK(3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].tag, 109u);
    EXPECT_EQ(top[0].count, 10u);
    EXPECT_EQ(top[1].tag, 108u);
    EXPECT_EQ(top[2].tag, 107u);
}

TEST(Pac, TopKAccessSum)
{
    PacUnit pac(pacConfig());
    pac.observe(pageBase(100));
    pac.observe(pageBase(100));
    pac.observe(pageBase(101));
    EXPECT_EQ(pac.topKAccessSum(1), 2u);
    EXPECT_EQ(pac.topKAccessSum(2), 3u);
    EXPECT_EQ(pac.topKAccessSum(10), 3u);
}

TEST(Pac, NonZeroCounts)
{
    PacUnit pac(pacConfig());
    pac.observe(pageBase(100));
    pac.observe(pageBase(120));
    pac.observe(pageBase(120));
    auto counts = pac.nonZeroCounts();
    ASSERT_EQ(counts.size(), 2u);
}

TEST(Pac, Reset)
{
    PacUnit pac(pacConfig());
    pac.observe(pageBase(100));
    pac.reset();
    EXPECT_EQ(pac.count(100), 0u);
    EXPECT_EQ(pac.totalAccesses(), 0u);
}

WacConfig
wacConfig(std::uint64_t range = 64 * kPageBytes)
{
    WacConfig c;
    c.range_base = 0;
    c.range_bytes = range;
    c.window_bytes = range;
    return c;
}

TEST(Wac, TracksUniqueWordsPerPage)
{
    WacUnit wac(wacConfig());
    wac.observe(pageBase(3) + 0 * kWordBytes);
    wac.observe(pageBase(3) + 5 * kWordBytes);
    wac.observe(pageBase(3) + 5 * kWordBytes); // Same word again.
    wac.fold();
    EXPECT_EQ(wac.uniqueWords(3), 2u);
    EXPECT_EQ(wac.wordMask(3), (1ULL << 0) | (1ULL << 5));
}

TEST(Wac, WordCountsSaturateAt4Bits)
{
    WacUnit wac(wacConfig());
    for (int i = 0; i < 100; ++i)
        wac.observe(pageBase(1));
    EXPECT_EQ(wac.wordCount(wordOf(pageBase(1))), 15u);
}

TEST(Wac, WindowedSweepCoversRange)
{
    WacConfig cfg;
    cfg.range_base = 0;
    cfg.range_bytes = 4 * kPageBytes;
    cfg.window_bytes = 2 * kPageBytes; // Half the range at a time.
    WacUnit wac(cfg);
    wac.observe(pageBase(0));       // In window 1.
    wac.observe(pageBase(3));       // Outside: ignored.
    wac.advanceWindow();
    wac.observe(pageBase(3) + 64);  // Now in window 2.
    wac.fold();
    EXPECT_EQ(wac.uniqueWords(0), 1u);
    EXPECT_EQ(wac.uniqueWords(3), 1u);
}

TEST(Wac, WindowWrapsAround)
{
    WacConfig cfg;
    cfg.range_base = 0;
    cfg.range_bytes = 4 * kPageBytes;
    cfg.window_bytes = 2 * kPageBytes;
    WacUnit wac(cfg);
    EXPECT_EQ(wac.windowBase(), 0u);
    wac.advanceWindow();
    EXPECT_EQ(wac.windowBase(), 2 * kPageBytes);
    wac.advanceWindow();
    EXPECT_EQ(wac.windowBase(), 0u);
}

TEST(Wac, PagesWithUniqueWords)
{
    WacUnit wac(wacConfig());
    wac.observe(pageBase(1));
    wac.observe(pageBase(2));
    wac.observe(pageBase(2) + kWordBytes);
    wac.fold();
    auto pages = wac.pagesWithUniqueWords();
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0].first, 1u);
    EXPECT_EQ(pages[0].second, 1u);
    EXPECT_EQ(pages[1].second, 2u);
}

TEST(Wac, Reset)
{
    WacUnit wac(wacConfig());
    wac.observe(pageBase(1));
    wac.fold();
    wac.reset();
    EXPECT_EQ(wac.uniqueWords(1), 0u);
}

TEST(Hpt, TracksPageGranularity)
{
    TrackerConfig cfg;
    cfg.entries = 1024;
    cfg.k = 4;
    HptUnit hpt(cfg);
    // Two different words of the same page count as one key.
    hpt.observe(pageBase(7));
    hpt.observe(pageBase(7) + 9 * kWordBytes);
    auto top = hpt.queryAndReset();
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].tag, 7u);
    EXPECT_EQ(top[0].count, 2u);
}

TEST(Hpt, QueryResetsEpoch)
{
    TrackerConfig cfg;
    cfg.entries = 1024;
    cfg.k = 4;
    HptUnit hpt(cfg);
    hpt.observe(pageBase(7));
    EXPECT_EQ(hpt.observed(), 1u);
    hpt.queryAndReset();
    EXPECT_EQ(hpt.observed(), 0u);
    EXPECT_TRUE(hpt.peek().empty());
}

TEST(Hwt, TracksWordGranularity)
{
    TrackerConfig cfg;
    cfg.entries = 1024;
    cfg.k = 4;
    HwtUnit hwt(cfg);
    hwt.observe(pageBase(7));
    hwt.observe(pageBase(7) + 9 * kWordBytes);
    auto top = hwt.queryAndReset();
    ASSERT_EQ(top.size(), 2u); // Distinct words are distinct keys.
    EXPECT_EQ(top[0].count, 1u);
}

TEST(Hwt, HotWordSurfaces)
{
    TrackerConfig cfg;
    cfg.entries = 4096;
    cfg.k = 2;
    HwtUnit hwt(cfg);
    Rng rng(9);
    const Addr hot = pageBase(42) + 13 * kWordBytes;
    for (int i = 0; i < 5000; ++i) {
        hwt.observe(rng.chance(0.3)
            ? hot : pageBase(rng.below(500)) +
                    rng.below(kWordsPerPage) * kWordBytes);
    }
    auto top = hwt.queryAndReset();
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top[0].tag, wordOf(hot));
}

TEST(Controller, RoutesToConfiguredUnits)
{
    CxlControllerConfig cfg;
    cfg.pac = pacConfig(0, 64);
    WacConfig wcfg;
    wcfg.range_base = 0;
    wcfg.range_bytes = 64 * kPageBytes;
    wcfg.window_bytes = 64 * kPageBytes;
    cfg.wac = wcfg;
    TrackerConfig tcfg;
    tcfg.entries = 256;
    tcfg.k = 4;
    cfg.hpt = tcfg;
    cfg.hwt = tcfg;
    CxlController ctrl(cfg);
    EXPECT_TRUE(ctrl.hasPac());
    EXPECT_TRUE(ctrl.hasWac());
    EXPECT_TRUE(ctrl.hasHpt());
    EXPECT_TRUE(ctrl.hasHwt());

    ctrl.observe(pageBase(3), false, 0);
    EXPECT_EQ(ctrl.snooped(), 1u);
    EXPECT_EQ(ctrl.pac().count(3), 1u);
    EXPECT_EQ(ctrl.hpt().observed(), 1u);
    EXPECT_EQ(ctrl.hwt().observed(), 1u);
    ctrl.wac().fold();
    EXPECT_EQ(ctrl.wac().uniqueWords(3), 1u);
}

TEST(Controller, UnconfiguredUnitsAbsent)
{
    CxlControllerConfig cfg;
    cfg.pac = pacConfig(0, 16);
    CxlController ctrl(cfg);
    EXPECT_TRUE(ctrl.hasPac());
    EXPECT_FALSE(ctrl.hasWac());
    EXPECT_FALSE(ctrl.hasHpt());
    EXPECT_FALSE(ctrl.hasHwt());
}

TEST(Controller, ObserverClosureWorks)
{
    CxlControllerConfig cfg;
    cfg.pac = pacConfig(0, 16);
    CxlController ctrl(cfg);
    auto obs = ctrl.observer();
    obs(pageBase(5), false, 0);
    EXPECT_EQ(ctrl.pac().count(5), 1u);
}

TEST(Controller, AttachedToMemorySystemSeesCxlTraffic)
{
    TieredMemoryParams p;
    p.ddr_bytes = 16 * kPageBytes;
    p.cxl_bytes = 16 * kPageBytes;
    auto mem = makeTieredMemory(p);
    CxlControllerConfig cfg;
    PacConfig pac;
    pac.first_pfn = mem->tier(kNodeCxl).firstPfn();
    pac.frames = mem->tier(kNodeCxl).framesTotal();
    cfg.pac = pac;
    CxlController ctrl(cfg);
    mem->attachObserver(kNodeCxl, ctrl.observer());

    mem->access(0, false, 0); // DDR: not snooped.
    const Addr cxl_pa = mem->tier(kNodeCxl).config().base;
    mem->access(cxl_pa, false, 0);
    mem->access(cxl_pa, true, 0);
    EXPECT_EQ(ctrl.snooped(), 2u);
    EXPECT_EQ(ctrl.pac().count(pfnOf(cxl_pa)), 2u);
}

} // namespace
} // namespace m5
