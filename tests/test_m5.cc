/**
 * @file
 * Unit tests for the M5-manager components: Monitor, Nominator, Elector,
 * Promoter, and the assembled M5Manager daemon.
 */

#include <gtest/gtest.h>

#include <bit>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "m5/manager.hh"
#include "mem/memsys.hh"
#include "os/frame_alloc.hh"
#include "os/migration.hh"

namespace m5 {
namespace {

/** Shared fixture: 8-frame DDR, 32-page footprint in CXL. */
class M5Test : public ::testing::Test
{
  protected:
    static constexpr std::size_t kPages = 32;

    M5Test()
    {
        TieredMemoryParams p;
        p.ddr_bytes = 8 * kPageBytes;
        p.cxl_bytes = 64 * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(kPages);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(kPages, topo->numTiers());
        mglru = &lrus->top();
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        monitor = std::make_unique<Monitor>(*mem, *pt);
        for (Vpn v = 0; v < kPages; ++v)
            pt->map(v, *alloc->allocate(kNodeCxl), kNodeCxl);
    }

    Addr cxlAddr(Vpn vpn, unsigned word = 0) const
    {
        return pageBase(pt->pte(vpn).pfn) + word * kWordBytes;
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    MgLru *mglru = nullptr;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
    std::unique_ptr<Monitor> monitor;
};

TEST_F(M5Test, MonitorNrPages)
{
    monitor->sample(0);
    EXPECT_EQ(monitor->nrPages(kNodeCxl), kPages);
    EXPECT_EQ(monitor->nrPages(kNodeDdr), 0u);
}

TEST_F(M5Test, MonitorBandwidthDeltas)
{
    monitor->sample(0);
    for (int i = 0; i < 10; ++i)
        mem->access(cxlAddr(0), false, 0);
    monitor->sample(secondsToTicks(1.0));
    EXPECT_NEAR(monitor->bw(kNodeCxl), 10.0 * kWordBytes, 1e-6);
    EXPECT_EQ(monitor->bw(kNodeDdr), 0.0);
    EXPECT_NEAR(monitor->bwTot(), 10.0 * kWordBytes, 1e-6);
}

TEST_F(M5Test, MonitorIgnoresWritesForBandwidth)
{
    monitor->sample(0);
    mem->access(cxlAddr(0), true, 0);
    monitor->sample(secondsToTicks(1.0));
    EXPECT_EQ(monitor->bw(kNodeCxl), 0.0);
}

TEST_F(M5Test, MonitorBwDensityPerPage)
{
    monitor->sample(0);
    for (int i = 0; i < 32; ++i)
        mem->access(cxlAddr(0), false, 0);
    monitor->sample(secondsToTicks(1.0));
    EXPECT_NEAR(monitor->bwDen(kNodeCxl),
                32.0 * kWordBytes / kPages, 1e-6);
    EXPECT_EQ(monitor->bwDen(kNodeDdr), 0.0); // No pages: density 0.
}

TEST_F(M5Test, MonitorRelBwDen)
{
    monitor->sample(0);
    for (int i = 0; i < 10; ++i)
        mem->access(cxlAddr(0), false, 0);
    monitor->sample(secondsToTicks(1.0));
    EXPECT_NEAR(monitor->relBwDen(kNodeCxl), 1.0 / kPages, 1e-9);
}

TEST_F(M5Test, MonitorFreeFrames)
{
    EXPECT_EQ(monitor->freeFrames(kNodeDdr), 8u);
    (void)engine->promote(0, 0);
    EXPECT_EQ(monitor->freeFrames(kNodeDdr), 7u);
}

TEST_F(M5Test, NominatorHptOnlyRanksByCount)
{
    Nominator nom(NominatorKind::HptOnly, *pt);
    nom.updateFromHpt({{pt->pte(1).pfn, 5},
                       {pt->pte(2).pfn, 50},
                       {pt->pte(3).pfn, 20}});
    auto picks = nom.nominate(2);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 2u);
    EXPECT_EQ(picks[1], 3u);
}

TEST_F(M5Test, NominatorHptOnlyIgnoresHwt)
{
    Nominator nom(NominatorKind::HptOnly, *pt);
    nom.updateFromHwt({{wordOf(cxlAddr(1)), 99}});
    EXPECT_TRUE(nom.nominate(10).empty());
}

TEST_F(M5Test, NominatorHptDrivenPrefersDense)
{
    Nominator nom(NominatorKind::HptDriven, *pt);
    nom.updateFromHpt({{pt->pte(1).pfn, 100},
                       {pt->pte(2).pfn, 100}});
    // Three hot words land in page 2, one in page 1.
    nom.updateFromHwt({{wordOf(cxlAddr(2, 0)), 9},
                       {wordOf(cxlAddr(2, 1)), 9},
                       {wordOf(cxlAddr(2, 2)), 9},
                       {wordOf(cxlAddr(1, 0)), 9}});
    auto picks = nom.nominate(2);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 2u); // Denser hot page first (Guideline 3).
}

TEST_F(M5Test, NominatorHptDrivenIgnoresWordsWithoutHptEntry)
{
    Nominator nom(NominatorKind::HptDriven, *pt);
    nom.updateFromHwt({{wordOf(cxlAddr(5)), 9}});
    EXPECT_TRUE(nom.nominate(10).empty());
}

TEST_F(M5Test, NominatorHwtDrivenBuildsFromWords)
{
    Nominator nom(NominatorKind::HwtDriven, *pt);
    nom.updateFromHwt({{wordOf(cxlAddr(4, 0)), 9},
                       {wordOf(cxlAddr(4, 7)), 9},
                       {wordOf(cxlAddr(6, 1)), 9}});
    auto hpa = nom.hpa();
    ASSERT_EQ(hpa.size(), 2u);
    auto picks = nom.nominate(2);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 4u); // Two hot words beat one (§5.2 mask count).
}

TEST_F(M5Test, NominatorHwtDrivenIgnoresHpt)
{
    Nominator nom(NominatorKind::HwtDriven, *pt);
    nom.updateFromHpt({{pt->pte(1).pfn, 100}});
    EXPECT_TRUE(nom.nominate(10).empty());
}

TEST_F(M5Test, NominatorMaskBitsMatchWordIndices)
{
    Nominator nom(NominatorKind::HwtDriven, *pt);
    nom.updateFromHwt({{wordOf(cxlAddr(4, 3)), 9},
                       {wordOf(cxlAddr(4, 63)), 9}});
    auto hpa = nom.hpa();
    ASSERT_EQ(hpa.size(), 1u);
    EXPECT_EQ(hpa[0].mask, (1ULL << 3) | (1ULL << 63));
}

TEST_F(M5Test, NominatorDropsStaleFrames)
{
    Nominator nom(NominatorKind::HptOnly, *pt);
    const Pfn old_pfn = pt->pte(1).pfn;
    nom.updateFromHpt({{old_pfn, 100}});
    (void)engine->promote(1, 0); // Frame 'old_pfn' now unmapped.
    auto picks = nom.nominate(10);
    EXPECT_TRUE(picks.empty());
    EXPECT_TRUE(nom.hpa().empty()); // Stale entry purged, not stuck.
}

TEST_F(M5Test, NominatorCapacityEvictsColdest)
{
    Nominator nom(NominatorKind::HptOnly, *pt, 2);
    nom.updateFromHpt({{pt->pte(1).pfn, 10}});
    nom.updateFromHpt({{pt->pte(2).pfn, 30}});
    nom.updateFromHpt({{pt->pte(3).pfn, 20}}); // Evicts pfn of vpn 1.
    auto picks = nom.nominate(3);
    ASSERT_EQ(picks.size(), 2u);
    EXPECT_EQ(picks[0], 2u);
    EXPECT_EQ(picks[1], 3u);
}

TEST_F(M5Test, NominatorKindNames)
{
    EXPECT_EQ(nominatorKindName(NominatorKind::HptOnly), "HPT");
    EXPECT_EQ(nominatorKindName(NominatorKind::HwtDriven), "HWT");
    EXPECT_EQ(nominatorKindName(NominatorKind::HptDriven), "HPT+HWT");
}

TEST_F(M5Test, ElectorPeriodScalesWithDensityRatio)
{
    ElectorConfig cfg;
    cfg.f_default = 1000.0;
    cfg.fscale_exponent = 2.0;
    cfg.min_period = 1;
    cfg.max_period = secondsToTicks(10.0);
    Elector elector(cfg);

    // Fill DDR first (vpns 0..7) so the bootstrap path is off, then build
    // a state where bw_den(CXL)/bw_den(DDR) = 2.
    for (Vpn v = 0; v < 8; ++v)
        (void)engine->promote(v, 0);
    ASSERT_EQ(monitor->freeFrames(kNodeDdr), 0u);
    monitor->sample(0);
    // DDR: 8 pages x 16 reads -> den 16 words/page; CXL: 24 pages x 32
    // reads -> den 32 words/page.
    for (Vpn v = 0; v < 8; ++v)
        for (int i = 0; i < 16; ++i)
            mem->access(pageBase(pt->pte(v).pfn), false, 0);
    for (Vpn v = 8; v < kPages; ++v)
        for (int i = 0; i < 32; ++i)
            mem->access(cxlAddr(v), false, 0);
    monitor->sample(secondsToTicks(1.0));
    const double x = monitor->bwDen(kNodeCxl) / monitor->bwDen(kNodeDdr);
    ASSERT_NEAR(x, 2.0, 0.01);
    const auto d = elector.evaluate(*monitor);
    // T = 1 / (x^2 * f_default) = 1 / 4000 s = 250us.
    EXPECT_NEAR(static_cast<double>(d.period), 250e3, 250e3 * 0.05);
}

TEST_F(M5Test, ElectorBootstrapUsesMinPeriodAndMigrates)
{
    ElectorConfig cfg;
    Elector elector(cfg);
    monitor->sample(0);
    monitor->sample(msToTicks(1.0));
    const auto d = elector.evaluate(*monitor);
    EXPECT_TRUE(d.migrate); // DDR empty: bootstrap fill.
    EXPECT_EQ(d.period, cfg.min_period);
}

TEST_F(M5Test, ElectorGateBlocksWhenDensityShareFalls)
{
    ElectorConfig cfg;
    Elector elector(cfg);
    // Fill DDR completely so the bootstrap path is off.
    for (Vpn v = 0; v < 8; ++v)
        (void)engine->promote(v, 0);
    monitor->sample(0);
    for (int i = 0; i < 100; ++i)
        mem->access(pageBase(pt->pte(0).pfn), false, 0);
    monitor->sample(secondsToTicks(1.0));
    auto first = elector.evaluate(*monitor); // rel > prev(-1): migrate.
    EXPECT_TRUE(first.migrate);
    // Next round: DDR bandwidth share collapses.
    for (int i = 0; i < 100; ++i)
        mem->access(cxlAddr(10), false, 0);
    monitor->sample(secondsToTicks(2.0));
    auto second = elector.evaluate(*monitor);
    EXPECT_FALSE(second.migrate);
}

TEST_F(M5Test, ElectorCustomFscale)
{
    ElectorConfig cfg;
    cfg.f_default = 1.0;
    cfg.min_period = 1;
    cfg.max_period = secondsToTicks(100.0);
    bool called = false;
    Elector elector(cfg, [&](double) {
        called = true;
        return 1.0;
    });
    for (Vpn v = 0; v < 8; ++v)
        (void)engine->promote(v, 0);
    monitor->sample(0);
    monitor->sample(secondsToTicks(1.0));
    const auto d = elector.evaluate(*monitor);
    EXPECT_TRUE(called);
    EXPECT_EQ(d.period, secondsToTicks(1.0));
}

TEST_F(M5Test, PromoterRejectsPinned)
{
    Promoter prom(*pt, *engine);
    pt->pte(0).pinned = true;
    (void)prom.promote({0, 1}, 0);
    EXPECT_EQ(prom.stats().requested, 2u);
    EXPECT_EQ(prom.stats().rejected, 1u);
    EXPECT_EQ(prom.stats().accepted, 1u);
    EXPECT_EQ(pt->pte(1).node, kNodeDdr);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
}

TEST_F(M5Test, ManagerWakeQueriesAndResetsTrackers)
{
    CxlControllerConfig ccfg;
    TrackerConfig t;
    t.entries = 1024;
    t.k = 8;
    ccfg.hpt = t;
    ccfg.hwt = t;
    CxlController ctrl(ccfg);
    mem->attachObserver(kNodeCxl, ctrl.observer());

    const Pfn hot_pfn = pt->pte(3).pfn; // Before any migration.
    for (int i = 0; i < 50; ++i)
        mem->access(cxlAddr(3), false, 0);

    M5Config mcfg;
    mcfg.nominator = NominatorKind::HptDriven;
    mcfg.migrate = false; // Keep the trackers quiet after the query.
    M5Manager mgr(mcfg, ctrl, *monitor, *pt, *engine, ledger);
    const Tick busy = mgr.wake(msToTicks(1.0));
    EXPECT_GT(busy, 0u);
    EXPECT_EQ(mgr.wakeups(), 1u);
    EXPECT_EQ(ctrl.hpt().observed(), 0u); // Reset after query.
    EXPECT_GE(mgr.hotPages().size(), 1u);
    EXPECT_EQ(mgr.hotPages().pages()[0], hot_pfn);
    EXPECT_GT(mgr.nextWake(), msToTicks(1.0));
    EXPECT_GT(ledger.category(KernelWork::ManagerUser), 0u);
}

TEST_F(M5Test, ManagerMigratesHotPage)
{
    CxlControllerConfig ccfg;
    TrackerConfig t;
    t.entries = 1024;
    t.k = 8;
    ccfg.hpt = t;
    CxlController ctrl(ccfg);
    mem->attachObserver(kNodeCxl, ctrl.observer());
    for (int i = 0; i < 50; ++i)
        mem->access(cxlAddr(3), false, 0);

    M5Config mcfg;
    mcfg.nominator = NominatorKind::HptOnly;
    M5Manager mgr(mcfg, ctrl, *monitor, *pt, *engine, ledger);
    mgr.wake(msToTicks(1.0));
    EXPECT_EQ(pt->pte(3).node, kNodeDdr);
}

TEST_F(M5Test, ManagerRecordOnlyMode)
{
    CxlControllerConfig ccfg;
    TrackerConfig t;
    t.entries = 1024;
    t.k = 8;
    ccfg.hpt = t;
    CxlController ctrl(ccfg);
    mem->attachObserver(kNodeCxl, ctrl.observer());
    for (int i = 0; i < 50; ++i)
        mem->access(cxlAddr(3), false, 0);

    M5Config mcfg;
    mcfg.nominator = NominatorKind::HptOnly;
    mcfg.migrate = false;
    M5Manager mgr(mcfg, ctrl, *monitor, *pt, *engine, ledger);
    mgr.wake(msToTicks(1.0));
    EXPECT_EQ(pt->pte(3).node, kNodeCxl);
    EXPECT_GE(mgr.hotPages().size(), 1u);
}

TEST_F(M5Test, ManagerName)
{
    CxlControllerConfig ccfg;
    TrackerConfig t;
    ccfg.hpt = t;
    ccfg.hwt = t;
    CxlController ctrl(ccfg);
    M5Config mcfg;
    mcfg.nominator = NominatorKind::HptDriven;
    M5Manager mgr(mcfg, ctrl, *monitor, *pt, *engine, ledger);
    EXPECT_EQ(mgr.name(), "M5(HPT+HWT)");
}

} // namespace
} // namespace m5
