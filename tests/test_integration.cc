/**
 * @file
 * Cross-module integration tests: end-to-end behaviours the paper's
 * evaluation depends on, run on scaled-down systems.
 */

#include <gtest/gtest.h>

#include "analysis/cdf.hh"
#include "analysis/ratio.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

constexpr double kTinyScale = 1.0 / 256.0;

RunResult
runTiny(const std::string &bench, PolicyKind policy,
        std::uint64_t accesses = 600'000, bool record_only = false)
{
    SystemConfig cfg = makeConfig(bench, policy, kTinyScale, 11);
    cfg.record_only = record_only;
    TieredSystem sys(cfg);
    return sys.run(accesses);
}

TEST(Integration, M5BeatsNoMigrationOnSkewedWorkload)
{
    const RunResult none = runTiny("mcf_r", PolicyKind::None);
    const RunResult m5 = runTiny("mcf_r", PolicyKind::M5HptDriven);
    EXPECT_GT(m5.steady_throughput, none.steady_throughput * 1.15);
}

TEST(Integration, M5RatioBeatsCpuDrivenOnSkewedWorkload)
{
    SystemConfig anb_cfg =
        makeConfig("roms_r", PolicyKind::Anb, kTinyScale, 11);
    anb_cfg.record_only = true;
    TieredSystem anb_sys(anb_cfg);
    const RunResult anb = anb_sys.run(600'000);
    const double anb_ratio = accessCountRatio(anb_sys.pac(),
                                              anb.hot_pages);

    SystemConfig m5_cfg =
        makeConfig("roms_r", PolicyKind::M5HptOnly, kTinyScale, 11);
    m5_cfg.record_only = true;
    TieredSystem m5_sys(m5_cfg);
    const RunResult m5 = m5_sys.run(600'000);
    const double m5_ratio = accessCountRatio(m5_sys.pac(), m5.hot_pages);

    EXPECT_GT(m5_ratio, anb_ratio);
    EXPECT_GT(m5_ratio, 0.5); // HPT tracks genuinely hot pages.
}

TEST(Integration, SparsityOrderingRedisVsMcf)
{
    // Figure 4: Redis pages are sparse, mcf pages dense.
    auto sparsity_of = [](const std::string &bench) {
        SystemConfig cfg =
            makeConfig(bench, PolicyKind::None, kTinyScale, 5);
        cfg.enable_wac = true;
        TieredSystem sys(cfg);
        sys.run(400'000);
        return sparsityCdf(sys.wac());
    };
    const auto redis = sparsity_of("redis");
    const auto mcf = sparsity_of("mcf_r");
    // P(<= 16 words): high for Redis, low for mcf.
    EXPECT_GT(redis[2], 0.6);
    EXPECT_LT(mcf[2], 0.2);
}

TEST(Integration, MigrationKeepsTierCountsBalanced)
{
    SystemConfig cfg =
        makeConfig("mcf_r", PolicyKind::M5HptDriven, kTinyScale, 3);
    TieredSystem sys(cfg);
    sys.run(500'000);
    const auto &pt = sys.pageTable();
    const auto ddr_frames = sys.memory().tier(kNodeDdr).framesTotal();
    EXPECT_LE(pt.pagesOnNode(kNodeDdr), ddr_frames);
    EXPECT_EQ(pt.pagesOnNode(kNodeDdr) + pt.pagesOnNode(kNodeCxl),
              pt.numPages());
}

TEST(Integration, HintFaultPathWorksEndToEnd)
{
    const RunResult anb = runTiny("mcf_r", PolicyKind::Anb);
    EXPECT_GT(anb.tlb.shootdowns, 0u);
    EXPECT_GT(anb.migration.promoted, 0u);
    EXPECT_GT(anb.kernel_time, 0u);
}

TEST(Integration, DamonConvergesAndPromotes)
{
    const RunResult damon = runTiny("mcf_r", PolicyKind::Damon, 1'500'000);
    EXPECT_GT(damon.migration.promoted, 0u);
    EXPECT_GT(damon.hot_pages.size(), 0u);
}

TEST(Integration, IdentificationOverheadOrdering)
{
    // §4.2: CPU-driven identification costs far more kernel cycles than
    // M5's manager.
    const RunResult anb =
        runTiny("mcf_r", PolicyKind::Anb, 600'000, true);
    const RunResult m5 =
        runTiny("mcf_r", PolicyKind::M5HptOnly, 600'000, true);
    EXPECT_GT(anb.kernel_ident_cycles, m5.kernel_ident_cycles);
}

TEST(Integration, BandwidthProportionalToPlacementOnUniform)
{
    // §5.2 validation: with random placement and no migration, the
    // bw(DDR)/bw(CXL) ratio tracks nr_pages(DDR)/nr_pages(CXL).
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::None,
                                  kTinyScale, 13);
    cfg.initial_ddr_fraction = 1.0 / 3.0; // ratio 1:2.
    TieredSystem sys(cfg);
    const RunResult r = sys.run(500'000);
    const double bw_ratio = static_cast<double>(r.steady_ddr_read_bytes) /
                            static_cast<double>(r.steady_cxl_read_bytes);
    const double page_ratio =
        static_cast<double>(sys.pageTable().pagesOnNode(kNodeDdr)) /
        static_cast<double>(sys.pageTable().pagesOnNode(kNodeCxl));
    EXPECT_NEAR(bw_ratio, page_ratio, page_ratio * 0.25);
}

TEST(Integration, DemotionBeginsOnlyWhenDdrFull)
{
    SystemConfig cfg =
        makeConfig("mcf_r", PolicyKind::M5HptOnly, kTinyScale, 17);
    TieredSystem sys(cfg);
    const RunResult r = sys.run(600'000);
    if (r.migration.demoted > 0) {
        // Any demotion implies DDR reached capacity at some point.
        EXPECT_GE(r.migration.promoted,
                  sys.memory().tier(kNodeDdr).framesTotal());
    }
}

TEST(Integration, StableWorkloadReachesMigrationEquilibrium)
{
    // Once DDR holds the hot set of a static workload, churn should be a
    // small fraction of total migrations.
    SystemConfig cfg =
        makeConfig("mcf_r", PolicyKind::M5HptOnly, kTinyScale, 19);
    TieredSystem sys(cfg);
    const RunResult half = sys.run(500'000);
    const auto mid = half.migration.promoted;
    const RunResult full = sys.run(500'000);
    const auto late = full.migration.promoted - mid;
    EXPECT_LT(late, std::max<std::uint64_t>(mid, 1));
}

TEST(Integration, MultiInstanceScalingDegradesTrackerAccuracy)
{
    // Figure 11's mechanism: more co-running processes -> higher address
    // cardinality -> more CM-Sketch collisions -> lower top-K quality.
    auto ratio_for = [](std::size_t instances) {
        SystemConfig cfg =
            makeConfig("mcf_r", PolicyKind::M5HptOnly, kTinyScale, 23);
        cfg.instances = instances;
        cfg.record_only = true;
        cfg.hpt_cfg.entries = 512; // Small sketch to provoke collisions.
        TieredSystem sys(cfg);
        const RunResult r = sys.run(600'000);
        return accessCountRatio(sys.pac(), r.hot_pages);
    };
    const double one = ratio_for(1);
    const double eight = ratio_for(8);
    EXPECT_GE(one, eight * 0.95); // Graceful, monotone-ish degradation.
}

TEST(Integration, RuntimeEqualsAppPlusKernel)
{
    for (auto policy : {PolicyKind::None, PolicyKind::Anb,
                        PolicyKind::Damon, PolicyKind::M5HptDriven}) {
        const RunResult r = runTiny("mcf_r", policy, 300'000);
        EXPECT_EQ(r.runtime, r.app_time + r.kernel_time)
            << policyKindName(policy);
    }
}

} // namespace
} // namespace m5
