/**
 * @file
 * Tests for the analytical area/power model: Table 4 reproduction within
 * tolerance, feasibility rules, and scaling properties.
 */

#include <gtest/gtest.h>

#include "hwmodel/area_power.hh"

namespace m5 {
namespace {

/** One Table 4 row. */
struct Table4Row
{
    std::uint64_t n;
    double ss_area;
    double cm_area;
    double ss_power;
    double cm_power;
};

// The paper's Table 4 (blank Space-Saving cells marked with -1).
const Table4Row kTable4[] = {
    {50, 3'649, 1'899, 0.7, 2.0},
    {100, 7'323, 2'134, 1.3, 2.2},
    {512, 36'374, 2'878, 6.4, 2.7},
    {1024, 89'369, 3'714, 15.0, 3.2},
    {2048, 179'625, 5'346, 29.9, 3.9},
    {8192, -1, 13'509, -1, 7.9},
    {32768, -1, 46'930, -1, 23.2},
    {131072, -1, 180'530, -1, 83.8},
};

class Table4Fit : public ::testing::TestWithParam<Table4Row>
{
};

TEST_P(Table4Fit, SpaceSavingAreaWithin20Pct)
{
    const auto &row = GetParam();
    if (row.ss_area < 0)
        return;
    const auto est =
        estimateTracker(TrackerKind::SpaceSavingTopK, row.n);
    EXPECT_NEAR(est.area_um2, row.ss_area, row.ss_area * 0.20)
        << "N=" << row.n;
}

TEST_P(Table4Fit, SpaceSavingPowerWithin20Pct)
{
    const auto &row = GetParam();
    if (row.ss_power < 0)
        return;
    const auto est =
        estimateTracker(TrackerKind::SpaceSavingTopK, row.n);
    EXPECT_NEAR(est.power_mw, row.ss_power, row.ss_power * 0.20)
        << "N=" << row.n;
}

TEST_P(Table4Fit, CmSketchAreaWithin15Pct)
{
    const auto &row = GetParam();
    const auto est = estimateTracker(TrackerKind::CmSketchTopK, row.n);
    EXPECT_NEAR(est.area_um2, row.cm_area, row.cm_area * 0.15)
        << "N=" << row.n;
}

TEST_P(Table4Fit, CmSketchPowerWithin15Pct)
{
    const auto &row = GetParam();
    const auto est = estimateTracker(TrackerKind::CmSketchTopK, row.n);
    EXPECT_NEAR(est.power_mw, row.cm_power, row.cm_power * 0.15)
        << "N=" << row.n;
}

INSTANTIATE_TEST_SUITE_P(
    Rows, Table4Fit, ::testing::ValuesIn(kTable4),
    [](const ::testing::TestParamInfo<Table4Row> &row_info) {
        return "N" + std::to_string(row_info.param.n);
    });

TEST(HwModel, SpaceSavingAt2KCostsRoughly33xAreaOfCmSketch)
{
    // §7.1: "the Space-Saving top-K tracker consumes 33.6x and 7.6x more
    // chip space and power than the CM-Sketch top-K tracker" at N = 2K.
    const auto ss = estimateTracker(TrackerKind::SpaceSavingTopK, 2048);
    const auto cm = estimateTracker(TrackerKind::CmSketchTopK, 2048);
    EXPECT_NEAR(ss.area_um2 / cm.area_um2, 33.6, 33.6 * 0.2);
    EXPECT_NEAR(ss.power_mw / cm.power_mw, 7.6, 7.6 * 0.2);
}

TEST(HwModel, FpgaFeasibilityLimits)
{
    EXPECT_EQ(fpgaMaxEntries(TrackerKind::SpaceSavingTopK), 50u);
    EXPECT_EQ(fpgaMaxEntries(TrackerKind::CmSketchTopK), 128u * 1024u);
    EXPECT_TRUE(
        estimateTracker(TrackerKind::SpaceSavingTopK, 50).fpga_feasible);
    EXPECT_FALSE(
        estimateTracker(TrackerKind::SpaceSavingTopK, 51).fpga_feasible);
    EXPECT_TRUE(estimateTracker(TrackerKind::CmSketchTopK, 128 * 1024)
                    .fpga_feasible);
}

TEST(HwModel, AsicFeasibilityLimits)
{
    EXPECT_EQ(asicMaxEntries(TrackerKind::SpaceSavingTopK), 2048u);
    EXPECT_TRUE(
        estimateTracker(TrackerKind::SpaceSavingTopK, 2048).asic_feasible);
    EXPECT_FALSE(
        estimateTracker(TrackerKind::SpaceSavingTopK, 4096).asic_feasible);
}

TEST(HwModel, AreaMonotoneInEntries)
{
    for (auto kind :
         {TrackerKind::SpaceSavingTopK, TrackerKind::CmSketchTopK}) {
        double prev = 0.0;
        for (std::uint64_t n = 32; n <= 8192; n *= 2) {
            const auto est = estimateTracker(kind, n);
            EXPECT_GT(est.area_um2, prev);
            prev = est.area_um2;
        }
    }
}

TEST(HwModel, LargerKCostsMoreForCmSketch)
{
    const auto k5 = estimateTracker(TrackerKind::CmSketchTopK, 1024, 5);
    const auto k64 = estimateTracker(TrackerKind::CmSketchTopK, 1024, 64);
    EXPECT_GT(k64.area_um2, k5.area_um2);
    EXPECT_GT(k64.power_mw, k5.power_mw);
}

TEST(HwModel, NarrowerCountersShrinkArea)
{
    const auto b16 =
        estimateTracker(TrackerKind::CmSketchTopK, 32768, 5, 16);
    const auto b8 =
        estimateTracker(TrackerKind::CmSketchTopK, 32768, 5, 8);
    EXPECT_LT(b8.area_um2, b16.area_um2);
}

TEST(HwModel, TrackerChipSpaceTinyVsDram)
{
    // §8: 32K entries account for ~0.01% of an 8GB module's die area.
    // 8GB of DRAM at ~0.002 um^2/bit -> ~1.4e8 um^2 of cell area alone.
    const auto est = estimateTracker(TrackerKind::CmSketchTopK, 32768);
    EXPECT_LT(est.area_um2 / 1.4e8, 1e-3);
}

} // namespace
} // namespace m5
