/**
 * @file
 * Tests for the host-side profiler (src/telemetry/prof): nested-scope
 * self/total accounting under a deterministic test clock, the pinned
 * .prof.json and collapsed-stack export formats, and the end-to-end
 * guarantees — a disabled profiler constructs nothing and changes no
 * result or telemetry byte, call counts and scope paths are identical
 * across reruns, and an M5_BENCH_PROF sweep writes one artifact pair
 * per cell whatever the worker count (docs/PROFILING.md).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "telemetry/prof.hh"

namespace m5 {
namespace {

namespace fs = std::filesystem;

/** setenv/unsetenv wrapper that restores the old value on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_ = false;
};

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = fs::temp_directory_path() /
                ("m5_prof_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Config whose clock advances 10 ns per read: every enter/exit
 *  timestamp is deterministic, so self/total values are exact.  The
 *  counter lives in the closure, so each Profiler starts at zero. */
ProfConfig
fakeClockConfig()
{
    ProfConfig cfg;
    cfg.collect = true;
    cfg.clock = [t = std::uint64_t(0)]() mutable { return t += 10; };
    return cfg;
}

const ProfEntry &
entryAt(const std::vector<ProfEntry> &entries, const std::string &path)
{
    const auto it =
        std::find_if(entries.begin(), entries.end(),
                     [&](const ProfEntry &e) { return e.path == path; });
    EXPECT_NE(it, entries.end()) << "missing scope " << path;
    return *it;
}

SystemConfig
smallConfig()
{
    return makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, 1);
}

// ---------------------------------------------------------------------
// Scope accounting under a deterministic clock
// ---------------------------------------------------------------------

TEST(ProfAccountingTest, NestedScopesSplitSelfAndTotal)
{
    Profiler prof(fakeClockConfig());
    {
        const ProfBinding binding(&prof);
        PROF_SCOPE("outer");              // enter: t=10
        {
            PROF_SCOPE("inner");          // enter: t=20
        }                                 // exit:  t=30
        PROF_MARK("epoch");
    }                                     // outer exit: t=40

    const auto entries = prof.entries();
    ASSERT_EQ(entries.size(), 3u);

    const ProfEntry &outer = entryAt(entries, "outer");
    EXPECT_EQ(outer.depth, 0u);
    EXPECT_EQ(outer.total_ns, 30u);  // 40 - 10
    EXPECT_EQ(outer.self_ns, 20u);   // minus inner's 10
    EXPECT_EQ(outer.calls, 1u);

    const ProfEntry &inner = entryAt(entries, "outer;inner");
    EXPECT_EQ(inner.depth, 1u);
    EXPECT_EQ(inner.total_ns, 10u);
    EXPECT_EQ(inner.self_ns, 10u);
    EXPECT_EQ(inner.calls, 1u);

    // Marks count occurrences but never read the clock.
    const ProfEntry &mark = entryAt(entries, "outer;epoch");
    EXPECT_EQ(mark.calls, 1u);
    EXPECT_EQ(mark.total_ns, 0u);

    EXPECT_EQ(prof.wallNs(), 30u);
    EXPECT_EQ(prof.scopeCount(), 3u);
}

TEST(ProfAccountingTest, RepeatedScopesAccumulateAndRollupSorts)
{
    Profiler prof(fakeClockConfig());
    {
        const ProfBinding binding(&prof);
        for (int i = 0; i < 3; ++i) {
            PROF_SCOPE("hot");            // 10 ns each pass
        }
    }

    const auto top = prof.rollup(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].path, "hot");
    EXPECT_EQ(top[0].calls, 3u);
    EXPECT_EQ(top[0].self_ns, 30u);
}

TEST(ProfAccountingTest, MacrosAreInertWithoutABinding)
{
    // No ProfBinding on this thread: scopes and marks must do nothing.
    EXPECT_EQ(profCurrent(), nullptr);
    PROF_SCOPE("ignored");
    PROF_MARK("ignored.too");
    EXPECT_EQ(profCurrent(), nullptr);
}

// ---------------------------------------------------------------------
// Export format pins (docs/PROFILING.md)
// ---------------------------------------------------------------------

TEST(ProfExportTest, JsonAndFoldedMatchThePinnedFormats)
{
    Profiler prof(fakeClockConfig());
    {
        const ProfBinding binding(&prof);
        PROF_SCOPE("a");                  // t=10
        {
            PROF_SCOPE("b");              // t=20..30
        }
    }                                     // t=40

    std::ostringstream json;
    prof.exportJson(json);
    EXPECT_EQ(json.str(),
              "{\n"
              "  \"version\": 1,\n"
              "  \"wall_ns\": 30,\n"
              "  \"scopes\": 2,\n"
              "  \"nodes\": [\n"
              "    {\"path\": \"a\", \"depth\": 0, \"self_ns\": 20, "
              "\"total_ns\": 30, \"calls\": 1},\n"
              "    {\"path\": \"a;b\", \"depth\": 1, \"self_ns\": 10, "
              "\"total_ns\": 10, \"calls\": 1}\n"
              "  ]\n"
              "}\n");

    std::ostringstream folded;
    prof.exportFolded(folded);
    EXPECT_EQ(folded.str(),
              "a 20\n"
              "a;b 10\n");
}

TEST(ProfExportTest, SaveWritesTheArtifactPair)
{
    TempDir dir("save");
    ProfConfig cfg = fakeClockConfig();
    cfg.base = (dir.path() / "cell").string();
    Profiler prof(std::move(cfg));
    {
        const ProfBinding binding(&prof);
        PROF_SCOPE("sim.run");
    }
    prof.save();
    const std::string json = slurp(dir.path() / "cell.prof.json");
    const std::string folded = slurp(dir.path() / "cell.folded");
    EXPECT_NE(json.find("\"path\": \"sim.run\""), std::string::npos);
    EXPECT_EQ(folded, "sim.run 10\n");
}

// ---------------------------------------------------------------------
// End-to-end: observation must not perturb the simulation
// ---------------------------------------------------------------------

TEST(ProfSystemTest, DisabledProfilerConstructsNothingAndChangesNothing)
{
    TempDir dir("inert");
    RunResult plain, profiled;
    {
        SystemConfig cfg = smallConfig();
        cfg.telemetry.path = (dir.path() / "plain.jsonl").string();
        cfg.trace.path = (dir.path() / "plain.trace.json").string();
        TieredSystem sys(cfg);
        plain = sys.run(20000);
        EXPECT_EQ(sys.profiler(), nullptr);
    }
    {
        SystemConfig cfg = smallConfig();
        cfg.telemetry.path = (dir.path() / "prof.jsonl").string();
        cfg.trace.path = (dir.path() / "prof.trace.json").string();
        cfg.prof.base = (dir.path() / "prof").string();
        TieredSystem sys(cfg);
        profiled = sys.run(20000);
        ASSERT_NE(sys.profiler(), nullptr);
        EXPECT_GT(sys.profiler()->scopeCount(), 0u);
    }
    // Simulated results are identical: host-time observation never
    // leaks into the Tick domain.
    EXPECT_EQ(plain.runtime, profiled.runtime);
    EXPECT_EQ(plain.accesses, profiled.accesses);
    EXPECT_EQ(plain.migration.promoted, profiled.migration.promoted);
    EXPECT_EQ(plain.migration.demoted, profiled.migration.demoted);
    EXPECT_EQ(plain.llc.hits, profiled.llc.hits);
    EXPECT_EQ(plain.llc.misses, profiled.llc.misses);
    EXPECT_EQ(plain.steady_ddr_read_bytes, profiled.steady_ddr_read_bytes);

    // The profiler registers no stats and emits no trace events, so
    // telemetry and trace artifacts are byte-identical either way —
    // the profile artifacts are the only new files.
    EXPECT_EQ(slurp(dir.path() / "plain.jsonl"),
              slurp(dir.path() / "prof.jsonl"));
    EXPECT_EQ(slurp(dir.path() / "plain.trace.json"),
              slurp(dir.path() / "prof.trace.json"));
    EXPECT_TRUE(fs::exists(dir.path() / "prof.prof.json"));
    EXPECT_TRUE(fs::exists(dir.path() / "prof.folded"));
}

/** path -> calls of every scope, the deterministic profile columns. */
std::vector<std::pair<std::string, std::uint64_t>>
callCounts(const Profiler &prof)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const ProfEntry &e : prof.entries())
        out.emplace_back(e.path, e.calls);
    return out;
}

TEST(ProfSystemTest, CallCountsAndPathsAreRerunIdentical)
{
    TempDir dir("rerun");
    auto once = [&](const char *name) {
        SystemConfig cfg = smallConfig();
        // Telemetry on, so the per-epoch PROF_MARK fires too.
        cfg.telemetry.path = (dir.path() / name).string();
        cfg.prof.collect = true;
        TieredSystem sys(cfg);
        sys.run(20000);
        return callCounts(*sys.profiler());
    };
    const auto a = once("a.jsonl");
    const auto b = once("b.jsonl");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    // The annotated pipeline shows up under the run root.
    std::vector<std::string> paths;
    for (const auto &[path, calls] : a)
        paths.push_back(path);
    for (const char *want :
         {"sim.run", "sim.run;sim.access",
          "sim.run;sim.events.run;sim.events.dispatch",
          // The telemetry epoch marker fires inside the event queue's
          // dispatch scope, so it nests under it.
          "sim.run;sim.events.run;sim.events.dispatch;"
          "sim.telemetry.epoch"}) {
        EXPECT_NE(std::find(paths.begin(), paths.end(), want), paths.end())
            << "missing scope " << want;
    }
    const auto has_wake =
        std::find_if(paths.begin(), paths.end(), [](const std::string &p) {
            return p.find("m5.manager.wake") != std::string::npos;
        });
    EXPECT_NE(has_wake, paths.end());
}

// ---------------------------------------------------------------------
// Sweep integration: one artifact pair per cell, any worker count
// ---------------------------------------------------------------------

/** The deterministic columns of a .prof.json: every line's path and
 *  calls fields, in file order. */
std::string
deterministicColumns(const fs::path &p)
{
    std::istringstream in(slurp(p));
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        const auto path_pos = line.find("\"path\": \"");
        if (path_pos == std::string::npos)
            continue;
        const auto calls_pos = line.find("\"calls\": ");
        out << line.substr(path_pos, line.find('"', path_pos + 9) -
                                         path_pos + 1)
            << " " << line.substr(calls_pos) << "\n";
    }
    return out.str();
}

TEST(ProfRunnerTest, WorkerCountDoesNotChangeArtifactSetOrCallCounts)
{
    TempDir dir1("sweep1");
    TempDir dir4("sweep4");
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .policies({PolicyKind::M5HptDriven, PolicyKind::Anb})
        .seeds(2)
        .scale(1.0 / 128.0)
        .budgetOverride(20000);
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 4u);

    auto sweep = [&](const TempDir &dir, unsigned workers) {
        ScopedEnv prof_env("M5_BENCH_PROF", dir.path().c_str());
        RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = 0;
        ExperimentRunner runner(opts);
        for (const auto &outcome : runner.run(jobs))
            EXPECT_TRUE(outcome.ok) << outcome.error;
    };
    sweep(dir1, 1);
    sweep(dir4, 4);

    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir1.path()))
        names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    // One .prof.json + one .folded per cell.
    ASSERT_EQ(names.size(), 2 * jobs.size());

    for (const auto &name : names) {
        ASSERT_TRUE(fs::exists(dir4.path() / name))
            << name << " missing from the 4-worker sweep";
        if (name.find(".prof.json") == std::string::npos)
            continue;
        // Host nanoseconds differ run to run; the scope tree and its
        // call counts must not.
        EXPECT_EQ(deterministicColumns(dir1.path() / name),
                  deterministicColumns(dir4.path() / name))
            << name << " columns differ between 1 and 4 workers";
        EXPECT_NE(slurp(dir1.path() / name).find("sim.run"),
                  std::string::npos);
    }
}

} // namespace
} // namespace m5
