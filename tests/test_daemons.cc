/**
 * @file
 * Unit tests for the CPU-driven page-migration daemons (ANB and DAMON)
 * against a small hand-built system.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "mem/memsys.hh"
#include "os/anb.hh"
#include "os/damon.hh"
#include "os/frame_alloc.hh"
#include "os/migration.hh"

namespace m5 {
namespace {

/** A 64-page workload, all pages initially in CXL. */
class DaemonTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kPages = 64;

    DaemonTest()
    {
        TieredMemoryParams p;
        p.ddr_bytes = 16 * kPageBytes;
        p.cxl_bytes = 128 * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(kPages);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(kPages, topo->numTiers());
        mglru = &lrus->top();
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        for (Vpn v = 0; v < kPages; ++v)
            pt->map(v, *alloc->allocate(kNodeCxl), kNodeCxl);
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    MgLru *mglru = nullptr;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
};

TEST_F(DaemonTest, AnbScanClearsPresentBits)
{
    AnbConfig cfg;
    cfg.scan_chunk_pages = 16;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    const Tick busy = anb.wake(anb.nextWake());
    EXPECT_GT(busy, 0u);
    std::size_t cleared = 0;
    for (Vpn v = 0; v < kPages; ++v)
        cleared += !pt->pte(v).present;
    EXPECT_EQ(cleared, 16u);
    EXPECT_EQ(anb.pagesUnmapped(), 16u);
    EXPECT_GT(ledger.category(KernelWork::PteScan), 0u);
}

TEST_F(DaemonTest, AnbScanSkipsDdrPages)
{
    (void)engine->promote(0, 0); // vpn 0 now in DDR.
    AnbConfig cfg;
    cfg.scan_chunk_pages = kPages;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    anb.wake(anb.nextWake());
    EXPECT_TRUE(pt->pte(0).present);
    EXPECT_EQ(anb.pagesUnmapped(), kPages - 1);
}

TEST_F(DaemonTest, AnbHintFaultIdentifiesAndPromotes)
{
    AnbConfig cfg;
    cfg.fault_threshold = 1;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    anb.wake(anb.nextWake()); // Unmap pass.
    ASSERT_FALSE(pt->pte(0).present);
    pt->pte(0).present = true; // The fault handler's remap.
    const Tick busy = anb.onHintFault(0, msToTicks(1.0));
    EXPECT_GT(busy, 0u);
    EXPECT_EQ(anb.faultsHandled(), 1u);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    ASSERT_EQ(anb.hotPages().size(), 1u);
}

TEST_F(DaemonTest, AnbRecordOnlyDoesNotMigrate)
{
    AnbConfig cfg;
    cfg.fault_threshold = 1;
    cfg.migrate = false;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    anb.wake(anb.nextWake());
    pt->pte(0).present = true;
    anb.onHintFault(0, msToTicks(1.0));
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
    EXPECT_EQ(anb.hotPages().size(), 1u);
    EXPECT_EQ(engine->stats().promoted, 0u);
}

TEST_F(DaemonTest, AnbFaultThresholdTwoNeedsTwoFaults)
{
    AnbConfig cfg;
    cfg.fault_threshold = 2;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    anb.onHintFault(0, usToTicks(10.0));
    EXPECT_TRUE(anb.hotPages().pages().empty());
    anb.onHintFault(0, usToTicks(20.0));
    EXPECT_EQ(anb.hotPages().size(), 1u);
}

TEST_F(DaemonTest, AnbTokenBucketLimitsPromotions)
{
    AnbConfig cfg;
    cfg.fault_threshold = 1;
    cfg.promote_rate_pages_per_s = 1000.0; // 1 page per ms.
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    // 10 faults in the same microsecond: only ~1 token available.
    for (Vpn v = 0; v < 10; ++v)
        anb.onHintFault(v, usToTicks(1.0));
    EXPECT_LE(engine->stats().promoted, 2u);
}

TEST_F(DaemonTest, AnbPeriodBacksOffWhenQuiet)
{
    AnbConfig cfg;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    const Tick before = anb.scanPeriod();
    anb.wake(anb.nextWake()); // No faults since last scan -> back off.
    EXPECT_GT(anb.scanPeriod(), before);
}

TEST_F(DaemonTest, AnbHotListDeduplicates)
{
    AnbConfig cfg;
    cfg.fault_threshold = 1;
    cfg.migrate = false;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    anb.onHintFault(0, 1);
    anb.onHintFault(0, 2);
    EXPECT_EQ(anb.hotPages().size(), 1u);
}

TEST_F(DaemonTest, DamonInitialRegionsPartitionSpace)
{
    DamonConfig cfg;
    cfg.min_regions = 8;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    const auto &regions = damon.regions();
    ASSERT_EQ(regions.size(), 8u);
    EXPECT_EQ(regions.front().start, 0u);
    EXPECT_EQ(regions.back().end, kPages);
    for (std::size_t i = 1; i < regions.size(); ++i)
        EXPECT_EQ(regions[i].start, regions[i - 1].end);
}

TEST_F(DaemonTest, DamonSamplingCountsAccessedBits)
{
    DamonConfig cfg;
    cfg.min_regions = 4;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    // Set every accessed bit: every region's sample must hit.
    for (Vpn v = 0; v < kPages; ++v)
        pt->pte(v).accessed = true;
    damon.wake(damon.nextWake());
    std::uint32_t total = 0;
    for (const auto &r : damon.regions())
        total += r.nr_accesses;
    EXPECT_EQ(total, 4u);
}

TEST_F(DaemonTest, DamonSamplingClearsSampledBit)
{
    DamonConfig cfg;
    cfg.min_regions = 1;
    cfg.max_regions = 1; // Prevent splitting for determinism.
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    for (Vpn v = 0; v < kPages; ++v)
        pt->pte(v).accessed = true;
    damon.wake(damon.nextWake());
    std::size_t cleared = 0;
    for (Vpn v = 0; v < kPages; ++v)
        cleared += !pt->pte(v).accessed;
    EXPECT_GE(cleared, 1u); // At least the newly primed page.
}

TEST_F(DaemonTest, DamonRegionsAlwaysPartitionAfterAggregations)
{
    DamonConfig cfg;
    cfg.min_regions = 4;
    cfg.max_regions = 64;
    cfg.sample_interval = usToTicks(10.0);
    cfg.aggregation_interval = usToTicks(50.0);
    cfg.migrate = false;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    Rng rng(3);
    Tick now = damon.nextWake();
    for (int i = 0; i < 500; ++i) {
        // Random access-bit traffic.
        for (int j = 0; j < 8; ++j)
            pt->pte(rng.below(kPages)).accessed = true;
        damon.wake(now);
        now = damon.nextWake();
        // Invariant: regions exactly partition [0, kPages).
        const auto &regions = damon.regions();
        ASSERT_GE(regions.size(), 1u);
        EXPECT_EQ(regions.front().start, 0u);
        EXPECT_EQ(regions.back().end, kPages);
        for (std::size_t k = 1; k < regions.size(); ++k) {
            ASSERT_EQ(regions[k].start, regions[k - 1].end);
            ASSERT_LT(regions[k].start, regions[k].end);
        }
        EXPECT_LE(regions.size(), cfg.max_regions);
    }
}

TEST_F(DaemonTest, DamonHotRegionPromotes)
{
    DamonConfig cfg;
    cfg.min_regions = 8;
    cfg.max_regions = 8;
    cfg.sample_interval = usToTicks(10.0);
    cfg.aggregation_interval = usToTicks(100.0);
    cfg.hot_access_fraction = 0.3;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    Tick now = damon.nextWake();
    // Keep region 0's pages (vpn 0..7) permanently accessed.
    for (int i = 0; i < 60; ++i) {
        for (Vpn v = 0; v < 8; ++v)
            pt->pte(v).accessed = true;
        damon.wake(now);
        now = damon.nextWake();
    }
    EXPECT_GT(engine->stats().promoted, 0u);
    EXPECT_GT(damon.hotPages().size(), 0u);
    // Promoted pages come from the hot region.
    std::size_t on_ddr = 0;
    for (Vpn v = 0; v < 8; ++v)
        on_ddr += pt->pte(v).node == kNodeDdr;
    EXPECT_GT(on_ddr, 0u);
}

TEST_F(DaemonTest, DamonRecordOnlyDoesNotMigrate)
{
    DamonConfig cfg;
    cfg.min_regions = 8;
    cfg.max_regions = 8;
    cfg.sample_interval = usToTicks(10.0);
    cfg.aggregation_interval = usToTicks(100.0);
    cfg.hot_access_fraction = 0.3;
    cfg.migrate = false;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    Tick now = damon.nextWake();
    for (int i = 0; i < 60; ++i) {
        for (Vpn v = 0; v < 8; ++v)
            pt->pte(v).accessed = true;
        damon.wake(now);
        now = damon.nextWake();
    }
    EXPECT_EQ(engine->stats().promoted, 0u);
    EXPECT_GT(damon.hotPages().size(), 0u);
}

TEST_F(DaemonTest, DamonChargesSamplingCosts)
{
    DamonConfig cfg;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    damon.wake(damon.nextWake());
    EXPECT_GT(ledger.category(KernelWork::PteScan), 0u);
}

TEST_F(DaemonTest, DamonSamplesPerAggregation)
{
    DamonConfig cfg;
    cfg.sample_interval = msToTicks(1.0);
    cfg.aggregation_interval = msToTicks(20.0);
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    EXPECT_EQ(damon.samplesPerAggregation(), 20u);
}

TEST(HotPageList, CapacityAndDedup)
{
    HotPageList list(2);
    list.add(1);
    list.add(1);
    list.add(2);
    list.add(3); // Over capacity: dropped.
    EXPECT_EQ(list.size(), 2u);
    EXPECT_TRUE(list.full());
    EXPECT_EQ(list.pages()[0], 1u);
    EXPECT_EQ(list.pages()[1], 2u);
    list.reset();
    EXPECT_EQ(list.size(), 0u);
}

} // namespace
} // namespace m5
