/**
 * @file
 * Tests for the extension subsystems: the MMIO counter window (§3), the
 * PAC SRAM-as-cache scalability mode (§3), the PEBS/Memtis sampling
 * baseline (§2.1 Solution 3), hot huge-page aggregation (§8), and the
 * IFMM word-swap directory (§9).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "common/rng.hh"
#include "cxl/mmio.hh"
#include "cxl/pac_cache.hh"
#include "m5/hugepage.hh"
#include "mem/ifmm.hh"
#include "mem/memsys.hh"
#include "os/frame_alloc.hh"
#include "os/migration.hh"
#include "os/pebs.hh"

namespace m5 {
namespace {

// ---------------------------------------------------------------- MMIO

TEST(Mmio, ReadsThroughWindow)
{
    std::vector<std::uint64_t> counters(100);
    for (std::size_t i = 0; i < 100; ++i)
        counters[i] = i * 3;
    MmioConfig cfg;
    cfg.window_bytes = 16; // 8 counters per window.
    MmioWindow win(cfg, 100, [&](std::size_t i) { return counters[i]; });
    EXPECT_EQ(win.countersPerWindow(), 8u);
    Tick t = 0;
    EXPECT_EQ(win.read(3, t), 9u);
    EXPECT_EQ(win.read(4, t), 12u); // Same window: no switch.
    EXPECT_EQ(win.windowSwitches(), 1u);
    EXPECT_EQ(win.read(20, t), 60u); // New window.
    EXPECT_EQ(win.windowSwitches(), 2u);
    EXPECT_EQ(win.reads(), 3u);
}

TEST(Mmio, ChargesLatency)
{
    MmioConfig cfg;
    cfg.window_bytes = 16;
    cfg.read_latency = 100;
    cfg.config_write_latency = 500;
    MmioWindow win(cfg, 64, [](std::size_t) { return 0ULL; });
    Tick t = 0;
    win.read(0, t);
    EXPECT_EQ(t, 600u); // Window program + read.
    win.read(1, t);
    EXPECT_EQ(t, 700u); // Read only.
}

TEST(Mmio, ReadAllCostScalesWithCounters)
{
    MmioConfig cfg;
    cfg.window_bytes = 1 << 20;
    cfg.counter_bytes = 2;
    MmioWindow win(cfg, 1 << 16, [](std::size_t i) {
        return static_cast<std::uint64_t>(i);
    });
    std::vector<std::uint64_t> out;
    const Tick t = win.readAll(out);
    EXPECT_EQ(out.size(), std::size_t{1} << 16);
    EXPECT_EQ(out[123], 123u);
    // 64K reads at ~900ns each: tens of milliseconds — the §5.1 argument
    // for why PAC cannot serve as an online top-K mechanism.
    EXPECT_GT(t, msToTicks(10.0));
}

// ---------------------------------------------------------- PAC cache

TEST(PacCache, ExactCountsUnderEviction)
{
    PacCacheConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 4096;
    cfg.cache_entries = 64; // Tiny: force evictions.
    cfg.assoc = 4;
    PacCacheUnit pac(cfg);
    Rng rng(5);
    std::vector<std::uint64_t> exact(4096, 0);
    for (int i = 0; i < 100'000; ++i) {
        const Pfn p = rng.below(4096);
        pac.observe(pageBase(p));
        ++exact[p];
    }
    EXPECT_GT(pac.evictions(), 0u);
    for (Pfn p = 0; p < 4096; p += 37)
        EXPECT_EQ(pac.count(p), exact[p]) << "pfn " << p;
    EXPECT_EQ(pac.totalAccesses(), 100'000u);
}

TEST(PacCache, HitsDominateOnSkewedStreams)
{
    PacCacheConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 1 << 16;
    cfg.cache_entries = 1024;
    PacCacheUnit pac(cfg);
    Rng rng(5);
    for (int i = 0; i < 50'000; ++i) {
        // 90% of traffic to 256 pages: cacheable.
        const Pfn p = rng.chance(0.9) ? rng.below(256)
                                      : rng.below(1 << 16);
        pac.observe(pageBase(p));
    }
    EXPECT_GT(pac.hits(), pac.misses() * 3);
}

TEST(PacCache, TopKMatchesExact)
{
    PacCacheConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 512;
    cfg.cache_entries = 32;
    PacCacheUnit pac(cfg);
    for (Pfn p = 0; p < 10; ++p)
        for (Pfn i = 0; i <= p * 5; ++i)
            pac.observe(pageBase(p));
    auto top = pac.topK(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].tag, 9u);
    EXPECT_EQ(top[1].tag, 8u);
}

TEST(PacCache, ResetClears)
{
    PacCacheConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 64;
    cfg.cache_entries = 8;
    PacCacheUnit pac(cfg);
    pac.observe(pageBase(1));
    pac.reset();
    EXPECT_EQ(pac.count(1), 0u);
    EXPECT_EQ(pac.totalAccesses(), 0u);
}

// --------------------------------------------------------- PEBS/Memtis

class PebsTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kPages = 64;

    PebsTest()
    {
        TieredMemoryParams p;
        p.ddr_bytes = 16 * kPageBytes;
        p.cxl_bytes = 128 * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(kPages);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(kPages, topo->numTiers());
        mglru = &lrus->top();
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        for (Vpn v = 0; v < kPages; ++v)
            pt->map(v, *alloc->allocate(kNodeCxl), kNodeCxl);
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    MgLru *mglru = nullptr;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
};

TEST_F(PebsTest, SamplesOneInN)
{
    PebsConfig cfg;
    cfg.sample_period = 10;
    cfg.buffer_entries = 1000;
    MemtisDaemon memtis(cfg, *pt, ledger, *engine);
    for (int i = 0; i < 100; ++i)
        memtis.onLlcMiss(0, 0);
    EXPECT_EQ(memtis.samplesTaken(), 10u);
    EXPECT_EQ(memtis.interrupts(), 0u); // Buffer not full yet.
}

TEST_F(PebsTest, BufferFullInterruptCostsAndPromotes)
{
    PebsConfig cfg;
    cfg.sample_period = 1;
    cfg.buffer_entries = 16;
    cfg.initial_hot_threshold = 4;
    MemtisDaemon memtis(cfg, *pt, ledger, *engine);
    Tick busy_total = 0;
    for (int i = 0; i < 16; ++i)
        busy_total += memtis.onLlcMiss(3, usToTicks(100.0));
    EXPECT_EQ(memtis.interrupts(), 1u);
    EXPECT_GT(busy_total, 0u);
    // 16 samples of page 3 cross the threshold: it gets promoted.
    EXPECT_EQ(pt->pte(3).node, kNodeDdr);
    EXPECT_GE(memtis.hotPages().size(), 1u);
}

TEST_F(PebsTest, RecordOnlyDoesNotMigrate)
{
    PebsConfig cfg;
    cfg.sample_period = 1;
    cfg.buffer_entries = 8;
    cfg.initial_hot_threshold = 2;
    cfg.migrate = false;
    MemtisDaemon memtis(cfg, *pt, ledger, *engine);
    for (int i = 0; i < 64; ++i)
        memtis.onLlcMiss(3, usToTicks(100.0));
    EXPECT_EQ(pt->pte(3).node, kNodeCxl);
    EXPECT_GE(memtis.hotPages().size(), 1u);
}

TEST_F(PebsTest, CoolingHalvesEstimates)
{
    PebsConfig cfg;
    cfg.sample_period = 1;
    cfg.buffer_entries = 8;
    cfg.initial_hot_threshold = 100; // Never hot: isolate counting.
    MemtisDaemon memtis(cfg, *pt, ledger, *engine);
    for (int i = 0; i < 8; ++i)
        memtis.onLlcMiss(5, 0);
    EXPECT_EQ(memtis.estimate(5), 8u);
    memtis.wake(memtis.nextWake());
    EXPECT_EQ(memtis.estimate(5), 4u);
}

TEST_F(PebsTest, ThresholdAdaptsDownWhenHotSetSmall)
{
    PebsConfig cfg;
    cfg.initial_hot_threshold = 50;
    MemtisDaemon memtis(cfg, *pt, ledger, *engine);
    memtis.wake(memtis.nextWake());
    EXPECT_LT(memtis.hotThreshold(), 50u);
}

// ----------------------------------------------------------- hugepage

TEST(HugePage, AggregatesConstituentPages)
{
    HugePageAggregator agg;
    // Two 4KB pages of huge frame 0, one of huge frame 3.
    agg.update({{10, 100}, {20, 50}, {3 * 512 + 7, 30}});
    EXPECT_EQ(agg.count(0), 150u);
    EXPECT_EQ(agg.count(3), 30u);
    EXPECT_EQ(agg.constituentPages(0), 2u);
    auto top = agg.topHugePages(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].tag, 0u);
    EXPECT_EQ(top[0].count, 150u);
}

TEST(HugePage, OsFilterRejectsNonHugeRegions)
{
    HugePageAggregator agg(
        [](std::uint64_t frame) { return frame == 1; });
    agg.update({{0, 100}, {512 + 3, 50}});
    auto top = agg.topHugePages(10);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].tag, 1u);
}

TEST(HugePage, FrameMath)
{
    EXPECT_EQ(hugeFrameOf(0), 0u);
    EXPECT_EQ(hugeFrameOf(511), 0u);
    EXPECT_EQ(hugeFrameOf(512), 1u);
    EXPECT_EQ(kPagesPerHugePage, 512u);
}

TEST(HugePage, ResetForgets)
{
    HugePageAggregator agg;
    agg.update({{10, 100}});
    agg.reset();
    EXPECT_EQ(agg.count(0), 0u);
    EXPECT_TRUE(agg.topHugePages(5).empty());
}

// --------------------------------------------------------------- IFMM

IfmmConfig
ifmmConfig(std::uint64_t cxl_pages = 64, std::uint64_t ddr_words = 256)
{
    IfmmConfig cfg;
    cfg.cxl_base = 0;
    cfg.cxl_bytes = cxl_pages * kPageBytes;
    cfg.ddr_words = ddr_words;
    return cfg;
}

TEST(Ifmm, MissThenHit)
{
    IfmmDirectory dir(ifmmConfig());
    const auto first = dir.access(0x1000);
    EXPECT_FALSE(first.ddr_hit);
    EXPECT_GT(first.latency, 270u); // CXL + swap penalty.
    const auto second = dir.access(0x1000);
    EXPECT_TRUE(second.ddr_hit);
    EXPECT_EQ(second.latency, 100u);
}

TEST(Ifmm, ConflictingWordsEvictEachOther)
{
    IfmmConfig cfg = ifmmConfig(64, 16); // Heavy aliasing.
    IfmmDirectory dir(cfg);
    const Addr a = 0;
    const Addr b = 16 * kWordBytes; // Same slot (word 16 % 16 == 0).
    dir.access(a);
    EXPECT_TRUE(dir.access(a).ddr_hit);
    dir.access(b); // Evicts a.
    EXPECT_FALSE(dir.access(a).ddr_hit);
}

TEST(Ifmm, HitRatioHighForHotWords)
{
    IfmmDirectory dir(ifmmConfig(64, 4096));
    Rng rng(3);
    // 16 hot words take 80% of traffic.
    std::vector<Addr> hot;
    for (int i = 0; i < 16; ++i)
        hot.push_back(rng.below(64 * kPageBytes) & ~(kWordBytes - 1));
    for (int i = 0; i < 20'000; ++i) {
        const Addr a = rng.chance(0.8)
            ? hot[rng.below(16)]
            : rng.below(64 * kPageBytes) & ~(kWordBytes - 1);
        dir.access(a);
    }
    EXPECT_GT(dir.hitRatio(), 0.6);
}

TEST(Ifmm, AliasRatio)
{
    IfmmDirectory dir(ifmmConfig(64, 1024));
    EXPECT_NEAR(dir.aliasRatio(), 64.0 * 64.0 / 1024.0, 1e-9);
}

TEST(Ifmm, ResetForgetsResidency)
{
    IfmmDirectory dir(ifmmConfig());
    dir.access(0);
    dir.reset();
    EXPECT_FALSE(dir.access(0).ddr_hit);
    EXPECT_EQ(dir.hits(), 0u);
    EXPECT_EQ(dir.misses(), 1u);
}

} // namespace
} // namespace m5
