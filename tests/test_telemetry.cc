/**
 * @file
 * Tests for the observability layer (src/telemetry): registry naming
 * and collision rules, histogram bucket semantics, JSONL snapshot
 * behaviour, and the end-to-end guarantees — per-cell telemetry from a
 * parallel sweep is byte-identical between 1 and 4 workers, a fresh
 * cell starts from a zeroed registry, and the end-of-run rollup equals
 * the final JSONL line.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "telemetry/registry.hh"
#include "telemetry/snapshot.hh"

namespace m5 {
namespace {

namespace fs = std::filesystem;

/** setenv/unsetenv wrapper that restores the old value on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_ = false;
};

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = fs::temp_directory_path() /
                ("m5_telemetry_" + tag + "_" +
                 std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------
// StatRegistry
// ---------------------------------------------------------------------

TEST(StatRegistryTest, RegistersAndSamplesAllKinds)
{
    StatRegistry reg;
    std::uint64_t hits = 7;
    StatHistogram hist({10, 20});
    hist.add(5);

    reg.addCounter("a.hits", &hits);
    reg.addGauge("b.load", [] { return 0.5; });
    reg.addHistogram("c.sizes", &hist);

    EXPECT_EQ(reg.size(), 3u);
    EXPECT_TRUE(reg.has("a.hits"));
    EXPECT_FALSE(reg.has("a.misses"));
    EXPECT_EQ(reg.counter("a.hits"), 7u);

    hits = 9; // The registry reads the live tally, not a copy.
    EXPECT_EQ(reg.counter("a.hits"), 9u);

    const auto samples = reg.sample();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "a.hits");
    EXPECT_EQ(samples[0].counter, 9u);
    EXPECT_EQ(samples[1].name, "b.load");
    EXPECT_DOUBLE_EQ(samples[1].gauge, 0.5);
    EXPECT_EQ(samples[2].name, "c.sizes");
    EXPECT_EQ(samples[2].hist->total(), 1u);
}

TEST(StatRegistryTest, SampleIsSortedByName)
{
    StatRegistry reg;
    std::uint64_t v = 0;
    reg.addCounter("zz.last", &v);
    reg.addCounter("aa.first", &v);
    reg.addCounter("mm.mid", &v);
    const auto samples = reg.sample();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "aa.first");
    EXPECT_EQ(samples[1].name, "mm.mid");
    EXPECT_EQ(samples[2].name, "zz.last");
}

TEST(StatRegistryTest, NameCollisionIsFatal)
{
    FatalCaptureScope capture;
    StatRegistry reg;
    std::uint64_t v = 0;
    reg.addCounter("dup.name", &v);
    EXPECT_THROW(reg.addCounter("dup.name", &v), FatalError);
    // Cross-kind collisions are rejected too.
    EXPECT_THROW(reg.addGauge("dup.name", [] { return 0.0; }), FatalError);
}

TEST(StatRegistryTest, BadNamesAreFatal)
{
    FatalCaptureScope capture;
    StatRegistry reg;
    std::uint64_t v = 0;
    EXPECT_THROW(reg.addCounter("", &v), FatalError);
    EXPECT_THROW(reg.addCounter("Upper.Case", &v), FatalError);
    EXPECT_THROW(reg.addCounter("space name", &v), FatalError);
    EXPECT_THROW(reg.addCounter(".leading", &v), FatalError);
    EXPECT_THROW(reg.addCounter("trailing.", &v), FatalError);
    reg.addCounter("ok.kernel.pte-scan_2", &v); // dashes/underscores fine
    EXPECT_TRUE(reg.has("ok.kernel.pte-scan_2"));
}

TEST(StatRegistryTest, CounterLookupOfWrongKindIsFatal)
{
    FatalCaptureScope capture;
    StatRegistry reg;
    reg.addGauge("g.x", [] { return 1.0; });
    EXPECT_THROW(reg.counter("g.x"), FatalError);
    EXPECT_THROW(reg.counter("absent"), FatalError);
}

// ---------------------------------------------------------------------
// StatHistogram
// ---------------------------------------------------------------------

TEST(StatHistogramTest, BucketEdgesAreExclusiveUpperBounds)
{
    // Edges {1,2,4}: buckets are [0,1), [1,2), [2,4), [4,inf).
    StatHistogram h({1, 2, 4});
    h.add(0);       // bucket 0
    h.add(1);       // bucket 1
    h.add(2);       // bucket 2
    h.add(3);       // bucket 2
    h.add(4);       // overflow
    h.add(1000, 2); // overflow, weight 2
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 2u);
    EXPECT_EQ(h.counts()[3], 3u);
    EXPECT_EQ(h.total(), 7u);

    h.reset();
    for (std::uint64_t c : h.counts())
        EXPECT_EQ(c, 0u);
    EXPECT_EQ(h.total(), 0u);
}

TEST(StatHistogramTest, NonIncreasingEdgesAreFatal)
{
    FatalCaptureScope capture;
    EXPECT_THROW(StatHistogram({}), FatalError);
    EXPECT_THROW(StatHistogram({2, 2}), FatalError);
    EXPECT_THROW(StatHistogram({3, 1}), FatalError);
}

// ---------------------------------------------------------------------
// EpochSnapshotter
// ---------------------------------------------------------------------

TEST(EpochSnapshotterTest, EveryNSkipsIntermediateEpochs)
{
    TempDir dir("every");
    StatRegistry reg;
    std::uint64_t v = 0;
    reg.addCounter("x.v", &v);

    TelemetryConfig cfg;
    cfg.path = (dir.path() / "s.jsonl").string();
    cfg.every = 3;
    EpochSnapshotter snap(reg, cfg);
    for (Tick t = 1; t <= 7; ++t) {
        snap.epoch(t * 100);
        ++v;
    }
    snap.finish(800);
    // Epochs 0, 3 and 6 are sampled, plus the final line: 4 lines.
    EXPECT_EQ(snap.epochs(), 8u);
    EXPECT_EQ(snap.linesWritten(), 4u);

    const std::string text = slurp(cfg.path);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              snap.linesWritten());
    EXPECT_NE(text.find("\"epoch\":0,"), std::string::npos);
    EXPECT_NE(text.find("\"epoch\":3,"), std::string::npos);
    EXPECT_NE(text.find("\"epoch\":7,\"time_ns\":800"), std::string::npos);
    EXPECT_EQ(text.find("\"epoch\":1,"), std::string::npos);
}

TEST(EpochSnapshotterTest, RollupTableMatchesFinalSample)
{
    TempDir dir("rollup");
    StatRegistry reg;
    std::uint64_t v = 41;
    StatHistogram hist({8});
    hist.add(3);
    reg.addCounter("x.v", &v);
    reg.addGauge("x.g", [&] { return static_cast<double>(v) / 2.0; });
    reg.addHistogram("x.h", &hist);

    TelemetryConfig cfg;
    cfg.path = (dir.path() / "s.jsonl").string();
    EpochSnapshotter snap(reg, cfg);
    ++v;
    snap.finish(123);

    const TextTable table = snap.rollupTable();
    std::ostringstream os;
    table.print(os);
    const std::string rendered = os.str();
    EXPECT_NE(rendered.find("x.v"), std::string::npos);
    EXPECT_NE(rendered.find("42"), std::string::npos);
    EXPECT_NE(rendered.find("21"), std::string::npos);

    // The final JSONL line carries exactly the same formatted values.
    const std::string text = slurp(cfg.path);
    EXPECT_NE(text.find("\"x.v\":42"), std::string::npos);
    EXPECT_NE(text.find("\"x.g\":21"), std::string::npos);
    EXPECT_NE(
        text.find("\"x.h\":{\"edges\":[8],\"counts\":[1,0],\"total\":1,"
                  "\"p50\":8,\"p90\":8,\"p99\":8}"),
        std::string::npos);
}

TEST(EpochSnapshotterTest, RollupTableHasPercentileColumns)
{
    TempDir dir("rollup_pct");
    StatRegistry reg;
    StatHistogram hist({1, 2, 4, 8});
    // 60 in [0,1), 30 in [2,4), 10 in the overflow bucket: p50 = 1,
    // p90 = 4, p99 clamps to the last edge.
    hist.add(0, 60);
    hist.add(3, 30);
    hist.add(100, 10);
    std::uint64_t v = 7;
    reg.addCounter("x.v", &v);
    reg.addHistogram("x.h", &hist);

    EXPECT_EQ(hist.percentile(50.0), 1u);
    EXPECT_EQ(hist.percentile(90.0), 4u);
    EXPECT_EQ(hist.percentile(99.0), 8u);

    TelemetryConfig cfg;
    cfg.path = (dir.path() / "s.jsonl").string();
    EpochSnapshotter snap(reg, cfg);
    snap.finish(1);

    // CSV regression pin: column layout and per-kind cell contents.
    std::ostringstream csv;
    snap.rollupTable().printCsv(csv);
    const std::string expected =
        "stat,value,p50,p90,p99\n"
        "x.h,{\"edges\":[1,2,4,8],\"counts\":[60,0,30,0,10],"
        "\"total\":100,\"p50\":1,\"p90\":4,\"p99\":8},1,4,8\n"
        "x.v,7,-,-,-\n";
    EXPECT_EQ(csv.str(), expected);
}

TEST(StatHistogramTest, PercentileEdgeCases)
{
    StatHistogram empty({4});
    EXPECT_EQ(empty.percentile(99.0), 0u);

    StatHistogram h({10, 20});
    h.add(5); // Single observation: every percentile is its bucket edge.
    EXPECT_EQ(h.percentile(50.0), 10u);
    EXPECT_EQ(h.percentile(99.0), 10u);
    h.add(15, 99);
    EXPECT_EQ(h.percentile(1.0), 10u);
    EXPECT_EQ(h.percentile(50.0), 20u);
    EXPECT_EQ(h.percentile(100.0), 20u);
}

// ---------------------------------------------------------------------
// System integration
// ---------------------------------------------------------------------

SweepGrid
smallGrid()
{
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .policies({PolicyKind::M5HptDriven, PolicyKind::Anb})
        .seeds(2)
        .scale(1.0 / 128.0)
        .budgetOverride(20000);
    return grid;
}

TEST(TelemetrySystemTest, FinalJsonlLineMatchesRegistryRollup)
{
    TempDir dir("system");
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::M5HptDriven,
                                  1.0 / 128.0, 1);
    cfg.telemetry.path = (dir.path() / "run.jsonl").string();
    TieredSystem sys(cfg);
    sys.run(20000);

    ASSERT_NE(sys.telemetry(), nullptr);
    EXPECT_GT(sys.telemetry()->linesWritten(), 1u);

    // Rebuild the final line's stats object from the live registry: the
    // run is over, so the registry still holds the end-of-run values.
    std::string want = "\"stats\":{";
    bool first = true;
    for (const StatSample &s : sys.stats().sample()) {
        if (!first)
            want += ",";
        first = false;
        want += "\"" + s.name +
                "\":" + EpochSnapshotter::formatValue(s);
    }
    want += "}}";

    const std::string text = slurp(cfg.telemetry.path);
    const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
    const std::string last_line = text.substr(last_nl + 1);
    EXPECT_NE(last_line.find(want), std::string::npos)
        << "final JSONL line does not match the registry rollup";
}

TEST(TelemetrySystemTest, TelemetryDoesNotChangeResults)
{
    TempDir dir("inert");
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::M5HptDriven,
                                  1.0 / 128.0, 1);
    TieredSystem plain(cfg);
    const RunResult a = plain.run(20000);

    cfg.telemetry.path = (dir.path() / "run.jsonl").string();
    TieredSystem instrumented(cfg);
    const RunResult b = instrumented.run(20000);

    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.kernel_time, b.kernel_time);
    EXPECT_EQ(a.migration.promoted, b.migration.promoted);
    EXPECT_EQ(a.llc.misses, b.llc.misses);
}

TEST(TelemetrySystemTest, FreshCellStartsFromZeroedRegistry)
{
    // Each sweep cell constructs its own TieredSystem, so its registry
    // must start from zero — a second run of the same config writes the
    // same first line (no carry-over from a previous cell).
    TempDir dir("resetcells");
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::Anb,
                                  1.0 / 128.0, 3);

    auto firstLine = [&](const std::string &path) {
        cfg.telemetry.path = path;
        TieredSystem sys(cfg);
        sys.run(20000);
        const std::string text = slurp(path);
        return text.substr(0, text.find('\n'));
    };
    const std::string a = firstLine((dir.path() / "a.jsonl").string());
    const std::string b = firstLine((dir.path() / "b.jsonl").string());
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"epoch\":0,"), std::string::npos);
}

// ---------------------------------------------------------------------
// Runner integration: per-cell streams, 1 vs 4 workers
// ---------------------------------------------------------------------

TEST(TelemetryRunnerTest, PathForLabelFlattensSeparators)
{
    EXPECT_EQ(telemetryPathForLabel("/tmp/t", "mcf_r/m5(hpt+hwt)/s1"),
              "/tmp/t/mcf_r_m5_hpt_hwt__s1.jsonl");
    EXPECT_EQ(telemetryPathForLabel("d", "plain-label_1.x"),
              "d/plain-label_1.x.jsonl");
}

TEST(TelemetryRunnerTest, WorkerCountDoesNotChangeTelemetryBytes)
{
    TempDir dir1("sweep1");
    TempDir dir4("sweep4");
    const auto jobs = smallGrid().expand();
    ASSERT_EQ(jobs.size(), 4u);

    auto sweep = [&](const TempDir &dir, unsigned workers) {
        ScopedEnv telem("M5_BENCH_TELEMETRY", dir.path().c_str());
        RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = 0;
        ExperimentRunner runner(opts);
        for (const auto &outcome : runner.run(jobs))
            EXPECT_TRUE(outcome.ok) << outcome.error;
    };
    sweep(dir1, 1);
    sweep(dir4, 4);

    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir1.path()))
        names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    ASSERT_EQ(names.size(), jobs.size());

    for (const auto &name : names) {
        const std::string one = slurp(dir1.path() / name);
        ASSERT_TRUE(fs::exists(dir4.path() / name))
            << name << " missing from the 4-worker sweep";
        EXPECT_EQ(one, slurp(dir4.path() / name))
            << name << " differs between 1 and 4 workers";
        EXPECT_FALSE(one.empty());
    }
}

} // namespace
} // namespace m5
