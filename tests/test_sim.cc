/**
 * @file
 * Tests for the simulation core: event queue, CPU-core time accounting,
 * and the assembled TieredSystem (small, fast configurations).
 */

#include <gtest/gtest.h>

#include <limits>

#include "sim/engine.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(20, [&](Tick) { order.push_back(2); return 0; });
    q.schedule(10, [&](Tick) { order.push_back(1); return 0; });
    q.schedule(30, [&](Tick) { order.push_back(3); return 0; });
    Tick now = 25;
    q.runDue(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(q.nextTime(), 30u);
}

TEST(EventQueueTest, BusyTimeAdvancesClock)
{
    EventQueue q;
    q.schedule(10, [](Tick) { return Tick{5}; });
    Tick now = 10;
    const Tick busy = q.runDue(now);
    EXPECT_EQ(busy, 5u);
    EXPECT_EQ(now, 15u);
}

TEST(EventQueueTest, SelfRescheduling)
{
    // A periodic event reschedules itself at absolute times, the way the
    // policy-daemon tick does via nextWake().
    EventQueue q;
    int fires = 0;
    std::function<Tick(Tick)> tick = [&](Tick) -> Tick {
        ++fires;
        if (fires < 3)
            q.schedule(static_cast<Tick>(fires) * 10, tick);
        return 0;
    };
    q.schedule(0, tick);
    Tick now = 100;
    q.runDue(now);
    EXPECT_EQ(fires, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TieBreakByScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&](Tick) { order.push_back(1); return 0; });
    q.schedule(10, [&](Tick) { order.push_back(2); return 0; });
    Tick now = 10;
    q.runDue(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
}

TEST(EventQueueTest, TieBreakStableAcrossMany)
{
    // The seq counter keeps equal-time events in FIFO order no matter
    // how many pile up at one instant (heap order alone would not).
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 32; ++i)
        q.schedule(10, [&order, i](Tick) {
            order.push_back(i);
            return 0;
        });
    Tick now = 10;
    q.runDue(now);
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NextTimeOnEmptyIsTickMax)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTime(), std::numeric_limits<Tick>::max());

    // And it recovers after draining.
    q.schedule(5, [](Tick) { return 0; });
    EXPECT_EQ(q.nextTime(), 5u);
    Tick now = 5;
    q.runDue(now);
    EXPECT_EQ(q.nextTime(), std::numeric_limits<Tick>::max());
}

TEST(EventQueueTest, ScheduleAtNowFromInsideRunDue)
{
    // An event scheduled *at the current time* from inside a handler
    // must still run within the same runDue sweep, after the handler
    // that scheduled it (FIFO among equal times).
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&](Tick now) {
        order.push_back(1);
        q.schedule(now, [&](Tick) {
            order.push_back(2);
            return 0;
        });
        return 0;
    });
    Tick now = 10;
    q.runDue(now);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, BusyTimePullsLaterEventsIntoWindow)
{
    // An event's busy time advances `now`; an event due inside that
    // extension becomes due and runs in the same sweep.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&](Tick) { order.push_back(1); return Tick{8}; });
    q.schedule(15, [&](Tick) { order.push_back(2); return Tick{0}; });
    Tick now = 10;
    const Tick busy = q.runDue(now);
    EXPECT_EQ(busy, 8u);
    EXPECT_EQ(now, 18u);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 2);
}

TEST(CpuCoreTest, SplitsAppAndKernelTime)
{
    CpuCore core(0);
    core.advanceApp(100);
    core.advanceKernel(30);
    EXPECT_EQ(core.now(), 130u);
    EXPECT_EQ(core.appTime(), 100u);
    EXPECT_EQ(core.kernelTime(), 30u);
}

TEST(CpuCoreTest, SyncToAttributesDelta)
{
    CpuCore core(0);
    core.syncTo(50, true);
    EXPECT_EQ(core.kernelTime(), 50u);
    core.syncTo(40, true); // Backwards: ignored.
    EXPECT_EQ(core.now(), 50u);
}

TEST(CpuCoreTest, RequestGrouping)
{
    CpuCore core(4);
    for (int r = 0; r < 10; ++r) {
        for (int a = 0; a < 4; ++a) {
            core.advanceApp(25);
            core.onAccessRetired();
        }
    }
    EXPECT_EQ(core.requestLatencies().count(), 10u);
    EXPECT_NEAR(core.requestLatencies().percentile(50), 100.0, 26.0);
}

TEST(CpuCoreTest, BeginMeasurementDropsWarmupRequests)
{
    CpuCore core(2);
    core.advanceApp(10);
    core.onAccessRetired();
    core.onAccessRetired();
    EXPECT_EQ(core.requestLatencies().count(), 1u);
    core.beginMeasurement();
    EXPECT_EQ(core.requestLatencies().count(), 0u);
    EXPECT_EQ(core.measureStart(), core.now());
}

/** A tiny, fast system configuration. */
SystemConfig
tinyConfig(PolicyKind policy)
{
    SystemConfig cfg = makeConfig("mcf_r", policy, 1.0 / 256.0, 42);
    return cfg;
}

TEST(TieredSystemTest, ConstructsAllPagesInCxl)
{
    TieredSystem sys(tinyConfig(PolicyKind::None));
    const auto pages = sys.pageTable().numPages();
    EXPECT_EQ(sys.pageTable().pagesOnNode(kNodeCxl), pages);
    EXPECT_EQ(sys.pageTable().pagesOnNode(kNodeDdr), 0u);
}

TEST(TieredSystemTest, DdrCapacityIsThreeEighths)
{
    TieredSystem sys(tinyConfig(PolicyKind::None));
    const double frac =
        static_cast<double>(sys.memory().tier(kNodeDdr).framesTotal()) /
        static_cast<double>(sys.pageTable().numPages());
    EXPECT_NEAR(frac, 3.0 / 8.0, 0.01);
}

TEST(TieredSystemTest, InitialDdrFractionPlacesPages)
{
    SystemConfig cfg = tinyConfig(PolicyKind::None);
    cfg.initial_ddr_fraction = 0.25;
    TieredSystem sys(cfg);
    const double frac =
        static_cast<double>(sys.pageTable().pagesOnNode(kNodeDdr)) /
        static_cast<double>(sys.pageTable().numPages());
    EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(TieredSystemTest, RunProducesConsistentResult)
{
    TieredSystem sys(tinyConfig(PolicyKind::None));
    const RunResult r = sys.run(100'000);
    EXPECT_EQ(r.accesses, 100'000u);
    EXPECT_GT(r.runtime, 0u);
    EXPECT_GT(r.throughput, 0.0);
    EXPECT_EQ(r.runtime, r.app_time + r.kernel_time);
    EXPECT_EQ(r.llc.hits + r.llc.misses, 100'000u);
    EXPECT_EQ(r.migration.promoted, 0u);
}

TEST(TieredSystemTest, PacSeesEveryCxlAccess)
{
    TieredSystem sys(tinyConfig(PolicyKind::None));
    sys.run(50'000);
    // With no migration, every post-LLC access (fills + writebacks) hits
    // CXL and must be counted by PAC.
    const auto &cxl = sys.memory().tier(kNodeCxl).counters();
    EXPECT_EQ(sys.pac().totalAccesses(), cxl.accesses);
    EXPECT_GT(sys.pac().totalAccesses(), 0u);
}

TEST(TieredSystemTest, DeterministicAcrossRuns)
{
    auto run_once = [] {
        TieredSystem sys(tinyConfig(PolicyKind::M5HptDriven));
        return sys.run(80'000);
    };
    const RunResult a = run_once();
    const RunResult b = run_once();
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.migration.promoted, b.migration.promoted);
    EXPECT_EQ(a.cxl_read_bytes, b.cxl_read_bytes);
}

TEST(TieredSystemTest, M5MigratesAndFillsDdr)
{
    TieredSystem sys(tinyConfig(PolicyKind::M5HptDriven));
    const RunResult r = sys.run(400'000);
    EXPECT_GT(r.migration.promoted, 0u);
    // DDR should be (nearly) full at the end.
    const auto ddr_frames = sys.memory().tier(kNodeDdr).framesTotal();
    EXPECT_GT(sys.pageTable().pagesOnNode(kNodeDdr), ddr_frames * 3 / 4);
}

TEST(TieredSystemTest, PageTableAllocatorConsistency)
{
    TieredSystem sys(tinyConfig(PolicyKind::M5HptDriven));
    sys.run(200'000);
    // Every VPN maps to a frame owned by its recorded node.
    auto &pt = sys.pageTable();
    for (Vpn v = 0; v < pt.numPages(); ++v) {
        const Pte &e = pt.pte(v);
        ASSERT_TRUE(e.valid);
        EXPECT_TRUE(sys.memory().tier(e.node).owns(pageBase(e.pfn)))
            << "vpn " << v;
        EXPECT_EQ(pt.vpnOfPfn(e.pfn), v);
    }
}

TEST(TieredSystemTest, RecordOnlyCollectsWithoutMigrating)
{
    SystemConfig cfg = tinyConfig(PolicyKind::Anb);
    cfg.record_only = true;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(400'000);
    EXPECT_EQ(r.migration.promoted, 0u);
    EXPECT_GT(r.hot_pages.size(), 0u);
}

TEST(TieredSystemTest, AnbChargesIdentificationCycles)
{
    SystemConfig cfg = tinyConfig(PolicyKind::Anb);
    cfg.record_only = true;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(300'000);
    EXPECT_GT(r.kernel_ident_cycles, 0u);
    EXPECT_GT(r.baseline_cycles, 0u);
}

TEST(TieredSystemTest, WacCollectsSparsity)
{
    SystemConfig cfg = makeConfig("redis", PolicyKind::None,
                                  1.0 / 256.0, 7);
    cfg.enable_wac = true;
    TieredSystem sys(cfg);
    sys.run(200'000);
    const auto pages = sys.wac().pagesWithUniqueWords();
    EXPECT_GT(pages.size(), 100u);
}

TEST(TieredSystemTest, TraceRecordsCacheFilteredStream)
{
    SystemConfig cfg = tinyConfig(PolicyKind::None);
    cfg.record_trace = true;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(50'000);
    EXPECT_EQ(sys.trace().size(), r.llc.misses);
}

TEST(TieredSystemTest, RedisReportsRequestLatencies)
{
    SystemConfig cfg = makeConfig("redis", PolicyKind::None,
                                  1.0 / 256.0, 7);
    TieredSystem sys(cfg);
    const RunResult r = sys.run(200'000);
    EXPECT_GT(r.p99_request, 0.0);
    EXPECT_GE(r.p99_request, r.p50_request);
}

TEST(TieredSystemTest, PolicyNames)
{
    EXPECT_EQ(policyKindName(PolicyKind::None), "none");
    EXPECT_EQ(policyKindName(PolicyKind::Anb), "ANB");
    EXPECT_EQ(policyKindName(PolicyKind::Damon), "DAMON");
    EXPECT_EQ(policyKindName(PolicyKind::M5HptOnly), "M5(HPT)");
    EXPECT_EQ(policyKindName(PolicyKind::M5HwtDriven), "M5(HWT)");
    EXPECT_EQ(policyKindName(PolicyKind::M5HptDriven), "M5(HPT+HWT)");
    EXPECT_TRUE(isM5(PolicyKind::M5HptOnly));
    EXPECT_FALSE(isM5(PolicyKind::Damon));
}

TEST(ExperimentTest, AccessBudgetScalesAndClamps)
{
    const auto small = accessBudget("mcf_r", 1.0 / 1024.0);
    EXPECT_EQ(small, 4'000'000u); // Clamped to the floor.
    const auto def = accessBudget("mcf_r");
    EXPECT_GE(def, small);
    EXPECT_LE(def, 20'000'000u);
}

TEST(ExperimentTest, MakeConfigAppliesArguments)
{
    const SystemConfig cfg =
        makeConfig("redis", PolicyKind::Damon, 0.01, 99);
    EXPECT_EQ(cfg.benchmark, "redis");
    EXPECT_EQ(cfg.policy, PolicyKind::Damon);
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_NEAR(cfg.scale, 0.01, 1e-12);
}

} // namespace
} // namespace m5
// Appended: colocation through TieredSystem.
namespace m5 {
namespace {

TEST(TieredSystemTest, ColocatedBenchmarksShareTiers)
{
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::M5HptDriven,
                                  1.0 / 512.0, 5);
    cfg.colocated_benchmarks = {"mcf_r", "redis"};
    TieredSystem sys(cfg);
    const RunResult r = sys.run(150'000);
    EXPECT_EQ(r.benchmark, "mix(mcf_r+redis)");
    EXPECT_GT(r.migration.promoted, 0u);
    EXPECT_EQ(sys.pageTable().numPages(), sys.workload().footprintPages());
}

} // namespace
} // namespace m5
