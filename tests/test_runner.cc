/**
 * @file
 * Tests for the parallel ExperimentRunner stack: strict env parsing,
 * sweep-grid expansion, per-cell failure capture, and the determinism
 * guarantee (a 4-worker run is byte-identical to a 1-worker run).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"

namespace m5 {
namespace {

/** setenv/unsetenv wrapper that restores the old value on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_ = false;
};

TEST(EnvParseTest, UnsetAndEmptyAreNullopt)
{
    ScopedEnv unset("M5_TEST_ENV", nullptr);
    EXPECT_FALSE(envDouble("M5_TEST_ENV").has_value());
    EXPECT_FALSE(envLong("M5_TEST_ENV").has_value());
    EXPECT_FALSE(envFlag("M5_TEST_ENV").has_value());
    EXPECT_FALSE(envString("M5_TEST_ENV").has_value());

    ScopedEnv empty("M5_TEST_ENV", "");
    EXPECT_FALSE(envDouble("M5_TEST_ENV").has_value());
    EXPECT_FALSE(envString("M5_TEST_ENV").has_value());
}

TEST(EnvParseTest, ValidNumbersParse)
{
    ScopedEnv d("M5_TEST_ENV", "2.5");
    EXPECT_DOUBLE_EQ(envDouble("M5_TEST_ENV").value(), 2.5);

    ScopedEnv i("M5_TEST_ENV", "-42");
    EXPECT_EQ(envLong("M5_TEST_ENV").value(), -42);

    // Trailing whitespace is tolerated (e.g. M5_BENCH_SCALE="8 ").
    ScopedEnv w("M5_TEST_ENV", "8 ");
    EXPECT_DOUBLE_EQ(envDouble("M5_TEST_ENV").value(), 8.0);
    EXPECT_EQ(envLong("M5_TEST_ENV").value(), 8);
}

TEST(EnvParseTest, GarbageIsRejectedNotZero)
{
    // The atof/atoi predecessors silently parsed these as 0.
    for (const char *bad : {"abc", "8x", "1.5.2", "--3"}) {
        ScopedEnv e("M5_TEST_ENV", bad);
        EXPECT_FALSE(envDouble("M5_TEST_ENV").has_value()) << bad;
    }
    for (const char *bad : {"abc", "8x", "4.5"}) {
        ScopedEnv e("M5_TEST_ENV", bad);
        EXPECT_FALSE(envLong("M5_TEST_ENV").has_value()) << bad;
    }
}

TEST(EnvParseTest, FlagSpellings)
{
    for (const char *yes : {"1", "true", "YES", "On"}) {
        ScopedEnv e("M5_TEST_ENV", yes);
        EXPECT_EQ(envFlag("M5_TEST_ENV"), true) << yes;
    }
    for (const char *no : {"0", "false", "NO", "off"}) {
        ScopedEnv e("M5_TEST_ENV", no);
        EXPECT_EQ(envFlag("M5_TEST_ENV"), false) << no;
    }
    ScopedEnv e("M5_TEST_ENV", "maybe");
    EXPECT_FALSE(envFlag("M5_TEST_ENV").has_value());
}

TEST(EnvParseTest, BenchKnobsFallBackOnGarbage)
{
    ScopedEnv s("M5_BENCH_SCALE", "not-a-number");
    ScopedEnv j("M5_BENCH_JOBS", "many");
    ScopedEnv n("M5_BENCH_SEEDS", "3.5");
    EXPECT_GT(benchScale(), 0.0);
    EXPECT_GE(benchJobs(), 1u);
    EXPECT_EQ(benchSeeds(7), 7);
}

TEST(SweepGridTest, ExpandsBenchmarkMajor)
{
    SweepGrid grid;
    grid.benchmarks({"mcf_r", "roms_r"})
        .policies({PolicyKind::None, PolicyKind::M5HptOnly})
        .seeds(2);
    EXPECT_EQ(grid.size(), 8u);

    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 8u);
    // benchmark × policy × seed, seed fastest.
    EXPECT_EQ(jobs[0].benchmark, "mcf_r");
    EXPECT_EQ(jobs[0].policy, PolicyKind::None);
    EXPECT_EQ(jobs[0].seed, 1u);
    EXPECT_EQ(jobs[1].seed, 2u);
    EXPECT_EQ(jobs[2].policy, PolicyKind::M5HptOnly);
    EXPECT_EQ(jobs[4].benchmark, "roms_r");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        EXPECT_EQ(jobs[i].config.seed, jobs[i].seed);
    }
    EXPECT_EQ(jobs[0].label(), "mcf_r/none/s1");
}

TEST(SweepGridTest, AxisMutatorsResyncJobFields)
{
    // An axis point may switch the policy (fig08) or rescale the
    // footprint (fig11); the job's descriptive fields and budget must
    // follow the mutated config.
    std::vector<SweepPoint> points;
    points.push_back({"base", [](SystemConfig &) {}});
    points.push_back({"anb", [](SystemConfig &cfg) {
                          cfg.policy = PolicyKind::Anb;
                      }});
    SweepGrid grid;
    grid.benchmark("mcf_r").policy(PolicyKind::None).axis(points);
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].policy, PolicyKind::None);
    EXPECT_EQ(jobs[1].policy, PolicyKind::Anb);
    EXPECT_EQ(jobs[1].variant, "anb");
    EXPECT_NE(jobs[1].label().find("anb"), std::string::npos);
}

TEST(SweepGridTest, BudgetControls)
{
    SweepGrid base;
    base.benchmark("mcf_r");
    SweepGrid halved;
    halved.benchmark("mcf_r").budgetScale(0.5);
    SweepGrid fixed;
    fixed.benchmark("mcf_r").budgetOverride(12345);

    const auto b = base.expand();
    const auto h = halved.expand();
    const auto f = fixed.expand();
    EXPECT_NEAR(static_cast<double>(h[0].budget),
                static_cast<double>(b[0].budget) * 0.5,
                static_cast<double>(b[0].budget) * 0.01);
    EXPECT_EQ(f[0].budget, 12345u);
}

TEST(RunnerTest, FailureInOneCellDoesNotAbortSweep)
{
    ExperimentRunner runner({.jobs = 2, .progress = 0, .name = "t"});
    const std::vector<int> items = {0, 1, 2, 3};
    const auto results = runner.mapItems(items, [](const int &i) {
        if (i == 1)
            throw std::runtime_error("boom");
        if (i == 2)
            m5_fatal("fatal in cell %d", i);
        return i * 10;
    });
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].value, 0);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("boom"), std::string::npos);
    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("fatal in cell 2"),
              std::string::npos);
    EXPECT_TRUE(results[3].ok);
    EXPECT_EQ(results[3].value, 30);
}

TEST(RunnerTest, FatalOutsideCaptureStillDies)
{
    // The capture flag is thread-local and scoped to runner cells; the
    // default fatal path must still abort (EXPECT_EXIT relies on it).
    EXPECT_EXIT(m5_fatal("plain fatal"),
                ::testing::ExitedWithCode(1), "plain fatal");
}

TEST(RunnerTest, CsvRowMatchesHeader)
{
    SweepGrid grid;
    grid.benchmark("mcf_r").budgetOverride(100'000).scale(1.0 / 512);
    const auto jobs = grid.expand();
    const RunResult r = runJob(jobs[0]);
    const auto header = runResultCsvHeader();
    const auto row = runResultCsvRow(jobs[0], r);
    EXPECT_FALSE(header.empty());
    EXPECT_EQ(row.size(), header.size());
}

TEST(RunnerTest, WorkerCountHonoursOptionsAndQueue)
{
    ExperimentRunner one({.jobs = 1, .progress = 0, .name = "t"});
    EXPECT_EQ(one.workerCount(100), 1u);
    ExperimentRunner four({.jobs = 4, .progress = 0, .name = "t"});
    EXPECT_EQ(four.workerCount(100), 4u);
    // Never more workers than jobs.
    EXPECT_EQ(four.workerCount(2), 2u);
}

TEST(RunnerDeterminismTest, ParallelRunIsByteIdenticalToSerial)
{
    // The central guarantee: results depend only on the grid, never on
    // worker count or completion order.  Compare the stable CSV
    // serialization cell by cell.
    SweepGrid grid;
    grid.benchmarks({"mcf_r", "roms_r"})
        .policies({PolicyKind::None, PolicyKind::M5HptOnly})
        .seeds(2)
        .scale(1.0 / 512)
        .budgetOverride(150'000);
    const auto jobs = grid.expand();

    ExperimentRunner serial({.jobs = 1, .progress = 0, .name = "s"});
    ExperimentRunner pool({.jobs = 4, .progress = 0, .name = "p"});
    const auto a = serial.run(jobs);
    const auto b = pool.run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << jobs[i].label() << ": " << a[i].error;
        ASSERT_TRUE(b[i].ok) << jobs[i].label() << ": " << b[i].error;
        EXPECT_EQ(runResultCsvRow(jobs[i], a[i].value),
                  runResultCsvRow(jobs[i], b[i].value))
            << "cell " << jobs[i].label()
            << " differs between 1 and 4 workers";
    }
}

} // namespace
} // namespace m5
