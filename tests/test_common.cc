/**
 * @file
 * Unit tests for src/common: types, logging, RNG, Zipf/alias sampling,
 * statistics, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "common/zipf.hh"

namespace m5 {
namespace {

TEST(Types, PageAndWordExtraction)
{
    const Addr pa = (0x123ULL << kPageShift) | (17u << kWordShift) | 0x2a;
    EXPECT_EQ(pfnOf(pa), 0x123u);
    EXPECT_EQ(wordInPage(pa), 17u);
    EXPECT_EQ(wordOf(pa), (0x123ULL << 6) | 17u);
    EXPECT_EQ(pageBase(0x123), 0x123ULL << kPageShift);
}

TEST(Types, WordsPerPage)
{
    EXPECT_EQ(kWordsPerPage, 64u);
    EXPECT_EQ(kPageBytes, 4096u);
    EXPECT_EQ(kWordBytes, 64u);
}

TEST(Types, TimeConversions)
{
    EXPECT_EQ(secondsToTicks(1.0), 1'000'000'000u);
    EXPECT_EQ(msToTicks(1.5), 1'500'000u);
    EXPECT_EQ(usToTicks(2.0), 2'000u);
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "ab"), "x=3 y=ab");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
    EXPECT_EQ(strprintf("plain"), "plain");
}

// Death tests for the panic/assert macros: they must abort (not exit
// cleanly, not throw) and name the failed condition on stderr so a
// crashed sweep cell is diagnosable from the captured output.

TEST(LoggingDeathTest, PanicAbortsWithMessageAndLocation)
{
    EXPECT_DEATH(m5_panic("bad state %d", 7), "panic: bad state 7");
    EXPECT_DEATH(m5_panic("somewhere"), "test_common\\.cc");
}

TEST(LoggingDeathTest, AssertFiresOnFalseCondition)
{
    const int x = 3;
    EXPECT_DEATH(m5_assert(x == 4, "x was %d", x),
                 "assertion 'x == 4' failed: x was 3");
}

TEST(LoggingDeathTest, AssertSilentOnTrueCondition)
{
    m5_assert(2 + 2 == 4, "arithmetic still works");
    SUCCEED();
}

TEST(LoggingDeathTest, FatalExitsOutsideCaptureScope)
{
    // fatal() is a user-error exit (status 1), not an abort.
    EXPECT_EXIT(m5_fatal("bad --flag"),
                ::testing::ExitedWithCode(1), "fatal: bad --flag");
}

TEST(Logging, FatalCaptureScopeThrowsAndRestores)
{
    {
        FatalCaptureScope capture;
        EXPECT_THROW(m5_fatal("captured %s", "once"), FatalError);
        try {
            m5_fatal("captured twice");
        } catch (const FatalError &e) {
            EXPECT_STREQ(e.what(), "captured twice");
        }
        {
            FatalCaptureScope nested; // nesting must be harmless
            EXPECT_THROW(m5_fatal("nested"), FatalError);
        }
        EXPECT_THROW(m5_fatal("still captured"), FatalError);
    }
    // Outside the scope fatal() exits again.
    EXPECT_EXIT(m5_fatal("uncaptured"),
                ::testing::ExitedWithCode(1), "fatal: uncaptured");
}

TEST(Logging, ThreadTagSetAndClear)
{
    EXPECT_EQ(logThreadTag(), "");
    logSetThreadTag("job 3");
    EXPECT_EQ(logThreadTag(), "job 3");
    logSetThreadTag("");
    EXPECT_EQ(logThreadTag(), "");
}

// Error paths of the strict string parsers behind common/env that
// tests/test_runner.cc (which covers the env-var plumbing) does not
// reach: out-of-range values, partial consumption, and sign handling.

TEST(ParseStrict, OutOfRangeIsRejectedNotClamped)
{
    EXPECT_FALSE(parseDouble("1e999").has_value());
    EXPECT_FALSE(parseDouble("-1e999").has_value());
    EXPECT_FALSE(parseLong("99999999999999999999").has_value());
    EXPECT_FALSE(parseLong("-99999999999999999999").has_value());
    EXPECT_FALSE(parseU64("99999999999999999999999").has_value());
}

TEST(ParseStrict, PartialConsumptionIsRejected)
{
    // strtol(base 10) stops at 'x'; the strict wrapper must reject.
    EXPECT_FALSE(parseLong("0x10").has_value());
    EXPECT_FALSE(parseLong("12cores").has_value());
    EXPECT_FALSE(parseDouble("3.5ms").has_value());
    EXPECT_FALSE(parseU64("7seeds").has_value());
    // ...but trailing whitespace is tolerated.
    EXPECT_EQ(parseLong("12 ").value(), 12);
    EXPECT_DOUBLE_EQ(parseDouble("2.5\t").value(), 2.5);
}

TEST(ParseStrict, EmptyAndSignEdgeCases)
{
    EXPECT_FALSE(parseDouble("").has_value());
    EXPECT_FALSE(parseLong("").has_value());
    EXPECT_FALSE(parseU64("").has_value());
    // parseU64 is for counts/seeds: signs are rejected outright
    // (strtoull would silently wrap "-1" to 2^64-1).
    EXPECT_FALSE(parseU64("-1").has_value());
    EXPECT_FALSE(parseU64("+1").has_value());
    EXPECT_EQ(parseU64("0").value(), 0u);
    EXPECT_EQ(parseU64("18446744073709551615").value(),
              18446744073709551615ull);
    EXPECT_EQ(parseLong("-42").value(), -42);
}

TEST(Rng, Determinism)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.below(1000), b.below(1000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.below(1'000'000) == b.below(1'000'000);
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(Zipf, MassSumsToOne)
{
    ZipfSampler z(100, 0.9);
    double sum = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i)
        sum += z.mass(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, MassMonotoneDecreasing)
{
    ZipfSampler z(50, 1.2);
    for (std::size_t i = 1; i < z.size(); ++i)
        EXPECT_LE(z.mass(i), z.mass(i - 1));
}

TEST(Zipf, UniformWhenAlphaZero)
{
    ZipfSampler z(10, 0.0);
    for (std::size_t i = 0; i < z.size(); ++i)
        EXPECT_NEAR(z.mass(i), 0.1, 1e-9);
}

TEST(Zipf, EmpiricalMatchesMass)
{
    ZipfSampler z(20, 1.0);
    Rng rng(11);
    std::vector<int> counts(20, 0);
    const int n = 200'000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (std::size_t i = 0; i < 20; ++i) {
        const double emp = static_cast<double>(counts[i]) / n;
        EXPECT_NEAR(emp, z.mass(i), 0.01) << "rank " << i;
    }
}

TEST(Zipf, SingleItem)
{
    ZipfSampler z(1, 1.0);
    Rng rng(1);
    EXPECT_EQ(z.sample(rng), 0u);
    EXPECT_NEAR(z.mass(0), 1.0, 1e-12);
}

TEST(Alias, RespectsWeights)
{
    AliasSampler a({1.0, 3.0, 0.0, 6.0});
    Rng rng(5);
    std::vector<int> counts(4, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++counts[a.sample(rng)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(RunningStats, Basics)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 15.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStats, NegativeValues)
{
    RunningStats s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_EQ(s.min(), -5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.mean(), 0.0, 1e-12);
}

TEST(Percentile, NearestRank)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(i);
    EXPECT_EQ(t.percentile(50), 50.0);
    EXPECT_EQ(t.percentile(99), 99.0);
    EXPECT_EQ(t.percentile(100), 100.0);
    EXPECT_EQ(t.percentile(0), 1.0);
}

TEST(Percentile, AddAfterQuery)
{
    PercentileTracker t;
    t.add(10.0);
    EXPECT_EQ(t.percentile(50), 10.0);
    t.add(1.0);
    t.add(2.0);
    EXPECT_EQ(t.percentile(0), 1.0);
    EXPECT_EQ(t.percentile(100), 10.0);
}

TEST(Percentile, EmptyIsZero)
{
    PercentileTracker t;
    EXPECT_EQ(t.percentile(99), 0.0);
    EXPECT_EQ(t.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0);
    h.add(-1.0);
    h.add(5.0);
    h.add(15.0);
    h.add(999.0);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_NEAR(h.cdfAt(3), 1.0, 1e-12);
    EXPECT_NEAR(h.cdfAt(0), 0.5, 1e-12);
}

TEST(Cdf, EmpiricalCdf)
{
    const auto cdf = empiricalCdf({1, 2, 3, 4, 5}, {0.5, 2.0, 4.5, 10.0});
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_NEAR(cdf[0], 0.0, 1e-12);
    EXPECT_NEAR(cdf[1], 0.4, 1e-12);
    EXPECT_NEAR(cdf[2], 0.8, 1e-12);
    EXPECT_NEAR(cdf[3], 1.0, 1e-12);
}

TEST(Table, AlignedOutput)
{
    TextTable t({"a", "bench"});
    t.addRow({"1", "x"});
    t.addRow({"22", "yy"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Csv)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

} // namespace
} // namespace m5
