/**
 * @file
 * Second round of policy-mechanism tests: the behaviours introduced
 * during calibration — ANB's equilibrium backoff, DAMON's spread DAMOS
 * plan and quota damping, the Elector's hysteresis margin, the CFS-style
 * kernel-debt draining, and the open-loop latency replay.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "m5/elector.hh"
#include "mem/memsys.hh"
#include "os/anb.hh"
#include "os/damon.hh"
#include "os/frame_alloc.hh"
#include "os/migration.hh"
#include "sim/core.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

class PolicyRig : public ::testing::Test
{
  protected:
    static constexpr std::size_t kPages = 128;

    PolicyRig()
    {
        TieredMemoryParams p;
        p.ddr_bytes = 16 * kPageBytes;
        p.cxl_bytes = 256 * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(kPages);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(kPages, topo->numTiers());
        mglru = &lrus->top();
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        monitor = std::make_unique<Monitor>(*mem, *pt);
        for (Vpn v = 0; v < kPages; ++v)
            pt->map(v, *alloc->allocate(kNodeCxl), kNodeCxl);
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    MgLru *mglru = nullptr;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
    std::unique_ptr<Monitor> monitor;
};

TEST_F(PolicyRig, AnbBacksOffHardOnceDdrFull)
{
    // Fill DDR completely.
    for (Vpn v = 0; v < 16; ++v)
        (void)engine->promote(v, 0);
    ASSERT_EQ(engine->ddrFreeFrames(), 0u);
    AnbConfig cfg;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    const Tick before = anb.scanPeriod();
    anb.wake(anb.nextWake());
    EXPECT_GE(anb.scanPeriod(), before * 4);
}

TEST_F(PolicyRig, AnbScansFastWhileDdrHasRoom)
{
    AnbConfig cfg;
    cfg.scan_chunk_pages = 64;
    AnbDaemon anb(cfg, *pt, *tlb, ledger, *engine);
    // Lots of faults since the last scan, DDR empty: stay fast or speed
    // up (never the x4 equilibrium backoff).
    const Tick before = anb.scanPeriod();
    for (Vpn v = 0; v < 16; ++v)
        anb.onHintFault(v, usToTicks(5.0));
    anb.wake(anb.nextWake());
    EXPECT_LE(anb.scanPeriod(), before);
}

TEST_F(PolicyRig, DamonPlanAppliedInChunksNotBursts)
{
    DamonConfig cfg;
    cfg.min_regions = 4;
    cfg.max_regions = 4;
    cfg.sample_interval = usToTicks(100.0);
    cfg.aggregation_interval = msToTicks(1.0); // 10 samples/agg.
    cfg.hot_access_fraction = 0.1;
    cfg.promote_quota_pages = 40;
    DamonDaemon damon(cfg, *pt, ledger, *engine);
    // Make everything look hot so the plan fills.
    Tick now = damon.nextWake();
    std::uint64_t max_promos_per_wake = 0;
    std::uint64_t last = 0;
    for (int i = 0; i < 60; ++i) {
        for (Vpn v = 0; v < kPages; ++v)
            pt->pte(v).accessed = true;
        damon.wake(now);
        now = damon.nextWake();
        const std::uint64_t promoted = engine->stats().promoted;
        max_promos_per_wake =
            std::max(max_promos_per_wake, promoted - last);
        last = promoted;
    }
    EXPECT_GT(engine->stats().promoted, 0u);
    // Chunked application: never more than quota/samples (= 4) + slack.
    EXPECT_LE(max_promos_per_wake, 8u);
}

TEST_F(PolicyRig, ElectorHysteresisBlocksSmallImprovements)
{
    ElectorConfig cfg;
    cfg.improvement_margin = 0.10;
    Elector elector(cfg);
    // Fill DDR so bootstrap is off.
    for (Vpn v = 0; v < 16; ++v)
        (void)engine->promote(v, 0);

    // Round 1: establish a baseline rel_bw_den(DDR).
    monitor->sample(0);
    for (int i = 0; i < 1000; ++i)
        mem->access(pageBase(pt->pte(0).pfn), false, 0);
    for (int i = 0; i < 1000; ++i)
        mem->access(pageBase(pt->pte(20).pfn), false, 0);
    monitor->sample(secondsToTicks(1.0));
    elector.evaluate(*monitor);

    // Round 2: ~4% better DDR share — below the 10% margin.
    monitor->sample(secondsToTicks(1.0));
    for (int i = 0; i < 1040; ++i)
        mem->access(pageBase(pt->pte(0).pfn), false, 0);
    for (int i = 0; i < 1000; ++i)
        mem->access(pageBase(pt->pte(20).pfn), false, 0);
    monitor->sample(secondsToTicks(2.0));
    const auto d = elector.evaluate(*monitor);
    EXPECT_FALSE(d.migrate);
}

TEST(KernelDebt, DaemonWorkSpreadsAcrossAccesses)
{
    // A system with DAMON: kernel time accrues gradually (debt), so the
    // maximum single-access time jump stays bounded by the quantum plus
    // one memory access.
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::Damon,
                                  1.0 / 256.0, 3);
    TieredSystem sys(cfg);
    const RunResult r = sys.run(200'000);
    EXPECT_GT(r.kernel_time, 0u);
    // Daemon work exists but is paid out at <= quantum per access on
    // average: kernel_time <= accesses * quantum + synchronous faults.
    const Tick debt_budget =
        r.accesses * cfg.kernel_quantum_per_access;
    EXPECT_LE(r.kernel_time, debt_budget + r.runtime / 2);
}

TEST(OpenLoop, QuietServerMatchesService)
{
    CpuCore core(2);
    for (int i = 0; i < 1000; ++i) {
        core.advanceApp(50);
        core.onAccessRetired();
        core.advanceApp(50);
        core.onAccessRetired();
    }
    // Uniform 100ns services at 50% utilization: no queueing.
    auto open = core.openLoopLatencies(0.5);
    EXPECT_NEAR(open.percentile(99), 100.0, 1.0);
}

TEST(OpenLoop, BurstQueuesFollowers)
{
    CpuCore core(1);
    // 99 fast requests, one 100x slower, then more fast ones.
    for (int i = 0; i < 200; ++i) {
        core.advanceApp(i == 100 ? 10'000 : 100);
        core.onAccessRetired();
    }
    auto open = core.openLoopLatencies(0.5);
    // The burst delays the requests queued behind it: p99 reflects the
    // queue, far above the fast-path service time.
    EXPECT_GT(open.percentile(99), 1000.0);
    // Closed-loop p99 would see only the one slow request.
    EXPECT_GT(open.percentile(95), 100.0);
}

TEST(MemtisPolicy, RunsEndToEndInSystem)
{
    SystemConfig cfg = makeConfig("mcf_r", PolicyKind::Memtis,
                                  1.0 / 256.0, 5);
    cfg.pebs_cfg.sample_period = 20;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(400'000);
    EXPECT_EQ(r.policy, "Memtis");
    EXPECT_GT(r.migration.promoted, 0u);
    EXPECT_GT(r.kernel_time, 0u);
}

TEST(MemtisPolicy, HigherSamplingFindsHotterPages)
{
    auto ratio_at = [](std::uint64_t period) {
        SystemConfig cfg = makeConfig("roms_r", PolicyKind::Memtis,
                                      1.0 / 256.0, 5);
        cfg.record_only = true;
        cfg.pebs_cfg.sample_period = period;
        TieredSystem sys(cfg);
        const RunResult r = sys.run(600'000);
        double k_sum = 0.0, top_sum = 0.0;
        const auto top = sys.pac().topKAccessSum(r.hot_pages.size());
        for (Pfn p : r.hot_pages)
            k_sum += static_cast<double>(sys.pac().count(p));
        top_sum = static_cast<double>(top);
        return top_sum > 0 ? k_sum / top_sum : 0.0;
    };
    // 1-in-10 sampling sees far more than 1-in-1000.
    EXPECT_GT(ratio_at(10), ratio_at(1000) * 0.9);
}

} // namespace
} // namespace m5
