/**
 * @file
 * Tests for the synthetic workload models and the benchmark registry:
 * parameter validity for all fourteen benchmarks, statistical properties
 * of the generated streams (popularity skew, sparsity classes, phase
 * drift, clustering), multi-instance interleaving, and trace round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "workloads/registry.hh"
#include "workloads/trace.hh"

namespace m5 {
namespace {

TEST(Registry, TwelveEvaluationBenchmarks)
{
    EXPECT_EQ(benchmarkNames().size(), 12u);
    EXPECT_EQ(benchmarkNames().front(), "liblinear");
    EXPECT_EQ(benchmarkNames().back(), "redis");
}

TEST(Registry, FourteenSparsityBenchmarks)
{
    EXPECT_EQ(sparsityBenchmarkNames().size(), 14u);
}

TEST(Registry, InfoMatchesTable3)
{
    const auto &mcf = benchmarkInfo("mcf_r");
    EXPECT_NEAR(mcf.footprint_gb, 4.9, 1e-9);
    EXPECT_EQ(mcf.cores, 8u);
    EXPECT_EQ(mcf.cat_ways, 4u);
    const auto &redis = benchmarkInfo("redis");
    EXPECT_EQ(redis.cores, 1u);
}

TEST(Registry, AllBenchmarksHaveValidParams)
{
    for (const auto &name : sparsityBenchmarkNames()) {
        SCOPED_TRACE(name);
        const SyntheticParams p = benchmarkParams(name);
        EXPECT_GT(p.footprint_pages, 1000u);
        EXPECT_GT(p.page_zipf_alpha, 0.0);
        EXPECT_FALSE(p.sparsity.empty());
        double frac = 0.0;
        for (const auto &c : p.sparsity) {
            EXPECT_GE(c.words_min, 1u);
            EXPECT_LE(c.words_max, kWordsPerPage);
            frac += c.page_fraction;
        }
        EXPECT_NEAR(frac, 1.0, 1e-6);
        EXPECT_GE(p.read_fraction, 0.5);
        EXPECT_LE(p.read_fraction, 1.0);
    }
}

TEST(Registry, FootprintScalesLinearly)
{
    const auto full = benchmarkParams("mcf_r", 1.0).footprint_pages;
    const auto half = benchmarkParams("mcf_r", 0.5).footprint_pages;
    EXPECT_NEAR(static_cast<double>(half),
                static_cast<double>(full) / 2.0,
                static_cast<double>(full) * 0.01);
}

TEST(Registry, FullScaleFootprintMatchesTable3)
{
    // mcf_r: 4.9GB -> ~1.28M 4KB pages.
    const auto pages = benchmarkParams("mcf_r", 1.0).footprint_pages;
    EXPECT_NEAR(static_cast<double>(pages), 4.9 * 262144.0, 1000.0);
}

TEST(Registry, LlcScalesWithCatWays)
{
    // GAP gets 10 of 15 ways, SPEC 4, Redis 1.
    const auto gap = benchmarkLlcBytes("pr", 1.0);
    const auto spec = benchmarkLlcBytes("mcf_r", 1.0);
    const auto redis = benchmarkLlcBytes("redis", 1.0);
    EXPECT_NEAR(static_cast<double>(gap),
                60.0 * 1024 * 1024 * 10 / 15, 1.0);
    EXPECT_GT(gap, spec);
    EXPECT_GT(spec, redis);
}

TEST(Registry, LatencySensitiveMarkers)
{
    EXPECT_GT(benchmarkParams("redis").accesses_per_request, 0u);
    EXPECT_EQ(benchmarkParams("mcf_r").accesses_per_request, 0u);
}

TEST(Workload, Deterministic)
{
    auto a = makeWorkload("mcf_r", 0.02, 7);
    auto b = makeWorkload("mcf_r", 0.02, 7);
    for (int i = 0; i < 1000; ++i) {
        const auto ea = a->next();
        const auto eb = b->next();
        EXPECT_EQ(ea.va, eb.va);
        EXPECT_EQ(ea.is_write, eb.is_write);
    }
}

TEST(Workload, AddressesWithinFootprint)
{
    auto w = makeWorkload("redis", 0.02, 3);
    const VAddr limit = static_cast<VAddr>(w->footprintPages())
                        << kPageShift;
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(w->next().va, limit);
}

TEST(Workload, ReadFractionApproximatelyRespected)
{
    auto w = makeWorkload("pr", 0.02, 3);
    const double expect = benchmarkParams("pr", 0.02).read_fraction;
    int reads = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i)
        reads += !w->next().is_write;
    EXPECT_NEAR(reads / double(n), expect, 0.02);
}

TEST(Workload, OnlyActiveWordsTouched)
{
    auto w = makeWorkload("redis", 0.02, 9);
    // Per-page observed words must be a subset of the declared actives.
    std::map<Vpn, std::set<unsigned>> seen;
    for (int i = 0; i < 100'000; ++i) {
        const auto ev = w->next();
        seen[vpnOf(ev.va)].insert(wordInPage(ev.va));
    }
    for (const auto &[vpn, words] : seen)
        EXPECT_LE(words.size(), w->activeWords(vpn));
}

TEST(Workload, SparsityClassesShapeUniqueWords)
{
    // Redis: most pages must have few active words; mcf: most dense.
    auto redis = makeWorkload("redis", 0.02, 5);
    auto mcf = makeWorkload("mcf_r", 0.02, 5);
    std::size_t redis_sparse = 0, mcf_sparse = 0;
    const std::size_t n = 20'000;
    for (Vpn v = 0; v < n; ++v) {
        redis_sparse += redis->activeWords(v) <= 16;
        mcf_sparse += mcf->activeWords(v) <= 16;
    }
    EXPECT_GT(double(redis_sparse) / double(n), 0.75);
    EXPECT_LT(double(mcf_sparse) / double(n), 0.10);
}

TEST(Workload, PopularityIsSkewed)
{
    auto w = makeWorkload("roms_r", 0.02, 11);
    std::map<Vpn, int> counts;
    const int n = 300'000;
    for (int i = 0; i < n; ++i)
        ++counts[vpnOf(w->next().va)];
    std::vector<int> sorted;
    for (const auto &[v, c] : counts)
        sorted.push_back(c);
    std::sort(sorted.rbegin(), sorted.rend());
    // Top 10% of touched pages take far more than 10% of accesses.
    const std::size_t top10 = sorted.size() / 10;
    long top_sum = 0, total = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        total += sorted[i];
        if (i < top10)
            top_sum += sorted[i];
    }
    EXPECT_GT(double(top_sum) / double(total), 0.3);
}

TEST(Workload, HotClusterLocality)
{
    // Hot ranks land in contiguous VA blocks: the hottest pages should
    // concentrate in far fewer distinct blocks than uniform placement
    // would produce.
    SyntheticParams p = benchmarkParams("mcf_r", 0.02);
    p.hot_cluster_pages = 128;
    p.uniform_fraction = 0.0;
    SyntheticWorkload w(p, 13);
    std::map<Vpn, int> counts;
    for (int i = 0; i < 200'000; ++i)
        ++counts[vpnOf(w.next().va)];
    std::vector<std::pair<int, Vpn>> ranked;
    for (const auto &[v, c] : counts)
        ranked.emplace_back(c, v);
    std::sort(ranked.rbegin(), ranked.rend());
    std::set<Vpn> blocks;
    const std::size_t top = std::min<std::size_t>(256, ranked.size());
    for (std::size_t i = 0; i < top; ++i)
        blocks.insert(ranked[i].second / 128);
    EXPECT_LT(blocks.size(), top / 8);
}

TEST(Workload, PhaseDriftShiftsHotSet)
{
    SyntheticParams p = benchmarkParams("bfs", 0.02);
    p.phase_length = 50'000;
    p.phase_shift_fraction = 0.3;
    p.uniform_fraction = 0.0;
    SyntheticWorkload w(p, 17);
    auto hottest = [&]() {
        std::map<Vpn, int> counts;
        for (int i = 0; i < 50'000; ++i)
            ++counts[vpnOf(w.next().va)];
        std::vector<std::pair<int, Vpn>> r;
        for (const auto &[v, c] : counts)
            r.emplace_back(c, v);
        std::sort(r.rbegin(), r.rend());
        std::set<Vpn> top;
        for (std::size_t i = 0; i < 200 && i < r.size(); ++i)
            top.insert(r[i].second);
        return top;
    };
    const auto before = hottest();
    for (int i = 0; i < 100'000; ++i)
        w.next(); // Two more phases pass.
    const auto after = hottest();
    std::size_t common = 0;
    for (Vpn v : before)
        common += after.count(v);
    EXPECT_LT(common, before.size() * 9 / 10); // Hot set moved.
}

TEST(Workload, StaticWorkloadKeepsHotSet)
{
    SyntheticParams p = benchmarkParams("mcf_r", 0.02);
    p.phase_length = 0;
    p.uniform_fraction = 0.0;
    SyntheticWorkload w(p, 17);
    std::map<Vpn, int> first, second;
    for (int i = 0; i < 100'000; ++i)
        ++first[vpnOf(w.next().va)];
    for (int i = 0; i < 100'000; ++i)
        ++second[vpnOf(w.next().va)];
    // The hottest page of the first window is still hot in the second.
    Vpn hottest = 0;
    int best = 0;
    for (const auto &[v, c] : first) {
        if (c > best) {
            best = c;
            hottest = v;
        }
    }
    EXPECT_GT(second[hottest], best / 4);
}

TEST(MultiWorkloadTest, DisjointAddressRanges)
{
    auto w = makeMultiWorkload("mcf_r", 4, 0.02, 3);
    EXPECT_GT(w->footprintPages(), 0u);
    const std::size_t per = w->footprintPages() / 4;
    std::set<std::size_t> instances_seen;
    for (int i = 0; i < 10'000; ++i)
        instances_seen.insert(vpnOf(w->next().va) / per);
    EXPECT_EQ(instances_seen.size(), 4u);
}

TEST(MultiWorkloadTest, CombinedFootprintMatchesSingle)
{
    auto one = makeMultiWorkload("mcf_r", 1, 0.02, 3);
    auto four = makeMultiWorkload("mcf_r", 4, 0.02, 3);
    EXPECT_NEAR(static_cast<double>(four->footprintPages()),
                static_cast<double>(one->footprintPages()),
                static_cast<double>(one->footprintPages()) * 0.01);
}

TEST(MultiWorkloadTest, NameIncludesInstanceCount)
{
    auto w = makeMultiWorkload("pr", 8, 0.02, 3);
    EXPECT_EQ(w->name(), "prx8");
}

TEST(Trace, RoundTripThroughFile)
{
    TraceBuffer buf;
    buf.push(0x1000, 5, false);
    buf.push(0x2040, 9, true);
    const std::string path = ::testing::TempDir() + "m5_trace_test.bin";
    buf.save(path);
    const TraceBuffer loaded = TraceBuffer::load(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.records()[0].pa, 0x1000u);
    EXPECT_EQ(loaded.records()[1].pa, 0x2040u);
    EXPECT_EQ(loaded.records()[1].time, 9u);
    EXPECT_TRUE(loaded.records()[1].is_write);
    std::remove(path.c_str());
}

TEST(Trace, ClearAndReserve)
{
    TraceBuffer buf;
    buf.reserve(100);
    buf.push(1, 1, false);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
}

} // namespace
} // namespace m5
// Appended: colocation mixes (makeMixedWorkload).
namespace m5 {
namespace {

TEST(MixedWorkload, NameAndDisjointRanges)
{
    auto w = makeMixedWorkload({"mcf_r", "redis"}, 0.02, 3);
    EXPECT_EQ(w->name(), "mix(mcf_r+redis)");
    const std::size_t mcf_pages =
        benchmarkParams("mcf_r", 0.02).footprint_pages;
    bool saw_first = false, saw_second = false;
    for (int i = 0; i < 5000; ++i) {
        const Vpn vpn = vpnOf(w->next().va);
        ASSERT_LT(vpn, w->footprintPages());
        (vpn < mcf_pages ? saw_first : saw_second) = true;
    }
    EXPECT_TRUE(saw_first);
    EXPECT_TRUE(saw_second);
}

TEST(MixedWorkload, SingleTenantCollapses)
{
    auto w = makeMixedWorkload({"pr"}, 0.02, 3);
    EXPECT_EQ(w->name(), "pr");
}

TEST(MixedWorkload, FootprintIsSumOfTenants)
{
    auto w = makeMixedWorkload({"mcf_r", "redis"}, 0.02, 3);
    EXPECT_EQ(w->footprintPages(),
              benchmarkParams("mcf_r", 0.02).footprint_pages +
              benchmarkParams("redis", 0.02).footprint_pages);
}

} // namespace
} // namespace m5
