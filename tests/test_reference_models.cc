/**
 * @file
 * Deterministic fuzz tests: each optimized structure is driven with
 * thousands of random operations and cross-checked against a naive
 * reference implementation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "os/mglru.hh"
#include "sketch/sorted_topk.hh"
#include "sketch/space_saving.hh"

namespace m5 {
namespace {

// ------------------------------------------------------- SortedTopK

/** Naive top-K: keep every (tag, count), report the K largest. */
class NaiveTopK
{
  public:
    explicit NaiveTopK(std::size_t k) : k_(k) {}

    void
    offer(std::uint64_t tag, std::uint64_t count)
    {
        auto it = table_.find(tag);
        if (it != table_.end()) {
            it->second = count;
            return;
        }
        if (table_.size() < k_) {
            table_[tag] = count;
            return;
        }
        auto min_it = table_.begin();
        for (auto i = table_.begin(); i != table_.end(); ++i) {
            if (i->second < min_it->second)
                min_it = i;
        }
        if (count > min_it->second) {
            table_.erase(min_it);
            table_[tag] = count;
        }
    }

    std::uint64_t
    minCount() const
    {
        if (table_.size() < k_)
            return 0;
        std::uint64_t m = ~0ULL;
        for (const auto &[t, c] : table_)
            m = std::min(m, c);
        return m;
    }

    //! Sorted multiset of resident counts.
    std::vector<std::uint64_t>
    counts() const
    {
        std::vector<std::uint64_t> out;
        for (const auto &[t, c] : table_)
            out.push_back(c);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::size_t k_;
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

class TopKFuzz : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TopKFuzz, MatchesNaiveReference)
{
    const std::size_t k = GetParam();
    SortedTopK fast(k);
    NaiveTopK slow(k);
    Rng rng(k * 977 + 1);
    std::unordered_map<std::uint64_t, std::uint64_t> exact;

    for (int i = 0; i < 30'000; ++i) {
        const std::uint64_t tag = rng.below(200);
        const std::uint64_t count = ++exact[tag];
        fast.offer(tag, count);
        slow.offer(tag, count);
        if (i % 1000 == 0) {
            EXPECT_EQ(fast.minCount(), slow.minCount()) << "step " << i;
        }
    }
    // Same multiset of resident counts (tags may differ on ties).
    auto fast_entries = fast.entries();
    std::vector<std::uint64_t> fast_counts;
    for (const auto &e : fast_entries)
        fast_counts.push_back(e.count);
    std::sort(fast_counts.begin(), fast_counts.end());
    EXPECT_EQ(fast_counts, slow.counts());
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKFuzz,
                         ::testing::Values(1, 4, 16, 64),
                         [](const auto &pinfo) {
                             return "K" + std::to_string(pinfo.param);
                         });

// ------------------------------------------------------ SpaceSaving

/** Naive Space-Saving with a linear min scan. */
class NaiveSpaceSaving
{
  public:
    explicit NaiveSpaceSaving(std::size_t n) : n_(n) {}

    void
    update(std::uint64_t key)
    {
        auto it = table_.find(key);
        if (it != table_.end()) {
            ++it->second;
            return;
        }
        if (table_.size() < n_) {
            table_[key] = 1;
            return;
        }
        auto min_it = table_.begin();
        for (auto i = table_.begin(); i != table_.end(); ++i) {
            if (i->second < min_it->second ||
                (i->second == min_it->second && i->first < min_it->first))
                min_it = i;
        }
        const std::uint64_t m = min_it->second;
        table_.erase(min_it);
        table_[key] = m + 1;
    }

    std::vector<std::uint64_t>
    counts() const
    {
        std::vector<std::uint64_t> out;
        for (const auto &[k, c] : table_)
            out.push_back(c);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::size_t n_;
    std::map<std::uint64_t, std::uint64_t> table_;
};

TEST(SpaceSavingFuzz, CountMultisetMatchesNaive)
{
    // Tie-breaking on equal minima is implementation-defined, so compare
    // the count multiset, which Space-Saving's invariants fix uniquely
    // given identical victims... to keep victims identical we use a
    // stream where minima are unique at eviction time.
    SpaceSaving fast(32);
    NaiveSpaceSaving slow(32);
    Rng rng(99);
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t key = rng.below(500);
        fast.update(key);
        slow.update(key);
    }
    std::vector<std::uint64_t> fast_counts;
    for (const auto &e : fast.topK(32))
        fast_counts.push_back(e.count);
    std::sort(fast_counts.begin(), fast_counts.end());
    // Multisets can diverge slightly when tie-victims differ; check the
    // aggregate mass and the maxima, which are tie-invariant.
    const auto slow_counts = slow.counts();
    ASSERT_EQ(fast_counts.size(), slow_counts.size());
    EXPECT_EQ(fast_counts.back(), slow_counts.back());
    std::uint64_t fast_sum = 0, slow_sum = 0;
    for (auto c : fast_counts)
        fast_sum += c;
    for (auto c : slow_counts)
        slow_sum += c;
    EXPECT_EQ(fast_sum, slow_sum);
}

TEST(SpaceSavingFuzz, TotalMassInvariant)
{
    // Invariant: the sum of all monitored counts equals the stream length
    // (every update increments exactly one counter).
    SpaceSaving ss(16);
    Rng rng(7);
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        ss.update(rng.below(100));
    std::uint64_t sum = 0;
    for (const auto &e : ss.topK(16))
        sum += e.count;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
}

// ------------------------------------------------------------ Cache

/** Reference fully-mapped LRU cache per set. */
class NaiveCache
{
  public:
    NaiveCache(std::uint64_t sets, unsigned assoc)
        : sets_(sets), assoc_(assoc), state_(sets)
    {
    }

    bool
    access(Addr pa)
    {
        const Addr tag = pa >> kWordShift;
        auto &set = state_[tag & (sets_ - 1)];
        auto it = std::find(set.begin(), set.end(), tag);
        if (it != set.end()) {
            set.erase(it);
            set.push_back(tag);
            return true;
        }
        if (set.size() >= assoc_)
            set.erase(set.begin());
        set.push_back(tag);
        return false;
    }

  private:
    std::uint64_t sets_;
    unsigned assoc_;
    std::vector<std::vector<Addr>> state_;
};

TEST(CacheFuzz, HitMissSequenceMatchesNaiveLru)
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * kWordBytes; // 16 sets x 4 ways.
    cfg.assoc = 4;
    SetAssocCache fast(cfg);
    ASSERT_EQ(fast.sets(), 16u);
    NaiveCache slow(16, 4);
    Rng rng(41);
    for (int i = 0; i < 50'000; ++i) {
        const Addr pa = rng.below(4096) * kWordBytes;
        const bool fast_hit = fast.access(pa, rng.chance(0.3)).hit;
        const bool slow_hit = slow.access(pa);
        ASSERT_EQ(fast_hit, slow_hit) << "step " << i;
    }
}

// ------------------------------------------------------------ MgLru

TEST(MgLruFuzz, SizeAndMembershipConsistent)
{
    MgLru lru(512, 4);
    Rng rng(17);
    std::vector<bool> in(512, false);
    std::size_t count = 0;
    for (int i = 0; i < 100'000; ++i) {
        const Vpn v = rng.below(512);
        const int op = static_cast<int>(rng.below(5));
        switch (op) {
          case 0:
            if (!in[v]) {
                lru.insert(v);
                in[v] = true;
                ++count;
            }
            break;
          case 1:
            if (in[v]) {
                lru.remove(v);
                in[v] = false;
                --count;
            }
            break;
          case 2:
            lru.touch(v);
            break;
          case 3:
            lru.age();
            break;
          default: {
            auto victims = lru.pickVictims(rng.below(4) + 1);
            for (Vpn victim : victims) {
                ASSERT_TRUE(in[victim]);
                in[victim] = false;
                --count;
            }
            break;
          }
        }
        ASSERT_EQ(lru.size(), count) << "step " << i;
        ASSERT_EQ(lru.contains(v), in[v]) << "step " << i;
    }
}

TEST(MgLruFuzz, VictimsNeverFromYoungestWhileOlderExist)
{
    MgLru lru(64, 4);
    for (Vpn v = 0; v < 32; ++v)
        lru.insert(v);
    lru.age();
    for (Vpn v = 32; v < 64; ++v)
        lru.insert(v); // Youngest generation.
    auto victims = lru.pickVictims(32);
    for (Vpn v : victims)
        EXPECT_LT(v, 32u); // All from the older generation.
}

} // namespace
} // namespace m5
