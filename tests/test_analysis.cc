/**
 * @file
 * Tests for the analysis layer: access-count ratios, sparsity CDFs,
 * log-CDFs, and reporting helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/cdf.hh"
#include "analysis/ratio.hh"
#include "analysis/report.hh"

namespace m5 {
namespace {

TEST(ExactCounterTest, CountsAndTopK)
{
    ExactCounter c;
    for (int i = 0; i < 5; ++i)
        c.observe(1);
    for (int i = 0; i < 3; ++i)
        c.observe(2);
    c.observe(3);
    EXPECT_EQ(c.count(1), 5u);
    EXPECT_EQ(c.count(99), 0u);
    EXPECT_EQ(c.distinct(), 3u);
    auto top = c.topK(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].tag, 1u);
    EXPECT_EQ(top[1].tag, 2u);
    EXPECT_EQ(c.topKSum(2), 8u);
}

TEST(ExactCounterTest, RatioPerfectReportIsOne)
{
    ExactCounter c;
    for (int k = 0; k < 10; ++k)
        for (int i = 0; i <= k; ++i)
            c.observe(k);
    // Report exactly the top 3.
    const double r = c.ratioOf({{9, 0}, {8, 0}, {7, 0}});
    EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(ExactCounterTest, RatioColdReportLessThanOne)
{
    ExactCounter c;
    for (int k = 0; k < 10; ++k)
        for (int i = 0; i <= k; ++i)
            c.observe(k);
    const double r = c.ratioOf({{0, 0}, {1, 0}, {2, 0}});
    EXPECT_LT(r, 0.3);
    EXPECT_GT(r, 0.0);
}

TEST(ExactCounterTest, RatioEmptyReportIsZero)
{
    ExactCounter c;
    c.observe(1);
    EXPECT_EQ(c.ratioOf({}), 0.0);
}

TEST(PacRatio, PerfectAndCold)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 16;
    PacUnit pac(cfg);
    for (Pfn p = 0; p < 8; ++p)
        for (Pfn i = 0; i <= p; ++i)
            pac.observe(pageBase(p));
    EXPECT_NEAR(accessCountRatio(pac, std::vector<Pfn>{7, 6}), 1.0, 1e-12);
    EXPECT_LT(accessCountRatio(pac, std::vector<Pfn>{0, 1}), 0.25);
}

TEST(PacRatio, TopKEntryOverload)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 16;
    PacUnit pac(cfg);
    pac.observe(pageBase(1));
    pac.observe(pageBase(1));
    pac.observe(pageBase(2));
    const std::vector<TopKEntry> rep = {{1, 0}};
    EXPECT_NEAR(accessCountRatio(pac, rep), 1.0, 1e-12);
}

TEST(SparsityCdfTest, MonotoneAndBounded)
{
    WacConfig cfg;
    cfg.range_base = 0;
    cfg.range_bytes = 64 * kPageBytes;
    cfg.window_bytes = cfg.range_bytes;
    WacUnit wac(cfg);
    // Page 0: 2 words; page 1: 20 words; page 2: 60 words.
    for (unsigned w = 0; w < 2; ++w)
        wac.observe(pageBase(0) + w * kWordBytes);
    for (unsigned w = 0; w < 20; ++w)
        wac.observe(pageBase(1) + w * kWordBytes);
    for (unsigned w = 0; w < 60; ++w)
        wac.observe(pageBase(2) + w * kWordBytes);
    wac.fold();
    const auto cdf = sparsityCdf(wac);
    // Thresholds 4, 8, 16, 32, 48.
    EXPECT_NEAR(cdf[0], 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(cdf[2], 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(cdf[3], 2.0 / 3.0, 1e-9);
    for (std::size_t i = 1; i < cdf.size(); ++i)
        EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(LogCdf, MonotoneZeroToOne)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 256;
    PacUnit pac(cfg);
    for (Pfn p = 0; p < 256; ++p)
        for (Pfn i = 0; i < (p % 16) + 1; ++i)
            pac.observe(pageBase(p));
    const auto cdf = accessCountLogCdf(pac, 16);
    ASSERT_EQ(cdf.xs.size(), 16u);
    for (std::size_t i = 1; i < cdf.ys.size(); ++i) {
        EXPECT_GE(cdf.ys[i], cdf.ys[i - 1]);
        EXPECT_GE(cdf.xs[i], cdf.xs[i - 1]);
    }
    EXPECT_NEAR(cdf.ys.back(), 1.0, 1e-12);
}

TEST(LogCdf, PercentileOfPac)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 128;
    PacUnit pac(cfg);
    for (Pfn p = 0; p < 100; ++p)
        for (Pfn i = 0; i <= p; ++i)
            pac.observe(pageBase(p));
    EXPECT_NEAR(accessCountPercentile(pac, 50), 50.0, 1.0);
    EXPECT_NEAR(accessCountPercentile(pac, 99), 99.0, 1.0);
}

TEST(Report, Geomean)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({3.0}), 3.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Report, NormalizedPerformanceThroughput)
{
    EXPECT_NEAR(normalizedPerformance(100.0, 150.0, 0, 0, false), 1.5,
                1e-12);
}

TEST(Report, NormalizedPerformanceLatency)
{
    // Latency-sensitive: inverse p99 ratio (§7.2, Redis).
    EXPECT_NEAR(normalizedPerformance(0, 0, 200.0, 100.0, true), 2.0,
                1e-12);
}

TEST(Report, RatioStr)
{
    EXPECT_EQ(ratioStr(1.5), "1.50x");
    EXPECT_EQ(ratioStr(2.0, 1), "2.0x");
}

/** setenv/unsetenv wrapper that restores the old value on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_, saved_;
    bool had_ = false;
};

/**
 * Regression: emitTable must emit rows exactly in insertion order and
 * byte-identically run-to-run.  The parallel runner relies on this —
 * results are collected in grid order, and any reordering (or
 * unordered-container iteration upstream; see m5lint's
 * no-unordered-result-iteration rule) would break the 1-vs-4-worker
 * byte-identity guarantee of docs/RUNNER.md.
 */
TEST(Report, EmitTablePinsInsertionOrder)
{
    ScopedEnv no_csv("M5_BENCH_CSV", nullptr);
    TextTable t({"bench", "value"});
    // Deliberately non-alphabetical, non-numeric order: emitTable must
    // not "helpfully" sort.
    t.addRow({"zeta", "3"});
    t.addRow({"alpha", "1"});
    t.addRow({"mcf", "2"});

    std::ostringstream a, b;
    emitTable(a, t);
    emitTable(b, t);
    EXPECT_EQ(a.str(), b.str());

    const std::string out = a.str();
    const auto z = out.find("zeta");
    const auto al = out.find("alpha");
    const auto m = out.find("mcf");
    ASSERT_NE(z, std::string::npos);
    ASSERT_NE(al, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    EXPECT_LT(z, al);
    EXPECT_LT(al, m);
}

TEST(Report, EmitTableCsvFileKeepsOrderAndSection)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "m5_emit_order.csv")
            .string();
    std::filesystem::remove(path);
    ScopedEnv csv("M5_BENCH_CSV", path.c_str());

    TextTable t({"k", "v"});
    t.addRow({"b", "1"});
    t.addRow({"a", "2"});
    std::ostringstream ignored;
    emitTable(ignored, t, "fig99");

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string l1, l2, l3, l4;
    std::getline(in, l1);
    std::getline(in, l2);
    std::getline(in, l3);
    std::getline(in, l4);
    EXPECT_EQ(l1, "# fig99");
    EXPECT_EQ(l2, "k,v");
    EXPECT_EQ(l3, "b,1");
    EXPECT_EQ(l4, "a,2");
    std::filesystem::remove(path);
}

} // namespace
} // namespace m5
