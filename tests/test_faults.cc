/**
 * @file
 * Tests for the deterministic fault-injection subsystem (docs/FAULTS.md):
 * spec parsing (including malformed specs), injector trigger semantics
 * (probability, burst, after-deadline), every injection point end to
 * end, the Promoter retry/backoff/drop pipeline, the Elector circuit
 * breaker, the Monitor degradation ladder, the invariant checker — and
 * the two headline guarantees: an inert plan (p=0) is byte-identical to
 * no plan at all, and a seeded fault campaign is byte-identical between
 * 1 and 4 sweep workers with invariants clean.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "fault/fault.hh"
#include "sim/fault/invariant.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

namespace fs = std::filesystem;

/** setenv/unsetenv wrapper that restores the old value on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_ = false;
};

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = fs::temp_directory_path() /
                ("m5_faults_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

TEST(FaultPlanTest, ParsesTheDocumentedExampleSpec)
{
    const auto plan = FaultPlan::parse(
        "migrate_busy:p=0.05,mmio_stale:after=2ms,ddr_alloc:burst=100@5ms");
    EXPECT_FALSE(plan.inert());
    EXPECT_DOUBLE_EQ(plan.rule(FaultPoint::MigrateBusy).p, 0.05);
    EXPECT_TRUE(plan.rule(FaultPoint::MmioStale).has_after);
    EXPECT_EQ(plan.rule(FaultPoint::MmioStale).after, msToTicks(2.0));
    EXPECT_EQ(plan.rule(FaultPoint::DdrAlloc).burst_count, 100u);
    EXPECT_EQ(plan.rule(FaultPoint::DdrAlloc).burst_at, msToTicks(5.0));
    EXPECT_FALSE(plan.rule(FaultPoint::WakeDelay).active());
    EXPECT_FALSE(plan.rule(FaultPoint::WakeDrop).active());
}

TEST(FaultPlanTest, ParsesCopyRaceClauses)
{
    // The 6th fault point (docs/MIGRATION.md): a store racing the
    // transactional copy window.  Same grammar as every other point.
    const auto p = FaultPlan::parse("copy_race:p=0.25");
    EXPECT_FALSE(p.inert());
    EXPECT_DOUBLE_EQ(p.rule(FaultPoint::CopyRace).p, 0.25);

    const auto burst = FaultPlan::parse("copy_race:burst=8@2ms");
    EXPECT_FALSE(burst.inert());
    EXPECT_EQ(burst.rule(FaultPoint::CopyRace).burst_count, 8u);
    EXPECT_EQ(burst.rule(FaultPoint::CopyRace).burst_at, msToTicks(2.0));

    EXPECT_TRUE(FaultPlan::parse("copy_race:p=0").inert());
    FatalCaptureScope capture;
    EXPECT_THROW(FaultPlan::parse("copy_race:bogus=1"), FatalError);
}

TEST(FaultPlanTest, MergesRepeatedClausesForOnePoint)
{
    const auto plan =
        FaultPlan::parse("wake_drop:p=0.5,wake_drop:delay=3us");
    EXPECT_DOUBLE_EQ(plan.rule(FaultPoint::WakeDrop).p, 0.5);
    EXPECT_EQ(plan.rule(FaultPoint::WakeDrop).delay, usToTicks(3.0));
}

TEST(FaultPlanTest, EmptyAndZeroProbabilityPlansAreInert)
{
    EXPECT_TRUE(FaultPlan::parse("").inert());
    EXPECT_TRUE(FaultPlan::parse("migrate_busy:p=0").inert());
    EXPECT_TRUE(
        FaultPlan::parse("migrate_busy:p=0,mmio_stale:p=0.0").inert());
    EXPECT_FALSE(FaultPlan::parse("migrate_busy:p=0.001").inert());
    EXPECT_FALSE(FaultPlan::parse("ddr_alloc:burst=1@0").inert());
    EXPECT_FALSE(FaultPlan::parse("mmio_stale:after=0").inert());
}

TEST(FaultPlanTest, DurationSuffixes)
{
    EXPECT_EQ(parseDuration("5", "t"), 5u);
    EXPECT_EQ(parseDuration("5ns", "t"), 5u);
    EXPECT_EQ(parseDuration("2us", "t"), usToTicks(2.0));
    EXPECT_EQ(parseDuration("2ms", "t"), msToTicks(2.0));
    EXPECT_EQ(parseDuration("1s", "t"), secondsToTicks(1.0));
}

TEST(FaultPlanTest, MalformedSpecsAreFatal)
{
    FatalCaptureScope capture;
    EXPECT_THROW(FaultPlan::parse("bogus_point:p=0.1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("migrate_busy:bogus=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("migrate_busy:p=nan_garbage"),
                 FatalError);
    EXPECT_THROW(FaultPlan::parse("migrate_busy:p=1.5"), FatalError);
    EXPECT_THROW(FaultPlan::parse("migrate_busy"), FatalError);
    EXPECT_THROW(FaultPlan::parse("migrate_busy:p"), FatalError);
    EXPECT_THROW(FaultPlan::parse("ddr_alloc:burst=10"), FatalError);
    EXPECT_THROW(parseDuration("5xs", "t"), FatalError);
    EXPECT_THROW(parseDuration("-3ms", "t"), FatalError);
}

// ---------------------------------------------------------------------
// Injector trigger semantics
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, CertainAndImpossibleProbabilities)
{
    FaultInjector always(FaultPlan::parse("migrate_busy:p=1"), 7);
    FaultInjector never(FaultPlan::parse("migrate_busy:p=0.0001"), 7);
    for (int i = 0; i < 64; ++i)
        EXPECT_TRUE(always.fires(FaultPoint::MigrateBusy, 0));
    EXPECT_EQ(always.injected(FaultPoint::MigrateBusy), 64u);
    EXPECT_EQ(always.injectedTotal(), 64u);
    // Other points stay quiet.
    EXPECT_FALSE(always.fires(FaultPoint::DdrAlloc, 0));
    (void)never; // p>0 may fire; only the p=1 behavior is pinned.
}

TEST(FaultInjectorTest, AfterDeadlineFiresFromItsTimeOn)
{
    FaultInjector inj(FaultPlan::parse("mmio_stale:after=2ms"), 1);
    EXPECT_FALSE(inj.fires(FaultPoint::MmioStale, 0));
    EXPECT_FALSE(inj.fires(FaultPoint::MmioStale, msToTicks(2.0) - 1));
    EXPECT_TRUE(inj.fires(FaultPoint::MmioStale, msToTicks(2.0)));
    EXPECT_TRUE(inj.fires(FaultPoint::MmioStale, msToTicks(9.0)));
    EXPECT_EQ(inj.injected(FaultPoint::MmioStale), 2u);
}

TEST(FaultInjectorTest, BurstFiresExactlyNTimesFromItsStart)
{
    FaultInjector inj(FaultPlan::parse("ddr_alloc:burst=3@5ms"), 1);
    EXPECT_FALSE(inj.fires(FaultPoint::DdrAlloc, msToTicks(1.0)));
    EXPECT_TRUE(inj.fires(FaultPoint::DdrAlloc, msToTicks(5.0)));
    EXPECT_TRUE(inj.fires(FaultPoint::DdrAlloc, msToTicks(5.5)));
    EXPECT_TRUE(inj.fires(FaultPoint::DdrAlloc, msToTicks(6.0)));
    EXPECT_FALSE(inj.fires(FaultPoint::DdrAlloc, msToTicks(7.0)));
    EXPECT_EQ(inj.injected(FaultPoint::DdrAlloc), 3u);
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameDecisions)
{
    const auto plan = FaultPlan::parse("migrate_busy:p=0.3");
    FaultInjector a(plan, 42), b(plan, 42), c(plan, 43);
    std::vector<bool> da, db, dc;
    for (int i = 0; i < 256; ++i) {
        da.push_back(a.fires(FaultPoint::MigrateBusy, 0));
        db.push_back(b.fires(FaultPoint::MigrateBusy, 0));
        dc.push_back(c.fires(FaultPoint::MigrateBusy, 0));
    }
    EXPECT_EQ(da, db);
    EXPECT_NE(da, dc) << "different seeds should diverge";
    EXPECT_GT(a.injected(FaultPoint::MigrateBusy), 0u);
    EXPECT_LT(a.injected(FaultPoint::MigrateBusy), 256u);
}

TEST(FaultInjectorTest, DelayForUsesRuleDelayOrDefault)
{
    FaultInjector custom(FaultPlan::parse("wake_delay:p=1,"
                                          "wake_delay:delay=7us"),
                         1);
    EXPECT_EQ(custom.delayFor(FaultPoint::WakeDelay), usToTicks(7.0));
    FaultInjector dflt(FaultPlan::parse("wake_delay:p=1"), 1);
    EXPECT_GT(dflt.delayFor(FaultPoint::WakeDelay), 0u);
    EXPECT_GT(dflt.delayFor(FaultPoint::WakeDrop), 0u);
}

// ---------------------------------------------------------------------
// MigrationEngine under injection: transient outcomes
// ---------------------------------------------------------------------

/** 4-frame DDR, 12 pages in CXL, with an armable injector. */
class FaultEngineTest : public ::testing::Test
{
  protected:
    FaultEngineTest()
    {
        TieredMemoryParams p;
        p.ddr_bytes = 4 * kPageBytes;
        p.cxl_bytes = 16 * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(12);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(12, topo->numTiers());
        mglru = &lrus->top();
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        for (Vpn v = 0; v < 12; ++v)
            pt->map(v, *alloc->allocate(kNodeCxl), kNodeCxl);
    }

    void
    arm(const std::string &spec)
    {
        faults = std::make_unique<FaultInjector>(FaultPlan::parse(spec), 1);
        engine->attachFaults(faults.get());
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    MgLru *mglru = nullptr;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
    std::unique_ptr<FaultInjector> faults;
};

TEST_F(FaultEngineTest, TransientBusyLeavesPageAtSource)
{
    arm("migrate_busy:p=1");
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::TransientBusy);
    EXPECT_TRUE(res.transient());
    EXPECT_FALSE(res.ok());
    EXPECT_STREQ(res.reason(), "busy");
    EXPECT_GT(res.busy, 0u) << "the aborted attempt still costs cycles";
    EXPECT_EQ(pt->pte(0).node, kNodeCxl) << "page must stay at source";
    EXPECT_EQ(engine->stats().promoted, 0u);
    EXPECT_EQ(engine->stats().transient_fail, 1u);
    EXPECT_EQ(alloc->usedFrames(kNodeDdr), 0u) << "no frame leaked";
}

TEST_F(FaultEngineTest, DdrAllocFailureIsTransientNoFrame)
{
    arm("ddr_alloc:p=1");
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::TransientNoFrame);
    EXPECT_TRUE(res.transient());
    EXPECT_STREQ(res.reason(), "no_frame");
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
    EXPECT_EQ(engine->stats().transient_fail, 1u);
}

TEST_F(FaultEngineTest, TransientIsDistinctFromPermanentRejects)
{
    arm("migrate_busy:p=1");
    pt->pte(3).pinned = true;
    const MigrateResult pinned = engine->promote(3, 0);
    EXPECT_EQ(pinned.outcome, MigrateOutcome::RejectedPinned);
    EXPECT_FALSE(pinned.transient());
    EXPECT_EQ(engine->stats().rejected_pinned, 1u);
    EXPECT_EQ(engine->stats().transient_fail, 0u)
        << "eligibility rejects precede injection";
}

TEST_F(FaultEngineTest, BatchClassifiesPerPageOutcomes)
{
    arm("migrate_busy:burst=2@0");
    const BatchResult batch = engine->promoteBatch({0, 1, 2, 3}, 0);
    EXPECT_EQ(batch.transient, 2u) << "burst hits the first two pages";
    EXPECT_EQ(batch.promoted, 2u) << "partial batch still commits";
    EXPECT_EQ(pt->pte(2).node, kNodeDdr);
    EXPECT_EQ(pt->pte(3).node, kNodeDdr);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
}

// ---------------------------------------------------------------------
// Promoter retry queue: backoff, success, drops
// ---------------------------------------------------------------------

TEST_F(FaultEngineTest, PromoterRetriesAfterBackoffAndSucceeds)
{
    arm("migrate_busy:burst=1@0"); // exactly the first attempt fails
    RetryConfig retry;
    retry.backoff_base = usToTicks(200);
    Promoter prom(*pt, *engine, retry);

    const PromoteRound r1 = prom.promote({0}, 0);
    EXPECT_EQ(r1.attempted, 1u);
    EXPECT_EQ(r1.failed, 1u);
    EXPECT_EQ(prom.pendingRetries(), 1u);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);

    // Before the backoff expires the entry just waits.  The backoff
    // clock starts when the failed attempt *finished* (r1.busy in).
    const PromoteRound r2 = prom.promote({}, usToTicks(100));
    EXPECT_EQ(r2.attempted, 0u);
    EXPECT_EQ(prom.pendingRetries(), 1u);

    // After the backoff the retry is issued and lands the page.
    const PromoteRound r3 = prom.promote({}, r1.busy + usToTicks(200));
    EXPECT_EQ(r3.attempted, 1u);
    EXPECT_EQ(r3.failed, 0u);
    EXPECT_EQ(prom.pendingRetries(), 0u);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    EXPECT_EQ(prom.stats().retried, 1u);
    EXPECT_EQ(prom.stats().retry_succeeded, 1u);
    EXPECT_EQ(prom.stats().dropped, 0u);
    EXPECT_EQ(engine->stats().retries, 1u);
}

TEST_F(FaultEngineTest, PromoterDropsAfterMaxAttempts)
{
    arm("migrate_busy:p=1"); // every attempt fails
    RetryConfig retry;
    retry.max_attempts = 3;
    retry.backoff_base = 100;
    Promoter prom(*pt, *engine, retry);

    (void)prom.promote({0}, 0);
    Tick now = 0;
    for (int round = 0; round < 6 && prom.pendingRetries() > 0; ++round) {
        now += msToTicks(1.0); // far past any backoff
        (void)prom.promote({}, now);
    }
    EXPECT_EQ(prom.pendingRetries(), 0u);
    EXPECT_EQ(prom.stats().dropped, 1u);
    EXPECT_EQ(prom.stats().retried, 2u)
        << "attempts 2 and 3 of max_attempts=3 are retries";
    EXPECT_EQ(engine->stats().dropped, 1u);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
}

TEST_F(FaultEngineTest, PromoterQueueOverflowDropsNewestFailure)
{
    arm("migrate_busy:p=1");
    RetryConfig retry;
    retry.queue_capacity = 2;
    Promoter prom(*pt, *engine, retry);
    (void)prom.promote({0, 1, 2, 3}, 0);
    EXPECT_EQ(prom.pendingRetries(), 2u);
    EXPECT_EQ(prom.stats().dropped, 2u);
}

// ---------------------------------------------------------------------
// Elector circuit breaker
// ---------------------------------------------------------------------

TEST(BreakerTest, OpensOnFailureSpikeThenRecoversViaHalfOpen)
{
    // A 2-node memory with free DDR keeps evaluate() in its bootstrap
    // "migrate" fast path, so the breaker overlay is what we observe.
    TieredMemoryParams p;
    p.ddr_bytes = 8 * kPageBytes;
    p.cxl_bytes = 8 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    Monitor monitor(*mem, pt);
    monitor.sample(0);

    ElectorConfig cfg;
    cfg.breaker_min_samples = 8;
    cfg.breaker_fail_threshold = 0.5;
    cfg.breaker_cooldown = 2;
    Elector elector(cfg);

    EXPECT_EQ(elector.breakerState(), BreakerState::Closed);

    // A failing window opens the breaker at the next evaluation.
    elector.noteBatchOutcome(10, 9);
    auto d = elector.evaluate(monitor);
    EXPECT_EQ(elector.breakerState(), BreakerState::Open);
    EXPECT_TRUE(d.breaker_open);
    EXPECT_FALSE(d.migrate);
    EXPECT_EQ(elector.breakerOpened(), 1u);
    EXPECT_EQ(elector.breakerDeferred(), 1u);

    // Open widens pacing relative to a clean elector's same decision.
    Elector clean(cfg);
    EXPECT_GT(d.period, clean.evaluate(monitor).period);

    // Cooldown (2 evaluations) ends in HalfOpen: a probe is allowed.
    d = elector.evaluate(monitor);
    EXPECT_EQ(elector.breakerState(), BreakerState::HalfOpen);
    d = elector.evaluate(monitor);
    EXPECT_TRUE(d.migrate) << "half-open must allow the probe round";
    EXPECT_FALSE(d.breaker_open);

    // A clean probe closes the breaker.
    elector.noteBatchOutcome(8, 0);
    d = elector.evaluate(monitor);
    EXPECT_EQ(elector.breakerState(), BreakerState::Closed);
    EXPECT_EQ(elector.breakerClosed(), 1u);
    EXPECT_TRUE(d.migrate);
}

TEST(BreakerTest, FailedProbeReopens)
{
    TieredMemoryParams p;
    p.ddr_bytes = 8 * kPageBytes;
    p.cxl_bytes = 8 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    Monitor monitor(*mem, pt);
    monitor.sample(0);

    ElectorConfig cfg;
    cfg.breaker_cooldown = 2;
    Elector elector(cfg);
    elector.noteBatchOutcome(10, 10);
    (void)elector.evaluate(monitor); // -> Open (cooldown 2 -> 1)
    (void)elector.evaluate(monitor); // cooldown 1 -> 0: -> HalfOpen
    EXPECT_EQ(elector.breakerState(), BreakerState::HalfOpen);
    elector.noteBatchOutcome(4, 4); // probe failed hard
    (void)elector.evaluate(monitor);
    EXPECT_EQ(elector.breakerState(), BreakerState::Open);
    EXPECT_EQ(elector.breakerOpened(), 2u);
}

TEST(BreakerTest, SmallOrCleanWindowsNeverOpen)
{
    TieredMemoryParams p;
    p.ddr_bytes = 8 * kPageBytes;
    p.cxl_bytes = 8 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    Monitor monitor(*mem, pt);
    monitor.sample(0);

    Elector elector((ElectorConfig()));
    elector.noteBatchOutcome(3, 3); // below breaker_min_samples
    (void)elector.evaluate(monitor);
    EXPECT_EQ(elector.breakerState(), BreakerState::Closed);
    for (int i = 0; i < 10; ++i) {
        elector.noteBatchOutcome(16, 0);
        (void)elector.evaluate(monitor);
    }
    EXPECT_EQ(elector.breakerState(), BreakerState::Closed);
    EXPECT_EQ(elector.breakerOpened(), 0u);
}

// ---------------------------------------------------------------------
// Monitor degradation ladder
// ---------------------------------------------------------------------

TEST(DegradeLadderTest, ThreeStaleSecondariesStepToHptOnly)
{
    TieredMemoryParams p;
    p.ddr_bytes = 8 * kPageBytes;
    p.cxl_bytes = 8 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    Monitor monitor(*mem, pt);

    EXPECT_EQ(monitor.degrade(), MonitorDegrade::Full);
    for (int i = 0; i < 2; ++i) {
        monitor.noteMmioQuery(/*primary=*/false, /*stale=*/true);
        EXPECT_EQ(monitor.degrade(), MonitorDegrade::Full);
    }
    monitor.noteMmioQuery(false, true);
    EXPECT_EQ(monitor.degrade(), MonitorDegrade::HptOnly);
    EXPECT_EQ(monitor.staleMmio(), 3u);

    // One fresh snapshot recovers fully.
    monitor.noteMmioQuery(false, false);
    EXPECT_EQ(monitor.degrade(), MonitorDegrade::Full);
}

TEST(DegradeLadderTest, StalePrimaryStepsToNoOpAndDominates)
{
    TieredMemoryParams p;
    p.ddr_bytes = 8 * kPageBytes;
    p.cxl_bytes = 8 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    Monitor monitor(*mem, pt);

    for (std::uint64_t i = 0; i < Monitor::kStaleRunThreshold; ++i) {
        monitor.noteMmioQuery(/*primary=*/true, /*stale=*/true);
        monitor.noteMmioQuery(/*primary=*/false, /*stale=*/true);
    }
    EXPECT_EQ(monitor.degrade(), MonitorDegrade::NoOp)
        << "a stale primary outranks a stale secondary";
    monitor.noteMmioQuery(true, false);
    EXPECT_EQ(monitor.degrade(), MonitorDegrade::HptOnly)
        << "primary fresh again, secondary still stale";
    monitor.noteMmioQuery(false, false);
    EXPECT_EQ(monitor.degrade(), MonitorDegrade::Full);
}

// ---------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------

TEST_F(FaultEngineTest, InvariantCheckerCleanOnHealthyState)
{
    InvariantChecker inv(*pt, *alloc, *mem, *lrus, ledger);
    EXPECT_TRUE(inv.check(0).empty());
    (void)engine->promote(0, 0);
    (void)engine->promote(1, 0);
    (void)engine->demote(0, usToTicks(10.0));
    EXPECT_TRUE(inv.check(usToTicks(20.0)).empty());
    EXPECT_EQ(inv.checks(), 2u);
    EXPECT_EQ(inv.violations(), 0u);
}

TEST_F(FaultEngineTest, InvariantCheckerCatchesDeliberateCorruption)
{
    InvariantChecker inv(*pt, *alloc, *mem, *lrus, ledger);
    ASSERT_TRUE(inv.check(0).empty());
    // Lie about a page's node without moving it: residency, allocator
    // occupancy and MGLRU membership all stop agreeing.
    pt->pte(0).node = kNodeDdr;
    const auto bad = inv.check(1);
    EXPECT_FALSE(bad.empty());
    EXPECT_GT(inv.violations(), 0u);
}

TEST_F(FaultEngineTest, InvariantCheckerCatchesDuplicatePfn)
{
    InvariantChecker inv(*pt, *alloc, *mem, *lrus, ledger);
    pt->pte(1).pfn = pt->pte(0).pfn;
    const auto bad = inv.check(0);
    EXPECT_FALSE(bad.empty());
    bool mentions_dup = false;
    for (const auto &s : bad)
        if (s.find("pfn") != std::string::npos)
            mentions_dup = true;
    EXPECT_TRUE(mentions_dup);
}

// ---------------------------------------------------------------------
// Full system: wake faults, inertness, campaigns
// ---------------------------------------------------------------------

SystemConfig
smallConfig()
{
    return makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, 1);
}

TEST(FaultSystemTest, InertSpecIsByteIdenticalToNoSpec)
{
    TempDir dir("inert");
    auto once = [&](const std::string &spec, const std::string &tag) {
        SystemConfig cfg = smallConfig();
        cfg.faults = spec;
        cfg.telemetry.path = (dir.path() / (tag + ".jsonl")).string();
        cfg.trace.path = (dir.path() / (tag + ".trace.json")).string();
        TieredSystem sys(cfg);
        RunResult r = sys.run(40000);
        EXPECT_EQ(sys.faults(), nullptr)
            << "inert plan must not even construct the injector";
        return r;
    };
    const RunResult off = once("", "off");
    const RunResult p0 =
        once("migrate_busy:p=0,mmio_stale:p=0,copy_race:p=0", "p0");

    EXPECT_EQ(off.runtime, p0.runtime);
    EXPECT_EQ(off.accesses, p0.accesses);
    EXPECT_EQ(off.kernel_time, p0.kernel_time);
    EXPECT_EQ(off.migration.promoted, p0.migration.promoted);
    EXPECT_EQ(off.migration.transient_fail, 0u);
    EXPECT_DOUBLE_EQ(off.steady_throughput, p0.steady_throughput);
    // The observability streams are byte-identical too.
    EXPECT_EQ(slurp(dir.path() / "off.jsonl"),
              slurp(dir.path() / "p0.jsonl"));
    EXPECT_EQ(slurp(dir.path() / "off.trace.json"),
              slurp(dir.path() / "p0.trace.json"));
    const std::string telem = slurp(dir.path() / "off.jsonl");
    EXPECT_EQ(telem.find("sim.fault"), std::string::npos)
        << "fault counters must not appear in fault-free telemetry";
    EXPECT_EQ(telem.find("breaker"), std::string::npos);
}

TEST(FaultSystemTest, ActiveCampaignInjectsAndStaysConsistent)
{
    SystemConfig cfg = smallConfig();
    cfg.faults = "migrate_busy:p=0.3,mmio_stale:p=0.3,ddr_alloc:p=0.05,"
                 "wake_drop:p=0.05,wake_delay:p=0.05";
    TieredSystem sys(cfg);
    const RunResult r = sys.run(60000);

    ASSERT_NE(sys.faults(), nullptr);
    EXPECT_GT(sys.faults()->injectedTotal(), 0u);
    EXPECT_GT(r.migration.transient_fail, 0u);
    EXPECT_GT(r.migration.retries, 0u);
    EXPECT_GT(sys.monitor().staleMmio(), 0u);
    ASSERT_NE(sys.invariants(), nullptr);
    EXPECT_GT(sys.invariants()->checks(), 0u);
    EXPECT_EQ(sys.invariants()->violations(), 0u)
        << "faults must degrade, never corrupt";
}

TEST(FaultSystemTest, SameSeedSameFaultsDifferentSeedDifferent)
{
    auto run = [](std::uint64_t seed) {
        SystemConfig cfg =
            makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, seed);
        cfg.faults = "migrate_busy:p=0.3";
        TieredSystem sys(cfg);
        RunResult r = sys.run(40000);
        return std::make_pair(r.runtime, r.migration.transient_fail);
    };
    const auto a = run(1), b = run(1), c = run(2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(FaultSystemTest, WakeFaultsRescheduleTheDaemon)
{
    SystemConfig cfg = smallConfig();
    cfg.faults = "wake_drop:p=0.2,wake_delay:p=0.2";
    cfg.trace.collect = true;
    cfg.trace.categories = kTraceAllCats;
    TieredSystem sys(cfg);
    (void)sys.run(40000);
    ASSERT_NE(sys.faults(), nullptr);
    EXPECT_GT(sys.faults()->injected(FaultPoint::WakeDrop) +
                  sys.faults()->injected(FaultPoint::WakeDelay),
              0u);
    bool saw_wake_fault = false;
    for (const TraceEvent &ev : sys.tracer()->events())
        if (ev.name == "fault.wake_drop" || ev.name == "fault.wake_delay")
            saw_wake_fault = true;
    EXPECT_TRUE(saw_wake_fault);
}

TEST(FaultRunnerTest, CampaignIsByteIdenticalAcrossWorkerCounts)
{
    ScopedEnv faults_env("M5_BENCH_FAULTS",
                         "migrate_busy:p=0.2,mmio_stale:p=0.2");
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .policies({PolicyKind::M5HptDriven, PolicyKind::Anb})
        .seeds(2)
        .scale(1.0 / 128.0)
        .budgetOverride(20000);
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 4u);

    auto sweep = [&](unsigned workers) {
        RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = 0;
        ExperimentRunner runner(opts);
        std::vector<std::vector<std::string>> rows;
        const auto outcomes = runner.run(jobs);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
            rows.push_back(runResultCsvRow(jobs[i], outcomes[i].value));
        }
        return rows;
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(4);
    EXPECT_EQ(serial, parallel);

    // The campaign actually injected: rerun one cell directly.
    SystemConfig cfg = jobs[0].config;
    cfg.faults = "migrate_busy:p=0.2,mmio_stale:p=0.2";
    TieredSystem sys(cfg);
    const RunResult r = sys.run(jobs[0].budget);
    EXPECT_GT(r.migration.transient_fail, 0u);
}

TEST(FaultRunnerTest, TxnCampaignIsByteIdenticalAcrossWorkerCounts)
{
    // Same determinism pin for the transactional pipeline: a copy_race
    // storm over a write-heavy workload drives commits, aborts, shadow
    // invalidations and free demotions, and none of it may depend on
    // the worker-pool size (docs/MIGRATION.md).
    ScopedEnv faults_env("M5_BENCH_FAULTS",
                         "migrate_busy:p=0.1,copy_race:p=0.2");
    SweepGrid grid;
    grid.benchmark("redis")
        .policies({PolicyKind::M5HptDriven})
        .seeds(2)
        .scale(1.0 / 128.0)
        .budgetOverride(20000);
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 2u);

    auto sweep = [&](unsigned workers) {
        RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = 0;
        ExperimentRunner runner(opts);
        std::vector<std::vector<std::string>> rows;
        const auto outcomes = runner.run(jobs);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
            rows.push_back(runResultCsvRow(jobs[i], outcomes[i].value));
        }
        return rows;
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(4);
    EXPECT_EQ(serial, parallel);

    // A direct rerun of one cell reproduces the exact txn counters and
    // the storm really exercised both commit and abort arms.
    auto cell = [&] {
        SystemConfig cfg = jobs[0].config;
        cfg.faults = "migrate_busy:p=0.1,copy_race:p=0.2";
        TieredSystem sys(cfg);
        return sys.run(jobs[0].budget);
    };
    const RunResult a = cell(), b = cell();
    EXPECT_GT(a.txn.commits, 0u);
    EXPECT_GT(a.txn.aborts, 0u);
    EXPECT_EQ(a.txn.commits, b.txn.commits);
    EXPECT_EQ(a.txn.aborts, b.txn.aborts);
    EXPECT_EQ(a.txn.degraded_pages, b.txn.degraded_pages);
    EXPECT_EQ(a.txn.demoted_free, b.txn.demoted_free);
    EXPECT_EQ(a.runtime, b.runtime);
}

} // namespace
} // namespace m5
