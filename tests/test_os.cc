/**
 * @file
 * Unit tests for src/os: page table, frame allocator, kernel ledger,
 * MGLRU, and the migration engine.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "mem/memsys.hh"
#include "os/costs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/migration.hh"
#include "os/page_table.hh"

namespace m5 {
namespace {

TEST(PageTable, MapAndWalk)
{
    PageTable pt(16);
    pt.map(3, 100, kNodeCxl);
    const Pte &e = pt.pte(3);
    EXPECT_TRUE(e.valid);
    EXPECT_TRUE(e.present);
    EXPECT_FALSE(e.accessed);
    EXPECT_EQ(pt.walk(3), 100u);
    EXPECT_TRUE(pt.pte(3).accessed);
}

TEST(PageTable, ReverseMap)
{
    PageTable pt(16);
    pt.map(3, 100, kNodeCxl);
    EXPECT_EQ(pt.vpnOfPfn(100), 3u);
    EXPECT_EQ(pt.vpnOfPfn(101), 16u); // numPages() sentinel.
}

TEST(PageTable, RemapMovesNodesAndRmap)
{
    PageTable pt(16);
    pt.map(3, 100, kNodeCxl);
    pt.remap(3, 7, kNodeDdr);
    EXPECT_EQ(pt.pte(3).pfn, 7u);
    EXPECT_EQ(pt.pte(3).node, kNodeDdr);
    EXPECT_EQ(pt.vpnOfPfn(7), 3u);
    EXPECT_EQ(pt.vpnOfPfn(100), 16u);
}

TEST(PageTable, NodeResidencyCounts)
{
    PageTable pt(8);
    pt.map(0, 10, kNodeCxl);
    pt.map(1, 11, kNodeCxl);
    pt.map(2, 3, kNodeDdr);
    EXPECT_EQ(pt.pagesOnNode(kNodeCxl), 2u);
    EXPECT_EQ(pt.pagesOnNode(kNodeDdr), 1u);
    pt.remap(0, 4, kNodeDdr);
    EXPECT_EQ(pt.pagesOnNode(kNodeCxl), 1u);
    EXPECT_EQ(pt.pagesOnNode(kNodeDdr), 2u);
}

TEST(FrameAlloc, AllocatesDistinctFrames)
{
    TieredMemoryParams p;
    p.ddr_bytes = 4 * kPageBytes;
    p.cxl_bytes = 4 * kPageBytes;
    auto mem = makeTieredMemory(p);
    FrameAllocator alloc(*mem);
    EXPECT_EQ(alloc.totalFrames(kNodeDdr), 4u);
    auto a = alloc.allocate(kNodeDdr);
    auto b = alloc.allocate(kNodeDdr);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(alloc.usedFrames(kNodeDdr), 2u);
}

TEST(FrameAlloc, ExhaustionReturnsNullopt)
{
    TieredMemoryParams p;
    p.ddr_bytes = 2 * kPageBytes;
    p.cxl_bytes = 2 * kPageBytes;
    auto mem = makeTieredMemory(p);
    FrameAllocator alloc(*mem);
    EXPECT_TRUE(alloc.allocate(kNodeDdr).has_value());
    EXPECT_TRUE(alloc.allocate(kNodeDdr).has_value());
    EXPECT_FALSE(alloc.allocate(kNodeDdr).has_value());
}

TEST(FrameAlloc, FreeReturnsCapacity)
{
    TieredMemoryParams p;
    p.ddr_bytes = 2 * kPageBytes;
    p.cxl_bytes = 2 * kPageBytes;
    auto mem = makeTieredMemory(p);
    FrameAllocator alloc(*mem);
    auto a = alloc.allocate(kNodeCxl);
    alloc.free(kNodeCxl, *a);
    EXPECT_EQ(alloc.freeFrames(kNodeCxl), 2u);
}

TEST(FrameAlloc, CxlFramesInCxlRange)
{
    TieredMemoryParams p;
    p.ddr_bytes = 4 * kPageBytes;
    p.cxl_bytes = 4 * kPageBytes;
    auto mem = makeTieredMemory(p);
    FrameAllocator alloc(*mem);
    auto f = alloc.allocate(kNodeCxl);
    ASSERT_TRUE(f);
    EXPECT_TRUE(mem->tier(kNodeCxl).owns(pageBase(*f)));
}

TEST(KernelLedger, ChargesByCategory)
{
    KernelLedger l;
    l.charge(KernelWork::PteScan, 100);
    l.charge(KernelWork::HintFault, 50);
    l.charge(KernelWork::Migration, 30);
    l.charge(KernelWork::Baseline, 1000);
    EXPECT_EQ(l.category(KernelWork::PteScan), 100u);
    EXPECT_EQ(l.total(), 1180u);
    EXPECT_EQ(l.totalOverhead(), 180u);
    EXPECT_EQ(l.identificationCycles(), 150u);
    l.reset();
    EXPECT_EQ(l.total(), 0u);
}

TEST(KernelLedger, CategoryNames)
{
    EXPECT_EQ(kernelWorkName(KernelWork::PteScan), "pte-scan");
    EXPECT_EQ(kernelWorkName(KernelWork::Migration), "migration");
}

TEST(Costs, CycleConversionRoundTrip)
{
    EXPECT_EQ(cyclesToNs(2100), 1000u);
    EXPECT_EQ(nsToCycles(1000), 2100u);
}

TEST(MgLru, InsertAndVictim)
{
    MgLru lru(16);
    lru.insert(1);
    lru.insert(2);
    lru.insert(3);
    EXPECT_EQ(lru.size(), 3u);
    // Without aging all are in the youngest gen; the tail (first
    // inserted) is picked first.
    auto v = lru.pickVictims(1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 1u);
    EXPECT_EQ(lru.size(), 2u);
}

TEST(MgLru, TouchProtects)
{
    MgLru lru(16);
    lru.insert(1);
    lru.insert(2);
    lru.age();
    lru.touch(1); // Page 1 back to the youngest generation.
    auto v = lru.pickVictims(1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 2u);
}

TEST(MgLru, AgingDemotesGenerations)
{
    MgLru lru(16, 4);
    lru.insert(5);
    EXPECT_EQ(lru.generationOf(5), 0u);
    lru.age();
    EXPECT_EQ(lru.generationOf(5), 1u);
    lru.age();
    EXPECT_EQ(lru.generationOf(5), 2u);
    lru.age();
    EXPECT_EQ(lru.generationOf(5), 3u);
    lru.age(); // Survivors of the oldest fold into the (new) oldest.
    EXPECT_EQ(lru.generationOf(5), 3u);
}

TEST(MgLru, VictimOrderOldestFirst)
{
    MgLru lru(16, 4);
    lru.insert(1);
    lru.age();
    lru.insert(2); // Younger than 1.
    auto v = lru.pickVictims(2);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 1u);
    EXPECT_EQ(v[1], 2u);
}

TEST(MgLru, RemoveUntracks)
{
    MgLru lru(8);
    lru.insert(3);
    EXPECT_TRUE(lru.contains(3));
    lru.remove(3);
    EXPECT_FALSE(lru.contains(3));
    EXPECT_TRUE(lru.pickVictims(1).empty());
}

TEST(MgLru, TouchUntrackedIsNoop)
{
    MgLru lru(8);
    lru.touch(3);
    EXPECT_FALSE(lru.contains(3));
}

TEST(MgLru, PickMoreThanSize)
{
    MgLru lru(8);
    lru.insert(1);
    lru.insert(2);
    auto v = lru.pickVictims(10);
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(lru.size(), 0u);
}

TEST(MgLru, ManyOperationsStayConsistent)
{
    MgLru lru(256, 4);
    for (Vpn v = 0; v < 256; ++v)
        lru.insert(v);
    for (int round = 0; round < 10; ++round) {
        lru.age();
        for (Vpn v = 0; v < 256; v += 3)
            lru.touch(v);
    }
    auto victims = lru.pickVictims(64);
    EXPECT_EQ(victims.size(), 64u);
    // Untouched pages (v % 3 != 0) must be evicted before touched ones.
    for (Vpn v : victims)
        EXPECT_NE(v % 3, 0u) << "touched page " << v << " evicted early";
}

/** Migration engine fixture: 4-frame DDR, 16-frame CXL. */
class MigrationTest : public ::testing::Test
{
  protected:
    MigrationTest()
    {
        TieredMemoryParams p;
        p.ddr_bytes = 4 * kPageBytes;
        p.cxl_bytes = 16 * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(12);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(12, topo->numTiers());
        mglru = &lrus->top();
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        // Map 12 pages, all in CXL.
        for (Vpn v = 0; v < 12; ++v) {
            auto f = alloc->allocate(kNodeCxl);
            pt->map(v, *f, kNodeCxl);
        }
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    MgLru *mglru = nullptr;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
};

TEST_F(MigrationTest, PromoteMovesToDdr)
{
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_TRUE(res.ok());
    EXPECT_GT(res.busy, 0u);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    EXPECT_TRUE(mem->tier(kNodeDdr).owns(pageBase(pt->pte(0).pfn)));
    EXPECT_EQ(engine->stats().promoted, 1u);
    EXPECT_TRUE(mglru->contains(0));
}

TEST_F(MigrationTest, PromoteFreesSourceFrame)
{
    const std::size_t cxl_used_before = alloc->usedFrames(kNodeCxl);
    (void)engine->promote(0, 0);
    EXPECT_EQ(alloc->usedFrames(kNodeCxl), cxl_used_before - 1);
}

TEST_F(MigrationTest, PromotePinnedRejected)
{
    pt->pte(0).pinned = true;
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::RejectedPinned);
    EXPECT_STREQ(res.reason(), "pinned");
    EXPECT_EQ(res.busy, 0u);
    EXPECT_EQ(engine->stats().rejected_pinned, 1u);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
}

TEST_F(MigrationTest, PromoteDdrResidentRejected)
{
    (void)engine->promote(0, 0);
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::RejectedNotCxl);
    EXPECT_STREQ(res.reason(), "not_cxl");
    EXPECT_EQ(engine->stats().rejected_not_cxl, 1u);
}

TEST_F(MigrationTest, FullDdrTriggersDemotion)
{
    for (Vpn v = 0; v < 4; ++v)
        (void)engine->promote(v, 0);
    EXPECT_EQ(alloc->freeFrames(kNodeDdr), 0u);
    (void)engine->promote(4, 0);
    EXPECT_EQ(engine->stats().demoted, 1u);
    EXPECT_EQ(pt->pte(4).node, kNodeDdr);
    // Victim was the LRU page (vpn 0) and is back in CXL.
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
    EXPECT_EQ(pt->pagesOnNode(kNodeDdr), 4u);
}

TEST_F(MigrationTest, MigrationShootsDownTlb)
{
    Pfn pfn;
    tlb->fill(0, pt->pte(0).pfn);
    (void)engine->promote(0, 0);
    EXPECT_FALSE(tlb->lookup(0, pfn));
}

TEST_F(MigrationTest, MigrationFlushesCachedLines)
{
    const Addr line = pageBase(pt->pte(0).pfn);
    llc->access(line, true);
    (void)engine->promote(0, 0);
    EXPECT_FALSE(llc->access(line, false).hit); // Old PA invalidated.
}

TEST_F(MigrationTest, CopyTrafficVisibleToTiers)
{
    const auto cxl_reads_before =
        mem->tier(kNodeCxl).counters().read_bytes;
    const auto ddr_writes_before =
        mem->tier(kNodeDdr).counters().write_bytes;
    (void)engine->promote(0, 0);
    EXPECT_EQ(mem->tier(kNodeCxl).counters().read_bytes - cxl_reads_before,
              kPageBytes);
    EXPECT_EQ(mem->tier(kNodeDdr).counters().write_bytes -
              ddr_writes_before, kPageBytes);
}

TEST_F(MigrationTest, PromoteBatchCounts)
{
    const BatchResult batch = engine->promoteBatch({0, 1, 2}, 0);
    EXPECT_GT(batch.busy, 0u);
    EXPECT_EQ(batch.promoted, 3u);
    EXPECT_EQ(batch.transient + batch.rejected, 0u);
    EXPECT_EQ(engine->stats().promoted, 3u);
    EXPECT_EQ(pt->pagesOnNode(kNodeDdr), 3u);
}

TEST_F(MigrationTest, DemoteExplicit)
{
    (void)engine->promote(0, 0);
    const MigrateResult res = engine->demote(0, 0);
    EXPECT_TRUE(res.ok());
    EXPECT_GT(res.busy, 0u);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
    EXPECT_FALSE(mglru->contains(0));
}

TEST_F(MigrationTest, MigrationChargesLedger)
{
    (void)engine->promote(0, 0);
    EXPECT_GT(ledger.category(KernelWork::Migration), 0u);
    EXPECT_GT(ledger.category(KernelWork::TlbShootdown), 0u);
}

TEST_F(MigrationTest, CanPromoteChecks)
{
    EXPECT_TRUE(engine->canPromote(0));
    pt->pte(0).pinned = true;
    EXPECT_FALSE(engine->canPromote(0));
    (void)engine->promote(1, 0);
    EXPECT_FALSE(engine->canPromote(1));
}

TEST_F(MigrationTest, DdrFreeFramesTracks)
{
    EXPECT_EQ(engine->ddrFreeFrames(), 4u);
    (void)engine->promote(0, 0);
    EXPECT_EQ(engine->ddrFreeFrames(), 3u);
}

TEST_F(MigrationTest, CostRoughly54usAtFullScale)
{
    // With the unscaled default costs, one migration should take on the
    // order of the paper's ~54us (§7.2).
    const Tick t = engine->promote(0, 0).busy;
    EXPECT_GT(t, usToTicks(20.0));
    EXPECT_LT(t, usToTicks(100.0));
}

} // namespace
} // namespace m5
