/**
 * @file
 * Edge-case and error-path tests across subsystems: empty inputs,
 * boundary geometries, file-format errors, and the fatal/panic guards.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/cdf.hh"
#include "analysis/ratio.hh"
#include "common/zipf.hh"
#include "cxl/pac.hh"
#include "cxl/wac.hh"
#include "hwmodel/area_power.hh"
#include "m5/monitor.hh"
#include "mem/memsys.hh"
#include "os/page_table.hh"
#include "sketch/cm_sketch.hh"
#include "sketch/sorted_topk.hh"
#include "workloads/trace.hh"

namespace m5 {
namespace {

TEST(Edges, PacTopKOnEmptyUnit)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 8;
    PacUnit pac(cfg);
    EXPECT_TRUE(pac.topK(5).empty());
    EXPECT_EQ(pac.topKAccessSum(5), 0u);
    EXPECT_TRUE(pac.nonZeroCounts().empty());
}

TEST(Edges, RatioOnEmptyPac)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 8;
    PacUnit pac(cfg);
    EXPECT_EQ(accessCountRatio(pac, std::vector<Pfn>{1, 2}), 0.0);
    EXPECT_EQ(accessCountRatio(pac, std::vector<Pfn>{}), 0.0);
}

TEST(Edges, SparsityCdfOnEmptyWac)
{
    WacConfig cfg;
    cfg.range_base = 0;
    cfg.range_bytes = 8 * kPageBytes;
    cfg.window_bytes = 8 * kPageBytes;
    WacUnit wac(cfg);
    const auto cdf = sparsityCdf(wac);
    for (double v : cdf)
        EXPECT_EQ(v, 0.0);
}

TEST(Edges, LogCdfOnEmptyPac)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 8;
    PacUnit pac(cfg);
    EXPECT_TRUE(accessCountLogCdf(pac).xs.empty());
}

TEST(Edges, SingleCounterSketch)
{
    CmSketch s(1, 1, 7, 32);
    s.update(1);
    s.update(2);
    // Everything collides into the single counter.
    EXPECT_EQ(s.estimate(1), 2u);
    EXPECT_EQ(s.estimate(999), 2u);
}

TEST(Edges, TopKCapacityOne)
{
    SortedTopK t(1);
    t.offer(1, 5);
    t.offer(2, 3); // Below min: rejected.
    ASSERT_EQ(t.entries().size(), 1u);
    EXPECT_EQ(t.entries()[0].tag, 1u);
    t.offer(3, 9);
    EXPECT_EQ(t.entries()[0].tag, 3u);
}

TEST(Edges, ZipfTwoItemsHeavilySkewed)
{
    ZipfSampler z(2, 5.0);
    EXPECT_GT(z.mass(0), 0.95);
    Rng rng(1);
    int zero = 0;
    for (int i = 0; i < 1000; ++i)
        zero += z.sample(rng) == 0;
    EXPECT_GT(zero, 900);
}

TEST(Edges, AliasAllMassOnOneItem)
{
    AliasSampler a({0.0, 0.0, 5.0});
    Rng rng(2);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.sample(rng), 2u);
}

TEST(EdgesDeath, TraceLoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "garbage.trace";
    {
        std::ofstream f(path, std::ios::binary);
        f << "this is not a trace file at all";
    }
    EXPECT_EXIT(TraceBuffer::load(path),
                ::testing::ExitedWithCode(1), "not an M5 trace");
    std::remove(path.c_str());
}

TEST(EdgesDeath, TraceLoadMissingFile)
{
    EXPECT_EXIT(TraceBuffer::load("/nonexistent/path/x.trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Edges, TraceEmptyRoundTrip)
{
    TraceBuffer buf;
    const std::string path = ::testing::TempDir() + "empty.trace";
    buf.save(path);
    const TraceBuffer loaded = TraceBuffer::load(path);
    EXPECT_EQ(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(EdgesDeath, PageTableDoubleMapPanics)
{
    PageTable pt(4);
    pt.map(0, 10, kNodeCxl);
    EXPECT_DEATH(pt.map(0, 11, kNodeCxl), "already mapped");
}

TEST(EdgesDeath, PageTableWalkNonPresentPanics)
{
    PageTable pt(4);
    pt.map(0, 10, kNodeCxl);
    pt.pte(0).present = false;
    EXPECT_DEATH(pt.walk(0), "non-present");
}

TEST(EdgesDeath, MemorySystemUnownedAddressPanics)
{
    TieredMemoryParams p;
    p.ddr_bytes = kPageBytes;
    p.cxl_bytes = kPageBytes;
    auto mem = makeTieredMemory(p);
    EXPECT_DEATH(mem->access(10 * kPageBytes, false, 0),
                 "not owned by any tier");
}

TEST(Edges, MonitorBeforeAnyTraffic)
{
    TieredMemoryParams p;
    p.ddr_bytes = 4 * kPageBytes;
    p.cxl_bytes = 4 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    Monitor mon(*mem, pt);
    mon.sample(0);
    EXPECT_EQ(mon.bw(kNodeDdr), 0.0);
    EXPECT_EQ(mon.bwTot(), 0.0);
    EXPECT_EQ(mon.relBwDen(kNodeDdr), 0.0);
    EXPECT_EQ(mon.bwDen(kNodeCxl), 0.0);
}

TEST(Edges, MonitorZeroElapsedKeepsLastBandwidth)
{
    TieredMemoryParams p;
    p.ddr_bytes = 4 * kPageBytes;
    p.cxl_bytes = 4 * kPageBytes;
    auto mem = makeTieredMemory(p);
    PageTable pt(4);
    pt.map(0, mem->tier(kNodeCxl).firstPfn(), kNodeCxl);
    Monitor mon(*mem, pt);
    mon.sample(0);
    mem->access(pageBase(mem->tier(kNodeCxl).firstPfn()), false, 0);
    mon.sample(secondsToTicks(1.0));
    const double bw = mon.bw(kNodeCxl);
    EXPECT_GT(bw, 0.0);
    mon.sample(secondsToTicks(1.0)); // Same instant: no division by 0.
    EXPECT_EQ(mon.bw(kNodeCxl), bw);
}

TEST(Edges, HwModelBitScaling)
{
    // Halving the counter width halves the SS CAM's value storage cost.
    const auto b16 =
        estimateTracker(TrackerKind::SpaceSavingTopK, 1024, 5, 16);
    const auto b8 =
        estimateTracker(TrackerKind::SpaceSavingTopK, 1024, 5, 8);
    EXPECT_NEAR(b8.area_um2, b16.area_um2 / 2.0, b16.area_um2 * 0.01);
}

TEST(Edges, WacSinglePageRange)
{
    WacConfig cfg;
    cfg.range_base = 0;
    cfg.range_bytes = kPageBytes;
    cfg.window_bytes = kPageBytes;
    WacUnit wac(cfg);
    for (unsigned w = 0; w < kWordsPerPage; ++w)
        wac.observe(w * kWordBytes);
    wac.fold();
    EXPECT_EQ(wac.uniqueWords(0), kWordsPerPage);
    EXPECT_EQ(wac.wordMask(0), ~0ULL);
}

TEST(Edges, PacExactlyAtSaturationBoundary)
{
    PacConfig cfg;
    cfg.first_pfn = 0;
    cfg.frames = 2;
    cfg.counter_bits = 4; // Saturates at 15.
    PacUnit pac(cfg);
    for (int i = 0; i < 15; ++i)
        pac.observe(0);
    EXPECT_EQ(pac.count(0), 15u);
    EXPECT_EQ(pac.spills(), 1u); // Spilled exactly at the boundary.
    pac.observe(0);
    EXPECT_EQ(pac.count(0), 16u);
}

} // namespace
} // namespace m5
