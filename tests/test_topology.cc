/**
 * @file
 * Tests for the N-tier TierTopology (docs/TOPOLOGY.md): --tiers spec
 * parsing (including malformed specs), resolution against a footprint,
 * byte-identity of the default pair with the historical DDR/CXL sizing,
 * edge-cost defaults and overrides, the general move()/exchange()
 * migration verbs (best-fit fallback ordering, exchange atomicity under
 * injected faults), the per-tier occupancy invariant, and 1-vs-4-worker
 * byte-identity of a three-tier sweep.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "mem/topology.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "fault/fault.hh"
#include "sim/fault/invariant.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

TEST(TopologySpecTest, ParsesTiersAndEdgeOverrides)
{
    const auto spec =
        TopologySpec::parse("ddr:100,mid:250:0.3,far:400,ddr>far:600:8e9");
    ASSERT_EQ(spec.tiers.size(), 3u);
    EXPECT_EQ(spec.tiers[0].name, "ddr");
    EXPECT_EQ(spec.tiers[0].read_latency, 100u);
    EXPECT_LT(spec.tiers[0].capacity_fraction, 0.0)
        << "omitted top fraction inherits the system default";
    EXPECT_EQ(spec.tiers[1].name, "mid");
    EXPECT_EQ(spec.tiers[1].read_latency, 250u);
    EXPECT_DOUBLE_EQ(spec.tiers[1].capacity_fraction, 0.3);
    EXPECT_EQ(spec.tiers[2].name, "far");
    EXPECT_LT(spec.tiers[2].capacity_fraction, 0.0)
        << "the spill tier never carries a fraction";
    ASSERT_EQ(spec.edges.size(), 1u);
    EXPECT_EQ(spec.edges[0].src, "ddr");
    EXPECT_EQ(spec.edges[0].dst, "far");
    EXPECT_EQ(spec.edges[0].cost.latency_floor, 600u);
    EXPECT_DOUBLE_EQ(spec.edges[0].cost.bytes_per_s, 8e9);
}

TEST(TopologySpecTest, MalformedSpecsAreFatal)
{
    FatalCaptureScope capture;
    // Structure.
    EXPECT_THROW(TopologySpec::parse(""), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100"), FatalError);
    EXPECT_THROW(TopologySpec::parse(",ddr:100,cxl:270"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr,cxl:270"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100:0.4:9,cxl:270"), FatalError);
    // Tier fields.
    EXPECT_THROW(TopologySpec::parse("DDR:100,cxl:270"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:0,cxl:270"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:abc,cxl:270"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100:1.5,cxl:270"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100,ddr:270"), FatalError);
    // Fraction placement: spill must omit, intermediates must state.
    EXPECT_THROW(TopologySpec::parse("ddr:100,cxl:270:0.4"), FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100,mid:250,far:400"),
                 FatalError);
    // Edges.
    EXPECT_THROW(TopologySpec::parse("ddr:100,cxl:270,ddr>cxl"),
                 FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100,cxl:270,ddr>ddr:500"),
                 FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100,cxl:270,ddr>bogus:500"),
                 FatalError);
    EXPECT_THROW(TopologySpec::parse("ddr:100,cxl:270,ddr>cxl:500:-1"),
                 FatalError);
}

// ---------------------------------------------------------------------
// Resolution and default-pair identity
// ---------------------------------------------------------------------

TEST(TierTopologyTest, ResolvesFractionsAgainstTheFootprint)
{
    const auto spec = TopologySpec::parse("ddr:100,mid:250:0.3,far:400");
    const TierTopology topo(spec, 1000, 0.5);
    ASSERT_EQ(topo.numTiers(), 3u);
    EXPECT_EQ(topo.top(), 0u);
    EXPECT_EQ(topo.spill(), 2u);
    EXPECT_FALSE(topo.isLower(0));
    EXPECT_TRUE(topo.isLower(1));
    // Top inherits the default fraction; spill is footprint + slack.
    EXPECT_EQ(topo.tier(0).capacity_bytes, 500u * kPageBytes);
    EXPECT_EQ(topo.tier(1).capacity_bytes, 300u * kPageBytes);
    EXPECT_EQ(topo.tier(2).capacity_bytes, 1064u * kPageBytes);
    // Contiguous physical ranges, fastest first.
    EXPECT_EQ(topo.tier(0).base, 0u);
    EXPECT_EQ(topo.tier(1).base, topo.tier(0).capacity_bytes);
    EXPECT_EQ(topo.tier(2).base,
              topo.tier(1).base + topo.tier(1).capacity_bytes);
    EXPECT_EQ(topo.tier(1).read_latency, 250u);
}

TEST(TierTopologyTest, DefaultPairMatchesHistoricalSizing)
{
    TieredMemoryParams p;
    const auto topo = TierTopology::defaultPair(1000, p, 0.375);
    ASSERT_EQ(topo.numTiers(), 2u);
    EXPECT_EQ(topo.tier(kNodeDdr).name, "ddr");
    EXPECT_EQ(topo.tier(kNodeDdr).capacity_bytes, 375u * kPageBytes);
    EXPECT_EQ(topo.tier(kNodeDdr).read_latency, p.ddr_latency);
    EXPECT_EQ(topo.tier(kNodeCxl).name, "cxl");
    EXPECT_EQ(topo.tier(kNodeCxl).capacity_bytes, 1064u * kPageBytes);
    EXPECT_EQ(topo.tier(kNodeCxl).read_latency, p.cxl_latency);

    // pair(p) builds the same MemorySystem makeTieredMemory(p) does.
    TieredMemoryParams q;
    q.ddr_bytes = 375 * kPageBytes;
    q.cxl_bytes = 1064 * kPageBytes;
    const auto built = TierTopology::pair(q).buildMemory();
    const auto legacy = makeTieredMemory(q);
    ASSERT_EQ(built->tiers(), legacy->tiers());
    for (NodeId n = 0; n < built->tiers(); ++n) {
        EXPECT_EQ(built->tier(n).config().name, legacy->tier(n).config().name);
        EXPECT_EQ(built->tier(n).config().base, legacy->tier(n).config().base);
        EXPECT_EQ(built->tier(n).config().capacity_bytes,
                  legacy->tier(n).config().capacity_bytes);
        EXPECT_EQ(built->tier(n).config().read_latency,
                  legacy->tier(n).config().read_latency);
    }
}

TEST(TierTopologyTest, EdgeCostsDefaultAndOverride)
{
    // The default edge reproduces the historical copy model: a 400ns
    // round-trip floor plus a 2 x 4KB stream at 12 GB/s.
    const EdgeCost dflt;
    EXPECT_EQ(dflt.pageCopyTime(),
              400u + static_cast<Tick>(2.0 * kPageBytes / 12.0e9 * 1e9));

    const auto spec =
        TopologySpec::parse("ddr:100,mid:250:0.3,far:400,ddr>far:600:8e9");
    const TierTopology topo(spec, 100, 0.5);
    EXPECT_EQ(topo.edge(0, 2).latency_floor, 600u);
    EXPECT_EQ(topo.edge(0, 2).pageCopyTime(),
              600u + static_cast<Tick>(2.0 * kPageBytes / 8e9 * 1e9));
    // Only the named direction is overridden.
    EXPECT_EQ(topo.edge(2, 0).latency_floor, dflt.latency_floor);
    EXPECT_EQ(topo.edge(0, 1).pageCopyTime(), dflt.pageCopyTime());
}

// ---------------------------------------------------------------------
// Migration over a 3-tier topology: move / exchange / best-fit
// ---------------------------------------------------------------------

/** 3-tier rig: ddr (3 frames) -> mid (3 frames) -> far (spill), with 12
 *  pages initially mapped into far. */
class TopologyEngineTest : public ::testing::Test
{
  protected:
    static constexpr NodeId kTop = 0;
    static constexpr NodeId kMid = 1;
    static constexpr NodeId kFar = 2;

    TopologyEngineTest()
    {
        const auto spec = TopologySpec::parse("ddr:100,mid:200:0.25,far:400");
        topo = std::make_unique<TierTopology>(spec, 12, 0.25);
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(12);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(12, topo->numTiers());
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        for (Vpn v = 0; v < 12; ++v)
            pt->map(v, *alloc->allocate(kFar), kFar);
    }

    void
    arm(const std::string &spec)
    {
        faults = std::make_unique<FaultInjector>(FaultPlan::parse(spec), 1);
        engine->attachFaults(faults.get());
    }

    std::vector<std::string>
    checkInvariants()
    {
        InvariantChecker inv(*pt, *alloc, *mem, *lrus, ledger);
        return inv.check(0);
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
    std::unique_ptr<FaultInjector> faults;
};

TEST_F(TopologyEngineTest, MoveReachesArbitraryTiersWithLruUpkeep)
{
    const MigrateResult up = engine->move(0, kMid, 0);
    EXPECT_EQ(up.outcome, MigrateOutcome::Done);
    EXPECT_EQ(pt->pte(0).node, kMid);
    EXPECT_TRUE(lrus->lru(kMid).contains(0));
    EXPECT_EQ(engine->stats().moved_lateral, 1u)
        << "a move that is neither promotion nor demotion counts lateral";

    const MigrateResult top = engine->move(0, kTop, 0);
    EXPECT_EQ(top.outcome, MigrateOutcome::Done);
    EXPECT_EQ(pt->pte(0).node, kTop);
    EXPECT_TRUE(lrus->top().contains(0));
    EXPECT_FALSE(lrus->lru(kMid).contains(0));
    EXPECT_EQ(engine->stats().promoted, 1u);

    const MigrateResult down = engine->move(0, kFar, 0);
    EXPECT_EQ(down.outcome, MigrateOutcome::Done);
    EXPECT_EQ(pt->pte(0).node, kFar);
    EXPECT_FALSE(lrus->top().contains(0));
    EXPECT_EQ(engine->stats().demoted, 1u);
    EXPECT_TRUE(checkInvariants().empty());
}

TEST_F(TopologyEngineTest, MoveRejectsSelfPinnedAndFullDestinations)
{
    EXPECT_EQ(engine->move(0, kFar, 0).outcome,
              MigrateOutcome::RejectedNotCxl)
        << "move to the current tier is a no-op reject";

    pt->pte(1).pinned = true;
    EXPECT_EQ(engine->move(1, kTop, 0).outcome,
              MigrateOutcome::RejectedPinned);

    // Fill mid, then one more move must fail transiently with the page
    // left at its source.
    for (Vpn v = 2; v <= 4; ++v)
        EXPECT_TRUE(engine->move(v, kMid, 0).ok());
    const MigrateResult full = engine->move(5, kMid, 0);
    EXPECT_EQ(full.outcome, MigrateOutcome::TransientNoFrame);
    EXPECT_EQ(pt->pte(5).node, kFar);
    EXPECT_TRUE(checkInvariants().empty());
}

TEST_F(TopologyEngineTest, PromoteFallsBackToBestFitIntermediateTier)
{
    // Fill the top tier, then desync its LRU so no victim exists (the
    // victimless-full case opportunistic promotion is for).
    for (Vpn v = 0; v <= 2; ++v)
        EXPECT_TRUE(engine->promote(v, 0).ok());
    (void)lrus->top().pickVictims(3);

    const MigrateResult placed = engine->promote(3, 0);
    EXPECT_EQ(placed.outcome, MigrateOutcome::PlacedLowerTier);
    EXPECT_TRUE(placed.ok());
    EXPECT_STREQ(placed.reason(), "placed_lower");
    EXPECT_EQ(pt->pte(3).node, kMid)
        << "best fit is the fastest lower tier with room, not the spill";
    EXPECT_EQ(engine->stats().placed_lower, 1u);

    // Fill mid too; with no tier left the promotion fails on capacity.
    EXPECT_EQ(engine->promote(4, 0).outcome,
              MigrateOutcome::PlacedLowerTier);
    EXPECT_EQ(engine->promote(5, 0).outcome,
              MigrateOutcome::PlacedLowerTier);
    const MigrateResult res = engine->promote(6, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::FailedCapacity);
    EXPECT_EQ(pt->pte(6).node, kFar);
    EXPECT_EQ(engine->stats().failed_capacity, 1u);
}

TEST_F(TopologyEngineTest, ExchangeSwapsFramesAtomically)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    const Pfn cold_pfn = pt->pte(0).pfn;
    const Pfn hot_pfn = pt->pte(1).pfn;

    const MigrateResult res = engine->exchange(1, 0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::ExchangedInstead);
    EXPECT_TRUE(res.ok());
    EXPECT_STREQ(res.reason(), "exchanged");
    EXPECT_GT(res.busy, 0u);

    // Both PTEs, the reverse map, and the per-tier LRUs swapped as one.
    EXPECT_EQ(pt->pte(1).node, kTop);
    EXPECT_EQ(pt->pte(1).pfn, cold_pfn);
    EXPECT_EQ(pt->pte(0).node, kFar);
    EXPECT_EQ(pt->pte(0).pfn, hot_pfn);
    EXPECT_EQ(pt->vpnOfPfn(cold_pfn), 1u);
    EXPECT_EQ(pt->vpnOfPfn(hot_pfn), 0u);
    EXPECT_TRUE(lrus->top().contains(1));
    EXPECT_FALSE(lrus->top().contains(0));
    EXPECT_EQ(engine->stats().exchanged, 1u);
    // No frame was allocated or freed: the books still balance.
    EXPECT_EQ(alloc->usedFrames(kTop), 1u);
    EXPECT_TRUE(checkInvariants().empty());
}

TEST_F(TopologyEngineTest, AbortedExchangeLeavesEveryStructureUntouched)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    const Pfn cold_pfn = pt->pte(0).pfn;
    const Pfn hot_pfn = pt->pte(1).pfn;
    arm("migrate_busy:p=1");

    const MigrateResult res = engine->exchange(1, 0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::TransientBusy);
    EXPECT_FALSE(res.ok());
    EXPECT_GT(res.busy, 0u) << "the aborted attempt still costs cycles";

    EXPECT_EQ(pt->pte(0).node, kTop);
    EXPECT_EQ(pt->pte(0).pfn, cold_pfn);
    EXPECT_EQ(pt->pte(1).node, kFar);
    EXPECT_EQ(pt->pte(1).pfn, hot_pfn);
    EXPECT_TRUE(lrus->top().contains(0));
    EXPECT_FALSE(lrus->top().contains(1));
    EXPECT_EQ(engine->stats().exchanged, 0u);
    EXPECT_EQ(engine->stats().transient_fail, 1u);
    EXPECT_TRUE(checkInvariants().empty());
}

TEST_F(TopologyEngineTest, ExchangeRejectsSameTierAndPinnedPartners)
{
    EXPECT_EQ(engine->exchange(1, 2, 0).outcome,
              MigrateOutcome::RejectedNotCxl)
        << "both partners on the same tier is a no-op reject";

    ASSERT_TRUE(engine->promote(0, 0).ok());
    pt->pte(0).pinned = true;
    EXPECT_EQ(engine->exchange(1, 0, 0).outcome,
              MigrateOutcome::RejectedPinned);
    EXPECT_EQ(pt->pte(1).node, kFar);
}

TEST_F(TopologyEngineTest, DdrAllocFaultFallsBackToExchange)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    arm("ddr_alloc:p=1");

    const MigrateResult res = engine->promote(1, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::ExchangedInstead);
    EXPECT_EQ(pt->pte(1).node, kTop);
    EXPECT_EQ(pt->pte(0).node, kFar)
        << "the cold victim takes the hot page's old frame";
    EXPECT_EQ(engine->stats().exchanged, 1u);
    EXPECT_TRUE(checkInvariants().empty());

    // With the fallback disabled the same fault is a plain no-frame.
    engine->setExchangeEnabled(false);
    const MigrateResult off = engine->promote(2, 0);
    EXPECT_EQ(off.outcome, MigrateOutcome::TransientNoFrame);
    EXPECT_EQ(pt->pte(2).node, kFar);
}

TEST_F(TopologyEngineTest, ExchangeFallbackWithoutVictimFailsNoFrame)
{
    arm("ddr_alloc:p=1"); // top tier empty: no victim to swap with
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::TransientNoFrame);
    EXPECT_EQ(engine->stats().exchange_failed, 1u);
    EXPECT_EQ(engine->stats().exchanged, 0u);
}

// ---------------------------------------------------------------------
// Per-tier occupancy invariant
// ---------------------------------------------------------------------

TEST_F(TopologyEngineTest, InvariantCheckerCatchesPerTierDesync)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    ASSERT_TRUE(engine->move(1, kMid, 0).ok());
    EXPECT_TRUE(checkInvariants().empty());

    // An LRU that loses a resident page (a half-finished exchange)...
    lrus->remove(0, kTop);
    auto bad = checkInvariants();
    ASSERT_FALSE(bad.empty());
    EXPECT_NE(bad[0].find("MGLRU"), std::string::npos) << bad[0];
    lrus->insert(0, kTop);
    EXPECT_TRUE(checkInvariants().empty());

    // ...and a PTE that claims the wrong tier both fire.
    pt->pte(1).node = kFar;
    EXPECT_FALSE(checkInvariants().empty());
}

// ---------------------------------------------------------------------
// End-to-end: three-tier sweeps are deterministic across worker counts
// ---------------------------------------------------------------------

TEST(TopologySweepTest, ThreeTierSweepIsByteIdenticalAcrossWorkerCounts)
{
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .policy(PolicyKind::M5HptDriven)
        .seeds(2)
        .scale(1.0 / 128.0)
        .budgetOverride(15000)
        .configure([](SystemConfig &cfg) {
            cfg.tiers = "ddr:100,cxl:270:0.4,far:400";
        });
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 2u);

    auto sweep = [&](unsigned workers) {
        RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = 0;
        ExperimentRunner runner(opts);
        std::vector<std::vector<std::string>> rows;
        const auto outcomes = runner.run(jobs);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
            rows.push_back(runResultCsvRow(jobs[i], outcomes[i].value));
        }
        return rows;
    };
    const auto serial = sweep(1);
    const auto parallel = sweep(4);
    EXPECT_EQ(serial, parallel);

    // The topology was actually in play: pages migrated.
    TieredSystem sys(jobs[0].config);
    const RunResult r = sys.run(jobs[0].budget);
    EXPECT_GT(r.migration.promoted, 0u);
}

TEST(TopologySweepTest, ExplicitPairSpecMatchesTheImplicitDefault)
{
    SystemConfig base;
    base.benchmark = "mcf_r";
    base.scale = 1.0 / 128.0;
    base.seed = 7;
    base.policy = PolicyKind::M5HptDriven;

    SystemConfig spec = base;
    spec.tiers = "ddr:100,cxl:270";

    SweepJob job; // shared label columns; only the result may differ
    const auto a =
        runResultCsvRow(job, TieredSystem(base).run(20000));
    const auto b =
        runResultCsvRow(job, TieredSystem(spec).run(20000));
    EXPECT_EQ(a, b) << "--tiers 'ddr:100,cxl:270' must replay the "
                       "default pair exactly";
}

} // namespace
} // namespace m5
