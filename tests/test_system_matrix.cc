/**
 * @file
 * Parameterized benchmark x policy matrix: every policy runs on several
 * representative workload shapes at tiny scale, and a battery of system
 * invariants must hold afterwards — accounting identities, capacity
 * bounds, tier/allocator/page-table consistency, and policy-specific
 * sanity (migrating policies move pages; record-only never does; pinned
 * pages never move).
 */

#include <gtest/gtest.h>

#include "analysis/ratio.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

struct MatrixParam
{
    const char *bench;
    PolicyKind policy;
};

std::string
paramName(const ::testing::TestParamInfo<MatrixParam> &info)
{
    std::string name = std::string(info.param.bench) + "_" +
                       policyKindName(info.param.policy);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class SystemMatrix : public ::testing::TestWithParam<MatrixParam>
{
  protected:
    static constexpr double kScale = 1.0 / 256.0;
    static constexpr std::uint64_t kAccesses = 250'000;

    /** Tiny-scale runs last tens of ms, so the daemons' wall-clock
     *  periods shrink with them. */
    static SystemConfig
    matrixConfig(const char *bench, PolicyKind policy)
    {
        SystemConfig cfg = makeConfig(bench, policy, kScale, 7);
        cfg.anb_cfg.scan_period_min = msToTicks(1.0);
        cfg.anb_cfg.scan_period_start = msToTicks(2.0);
        cfg.anb_cfg.scan_period_max = msToTicks(64.0);
        cfg.damon_cfg.sample_interval = usToTicks(500.0);
        cfg.damon_cfg.aggregation_interval = msToTicks(10.0);
        return cfg;
    }
};

TEST_P(SystemMatrix, InvariantsHoldAfterRun)
{
    const auto &[bench, policy] = GetParam();
    SystemConfig cfg = matrixConfig(bench, policy);
    TieredSystem sys(cfg);
    const RunResult r = sys.run(kAccesses);

    // Accounting identities.
    EXPECT_EQ(r.runtime, r.app_time + r.kernel_time);
    EXPECT_EQ(r.llc.hits + r.llc.misses, kAccesses);
    EXPECT_EQ(r.accesses, kAccesses);
    EXPECT_GT(r.steady_throughput, 0.0);

    // Capacity bounds.
    auto &pt = sys.pageTable();
    const auto ddr_frames = sys.memory().tier(kNodeDdr).framesTotal();
    EXPECT_LE(pt.pagesOnNode(kNodeDdr), ddr_frames);
    EXPECT_EQ(pt.pagesOnNode(kNodeDdr) + pt.pagesOnNode(kNodeCxl),
              pt.numPages());

    // Page-table / frame consistency on a sample of pages.
    for (Vpn v = 0; v < pt.numPages(); v += 129) {
        const Pte &e = pt.pte(v);
        ASSERT_TRUE(e.valid);
        EXPECT_TRUE(sys.memory().tier(e.node).owns(pageBase(e.pfn)));
        EXPECT_EQ(pt.vpnOfPfn(e.pfn), v);
    }

    // Migration sanity per policy.
    if (policy == PolicyKind::None) {
        EXPECT_EQ(r.migration.promoted, 0u);
    } else {
        EXPECT_GT(r.migration.promoted, 0u)
            << "policy never migrated anything";
        // Demotions only happen to make room.
        EXPECT_LE(r.migration.demoted, r.migration.promoted);
    }
}

TEST_P(SystemMatrix, RecordOnlyIdentifiesWithoutMoving)
{
    const auto &[bench, policy] = GetParam();
    if (policy == PolicyKind::None)
        GTEST_SKIP() << "no identification to record";
    SystemConfig cfg = matrixConfig(bench, policy);
    cfg.record_only = true;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(kAccesses);
    EXPECT_EQ(r.migration.promoted, 0u);
    EXPECT_EQ(sys.pageTable().pagesOnNode(kNodeDdr), 0u);
    EXPECT_GT(r.hot_pages.size(), 0u);
    // Every identified page is a real CXL frame.
    for (std::size_t i = 0; i < r.hot_pages.size(); i += 17) {
        EXPECT_TRUE(sys.memory().tier(kNodeCxl).owns(
            pageBase(r.hot_pages[i])));
    }
    // Identified pages are warmer than random: ratio strictly positive.
    EXPECT_GT(accessCountRatio(sys.pac(), r.hot_pages), 0.0);
}

TEST_P(SystemMatrix, PinnedPagesNeverMigrate)
{
    const auto &[bench, policy] = GetParam();
    if (policy == PolicyKind::None)
        GTEST_SKIP() << "nothing migrates anyway";
    SystemConfig cfg = matrixConfig(bench, policy);
    cfg.pinned_fraction = 0.2;
    TieredSystem sys(cfg);
    sys.run(kAccesses);
    auto &pt = sys.pageTable();
    for (Vpn v = 0; v < pt.numPages(); ++v) {
        const Pte &e = pt.pte(v);
        if (e.pinned) {
            ASSERT_EQ(e.node, kNodeCxl) << "pinned page moved, vpn " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SystemMatrix,
    ::testing::Values(
        MatrixParam{"mcf_r", PolicyKind::None},
        MatrixParam{"mcf_r", PolicyKind::Anb},
        MatrixParam{"mcf_r", PolicyKind::Damon},
        MatrixParam{"mcf_r", PolicyKind::Memtis},
        MatrixParam{"mcf_r", PolicyKind::M5HptOnly},
        MatrixParam{"mcf_r", PolicyKind::M5HwtDriven},
        MatrixParam{"mcf_r", PolicyKind::M5HptDriven},
        MatrixParam{"roms_r", PolicyKind::Anb},
        MatrixParam{"roms_r", PolicyKind::Damon},
        MatrixParam{"roms_r", PolicyKind::M5HptDriven},
        MatrixParam{"redis", PolicyKind::Damon},
        MatrixParam{"redis", PolicyKind::M5HwtDriven},
        MatrixParam{"pr", PolicyKind::M5HptOnly},
        MatrixParam{"liblinear", PolicyKind::Memtis},
        MatrixParam{"bfs", PolicyKind::M5HptDriven}),
    paramName);

/** All fourteen workload models satisfy their declared statistics. */
class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSweep, SparsityClassesMatchDeclaration)
{
    const SyntheticParams p = benchmarkParams(GetParam(), 1.0 / 128.0);
    SyntheticWorkload w(p, 23);
    // Empirical class fractions across pages must match declarations.
    std::vector<std::size_t> counts(p.sparsity.size(), 0);
    for (Vpn v = 0; v < p.footprint_pages; ++v) {
        const unsigned cls = w.classOf(v);
        ASSERT_LT(cls, p.sparsity.size());
        ++counts[cls];
        const unsigned words = w.activeWords(v);
        EXPECT_GE(words, p.sparsity[cls].words_min);
        EXPECT_LE(words, p.sparsity[cls].words_max);
    }
    for (std::size_t c = 0; c < p.sparsity.size(); ++c) {
        const double frac = static_cast<double>(counts[c]) /
                            static_cast<double>(p.footprint_pages);
        EXPECT_NEAR(frac, p.sparsity[c].page_fraction, 0.03)
            << "class " << c;
    }
}

TEST_P(WorkloadSweep, StreamStaysInBoundsAndDeterministic)
{
    const SyntheticParams p = benchmarkParams(GetParam(), 1.0 / 128.0);
    SyntheticWorkload a(p, 29), b(p, 29);
    const VAddr limit = static_cast<VAddr>(p.footprint_pages)
                        << kPageShift;
    for (int i = 0; i < 20'000; ++i) {
        const AccessEvent ea = a.next();
        ASSERT_LT(ea.va, limit);
        const AccessEvent eb = b.next();
        ASSERT_EQ(ea.va, eb.va);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSweep,
    ::testing::ValuesIn(sparsityBenchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        std::string name = param_info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace m5
