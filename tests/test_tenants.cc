/**
 * @file
 * Tests for the multi-tenant colocation model (docs/MULTITENANT.md):
 * tenant spec grammar (including rejected specs), TenantTable VPN
 * resolution, the deterministic weighted interleave, per-tenant DDR cap
 * enforcement in the frame allocator and the migration engine (a cap
 * below the working set forces same-tenant demotions, never an
 * over-cap tenant), per-tenant telemetry registration and CXL
 * attribution, Jain fairness math, rerun and 1-vs-4-worker
 * byte-identity of tenant runs — and the golden single-tenant identity:
 * an untenanted run must stay byte-identical (results, telemetry and
 * trace) to the pre-tenant-model simulator.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "os/frame_alloc.hh"
#include "os/tenant.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "sim/tenants.hh"

namespace m5 {
namespace {

namespace fs = std::filesystem;

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = fs::temp_directory_path() /
                ("m5_tenants_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Byte-stable serialization of a run's per-tenant counters. */
std::string
tenantSig(const RunResult &r)
{
    std::ostringstream os;
    os << r.runtime << ':' << r.app_time << ':' << r.kernel_time;
    for (const TenantResult &t : r.tenants) {
        os << '|' << t.name << ',' << t.accesses << ',' << t.ddr_hits
           << ',' << t.lower_hits << ',' << t.promoted << ',' << t.demoted
           << ',' << t.cap_demotions << ',' << t.cap_rejects << ','
           << t.ddr_frames << ',' << t.cxl_reads << ',' << t.cxl_writes;
    }
    return os.str();
}

// ---------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------

TEST(TenantSpecTest, ParsesGrammar)
{
    const auto specs =
        TenantSpec::parseList("redis:cap=0.25,mcf_r:cap=0.5:share=2,bc");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].benchmark, "redis");
    EXPECT_DOUBLE_EQ(specs[0].ddr_cap, 0.25);
    EXPECT_EQ(specs[0].share, 1u);
    EXPECT_EQ(specs[1].benchmark, "mcf_r");
    EXPECT_DOUBLE_EQ(specs[1].ddr_cap, 0.5);
    EXPECT_EQ(specs[1].share, 2u);
    EXPECT_EQ(specs[2].benchmark, "bc");
    EXPECT_DOUBLE_EQ(specs[2].ddr_cap, 1.0);
    EXPECT_EQ(specs[2].share, 1u);
}

TEST(TenantSpecTest, DescribeRoundTrips)
{
    const std::string spec = "redis:cap=0.25,mcf_r:cap=0.5:share=2,bc";
    const auto specs = TenantSpec::parseList(spec);
    std::string described;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i)
            described += ',';
        described += specs[i].describe();
    }
    EXPECT_EQ(described, spec);
}

TEST(TenantSpecTest, MalformedSpecsAreFatal)
{
    FatalCaptureScope capture;
    EXPECT_THROW(TenantSpec::parseList(""), FatalError);
    EXPECT_THROW(TenantSpec::parseList(",redis"), FatalError);
    EXPECT_THROW(TenantSpec::parseList(":cap=0.5"), FatalError);
    // cap=0 is rejected at parse time: a tenant with no DDR budget at
    // all can never promote and is always a spec bug.
    EXPECT_THROW(TenantSpec::parseList("redis:cap=0"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:cap=-0.5"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:cap=1.5"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:cap=abc"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:share=0"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:share=1.5"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:cap"), FatalError);
    EXPECT_THROW(TenantSpec::parseList("redis:bogus=1"), FatalError);
}

// ---------------------------------------------------------------------
// TenantTable
// ---------------------------------------------------------------------

TEST(TenantTableTest, ResolvesContiguousRanges)
{
    std::vector<TenantTable::Entry> entries(2);
    entries[0] = {"a", 0, 100, 40, 1};
    entries[1] = {"b", 100, 50, 50, 2};
    TenantTable table(std::move(entries));

    EXPECT_EQ(table.count(), 2u);
    EXPECT_EQ(table.totalPages(), 150u);
    EXPECT_EQ(table.tenantOf(0), 0u);
    EXPECT_EQ(table.tenantOf(99), 0u);
    EXPECT_EQ(table.tenantOf(100), 1u);
    EXPECT_EQ(table.tenantOf(149), 1u);

    FatalCaptureScope capture;
    EXPECT_THROW(table.tenantOf(150), FatalError);
}

// ---------------------------------------------------------------------
// Frame-allocator caps
// ---------------------------------------------------------------------

TEST(TenantCapsTest, AllocatorEnforcesCapBeforeFreeList)
{
    SystemConfig cfg;
    cfg.benchmark = "mcf_r";
    cfg.scale = 1.0 / 256.0;
    TieredSystem sys(cfg);
    FrameAllocator alloc(sys.memory());

    alloc.enableTenantCaps(kNodeDdr, {2, 1});
    ASSERT_TRUE(alloc.tenantCapsEnabled());
    EXPECT_EQ(alloc.capNode(), kNodeDdr);

    const auto a0 = alloc.allocateFor(kNodeDdr, 0);
    const auto a1 = alloc.allocateFor(kNodeDdr, 0);
    ASSERT_TRUE(a0 && a1);
    EXPECT_EQ(alloc.tenantUsed(0), 2u);
    EXPECT_TRUE(alloc.tenantAtCap(0));
    // The node still has free frames; the *cap* refuses the third.
    ASSERT_GT(alloc.freeFrames(kNodeDdr), 0u);
    EXPECT_FALSE(alloc.allocateFor(kNodeDdr, 0).has_value());
    // Another tenant is unaffected.
    EXPECT_TRUE(alloc.allocateFor(kNodeDdr, 1).has_value());

    // Freeing uncharges; the tenant can allocate again.
    alloc.freeFor(kNodeDdr, *a0, 0);
    EXPECT_EQ(alloc.tenantUsed(0), 1u);
    EXPECT_TRUE(alloc.allocateFor(kNodeDdr, 0).has_value());

    // Exchange accounting moves a charge without touching free lists.
    const std::size_t free_before = alloc.freeFrames(kNodeDdr);
    alloc.transferCapCharge(0, 1);
    EXPECT_EQ(alloc.tenantUsed(0), 1u);
    EXPECT_EQ(alloc.tenantUsed(1), 2u);
    EXPECT_EQ(alloc.freeFrames(kNodeDdr), free_before);

    // Off-cap nodes ignore tenant accounting entirely.
    const std::size_t used1 = alloc.tenantUsed(1);
    EXPECT_TRUE(alloc.allocateFor(kNodeCxl, 1).has_value());
    EXPECT_EQ(alloc.tenantUsed(1), used1);
}

// ---------------------------------------------------------------------
// TenantSet interleave
// ---------------------------------------------------------------------

TEST(TenantSetTest, WeightedInterleaveIsExactAndDeterministic)
{
    const auto specs = TenantSpec::parseList("mcf_r:share=2,roms_r");
    TenantSet a(specs, 1.0 / 256.0, 7);
    TenantSet b(specs, 1.0 / 256.0, 7);

    std::size_t first = 0;
    const std::size_t n = 3000;
    for (std::size_t i = 0; i < n; ++i) {
        const AccessEvent ea = a.next();
        const AccessEvent eb = b.next();
        EXPECT_EQ(ea.va, eb.va) << "same seed, same stream";
        EXPECT_EQ(ea.is_write, eb.is_write);
        if (a.table().tenantOf(vpnOf(ea.va)) == 0)
            ++first;
    }
    // Smooth weighted round-robin: a 2:1 share mix yields exactly 2/3 of
    // the stream from tenant 0.
    EXPECT_EQ(first, 2 * n / 3);
}

TEST(TenantSetTest, TenantsOccupyDisjointRanges)
{
    const auto specs = TenantSpec::parseList("mcf_r,roms_r");
    TenantSet set(specs, 1.0 / 256.0, 7);
    const TenantTable &table = set.table();
    ASSERT_EQ(table.count(), 2u);
    EXPECT_EQ(table.entry(0).vpn_base, 0u);
    EXPECT_EQ(table.entry(1).vpn_base, table.entry(0).pages);
    EXPECT_EQ(set.footprintPages(),
              table.entry(0).pages + table.entry(1).pages);
    for (int i = 0; i < 1000; ++i) {
        const Vpn vpn = vpnOf(set.next().va);
        ASSERT_LT(vpn, set.footprintPages());
    }
}

// ---------------------------------------------------------------------
// Jain fairness
// ---------------------------------------------------------------------

TEST(JainIndexTest, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({0.0, 0.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({5.0, 5.0, 5.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({1.0, 0.0, 0.0, 0.0}), 0.25);
    // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
    EXPECT_DOUBLE_EQ(jainIndex({1.0, 2.0, 3.0}), 36.0 / 42.0);
}

// ---------------------------------------------------------------------
// End-to-end tenant runs
// ---------------------------------------------------------------------

SystemConfig
tenantConfig(const std::string &tenants, std::uint64_t seed = 7)
{
    SystemConfig cfg =
        makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, seed);
    cfg.tenants = tenants;
    return cfg;
}

TEST(TenantSystemTest, CapBelowWorkingSetForcesDemotionNeverOverCap)
{
    // Tenant 0's DDR budget (2% of its footprint) is far below its hot
    // set: promotions must demote same-tenant victims to stay under the
    // cap, and the run must end with every tenant within budget.
    TieredSystem sys(tenantConfig("mcf_r:cap=0.02,mcf_r"));
    const RunResult r = sys.run(100000);

    ASSERT_EQ(r.tenants.size(), 2u);
    const TenantResult &capped = r.tenants[0];
    EXPECT_LE(capped.ddr_frames, capped.cap_frames);
    EXPECT_LE(r.tenants[1].ddr_frames, r.tenants[1].cap_frames);
    EXPECT_GT(capped.cap_demotions + capped.cap_rejects, 0u)
        << "a cap below the working set must exercise the cap machinery";
    EXPECT_GT(capped.promoted, 0u)
        << "cap demotions make room: promotion still proceeds";

    // Tenant runs always carry the invariant checker, and it must be
    // clean — the allocator books, page table and caps agree.
    ASSERT_NE(sys.invariants(), nullptr);
    EXPECT_GT(sys.invariants()->checks(), 0u);
    EXPECT_EQ(sys.invariants()->violations(), 0u);
}

TEST(TenantSystemTest, RegistersTenantTelemetryAndAttribution)
{
    TieredSystem sys(tenantConfig("mcf_r:cap=0.5,roms_r:share=2"));
    const RunResult r = sys.run(60000);

    const StatRegistry &reg = sys.stats();
    for (const char *name :
         {"tenant.0.accesses", "tenant.0.ddr_hits", "tenant.0.promoted",
          "tenant.0.cap_demotions", "tenant.0.ddr_frames",
          "tenant.0.ddr_cap", "tenant.0.access_latency",
          "tenant.0.cxl.reads", "tenant.1.accesses",
          "tenant.1.cxl.writes", "m5.manager.tenant_quota_deferrals"}) {
        EXPECT_TRUE(reg.has(name)) << name;
    }

    // Both tenants issued accesses and were attributed CXL traffic.
    ASSERT_EQ(r.tenants.size(), 2u);
    for (const TenantResult &t : r.tenants) {
        EXPECT_GT(t.accesses, 0u);
        EXPECT_GT(t.ddr_hits + t.lower_hits, 0u);
        EXPECT_GT(t.cxl_reads + t.cxl_writes, 0u);
    }
    // share=2 gives tenant 1 exactly twice the access stream.
    EXPECT_EQ(r.tenants[1].accesses, 2 * r.tenants[0].accesses);
    EXPECT_TRUE(sys.controller().tenantAttributionActive());
}

TEST(TenantSystemTest, UntenantedRunsCarryNoTenantSurface)
{
    SystemConfig cfg =
        makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, 7);
    TieredSystem sys(cfg);
    const RunResult r = sys.run(20000);

    EXPECT_TRUE(r.tenants.empty());
    EXPECT_EQ(sys.tenants(), nullptr);
    EXPECT_FALSE(sys.controller().tenantAttributionActive());
    EXPECT_EQ(sys.invariants(), nullptr)
        << "without tenants or faults the checker is not even built";
    for (const auto &s : sys.stats().sample())
        EXPECT_NE(s.name.rfind("tenant.", 0), 0u) << s.name;
}

TEST(TenantSystemTest, TenantRunsAreRerunByteIdentical)
{
    TempDir dir("rerun");
    auto once = [&](const std::string &tag) {
        SystemConfig cfg = tenantConfig("mcf_r:cap=0.25,roms_r");
        cfg.telemetry.path = (dir.path() / (tag + ".jsonl")).string();
        TieredSystem sys(cfg);
        const RunResult r = sys.run(60000);
        return tenantSig(r);
    };
    EXPECT_EQ(once("a"), once("b"));
    EXPECT_EQ(slurp(dir.path() / "a.jsonl"), slurp(dir.path() / "b.jsonl"));
}

TEST(TenantSystemTest, SweepIsWorkerCountInvariant)
{
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .policy(PolicyKind::M5HptDriven)
        .scale(1.0 / 128.0)
        .budgetOverride(40000)
        .axis({{"t2", [](SystemConfig &cfg) {
                    cfg.tenants = "mcf_r:cap=0.25,roms_r:share=2";
                }},
               {"t3", [](SystemConfig &cfg) {
                    cfg.tenants = "mcf_r:cap=0.5,roms_r,redis:cap=0.25";
                }}});
    const auto jobs = grid.expand();

    auto sigs = [&](unsigned workers) {
        ExperimentRunner runner({.jobs = workers, .progress = 0});
        const auto results = runner.map(jobs, [](const SweepJob &job) {
            TieredSystem sys(job.config);
            return tenantSig(sys.run(job.budget));
        });
        std::vector<std::string> out;
        for (const auto &r : results) {
            EXPECT_TRUE(r.ok) << r.error;
            out.push_back(r.value);
        }
        return out;
    };
    EXPECT_EQ(sigs(1), sigs(4));
}

// ---------------------------------------------------------------------
// Single-tenant golden identity
// ---------------------------------------------------------------------

TEST(TenantSystemTest, SingleTenantRunMatchesPreTenantGoldens)
{
    // Captured from the simulator immediately before the tenant model
    // landed (same config, budget and hash function): an untenanted run
    // must reproduce results, telemetry and trace bytes exactly.  The
    // pins double as the `--no-txn-migrate` golden: with transactional
    // migration off, a build carrying the txn path must still produce
    // these exact bytes (docs/MIGRATION.md).
    TempDir dir("golden");
    SystemConfig cfg =
        makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, 7);
    cfg.txn_migrate = false;
    cfg.telemetry.path = (dir.path() / "telem.jsonl").string();
    cfg.trace.path = (dir.path() / "trace.json").string();
    cfg.trace.categories = 0xffffffffu;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(60000);

    EXPECT_EQ(r.runtime, 19669510u);
    EXPECT_EQ(r.app_time, 13701610u);
    EXPECT_EQ(r.kernel_time, 5967900u);
    EXPECT_EQ(r.migration.promoted, 3136u);
    EXPECT_EQ(r.migration.demoted, 0u);
    EXPECT_EQ(r.llc.misses, 59861u);
    EXPECT_EQ(r.ddr_read_bytes, 1589376u);
    EXPECT_EQ(r.cxl_read_bytes, 15086784u);
    EXPECT_EQ(fnv1a(slurp(cfg.telemetry.path)), 3194142581152799404ULL);
    EXPECT_EQ(fnv1a(slurp(cfg.trace.path)), 1126355910619151284ULL);
}

} // namespace
} // namespace m5
