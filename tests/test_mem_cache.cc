/**
 * @file
 * Unit tests for src/mem (tiers, memory system) and src/cache (LLC, TLB).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "mem/memsys.hh"
#include "mem/tier.hh"

namespace m5 {
namespace {

TierConfig
ddrConfig(std::uint64_t bytes = 1 << 20)
{
    TierConfig c;
    c.name = "ddr";
    c.node = kNodeDdr;
    c.base = 0;
    c.capacity_bytes = bytes;
    c.read_latency = 100;
    c.write_latency = 100;
    return c;
}

TEST(MemTier, OwnsRange)
{
    MemTier t(ddrConfig(1 << 20));
    EXPECT_TRUE(t.owns(0));
    EXPECT_TRUE(t.owns((1 << 20) - 1));
    EXPECT_FALSE(t.owns(1 << 20));
}

TEST(MemTier, LatencyAndCounters)
{
    MemTier t(ddrConfig());
    EXPECT_EQ(t.access(0, false), 100u);
    EXPECT_EQ(t.access(64, true), 100u);
    EXPECT_EQ(t.counters().read_bytes, kWordBytes);
    EXPECT_EQ(t.counters().write_bytes, kWordBytes);
    EXPECT_EQ(t.counters().accesses, 2u);
    t.resetCounters();
    EXPECT_EQ(t.counters().accesses, 0u);
}

TEST(MemTier, FrameGeometry)
{
    MemTier t(ddrConfig(1 << 20));
    EXPECT_EQ(t.framesTotal(), (1u << 20) / kPageBytes);
    EXPECT_EQ(t.firstPfn(), 0u);
}

TEST(MemorySystem, RoutesByRange)
{
    TieredMemoryParams p;
    p.ddr_bytes = 1 << 20;
    p.cxl_bytes = 2 << 20;
    auto sys = makeTieredMemory(p);
    EXPECT_EQ(sys->nodeOf(0), kNodeDdr);
    EXPECT_EQ(sys->nodeOf(1 << 20), kNodeCxl);
    EXPECT_EQ(sys->tiers(), 2u);
}

TEST(MemorySystem, LatenciesPerTier)
{
    TieredMemoryParams p;
    p.ddr_bytes = 1 << 20;
    p.cxl_bytes = 1 << 20;
    p.ddr_latency = 100;
    p.cxl_latency = 270;
    auto sys = makeTieredMemory(p);
    EXPECT_EQ(sys->access(0, false, 0), 100u);
    EXPECT_EQ(sys->access(1 << 20, false, 0), 270u);
}

TEST(MemorySystem, ObserversSeeOnlyTheirNode)
{
    TieredMemoryParams p;
    p.ddr_bytes = 1 << 20;
    p.cxl_bytes = 1 << 20;
    auto sys = makeTieredMemory(p);
    int ddr_seen = 0, cxl_seen = 0;
    sys->attachObserver(kNodeDdr,
        [&](Addr, bool, Tick) { ++ddr_seen; });
    sys->attachObserver(kNodeCxl,
        [&](Addr, bool, Tick) { ++cxl_seen; });
    sys->access(0, false, 0);
    sys->access(0, true, 0);
    sys->access(1 << 20, false, 0);
    EXPECT_EQ(ddr_seen, 2);
    EXPECT_EQ(cxl_seen, 1);
}

TEST(MemorySystem, ObserverGetsAddressAndKind)
{
    TieredMemoryParams p;
    p.ddr_bytes = 1 << 20;
    p.cxl_bytes = 1 << 20;
    auto sys = makeTieredMemory(p);
    Addr got = 0;
    bool got_write = false;
    sys->attachObserver(kNodeCxl, [&](Addr a, bool w, Tick) {
        got = a;
        got_write = w;
    });
    sys->access((1 << 20) + 128, true, 7);
    EXPECT_EQ(got, (1u << 20) + 128);
    EXPECT_TRUE(got_write);
}

TEST(Cache, HitAfterMiss)
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    cfg.assoc = 4;
    SetAssocCache c(cfg);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction)
{
    CacheConfig cfg;
    cfg.size_bytes = 2 * kWordBytes; // 1 set, 2 ways.
    cfg.assoc = 2;
    SetAssocCache c(cfg);
    ASSERT_EQ(c.sets(), 1u);
    c.access(0 * kWordBytes, false);
    c.access(1 * kWordBytes, false);
    c.access(0 * kWordBytes, false); // Refresh line 0.
    c.access(2 * kWordBytes, false); // Evicts line 1 (LRU).
    EXPECT_TRUE(c.access(0 * kWordBytes, false).hit);
    EXPECT_FALSE(c.access(1 * kWordBytes, false).hit);
}

TEST(Cache, DirtyVictimWritesBack)
{
    CacheConfig cfg;
    cfg.size_bytes = 2 * kWordBytes;
    cfg.assoc = 2;
    SetAssocCache c(cfg);
    c.access(0, true); // Dirty.
    c.access(kWordBytes, false);
    auto res = c.access(2 * kWordBytes, false); // Evicts addr 0.
    ASSERT_TRUE(res.writeback.has_value());
    EXPECT_EQ(*res.writeback, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanVictimSilent)
{
    CacheConfig cfg;
    cfg.size_bytes = 2 * kWordBytes;
    cfg.assoc = 2;
    SetAssocCache c(cfg);
    c.access(0, false);
    c.access(kWordBytes, false);
    auto res = c.access(2 * kWordBytes, false);
    EXPECT_FALSE(res.writeback.has_value());
}

TEST(Cache, WriteHitSetsDirty)
{
    CacheConfig cfg;
    cfg.size_bytes = 2 * kWordBytes;
    cfg.assoc = 2;
    SetAssocCache c(cfg);
    c.access(0, false);       // Clean fill.
    c.access(0, true);        // Hit, becomes dirty.
    c.access(kWordBytes, false);
    auto res = c.access(2 * kWordBytes, false);
    ASSERT_TRUE(res.writeback.has_value());
}

TEST(Cache, InvalidatePageReturnsDirtyLines)
{
    CacheConfig cfg;
    cfg.size_bytes = 1 << 20;
    cfg.assoc = 8;
    SetAssocCache c(cfg);
    const Pfn pfn = 5;
    const Addr base = pageBase(pfn);
    c.access(base, true);
    c.access(base + kWordBytes, false);
    c.access(base + 2 * kWordBytes, true);
    auto dirty = c.invalidatePage(pfn);
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_EQ(c.stats().invalidated_lines, 3u);
    EXPECT_FALSE(c.access(base, false).hit);
}

TEST(Cache, InvalidateOtherPageUntouched)
{
    CacheConfig cfg;
    cfg.size_bytes = 1 << 20;
    cfg.assoc = 8;
    SetAssocCache c(cfg);
    c.access(pageBase(1), false);
    c.invalidatePage(2);
    EXPECT_TRUE(c.access(pageBase(1), false).hit);
}

TEST(Cache, MissRatio)
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    cfg.assoc = 4;
    SetAssocCache c(cfg);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_NEAR(c.stats().missRatio(), 0.25, 1e-12);
}

TEST(Cache, SetsArePowerOfTwo)
{
    CacheConfig cfg;
    cfg.size_bytes = 60 << 20; // Not a power of two with assoc 15.
    cfg.assoc = 15;
    SetAssocCache c(cfg);
    EXPECT_EQ(c.sets() & (c.sets() - 1), 0u);
    EXPECT_GE(c.sets(), 1u);
}

TEST(Tlb, HitAfterFill)
{
    Tlb tlb({64, 4});
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup(10, pfn));
    tlb.fill(10, 99);
    EXPECT_TRUE(tlb.lookup(10, pfn));
    EXPECT_EQ(pfn, 99u);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, ShootdownInvalidates)
{
    Tlb tlb({64, 4});
    tlb.fill(10, 99);
    tlb.shootdown(10);
    Pfn pfn = 0;
    EXPECT_FALSE(tlb.lookup(10, pfn));
    EXPECT_EQ(tlb.stats().shootdowns, 1u);
}

TEST(Tlb, ShootdownOfAbsentIsNoop)
{
    Tlb tlb({64, 4});
    tlb.shootdown(123);
    EXPECT_EQ(tlb.stats().shootdowns, 0u);
}

TEST(Tlb, FillUpdatesExisting)
{
    Tlb tlb({64, 4});
    tlb.fill(10, 1);
    tlb.fill(10, 2); // Remap (migration).
    Pfn pfn = 0;
    ASSERT_TRUE(tlb.lookup(10, pfn));
    EXPECT_EQ(pfn, 2u);
}

TEST(Tlb, FlushAll)
{
    Tlb tlb({64, 4});
    tlb.fill(1, 1);
    tlb.fill(2, 2);
    tlb.flushAll();
    Pfn pfn;
    EXPECT_FALSE(tlb.lookup(1, pfn));
    EXPECT_FALSE(tlb.lookup(2, pfn));
    EXPECT_EQ(tlb.stats().flushes, 1u);
}

TEST(Tlb, LruWithinSet)
{
    Tlb tlb({4, 4}); // Single set of 4 ways.
    for (Vpn v = 0; v < 4; ++v)
        tlb.fill(v * 1, v + 100); // All map to set 0? Depends on sets_.
    // With 1 set, filling a 5th entry evicts the LRU (vpn 0).
    Pfn pfn;
    for (Vpn v = 0; v < 4; ++v)
        tlb.lookup(v, pfn);
    tlb.lookup(0, pfn); // Refresh vpn 0.
    tlb.fill(50, 1);
    EXPECT_TRUE(tlb.lookup(0, pfn));
}

} // namespace
} // namespace m5
