/**
 * @file
 * Unit and property tests for src/sketch: hashing, CM-Sketch, the sorted
 * top-K CAM, Space-Saving, and the TopKTracker interface.
 *
 * The central properties under test are the textbook guarantees the paper
 * relies on: CM-Sketch never *under*estimates, Space-Saving never
 * underestimates and bounds its overestimation by the evicted minimum, and
 * both trackers surface truly heavy keys.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "common/zipf.hh"
#include "sketch/cm_sketch.hh"
#include "sketch/hash.hh"
#include "sketch/sorted_topk.hh"
#include "sketch/space_saving.hh"
#include "sketch/topk_tracker.hh"

namespace m5 {
namespace {

TEST(Hash, DeterministicPerSeed)
{
    HashFamily h(4, 1024, 99);
    for (unsigned r = 0; r < 4; ++r)
        EXPECT_EQ(h(r, 12345), h(r, 12345));
}

TEST(Hash, RowsIndependent)
{
    HashFamily h(4, 1 << 20, 99);
    int same = 0;
    for (std::uint64_t k = 0; k < 200; ++k)
        same += h(0, k) == h(1, k);
    EXPECT_LT(same, 5);
}

TEST(Hash, RoughlyUniform)
{
    HashFamily h(1, 16, 7);
    std::vector<int> counts(16, 0);
    const int n = 16'000;
    for (int k = 0; k < n; ++k)
        ++counts[h(0, k)];
    for (int c : counts) {
        EXPECT_GT(c, n / 16 / 2);
        EXPECT_LT(c, n / 16 * 2);
    }
}

TEST(CmSketch, NeverUnderestimates)
{
    CmSketch s(4, 64, 1, 32);
    std::map<std::uint64_t, std::uint64_t> exact;
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t k = rng.below(500);
        s.update(k);
        ++exact[k];
    }
    for (const auto &[k, c] : exact)
        EXPECT_GE(s.estimate(k), c) << "key " << k;
}

TEST(CmSketch, ExactWithoutCollisions)
{
    // 8 distinct keys into a wide sketch: collisions are improbable, so
    // estimates should be exact.
    CmSketch s(4, 1 << 16, 5, 32);
    for (std::uint64_t k = 0; k < 8; ++k)
        for (std::uint64_t i = 0; i <= k; ++i)
            s.update(k);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(s.estimate(k), k + 1);
}

TEST(CmSketch, UpdateReturnsEstimate)
{
    CmSketch s(2, 1024, 9, 32);
    EXPECT_EQ(s.update(42), 1u);
    EXPECT_EQ(s.update(42), 2u);
    EXPECT_EQ(s.estimate(42), 2u);
}

TEST(CmSketch, ResetClears)
{
    CmSketch s(2, 64, 9, 32);
    for (int i = 0; i < 100; ++i)
        s.update(7);
    s.reset();
    EXPECT_EQ(s.estimate(7), 0u);
}

TEST(CmSketch, CounterSaturation)
{
    CmSketch s(2, 16, 9, 4); // 4-bit counters saturate at 15.
    for (int i = 0; i < 100; ++i)
        s.update(3);
    EXPECT_EQ(s.estimate(3), 15u);
    EXPECT_EQ(s.counterMax(), 15u);
}

TEST(CmSketch, Geometry)
{
    CmSketch s(4, 8192, 1, 32);
    EXPECT_EQ(s.rows(), 4u);
    EXPECT_EQ(s.cols(), 8192u);
    EXPECT_EQ(s.entries(), 32768u);
}

TEST(SortedTopK, KeepsHeaviest)
{
    SortedTopK t(3);
    t.offer(1, 10);
    t.offer(2, 20);
    t.offer(3, 30);
    t.offer(4, 5); // Below min: rejected.
    auto e = t.entries();
    ASSERT_EQ(e.size(), 3u);
    EXPECT_EQ(e[0].tag, 3u);
    EXPECT_EQ(e[1].tag, 2u);
    EXPECT_EQ(e[2].tag, 1u);
}

TEST(SortedTopK, EvictsMinimum)
{
    SortedTopK t(2);
    t.offer(1, 10);
    t.offer(2, 20);
    t.offer(3, 15); // Evicts tag 1 (count 10).
    auto e = t.entries();
    ASSERT_EQ(e.size(), 2u);
    EXPECT_EQ(e[0].tag, 2u);
    EXPECT_EQ(e[1].tag, 3u);
}

TEST(SortedTopK, HitUpdatesCount)
{
    SortedTopK t(2);
    t.offer(1, 1);
    t.offer(2, 2);
    t.offer(1, 50);
    auto e = t.entries();
    EXPECT_EQ(e[0].tag, 1u);
    EXPECT_EQ(e[0].count, 50u);
}

TEST(SortedTopK, MinCountZeroUntilFull)
{
    SortedTopK t(3);
    t.offer(1, 100);
    EXPECT_EQ(t.minCount(), 0u);
    t.offer(2, 200);
    t.offer(3, 300);
    EXPECT_EQ(t.minCount(), 100u);
}

TEST(SortedTopK, ResetEmpties)
{
    SortedTopK t(2);
    t.offer(1, 1);
    t.reset();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.entries().empty());
}

TEST(SortedTopK, ManyUpdatesLazyHeapStaysCorrect)
{
    // Exercise the lazy-heap pruning with monotonically growing counts.
    SortedTopK t(4);
    Rng rng(17);
    std::map<std::uint64_t, std::uint64_t> counts;
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t k = rng.below(100);
        t.offer(k, ++counts[k]);
    }
    // The reported minimum must match the 4th-largest exact count among
    // table residents.
    auto e = t.entries();
    ASSERT_EQ(e.size(), 4u);
    for (const auto &entry : e)
        EXPECT_EQ(entry.count, counts[entry.tag]);
    EXPECT_EQ(t.minCount(), e.back().count);
}

TEST(SpaceSaving, ExactWhenUnderCapacity)
{
    SpaceSaving ss(16);
    for (std::uint64_t k = 0; k < 8; ++k)
        for (std::uint64_t i = 0; i <= k; ++i)
            ss.update(k);
    for (std::uint64_t k = 0; k < 8; ++k)
        EXPECT_EQ(ss.estimate(k), k + 1);
}

TEST(SpaceSaving, NeverUnderestimates)
{
    SpaceSaving ss(32);
    std::map<std::uint64_t, std::uint64_t> exact;
    Rng rng(5);
    ZipfSampler z(300, 1.1);
    for (int i = 0; i < 20'000; ++i) {
        const std::uint64_t k = z.sample(rng);
        ss.update(k);
        ++exact[k];
    }
    for (const auto &[k, c] : exact) {
        const auto est = ss.estimate(k);
        if (est) { // Unmonitored keys report 0.
            EXPECT_GE(est, c) << "key " << k;
        }
    }
}

TEST(SpaceSaving, CapacityBound)
{
    SpaceSaving ss(8);
    for (std::uint64_t k = 0; k < 1000; ++k)
        ss.update(k);
    EXPECT_EQ(ss.size(), 8u);
    EXPECT_EQ(ss.capacity(), 8u);
}

TEST(SpaceSaving, TopKSortedDescending)
{
    SpaceSaving ss(64);
    for (std::uint64_t k = 0; k < 10; ++k)
        for (std::uint64_t i = 0; i < (k + 1) * 3; ++i)
            ss.update(k);
    auto top = ss.topK(5);
    ASSERT_EQ(top.size(), 5u);
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].count, top[i].count);
    EXPECT_EQ(top[0].tag, 9u);
}

TEST(SpaceSaving, FindsHeavyHitterUnderChurn)
{
    // One key gets 30% of a stream 100x larger than the summary.
    SpaceSaving ss(50);
    Rng rng(23);
    for (int i = 0; i < 50'000; ++i) {
        const std::uint64_t k =
            rng.chance(0.3) ? 0xdeadULL : 1 + rng.below(5000);
        ss.update(k);
    }
    auto top = ss.topK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].tag, 0xdeadULL);
}

TEST(SpaceSaving, ResetClears)
{
    SpaceSaving ss(4);
    ss.update(1);
    ss.reset();
    EXPECT_EQ(ss.size(), 0u);
    EXPECT_EQ(ss.estimate(1), 0u);
}

TEST(TrackerFactory, BuildsBothKinds)
{
    TrackerConfig cm;
    cm.kind = TrackerKind::CmSketchTopK;
    TrackerConfig ss;
    ss.kind = TrackerKind::SpaceSavingTopK;
    ss.entries = 50;
    EXPECT_EQ(makeTracker(cm)->kind(), TrackerKind::CmSketchTopK);
    EXPECT_EQ(makeTracker(ss)->kind(), TrackerKind::SpaceSavingTopK);
}

TEST(TrackerFactory, Names)
{
    EXPECT_EQ(trackerKindName(TrackerKind::CmSketchTopK), "CM-Sketch");
    EXPECT_EQ(trackerKindName(TrackerKind::SpaceSavingTopK),
              "Space-Saving");
}

/** Property sweep across both tracker kinds and several geometries. */
struct TrackerParam
{
    TrackerKind kind;
    std::uint64_t entries;
};

class TrackerProperty : public ::testing::TestWithParam<TrackerParam>
{
  protected:
    std::unique_ptr<TopKTracker>
    make(std::size_t k = 5)
    {
        TrackerConfig cfg;
        cfg.kind = GetParam().kind;
        cfg.entries = GetParam().entries;
        cfg.k = k;
        return makeTracker(cfg);
    }
};

TEST_P(TrackerProperty, QueryNeverExceedsK)
{
    auto t = make(5);
    Rng rng(31);
    for (int i = 0; i < 5000; ++i)
        t->access(rng.below(1000));
    EXPECT_LE(t->query().size(), 5u);
}

TEST_P(TrackerProperty, QuerySortedDescending)
{
    auto t = make(8);
    Rng rng(37);
    ZipfSampler z(500, 1.0);
    for (int i = 0; i < 20'000; ++i)
        t->access(z.sample(rng));
    auto top = t->query();
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].count, top[i].count);
}

TEST_P(TrackerProperty, FindsDominantKey)
{
    auto t = make(5);
    Rng rng(41);
    for (int i = 0; i < 30'000; ++i)
        t->access(rng.chance(0.4) ? 77777ULL : rng.below(3000));
    auto top = t->query();
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top[0].tag, 77777u);
}

TEST_P(TrackerProperty, ResetForgetsEverything)
{
    auto t = make(5);
    for (int i = 0; i < 1000; ++i)
        t->access(5);
    t->reset();
    EXPECT_TRUE(t->query().empty());
    EXPECT_EQ(t->estimate(5), 0u);
}

TEST_P(TrackerProperty, EstimateNeverUnderestimatesTrackedTop)
{
    auto t = make(5);
    for (int i = 0; i < 500; ++i)
        t->access(123);
    EXPECT_GE(t->estimate(123), 500u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TrackerProperty,
    ::testing::Values(
        TrackerParam{TrackerKind::CmSketchTopK, 2048},
        TrackerParam{TrackerKind::CmSketchTopK, 32 * 1024},
        TrackerParam{TrackerKind::SpaceSavingTopK, 50},
        TrackerParam{TrackerKind::SpaceSavingTopK, 2048}),
    [](const ::testing::TestParamInfo<TrackerParam> &param_info) {
        return (param_info.param.kind == TrackerKind::CmSketchTopK
                    ? "CM" : "SS") +
               std::to_string(param_info.param.entries);
    });

/** §7.1: at equal (small) N, Space-Saving beats CM-Sketch; CM-Sketch at
 *  32K approaches exact. */
TEST(TrackerComparison, SpaceSavingMorePreciseAtEqualSmallN)
{
    Rng rng(53);
    ZipfSampler z(20'000, 0.9);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 200'000; ++i)
        stream.push_back(z.sample(rng));

    std::map<std::uint64_t, std::uint64_t> exact;
    for (auto k : stream)
        ++exact[k];
    std::vector<std::uint64_t> sorted;
    for (const auto &[k, c] : exact)
        sorted.push_back(c);
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t top5 = 0;
    for (int i = 0; i < 5; ++i)
        top5 += sorted[i];

    auto ratio_of = [&](TrackerKind kind, std::uint64_t n) {
        TrackerConfig cfg;
        cfg.kind = kind;
        cfg.entries = n;
        cfg.k = 5;
        auto t = makeTracker(cfg);
        for (auto k : stream)
            t->access(k);
        std::uint64_t got = 0;
        for (const auto &e : t->query())
            got += exact[e.tag];
        return static_cast<double>(got) / static_cast<double>(top5);
    };

    const double ss50 = ratio_of(TrackerKind::SpaceSavingTopK, 50);
    const double cm50 = ratio_of(TrackerKind::CmSketchTopK, 50);
    const double cm32k = ratio_of(TrackerKind::CmSketchTopK, 32 * 1024);
    EXPECT_GT(ss50, cm50);
    EXPECT_GT(cm32k, 0.9);
    EXPECT_GE(cm32k, ss50);
}

} // namespace
} // namespace m5
