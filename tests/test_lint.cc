/**
 * @file
 * Tests for the m5lint engine (tools/m5lint_lib.cc): every rule must
 * fire on a known-bad fixture and stay silent on a known-good one,
 * suppression (inline and allowlist) must work, and the lexer must not
 * be fooled by comments, strings, or digit separators.
 *
 * Fixtures are passed to lintSource() with a virtual path, since path
 * placement (src/, bench/, tools/, ...) decides which rules apply.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "m5lint.hh"

namespace {

using m5lint::Config;
using m5lint::Diag;
using m5lint::lintSource;

/** Diagnostics for `src` at virtual path `path`, no allowlist. */
std::vector<Diag>
run(const std::string &path, const std::string &src, const Config &cfg = {})
{
    return lintSource(path, src, cfg);
}

/** Count diagnostics with the given rule id. */
std::size_t
countRule(const std::vector<Diag> &diags, const std::string &rule)
{
    return static_cast<std::size_t>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diag &d) { return d.rule == rule; }));
}

// ---------------------------------------------------------------------
// no-wallclock
// ---------------------------------------------------------------------

TEST(LintWallclock, FiresOnSystemClockAndTime)
{
    const auto d1 = run("src/sim/engine.cc",
                        "auto t = std::chrono::system_clock::now();\n");
    EXPECT_EQ(countRule(d1, "no-wallclock"), 1u);

    const auto d2 = run("bench/foo.cc",
                        "long n = time(nullptr);\n"
                        "struct timeval tv; gettimeofday(&tv, nullptr);\n");
    EXPECT_EQ(countRule(d2, "no-wallclock"), 2u);
    EXPECT_EQ(d2[0].line, 1);
    EXPECT_EQ(d2[1].line, 2);
}

TEST(LintWallclock, SilentOnSteadyClockAndLookalikes)
{
    const auto d = run(
        "src/sim/runner.cc",
        "auto t0 = std::chrono::steady_clock::now();\n"
        "double s = runtime(t0);\n"        // identifier containing 'time'
        "auto tp = engine.time();\n"       // member call, not ::time
        "using time_point = std::chrono::steady_clock::time_point;\n");
    EXPECT_EQ(countRule(d, "no-wallclock"), 0u);
}

// ---------------------------------------------------------------------
// no-unseeded-rng
// ---------------------------------------------------------------------

TEST(LintRng, FiresOnRandomDeviceAndRand)
{
    const auto d = run("src/workloads/foo.cc",
                       "std::random_device rd;\n"
                       "srand(42);\n"
                       "int x = rand();\n");
    EXPECT_EQ(countRule(d, "no-unseeded-rng"), 3u);
}

TEST(LintRng, SilentOnSeededRngAndLookalikes)
{
    const auto d = run("src/workloads/foo.cc",
                       "m5::Rng rng(7);\n"
                       "auto v = rng.below(10);\n"
                       "int g = grand(3);\n"       // not rand()
                       "auto s = strand(yarn);\n"  // not srand()
                       "// rand() in a comment is fine\n"
                       "log(\"rand() in a string is fine\");\n");
    EXPECT_EQ(countRule(d, "no-unseeded-rng"), 0u);
}

// ---------------------------------------------------------------------
// no-unordered-result-iteration
// ---------------------------------------------------------------------

TEST(LintUnordered, FiresOnRangeForOverUnorderedInScope)
{
    const std::string src =
        "std::unordered_map<int, long> counts;\n"
        "for (const auto &kv : counts)\n"
        "    emit(kv);\n";
    EXPECT_EQ(countRule(run("bench/fig99.cc", src),
                        "no-unordered-result-iteration"), 1u);
    EXPECT_EQ(countRule(run("src/analysis/report.cc", src),
                        "no-unordered-result-iteration"), 1u);
    EXPECT_EQ(countRule(run("src/sim/sweep.cc", src),
                        "no-unordered-result-iteration"), 1u);
}

TEST(LintUnordered, SilentOutOfScopeAndOnOrderedContainers)
{
    const std::string unordered_src =
        "std::unordered_map<int, long> counts;\n"
        "for (const auto &kv : counts)\n"
        "    bump(kv);\n";
    // Internal bookkeeping (src/os, src/mem, ...) may iterate freely.
    EXPECT_EQ(countRule(run("src/os/mglru.cc", unordered_src),
                        "no-unordered-result-iteration"), 0u);

    const std::string ordered_src =
        "std::map<int, long> counts;\n"
        "std::vector<int> sorted_keys;\n"
        "for (const auto &kv : counts) emit(kv);\n"
        "for (int k : sorted_keys) emit(k);\n";
    EXPECT_EQ(countRule(run("bench/fig99.cc", ordered_src),
                        "no-unordered-result-iteration"), 0u);
}

// ---------------------------------------------------------------------
// no-raw-parse
// ---------------------------------------------------------------------

TEST(LintRawParse, FiresOnAtofFamilyEverywhere)
{
    EXPECT_EQ(countRule(run("tools/foo.cc",
                            "double d = std::atof(argv[1]);\n"),
                        "no-raw-parse"), 1u);
    EXPECT_EQ(countRule(run("src/mem/tier.cc",
                            "long n = strtol(s, &end, 10);\n"
                            "int i = atoi(s);\n"),
                        "no-raw-parse"), 2u);
}

TEST(LintRawParse, SilentInEnvAndOnLookalikes)
{
    // common/env is the sanctioned wrapper around strto*.
    EXPECT_EQ(countRule(run("src/common/env.cc",
                            "double d = std::strtod(v, &end);\n"),
                        "no-raw-parse"), 0u);
    EXPECT_EQ(countRule(run("tools/foo.cc",
                            "auto v = m5::parseDouble(arg);\n"
                            "int x = myatoi(s);\n"),
                        "no-raw-parse"), 0u);
}

// ---------------------------------------------------------------------
// no-raw-output
// ---------------------------------------------------------------------

TEST(LintRawOutput, FiresOnStdoutWritesInSrc)
{
    const auto d = run("src/mem/memsys.cc",
                       "printf(\"x\");\n"
                       "std::printf(\"x\");\n"
                       "fprintf(stdout, \"x\");\n"
                       "std::cout << 1;\n");
    EXPECT_EQ(countRule(d, "no-raw-output"), 4u);
}

TEST(LintRawOutput, SilentInFunnelsToolsAndStderr)
{
    // The two sanctioned emission funnels.
    EXPECT_EQ(countRule(run("src/common/logging.cc",
                            "std::fprintf(stdout, \"info\");\n"),
                        "no-raw-output"), 0u);
    EXPECT_EQ(countRule(run("src/analysis/report.cc",
                            "std::cout << csv;\n"),
                        "no-raw-output"), 0u);
    // CLI tools own their stdout; stderr diagnostics are fine anywhere;
    // strprintf/snprintf are not output calls.
    EXPECT_EQ(countRule(run("tools/m5sim.cc", "printf(\"report\");\n"),
                        "no-raw-output"), 0u);
    EXPECT_EQ(countRule(run("src/sim/runner.cc",
                            "std::fprintf(stderr, \"progress\");\n"
                            "auto s = strprintf(\"%d\", 1);\n"
                            "std::snprintf(buf, n, \"%d\", 1);\n"),
                        "no-raw-output"), 0u);
}

// ---------------------------------------------------------------------
// no-naked-new
// ---------------------------------------------------------------------

TEST(LintNakedNew, FiresOnNewAndMallocInSrc)
{
    const auto d = run("src/cache/cache.cc",
                       "int *p = new int[64];\n"
                       "void *q = malloc(64);\n");
    EXPECT_EQ(countRule(d, "no-naked-new"), 2u);
}

TEST(LintNakedNew, SilentOnRaiiAndOutsideSrc)
{
    EXPECT_EQ(countRule(run("src/cache/cache.cc",
                            "auto p = std::make_unique<int[]>(64);\n"
                            "auto renewed = renew(lease);\n"
                            "int newest = 3;\n"),
                        "no-naked-new"), 0u);
    // gtest fixtures etc. may use new outside the library.
    EXPECT_EQ(countRule(run("tests/test_foo.cc", "auto *w = new Widget;\n"),
                        "no-naked-new"), 0u);
}

// ---------------------------------------------------------------------
// header-hygiene
// ---------------------------------------------------------------------

TEST(LintHeader, FiresOnMissingPragmaOnce)
{
    const auto d = run("src/mem/foo.hh",
                       "namespace m5 {\n"
                       "struct Foo {};\n"
                       "} // namespace m5\n");
    EXPECT_EQ(countRule(d, "header-hygiene"), 1u);
    EXPECT_EQ(d[0].line, 1);
}

TEST(LintHeader, FiresOnUsingNamespaceAtNamespaceScope)
{
    const auto global = run("src/mem/foo.hh",
                            "#pragma once\n"
                            "using namespace std;\n");
    EXPECT_EQ(countRule(global, "header-hygiene"), 1u);

    const auto nested = run("src/mem/foo.hh",
                            "#pragma once\n"
                            "namespace m5 {\n"
                            "using namespace std;\n"
                            "}\n");
    EXPECT_EQ(countRule(nested, "header-hygiene"), 1u);
}

TEST(LintHeader, SilentOnCleanHeaderAndSources)
{
    const auto d = run("src/mem/foo.hh",
                       "#pragma once\n"
                       "namespace m5 {\n"
                       "inline int f() {\n"
                       "    using namespace std::chrono;\n" // function scope
                       "    return 1;\n"
                       "}\n"
                       "} // namespace m5\n");
    EXPECT_EQ(countRule(d, "header-hygiene"), 0u);
    // .cc files need no include guard.
    EXPECT_EQ(countRule(run("src/mem/foo.cc", "int x;\n"),
                        "header-hygiene"), 0u);
}

// ---------------------------------------------------------------------
// Suppression: inline comments and the allowlist.
// ---------------------------------------------------------------------

TEST(LintSuppress, InlineAllowSilencesOneLine)
{
    const auto d = run(
        "src/workloads/foo.cc",
        "std::random_device rd; // m5lint: allow(no-unseeded-rng)\n"
        "std::random_device rd2;\n");
    EXPECT_EQ(countRule(d, "no-unseeded-rng"), 1u);
    EXPECT_EQ(d[0].line, 2);
}

TEST(LintSuppress, InlineAllowStarAndLists)
{
    EXPECT_TRUE(run("src/workloads/foo.cc",
                    "srand(1); // m5lint: allow(*)\n").empty());
    EXPECT_TRUE(run("src/workloads/foo.cc",
                    "srand(time(nullptr)); "
                    "// m5lint: allow(no-unseeded-rng, no-wallclock)\n")
                    .empty());
    // Allowing an unrelated rule does not silence the finding.
    EXPECT_EQ(countRule(run("src/workloads/foo.cc",
                            "srand(1); // m5lint: allow(no-wallclock)\n"),
                        "no-unseeded-rng"), 1u);
}

TEST(LintSuppress, AllowlistScopesByRuleAndPathPrefix)
{
    Config cfg;
    cfg.allow.push_back({"no-raw-parse", "tools/legacy/", "", 0});
    EXPECT_EQ(countRule(lintSource("tools/legacy/old.cc",
                                   "int i = atoi(s);\n", cfg),
                        "no-raw-parse"), 0u);
    // Different directory or different rule: still fires.
    EXPECT_EQ(countRule(lintSource("tools/new.cc",
                                   "int i = atoi(s);\n", cfg),
                        "no-raw-parse"), 1u);
    EXPECT_EQ(countRule(lintSource("tools/legacy/old.cc",
                                   "srand(1);\n", cfg),
                        "no-unseeded-rng"), 1u);
}

// ---------------------------------------------------------------------
// Lexer robustness.
// ---------------------------------------------------------------------

TEST(LintLexer, CommentsStringsAndSeparatorsDoNotFire)
{
    const auto d = run(
        "src/mem/foo.cc",
        "/* time(nullptr) in a block comment\n"
        "   spanning lines with rand() */\n"
        "const char *s = \"call time(nullptr) and malloc(4)\";\n"
        "const char *r = R\"(new int[3]; srand(9);)\";\n"
        "int big = 20'000;\n"
        "char c = 'x';\n");
    EXPECT_TRUE(d.empty()) << d.front().str();
}

TEST(LintLexer, DiagFormatIsFileLineRuleMessage)
{
    const auto d = run("src/mem/foo.cc", "void *p = malloc(8);\n");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].str().rfind("src/mem/foo.cc:1: no-naked-new: ", 0), 0u)
        << d[0].str();
}

// ---------------------------------------------------------------------
// File-level API: fixture files on disk, discovery, allowlist parsing.
// ---------------------------------------------------------------------

class LintFilesTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("m5lint_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::create_directories(dir_ / "src" / "mem");
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    write(const std::string &rel, const std::string &text)
    {
        const auto p = dir_ / rel;
        std::ofstream(p) << text;
        return p.generic_string();
    }

    std::filesystem::path dir_;
};

TEST_F(LintFilesTest, LintFileFindsViolationsOnDisk)
{
    const auto bad = write("src/mem/bad.cc", "void *p = malloc(8);\n");
    const auto good = write("src/mem/good.cc", "int x = 1;\n");
    EXPECT_EQ(countRule(m5lint::lintFile(bad), "no-naked-new"), 1u);
    EXPECT_TRUE(m5lint::lintFile(good).empty());
}

TEST_F(LintFilesTest, LintFileReportsUnreadableFiles)
{
    const auto d = m5lint::lintFile((dir_ / "absent.cc").generic_string());
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "io-error");
}

TEST_F(LintFilesTest, CollectFilesIsSortedAndFiltered)
{
    write("src/mem/b.cc", "int b;\n");
    write("src/mem/a.hh", "#pragma once\n");
    write("src/mem/notes.txt", "not c++\n");
    const auto files = m5lint::collectFiles({dir_.generic_string()});
    ASSERT_EQ(files.size(), 2u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    EXPECT_NE(files[0].find("a.hh"), std::string::npos);
    EXPECT_NE(files[1].find("b.cc"), std::string::npos);
}

TEST_F(LintFilesTest, AllowFileParsesEntriesAndRejectsUnknownRules)
{
    const auto path = write("m5lint.allow",
                            "# comment line\n"
                            "\n"
                            "no-raw-parse tools/legacy/\n"
                            "* src/generated/\n"
                            "not-a-rule src/\n");
    std::vector<std::string> errors;
    const Config cfg = m5lint::loadAllowFile(path, &errors);
    ASSERT_EQ(cfg.allow.size(), 2u);
    EXPECT_EQ(cfg.allow[0].rule, "no-raw-parse");
    EXPECT_EQ(cfg.allow[0].path, "tools/legacy/");
    EXPECT_EQ(cfg.allow[1].rule, "*");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("not-a-rule"), std::string::npos);
}

TEST(LintRules, CatalogueListsAllFifteenRules)
{
    const auto &rules = m5lint::allRules();
    EXPECT_EQ(rules.size(), 15u);
    for (const char *r :
         {"no-wallclock", "no-wallclock-trace",
          "no-raw-clock-outside-prof", "no-unseeded-rng",
          "no-unordered-result-iteration", "no-raw-parse", "no-raw-output",
          "no-naked-new", "header-hygiene", "no-untracked-stat",
          "no-unchecked-migrate-result", "layering",
          "transitive-unchecked-migrate-result", "dead-stat",
          "stale-suppression"})
        EXPECT_NE(std::find(rules.begin(), rules.end(), r), rules.end())
            << r;
    // Every catalogued rule carries a one-line description.
    for (const auto &r : rules)
        EXPECT_FALSE(m5lint::ruleHelp(r).empty()) << r;
    EXPECT_TRUE(m5lint::ruleHelp("no-such-rule").empty());
}

// ---------------------------------------------------------------------
// no-raw-clock-outside-prof
// ---------------------------------------------------------------------

TEST(LintRawClock, FiresOnMonotonicClocksOutsideProf)
{
    const auto d1 = run("src/m5/foo.cc",
                        "auto t0 = std::chrono::steady_clock::now();\n");
    EXPECT_EQ(countRule(d1, "no-raw-clock-outside-prof"), 1u);

    const auto d2 = run(
        "src/sim/engine.cc",
        "auto t = std::chrono::high_resolution_clock::now();\n");
    EXPECT_EQ(countRule(d2, "no-raw-clock-outside-prof"), 1u);
}

TEST(LintRawClock, SilentInsideProfModuleAndInStrings)
{
    // src/telemetry/prof is the sanctioned home of host time: the one
    // place ProfClock::nowNs() may read steady_clock.
    EXPECT_EQ(countRule(run("src/telemetry/prof.cc",
                            "auto t = std::chrono::steady_clock::now();\n"),
                        "no-raw-clock-outside-prof"), 0u);
    // Clock tokens in string literals and comments are lexer-stripped.
    EXPECT_EQ(countRule(run("src/m5/foo.cc",
                            "const char *m = \"steady_clock is banned\";\n"
                            "// mentions high_resolution_clock only\n"),
                        "no-raw-clock-outside-prof"), 0u);
}

TEST(LintRawClock, SuppressedByAllowlistEntry)
{
    Config cfg;
    cfg.allow.push_back({"no-raw-clock-outside-prof", "src/sim/runner.cc"});
    EXPECT_EQ(countRule(run("src/sim/runner.cc",
                            "auto t0 = std::chrono::steady_clock::now();\n",
                            cfg),
                        "no-raw-clock-outside-prof"), 0u);
}

// ---------------------------------------------------------------------
// no-wallclock-trace
// ---------------------------------------------------------------------

TEST(LintWallclockTrace, FiresOnChronoInTraceArgs)
{
    const auto d = run(
        "src/m5/foo.cc",
        "TRACE_EVENT(TraceCat::Sim, "
        "std::chrono::steady_clock::now().time_since_epoch().count(), "
        "\"bad\");\n");
    EXPECT_EQ(countRule(d, "no-wallclock-trace"), 1u);
}

TEST(LintWallclockTrace, FiresAcrossWrappedMacroLines)
{
    const auto d = run("src/m5/foo.cc",
                       "TRACE_SPAN(TraceCat::Migrate, start,\n"
                       "           std::chrono::duration_cast<ns>(\n"
                       "               wall_elapsed).count(),\n"
                       "           \"batch\");\n");
    EXPECT_EQ(countRule(d, "no-wallclock-trace"), 1u);
    EXPECT_EQ(d[0].line, 1);
}

TEST(LintWallclockTrace, SilentOnTickDomainArgsAndSuppressions)
{
    // Simulated-time arguments are the sanctioned form.
    EXPECT_EQ(countRule(run("src/m5/foo.cc",
                            "TRACE_EVENT(TraceCat::Elect, now, \"ok\",\n"
                            "            TraceArgs().u(\"period\", "
                            "period));\n"
                            "TRACE_PAGE_ACCESS(vpn, core_.now());\n"),
                        "no-wallclock-trace"), 0u);
    // Wall-clock code *outside* a TRACE_* argument list is the plain
    // no-wallclock rule's business, not this one's.
    EXPECT_EQ(countRule(run("src/sim/runner.cc",
                            "auto t0 = std::chrono::steady_clock::now();\n"
                            "TRACE_EVENT(TraceCat::Sim, now, \"ok\");\n"),
                        "no-wallclock-trace"), 0u);
    // Inline suppression works like every other rule.
    EXPECT_EQ(countRule(run("src/m5/foo.cc",
                            "TRACE_EVENT(TraceCat::Sim, "
                            "std::chrono::seconds(1).count(), \"x\"); "
                            "// m5lint: allow(no-wallclock-trace)\n"),
                        "no-wallclock-trace"), 0u);
}

// ---------------------------------------------------------------------
// no-untracked-stat
// ---------------------------------------------------------------------

TEST(LintUntrackedStat, CounterMemberWithoutRegisterStatsFires)
{
    const auto d = run("src/cxl/foo.hh",
                       "#pragma once\n"
                       "class Foo {\n"
                       "  std::uint64_t hits_ = 0;\n"
                       "};\n");
    EXPECT_EQ(countRule(d, "no-untracked-stat"), 1u);
}

TEST(LintUntrackedStat, RegisterStatsInHeaderSilencesTheFile)
{
    const auto d = run("src/cxl/foo.hh",
                       "#pragma once\n"
                       "class Foo {\n"
                       "  void registerStats(StatRegistry &reg) const;\n"
                       "  std::uint64_t hits_ = 0;\n"
                       "  std::uint64_t misses_ = 0;\n"
                       "};\n");
    EXPECT_EQ(countRule(d, "no-untracked-stat"), 0u);
}

TEST(LintUntrackedStat, ScopeIsInstrumentedLayerHeadersOnly)
{
    const std::string counter =
        "#pragma once\n"
        "struct S { std::uint64_t misses_ = 0; };\n";
    // Headers outside the instrumented layers are exempt.
    EXPECT_EQ(countRule(run("src/common/foo.hh", counter),
                        "no-untracked-stat"), 0u);
    EXPECT_EQ(countRule(run("src/workloads/foo.hh", counter),
                        "no-untracked-stat"), 0u);
    // .cc files are exempt (implementation tallies live behind headers).
    EXPECT_EQ(countRule(run("src/cxl/foo.cc",
                            "std::uint64_t misses_ = 0;\n"),
                        "no-untracked-stat"), 0u);
    // Non-stat-shaped or non-zero-initialized members are exempt.
    EXPECT_EQ(countRule(run("src/cxl/foo.hh",
                            "#pragma once\n"
                            "struct S { std::uint64_t seed_ = 0; "
                            "std::uint64_t hits_ = 7; };\n"),
                        "no-untracked-stat"), 0u);
}

TEST(LintUntrackedStat, AllowlistAndInlineSuppressionWork)
{
    Config cfg;
    cfg.allow.push_back({"no-untracked-stat", "src/cxl/legacy.hh", "", 0});
    EXPECT_EQ(countRule(lintSource("src/cxl/legacy.hh",
                                   "#pragma once\n"
                                   "struct S { std::uint64_t hits_ = 0; };\n",
                                   cfg),
                        "no-untracked-stat"), 0u);
    EXPECT_EQ(countRule(run("src/cxl/foo.hh",
                            "#pragma once\n"
                            "struct S { std::uint64_t hits_ = 0; };"
                            " // m5lint: allow(no-untracked-stat)\n"),
                        "no-untracked-stat"), 0u);
}

// ---------------------------------------------------------------------
// no-unchecked-migrate-result
// ---------------------------------------------------------------------

TEST(LintMigrateResult, FiresOnDiscardedPromoteStatement)
{
    const auto d = run("src/os/anb.cc",
                       "engine_.promote(vpn, now);\n"
                       "engine->promoteBatch(pages, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 2u);
    EXPECT_EQ(d[0].line, 1);
    EXPECT_EQ(d[1].line, 2);
}

TEST(LintMigrateResult, FiresOnContinuationLineDiscard)
{
    const auto d = run("src/m5/manager.cc",
                       "obj.engine()\n"
                       "    .promote(vpn, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u)
        << "member chain off a call is beyond the heuristic";

    const auto d2 = run("src/m5/manager.cc",
                        "engine_\n"
                        "    .promote(vpn, now);\n");
    EXPECT_EQ(countRule(d2, "no-unchecked-migrate-result"), 1u);
}

TEST(LintMigrateResult, SilentWhenResultIsConsumed)
{
    const auto d = run(
        "src/os/anb.cc",
        "elapsed += engine_.promote(vpn, now).busy;\n"
        "const MigrateResult r = engine_.promote(vpn, now);\n"
        "if (engine_.promote(vpn, now).ok()) ++hits;\n"
        "return engine_.promote(vpn, now);\n"
        "take(engine_.promote(vpn, now));\n"
        "(void)engine_.promote(vpn, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, SilentOnNonMemberAndLookalikes)
{
    const auto d = run("src/os/foo.cc",
                       "promote(vpn, now);\n"          // free function
                       "engine_.promoted();\n"         // different name
                       "Tick promote = 3; promote = 4;\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, SuppressionWorks)
{
    const auto d = run("src/os/anb.cc",
                       "engine_.promote(vpn, now); "
                       "// m5lint: allow(no-unchecked-migrate-result)\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, FiresOnDiscardedMoveExchangeDemote)
{
    const auto d = run("src/os/anb.cc",
                       "engine_.move(vpn, dst, now);\n"
                       "engine->exchange(hot, cold, now);\n"
                       "engine_.demote(vpn, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 3u);
    EXPECT_EQ(d[0].line, 1);
    EXPECT_EQ(d[1].line, 2);
    EXPECT_EQ(d[2].line, 3);
}

TEST(LintMigrateResult, SilentOnConsumedMoveExchangeAndStdMove)
{
    const auto d = run(
        "src/os/anb.cc",
        "elapsed += engine_.move(vpn, dst, now).busy;\n"
        "if (engine_.exchange(hot, cold, now).ok()) ++swaps;\n"
        "(void)engine_.demote(vpn, now);\n"
        "take(std::move(value));\n"              // not a member call
        "queue.push_back(std::move(item));\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, FiresOnDiscardedTransactionalEntryPoints)
{
    // The transactional path (docs/MIGRATION.md) has the same contract:
    // a dropped TxnMoveResult is a silently lost commit/abort outcome.
    const auto d = run("src/os/migration.cc",
                       "txn_->moveTxn(vpn, dst, now);\n"
                       "txn.moveTxn(vpn, dst, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 2u);
    EXPECT_EQ(d[0].line, 1);
    EXPECT_EQ(d[1].line, 2);
}

TEST(LintMigrateResult, SilentOnConsumedTransactionalResult)
{
    const auto d = run(
        "src/os/migration.cc",
        "const TxnMoveResult tr = txn_->moveTxn(vpn, dst, now);\n"
        "if (!txn_->moveTxn(vpn, dst, now).committed) ++aborts;\n"
        "return txn_->moveTxn(vpn, dst, now);\n"
        "(void)txn_->moveTxn(vpn, dst, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

// =====================================================================
// Project-wide analysis (m5lint_model.cc + m5lint_project.cc).
// =====================================================================

using m5lint::buildFileModel;
using m5lint::LayersFile;
using m5lint::lintProjectModel;
using m5lint::ProjectModel;
using m5lint::ProjectOptions;

/** Assemble an in-memory ProjectModel from (path, content) pairs. */
ProjectModel
project(const std::vector<std::pair<std::string, std::string>> &files)
{
    ProjectModel model;
    for (const auto &f : files) {
        model.by_path.emplace(f.first, model.files.size());
        model.files.push_back(buildFileModel(f.first, f.second));
    }
    m5lint::resolveIncludes(model);
    return model;
}

/** lintProjectModel with stale auditing off (most tests assert one
 *  rule and should not trip over unrelated bookkeeping). */
std::vector<Diag>
runProject(const ProjectModel &model, const LayersFile *layers = nullptr,
           const Config &cfg = {}, bool stale = false)
{
    ProjectOptions opts;
    opts.stale_check = stale;
    return lintProjectModel(model, cfg, layers, opts);
}

/** A two-layer spec: a (base) <- b (may use a), with one exception. */
LayersFile
twoLayers()
{
    LayersFile lf;
    lf.path = "test.layers";
    lf.layers.push_back({"base", "src/base", {}, 1});
    lf.layers.push_back({"top", "src/top", {"base"}, 2});
    return lf;
}

// ---------------------------------------------------------------------
// Project model construction
// ---------------------------------------------------------------------

TEST(LintModel, IncludeGraphParsesQuotedIncludesOnly)
{
    const auto fm = buildFileModel(
        "src/os/a.cc",
        "#include \"mem/memsys.hh\"\n"
        "#include <vector>\n"
        "// #include \"commented/out.hh\"\n"
        " *  #include \"doc/block.hh\"\n"
        "#  include \"os/spaced.hh\"\n");
    ASSERT_EQ(fm.includes.size(), 2u);
    EXPECT_EQ(fm.includes[0].line, 1);
    EXPECT_EQ(fm.includes[0].target, "mem/memsys.hh");
    EXPECT_EQ(fm.includes[1].target, "os/spaced.hh");
}

TEST(LintModel, IncludeResolutionTriesRepoLayoutCandidates)
{
    const auto model = project({
        {"src/mem/memsys.hh", "#pragma once\n"},
        {"src/os/local.hh", "#pragma once\n"},
        {"src/os/a.cc",
         "#include \"mem/memsys.hh\"\n"   // via src/ prefix
         "#include \"local.hh\"\n"        // via including dir
         "#include \"no/such.hh\"\n"},    // unresolvable
    });
    const auto *fm = model.find("src/os/a.cc");
    ASSERT_NE(fm, nullptr);
    ASSERT_EQ(fm->includes.size(), 3u);
    EXPECT_EQ(fm->includes[0].resolved, "src/mem/memsys.hh");
    EXPECT_EQ(fm->includes[1].resolved, "src/os/local.hh");
    EXPECT_EQ(fm->includes[2].resolved, "");
}

TEST(LintModel, FunctionScannerFindsDeclarationsAndDefinitions)
{
    const auto fm = buildFileModel(
        "src/os/m.hh",
        "#pragma once\n"
        "namespace m5 {\n"
        "class Engine {\n"
        "  public:\n"
        "    MigrateResult move(Vpn v, Tick t);\n"
        "    [[nodiscard]] std::optional<MigrateResult>\n"
        "    tryMove(Vpn v);\n"
        "    void drain() { flush(); }\n"
        "  private:\n"
        "    uint64_t depth_ = 3;\n"
        "};\n"
        "} // namespace m5\n");
    ASSERT_EQ(fm.functions.size(), 3u);
    EXPECT_EQ(fm.functions[0].name, "move");
    EXPECT_EQ(fm.functions[0].ret, "MigrateResult");
    EXPECT_FALSE(fm.functions[0].is_definition);
    EXPECT_FALSE(fm.functions[0].nodiscard);
    EXPECT_EQ(fm.functions[1].name, "tryMove");
    EXPECT_TRUE(fm.functions[1].nodiscard);
    EXPECT_EQ(fm.functions[2].name, "drain");
    EXPECT_TRUE(fm.functions[2].is_definition);
    // One-line definitions see their own signature on the body line;
    // only the genuine call may classify as discarded.
    bool found_flush = false;
    for (const auto &cs : fm.functions[2].calls) {
        if (cs.name == "flush") {
            found_flush = true;
            EXPECT_TRUE(cs.discarded);
        } else {
            EXPECT_FALSE(cs.discarded) << cs.name;
        }
    }
    EXPECT_TRUE(found_flush);
}

TEST(LintModel, CallSitesClassifyDiscardReturnAndConsume)
{
    const auto fm = buildFileModel(
        "src/os/m.cc",
        "Tick Engine::step(Vpn v)\n"
        "{\n"
        "    helperA(v);\n"
        "    auto r = helperB(v);\n"
        "    return helperC(v);\n"
        "}\n");
    ASSERT_EQ(fm.functions.size(), 1u);
    const auto &calls = fm.functions[0].calls;
    ASSERT_EQ(calls.size(), 3u);
    EXPECT_TRUE(calls[0].discarded);
    EXPECT_FALSE(calls[1].discarded);
    EXPECT_FALSE(calls[2].discarded);
    EXPECT_TRUE(calls[2].returned);
}

// ---------------------------------------------------------------------
// Layers spec parsing
// ---------------------------------------------------------------------

TEST_F(LintFilesTest, LayersFileParsesGrammarAndValidates)
{
    const auto path = write("good.layers",
                            "# comment\n"
                            "layer common src/common\n"
                            "layer os src/os : common\n"
                            "layer sim src/sim : os\n"
                            "except src/os -> src/sim\n");
    std::vector<std::string> errors;
    const auto lf = m5lint::loadLayersFile(path, &errors);
    EXPECT_TRUE(errors.empty());
    ASSERT_EQ(lf.layers.size(), 3u);
    ASSERT_EQ(lf.exceptions.size(), 1u);
    EXPECT_EQ(lf.exceptions[0].src, "src/os");

    EXPECT_EQ(lf.layerOf("src/os/migration.cc"), "os");
    EXPECT_EQ(lf.layerOf("bench/fig.cc"), "");
    EXPECT_TRUE(lf.allows("os", "os"));          // reflexive
    EXPECT_TRUE(lf.allows("os", "common"));      // direct
    EXPECT_TRUE(lf.allows("sim", "common"));     // transitive via os
    EXPECT_FALSE(lf.allows("common", "os"));     // no back edges
}

TEST_F(LintFilesTest, LayersFileRejectsMalformedAndCyclicSpecs)
{
    const auto path = write("bad.layers",
                            "layer a src/a : b\n"
                            "layer b src/b : a\n"
                            "layer a src/dup\n"
                            "layer c src/c : nosuch\n"
                            "except src/a src/b\n"
                            "frobnicate x y\n");
    std::vector<std::string> errors;
    const auto lf = m5lint::loadLayersFile(path, &errors);
    // duplicate name, unknown dep, bad except, unknown directive, cycle
    EXPECT_EQ(errors.size(), 5u);
    bool cycle = false, dup = false;
    for (const auto &e : errors) {
        if (e.find("cycle") != std::string::npos)
            cycle = true;
        if (e.find("duplicate") != std::string::npos)
            dup = true;
    }
    EXPECT_TRUE(cycle);
    EXPECT_TRUE(dup);
}

TEST(LintLayers, StarDepIsUnconstrained)
{
    LayersFile lf;
    lf.layers.push_back({"a", "src/a", {}, 1});
    lf.layers.push_back({"t", "tools", {"*"}, 2});
    EXPECT_TRUE(lf.allows("t", "a"));
    EXPECT_FALSE(lf.allows("a", "t"));
}

// ---------------------------------------------------------------------
// layering (cross-file)
// ---------------------------------------------------------------------

TEST(LintLayering, FiresOnBackEdgeAndHonorsExceptions)
{
    const auto model = project({
        {"src/base/b.hh", "#pragma once\n"},
        {"src/top/t.hh", "#pragma once\n"},
        {"src/base/b.cc", "#include \"top/t.hh\"\n"},  // back edge
        {"src/top/t.cc", "#include \"base/b.hh\"\n"},  // allowed
    });
    auto lf = twoLayers();
    const auto d = runProject(model, &lf);
    ASSERT_EQ(countRule(d, "layering"), 1u);
    EXPECT_EQ(d[0].file, "src/base/b.cc");
    EXPECT_EQ(d[0].line, 1);

    lf.exceptions.push_back({"src/base/b.cc", "src/top", 9});
    EXPECT_EQ(countRule(runProject(model, &lf), "layering"), 0u);
}

TEST(LintLayering, SilentOnUnownedFilesAndUnresolvedIncludes)
{
    const auto model = project({
        {"src/base/b.hh", "#pragma once\n"},
        {"tools/x.cc", "#include \"base/b.hh\"\n"},   // no layer: free
        {"src/base/c.cc", "#include <cstdio>\n"
                          "#include \"gone/away.hh\"\n"},
    });
    auto lf = twoLayers();
    EXPECT_EQ(countRule(runProject(model, &lf), "layering"), 0u);
}

TEST(LintLayering, DetectsIncludeCyclesOnce)
{
    const auto model = project({
        {"src/base/a.hh", "#pragma once\n#include \"base/b.hh\"\n"},
        {"src/base/b.hh", "#pragma once\n#include \"base/c.hh\"\n"},
        {"src/base/c.hh", "#pragma once\n#include \"base/a.hh\"\n"},
    });
    auto lf = twoLayers();
    const auto d = runProject(model, &lf);
    ASSERT_EQ(countRule(d, "layering"), 1u);
    EXPECT_NE(d[0].msg.find("include cycle"), std::string::npos);
    EXPECT_NE(d[0].msg.find("src/base/a.hh"), std::string::npos);
}

// ---------------------------------------------------------------------
// transitive-unchecked-migrate-result
// ---------------------------------------------------------------------

TEST(LintTaint, CrossFileDiscardOfResultReturningFunctionFires)
{
    const auto model = project({
        {"src/os/retry.hh",
         "#pragma once\n"
         "MigrateResult retryMove(Vpn v, Tick t);\n"},
        {"src/m5/driver.cc",
         "#include \"os/retry.hh\"\n"
         "void Driver::tick(Vpn v, Tick t)\n"
         "{\n"
         "    retryMove(v, t);\n"
         "}\n"},
    });
    const auto d = runProject(model);
    ASSERT_EQ(countRule(d, "transitive-unchecked-migrate-result"), 1u);
    EXPECT_EQ(d[0].file, "src/m5/driver.cc");
    EXPECT_EQ(d[0].line, 4);
    EXPECT_NE(d[0].msg.find("retryMove"), std::string::npos);
}

TEST(LintTaint, TaintPropagatesThroughReturningWrappers)
{
    const auto model = project({
        {"src/os/retry.hh",
         "#pragma once\n"
         "BatchResult runBatch(Tick t);\n"},
        {"src/m5/wrap.cc",
         "auto wrapBatch(Tick t)\n"
         "{\n"
         "    return runBatch(t);\n"
         "}\n"
         "void Driver::step(Tick t)\n"
         "{\n"
         "    wrapBatch(t);\n"
         "}\n"},
    });
    const auto d = runProject(model);
    ASSERT_EQ(countRule(d, "transitive-unchecked-migrate-result"), 1u);
    EXPECT_EQ(d[0].line, 7);
    EXPECT_NE(d[0].msg.find("taint chain"), std::string::npos);
    EXPECT_NE(d[0].msg.find("wrapBatch -> runBatch"), std::string::npos);
}

TEST(LintTaint, TxnMoveResultSeedsTheTaint)
{
    // The transactional path's result type taints wrappers the same way
    // MigrateResult does (docs/MIGRATION.md).
    const auto model = project({
        {"src/os/txn_retry.hh",
         "#pragma once\n"
         "TxnMoveResult tryTxnMove(Vpn v, Tick t);\n"},
        {"src/m5/driver.cc",
         "#include \"os/txn_retry.hh\"\n"
         "void Driver::tick(Vpn v, Tick t)\n"
         "{\n"
         "    tryTxnMove(v, t);\n"
         "    auto r = tryTxnMove(v, t);\n"
         "}\n"},
    });
    const auto d = runProject(model);
    ASSERT_EQ(countRule(d, "transitive-unchecked-migrate-result"), 1u);
    EXPECT_EQ(d[0].line, 4);
    EXPECT_NE(d[0].msg.find("tryTxnMove"), std::string::npos);
}

TEST(LintTaint, SilentWhenResultIsConsumedOrVoidCast)
{
    const auto model = project({
        {"src/os/retry.hh",
         "#pragma once\n"
         "MigrateResult retryMove(Vpn v, Tick t);\n"},
        {"src/m5/driver.cc",
         "#include \"os/retry.hh\"\n"
         "void Driver::tick(Vpn v, Tick t)\n"
         "{\n"
         "    auto r = retryMove(v, t);\n"
         "    (void)retryMove(v, t);\n"
         "    if (retryMove(v, t).ok()) { done(); }\n"
         "    use(retryMove(v, t));\n"
         "}\n"
         "MigrateResult Driver::fwd(Vpn v, Tick t)\n"
         "{\n"
         "    return retryMove(v, t);\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(model),
                        "transitive-unchecked-migrate-result"), 0u);
}

TEST(LintTaint, BareStdMoveNeverCountsAsSeed)
{
    // `move` only taints as a member call, even when some class also
    // declares a MigrateResult-returning move().
    const auto model = project({
        {"src/os/m.hh",
         "#pragma once\n"
         "struct Engine { MigrateResult move(Vpn v, Tick t); };\n"},
        {"src/os/user.cc",
         "#include \"os/m.hh\"\n"
         "void shuffle(Item item)\n"
         "{\n"
         "    sink(std::move(item));\n"
         "    std::move(item);\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(model),
                        "transitive-unchecked-migrate-result"), 0u);
}

TEST(LintTaint, WrappedSeedReturnWithoutNodiscardFires)
{
    const auto fires = project({
        {"src/os/m.hh",
         "#pragma once\n"
         "std::optional<MigrateResult> tryMove(Vpn v);\n"},
    });
    const auto d = runProject(fires);
    ASSERT_EQ(countRule(d, "transitive-unchecked-migrate-result"), 1u);
    EXPECT_EQ(d[0].line, 2);
    EXPECT_NE(d[0].msg.find("[[nodiscard]]"), std::string::npos);

    // Marked declarations are fine, bare seed returns are fine (the
    // struct's own [[nodiscard]] covers them), and an out-of-line
    // definition is covered by its marked declaration.
    const auto silent = project({
        {"src/os/m.hh",
         "#pragma once\n"
         "struct Engine {\n"
         "    [[nodiscard]] std::optional<MigrateResult> "
         "tryMove(Vpn v);\n"
         "    MigrateResult move(Vpn v, Tick t);\n"
         "};\n"},
        {"src/os/m.cc",
         "#include \"os/m.hh\"\n"
         "std::optional<MigrateResult>\n"
         "Engine::tryMove(Vpn v)\n"
         "{\n"
         "    return probe(v);\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(silent),
                        "transitive-unchecked-migrate-result"), 0u);
}

// ---------------------------------------------------------------------
// dead-stat
// ---------------------------------------------------------------------

namespace deadstat {

const char *kHeader =
    "#pragma once\n"
    "struct Pac {\n"
    "    void registerStats(StatRegistry &reg)\n"
    "    {\n"
    "        reg.addCounter(\"cxl.hits\", &hits_);\n"
    "        reg.addCounter(\"cxl.misses\", &misses_);\n"
    "    }\n"
    "    std::uint64_t hits_ = 0;\n"
    "    std::uint64_t misses_ = 0;\n"
    "};\n";

} // namespace deadstat

TEST(LintDeadStat, RegisteredButNeverIncrementedFires)
{
    const auto model = project({
        {"src/cxl/pac.hh", deadstat::kHeader},
        {"src/cxl/pac.cc",
         "#include \"cxl/pac.hh\"\n"
         "void Pac::access(bool hit)\n"
         "{\n"
         "    ++hits_;\n"
         "}\n"},
    });
    const auto d = runProject(model);
    ASSERT_EQ(countRule(d, "dead-stat"), 1u);
    EXPECT_EQ(d[0].file, "src/cxl/pac.hh");
    EXPECT_EQ(d[0].line, 6); // the &misses_ registration line
    EXPECT_NE(d[0].msg.find("misses_"), std::string::npos);
}

TEST(LintDeadStat, AnyMutationShapeInSameDirSilences)
{
    const auto model = project({
        {"src/cxl/pac.hh", deadstat::kHeader},
        {"src/cxl/pac.cc",
         "#include \"cxl/pac.hh\"\n"
         "void Pac::access(bool hit)\n"
         "{\n"
         "    hits_ += 1;\n"
         "    misses_++;\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 0u);

    // Subscripted and assignment-shaped updates count too.
    const auto arrays = project({
        {"src/os/ledger.hh",
         "#pragma once\n"
         "struct Ledger {\n"
         "    void registerStats(StatRegistry &reg)\n"
         "    {\n"
         "        reg.addCounter(\"os.cycles\", &cycles_[0]);\n"
         "        reg.addCounter(\"os.faults\", &faults_);\n"
         "    }\n"
         "    std::array<std::uint64_t, 4> cycles_{};\n"
         "    std::uint64_t faults_ = 0;\n"
         "};\n"},
        {"src/os/ledger.cc",
         "#include \"os/ledger.hh\"\n"
         "void Ledger::charge(unsigned i, std::uint64_t c)\n"
         "{\n"
         "    cycles_[i] += c;\n"
         "    faults_ = faults_ + 1;\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(arrays), "dead-stat"), 0u);
}

TEST(LintDeadStat, MutationInAnotherDirectoryDoesNotCount)
{
    // Name-matching across the tree would alias unrelated counters, so
    // liveness is per-directory: a far-away ++hits_ is a different
    // class's member.
    const auto model = project({
        {"src/cxl/pac.hh", deadstat::kHeader},
        {"src/mem/other.cc",
         "void Other::bump()\n"
         "{\n"
         "    ++hits_;\n"
         "    ++misses_;\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 2u);
}

TEST(LintDeadStat, DeclaredButNeverRegisteredFires)
{
    const auto model = project({
        {"src/cxl/pac.hh",
         "#pragma once\n"
         "struct Pac {\n"
         "    void registerStats(StatRegistry &reg)\n"
         "    {\n"
         "        reg.addCounter(\"cxl.hits\", &hits_);\n"
         "    }\n"
         "    std::uint64_t hits_ = 0;\n"
         "    std::uint64_t misses_ = 0;\n"
         "};\n"},
        {"src/cxl/pac.cc",
         "#include \"cxl/pac.hh\"\n"
         "void Pac::access(bool hit) { ++hits_; ++misses_; }\n"},
    });
    const auto d = runProject(model);
    ASSERT_EQ(countRule(d, "dead-stat"), 1u);
    EXPECT_EQ(d[0].line, 8); // the misses_ declaration
    EXPECT_NE(d[0].msg.find("never registered"), std::string::npos);
}

TEST(LintDeadStat, GaugeLambdaExposureCountsAsRegistered)
{
    const auto model = project({
        {"src/cxl/pac.hh",
         "#pragma once\n"
         "struct Pac {\n"
         "    void registerStats(StatRegistry &reg)\n"
         "    {\n"
         "        reg.addCounter(\"cxl.hits\", &hits_);\n"
         "        reg.addGauge(\"cxl.ratio\", [this] {\n"
         "            return double(hits_) / double(total_);\n"
         "        });\n"
         "    }\n"
         "    std::uint64_t hits_ = 0;\n"
         "    std::uint64_t total_ = 0;\n"
         "};\n"},
        {"src/cxl/pac.cc",
         "#include \"cxl/pac.hh\"\n"
         "void Pac::access() { ++hits_; ++total_; }\n"},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 0u);
}

TEST(LintDeadStat, ChainedRegistrationThroughLocalRefIsNotDead)
{
    // The tenant.<id>.* pattern: registerStats loops over a vector of
    // counter structs and registers `&c.accesses` through a loop-local
    // ref.  The root `c` never mutates anywhere; the member does, in a
    // sibling file.  Matching only the chain root used to flag this as
    // a dead stat.
    const auto model = project({
        {"src/os/tt.hh",
         "#pragma once\n"
         "struct Counters {\n"
         "    std::uint64_t accesses = 0;\n"
         "    StatHistogram latency;\n"
         "};\n"
         "struct Table {\n"
         "    void registerStats(StatRegistry &reg) const;\n"
         "    std::vector<Counters> counters_;\n"
         "};\n"},
        {"src/os/tt.cc",
         "#include \"os/tt.hh\"\n"
         "void\n"
         "Table::registerStats(StatRegistry &reg) const\n"
         "{\n"
         "    for (const Counters &c : counters_) {\n"
         "        reg.addCounter(\"tenant.0.accesses\", &c.accesses);\n"
         "        reg.addHistogram(\"tenant.0.latency\", &c.latency);\n"
         "    }\n"
         "}\n"},
        {"src/os/use.cc",
         "#include \"os/tt.hh\"\n"
         "void touch(Counters &tc, Tick t)\n"
         "{\n"
         "    tc.accesses++;\n"
         "    tc.latency.add(t);\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 0u);
}

TEST(LintDeadStat, ChainedRegistrationWithNoMutationStillFires)
{
    // The chain fix must not blanket-suppress: the same loop-local-ref
    // shape with a member nothing ever touches is still a dead stat,
    // reported under its full chain name.
    const auto model = project({
        {"src/os/tt.hh",
         "#pragma once\n"
         "struct Counters {\n"
         "    std::uint64_t orphaned = 0;\n"
         "};\n"
         "struct Table {\n"
         "    void registerStats(StatRegistry &reg) const;\n"
         "    std::vector<Counters> counters_;\n"
         "};\n"},
        {"src/os/tt.cc",
         "#include \"os/tt.hh\"\n"
         "void\n"
         "Table::registerStats(StatRegistry &reg) const\n"
         "{\n"
         "    for (const Counters &c : counters_) {\n"
         "        reg.addCounter(\"tenant.0.orphaned\", &c.orphaned);\n"
         "    }\n"
         "}\n"},
    });
    const auto d = runProject(model);
    ASSERT_EQ(countRule(d, "dead-stat"), 1u);
    EXPECT_NE(d[0].msg.find("c.orphaned"), std::string::npos);
}

TEST(LintDeadStat, MemberChainMutationKeepsRootRegistrationLive)
{
    // Registration takes the root's address but the hot path mutates
    // through a member chain (`slots_[i].count++`): stepping the chain
    // must recognise that as an update of the registered object.
    const auto model = project({
        {"src/os/ledger.hh",
         "#pragma once\n"
         "struct Ledger {\n"
         "    void registerStats(StatRegistry &reg)\n"
         "    {\n"
         "        reg.addCounter(\"os.slots\", &slots_);\n"
         "    }\n"
         "    std::array<Slot, 4> slots_{};\n"
         "};\n"},
        {"src/os/ledger.cc",
         "#include \"os/ledger.hh\"\n"
         "void Ledger::charge(unsigned i)\n"
         "{\n"
         "    slots_[i].count++;\n"
         "}\n"},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 0u);
}

TEST(LintDeadStat, ChainedMethodCallIsAReadNotAMutation)
{
    // `q_.size()` and friends must not count as mutations of q_ — the
    // chain step stops at call shapes, so a registered stat that is
    // only ever *read* through members still fires.
    const auto model = project({
        {"src/os/q.hh",
         "#pragma once\n"
         "struct Q {\n"
         "    void registerStats(StatRegistry &reg)\n"
         "    {\n"
         "        reg.addCounter(\"os.depth\", &depth_);\n"
         "    }\n"
         "    std::uint64_t depth_ = 0;\n"
         "};\n"},
        {"src/os/q.cc",
         "#include \"os/q.hh\"\n"
         "bool Q::empty() const { return depth_.load() == 0; }\n"},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 1u);
}

TEST(LintDeadStat, ScopeIsInstrumentedLayersOnly)
{
    // workloads/ is not an instrumented layer; same fixture, no diag.
    const auto model = project({
        {"src/workloads/pac.hh", deadstat::kHeader},
    });
    EXPECT_EQ(countRule(runProject(model), "dead-stat"), 0u);
}

// ---------------------------------------------------------------------
// stale-suppression
// ---------------------------------------------------------------------

TEST(LintStale, UnusedInlineAllowFiresAndLiveOneDoesNot)
{
    const auto model = project({
        {"src/os/a.cc",
         // Live: suppresses a real no-unchecked-migrate-result diag.
         "void F::go(Vpn v, Tick t)\n"
         "{\n"
         "    engine_.promote(v, t); "
         "// m5lint: allow(no-unchecked-migrate-result)\n"
         "    int x = 1; // m5lint: allow(no-wallclock)\n"
         "}\n"},
    });
    const auto d = runProject(model, nullptr, {}, /*stale=*/true);
    ASSERT_EQ(countRule(d, "stale-suppression"), 1u);
    for (const auto &diag : d) {
        if (diag.rule == "stale-suppression") {
            EXPECT_EQ(diag.line, 4);
        }
    }
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintStale, AllowlistEntriesAuditedOnlyWhenCovered)
{
    Config cfg;
    cfg.allow.push_back(
        {"no-naked-new", "src/os/legacy.cc", "tools/m5lint.allow", 3});
    cfg.allow.push_back(
        {"no-naked-new", "src/unscanned/", "tools/m5lint.allow", 4});

    // Entry 1 is used (suppresses a real diag) and entry 2's prefix is
    // not covered by the scan: neither goes stale.
    const auto used = project({
        {"src/os/legacy.cc", "auto *p = new Foo;\n"},
    });
    EXPECT_EQ(countRule(runProject(used, nullptr, cfg, true),
                        "stale-suppression"), 0u);

    // Entry 1 now suppresses nothing while its prefix IS scanned.
    const auto unused = project({
        {"src/os/legacy.cc", "int x = 1;\n"},
    });
    const auto d = runProject(unused, nullptr, cfg, true);
    ASSERT_EQ(countRule(d, "stale-suppression"), 1u);
    EXPECT_EQ(d[0].file, "tools/m5lint.allow");
    EXPECT_EQ(d[0].line, 3);
}

TEST(LintStale, UnusedLayerExceptionFires)
{
    const auto model = project({
        {"src/base/b.hh", "#pragma once\n"},
        {"src/top/t.cc", "#include \"base/b.hh\"\n"},
    });
    auto lf = twoLayers();
    lf.exceptions.push_back({"src/base", "src/top", 7});
    const auto d = runProject(model, &lf, {}, /*stale=*/true);
    ASSERT_EQ(countRule(d, "stale-suppression"), 1u);
    EXPECT_EQ(d[0].file, "test.layers");
    EXPECT_EQ(d[0].line, 7);
}

TEST(LintStale, StaleCheckCanBeDisabled)
{
    const auto model = project({
        {"src/os/a.cc", "int x = 1; // m5lint: allow(no-wallclock)\n"},
    });
    EXPECT_EQ(countRule(runProject(model, nullptr, {}, false),
                        "stale-suppression"), 0u);
}

TEST(LintStale, AllowInsideStringLiteralIsDataNotSuppression)
{
    // The directive parser reads the comment channel only: a string
    // mentioning allow(...) neither suppresses nor goes stale.
    const auto model = project({
        {"src/os/a.cc",
         "void F::go(Vpn v, Tick t)\n"
         "{\n"
         "    log(\"// m5lint: allow(no-unchecked-migrate-result)\");\n"
         "    engine_.promote(v, t);\n"
         "}\n"},
    });
    const auto d = runProject(model, nullptr, {}, /*stale=*/true);
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 1u);
    EXPECT_EQ(countRule(d, "stale-suppression"), 0u);
}

// ---------------------------------------------------------------------
// SARIF
// ---------------------------------------------------------------------

TEST(LintSarif, ReportIsWellFormed)
{
    const std::vector<Diag> diags = {
        {"src/os/a.cc", 12, "layering", "bad edge"},
        {"src/os/b.cc", 0, "dead-stat", "quote \" and\nnewline"},
    };
    const std::string s = m5lint::sarifReport(diags);

    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"m5lint\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"layering\""), std::string::npos);
    EXPECT_NE(s.find("\"startLine\": 12"), std::string::npos);
    // line 0 diagnostics clamp to 1 (SARIF requires >= 1)
    EXPECT_NE(s.find("\"startLine\": 1 "), std::string::npos);
    // escaping: the quote and newline must not appear raw
    EXPECT_NE(s.find("quote \\\" and\\nnewline"), std::string::npos);
    // every catalogued rule is listed in the driver
    for (const auto &r : m5lint::allRules())
        EXPECT_NE(s.find("\"id\": \"" + r + "\""), std::string::npos) << r;
    // balanced braces (cheap well-formedness proxy; strings are escaped
    // so raw braces only come from structure)
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
    EXPECT_EQ(std::count(s.begin(), s.end(), '['),
              std::count(s.begin(), s.end(), ']'));
}

TEST(LintSarif, EmptyRunStillListsRules)
{
    const std::string s = m5lint::sarifReport({});
    EXPECT_NE(s.find("\"results\": [\n      ]"), std::string::npos);
    EXPECT_NE(s.find("\"id\": \"no-wallclock\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Parallel lex determinism
// ---------------------------------------------------------------------

TEST_F(LintFilesTest, ProjectScanIsByteIdenticalAtAnyJobCount)
{
    write("src/mem/a.cc", "void *p = malloc(8);\n");
    write("src/mem/b.cc", "int x = rand();\n");
    write("src/mem/c.hh", "#pragma once\nstruct C { int y; };\n");
    write("src/mem/d.cc", "#include \"c.hh\"\nlong t = time(nullptr);\n");
    const auto files = m5lint::collectFiles({dir_.generic_string()});
    ASSERT_EQ(files.size(), 4u);

    ProjectOptions one, four;
    one.jobs = 1;
    four.jobs = 4;
    const auto d1 = m5lint::lintProject(files, {}, nullptr, one);
    const auto d4 = m5lint::lintProject(files, {}, nullptr, four);
    ASSERT_EQ(d1.size(), d4.size());
    for (std::size_t i = 0; i < d1.size(); ++i)
        EXPECT_EQ(d1[i].str(), d4[i].str());
    EXPECT_GE(d1.size(), 3u); // malloc, rand, time all caught
}

} // namespace
