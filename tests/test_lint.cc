/**
 * @file
 * Tests for the m5lint engine (tools/m5lint_lib.cc): every rule must
 * fire on a known-bad fixture and stay silent on a known-good one,
 * suppression (inline and allowlist) must work, and the lexer must not
 * be fooled by comments, strings, or digit separators.
 *
 * Fixtures are passed to lintSource() with a virtual path, since path
 * placement (src/, bench/, tools/, ...) decides which rules apply.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "m5lint.hh"

namespace {

using m5lint::Config;
using m5lint::Diag;
using m5lint::lintSource;

/** Diagnostics for `src` at virtual path `path`, no allowlist. */
std::vector<Diag>
run(const std::string &path, const std::string &src, const Config &cfg = {})
{
    return lintSource(path, src, cfg);
}

/** Count diagnostics with the given rule id. */
std::size_t
countRule(const std::vector<Diag> &diags, const std::string &rule)
{
    return static_cast<std::size_t>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diag &d) { return d.rule == rule; }));
}

// ---------------------------------------------------------------------
// no-wallclock
// ---------------------------------------------------------------------

TEST(LintWallclock, FiresOnSystemClockAndTime)
{
    const auto d1 = run("src/sim/engine.cc",
                        "auto t = std::chrono::system_clock::now();\n");
    EXPECT_EQ(countRule(d1, "no-wallclock"), 1u);

    const auto d2 = run("bench/foo.cc",
                        "long n = time(nullptr);\n"
                        "struct timeval tv; gettimeofday(&tv, nullptr);\n");
    EXPECT_EQ(countRule(d2, "no-wallclock"), 2u);
    EXPECT_EQ(d2[0].line, 1);
    EXPECT_EQ(d2[1].line, 2);
}

TEST(LintWallclock, SilentOnSteadyClockAndLookalikes)
{
    const auto d = run(
        "src/sim/runner.cc",
        "auto t0 = std::chrono::steady_clock::now();\n"
        "double s = runtime(t0);\n"        // identifier containing 'time'
        "auto tp = engine.time();\n"       // member call, not ::time
        "using time_point = std::chrono::steady_clock::time_point;\n");
    EXPECT_EQ(countRule(d, "no-wallclock"), 0u);
}

// ---------------------------------------------------------------------
// no-unseeded-rng
// ---------------------------------------------------------------------

TEST(LintRng, FiresOnRandomDeviceAndRand)
{
    const auto d = run("src/workloads/foo.cc",
                       "std::random_device rd;\n"
                       "srand(42);\n"
                       "int x = rand();\n");
    EXPECT_EQ(countRule(d, "no-unseeded-rng"), 3u);
}

TEST(LintRng, SilentOnSeededRngAndLookalikes)
{
    const auto d = run("src/workloads/foo.cc",
                       "m5::Rng rng(7);\n"
                       "auto v = rng.below(10);\n"
                       "int g = grand(3);\n"       // not rand()
                       "auto s = strand(yarn);\n"  // not srand()
                       "// rand() in a comment is fine\n"
                       "log(\"rand() in a string is fine\");\n");
    EXPECT_EQ(countRule(d, "no-unseeded-rng"), 0u);
}

// ---------------------------------------------------------------------
// no-unordered-result-iteration
// ---------------------------------------------------------------------

TEST(LintUnordered, FiresOnRangeForOverUnorderedInScope)
{
    const std::string src =
        "std::unordered_map<int, long> counts;\n"
        "for (const auto &kv : counts)\n"
        "    emit(kv);\n";
    EXPECT_EQ(countRule(run("bench/fig99.cc", src),
                        "no-unordered-result-iteration"), 1u);
    EXPECT_EQ(countRule(run("src/analysis/report.cc", src),
                        "no-unordered-result-iteration"), 1u);
    EXPECT_EQ(countRule(run("src/sim/sweep.cc", src),
                        "no-unordered-result-iteration"), 1u);
}

TEST(LintUnordered, SilentOutOfScopeAndOnOrderedContainers)
{
    const std::string unordered_src =
        "std::unordered_map<int, long> counts;\n"
        "for (const auto &kv : counts)\n"
        "    bump(kv);\n";
    // Internal bookkeeping (src/os, src/mem, ...) may iterate freely.
    EXPECT_EQ(countRule(run("src/os/mglru.cc", unordered_src),
                        "no-unordered-result-iteration"), 0u);

    const std::string ordered_src =
        "std::map<int, long> counts;\n"
        "std::vector<int> sorted_keys;\n"
        "for (const auto &kv : counts) emit(kv);\n"
        "for (int k : sorted_keys) emit(k);\n";
    EXPECT_EQ(countRule(run("bench/fig99.cc", ordered_src),
                        "no-unordered-result-iteration"), 0u);
}

// ---------------------------------------------------------------------
// no-raw-parse
// ---------------------------------------------------------------------

TEST(LintRawParse, FiresOnAtofFamilyEverywhere)
{
    EXPECT_EQ(countRule(run("tools/foo.cc",
                            "double d = std::atof(argv[1]);\n"),
                        "no-raw-parse"), 1u);
    EXPECT_EQ(countRule(run("src/mem/tier.cc",
                            "long n = strtol(s, &end, 10);\n"
                            "int i = atoi(s);\n"),
                        "no-raw-parse"), 2u);
}

TEST(LintRawParse, SilentInEnvAndOnLookalikes)
{
    // common/env is the sanctioned wrapper around strto*.
    EXPECT_EQ(countRule(run("src/common/env.cc",
                            "double d = std::strtod(v, &end);\n"),
                        "no-raw-parse"), 0u);
    EXPECT_EQ(countRule(run("tools/foo.cc",
                            "auto v = m5::parseDouble(arg);\n"
                            "int x = myatoi(s);\n"),
                        "no-raw-parse"), 0u);
}

// ---------------------------------------------------------------------
// no-raw-output
// ---------------------------------------------------------------------

TEST(LintRawOutput, FiresOnStdoutWritesInSrc)
{
    const auto d = run("src/mem/memsys.cc",
                       "printf(\"x\");\n"
                       "std::printf(\"x\");\n"
                       "fprintf(stdout, \"x\");\n"
                       "std::cout << 1;\n");
    EXPECT_EQ(countRule(d, "no-raw-output"), 4u);
}

TEST(LintRawOutput, SilentInFunnelsToolsAndStderr)
{
    // The two sanctioned emission funnels.
    EXPECT_EQ(countRule(run("src/common/logging.cc",
                            "std::fprintf(stdout, \"info\");\n"),
                        "no-raw-output"), 0u);
    EXPECT_EQ(countRule(run("src/analysis/report.cc",
                            "std::cout << csv;\n"),
                        "no-raw-output"), 0u);
    // CLI tools own their stdout; stderr diagnostics are fine anywhere;
    // strprintf/snprintf are not output calls.
    EXPECT_EQ(countRule(run("tools/m5sim.cc", "printf(\"report\");\n"),
                        "no-raw-output"), 0u);
    EXPECT_EQ(countRule(run("src/sim/runner.cc",
                            "std::fprintf(stderr, \"progress\");\n"
                            "auto s = strprintf(\"%d\", 1);\n"
                            "std::snprintf(buf, n, \"%d\", 1);\n"),
                        "no-raw-output"), 0u);
}

// ---------------------------------------------------------------------
// no-naked-new
// ---------------------------------------------------------------------

TEST(LintNakedNew, FiresOnNewAndMallocInSrc)
{
    const auto d = run("src/cache/cache.cc",
                       "int *p = new int[64];\n"
                       "void *q = malloc(64);\n");
    EXPECT_EQ(countRule(d, "no-naked-new"), 2u);
}

TEST(LintNakedNew, SilentOnRaiiAndOutsideSrc)
{
    EXPECT_EQ(countRule(run("src/cache/cache.cc",
                            "auto p = std::make_unique<int[]>(64);\n"
                            "auto renewed = renew(lease);\n"
                            "int newest = 3;\n"),
                        "no-naked-new"), 0u);
    // gtest fixtures etc. may use new outside the library.
    EXPECT_EQ(countRule(run("tests/test_foo.cc", "auto *w = new Widget;\n"),
                        "no-naked-new"), 0u);
}

// ---------------------------------------------------------------------
// header-hygiene
// ---------------------------------------------------------------------

TEST(LintHeader, FiresOnMissingPragmaOnce)
{
    const auto d = run("src/mem/foo.hh",
                       "namespace m5 {\n"
                       "struct Foo {};\n"
                       "} // namespace m5\n");
    EXPECT_EQ(countRule(d, "header-hygiene"), 1u);
    EXPECT_EQ(d[0].line, 1);
}

TEST(LintHeader, FiresOnUsingNamespaceAtNamespaceScope)
{
    const auto global = run("src/mem/foo.hh",
                            "#pragma once\n"
                            "using namespace std;\n");
    EXPECT_EQ(countRule(global, "header-hygiene"), 1u);

    const auto nested = run("src/mem/foo.hh",
                            "#pragma once\n"
                            "namespace m5 {\n"
                            "using namespace std;\n"
                            "}\n");
    EXPECT_EQ(countRule(nested, "header-hygiene"), 1u);
}

TEST(LintHeader, SilentOnCleanHeaderAndSources)
{
    const auto d = run("src/mem/foo.hh",
                       "#pragma once\n"
                       "namespace m5 {\n"
                       "inline int f() {\n"
                       "    using namespace std::chrono;\n" // function scope
                       "    return 1;\n"
                       "}\n"
                       "} // namespace m5\n");
    EXPECT_EQ(countRule(d, "header-hygiene"), 0u);
    // .cc files need no include guard.
    EXPECT_EQ(countRule(run("src/mem/foo.cc", "int x;\n"),
                        "header-hygiene"), 0u);
}

// ---------------------------------------------------------------------
// Suppression: inline comments and the allowlist.
// ---------------------------------------------------------------------

TEST(LintSuppress, InlineAllowSilencesOneLine)
{
    const auto d = run(
        "src/workloads/foo.cc",
        "std::random_device rd; // m5lint: allow(no-unseeded-rng)\n"
        "std::random_device rd2;\n");
    EXPECT_EQ(countRule(d, "no-unseeded-rng"), 1u);
    EXPECT_EQ(d[0].line, 2);
}

TEST(LintSuppress, InlineAllowStarAndLists)
{
    EXPECT_TRUE(run("src/workloads/foo.cc",
                    "srand(1); // m5lint: allow(*)\n").empty());
    EXPECT_TRUE(run("src/workloads/foo.cc",
                    "srand(time(nullptr)); "
                    "// m5lint: allow(no-unseeded-rng, no-wallclock)\n")
                    .empty());
    // Allowing an unrelated rule does not silence the finding.
    EXPECT_EQ(countRule(run("src/workloads/foo.cc",
                            "srand(1); // m5lint: allow(no-wallclock)\n"),
                        "no-unseeded-rng"), 1u);
}

TEST(LintSuppress, AllowlistScopesByRuleAndPathPrefix)
{
    Config cfg;
    cfg.allow.push_back({"no-raw-parse", "tools/legacy/"});
    EXPECT_EQ(countRule(lintSource("tools/legacy/old.cc",
                                   "int i = atoi(s);\n", cfg),
                        "no-raw-parse"), 0u);
    // Different directory or different rule: still fires.
    EXPECT_EQ(countRule(lintSource("tools/new.cc",
                                   "int i = atoi(s);\n", cfg),
                        "no-raw-parse"), 1u);
    EXPECT_EQ(countRule(lintSource("tools/legacy/old.cc",
                                   "srand(1);\n", cfg),
                        "no-unseeded-rng"), 1u);
}

// ---------------------------------------------------------------------
// Lexer robustness.
// ---------------------------------------------------------------------

TEST(LintLexer, CommentsStringsAndSeparatorsDoNotFire)
{
    const auto d = run(
        "src/mem/foo.cc",
        "/* time(nullptr) in a block comment\n"
        "   spanning lines with rand() */\n"
        "const char *s = \"call time(nullptr) and malloc(4)\";\n"
        "const char *r = R\"(new int[3]; srand(9);)\";\n"
        "int big = 20'000;\n"
        "char c = 'x';\n");
    EXPECT_TRUE(d.empty()) << d.front().str();
}

TEST(LintLexer, DiagFormatIsFileLineRuleMessage)
{
    const auto d = run("src/mem/foo.cc", "void *p = malloc(8);\n");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].str().rfind("src/mem/foo.cc:1: no-naked-new: ", 0), 0u)
        << d[0].str();
}

// ---------------------------------------------------------------------
// File-level API: fixture files on disk, discovery, allowlist parsing.
// ---------------------------------------------------------------------

class LintFilesTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("m5lint_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        std::filesystem::create_directories(dir_ / "src" / "mem");
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    write(const std::string &rel, const std::string &text)
    {
        const auto p = dir_ / rel;
        std::ofstream(p) << text;
        return p.generic_string();
    }

    std::filesystem::path dir_;
};

TEST_F(LintFilesTest, LintFileFindsViolationsOnDisk)
{
    const auto bad = write("src/mem/bad.cc", "void *p = malloc(8);\n");
    const auto good = write("src/mem/good.cc", "int x = 1;\n");
    EXPECT_EQ(countRule(m5lint::lintFile(bad), "no-naked-new"), 1u);
    EXPECT_TRUE(m5lint::lintFile(good).empty());
}

TEST_F(LintFilesTest, LintFileReportsUnreadableFiles)
{
    const auto d = m5lint::lintFile((dir_ / "absent.cc").generic_string());
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "io-error");
}

TEST_F(LintFilesTest, CollectFilesIsSortedAndFiltered)
{
    write("src/mem/b.cc", "int b;\n");
    write("src/mem/a.hh", "#pragma once\n");
    write("src/mem/notes.txt", "not c++\n");
    const auto files = m5lint::collectFiles({dir_.generic_string()});
    ASSERT_EQ(files.size(), 2u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    EXPECT_NE(files[0].find("a.hh"), std::string::npos);
    EXPECT_NE(files[1].find("b.cc"), std::string::npos);
}

TEST_F(LintFilesTest, AllowFileParsesEntriesAndRejectsUnknownRules)
{
    const auto path = write("m5lint.allow",
                            "# comment line\n"
                            "\n"
                            "no-raw-parse tools/legacy/\n"
                            "* src/generated/\n"
                            "not-a-rule src/\n");
    std::vector<std::string> errors;
    const Config cfg = m5lint::loadAllowFile(path, &errors);
    ASSERT_EQ(cfg.allow.size(), 2u);
    EXPECT_EQ(cfg.allow[0].rule, "no-raw-parse");
    EXPECT_EQ(cfg.allow[0].path, "tools/legacy/");
    EXPECT_EQ(cfg.allow[1].rule, "*");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("not-a-rule"), std::string::npos);
}

TEST(LintRules, CatalogueListsAllTenRules)
{
    const auto &rules = m5lint::allRules();
    EXPECT_EQ(rules.size(), 10u);
    for (const char *r :
         {"no-wallclock", "no-wallclock-trace", "no-unseeded-rng",
          "no-unordered-result-iteration", "no-raw-parse", "no-raw-output",
          "no-naked-new", "header-hygiene", "no-untracked-stat",
          "no-unchecked-migrate-result"})
        EXPECT_NE(std::find(rules.begin(), rules.end(), r), rules.end())
            << r;
}

// ---------------------------------------------------------------------
// no-wallclock-trace
// ---------------------------------------------------------------------

TEST(LintWallclockTrace, FiresOnChronoInTraceArgs)
{
    const auto d = run(
        "src/m5/foo.cc",
        "TRACE_EVENT(TraceCat::Sim, "
        "std::chrono::steady_clock::now().time_since_epoch().count(), "
        "\"bad\");\n");
    EXPECT_EQ(countRule(d, "no-wallclock-trace"), 1u);
}

TEST(LintWallclockTrace, FiresAcrossWrappedMacroLines)
{
    const auto d = run("src/m5/foo.cc",
                       "TRACE_SPAN(TraceCat::Migrate, start,\n"
                       "           std::chrono::duration_cast<ns>(\n"
                       "               wall_elapsed).count(),\n"
                       "           \"batch\");\n");
    EXPECT_EQ(countRule(d, "no-wallclock-trace"), 1u);
    EXPECT_EQ(d[0].line, 1);
}

TEST(LintWallclockTrace, SilentOnTickDomainArgsAndSuppressions)
{
    // Simulated-time arguments are the sanctioned form.
    EXPECT_EQ(countRule(run("src/m5/foo.cc",
                            "TRACE_EVENT(TraceCat::Elect, now, \"ok\",\n"
                            "            TraceArgs().u(\"period\", "
                            "period));\n"
                            "TRACE_PAGE_ACCESS(vpn, core_.now());\n"),
                        "no-wallclock-trace"), 0u);
    // Wall-clock code *outside* a TRACE_* argument list is the plain
    // no-wallclock rule's business, not this one's.
    EXPECT_EQ(countRule(run("src/sim/runner.cc",
                            "auto t0 = std::chrono::steady_clock::now();\n"
                            "TRACE_EVENT(TraceCat::Sim, now, \"ok\");\n"),
                        "no-wallclock-trace"), 0u);
    // Inline suppression works like every other rule.
    EXPECT_EQ(countRule(run("src/m5/foo.cc",
                            "TRACE_EVENT(TraceCat::Sim, "
                            "std::chrono::seconds(1).count(), \"x\"); "
                            "// m5lint: allow(no-wallclock-trace)\n"),
                        "no-wallclock-trace"), 0u);
}

// ---------------------------------------------------------------------
// no-untracked-stat
// ---------------------------------------------------------------------

TEST(LintUntrackedStat, CounterMemberWithoutRegisterStatsFires)
{
    const auto d = run("src/cxl/foo.hh",
                       "#pragma once\n"
                       "class Foo {\n"
                       "  std::uint64_t hits_ = 0;\n"
                       "};\n");
    EXPECT_EQ(countRule(d, "no-untracked-stat"), 1u);
}

TEST(LintUntrackedStat, RegisterStatsInHeaderSilencesTheFile)
{
    const auto d = run("src/cxl/foo.hh",
                       "#pragma once\n"
                       "class Foo {\n"
                       "  void registerStats(StatRegistry &reg) const;\n"
                       "  std::uint64_t hits_ = 0;\n"
                       "  std::uint64_t misses_ = 0;\n"
                       "};\n");
    EXPECT_EQ(countRule(d, "no-untracked-stat"), 0u);
}

TEST(LintUntrackedStat, ScopeIsInstrumentedLayerHeadersOnly)
{
    const std::string counter =
        "#pragma once\n"
        "struct S { std::uint64_t misses_ = 0; };\n";
    // Headers outside the instrumented layers are exempt.
    EXPECT_EQ(countRule(run("src/common/foo.hh", counter),
                        "no-untracked-stat"), 0u);
    EXPECT_EQ(countRule(run("src/workloads/foo.hh", counter),
                        "no-untracked-stat"), 0u);
    // .cc files are exempt (implementation tallies live behind headers).
    EXPECT_EQ(countRule(run("src/cxl/foo.cc",
                            "std::uint64_t misses_ = 0;\n"),
                        "no-untracked-stat"), 0u);
    // Non-stat-shaped or non-zero-initialized members are exempt.
    EXPECT_EQ(countRule(run("src/cxl/foo.hh",
                            "#pragma once\n"
                            "struct S { std::uint64_t seed_ = 0; "
                            "std::uint64_t hits_ = 7; };\n"),
                        "no-untracked-stat"), 0u);
}

TEST(LintUntrackedStat, AllowlistAndInlineSuppressionWork)
{
    Config cfg;
    cfg.allow.push_back({"no-untracked-stat", "src/cxl/legacy.hh"});
    EXPECT_EQ(countRule(lintSource("src/cxl/legacy.hh",
                                   "#pragma once\n"
                                   "struct S { std::uint64_t hits_ = 0; };\n",
                                   cfg),
                        "no-untracked-stat"), 0u);
    EXPECT_EQ(countRule(run("src/cxl/foo.hh",
                            "#pragma once\n"
                            "struct S { std::uint64_t hits_ = 0; };"
                            " // m5lint: allow(no-untracked-stat)\n"),
                        "no-untracked-stat"), 0u);
}

// ---------------------------------------------------------------------
// no-unchecked-migrate-result
// ---------------------------------------------------------------------

TEST(LintMigrateResult, FiresOnDiscardedPromoteStatement)
{
    const auto d = run("src/os/anb.cc",
                       "engine_.promote(vpn, now);\n"
                       "engine->promoteBatch(pages, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 2u);
    EXPECT_EQ(d[0].line, 1);
    EXPECT_EQ(d[1].line, 2);
}

TEST(LintMigrateResult, FiresOnContinuationLineDiscard)
{
    const auto d = run("src/m5/manager.cc",
                       "obj.engine()\n"
                       "    .promote(vpn, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u)
        << "member chain off a call is beyond the heuristic";

    const auto d2 = run("src/m5/manager.cc",
                        "engine_\n"
                        "    .promote(vpn, now);\n");
    EXPECT_EQ(countRule(d2, "no-unchecked-migrate-result"), 1u);
}

TEST(LintMigrateResult, SilentWhenResultIsConsumed)
{
    const auto d = run(
        "src/os/anb.cc",
        "elapsed += engine_.promote(vpn, now).busy;\n"
        "const MigrateResult r = engine_.promote(vpn, now);\n"
        "if (engine_.promote(vpn, now).ok()) ++hits;\n"
        "return engine_.promote(vpn, now);\n"
        "take(engine_.promote(vpn, now));\n"
        "(void)engine_.promote(vpn, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, SilentOnNonMemberAndLookalikes)
{
    const auto d = run("src/os/foo.cc",
                       "promote(vpn, now);\n"          // free function
                       "engine_.promoted();\n"         // different name
                       "Tick promote = 3; promote = 4;\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, SuppressionWorks)
{
    const auto d = run("src/os/anb.cc",
                       "engine_.promote(vpn, now); "
                       "// m5lint: allow(no-unchecked-migrate-result)\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

TEST(LintMigrateResult, FiresOnDiscardedMoveExchangeDemote)
{
    const auto d = run("src/os/anb.cc",
                       "engine_.move(vpn, dst, now);\n"
                       "engine->exchange(hot, cold, now);\n"
                       "engine_.demote(vpn, now);\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 3u);
    EXPECT_EQ(d[0].line, 1);
    EXPECT_EQ(d[1].line, 2);
    EXPECT_EQ(d[2].line, 3);
}

TEST(LintMigrateResult, SilentOnConsumedMoveExchangeAndStdMove)
{
    const auto d = run(
        "src/os/anb.cc",
        "elapsed += engine_.move(vpn, dst, now).busy;\n"
        "if (engine_.exchange(hot, cold, now).ok()) ++swaps;\n"
        "(void)engine_.demote(vpn, now);\n"
        "take(std::move(value));\n"              // not a member call
        "queue.push_back(std::move(item));\n");
    EXPECT_EQ(countRule(d, "no-unchecked-migrate-result"), 0u);
}

} // namespace
