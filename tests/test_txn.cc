/**
 * @file
 * Tests for transactional page migration (docs/MIGRATION.md): the
 * commit/abort/validate state machine, the per-page degradation ladder,
 * shadow retention / invalidation / reclaim, zero-copy free demotion,
 * the Promoter retry integration ("retried-then-committed or cleanly
 * degraded"), atomic exchange aborts, the shadow invariant sweep against
 * deliberately corrupted state, and the full-system campaign guarantees.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "m5/promoter.hh"
#include "os/costs.hh"
#include "os/txn_migrate.hh"
#include "sim/experiment.hh"
#include "sim/fault/invariant.hh"
#include "sim/system.hh"

namespace m5 {
namespace {

/**
 * 4-frame DDR, 16-frame CXL, 12 pages (the first `ddr_mapped` start on
 * DDR, the rest on CXL), transactional mode on.
 */
class TxnEngineTest : public ::testing::Test
{
  protected:
    explicit TxnEngineTest(std::uint64_t cxl_frames = 16,
                           Vpn ddr_mapped = 0)
    {
        TieredMemoryParams p;
        p.ddr_bytes = 4 * kPageBytes;
        p.cxl_bytes = cxl_frames * kPageBytes;
        topo = std::make_unique<TierTopology>(TierTopology::pair(p));
        mem = topo->buildMemory();
        llc = std::make_unique<SetAssocCache>(CacheConfig{64 * 1024, 4});
        tlb = std::make_unique<Tlb>(TlbConfig{64, 4});
        pt = std::make_unique<PageTable>(12);
        alloc = std::make_unique<FrameAllocator>(*mem);
        lrus = std::make_unique<TierLrus>(12, topo->numTiers());
        engine = std::make_unique<MigrationEngine>(*topo, *pt, *alloc,
                                                   *mem, *llc, *tlb,
                                                   ledger, *lrus);
        engine->setTxnEnabled(true);
        for (Vpn v = 0; v < 12; ++v) {
            const NodeId n = v < ddr_mapped ? kNodeDdr : kNodeCxl;
            pt->map(v, *alloc->allocate(n), n);
        }
    }

    void
    arm(const std::string &spec)
    {
        faults = std::make_unique<FaultInjector>(FaultPlan::parse(spec), 1);
        engine->attachFaults(faults.get());
    }

    /** Bytes moved through a tier in both directions. */
    std::uint64_t
    traffic(NodeId node) const
    {
        const auto &c = mem->tier(node).counters();
        return c.read_bytes + c.write_bytes;
    }

    const TransactionalMigrator &
    txn() const
    {
        return *engine->txn();
    }

    std::unique_ptr<TierTopology> topo;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<SetAssocCache> llc;
    std::unique_ptr<Tlb> tlb;
    std::unique_ptr<PageTable> pt;
    std::unique_ptr<FrameAllocator> alloc;
    std::unique_ptr<TierLrus> lrus;
    KernelLedger ledger;
    std::unique_ptr<MigrationEngine> engine;
    std::unique_ptr<FaultInjector> faults;
};

// ---------------------------------------------------------------------
// Commit: shadow retention and non-exclusive tiering
// ---------------------------------------------------------------------

TEST_F(TxnEngineTest, CommittedPromotionRetainsShadowFrame)
{
    const Pfn cxl_pfn = pt->pte(0).pfn;
    const MigrateResult res = engine->promote(0, 0);
    EXPECT_EQ(res.outcome, MigrateOutcome::Done);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);

    // Non-exclusive tiering: the CXL frame stays allocated as a shadow.
    EXPECT_TRUE(txn().hasShadow(0));
    EXPECT_EQ(txn().shadowPfn(0), cxl_pfn);
    EXPECT_EQ(txn().shadowNode(0), kNodeCxl);
    EXPECT_EQ(txn().shadowFrames(kNodeCxl), 1u);
    EXPECT_EQ(alloc->usedFrames(kNodeCxl), 12u)
        << "11 mapped pages + 1 shadow";
    EXPECT_EQ(txn().stats().commits, 1u);
    EXPECT_EQ(txn().stats().shadow_retained, 1u);
    EXPECT_EQ(txn().stats().aborts, 0u);
}

TEST_F(TxnEngineTest, FreeDemoteIsZeroCopyPteFlip)
{
    const Pfn cxl_pfn = pt->pte(0).pfn;
    ASSERT_TRUE(engine->promote(0, 0).ok());

    const std::uint64_t ddr_before = traffic(kNodeDdr);
    const std::uint64_t cxl_before = traffic(kNodeCxl);
    const MigrateResult res = engine->demote(0, 1000);
    EXPECT_EQ(res.outcome, MigrateOutcome::Done);

    // The page flipped back onto its original CXL frame with zero copy
    // traffic and only the PTE-flip software cost.
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
    EXPECT_EQ(pt->pte(0).pfn, cxl_pfn);
    EXPECT_EQ(traffic(kNodeDdr), ddr_before) << "no bytes moved";
    EXPECT_EQ(traffic(kNodeCxl), cxl_before) << "no bytes moved";
    EXPECT_EQ(res.busy, cyclesToNs(cost::kDemoteFreeSoftware));
    EXPECT_FALSE(txn().hasShadow(0));
    EXPECT_EQ(txn().shadowFrames(kNodeCxl), 0u);
    EXPECT_EQ(alloc->usedFrames(kNodeDdr), 0u) << "DDR frame freed";
    EXPECT_EQ(txn().stats().demoted_free, 1u);
    EXPECT_EQ(engine->stats().demoted, 1u);
}

TEST_F(TxnEngineTest, MoveOntoShadowTierTakesTheFreeDemote)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    const MigrateResult res = engine->move(0, kNodeCxl, 1000);
    EXPECT_EQ(res.outcome, MigrateOutcome::Done);
    EXPECT_EQ(res.busy, cyclesToNs(cost::kDemoteFreeSoftware));
    EXPECT_EQ(txn().stats().demoted_free, 1u);
}

TEST_F(TxnEngineTest, WriteInvalidatesShadowAndDemotionCopiesAgain)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    ASSERT_TRUE(txn().hasShadow(0));

    // A retired store diverges the page from its shadow: the shadow
    // drops eagerly, in the store's own context.
    const Tick busy = engine->noteWrite(0, 500);
    EXPECT_EQ(busy, cyclesToNs(cost::kShadowRelease));
    EXPECT_FALSE(txn().hasShadow(0));
    EXPECT_EQ(txn().stats().shadow_invalidated, 1u);
    EXPECT_EQ(alloc->usedFrames(kNodeCxl), 11u) << "shadow frame freed";

    // Demotion now pays the full copy again.
    const std::uint64_t cxl_before = traffic(kNodeCxl);
    ASSERT_TRUE(engine->demote(0, 1000).ok());
    EXPECT_GT(traffic(kNodeCxl), cxl_before);
    EXPECT_EQ(txn().stats().demoted_free, 0u);
}

TEST_F(TxnEngineTest, WriteToUnshadowedPageIsFree)
{
    EXPECT_EQ(engine->noteWrite(3, 0), 0u);
    EXPECT_EQ(txn().stats().shadow_invalidated, 0u);
}

// ---------------------------------------------------------------------
// Abort: injected copy races and the degradation ladder
// ---------------------------------------------------------------------

TEST_F(TxnEngineTest, InjectedRaceAbortsAndLeavesPageAtSource)
{
    arm("copy_race:p=1");
    const Pfn cxl_pfn = pt->pte(0).pfn;
    const MigrateResult res = engine->promote(0, 0);

    EXPECT_EQ(res.outcome, MigrateOutcome::AbortedRace);
    EXPECT_TRUE(res.transient()) << "aborts retry like EBUSY";
    EXPECT_STREQ(res.reason(), "copy_race");
    EXPECT_GT(res.busy, 0u) << "the wasted copy still costs time";
    EXPECT_EQ(pt->pte(0).node, kNodeCxl) << "page never moved";
    EXPECT_EQ(pt->pte(0).pfn, cxl_pfn);
    EXPECT_EQ(alloc->usedFrames(kNodeDdr), 0u) << "dst frame unwound";
    EXPECT_FALSE(txn().hasShadow(0));
    EXPECT_EQ(txn().stats().aborts, 1u);
    EXPECT_EQ(txn().stats().abort_src_race, 1u);
    EXPECT_EQ(txn().stats().commits, 0u);
    EXPECT_EQ(engine->stats().transient_fail, 1u);
    EXPECT_EQ(engine->stats().promoted, 0u);
}

TEST_F(TxnEngineTest, LadderDegradesToLegacyPathAfterTwoAborts)
{
    arm("copy_race:p=1");
    EXPECT_EQ(engine->promote(0, 0).outcome, MigrateOutcome::AbortedRace);
    EXPECT_FALSE(txn().degraded(0)) << "one abort is not a pattern";
    EXPECT_EQ(engine->promote(0, 1000).outcome,
              MigrateOutcome::AbortedRace);
    EXPECT_TRUE(txn().degraded(0));
    EXPECT_EQ(txn().stats().degraded_pages, 1u);

    // The third attempt takes the legacy stop-the-world path, which an
    // injected copy race cannot touch: the write-hot page still lands.
    const MigrateResult res = engine->promote(0, 2000);
    EXPECT_EQ(res.outcome, MigrateOutcome::Done);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    EXPECT_FALSE(txn().hasShadow(0))
        << "the legacy path retains no shadow";
    EXPECT_EQ(txn().stats().aborts, 2u);

    // Other pages still migrate transactionally... and keep aborting
    // under p=1, proving the degradation is per page.
    EXPECT_EQ(engine->promote(1, 3000).outcome,
              MigrateOutcome::AbortedRace);
}

TEST_F(TxnEngineTest, PromoterRetriesAbortedTxnUntilCommit)
{
    arm("copy_race:burst=1@0"); // exactly the first copy races
    RetryConfig retry;
    retry.backoff_base = usToTicks(200);
    Promoter prom(*pt, *engine, retry);

    const PromoteRound r1 = prom.promote({0}, 0);
    EXPECT_EQ(r1.failed, 1u);
    EXPECT_EQ(prom.pendingRetries(), 1u);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);

    // The retry re-runs the transaction; no second race, so it commits
    // — the "retried-then-committed" arm of the guarantee.
    const PromoteRound r2 = prom.promote({}, r1.busy + usToTicks(200));
    EXPECT_EQ(r2.attempted, 1u);
    EXPECT_EQ(r2.failed, 0u);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    EXPECT_TRUE(txn().hasShadow(0));
    EXPECT_EQ(prom.stats().retry_succeeded, 1u);
    EXPECT_EQ(txn().stats().commits, 1u);
    EXPECT_EQ(txn().stats().aborts, 1u);
}

TEST_F(TxnEngineTest, PromoterDegradesAPersistentRacerCleanly)
{
    arm("copy_race:p=1");
    RetryConfig retry;
    retry.backoff_base = usToTicks(200);
    Promoter prom(*pt, *engine, retry);

    // Attempt 1 and retry 1 abort (K = 2 -> degraded); retry 2, the
    // last of max_attempts = 3, goes stop-the-world and commits — the
    // "cleanly degraded" arm.
    const PromoteRound r1 = prom.promote({0}, 0);
    EXPECT_EQ(r1.failed, 1u);
    const Tick t2 = r1.busy + usToTicks(200);
    const PromoteRound r2 = prom.promote({}, t2);
    EXPECT_EQ(r2.failed, 1u);
    EXPECT_TRUE(txn().degraded(0));
    const PromoteRound r3 = prom.promote({}, t2 + r2.busy + usToTicks(400));
    EXPECT_EQ(r3.attempted, 1u);
    EXPECT_EQ(r3.failed, 0u);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    EXPECT_EQ(prom.stats().dropped, 0u);
    EXPECT_EQ(txn().stats().degraded_pages, 1u);
}

// ---------------------------------------------------------------------
// Exchange: atomic two-page transactions
// ---------------------------------------------------------------------

TEST_F(TxnEngineTest, ExchangeCommitDropsTheDemotedPartnersShadow)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    ASSERT_TRUE(txn().hasShadow(0));
    const MigrateResult res = engine->exchange(1, 0, 1000);
    EXPECT_EQ(res.outcome, MigrateOutcome::ExchangedInstead);
    EXPECT_EQ(pt->pte(1).node, kNodeDdr);
    EXPECT_EQ(pt->pte(0).node, kNodeCxl);
    EXPECT_FALSE(txn().hasShadow(0))
        << "the demoted page's content left its shadow frame behind";
    EXPECT_EQ(txn().stats().shadow_invalidated, 1u);
}

TEST_F(TxnEngineTest, ExchangeAbortsAtomicallyOnInjectedRace)
{
    ASSERT_TRUE(engine->promote(0, 0).ok());
    arm("copy_race:p=1");
    const Pfn hot_pfn = pt->pte(1).pfn;
    const Pfn cold_pfn = pt->pte(0).pfn;
    const MigrateResult res = engine->exchange(1, 0, 1000);

    EXPECT_EQ(res.outcome, MigrateOutcome::AbortedRace);
    EXPECT_TRUE(res.transient());
    // Neither mapping changed: the abort is atomic across both pages.
    EXPECT_EQ(pt->pte(1).node, kNodeCxl);
    EXPECT_EQ(pt->pte(1).pfn, hot_pfn);
    EXPECT_EQ(pt->pte(0).node, kNodeDdr);
    EXPECT_EQ(pt->pte(0).pfn, cold_pfn);
    // The racing store hit the shadowed partner too: its shadow is
    // stale and must be gone, not silently carried.
    EXPECT_FALSE(txn().hasShadow(0));
    EXPECT_EQ(engine->stats().exchanged, 0u);
    EXPECT_EQ(txn().stats().aborts, 1u);
}

// ---------------------------------------------------------------------
// Shadow reclaim under tier pressure
// ---------------------------------------------------------------------

/**
 * 11-frame CXL with pages 0-3 born on DDR: demote/promote churn can
 * fill CXL until live shadows are the only reclaimable slack.
 */
class TxnPressureTest : public TxnEngineTest
{
  protected:
    TxnPressureTest() : TxnEngineTest(11, 4) {}
};

TEST_F(TxnPressureTest, TierPressureReclaimsOldestShadowFirst)
{
    // Churn: demote a DDR-born page (full copy, consumes a CXL frame),
    // promote a CXL page into the hole (retains a shadow, consumes
    // nothing back).  Three rounds leave CXL with zero free frames and
    // three live shadows as the only slack.
    Tick t = 0;
    for (Vpn v = 0; v < 3; ++v) {
        ASSERT_TRUE(engine->move(v, kNodeCxl, t += 1000).ok());
        ASSERT_TRUE(engine->promote(4 + v, t += 1000).ok());
    }
    ASSERT_EQ(alloc->freeFrames(kNodeCxl), 0u);
    ASSERT_EQ(txn().shadowFrames(kNodeCxl), 3u);

    // Page 3 was born on DDR and never promoted, so it has no shadow:
    // demoting it needs a real CXL frame.  The oldest shadow (vpn 4's)
    // is reclaimed to provide one instead of failing the migration.
    const MigrateResult res = engine->move(3, kNodeCxl, t += 1000);
    EXPECT_EQ(res.outcome, MigrateOutcome::Done);
    EXPECT_EQ(pt->pte(3).node, kNodeCxl);
    EXPECT_FALSE(txn().hasShadow(4)) << "oldest shadow reclaimed";
    EXPECT_TRUE(txn().hasShadow(5)) << "newer shadows survive";
    EXPECT_TRUE(txn().hasShadow(6));
    EXPECT_EQ(txn().stats().shadow_reclaimed, 1u);
    EXPECT_EQ(txn().shadowFrames(kNodeCxl), 2u);
}

// ---------------------------------------------------------------------
// Invariant sweep vs deliberately corrupted shadow state
// ---------------------------------------------------------------------

class TxnInvariantTest : public TxnEngineTest
{
  protected:
    TxnInvariantTest()
    {
        EXPECT_TRUE(engine->promote(0, 0).ok());
        inv = std::make_unique<InvariantChecker>(*pt, *alloc, *mem, *lrus,
                                                 ledger);
        inv->attachTxn(engine->txn());
    }

    bool
    anyMentions(const std::vector<std::string> &bad, const char *needle)
    {
        for (const auto &s : bad)
            if (s.find(needle) != std::string::npos)
                return true;
        return false;
    }

    std::unique_ptr<InvariantChecker> inv;
};

TEST_F(TxnInvariantTest, CleanShadowStatePasses)
{
    EXPECT_TRUE(inv->check(0).empty());
    EXPECT_EQ(inv->violations(), 0u);
}

TEST_F(TxnInvariantTest, LeakedShadowFrameIsCaught)
{
    // Corruption: the shadow frame is freed behind the migrator's back,
    // so the allocator's books no longer balance against mapped+shadows.
    alloc->free(kNodeCxl, engine->txn()->shadowPfn(0));
    const auto bad = inv->check(0);
    ASSERT_FALSE(bad.empty());
    EXPECT_TRUE(anyMentions(bad, "shadows"));
}

TEST_F(TxnInvariantTest, StaleShadowAfterWriteIsCaught)
{
    // Corruption: a store bumps the write generation without the shadow
    // invalidation that must accompany it.
    pt->noteWrite(0);
    const auto bad = inv->check(0);
    ASSERT_FALSE(bad.empty());
    EXPECT_TRUE(anyMentions(bad, "stale shadow"));
}

TEST_F(TxnInvariantTest, DoubleAccountedShadowFrameIsCaught)
{
    // Corruption: another page is remapped onto the live shadow frame,
    // so one frame backs two pages' worth of state.
    pt->remap(1, engine->txn()->shadowPfn(0), kNodeCxl);
    const auto bad = inv->check(0);
    ASSERT_FALSE(bad.empty());
    EXPECT_TRUE(anyMentions(bad, "double-accounted"));
}

TEST_F(TxnInvariantTest, DetachedCheckerStillBalancesWithoutShadows)
{
    // Without attachTxn the widened balance rule must flag the retained
    // shadow as an unexplained allocated frame — proving the rule is
    // load-bearing, not vacuously green.
    InvariantChecker blind(*pt, *alloc, *mem, *lrus, ledger);
    const auto bad = blind.check(0);
    ASSERT_FALSE(bad.empty());
    EXPECT_TRUE(anyMentions(bad, "used frames"));
}

// ---------------------------------------------------------------------
// Full system
// ---------------------------------------------------------------------

TEST(TxnSystemTest, CampaignCommitsAbortsFreeDemotesAndStaysClean)
{
    SystemConfig cfg = makeConfig("redis", PolicyKind::M5HptDriven,
                                  1.0 / 128.0, 7);
    cfg.ddr_capacity_fraction = 0.15;
    cfg.faults = "migrate_busy:p=0.02,copy_race:p=0.1";
    TieredSystem sys(cfg);
    const RunResult r = sys.run(60000);

    EXPECT_GT(r.txn.commits, 0u);
    EXPECT_GT(r.txn.aborts, 0u) << "the storm must exercise aborts";
    EXPECT_GT(r.txn.shadow_retained, 0u);
    EXPECT_GT(r.txn.demoted_free, 0u)
        << "tier pressure must hit the zero-copy demote path";
    ASSERT_NE(sys.invariants(), nullptr);
    EXPECT_GT(sys.invariants()->checks(), 0u);
    EXPECT_EQ(sys.invariants()->violations(), 0u)
        << "races must abort or commit, never corrupt";
}

TEST(TxnSystemTest, DisabledModeConstructsNothing)
{
    SystemConfig cfg = makeConfig("redis", PolicyKind::M5HptDriven,
                                  1.0 / 128.0, 7);
    cfg.txn_migrate = false;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(30000);
    EXPECT_FALSE(sys.migrationEngine().txnEnabled());
    EXPECT_EQ(sys.migrationEngine().txn(), nullptr);
    EXPECT_EQ(r.txn.commits + r.txn.aborts + r.txn.demoted_free, 0u);
}

} // namespace
} // namespace m5
