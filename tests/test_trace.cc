/**
 * @file
 * Tests for the causal event tracer (src/telemetry/trace): category
 * gating, ring overflow accounting, span capture and Chrome export,
 * the per-page lifecycle ledger behind `m5trace explain`, and the
 * end-to-end guarantees — tracing disabled changes nothing, per-cell
 * sweep traces are byte-identical between 1 and 4 workers, and reruns
 * of the same cell produce identical bytes.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace m5 {
namespace {

namespace fs = std::filesystem;

/** setenv/unsetenv wrapper that restores the old value on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_ = false;
};

/** Unique scratch directory, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
    {
        path_ = fs::temp_directory_path() /
                ("m5_trace_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

std::string
slurp(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TraceConfig
collectConfig(std::uint32_t cats = kTraceAllCats)
{
    TraceConfig cfg;
    cfg.collect = true;
    cfg.categories = cats;
    return cfg;
}

// ---------------------------------------------------------------------
// Category mask parsing and gating
// ---------------------------------------------------------------------

TEST(TraceCatsTest, ParseNamesUnionsAndAliases)
{
    EXPECT_EQ(parseTraceCats("monitor"),
              static_cast<std::uint32_t>(TraceCat::Monitor));
    EXPECT_EQ(parseTraceCats("sim,cxl"),
              static_cast<std::uint32_t>(TraceCat::Sim) |
                  static_cast<std::uint32_t>(TraceCat::Cxl));
    EXPECT_EQ(parseTraceCats("all"), kTraceAllCats);
    EXPECT_EQ(parseTraceCats("default"), kTraceDefaultCats);
    // The default mask records the pipeline but not raw accesses.
    EXPECT_EQ(kTraceDefaultCats & static_cast<std::uint32_t>(TraceCat::Access),
              0u);
    EXPECT_NE(kTraceDefaultCats & static_cast<std::uint32_t>(TraceCat::Elect),
              0u);
}

TEST(TracerTest, CategoryGatingFiltersEvents)
{
    Tracer tracer(collectConfig(
        static_cast<std::uint32_t>(TraceCat::Monitor)));
    EXPECT_TRUE(tracer.enabled(TraceCat::Monitor));
    EXPECT_FALSE(tracer.enabled(TraceCat::Elect));

    const TraceBinding binding(&tracer);
    TRACE_EVENT(TraceCat::Monitor, 100, "keep");
    TRACE_EVENT(TraceCat::Elect, 200, "drop");
    ASSERT_EQ(tracer.events().size(), 1u);
    EXPECT_EQ(tracer.events().front().name, "keep");
    EXPECT_EQ(tracer.events().front().ts, 100u);
}

TEST(TracerTest, MacrosAreInertWithoutABoundTracer)
{
    ASSERT_EQ(traceCurrent(), nullptr);
    // Must compile and do nothing; a crash here is the regression.
    TRACE_EVENT(TraceCat::Sim, 1, "nobody-listening");
    TRACE_SPAN(TraceCat::Sim, 1, 2, "nobody-listening");
    TRACE_PAGE_ACCESS(42, 3);
}

TEST(TracerTest, BindingNestsAndRestores)
{
    Tracer outer(collectConfig());
    Tracer inner(collectConfig());
    EXPECT_EQ(traceCurrent(), nullptr);
    {
        const TraceBinding a(&outer);
        EXPECT_EQ(traceCurrent(), &outer);
        {
            const TraceBinding b(&inner);
            EXPECT_EQ(traceCurrent(), &inner);
        }
        EXPECT_EQ(traceCurrent(), &outer);
    }
    EXPECT_EQ(traceCurrent(), nullptr);
}

// ---------------------------------------------------------------------
// Ring buffer accounting
// ---------------------------------------------------------------------

TEST(TracerTest, RingOverflowDropsOldestAndCounts)
{
    TraceConfig cfg = collectConfig();
    cfg.ring_capacity = 4;
    Tracer tracer(cfg);
    for (int i = 0; i < 10; ++i)
        tracer.instant(TraceCat::Sim, static_cast<Tick>(i),
                       strprintf("e%d", i).c_str());

    EXPECT_EQ(tracer.emitted(), 10u);
    EXPECT_EQ(tracer.dropped(), 6u);
    ASSERT_EQ(tracer.events().size(), 4u);
    EXPECT_EQ(tracer.events().front().name, "e6"); // oldest went first
    EXPECT_EQ(tracer.events().back().name, "e9");

    StatRegistry reg;
    tracer.registerStats(reg);
    EXPECT_EQ(reg.counter("telemetry.trace.emitted"), 10u);
    EXPECT_EQ(reg.counter("telemetry.trace.dropped"), 6u);
}

// ---------------------------------------------------------------------
// Spans and Chrome export
// ---------------------------------------------------------------------

TEST(TracerTest, SpansNestAndExportAsCompleteEvents)
{
    Tracer tracer(collectConfig());
    const TraceBinding binding(&tracer);
    TRACE_SPAN(TraceCat::Sim, 1000, 3000, "outer",
               TraceArgs().u("epoch", 1));
    TRACE_SPAN(TraceCat::Sim, 1500, 500, "inner");
    ASSERT_EQ(tracer.events().size(), 2u);
    const TraceEvent &outer = tracer.events()[0];
    const TraceEvent &inner = tracer.events()[1];
    EXPECT_EQ(outer.ph, 'X');
    EXPECT_EQ(outer.dur, 3000u);
    // The inner span lies fully within the outer one, which is what
    // makes Perfetto render them nested on the lane.
    EXPECT_GE(inner.ts, outer.ts);
    EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);

    std::ostringstream os;
    tracer.exportChromeTrace(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"epoch\":1"), std::string::npos);
    // Ticks are ns; Chrome wants us with sub-us precision preserved.
    EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
}

TEST(TracerTest, InstantEventsCarryTheScopeFlag)
{
    Tracer tracer(collectConfig());
    tracer.instant(TraceCat::Nominate, 42, "pick",
                   TraceArgs().u("page", 7).s("why", "hot"));
    std::ostringstream os;
    tracer.exportChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"why\":\"hot\""), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: a traced system run
// ---------------------------------------------------------------------

SystemConfig
smallConfig()
{
    return makeConfig("mcf_r", PolicyKind::M5HptDriven, 1.0 / 128.0, 1);
}

TEST(TraceSystemTest, RunCoversEpochsAndDecisionPipeline)
{
    SystemConfig cfg = smallConfig();
    cfg.trace.collect = true;
    cfg.trace.categories = kTraceAllCats;
    TieredSystem sys(cfg);
    sys.run(40000);

    ASSERT_NE(sys.tracer(), nullptr);
    std::vector<std::string> names;
    for (const TraceEvent &ev : sys.tracer()->events())
        names.push_back(ev.name);
    for (const char *want :
         {"epoch", "monitor.sample", "hpt.query", "nominator.track",
          "nominator.nominate", "elector.decision", "promoter.batch",
          "migration.promote", "m5.wake", "page.access"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
            << "missing event " << want;
    }
}

TEST(TraceSystemTest, DisabledTracingChangesNothing)
{
    TempDir dir("inert");
    RunResult plain, traced;
    {
        SystemConfig cfg = smallConfig();
        cfg.telemetry.path = (dir.path() / "plain.jsonl").string();
        TieredSystem sys(cfg);
        plain = sys.run(20000);
        EXPECT_EQ(sys.tracer(), nullptr);
    }
    {
        SystemConfig cfg = smallConfig();
        cfg.telemetry.path = (dir.path() / "traced.jsonl").string();
        cfg.trace.collect = true;
        cfg.trace.categories = kTraceAllCats;
        TieredSystem sys(cfg);
        traced = sys.run(20000);
        EXPECT_NE(sys.tracer(), nullptr);
        EXPECT_GT(sys.tracer()->emitted(), 0u);
    }
    // Observing the run must not perturb it.
    EXPECT_EQ(plain.runtime, traced.runtime);
    EXPECT_EQ(plain.accesses, traced.accesses);
    EXPECT_EQ(plain.migration.promoted, traced.migration.promoted);
    EXPECT_EQ(plain.migration.demoted, traced.migration.demoted);
    EXPECT_EQ(plain.llc.hits, traced.llc.hits);
    EXPECT_EQ(plain.llc.misses, traced.llc.misses);
    EXPECT_EQ(plain.steady_ddr_read_bytes, traced.steady_ddr_read_bytes);

    // With tracing off the telemetry stream carries no trace stats at
    // all — byte-for-byte it is the pre-trace output.
    const std::string a = slurp(dir.path() / "plain.jsonl");
    const std::string b = slurp(dir.path() / "traced.jsonl");
    EXPECT_EQ(a.find("telemetry.trace"), std::string::npos);
    EXPECT_NE(b.find("telemetry.trace"), std::string::npos);
}

TEST(TraceSystemTest, RerunsProduceIdenticalTraceBytes)
{
    TempDir dir("rerun");
    auto once = [&](const std::string &name) {
        SystemConfig cfg = smallConfig();
        cfg.trace.path = (dir.path() / name).string();
        TieredSystem sys(cfg);
        sys.run(20000);
        return slurp(dir.path() / name);
    };
    const std::string a = once("a.trace.json");
    const std::string b = once("b.trace.json");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------
// Lifecycle ledger (m5trace explain)
// ---------------------------------------------------------------------

TEST(TraceLedgerTest, MigratedPageHasOrderedLifecycle)
{
    SystemConfig cfg = smallConfig();
    cfg.trace.collect = true;
    cfg.trace.ledger = true;
    cfg.trace.categories = kTraceAllCats;
    TieredSystem sys(cfg);
    sys.run(40000);

    const PageLedger &ledger = sys.tracer()->ledger();
    const auto migrated = ledger.migratedPages();
    ASSERT_FALSE(migrated.empty());
    EXPECT_TRUE(std::is_sorted(migrated.begin(), migrated.end()));

    const auto records = ledger.lifecycle(migrated.front());
    ASSERT_FALSE(records.empty());
    // Timestamps are non-decreasing with the global sequence breaking
    // ties, so the story reads in causal order.
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_LE(records[i - 1].ts, records[i].ts);

    // The decision pipeline appears in stage order.
    auto firstContaining = [&](const std::string &what) {
        for (std::size_t i = 0; i < records.size(); ++i)
            if (records[i].text.rfind(what, 0) == 0)
                return static_cast<long>(i);
        return -1L;
    };
    const long tracked = firstContaining("tracked");
    const long nominated = firstContaining("nominated");
    const long accepted = firstContaining("accepted by promoter");
    const long migrated_at = firstContaining("migrated to DDR");
    ASSERT_GE(tracked, 0);
    ASSERT_GE(nominated, 0);
    ASSERT_GE(accepted, 0);
    ASSERT_GE(migrated_at, 0);
    EXPECT_LT(tracked, nominated);
    EXPECT_LT(nominated, accepted);
    EXPECT_LT(accepted, migrated_at);
    // Elector context is merged into the page's window.
    EXPECT_GE(firstContaining("elected"), 0);
}

TEST(TraceLedgerTest, LedgerPageBucketsAccessesPerEpoch)
{
    SystemConfig cfg = smallConfig();
    cfg.trace.collect = true;
    cfg.trace.ledger = true;
    cfg.trace.categories = kTraceAllCats;
    TieredSystem sys0(cfg);
    sys0.run(40000);
    const auto migrated = sys0.tracer()->ledger().migratedPages();
    ASSERT_FALSE(migrated.empty());

    cfg.trace.ledger_page = migrated.front();
    TieredSystem sys(cfg);
    sys.run(40000);
    const auto records =
        sys.tracer()->ledger().lifecycle(migrated.front());
    const bool has_bucket =
        std::any_of(records.begin(), records.end(),
                    [](const LedgerRecord &r) {
                        return r.text.rfind("epoch ", 0) == 0 &&
                               r.text.find("accesses") != std::string::npos;
                    });
    EXPECT_TRUE(has_bucket);
    // Raw access instants stay out of the ledger; they are bucketed.
    for (const auto &r : records)
        EXPECT_EQ(r.text.find("page.access"), std::string::npos) << r.text;
}

// ---------------------------------------------------------------------
// Sweep integration: per-cell traces, 1 vs 4 workers
// ---------------------------------------------------------------------

TEST(TraceRunnerTest, PathForLabelFlattensSeparators)
{
    EXPECT_EQ(tracePathForLabel("/tmp/t", "mcf_r/m5(hpt+hwt)/s1"),
              "/tmp/t/mcf_r_m5_hpt_hwt__s1.trace.json");
    EXPECT_EQ(artifactPathForLabel("d", "plain-label_1.x", ".trace.json"),
              "d/plain-label_1.x.trace.json");
}

TEST(TraceRunnerTest, WorkerCountDoesNotChangeTraceBytes)
{
    TempDir dir1("sweep1");
    TempDir dir4("sweep4");
    SweepGrid grid;
    grid.benchmark("mcf_r")
        .policies({PolicyKind::M5HptDriven, PolicyKind::Anb})
        .seeds(2)
        .scale(1.0 / 128.0)
        .budgetOverride(20000);
    const auto jobs = grid.expand();
    ASSERT_EQ(jobs.size(), 4u);

    auto sweep = [&](const TempDir &dir, unsigned workers) {
        ScopedEnv trace_env("M5_BENCH_TRACE", dir.path().c_str());
        RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = 0;
        ExperimentRunner runner(opts);
        for (const auto &outcome : runner.run(jobs))
            EXPECT_TRUE(outcome.ok) << outcome.error;
    };
    sweep(dir1, 1);
    sweep(dir4, 4);

    std::vector<std::string> names;
    for (const auto &entry : fs::directory_iterator(dir1.path()))
        names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    ASSERT_EQ(names.size(), jobs.size());

    for (const auto &name : names) {
        EXPECT_NE(name.find(".trace.json"), std::string::npos) << name;
        ASSERT_TRUE(fs::exists(dir4.path() / name))
            << name << " missing from the 4-worker sweep";
        EXPECT_EQ(slurp(dir1.path() / name), slurp(dir4.path() / name))
            << name << " differs between 1 and 4 workers";
    }
}

} // namespace
} // namespace m5
