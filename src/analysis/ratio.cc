#include "analysis/ratio.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

std::uint64_t
ExactCounter::count(std::uint64_t key) const
{
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
}

std::vector<TopKEntry>
ExactCounter::topK(std::size_t k) const
{
    std::vector<TopKEntry> all;
    all.reserve(counts_.size());
    for (const auto &[key, c] : counts_)
        all.push_back({key, c});
    std::sort(all.begin(), all.end(),
        [](const TopKEntry &a, const TopKEntry &b) {
            if (a.count != b.count)
                return a.count > b.count;
            return a.tag < b.tag;
        });
    if (all.size() > k)
        all.resize(k);
    return all;
}

std::uint64_t
ExactCounter::topKSum(std::size_t k) const
{
    std::uint64_t sum = 0;
    for (const auto &e : topK(k))
        sum += e.count;
    return sum;
}

double
ExactCounter::ratioOf(const std::vector<TopKEntry> &reported) const
{
    if (reported.empty())
        return 0.0;
    std::uint64_t k_sum = 0;
    for (const auto &e : reported)
        k_sum += count(e.tag);
    const std::uint64_t top_sum = topKSum(reported.size());
    return top_sum ? static_cast<double>(k_sum) /
                     static_cast<double>(top_sum) : 0.0;
}

double
accessCountRatio(const PacUnit &pac, const std::vector<Pfn> &identified)
{
    if (identified.empty())
        return 0.0;
    std::uint64_t k_sum = 0;
    for (Pfn pfn : identified)
        k_sum += pac.count(pfn);
    const std::uint64_t top_sum = pac.topKAccessSum(identified.size());
    return top_sum ? static_cast<double>(k_sum) /
                     static_cast<double>(top_sum) : 0.0;
}

double
accessCountRatio(const PacUnit &pac,
                 const std::vector<TopKEntry> &reported)
{
    std::vector<Pfn> pages;
    pages.reserve(reported.size());
    for (const auto &e : reported)
        pages.push_back(e.tag);
    return accessCountRatio(pac, pages);
}

} // namespace m5
