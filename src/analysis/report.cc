#include "analysis/report.hh"

#include <cmath>
#include <fstream>
#include <iostream>

#include "common/env.hh"
#include "common/logging.hh"

namespace m5 {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        m5_assert(v > 0.0, "geomean needs positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
normalizedPerformance(double baseline_throughput, double policy_throughput,
                      double baseline_p99, double policy_p99,
                      bool latency_sensitive)
{
    if (latency_sensitive && baseline_p99 > 0.0 && policy_p99 > 0.0)
        return baseline_p99 / policy_p99;
    return baseline_throughput > 0.0
        ? policy_throughput / baseline_throughput : 0.0;
}

std::string
ratioStr(double v, int precision)
{
    return TextTable::num(v, precision) + "x";
}

std::string
shortBenchName(const std::string &bench)
{
    if (bench == "liblinear")
        return "lib.";
    if (bench == "cactuBSSN_r")
        return "cactu.";
    if (bench == "fotonik3d_r")
        return "foto.";
    if (bench == "mcf_r")
        return "mcf";
    if (bench == "roms_r")
        return "roms";
    if (bench == "memcached")
        return "mcd";
    if (bench == "cachelib")
        return "c.-lib";
    return bench;
}

void
emitTable(std::ostream &os, const TextTable &table,
          const std::string &section)
{
    table.print(os);
    const auto sink = envString("M5_BENCH_CSV");
    if (!sink)
        return;
    if (*sink == "-" || *sink == "1") {
        if (!section.empty())
            std::cout << "# " << section << "\n";
        table.printCsv(std::cout);
        return;
    }
    std::ofstream out(*sink, std::ios::app);
    if (!out) {
        m5_warn("cannot append CSV to M5_BENCH_CSV='%s'", sink->c_str());
        return;
    }
    if (!section.empty())
        out << "# " << section << "\n";
    table.printCsv(out);
}

} // namespace m5
