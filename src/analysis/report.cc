#include "analysis/report.hh"

#include <cmath>

#include "common/logging.hh"

namespace m5 {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        m5_assert(v > 0.0, "geomean needs positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
normalizedPerformance(double baseline_throughput, double policy_throughput,
                      double baseline_p99, double policy_p99,
                      bool latency_sensitive)
{
    if (latency_sensitive && baseline_p99 > 0.0 && policy_p99 > 0.0)
        return baseline_p99 / policy_p99;
    return baseline_throughput > 0.0
        ? policy_throughput / baseline_throughput : 0.0;
}

std::string
ratioStr(double v, int precision)
{
    return TextTable::num(v, precision) + "x";
}

} // namespace m5
