#include "analysis/cdf.hh"

#include <algorithm>
#include <cmath>

#include "common/stats.hh"

namespace m5 {

std::array<double, 5>
sparsityCdf(const WacUnit &wac, std::uint64_t min_touches)
{
    const auto pages = wac.pagesWithUniqueWords(min_touches);
    std::array<double, 5> out{};
    if (pages.empty())
        return out;
    for (std::size_t t = 0; t < kSparsityThresholds.size(); ++t) {
        std::size_t n = 0;
        for (const auto &[pfn, words] : pages) {
            if (words <= kSparsityThresholds[t])
                ++n;
        }
        out[t] = static_cast<double>(n) /
                 static_cast<double>(pages.size());
    }
    return out;
}

CdfSeries
accessCountLogCdf(const PacUnit &pac, std::size_t points)
{
    CdfSeries s;
    auto counts = pac.nonZeroCounts();
    if (counts.empty() || points < 2)
        return s;
    std::sort(counts.begin(), counts.end());
    const double max_log =
        std::log10(static_cast<double>(counts.back()));
    for (std::size_t i = 0; i < points; ++i) {
        const double lg = max_log * static_cast<double>(i) /
                          static_cast<double>(points - 1);
        const auto threshold =
            static_cast<std::uint64_t>(std::pow(10.0, lg));
        const auto it = std::upper_bound(counts.begin(), counts.end(),
                                         threshold);
        s.xs.push_back(lg);
        s.ys.push_back(static_cast<double>(it - counts.begin()) /
                       static_cast<double>(counts.size()));
    }
    return s;
}

double
accessCountPercentile(const PacUnit &pac, double p)
{
    auto counts = pac.nonZeroCounts();
    std::vector<double> d(counts.begin(), counts.end());
    return percentileOf(std::move(d), p);
}

} // namespace m5
