/**
 * @file
 * Distribution analyses behind Figures 4 and 10.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "cxl/pac.hh"
#include "cxl/wac.hh"

namespace m5 {

/** Figure 4 thresholds: at most 4, 8, 16, 32, 48 unique words. */
inline constexpr std::array<unsigned, 5> kSparsityThresholds = {4, 8, 16,
                                                                32, 48};

/**
 * Figure 4 row: P(page has at most N unique 64B words accessed) for each
 * threshold, over pages WAC observed with at least min_touches
 * accumulated word touches (0 = every observed page).
 */
std::array<double, 5> sparsityCdf(const WacUnit &wac,
                                  std::uint64_t min_touches = 0);

/** One (x, y) series of an empirical CDF. */
struct CdfSeries
{
    std::vector<double> xs;
    std::vector<double> ys;
};

/**
 * Figure 10: CDF of log10(access count) over all touched pages, sampled at
 * `points` evenly spaced log10 values from 0 to the observed maximum.
 */
CdfSeries accessCountLogCdf(const PacUnit &pac, std::size_t points = 32);

/** Access count of the page at percentile p (e.g. the §7.2 p50/p90/p95/p99
 *  comparison for roms_r). */
double accessCountPercentile(const PacUnit &pac, double p);

} // namespace m5
