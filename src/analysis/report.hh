/**
 * @file
 * Report helpers shared by the bench harnesses: normalized-performance
 * rows, geometric means, unified table/CSV emission, and the paper's
 * axis-label abbreviations.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hh"

namespace m5 {

/** Geometric mean of positive values (0 when empty). */
double geomean(const std::vector<double> &values);

/**
 * Normalized performance (§7.2): throughput ratio for batch workloads,
 * inverse p99-latency ratio for latency-sensitive ones.
 */
double normalizedPerformance(double baseline_throughput,
                             double policy_throughput,
                             double baseline_p99, double policy_p99,
                             bool latency_sensitive);

/** Format a ratio like "1.43x". */
std::string ratioStr(double v, int precision = 2);

/** Short display name matching the paper's axis labels. */
std::string shortBenchName(const std::string &bench);

/**
 * Emit a finished table: aligned to `os`, and additionally as CSV when
 * M5_BENCH_CSV is set ("-" or "1" → stdout; any other value names a
 * file the CSV is appended to).  All bench harnesses route their rows
 * through here so the emission style stays uniform.
 *
 * @param section Optional label written as a `# section` CSV comment.
 */
void emitTable(std::ostream &os, const TextTable &table,
               const std::string &section = "");

} // namespace m5
