/**
 * @file
 * Report helpers shared by the bench harnesses: normalized-performance
 * rows, geometric means, and RunResult pretty printing.
 */

#ifndef M5_ANALYSIS_REPORT_HH
#define M5_ANALYSIS_REPORT_HH

#include <string>
#include <vector>

#include "common/table.hh"

namespace m5 {

/** Geometric mean of positive values (0 when empty). */
double geomean(const std::vector<double> &values);

/**
 * Normalized performance (§7.2): throughput ratio for batch workloads,
 * inverse p99-latency ratio for latency-sensitive ones.
 */
double normalizedPerformance(double baseline_throughput,
                             double policy_throughput,
                             double baseline_p99, double policy_p99,
                             bool latency_sensitive);

/** Format a ratio like "1.43x". */
std::string ratioStr(double v, int precision = 2);

} // namespace m5

#endif // M5_ANALYSIS_REPORT_HH
