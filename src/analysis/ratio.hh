/**
 * @file
 * The average access-count ratio metric (§4.1 S4-S5).
 *
 * For a list of identified hot pages, sum their exact access counts
 * (k_access_count), divide by the summed counts of the same *number* of
 * top pages (top_k_access_count).  1.0 means the solution found exactly
 * the hottest pages; Figure 3 shows ANB/DAMON mostly below 0.4.
 *
 * ExactCounter is the trace-side ground truth used by the Figure 7 tracker
 * sweeps (page keys for HPT, word keys for HWT); PacUnit provides the
 * full-system ground truth (Figures 3 and 8).
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "cxl/pac.hh"
#include "sketch/sorted_topk.hh"

namespace m5 {

/** Exact per-key access counting (unbounded software counterpart of
 *  PAC/WAC for trace replay). */
class ExactCounter
{
  public:
    /** Record one access to key. */
    void observe(std::uint64_t key) { ++counts_[key]; }

    /** Exact count of a key. */
    std::uint64_t count(std::uint64_t key) const;

    /** Top-k keys by exact count. */
    std::vector<TopKEntry> topK(std::size_t k) const;

    /** Sum of the top-k counts. */
    std::uint64_t topKSum(std::size_t k) const;

    /** Access-count ratio of a tracker report against this ground truth. */
    double ratioOf(const std::vector<TopKEntry> &reported) const;

    /** Number of distinct keys. */
    std::size_t distinct() const { return counts_.size(); }

    /** Drop everything. */
    void reset() { counts_.clear(); }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

/** k_access_count / top_k_access_count against PAC ground truth. */
double accessCountRatio(const PacUnit &pac,
                        const std::vector<Pfn> &identified);

/** Same, for a tracker's top-K report. */
double accessCountRatio(const PacUnit &pac,
                        const std::vector<TopKEntry> &reported);

} // namespace m5
