/**
 * @file
 * The physical memory system: routes each post-cache access to the owning
 * tier and lets observers (the CXL controller's PAC/WAC/HPT/HWT units)
 * snoop every access to a tier — the Figure 1/2 observation point between
 * the CXL IP and the device memory controllers.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/tier.hh"

namespace m5 {

/** Snoop callback: (physical address, is_write, now). */
using MemObserver = std::function<void(Addr, bool, Tick)>;

/** The set of tiers plus per-tier snoopers. */
class MemorySystem
{
  public:
    /** Add a tier; returns its node id.  Tiers must not overlap. */
    NodeId addTier(const TierConfig &cfg);

    /** Attach an observer to every access of the given node. */
    void attachObserver(NodeId node, MemObserver obs);

    /**
     * Perform one 64B access to pa.
     * @return The access latency in ns.
     */
    Tick access(Addr pa, bool is_write, Tick now);

    /** Tier by node id. */
    MemTier &tier(NodeId node);
    const MemTier &tier(NodeId node) const;

    /** Node owning a physical address. */
    NodeId nodeOf(Addr pa) const;

    /** Number of tiers. */
    std::size_t tiers() const { return tiers_.size(); }

    /** Register every tier's counters (`mem.<tier>.*`). */
    void registerStats(StatRegistry &reg) const;

  private:
    std::vector<std::unique_ptr<MemTier>> tiers_;
    std::vector<std::vector<MemObserver>> observers_;
};

/**
 * Convenience: a two-tier DDR+CXL memory map.
 *
 * DDR occupies [0, ddr_bytes); CXL occupies [ddr_bytes, ddr_bytes+cxl_bytes).
 * Latencies default to the paper's measurements (DDR ~100ns, CXL ~270ns).
 */
struct TieredMemoryParams
{
    std::uint64_t ddr_bytes = 3ULL << 30;
    std::uint64_t cxl_bytes = 8ULL << 30;
    Tick ddr_latency = 100;
    Tick cxl_latency = 270;
};

/** Build a DDR+CXL MemorySystem from the params. */
std::unique_ptr<MemorySystem> makeTieredMemory(const TieredMemoryParams &p);

} // namespace m5
