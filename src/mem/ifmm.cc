#include "mem/ifmm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace m5 {

IfmmDirectory::IfmmDirectory(const IfmmConfig &cfg)
    : cfg_(cfg), tag_(cfg.ddr_words, kEmpty)
{
    m5_assert(cfg.ddr_words > 0, "IFMM needs DDR word slots");
    m5_assert(cfg.cxl_bytes >= kWordBytes, "IFMM needs a CXL range");
}

double
IfmmDirectory::aliasRatio()
 const
{
    return static_cast<double>(cfg_.cxl_bytes / kWordBytes) /
           static_cast<double>(cfg_.ddr_words);
}

IfmmAccess
IfmmDirectory::access(Addr pa)
{
    m5_assert(covers(pa), "IFMM access outside covered range");
    const std::uint64_t word = (pa - cfg_.cxl_base) >> kWordShift;
    const std::size_t slot = word % tag_.size();

    if (tag_[slot] == word) {
        ++hits_;
        return {true, cfg_.ddr_latency};
    }

    // Miss: serve from CXL and swap the word into the slot, sending the
    // previous resident (if any) back to its CXL home.
    ++misses_;
    if (tag_[slot] == kEmpty)
        ++residents_;
    tag_[slot] = word;
    return {false, cfg_.cxl_latency + cfg_.swap_penalty};
}

void
IfmmDirectory::reset()
{
    std::fill(tag_.begin(), tag_.end(), kEmpty);
    hits_ = 0;
    misses_ = 0;
    residents_ = 0;
}

} // namespace m5
