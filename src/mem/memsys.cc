#include "mem/memsys.hh"

#include "common/logging.hh"

namespace m5 {

NodeId
MemorySystem::addTier(const TierConfig &cfg)
{
    for (const auto &t : tiers_) {
        const auto &other = t->config();
        const bool disjoint =
            cfg.base + cfg.capacity_bytes <= other.base ||
            other.base + other.capacity_bytes <= cfg.base;
        m5_assert(disjoint, "tier '%s' overlaps tier '%s'",
                  cfg.name.c_str(), other.name.c_str());
    }
    m5_assert(cfg.node == tiers_.size(),
              "tiers must be added in node-id order");
    tiers_.push_back(std::make_unique<MemTier>(cfg));
    observers_.emplace_back();
    return cfg.node;
}

void
MemorySystem::attachObserver(NodeId node, MemObserver obs)
{
    m5_assert(node < tiers_.size(), "no tier for node %u", node);
    observers_[node].push_back(std::move(obs));
}

Tick
MemorySystem::access(Addr pa, bool is_write, Tick now)
{
    const NodeId node = nodeOf(pa);
    const Tick lat = tiers_[node]->access(pa, is_write);
    for (const auto &obs : observers_[node])
        obs(pa, is_write, now);
    return lat;
}

MemTier &
MemorySystem::tier(NodeId node)
{
    m5_assert(node < tiers_.size(), "no tier for node %u", node);
    return *tiers_[node];
}

const MemTier &
MemorySystem::tier(NodeId node) const
{
    m5_assert(node < tiers_.size(), "no tier for node %u", node);
    return *tiers_[node];
}

void
MemorySystem::registerStats(StatRegistry &reg) const
{
    for (const auto &t : tiers_)
        t->registerStats(reg);
}

NodeId
MemorySystem::nodeOf(Addr pa) const
{
    for (const auto &t : tiers_) {
        if (t->owns(pa))
            return t->config().node;
    }
    m5_panic("physical address %#lx not owned by any tier",
             static_cast<unsigned long>(pa));
}

std::unique_ptr<MemorySystem>
makeTieredMemory(const TieredMemoryParams &p)
{
    auto sys = std::make_unique<MemorySystem>();
    TierConfig ddr;
    ddr.name = "ddr";
    ddr.node = kNodeDdr;
    ddr.base = 0;
    ddr.capacity_bytes = p.ddr_bytes;
    ddr.read_latency = p.ddr_latency;
    ddr.write_latency = p.ddr_latency;
    sys->addTier(ddr);

    TierConfig cxl;
    cxl.name = "cxl";
    cxl.node = kNodeCxl;
    cxl.base = p.ddr_bytes;
    cxl.capacity_bytes = p.cxl_bytes;
    cxl.read_latency = p.cxl_latency;
    cxl.write_latency = p.cxl_latency;
    sys->addTier(cxl);
    return sys;
}

} // namespace m5
