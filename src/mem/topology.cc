#include "mem/topology.hh"

#include <algorithm>
#include <sstream>

#include "common/env.hh"
#include "common/logging.hh"

namespace m5 {

namespace {

/** Valid tier name: non-empty [a-z0-9_]+. */
bool
validTierName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_';
        if (!ok)
            return false;
    }
    return true;
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, sep))
        parts.push_back(part);
    return parts;
}

} // namespace

TopologySpec
TopologySpec::parse(const std::string &spec)
{
    TopologySpec out;
    for (const std::string &clause : splitOn(spec, ',')) {
        if (clause.empty())
            m5_fatal("tiers spec '%s': empty clause", spec.c_str());
        const auto fields = splitOn(clause, ':');
        const auto arrow = fields[0].find('>');
        if (arrow != std::string::npos) {
            // Edge override: src>dst:floor[:bytes_per_s].
            EdgeSpecEntry e;
            e.src = fields[0].substr(0, arrow);
            e.dst = fields[0].substr(arrow + 1);
            if (!validTierName(e.src) || !validTierName(e.dst) ||
                fields.size() < 2 || fields.size() > 3) {
                m5_fatal("tiers spec clause '%s': want "
                         "src>dst:floor_ns[:bytes_per_s]",
                         clause.c_str());
            }
            auto floor = parseU64(fields[1]);
            if (!floor)
                m5_fatal("tiers spec clause '%s': bad latency floor '%s'",
                         clause.c_str(), fields[1].c_str());
            e.cost.latency_floor = *floor;
            if (fields.size() == 3) {
                auto bw = parseDouble(fields[2]);
                if (!bw || *bw <= 0.0)
                    m5_fatal("tiers spec clause '%s': bad bandwidth '%s'",
                             clause.c_str(), fields[2].c_str());
                e.cost.bytes_per_s = *bw;
            }
            out.edges.push_back(e);
            continue;
        }
        // Tier entry: name:latency[:fraction].
        if (fields.size() < 2 || fields.size() > 3) {
            m5_fatal("tiers spec clause '%s': want "
                     "name:latency_ns[:capacity_fraction]",
                     clause.c_str());
        }
        TierSpecEntry t;
        t.name = fields[0];
        if (!validTierName(t.name))
            m5_fatal("tiers spec clause '%s': bad tier name '%s'",
                     clause.c_str(), t.name.c_str());
        auto lat = parseU64(fields[1]);
        if (!lat || *lat == 0)
            m5_fatal("tiers spec clause '%s': bad latency '%s' (want ns > 0)",
                     clause.c_str(), fields[1].c_str());
        t.read_latency = *lat;
        if (fields.size() == 3) {
            auto frac = parseDouble(fields[2]);
            if (!frac || *frac <= 0.0 || *frac > 1.0)
                m5_fatal("tiers spec clause '%s': bad capacity fraction "
                         "'%s' (want 0 < f <= 1)",
                         clause.c_str(), fields[2].c_str());
            t.capacity_fraction = *frac;
        }
        for (const auto &prev : out.tiers) {
            if (prev.name == t.name)
                m5_fatal("tiers spec '%s': duplicate tier '%s'",
                         spec.c_str(), t.name.c_str());
        }
        out.tiers.push_back(t);
    }
    if (out.tiers.size() < 2)
        m5_fatal("tiers spec '%s': want at least 2 tiers", spec.c_str());
    if (out.tiers.back().capacity_fraction >= 0.0)
        m5_fatal("tiers spec '%s': the last (spill) tier '%s' must not "
                 "carry a capacity fraction",
                 spec.c_str(), out.tiers.back().name.c_str());
    for (std::size_t i = 1; i + 1 < out.tiers.size(); ++i) {
        if (out.tiers[i].capacity_fraction < 0.0)
            m5_fatal("tiers spec '%s': intermediate tier '%s' needs a "
                     "capacity fraction",
                     spec.c_str(), out.tiers[i].name.c_str());
    }
    auto tierIndex = [&](const std::string &name) -> std::size_t {
        for (std::size_t i = 0; i < out.tiers.size(); ++i) {
            if (out.tiers[i].name == name)
                return i;
        }
        m5_fatal("tiers spec '%s': edge names unknown tier '%s'",
                 spec.c_str(), name.c_str());
    };
    for (const auto &e : out.edges) {
        const std::size_t src = tierIndex(e.src);
        const std::size_t dst = tierIndex(e.dst);
        if (src == dst)
            m5_fatal("tiers spec '%s': edge '%s>%s' is a self loop",
                     spec.c_str(), e.src.c_str(), e.dst.c_str());
    }
    return out;
}

TierTopology::TierTopology(const TopologySpec &spec,
                           std::size_t footprint_pages,
                           double default_top_fraction)
{
    m5_assert(spec.tiers.size() >= 2, "topology needs >= 2 tiers");
    Addr base = 0;
    for (std::size_t i = 0; i < spec.tiers.size(); ++i) {
        const TierSpecEntry &t = spec.tiers[i];
        std::uint64_t frames;
        if (i + 1 == spec.tiers.size()) {
            // Spill tier: full footprint plus slack so demotion always
            // finds a free frame (matches the historical CXL sizing).
            frames = footprint_pages + 64;
        } else {
            const double frac = t.capacity_fraction >= 0.0
                ? t.capacity_fraction : default_top_fraction;
            frames = std::max<std::uint64_t>(1,
                static_cast<std::uint64_t>(
                    static_cast<double>(footprint_pages) * frac));
        }
        TierConfig cfg;
        cfg.name = t.name;
        cfg.node = static_cast<NodeId>(i);
        cfg.base = base;
        cfg.capacity_bytes = frames * kPageBytes;
        cfg.read_latency = t.read_latency;
        cfg.write_latency = t.read_latency;
        base += cfg.capacity_bytes;
        tiers_.push_back(cfg);
    }
    edges_.assign(tiers_.size() * tiers_.size(), EdgeCost{});
    auto indexOf = [&](const std::string &name) -> NodeId {
        for (NodeId n = 0; n < tiers_.size(); ++n) {
            if (tiers_[n].name == name)
                return n;
        }
        m5_fatal("topology edge names unknown tier '%s'", name.c_str());
    };
    for (const auto &e : spec.edges)
        edges_[indexOf(e.src) * tiers_.size() + indexOf(e.dst)] = e.cost;
}

TierTopology
TierTopology::pair(const TieredMemoryParams &p)
{
    TierTopology topo;
    TierConfig ddr;
    ddr.name = "ddr";
    ddr.node = kNodeDdr;
    ddr.base = 0;
    ddr.capacity_bytes = p.ddr_bytes;
    ddr.read_latency = p.ddr_latency;
    ddr.write_latency = p.ddr_latency;
    topo.tiers_.push_back(ddr);

    TierConfig cxl;
    cxl.name = "cxl";
    cxl.node = kNodeCxl;
    cxl.base = p.ddr_bytes;
    cxl.capacity_bytes = p.cxl_bytes;
    cxl.read_latency = p.cxl_latency;
    cxl.write_latency = p.cxl_latency;
    topo.tiers_.push_back(cxl);

    topo.edges_.assign(4, EdgeCost{});
    return topo;
}

TierTopology
TierTopology::defaultPair(std::size_t footprint_pages,
                          const TieredMemoryParams &p, double ddr_fraction)
{
    TieredMemoryParams params = p;
    const auto ddr_frames = std::max<std::size_t>(1,
        static_cast<std::size_t>(static_cast<double>(footprint_pages) *
                                 ddr_fraction));
    params.ddr_bytes = ddr_frames * kPageBytes;
    params.cxl_bytes = (footprint_pages + 64) * kPageBytes;
    return pair(params);
}

const TierConfig &
TierTopology::tier(NodeId node) const
{
    m5_assert(node < tiers_.size(), "no tier for node %u", node);
    return tiers_[node];
}

const EdgeCost &
TierTopology::edge(NodeId src, NodeId dst) const
{
    m5_assert(src < tiers_.size() && dst < tiers_.size() && src != dst,
              "bad edge %u -> %u", src, dst);
    return edges_[src * tiers_.size() + dst];
}

std::unique_ptr<MemorySystem>
TierTopology::buildMemory() const
{
    auto sys = std::make_unique<MemorySystem>();
    for (const TierConfig &cfg : tiers_)
        sys->addTier(cfg);
    return sys;
}

std::string
TierTopology::describe() const
{
    std::string out;
    for (const TierConfig &cfg : tiers_) {
        if (!out.empty())
            out += " -> ";
        out += strprintf("%s(%lluns, %llu frames)", cfg.name.c_str(),
                         static_cast<unsigned long long>(cfg.read_latency),
                         static_cast<unsigned long long>(
                             cfg.capacity_bytes >> kPageShift));
    }
    return out;
}

} // namespace m5
