/**
 * @file
 * Intel Flat Memory Mode (IFMM) model — §9's discussion.
 *
 * Under IFMM, DDR acts as an exclusive cache of CXL memory at 64B-word
 * granularity: each CXL word address is one-to-one (direct) mapped to a
 * DDR word slot, and on access the memory controller *swaps* the CXL word
 * with the current resident of its slot.  No TLB shootdowns, no page-table
 * updates, no 4KB copies — which is exactly what sparse hot pages want.
 * The constraint is the one-to-one mapping: a DDR capacity smaller than
 * CXL means aliasing conflicts.
 *
 * The paper argues M5 and IFMM are complementary: IFMM serves hot *words*
 * of sparse pages; M5 migrates dense hot *pages*.  bench/abl_ifmm
 * replays cache-filtered traces through this model to regenerate that
 * trade-off.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace m5 {

/** IFMM directory configuration. */
struct IfmmConfig
{
    Addr cxl_base = 0;             //!< First CXL byte covered.
    std::uint64_t cxl_bytes = 0;   //!< Covered CXL range.
    std::uint64_t ddr_words = 0;   //!< DDR word slots backing the range.
    Tick ddr_latency = 100;
    Tick cxl_latency = 270;
    //! Extra latency of a swap beyond the CXL access itself (the
    //! write-back of the displaced word overlaps, but the swap read-modify
    //! adds a controller round).
    Tick swap_penalty = 60;
};

/** Result of one IFMM-mediated access. */
struct IfmmAccess
{
    bool ddr_hit = false;
    Tick latency = 0;
};

/** Direct-mapped word-swap directory. */
class IfmmDirectory
{
  public:
    explicit IfmmDirectory(const IfmmConfig &cfg);

    /** Mediate one access to a covered CXL physical address. */
    IfmmAccess access(Addr pa);

    /** True if pa falls in the covered range. */
    bool
    covers(Addr pa) const
    {
        return pa >= cfg_.cxl_base &&
               pa < cfg_.cxl_base + cfg_.cxl_bytes;
    }

    /** DDR hits so far. */
    std::uint64_t hits() const { return hits_; }

    /** Misses (served from CXL, with a swap). */
    std::uint64_t misses() const { return misses_; }

    /** Words currently resident in DDR slots. */
    std::uint64_t residents() const { return residents_; }

    /** Aliasing ratio: covered CXL words per DDR slot. */
    double aliasRatio() const;

    /** Hit fraction. */
    double
    hitRatio() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) /
                       static_cast<double>(total) : 0.0;
    }

    /** Forget all residency. */
    void reset();

  private:
    static constexpr std::uint64_t kEmpty = ~0ULL;

    IfmmConfig cfg_;
    //! Per DDR slot: the covered-range word index currently resident.
    std::vector<std::uint64_t> tag_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t residents_ = 0;
};

} // namespace m5
