/**
 * @file
 * A memory tier node: DDR DRAM (fast, local) or CXL DRAM (slow, behind the
 * serial link).  Models per-access latency and accumulates read/write byte
 * counters that the M5 Monitor samples pcm-style (snapshot deltas over
 * elapsed time) to compute bw(node) and bw_den(node) (§5.2, Table 1).
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Static description of one tier. */
struct TierConfig
{
    std::string name = "ddr";
    NodeId node = kNodeDdr;
    Addr base = 0;                 //!< First physical address of the tier.
    std::uint64_t capacity_bytes = 0;
    Tick read_latency = 100;       //!< DDR ~100ns; CXL ~270ns (§1: +140-170).
    Tick write_latency = 100;
};

/** Byte counters for bandwidth sampling. */
struct TierCounters
{
    std::uint64_t read_bytes = 0;
    std::uint64_t write_bytes = 0;
    std::uint64_t accesses = 0;
};

/** One tier of the tiered-memory system. */
class MemTier
{
  public:
    explicit MemTier(const TierConfig &cfg);

    /** True if this tier owns physical address pa. */
    bool
    owns(Addr pa) const
    {
        return pa >= cfg_.base && pa < cfg_.base + cfg_.capacity_bytes;
    }

    /**
     * Perform one 64B access.
     * @return The access latency in ns.
     */
    Tick access(Addr pa, bool is_write);

    /** Static configuration. */
    const TierConfig &config() const { return cfg_; }

    /** Cumulative counters (Monitor snapshots these). */
    const TierCounters &counters() const { return counters_; }

    /** Number of 4KB page frames this tier can hold. */
    std::uint64_t framesTotal() const
    {
        return cfg_.capacity_bytes >> kPageShift;
    }

    /** First page frame number of this tier. */
    Pfn firstPfn() const { return cfg_.base >> kPageShift; }

    /** Reset counters (between experiment phases). */
    void resetCounters() { counters_ = {}; }

    /** Register the byte counters as `mem.<name>.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    TierConfig cfg_;
    TierCounters counters_;
};

} // namespace m5
