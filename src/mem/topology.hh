/**
 * @file
 * TierTopology — the N-tier generalization of the DDR/CXL pair.
 *
 * Real CXL deployments span more than two tiers (local DDR, remote-socket
 * DDR, direct-attached CXL, CXL-behind-switch); TPP and AutoTiering show
 * that placement quality depends on modeling the actual latency ladder
 * rather than a binary fast/slow split.  A TierTopology is an ordered set
 * of `MemTier` nodes (fastest first; node 0 is the "top" tier, the last
 * node is the "spill" tier that can always absorb demotions) plus a
 * per-edge migration cost (copy latency floor + streaming bandwidth cap)
 * consumed by the MigrationEngine.
 *
 * The default topology is the paper's DDR/CXL pair with the historical
 * edge costs, so every existing two-tier run is byte-identical to the
 * pre-topology simulator (docs/TOPOLOGY.md).
 *
 * Spec grammar (m5sim --tiers, docs/TOPOLOGY.md):
 *
 *   spec  := entry (',' entry)*
 *   entry := tier | edge
 *   tier  := name ':' latency_ns [ ':' capacity_fraction ]
 *   edge  := src '>' dst ':' latency_floor_ns [ ':' bytes_per_s ]
 *
 * Tiers are listed fastest-first.  The last tier is the spill tier and
 * must not carry a capacity fraction (it is sized to the footprint plus
 * slack); the first tier may omit its fraction to inherit the system's
 * DDR capacity fraction; intermediate tiers must state one.  Malformed
 * specs are fatal.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/memsys.hh"
#include "mem/tier.hh"

namespace m5 {

/**
 * Cost of migrating one page across a tier-to-tier edge.  The defaults
 * reproduce the historical MigrationEngine copy model (a streaming
 * memcpy at 12 GB/s behind a fixed round-trip floor), so topologies that
 * never override an edge keep byte-identical migration timing.
 */
struct EdgeCost
{
    //! Fixed per-page copy latency floor (one round trip each way).
    Tick latency_floor = 400;
    //! Streaming copy bandwidth cap (bytes/s) for the 4KB payload.
    double bytes_per_s = 12.0e9;

    /** Total copy time for one page (read + write streams). */
    Tick
    pageCopyTime() const
    {
        return latency_floor +
               static_cast<Tick>(2.0 * kPageBytes / bytes_per_s * 1e9);
    }
};

/** One tier entry of a parsed --tiers spec. */
struct TierSpecEntry
{
    std::string name;
    Tick read_latency = 100;
    //! Capacity as a fraction of the footprint; < 0 means "not given"
    //! (legal only for the top tier, which inherits the system default,
    //! and mandatory for the spill tier, which is sized to footprint
    //! plus slack).
    double capacity_fraction = -1.0;
};

/** One parsed edge-cost override (`src>dst:floor[:bw]`). */
struct EdgeSpecEntry
{
    std::string src;
    std::string dst;
    EdgeCost cost;
};

/** Parsed, not-yet-resolved --tiers spec. */
struct TopologySpec
{
    std::vector<TierSpecEntry> tiers;
    std::vector<EdgeSpecEntry> edges;

    /** Parse a spec string; malformed specs are fatal (m5_fatal). */
    static TopologySpec parse(const std::string &spec);
};

/**
 * The resolved tier graph: per-tier TierConfig (contiguous physical
 * ranges, fastest tier first) and a dense edge-cost matrix.  Builds the
 * MemorySystem it describes.
 */
class TierTopology
{
  public:
    /**
     * Resolve a parsed spec against a workload footprint.
     *
     * @param spec Parsed tier/edge entries (>= 2 tiers).
     * @param footprint_pages Workload footprint in pages.
     * @param default_top_fraction Capacity fraction for a top tier that
     *        omitted one (the system's DDR capacity fraction).
     */
    TierTopology(const TopologySpec &spec, std::size_t footprint_pages,
                 double default_top_fraction);

    /**
     * The historical DDR/CXL pair with explicit byte capacities —
     * byte-identical to makeTieredMemory(p) plus default edge costs.
     */
    static TierTopology pair(const TieredMemoryParams &p);

    /**
     * The default two-tier topology exactly as TieredSystem::buildMemory
     * historically derived it: DDR gets max(1, footprint * ddr_fraction)
     * frames, the CXL spill tier holds footprint + 64 pages.
     */
    static TierTopology defaultPair(std::size_t footprint_pages,
                                    const TieredMemoryParams &p,
                                    double ddr_fraction);

    /** Number of tiers (>= 2). */
    std::size_t numTiers() const { return tiers_.size(); }

    /** Tier configuration by node id (0 = fastest). */
    const TierConfig &tier(NodeId node) const;

    /** The fastest tier (promotion target). */
    NodeId top() const { return 0; }

    /** The slowest tier; sized so demotion always finds a frame. */
    NodeId
    spill() const
    {
        return static_cast<NodeId>(tiers_.size() - 1);
    }

    /** True for every tier below the top (promotion sources). */
    bool isLower(NodeId node) const { return node != top(); }

    /** Migration cost of the src -> dst edge. */
    const EdgeCost &edge(NodeId src, NodeId dst) const;

    /** Build the MemorySystem described by this topology. */
    std::unique_ptr<MemorySystem> buildMemory() const;

    /** One-line human-readable description for reports. */
    std::string describe() const;

  private:
    TierTopology() = default;

    std::vector<TierConfig> tiers_;
    std::vector<EdgeCost> edges_; //!< Dense numTiers x numTiers matrix.
};

} // namespace m5
