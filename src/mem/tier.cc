#include "mem/tier.hh"

#include "common/logging.hh"

namespace m5 {

MemTier::MemTier(const TierConfig &cfg) : cfg_(cfg)
{
    m5_assert(cfg.capacity_bytes > 0, "tier '%s' has zero capacity",
              cfg.name.c_str());
    m5_assert((cfg.base & (kPageBytes - 1)) == 0,
              "tier '%s' base not page-aligned", cfg.name.c_str());
    m5_assert((cfg.capacity_bytes & (kPageBytes - 1)) == 0,
              "tier '%s' capacity not page-aligned", cfg.name.c_str());
}

Tick
MemTier::access(Addr pa, bool is_write)
{
    m5_assert(owns(pa), "address %#lx not in tier '%s'",
              static_cast<unsigned long>(pa), cfg_.name.c_str());
    ++counters_.accesses;
    if (is_write) {
        counters_.write_bytes += kWordBytes;
        return cfg_.write_latency;
    }
    counters_.read_bytes += kWordBytes;
    return cfg_.read_latency;
}

void
MemTier::registerStats(StatRegistry &reg) const
{
    const std::string prefix = "mem." + cfg_.name + ".";
    reg.addCounter(prefix + "read_bytes", &counters_.read_bytes);
    reg.addCounter(prefix + "write_bytes", &counters_.write_bytes);
    reg.addCounter(prefix + "accesses", &counters_.accesses);
}

} // namespace m5
