#include "cache/tlb.hh"

#include "common/logging.hh"

namespace m5 {

Tlb::Tlb(const TlbConfig &cfg) : assoc_(cfg.assoc)
{
    m5_assert(cfg.assoc > 0 && cfg.entries >= cfg.assoc,
              "bad TLB geometry");
    sets_ = cfg.entries / cfg.assoc;
    while (sets_ & (sets_ - 1))
        sets_ &= sets_ - 1;
    entries_.assign(sets_ * assoc_, Entry{});
}

bool
Tlb::lookup(Vpn vpn, Pfn &pfn)
{
    Entry *set = &entries_[setOf(vpn) * assoc_];
    ++tick_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = set[w];
        if (e.valid && e.vpn == vpn) {
            e.lru = tick_;
            pfn = e.pfn;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

void
Tlb::fill(Vpn vpn, Pfn pfn)
{
    Entry *set = &entries_[setOf(vpn) * assoc_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = set[w];
        if (e.valid && e.vpn == vpn) {
            e.pfn = pfn;
            e.lru = tick_;
            return;
        }
        if (!victim->valid)
            continue;
        if (!e.valid || e.lru < victim->lru)
            victim = &e;
    }
    *victim = {vpn, pfn, tick_, true};
}

void
Tlb::shootdown(Vpn vpn)
{
    Entry *set = &entries_[setOf(vpn) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = set[w];
        if (e.valid && e.vpn == vpn) {
            e.valid = false;
            ++stats_.shootdowns;
            return;
        }
    }
}

void
Tlb::flushAll()
{
    for (Entry &e : entries_)
        e.valid = false;
    ++stats_.flushes;
}

void
Tlb::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".misses", &stats_.misses);
    reg.addCounter(prefix + ".shootdowns", &stats_.shootdowns);
    reg.addCounter(prefix + ".flushes", &stats_.flushes);
}

} // namespace m5
