/**
 * @file
 * Set-associative write-back, write-allocate cache model.
 *
 * Used as the LLC that filters CPU accesses before they reach DRAM — the
 * paper's trackers observe *cache-filtered* addresses (§7.1 collects traces
 * with Pin + Ramulator for the same reason).  Capacity is scaled with the
 * number of active cores, mirroring the paper's use of Intel CAT (§6).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Cache geometry. */
struct CacheConfig
{
    std::uint64_t size_bytes = 30ULL << 20; //!< Half of a 60MB Xeon LLC.
    unsigned assoc = 15;
    // Line size is fixed at kWordBytes (64B).
};

/** Result of one cache access. */
struct CacheResult
{
    bool hit = false;
    //! Dirty victim line evicted by this fill (physical address), if any.
    std::optional<Addr> writeback;
};

/** Hit/miss statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t invalidated_lines = 0;

    double
    missRatio() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) /
                       static_cast<double>(total) : 0.0;
    }
};

/** LRU set-associative cache over 64B lines, physically indexed. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg);

    /**
     * Access one 64B line.
     *
     * A miss allocates the line (write-allocate) and may evict a dirty
     * victim that must be written back by the caller.
     */
    CacheResult access(Addr pa, bool is_write);

    /**
     * Invalidate all lines of a 4KB page frame (used when a page is
     * migrated between tiers).
     * @return Physical addresses of dirty lines that need writeback.
     */
    std::vector<Addr> invalidatePage(Pfn pfn);

    /** Number of sets. */
    std::uint64_t sets() const { return sets_; }

    /** Associativity. */
    unsigned assoc() const { return assoc_; }

    /** Statistics. */
    const CacheStats &stats() const { return stats_; }

    /** Reset statistics (not contents). */
    void resetStats() { stats_ = {}; }

    /** Register hit/miss counters as `<prefix>.*` telemetry. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t setOf(Addr pa) const;

    std::uint64_t sets_;
    unsigned assoc_;
    std::uint64_t tick_ = 0; //!< LRU timestamp source.
    std::vector<Line> lines_; //!< sets_ x assoc_, row-major.
    CacheStats stats_;
};

} // namespace m5
