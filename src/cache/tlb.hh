/**
 * @file
 * TLB model.
 *
 * The TLB matters to the baselines, not to M5: ANB unmaps pages and must
 * shoot down TLB entries across cores (§2.1 Solution 1), and DAMON's access
 * bits are only re-set on a page walk, i.e. after a TLB miss (§2.1
 * Solution 2).  The model is a set-associative VPN->PFN cache with LRU
 * replacement and shootdown accounting.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** TLB geometry. */
struct TlbConfig
{
    unsigned entries = 1536; //!< Roughly an STLB's 4KB-page capacity.
    unsigned assoc = 12;
};

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t shootdowns = 0;
    std::uint64_t flushes = 0;
};

/** Set-associative TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &cfg);

    /**
     * Translate vpn.
     * @param[out] pfn Filled with the cached translation on a hit.
     * @return True on hit.  On a miss the caller walks the page table and
     *         calls fill().
     */
    bool lookup(Vpn vpn, Pfn &pfn);

    /** Install a translation after a page walk. */
    void fill(Vpn vpn, Pfn pfn);

    /** Invalidate one translation (TLB shootdown target). */
    void shootdown(Vpn vpn);

    /** Invalidate everything (context switch / full flush). */
    void flushAll();

    /** Statistics. */
    const TlbStats &stats() const { return stats_; }

    /** Reset statistics. */
    void resetStats() { stats_ = {}; }

    /** Register hit/miss/shootdown counters as `<prefix>.*` telemetry. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Entry
    {
        Vpn vpn = 0;
        Pfn pfn = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::uint64_t setOf(Vpn vpn) const { return vpn & (sets_ - 1); }

    std::uint64_t sets_;
    unsigned assoc_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;
    TlbStats stats_;
};

} // namespace m5
