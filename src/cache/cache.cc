#include "cache/cache.hh"

#include "common/logging.hh"

namespace m5 {
namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &cfg)
    : assoc_(cfg.assoc)
{
    m5_assert(cfg.assoc > 0, "cache needs positive associativity");
    const std::uint64_t lines = cfg.size_bytes / kWordBytes;
    m5_assert(lines >= cfg.assoc, "cache smaller than one set");
    sets_ = lines / cfg.assoc;
    // Round sets down to a power of two for cheap indexing.
    while (!isPow2(sets_))
        sets_ &= sets_ - 1;
    lines_.assign(sets_ * assoc_, Line{});
}

std::uint64_t
SetAssocCache::setOf(Addr pa) const
{
    return (pa >> kWordShift) & (sets_ - 1);
}

CacheResult
SetAssocCache::access(Addr pa, bool is_write)
{
    const Addr tag = pa >> kWordShift;
    Line *set = &lines_[setOf(pa) * assoc_];
    ++tick_;

    Line *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty |= is_write;
            ++stats_.hits;
            return {true, std::nullopt};
        }
        if (!victim->valid)
            continue; // Keep the first invalid way as victim.
        if (!line.valid || line.lru < victim->lru)
            victim = &line;
    }

    ++stats_.misses;
    CacheResult res;
    if (victim->valid && victim->dirty) {
        res.writeback = victim->tag << kWordShift;
        ++stats_.writebacks;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = tick_;
    return res;
}

std::vector<Addr>
SetAssocCache::invalidatePage(Pfn pfn)
{
    std::vector<Addr> dirty;
    const Addr base = pageBase(pfn);
    for (unsigned word = 0; word < kWordsPerPage; ++word) {
        const Addr pa = base + static_cast<Addr>(word) * kWordBytes;
        const Addr tag = pa >> kWordShift;
        Line *set = &lines_[setOf(pa) * assoc_];
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &line = set[w];
            if (line.valid && line.tag == tag) {
                if (line.dirty)
                    dirty.push_back(pa);
                line.valid = false;
                line.dirty = false;
                ++stats_.invalidated_lines;
            }
        }
    }
    return dirty;
}

void
SetAssocCache::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".hits", &stats_.hits);
    reg.addCounter(prefix + ".misses", &stats_.misses);
    reg.addCounter(prefix + ".writebacks", &stats_.writebacks);
    reg.addCounter(prefix + ".invalidated_lines", &stats_.invalidated_lines);
}

} // namespace m5
