#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "os/costs.hh"

namespace m5 {

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::None:
        return "none";
      case PolicyKind::Anb:
        return "ANB";
      case PolicyKind::Damon:
        return "DAMON";
      case PolicyKind::Memtis:
        return "Memtis";
      case PolicyKind::M5HptOnly:
        return "M5(HPT)";
      case PolicyKind::M5HwtDriven:
        return "M5(HWT)";
      case PolicyKind::M5HptDriven:
        return "M5(HPT+HWT)";
    }
    m5_panic("unknown PolicyKind");
}

bool
isM5(PolicyKind kind)
{
    return kind == PolicyKind::M5HptOnly ||
           kind == PolicyKind::M5HwtDriven ||
           kind == PolicyKind::M5HptDriven;
}

namespace {

std::unique_ptr<Workload>
buildWorkload(const SystemConfig &cfg)
{
    if (!cfg.tenants.empty()) {
        m5_assert(cfg.colocated_benchmarks.empty() && cfg.instances == 1,
                  "tenants spec excludes colocated_benchmarks/instances");
        return std::make_unique<TenantSet>(
            TenantSpec::parseList(cfg.tenants), cfg.scale, cfg.seed);
    }
    if (!cfg.colocated_benchmarks.empty())
        return makeMixedWorkload(cfg.colocated_benchmarks, cfg.scale,
                                 cfg.seed);
    return makeMultiWorkload(cfg.benchmark, cfg.instances, cfg.scale,
                             cfg.seed);
}

} // namespace

TieredSystem::TieredSystem(const SystemConfig &cfg)
    : cfg_(cfg),
      workload_(buildWorkload(cfg)),
      core_(workload_->accessesPerRequest())
{
    if (!cfg_.tenants.empty())
        tenant_table_ = &static_cast<TenantSet &>(*workload_).table();
    buildMemory();
    // Arm per-tenant DDR caps before any frame is handed out, so initial
    // placement is charged like every later migration.
    if (tenant_table_) {
        std::vector<std::size_t> caps;
        for (std::size_t t = 0; t < tenant_table_->count(); ++t)
            caps.push_back(tenant_table_->entry(
                static_cast<TenantId>(t)).cap_frames);
        alloc_->enableTenantCaps(topo_->top(), std::move(caps));
    }
    placePages();
    buildController();
    if (tenant_table_) {
        // PFN -> tenant via the page table's reverse map: a frame freed
        // mid-flight (stale writeback) resolves to "no tenant" and goes
        // unattributed rather than charged to the wrong owner.
        ctrl_->attachTenantAttribution(
            tenant_table_->count(), [this](Pfn pfn) {
                const Vpn vpn = pt_->vpnOfPfn(pfn);
                return vpn < pt_->numPages() ? tenant_table_->tenantOf(vpn)
                                             : kNoTenant;
            });
    }
    buildPolicy();
    if (tenant_table_) {
        engine_->attachTenants(tenant_table_);
        if (m5_)
            m5_->attachTenants(tenant_table_);
    }
    // Fault injection (docs/FAULTS.md): the injector and the invariant
    // checker exist only when some rule can actually fire, so an empty
    // or all-zero spec leaves the system — including its telemetry
    // surface — byte-identical to a fault-free build.
    if (!cfg_.faults.empty()) {
        const FaultPlan plan = FaultPlan::parse(cfg_.faults);
        if (!plan.inert()) {
            faults_ = std::make_unique<FaultInjector>(plan, cfg_.seed);
            engine_->attachFaults(faults_.get());
            if (m5_)
                m5_->attachFaults(faults_.get());
            invariants_ = std::make_unique<InvariantChecker>(
                *pt_, *alloc_, *mem_, *lrus_, ledger_);
        }
    }
    // Multi-tenant runs always carry the invariant checker: the
    // per-tenant cap books are new cross-layer state, and colocation's
    // isolation promise is only as good as its verification
    // (docs/MULTITENANT.md).  Fault-specific stats stay gated on faults_.
    if (tenant_table_) {
        if (!invariants_) {
            invariants_ = std::make_unique<InvariantChecker>(
                *pt_, *alloc_, *mem_, *lrus_, ledger_);
        }
        invariants_->attachTenants(tenant_table_);
    }
    // Transactional runs retain shadow frames — allocated but unmapped.
    // The checker must see them or its allocator-balance rule would
    // misfire; attaching also arms the shadow-specific sweep
    // (docs/MIGRATION.md).
    if (invariants_)
        invariants_->attachTxn(engine_->txn());
    // The tracer exists only when tracing is on, so a tracing-disabled
    // run's telemetry carries no telemetry.trace.* rows and stays
    // byte-identical to a run built before tracing existed.
    if (cfg_.trace.enabled())
        tracer_ = std::make_unique<Tracer>(cfg_.trace);
    // The profiler follows the same existence gate: a disabled profile
    // constructs nothing, registers nothing, and leaves every artifact
    // byte-identical.  It never touches the StatRegistry — host time
    // must not leak into the result domain (docs/PROFILING.md).
    if (cfg_.prof.enabled())
        prof_ = std::make_unique<Profiler>(cfg_.prof);
    registerStats();
    if (!cfg_.telemetry.path.empty())
        telem_ = std::make_unique<EpochSnapshotter>(stats_, cfg_.telemetry);
}

void
TieredSystem::registerStats()
{
    // Every layer registers pointers to its own tallies, so Monitor, the
    // bench reports and the telemetry export all read identical memory.
    events_.registerStats(stats_);
    core_.registerStats(stats_);
    mem_->registerStats(stats_);
    llc_->registerStats(stats_, "cache.llc");
    tlb_->registerStats(stats_, "cache.tlb");
    ctrl_->registerStats(stats_, faults_ != nullptr);
    engine_->registerStats(stats_);
    ledger_.registerStats(stats_);
    monitor_->registerStats(stats_, faults_ != nullptr);
    if (faults_)
        faults_->registerStats(stats_);
    if (invariants_)
        invariants_->registerStats(stats_);
    if (tenant_table_)
        tenant_table_->registerStats(stats_, alloc_->tenantUsedAll());
    if (anb_)
        anb_->registerStats(stats_);
    if (damon_)
        damon_->registerStats(stats_);
    if (memtis_)
        memtis_->registerStats(stats_);
    if (m5_)
        m5_->registerStats(stats_);
    if (tracer_)
        tracer_->registerStats(stats_);
}

void
TieredSystem::buildMemory()
{
    const std::size_t footprint = workload_->footprintPages();

    // An empty --tiers spec resolves to the historical DDR/CXL pair
    // (byte-identical sizing); otherwise the spec names the full ladder,
    // whose last tier is the spill tier holding footprint plus slack so
    // demotion always finds a free frame (docs/TOPOLOGY.md).
    if (cfg_.tiers.empty()) {
        topo_ = std::make_unique<TierTopology>(TierTopology::defaultPair(
            footprint, cfg_.tier_params, cfg_.ddr_capacity_fraction));
    } else {
        topo_ = std::make_unique<TierTopology>(
            TopologySpec::parse(cfg_.tiers), footprint,
            cfg_.ddr_capacity_fraction);
    }
    mem_ = topo_->buildMemory();

    CacheConfig llc_cfg;
    std::uint64_t llc_bytes =
        benchmarkLlcBytes(cfg_.benchmark, cfg_.scale);
    for (const auto &tenant : cfg_.colocated_benchmarks) {
        llc_bytes = std::max(llc_bytes,
                             benchmarkLlcBytes(tenant, cfg_.scale));
    }
    if (tenant_table_) {
        for (std::size_t t = 0; t < tenant_table_->count(); ++t) {
            llc_bytes = std::max(
                llc_bytes,
                benchmarkLlcBytes(
                    tenant_table_->entry(static_cast<TenantId>(t)).name,
                    cfg_.scale));
        }
    }
    llc_cfg.size_bytes = cfg_.llc_bytes_override
        ? *cfg_.llc_bytes_override : llc_bytes;
    llc_ = std::make_unique<SetAssocCache>(llc_cfg);

    tlb_ = std::make_unique<Tlb>(cfg_.tlb_cfg);
    pt_ = std::make_unique<PageTable>(footprint);
    alloc_ = std::make_unique<FrameAllocator>(*mem_);
    lrus_ = std::make_unique<TierLrus>(footprint, topo_->numTiers());
}

void
TieredSystem::placePages()
{
    const std::size_t footprint = workload_->footprintPages();
    Rng rng(cfg_.seed ^ 0x9e3779b97f4a7c15ULL);
    for (Vpn vpn = 0; vpn < footprint; ++vpn) {
        NodeId node = topo_->spill();
        if (cfg_.initial_ddr_fraction > 0.0 &&
            rng.chance(cfg_.initial_ddr_fraction) &&
            alloc_->freeFrames(topo_->top()) > 0) {
            node = topo_->top();
        }
        // Tenant runs charge initial placement against the owner's cap;
        // a tenant already at its cap spills instead (cgroup semantics
        // from the very first frame).
        auto pfn = tenant_table_
            ? alloc_->allocateFor(node, tenant_table_->tenantOf(vpn))
            : alloc_->allocate(node);
        if (tenant_table_ && !pfn && node == topo_->top()) {
            node = topo_->spill();
            pfn = alloc_->allocateFor(node, tenant_table_->tenantOf(vpn));
        }
        m5_assert(pfn.has_value(), "out of frames on node %u", node);
        pt_->map(vpn, *pfn, node);
        if (cfg_.pinned_fraction > 0.0 &&
            rng.chance(cfg_.pinned_fraction)) {
            pt_->pte(vpn).pinned = true;
        }
        lrus_->insert(vpn, node);
    }
}

void
TieredSystem::buildController()
{
    CxlControllerConfig ctrl_cfg;
    // The controller observes every tier below the top — the lower tiers
    // occupy one contiguous physical range (tiers are laid out
    // fastest-first with contiguous bases), so PAC/WAC cover their union.
    const MemTier &first_lower = mem_->tier(kNodeCxl);
    std::uint64_t lower_bytes = 0;
    for (NodeId n = 1; n < mem_->tiers(); ++n)
        lower_bytes += mem_->tier(n).config().capacity_bytes;

    if (cfg_.enable_pac) {
        PacConfig pac;
        pac.first_pfn = first_lower.firstPfn();
        pac.frames = lower_bytes >> kPageShift;
        ctrl_cfg.pac = pac;
    }
    if (cfg_.enable_wac) {
        WacConfig wac;
        wac.range_base = first_lower.config().base;
        wac.range_bytes = lower_bytes;
        if (cfg_.wac_window_period == 0) {
            // Static window covering the whole range (offline profiling
            // over multiple runs in the paper; a single sweep here).
            wac.window_bytes = lower_bytes;
        }
        ctrl_cfg.wac = wac;
    }
    const bool wants_hpt = cfg_.policy == PolicyKind::M5HptOnly ||
                           cfg_.policy == PolicyKind::M5HptDriven;
    const bool wants_hwt = cfg_.policy == PolicyKind::M5HwtDriven ||
                           cfg_.policy == PolicyKind::M5HptDriven;
    if (wants_hpt)
        ctrl_cfg.hpt = cfg_.hpt_cfg;
    if (wants_hwt)
        ctrl_cfg.hwt = cfg_.hwt_cfg;

    ctrl_ = std::make_unique<CxlController>(ctrl_cfg);
    for (NodeId n = 1; n < mem_->tiers(); ++n)
        mem_->attachObserver(n, ctrl_->observer());
}

void
TieredSystem::buildPolicy()
{
    MigrationCosts costs;
    const double mscale = cfg_.migration_cost_scale > 0.0
        ? cfg_.migration_cost_scale : cfg_.scale;
    costs.software_per_page = std::max<Cycles>(2000,
        static_cast<Cycles>(static_cast<double>(cost::kMigratePageSoftware) *
                            mscale));
    engine_ = std::make_unique<MigrationEngine>(*topo_, *pt_, *alloc_,
                                                *mem_, *llc_, *tlb_,
                                                ledger_, *lrus_, costs);
    engine_->setExchangeEnabled(cfg_.exchange);
    engine_->setTxnEnabled(cfg_.txn_migrate);
    monitor_ = std::make_unique<Monitor>(*mem_, *pt_);

    const auto hot_cap = std::max<std::size_t>(512,
        static_cast<std::size_t>(
            static_cast<double>(workload_->footprintPages()) *
            cfg_.hot_list_fraction));

    switch (cfg_.policy) {
      case PolicyKind::None:
        break;
      case PolicyKind::Anb: {
        AnbConfig c = cfg_.anb_cfg;
        c.migrate = !cfg_.record_only;
        c.hot_list_capacity = hot_cap;
        anb_ = std::make_unique<AnbDaemon>(c, *pt_, *tlb_, ledger_,
                                           *engine_);
        daemon_ = anb_.get();
        break;
      }
      case PolicyKind::Damon: {
        DamonConfig c = cfg_.damon_cfg;
        c.migrate = !cfg_.record_only;
        c.hot_list_capacity = hot_cap;
        damon_ = std::make_unique<DamonDaemon>(c, *pt_, ledger_, *engine_);
        daemon_ = damon_.get();
        break;
      }
      case PolicyKind::Memtis: {
        PebsConfig c = cfg_.pebs_cfg;
        c.migrate = !cfg_.record_only;
        c.hot_list_capacity = hot_cap;
        memtis_ = std::make_unique<MemtisDaemon>(c, *pt_, ledger_,
                                                 *engine_);
        daemon_ = memtis_.get();
        break;
      }
      case PolicyKind::M5HptOnly:
      case PolicyKind::M5HwtDriven:
      case PolicyKind::M5HptDriven: {
        M5Config c = cfg_.m5_cfg;
        c.migrate = !cfg_.record_only;
        c.hot_list_capacity = hot_cap;
        c.nominator = cfg_.policy == PolicyKind::M5HptOnly
            ? NominatorKind::HptOnly
            : cfg_.policy == PolicyKind::M5HwtDriven
                ? NominatorKind::HwtDriven
                : NominatorKind::HptDriven;
        m5_ = std::make_unique<M5Manager>(c, *ctrl_, *monitor_, *pt_,
                                          *engine_, ledger_);
        daemon_ = m5_.get();
        break;
      }
    }
}

Tick
TieredSystem::daemonTick(Tick now)
{
    // Injected scheduler misbehaviour (docs/FAULTS.md): a dropped wakeup
    // loses this tick's work entirely and retries after a coarse timer
    // interval; a delayed one slips by the rule's delay.  Either way the
    // daemon runs strictly later — exactly what a preempted kthread sees.
    if (faults_) {
        if (faults_->fires(FaultPoint::WakeDrop, now)) {
            const Tick retry = faults_->delayFor(FaultPoint::WakeDrop);
            TRACE_EVENT(TraceCat::Sim, now, "fault.wake_drop",
                        TraceArgs().u("retry", retry));
            events_.schedule(now + retry,
                             [this](Tick t) { return daemonTick(t); });
            return 0;
        }
        if (faults_->fires(FaultPoint::WakeDelay, now)) {
            const Tick delay = faults_->delayFor(FaultPoint::WakeDelay);
            TRACE_EVENT(TraceCat::Sim, now, "fault.wake_delay",
                        TraceArgs().u("delay", delay));
            events_.schedule(now + delay,
                             [this](Tick t) { return daemonTick(t); });
            return 0;
        }
    }
    // Daemon work runs in a kernel thread: it becomes preemptible debt
    // drained between application accesses, not an atomic time jump.
    {
        PROF_SCOPE("sim.daemon.tick");
        kernel_debt_ += daemon_->wake(now);
    }
    events_.schedule(std::max(daemon_->nextWake(), now + 1),
                     [this](Tick t) { return daemonTick(t); });
    return 0;
}

void
TieredSystem::scheduleInvariants(Tick when)
{
    // Runs only under fault injection.  The check consumes zero
    // simulated time; it reads cross-layer state, it never mutates it.
    events_.schedule(when, [this](Tick now) -> Tick {
        (void)invariants_->check(now);
        scheduleInvariants(now + msToTicks(1.0));
        return 0;
    });
}

void
TieredSystem::scheduleAging(Tick when)
{
    events_.schedule(when, [this](Tick now) -> Tick {
        lrus_->age();
        scheduleAging(now + cfg_.mglru_age_period);
        return 0;
    });
}

void
TieredSystem::scheduleWacRotation(Tick when)
{
    events_.schedule(when, [this](Tick now) -> Tick {
        ctrl_->wac().advanceWindow();
        scheduleWacRotation(now + cfg_.wac_window_period);
        return 0;
    });
}

void
TieredSystem::scheduleTelemetry(Tick when)
{
    // Telemetry only reads registered stats and consumes zero simulated
    // time, so enabling it never changes simulation results.
    events_.schedule(when, [this](Tick now) -> Tick {
        PROF_MARK("sim.telemetry.epoch");
        telem_->epoch(now);
        scheduleTelemetry(now + cfg_.telemetry.epoch_period);
        return 0;
    });
}

void
TieredSystem::scheduleTraceEpoch(Tick when)
{
    // Like telemetry, the trace epoch event only observes: zero simulated
    // time, so tracing never changes results.
    events_.schedule(when, [this](Tick now) -> Tick {
        if (tracer_->enabled(TraceCat::Sim)) {
            tracer_->span(TraceCat::Sim, trace_epoch_start_,
                          now - trace_epoch_start_, "epoch",
                          TraceArgs().u("epoch", trace_epoch_idx_));
        }
        trace_epoch_start_ = now;
        ++trace_epoch_idx_;
        scheduleTraceEpoch(now + cfg_.trace.epoch_period);
        return 0;
    });
}

Tick
TieredSystem::issueAccess(const AccessEvent &ev)
{
    PROF_SCOPE("sim.access");
    const Vpn vpn = vpnOf(ev.va);
    TRACE_PAGE_ACCESS(vpn, core_.now());
    Pfn pfn;
    if (!tlb_->lookup(vpn, pfn)) {
        PROF_SCOPE("sim.access.pt_walk");
        Pte &e = pt_->pte(vpn);
        if (!e.present) {
            // NUMA hinting fault: the page was unmapped by ANB's scan.
            e.present = true;
            const Tick busy = daemon_
                ? daemon_->onHintFault(vpn, core_.now())
                : cyclesToNs(cost::kHintFault);
            core_.advanceKernel(busy);
        }
        pfn = pt_->walk(vpn);
        tlb_->fill(vpn, pfn);
        core_.advanceApp(cost::kPageWalkNs);
    }

    const Addr pa = pageBase(pfn) | (ev.va & (kPageBytes - 1));
    CacheResult res;
    {
        PROF_SCOPE("sim.access.llc");
        res = llc_->access(pa, ev.is_write);
    }
    Tick lat = cfg_.think_per_access;
    bool lower_fill = false;
    if (!res.hit) {
        PROF_SCOPE("sim.access.fill");
        // PEBS samples LLC-miss addresses (Sec 2.1 Solution 3); a full
        // buffer raises the processing interrupt here, in the app's path.
        if (memtis_) {
            const Tick busy = memtis_->onLlcMiss(vpn, core_.now());
            if (busy)
                core_.advanceKernel(busy);
        }
        // Dirty victim writeback is posted (bandwidth, not latency).
        if (res.writeback)
            mem_->access(*res.writeback, true, core_.now());
        // The fill is a read even on write misses (write-allocate / RFO),
        // which is why Monitor only needs read bandwidth (§5.2).
        lat += mem_->access(pa, false, core_.now());
        lrus_->touch(vpn, pt_->pte(vpn).node);
        lower_fill = pt_->pte(vpn).node != topo_->top();
        if (cfg_.record_trace)
            trace_.push(pa, core_.now(), ev.is_write);
    }
    // A retired store bumps the page's write generation (racing any
    // in-flight transactional copy) and invalidates its shadow frame —
    // the shadow invalidation runs in the faulting store's context,
    // like a CoW break (docs/MIGRATION.md).
    if (ev.is_write && engine_->txnEnabled()) {
        const Tick busy = engine_->noteWrite(vpn, core_.now());
        if (busy)
            core_.advanceKernel(busy);
    }
    // Per-tenant books (docs/MULTITENANT.md): where each access was
    // served and what it cost — the inputs to the fairness telemetry.
    if (tenant_table_) {
        TenantCounters &c =
            tenant_table_->counters(tenant_table_->tenantOf(vpn));
        c.accesses += 1;
        c.access_time += lat;
        c.access_latency.add(lat);
        if (!res.hit)
            (lower_fill ? c.lower_hits : c.ddr_hits) += 1;
    }
    core_.advanceApp(lat);
    core_.onAccessRetired();
    return lat;
}

RunResult
TieredSystem::run(std::uint64_t num_accesses)
{
    // Bind this system's tracer to the executing thread for the duration
    // of the run; parallel sweep workers each bind their own cell's
    // tracer, which keeps per-cell traces byte-identical across pool
    // sizes.
    const TraceBinding trace_binding(tracer_.get());
    // Same per-thread binding for the host profiler; the root scope
    // covers the whole run so every annotation nests under sim.run.
    const ProfBinding prof_binding(prof_.get());
    ProfScope run_scope("sim.run");

    monitor_->sample(core_.now());

    // Periodic events: policy daemon, MGLRU aging, WAC window rotation.
    // Scheduled once; a second run() continues the existing chains.
    if (!events_armed_) {
        events_armed_ = true;
        if (daemon_)
            events_.schedule(daemon_->nextWake(),
                             [this](Tick t) { return daemonTick(t); });
        scheduleAging(core_.now() + cfg_.mglru_age_period);
        if (invariants_)
            scheduleInvariants(core_.now() + msToTicks(1.0));
        if (cfg_.enable_wac && cfg_.wac_window_period > 0)
            scheduleWacRotation(core_.now() + cfg_.wac_window_period);
        if (telem_)
            scheduleTelemetry(core_.now() + cfg_.telemetry.epoch_period);
        if (tracer_) {
            trace_epoch_start_ = core_.now();
            scheduleTraceEpoch(core_.now() + cfg_.trace.epoch_period);
        }
    }

    const std::uint64_t warmup = static_cast<std::uint64_t>(
        static_cast<double>(num_accesses) * cfg_.warmup_fraction);
    std::uint64_t mark_ddr_reads = 0;
    std::uint64_t mark_cxl_reads = 0;

    for (std::uint64_t i = 0; i < num_accesses; ++i) {
        Tick now = core_.now();
        if (events_.nextTime() <= now) {
            PROF_SCOPE("sim.events.run");
            events_.runDue(now);
            core_.syncTo(now, true);
        }
        if (i == warmup) {
            core_.beginMeasurement();
            mark_ddr_reads = mem_->tier(kNodeDdr).counters().read_bytes;
            mark_cxl_reads = 0;
            for (NodeId n = 1; n < mem_->tiers(); ++n)
                mark_cxl_reads += mem_->tier(n).counters().read_bytes;
        }
        if (kernel_debt_ > 0) {
            const Tick pay = std::min(kernel_debt_,
                                      cfg_.kernel_quantum_per_access);
            core_.advanceKernel(pay);
            kernel_debt_ -= pay;
        }
        issueAccess(workload_->next());
    }

    if (cfg_.enable_wac)
        ctrl_->wac().fold();

    // Final invariant sweep so even sub-epoch runs get checked at least
    // once with every counter settled.
    if (invariants_)
        (void)invariants_->check(core_.now());

    // Charge baseline kernel housekeeping over the whole run (§4.2's
    // inflation reference).
    const Tick runtime = core_.now();
    ledger_.charge(KernelWork::Baseline,
                   static_cast<Cycles>(
                       static_cast<double>(nsToCycles(runtime)) *
                       cfg_.baseline_kernel_fraction));

    RunResult r;
    r.benchmark = cfg_.colocated_benchmarks.empty() && !tenant_table_
        ? cfg_.benchmark : workload_->name();
    r.policy = policyKindName(cfg_.policy);
    r.accesses = num_accesses;
    r.runtime = runtime;
    r.app_time = core_.appTime();
    r.kernel_time = core_.kernelTime();
    r.throughput = runtime
        ? static_cast<double>(num_accesses) /
          (static_cast<double>(runtime) * 1e-9)
        : 0.0;
    const Tick steady_time = runtime - core_.measureStart();
    r.steady_throughput = steady_time
        ? static_cast<double>(num_accesses - warmup) /
          (static_cast<double>(steady_time) * 1e-9)
        : r.throughput;
    // "cxl" aggregates every tier below the top — identical to the CXL
    // tier alone in the default pair.
    std::uint64_t lower_reads = 0;
    for (NodeId n = 1; n < mem_->tiers(); ++n)
        lower_reads += mem_->tier(n).counters().read_bytes;
    r.steady_ddr_read_bytes =
        mem_->tier(kNodeDdr).counters().read_bytes - mark_ddr_reads;
    r.steady_cxl_read_bytes = lower_reads - mark_cxl_reads;
    if (core_.requestLatencies().count()) {
        // Open-loop replay: kernel bursts queue subsequent arrivals.
        const PercentileTracker open =
            core_.openLoopLatencies(cfg_.request_utilization);
        r.p50_request = open.percentile(50.0);
        r.p99_request = open.percentile(99.0);
    }
    r.llc = llc_->stats();
    r.tlb = tlb_->stats();
    r.migration = engine_->stats();
    if (const TransactionalMigrator *txn = engine_->txn())
        r.txn = txn->stats();
    r.ddr_read_bytes = mem_->tier(kNodeDdr).counters().read_bytes;
    r.cxl_read_bytes = lower_reads;
    r.kernel_ident_cycles = ledger_.identificationCycles();
    r.kernel_total_cycles = ledger_.total();
    r.baseline_cycles = ledger_.category(KernelWork::Baseline);
    if (daemon_)
        r.hot_pages = daemon_->hotPages().pages();
    if (tenant_table_) {
        for (std::size_t t = 0; t < tenant_table_->count(); ++t) {
            const auto tid = static_cast<TenantId>(t);
            const TenantCounters &c = tenant_table_->counters(tid);
            TenantResult tr;
            tr.name = tenant_table_->entry(tid).name;
            tr.accesses = c.accesses;
            tr.ddr_hits = c.ddr_hits;
            tr.lower_hits = c.lower_hits;
            tr.promoted = c.promoted;
            tr.demoted = c.demoted;
            tr.cap_demotions = c.cap_demotions;
            tr.cap_rejects = c.cap_rejects;
            tr.mean_access_ns = c.accesses
                ? static_cast<double>(c.access_time) /
                  static_cast<double>(c.accesses)
                : 0.0;
            tr.p99_access_ns =
                static_cast<double>(c.access_latency.percentile(99.0));
            tr.ddr_frames = alloc_->tenantUsed(tid);
            tr.cap_frames = alloc_->tenantCap(tid);
            tr.cxl_reads = ctrl_->tenantReads(tid);
            tr.cxl_writes = ctrl_->tenantWrites(tid);
            r.tenants.push_back(std::move(tr));
        }
    }
    // Close the open trace epoch span before the final telemetry sample
    // so telemetry.trace.emitted is settled in the rollup, then export.
    if (tracer_) {
        if (tracer_->enabled(TraceCat::Sim) &&
            core_.now() > trace_epoch_start_) {
            tracer_->span(TraceCat::Sim, trace_epoch_start_,
                          core_.now() - trace_epoch_start_, "epoch",
                          TraceArgs().u("epoch", trace_epoch_idx_));
        }
        trace_epoch_start_ = core_.now();
        ++trace_epoch_idx_;
    }
    // The final telemetry sample is written after every counter above has
    // settled, so the last JSONL line matches the end-of-run rollup
    // exactly (tools print it via EpochSnapshotter::rollupTable).
    if (telem_)
        telem_->finish(core_.now());
    if (tracer_)
        tracer_->save();
    // Close the root scope before exporting so sim.run's total covers
    // the run and nothing else; the artifact write itself is untimed.
    run_scope.close();
    if (prof_)
        prof_->save();
    return r;
}

} // namespace m5
