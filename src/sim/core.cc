#include "sim/core.hh"

#include "common/logging.hh"

namespace m5 {

void
CpuCore::onAccessRetired()
{
    if (apr_ == 0)
        return;
    if (++in_request_ >= apr_) {
        // A request spans from the previous request's completion (or the
        // measurement start) through its last access.
        const double service = static_cast<double>(now_ - request_start_);
        requests_.add(service);
        services_.push_back(service);
        in_request_ = 0;
        request_start_ = now_;
    }
}

PercentileTracker
CpuCore::openLoopLatencies(double utilization) const
{
    m5_assert(utilization > 0.0 && utilization < 1.0,
              "utilization must be in (0, 1)");
    PercentileTracker out;
    if (services_.empty())
        return out;

    double mean = 0.0;
    for (double s : services_)
        mean += s;
    mean /= static_cast<double>(services_.size());
    const double interarrival = mean / utilization;

    // Deterministic-arrival single-server replay: a long service (kernel
    // burst inside a request) queues every arrival behind it.
    double arrival = 0.0;
    double ready = 0.0; // Server free time.
    for (double s : services_) {
        const double start = std::max(arrival, ready);
        ready = start + s;
        out.add(ready - arrival);
        arrival += interarrival;
    }
    return out;
}

} // namespace m5
