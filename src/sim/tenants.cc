#include "sim/tenants.hh"

#include <cmath>

#include "common/logging.hh"
#include "telemetry/prof.hh"
#include "workloads/registry.hh"

namespace m5 {

TenantSet::TenantSet(const std::vector<TenantSpec> &specs, double scale,
                     std::uint64_t seed)
{
    m5_assert(!specs.empty(), "TenantSet needs at least one tenant");
    std::vector<TenantTable::Entry> entries;
    std::size_t base = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const TenantSpec &s = specs[i];
        tenants_.push_back(std::make_unique<SyntheticWorkload>(
            benchmarkParams(s.benchmark, scale),
            seed + 0x51edULL * (i + 1)));

        TenantTable::Entry e;
        e.name = s.benchmark;
        e.vpn_base = base;
        e.pages = tenants_.back()->footprintPages();
        // The cap is a fraction of the tenant's own footprint, rounded
        // up so cap=epsilon still grants one frame; cap=1.0 equals the
        // footprint, which can never be exceeded — i.e. uncapped.
        e.cap_frames = static_cast<std::size_t>(
            std::ceil(s.ddr_cap * static_cast<double>(e.pages)));
        e.share = s.share;
        base += e.pages;
        entries.push_back(std::move(e));

        if (i)
            name_ += '+';
        name_ += s.describe();
        wrr_credit_.push_back(0);
        share_total_ += s.share;
    }
    name_ = "tenants(" + name_ + ")";
    table_ = std::make_unique<TenantTable>(std::move(entries));
}

AccessEvent
TenantSet::next()
{
    PROF_SCOPE("sim.tenants.wrr");
    std::size_t pick = 0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        wrr_credit_[i] +=
            static_cast<std::int64_t>(table_->entry(
                static_cast<TenantId>(i)).share);
        if (wrr_credit_[i] > wrr_credit_[pick])
            pick = i;
    }
    wrr_credit_[pick] -= share_total_;

    AccessEvent ev = tenants_[pick]->next();
    ev.va += static_cast<VAddr>(
                 table_->entry(static_cast<TenantId>(pick)).vpn_base)
             << kPageShift;
    return ev;
}

unsigned
TenantSet::accessesPerRequest() const
{
    // MultiWorkload convention: the first instance decides whether the
    // run replays request latencies.
    return tenants_[0]->accessesPerRequest();
}

} // namespace m5
