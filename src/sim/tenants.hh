/**
 * @file
 * TenantSet: the workload-facing half of the multi-tenant colocation
 * model (docs/MULTITENANT.md).
 *
 * A TenantSet builds one SyntheticWorkload per tenant from the benchmark
 * registry, places each in its own contiguous VPN range, and interleaves
 * their access streams with a deterministic smooth weighted round-robin
 * over the tenants' `share` weights — so an N-tenant run is byte-
 * reproducible across reruns and sweep worker counts, exactly like the
 * single-tenant simulator.  It owns the os-layer TenantTable (VPN
 * ranges, DDR caps, counters) that TieredSystem wires into the frame
 * allocator, the migration engine, the CXL controller and the M5
 * manager.
 *
 * This class lives in src/sim because it depends on the workload
 * registry, which the os layer (home of TenantTable) must not reach.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "os/tenant.hh"
#include "workloads/workload.hh"

namespace m5 {

/** Deterministic interleaver over N colocated tenant workloads. */
class TenantSet : public Workload
{
  public:
    /**
     * @param specs Parsed tenant declarations (TenantSpec::parseList).
     * @param scale Footprint scale, applied per tenant like the
     *              single-benchmark path.
     * @param seed Base seed; tenant i streams from seed + 0x51ed*(i+1),
     *             the makeMixedWorkload convention.
     */
    TenantSet(const std::vector<TenantSpec> &specs, double scale,
              std::uint64_t seed);

    AccessEvent next() override;
    const std::string &name() const override { return name_; }
    std::size_t footprintPages() const override
    {
        return table_->totalPages();
    }
    unsigned accessesPerRequest() const override;

    /** The shared OS-layer tenant table. @{ */
    TenantTable &table() { return *table_; }
    const TenantTable &table() const { return *table_; }
    /** @} */

    /** Number of tenants. */
    std::size_t count() const { return tenants_.size(); }

    /** Tenant i's underlying generator (tests, analysis). */
    const SyntheticWorkload &tenantWorkload(std::size_t i) const
    {
        return *tenants_[i];
    }

  private:
    std::vector<std::unique_ptr<SyntheticWorkload>> tenants_;
    std::unique_ptr<TenantTable> table_;
    std::string name_;
    //! Smooth weighted round-robin credit per tenant: each next() adds
    //! every tenant's share, picks the largest credit (lowest index on
    //! ties), and debits the picked tenant by the share total.  Spreads
    //! a 3:1 share mix as ABAA ABAA, never AAAB.
    std::vector<std::int64_t> wrr_credit_;
    std::int64_t share_total_ = 0;
};

} // namespace m5
