/**
 * @file
 * Shared experiment drivers for the bench/ harnesses.
 *
 * Every figure binary builds SystemConfigs through these helpers so the
 * paper's methodology (§6) is encoded once: all pages start in CXL, the
 * DDR cgroup cap is 3/8 of the footprint, tracker geometries default to
 * CM-Sketch 32K, and access budgets scale with the footprint.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "sim/system.hh"

namespace m5 {

/** The §6 configuration for one benchmark + policy. */
SystemConfig makeConfig(const std::string &benchmark, PolicyKind policy,
                        double scale = kDefaultScale,
                        std::uint64_t seed = 1);

/**
 * Post-L2 access budget for a benchmark run: enough for hotness to
 * develop and migration to reach equilibrium (~96 accesses per page,
 * clamped to [4M, 20M]).
 */
std::uint64_t accessBudget(const std::string &benchmark,
                           double scale = kDefaultScale);

/** Run one benchmark under one policy with default budget. */
RunResult runPolicy(const std::string &benchmark, PolicyKind policy,
                    double scale = kDefaultScale, std::uint64_t seed = 1);

/**
 * §4.1 S1-S5: run a policy in record-only mode over all-CXL placement and
 * return the average access-count ratio of its identified hot pages
 * against PAC's same-size top-K.
 */
double recordOnlyAccessRatio(const std::string &benchmark,
                             PolicyKind policy,
                             double scale = kDefaultScale,
                             std::uint64_t seed = 1);

/**
 * @{ Grid-construction helpers: the §6 methodology (makeConfig +
 * accessBudget over the Table 3 suite) as a SweepGrid, so the figure
 * harnesses stay declarative and the methodology is encoded once.
 */

/** The evaluation suite (Figures 3/8/9/10) under the given policies. */
SweepGrid evaluationGrid(std::vector<PolicyKind> policies,
                         double scale = kDefaultScale, int seeds = 1);

/** Same grid in record-only mode (§4.1 identification experiments). */
SweepGrid recordOnlyGrid(std::vector<PolicyKind> policies,
                         double scale = kDefaultScale, int seeds = 1);

/**
 * Run one record-only cell and score its identified hot pages against
 * PAC's same-size top-K (the S1-S5 metric) — the standard cell body of
 * the Figure 3/8/11 sweeps.
 */
double accessRatioJob(const SweepJob &job);
/** @} */

} // namespace m5
