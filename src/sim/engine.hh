/**
 * @file
 * Minimal discrete-event queue for the simulator's periodic activities
 * (policy-daemon wakeups, MGLRU aging, WAC window rotation).
 *
 * Time advances with application progress; whenever it passes an event's
 * due time, the event runs and returns the CPU time it consumed, which the
 * caller adds to the clock — the single shared core serializes kernel work
 * with the application (§6's pinning methodology).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** An event callback: runs at `now`, returns consumed CPU time. */
using EventFn = std::function<Tick(Tick now)>;

/** Time-ordered event queue. */
class EventQueue
{
  public:
    /** Schedule fn at `when`.  Events may schedule further events. */
    void schedule(Tick when, EventFn fn);

    /** Earliest pending event time (Tick max when empty). */
    Tick nextTime() const;

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /**
     * Run every event due at or before *now, adding each event's busy
     * time to *now (and to the returned total).
     */
    Tick runDue(Tick &now);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Events scheduled so far. */
    std::uint64_t scheduled() const { return scheduled_; }

    /** Events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Register scheduling counters as `sim.events.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };
    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap_;
    std::uint64_t seq_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace m5
