#include "sim/experiment.hh"

#include <algorithm>

#include "analysis/ratio.hh"
#include "common/logging.hh"

namespace m5 {

SystemConfig
makeConfig(const std::string &benchmark, PolicyKind policy, double scale,
           std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.benchmark = benchmark;
    cfg.scale = scale;
    cfg.seed = seed;
    cfg.policy = policy;
    return cfg;
}

std::uint64_t
accessBudget(const std::string &benchmark, double scale)
{
    const SyntheticParams p = benchmarkParams(benchmark, scale);
    const std::uint64_t want =
        static_cast<std::uint64_t>(p.footprint_pages) * 96;
    return std::clamp<std::uint64_t>(want, 4'000'000, 20'000'000);
}

RunResult
runPolicy(const std::string &benchmark, PolicyKind policy, double scale,
          std::uint64_t seed)
{
    TieredSystem sys(makeConfig(benchmark, policy, scale, seed));
    return sys.run(accessBudget(benchmark, scale));
}

double
recordOnlyAccessRatio(const std::string &benchmark, PolicyKind policy,
                      double scale, std::uint64_t seed)
{
    SystemConfig cfg = makeConfig(benchmark, policy, scale, seed);
    cfg.record_only = true;
    cfg.enable_pac = true;
    TieredSystem sys(cfg);
    const RunResult r = sys.run(accessBudget(benchmark, scale));
    return accessCountRatio(sys.pac(), r.hot_pages);
}

SweepGrid
evaluationGrid(std::vector<PolicyKind> policies, double scale, int seeds)
{
    SweepGrid grid;
    grid.benchmarks(benchmarkNames())
        .policies(std::move(policies))
        .scale(scale)
        .seeds(seeds);
    return grid;
}

SweepGrid
recordOnlyGrid(std::vector<PolicyKind> policies, double scale, int seeds)
{
    SweepGrid grid = evaluationGrid(std::move(policies), scale, seeds);
    grid.recordOnly().configure(
        [](SystemConfig &cfg) { cfg.enable_pac = true; });
    return grid;
}

double
accessRatioJob(const SweepJob &job)
{
    TieredSystem sys(job.config);
    const RunResult r = sys.run(job.budget);
    return accessCountRatio(sys.pac(), r.hot_pages);
}

} // namespace m5
