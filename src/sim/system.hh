/**
 * @file
 * TieredSystem: the full simulated machine.
 *
 * Wires workload -> TLB/page table -> LLC -> DDR/CXL tiers, attaches the
 * CXL controller (PAC/WAC/HPT/HWT) to the CXL tier, and runs one of the
 * page-migration solutions (none / ANB / DAMON / M5 in its three Nominator
 * flavours) on the shared CPU core.  All experiments in bench/ are thin
 * drivers over this class.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/tlb.hh"
#include "cxl/controller.hh"
#include "m5/manager.hh"
#include "mem/memsys.hh"
#include "mem/topology.hh"
#include "os/anb.hh"
#include "os/daemon.hh"
#include "os/damon.hh"
#include "os/pebs.hh"
#include "os/frame_alloc.hh"
#include "os/kernel_ledger.hh"
#include "os/mglru.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "sim/core.hh"
#include "sim/engine.hh"
#include "sim/tenants.hh"
#include "fault/fault.hh"
#include "sim/fault/invariant.hh"
#include "telemetry/prof.hh"
#include "telemetry/registry.hh"
#include "telemetry/snapshot.hh"
#include "telemetry/trace.hh"
#include "workloads/registry.hh"
#include "workloads/trace.hh"

namespace m5 {

/** Page-migration solution selector. */
enum class PolicyKind
{
    None,        //!< No migration (Figure 9's normalization baseline).
    Anb,
    Damon,
    Memtis,      //!< PEBS-sampling baseline (Sec 2.1 Solution 3).
    M5HptOnly,   //!< Figure 9 "M5(HPT)".
    M5HwtDriven, //!< Figure 9 "M5(HWT)".
    M5HptDriven, //!< Figure 9 "M5(HPT+HWT)".
};

/** Policy name for reports. */
std::string policyKindName(PolicyKind kind);

/** True for the three M5 flavours. */
bool isM5(PolicyKind kind);

/** Full system configuration. */
struct SystemConfig
{
    std::string benchmark = "mcf_r";
    //! Non-empty = colocate these benchmarks (round-robin interleaved,
    //! disjoint address ranges) instead of running `benchmark` alone.
    std::vector<std::string> colocated_benchmarks;
    //! Multi-tenant colocation spec (docs/MULTITENANT.md), e.g.
    //! "redis:cap=0.25,mcf_r:cap=0.5:share=2".  Non-empty replaces
    //! `benchmark`/`colocated_benchmarks` with a TenantSet: per-tenant
    //! DDR frame caps in the allocator, per-tenant CXL attribution, fair
    //! M5 election, always-on invariants, and `tenant.<id>.*` telemetry.
    //! Empty leaves every result, telemetry row and trace event
    //! byte-identical to a build without the tenant model.
    std::string tenants;
    double scale = kDefaultScale;
    std::size_t instances = 1;
    std::uint64_t seed = 1;

    PolicyKind policy = PolicyKind::None;
    bool record_only = false; //!< Identify hot pages but never migrate.

    //! DDR capacity as a fraction of the footprint (paper: 3GB / ~8GB).
    double ddr_capacity_fraction = 3.0 / 8.0;
    //! Fraction of pages initially placed (randomly) in DDR; the §6 runs
    //! start everything in CXL (0.0).
    double initial_ddr_fraction = 0.0;
    //! Fraction of pages DMA-pinned / node-bound: Promoter must reject
    //! them (§5.2), and every policy loses the capacity they occupy.
    double pinned_fraction = 0.0;

    bool enable_pac = true;
    bool enable_wac = false;
    bool record_trace = false;

    //! Tracker geometries (paper defaults: CM-Sketch, N=32K).
    TrackerConfig hpt_cfg{TrackerKind::CmSketchTopK, 32 * 1024, 64, 4, 32,
                          0x4871ULL};
    TrackerConfig hwt_cfg{TrackerKind::CmSketchTopK, 32 * 1024, 128, 4, 32,
                          0x4872ULL};

    AnbConfig anb_cfg;
    DamonConfig damon_cfg;
    PebsConfig pebs_cfg;
    M5Config m5_cfg;

    //! Scale applied to the per-page migration software cost; 0 means
    //! "use `scale`", keeping fill-time : runtime proportional to the
    //! full-size system (see MigrationCosts).
    double migration_cost_scale = 0.0;
    //! Hot-page list capacity as a fraction of the footprint (the paper's
    //! 128K-page cap is ~1/16 of its 8GB footprints, §4.1).
    double hot_list_fraction = 1.0 / 16.0;
    //! Fraction of accesses treated as warmup before steady-state
    //! metrics (throughput, p99, bandwidth split) start accumulating.
    //! The paper's minutes-long runs amortize the migration fill phase;
    //! scaled runs must exclude it explicitly.
    double warmup_fraction = 0.5;
    //! Non-memory compute per LLC-visible access (ns).
    Tick think_per_access = 4;
    //! MGLRU aging period.
    Tick mglru_age_period = msToTicks(5.0);
    //! WAC window rotation period (0 = static window, folded at the end).
    Tick wac_window_period = 0;
    //! Kernel housekeeping unrelated to migration, as a fraction of
    //! runtime, charged at the end (the §4.2 inflation baseline).
    double baseline_kernel_fraction = 0.03;
    //! Load-generator utilization for the open-loop request-latency
    //! replay (latency-sensitive workloads only).
    double request_utilization = 0.6;
    //! CFS preemption model: daemon (kthread) work accumulates as debt
    //! and is drained at most this much per application access, so a
    //! migration burst shares the core ~50/50 with the app instead of
    //! monopolizing it.  Hinting faults remain synchronous — they occur
    //! in the application's own context.
    Tick kernel_quantum_per_access = 100;

    TieredMemoryParams tier_params; //!< Latencies; capacities are derived.
    //! N-tier topology spec (docs/TOPOLOGY.md, `m5sim --tiers`).  Empty
    //! selects the default DDR/CXL pair, byte-identical to the
    //! pre-topology simulator.
    std::string tiers;
    //! Arm the atomic page-exchange fallback for failed top-tier frame
    //! allocations (docs/TOPOLOGY.md); only observable under `ddr_alloc`
    //! fault injection, so default runs are unaffected either way.
    bool exchange = true;
    //! Transactional page migration with shadow copies
    //! (docs/MIGRATION.md, `--no-txn-migrate`): pages are copied while
    //! still mapped and validated against their write generation before
    //! the remap; committed promotions retain a shadow frame in the
    //! source tier so a still-clean demotion is a zero-copy PTE flip.
    //! Off restores the stop-the-world path, byte-identical to the
    //! pre-transactional simulator.
    bool txn_migrate = true;
    std::optional<std::uint64_t> llc_bytes_override;
    TlbConfig tlb_cfg;
    //! Per-epoch telemetry export (docs/TELEMETRY.md); disabled while
    //! `telemetry.path` is empty.  The epoch event consumes zero
    //! simulated time, so results are identical either way.
    TelemetryConfig telemetry;
    //! Causal event tracing (docs/TRACING.md); disabled unless
    //! `trace.enabled()`.  Tracing only observes — results and telemetry
    //! are byte-identical with it off.
    TraceConfig trace;
    //! Host-time profiling (docs/PROFILING.md); disabled unless
    //! `prof.enabled()`.  The profiler observes only the host clock,
    //! never the simulation: results, telemetry and traces are
    //! byte-identical with it on or off.
    ProfConfig prof;
    //! Fault-injection spec (docs/FAULTS.md), e.g.
    //! "migrate_busy:p=0.05,ddr_alloc:burst=100@5ms".  Empty — or a spec
    //! whose rules can never fire — leaves results, telemetry, and
    //! traces byte-identical to a fault-free run: the injector and the
    //! invariant checker are then not even constructed.
    std::string faults;
};

/** One tenant's slice of a multi-tenant run (docs/MULTITENANT.md). */
struct TenantResult
{
    std::string name;
    std::uint64_t accesses = 0;
    std::uint64_t ddr_hits = 0;       //!< LLC fills served by DDR.
    std::uint64_t lower_hits = 0;     //!< LLC fills served below DDR.
    std::uint64_t promoted = 0;
    std::uint64_t demoted = 0;
    std::uint64_t cap_demotions = 0;  //!< Demotions forced by the cap.
    std::uint64_t cap_rejects = 0;    //!< Promotions refused at the cap.
    double mean_access_ns = 0.0;      //!< Mean post-L2 access latency.
    double p99_access_ns = 0.0;       //!< p99 post-L2 access latency.
    std::size_t ddr_frames = 0;       //!< DDR frames held at run end.
    std::size_t cap_frames = 0;       //!< DDR frame budget.
    std::uint64_t cxl_reads = 0;      //!< Attributed lower-tier reads.
    std::uint64_t cxl_writes = 0;     //!< Attributed lower-tier writes.
};

/** Results of one run. */
struct RunResult
{
    std::string benchmark;
    std::string policy;
    std::uint64_t accesses = 0;
    Tick runtime = 0;
    Tick app_time = 0;
    Tick kernel_time = 0;
    double throughput = 0.0; //!< Accesses per second over the whole run.
    //! Steady-state metrics over the post-warmup window.
    double steady_throughput = 0.0;
    double p50_request = 0.0; //!< Steady-state request latency (ns).
    double p99_request = 0.0;
    std::uint64_t steady_ddr_read_bytes = 0;
    std::uint64_t steady_cxl_read_bytes = 0;
    CacheStats llc;
    TlbStats tlb;
    MigrationStats migration;
    //! Transaction/shadow lifecycle counters; all-zero when
    //! `txn_migrate` is off.
    TxnStats txn;
    std::uint64_t ddr_read_bytes = 0;
    std::uint64_t cxl_read_bytes = 0;
    Cycles kernel_ident_cycles = 0;
    Cycles kernel_total_cycles = 0;
    Cycles baseline_cycles = 0;
    std::vector<Pfn> hot_pages; //!< Identified hot pages (record mode).
    //! Per-tenant breakdown; empty unless `cfg.tenants` was set.
    std::vector<TenantResult> tenants;
};

/** The simulated tiered-memory machine. */
class TieredSystem
{
  public:
    explicit TieredSystem(const SystemConfig &cfg);

    /** Run the workload for a number of post-L2 accesses. */
    RunResult run(std::uint64_t num_accesses);

    /** @{ Component access for analysis and tests. */
    const SystemConfig &config() const { return cfg_; }
    CxlController &controller() { return *ctrl_; }
    PacUnit &pac() { return ctrl_->pac(); }
    WacUnit &wac() { return ctrl_->wac(); }
    PageTable &pageTable() { return *pt_; }
    MemorySystem &memory() { return *mem_; }
    SetAssocCache &llc() { return *llc_; }
    Monitor &monitor() { return *monitor_; }
    const KernelLedger &ledger() const { return ledger_; }
    PolicyDaemon *daemon() { return daemon_; }
    const TraceBuffer &trace() const { return trace_; }
    Workload &workload() { return *workload_; }
    MigrationEngine &migrationEngine() { return *engine_; }
    const TierTopology &topology() const { return *topo_; }
    TierLrus &lrus() { return *lrus_; }
    CpuCore &core() { return core_; }
    const StatRegistry &stats() const { return stats_; }
    EpochSnapshotter *telemetry() { return telem_.get(); }
    Tracer *tracer() { return tracer_.get(); }
    //! The host profiler; nullptr unless `cfg.prof` enables it.
    Profiler *profiler() { return prof_.get(); }
    //! The fault injector; nullptr when no (effective) spec is set.
    FaultInjector *faults() { return faults_.get(); }
    //! The invariant checker; constructed only alongside the injector.
    const InvariantChecker *invariants() const { return invariants_.get(); }
    //! The M5 manager daemon; nullptr for non-M5 policies.
    M5Manager *m5Manager() { return m5_.get(); }
    //! The tenant table; nullptr unless `cfg.tenants` was set.
    const TenantTable *tenants() const { return tenant_table_; }
    /** @} */

  private:
    void buildMemory();
    void placePages();
    void buildController();
    void buildPolicy();
    void registerStats();
    Tick issueAccess(const AccessEvent &ev);
    Tick daemonTick(Tick now);
    void scheduleAging(Tick when);
    void scheduleInvariants(Tick when);
    void scheduleWacRotation(Tick when);
    void scheduleTelemetry(Tick when);
    void scheduleTraceEpoch(Tick when);

    SystemConfig cfg_;
    std::unique_ptr<Workload> workload_;
    //! Owned by workload_ when it is a TenantSet; null otherwise.
    TenantTable *tenant_table_ = nullptr;
    std::unique_ptr<TierTopology> topo_;
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<SetAssocCache> llc_;
    std::unique_ptr<Tlb> tlb_;
    std::unique_ptr<PageTable> pt_;
    std::unique_ptr<FrameAllocator> alloc_;
    std::unique_ptr<TierLrus> lrus_;
    std::unique_ptr<CxlController> ctrl_;
    std::unique_ptr<MigrationEngine> engine_;
    std::unique_ptr<Monitor> monitor_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<InvariantChecker> invariants_;

    std::unique_ptr<AnbDaemon> anb_;
    std::unique_ptr<DamonDaemon> damon_;
    std::unique_ptr<MemtisDaemon> memtis_;
    std::unique_ptr<M5Manager> m5_;
    PolicyDaemon *daemon_ = nullptr;

    KernelLedger ledger_;
    EventQueue events_;
    bool events_armed_ = false; //!< Periodic chains scheduled once.
    CpuCore core_;
    TraceBuffer trace_;
    Tick kernel_debt_ = 0; //!< Outstanding preemptible daemon work.
    StatRegistry stats_;
    std::unique_ptr<EpochSnapshotter> telem_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<Profiler> prof_;
    Tick trace_epoch_start_ = 0;     //!< Start of the open epoch span.
    std::uint64_t trace_epoch_idx_ = 0;
};

} // namespace m5
