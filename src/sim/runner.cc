#include "sim/runner.hh"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/env.hh"
#include "workloads/registry.hh"

namespace m5 {
namespace {

/** Mutex/condvar work queue of job indices, closed once drained. */
class WorkQueue
{
  public:
    explicit WorkQueue(std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            pending_.push_back(i);
    }

    /** Pop the next index; false when the queue is exhausted. */
    bool
    pop(std::size_t &index)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
        if (pending_.empty())
            return false;
        index = pending_.front();
        pending_.pop_front();
        if (pending_.empty()) {
            closed_ = true;
            cv_.notify_all();
        }
        return true;
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::size_t> pending_;
    bool closed_ = false;
};

/** Shared progress/ETA line, repainted as jobs complete. */
class ProgressLine
{
  public:
    ProgressLine(bool enabled, std::string name, std::size_t total,
                 unsigned workers)
        : enabled_(enabled), name_(std::move(name)), total_(total),
          workers_(workers),
          start_(std::chrono::steady_clock::now())
    {
    }

    void
    jobDone()
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        const double elapsed = secondsSince(start_);
        const double eta = done_ ? elapsed / static_cast<double>(done_) *
                                       static_cast<double>(total_ - done_)
                                 : 0.0;
        std::fprintf(stderr,
                     "\r%s%zu/%zu jobs | %u workers | %.1fs elapsed | "
                     "eta %.0fs   ",
                     prefix().c_str(), done_, total_, workers_, elapsed,
                     eta);
        std::fflush(stderr);
    }

    void
    finish()
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        std::fprintf(stderr, "\r%s%zu/%zu jobs | %u workers | %.1fs"
                             "                          \n",
                     prefix().c_str(), done_, total_, workers_,
                     secondsSince(start_));
        std::fflush(stderr);
    }

  private:
    static double
    secondsSince(std::chrono::steady_clock::time_point t0)
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    std::string
    prefix() const
    {
        return name_.empty() ? std::string() : "[" + name_ + "] ";
    }

    bool enabled_;
    std::string name_;
    std::size_t total_;
    unsigned workers_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
};

bool
progressEnabled(int opt)
{
    if (opt >= 0)
        return opt != 0;
    if (const auto flag = envFlag("M5_BENCH_PROGRESS"))
        return *flag;
    return isatty(STDERR_FILENO) != 0;
}

/** Run one cell with failure capture; errors[i] stays "" on success. */
void
runCell(std::size_t i, const std::function<void(std::size_t)> &task,
        std::vector<std::string> &errors)
{
    logSetThreadTag(strprintf("job %zu", i));
    FatalCaptureScope capture;
    try {
        task(i);
    } catch (const std::exception &e) {
        errors[i] = *e.what() ? e.what() : "unknown std::exception";
    } catch (...) {
        errors[i] = "unknown exception";
    }
    logSetThreadTag("");
}

} // namespace

RunResult
runJob(const SweepJob &job)
{
    SystemConfig cfg = job.config;
    if (cfg.telemetry.path.empty()) {
        // Tag this cell's snapshot stream by its grid label so per-cell
        // telemetry lands beside the CSV results deterministically,
        // whatever worker runs the cell.
        if (const auto dir = benchTelemetryDir()) {
            std::filesystem::create_directories(*dir);
            cfg.telemetry.path = telemetryPathForLabel(*dir, job.label());
        }
    }
    if (cfg.trace.path.empty()) {
        // Same label-keyed scheme for Chrome traces: each cell's
        // .trace.json is named by the grid cell, not by the worker, so
        // a 1-worker sweep and an N-worker sweep write identical files.
        if (const auto dir = benchTraceDir()) {
            std::filesystem::create_directories(*dir);
            cfg.trace.path = tracePathForLabel(*dir, job.label());
        }
    }
    if (cfg.faults.empty()) {
        // Campaign-wide fault plan: the same spec (and the cell's own
        // seed) in every cell, so a faulted sweep stays as reproducible
        // as a clean one whatever the worker count.
        if (const auto spec = benchFaultsSpec())
            cfg.faults = *spec;
    }
    if (cfg.prof.base.empty()) {
        // Host-time profiles, also keyed by the cell label: the .prof
        // artifact set is per cell whatever the worker count, and each
        // cell's Profiler binds to whichever worker runs it
        // (docs/PROFILING.md).
        if (const auto dir = benchProfDir()) {
            std::filesystem::create_directories(*dir);
            cfg.prof.base = artifactPathForLabel(*dir, job.label(), "");
        }
    }
    TieredSystem sys(cfg);
    return sys.run(job.budget);
}

ExperimentRunner::ExperimentRunner(RunnerOptions opts)
    : opts_(std::move(opts))
{
}

unsigned
ExperimentRunner::workerCount(std::size_t pending) const
{
    unsigned want = opts_.jobs ? opts_.jobs : benchJobs();
    want = std::max(1u, want);
    return static_cast<unsigned>(
        std::min<std::size_t>(want, std::max<std::size_t>(1, pending)));
}

std::vector<std::string>
ExperimentRunner::execute(std::size_t n,
                          const std::function<void(std::size_t)> &task)
    const
{
    std::vector<std::string> errors(n);
    if (n == 0)
        return errors;

    const unsigned workers = workerCount(n);
    ProgressLine progress(progressEnabled(opts_.progress), opts_.name, n,
                          workers);

    if (workers <= 1) {
        // Same capture semantics as the pool, no threads.
        for (std::size_t i = 0; i < n; ++i) {
            runCell(i, task, errors);
            progress.jobDone();
        }
    } else {
        WorkQueue queue(n);
        {
            std::vector<std::jthread> pool;
            pool.reserve(workers);
            for (unsigned w = 0; w < workers; ++w) {
                pool.emplace_back([&] {
                    std::size_t i;
                    while (queue.pop(i)) {
                        runCell(i, task, errors);
                        progress.jobDone();
                    }
                });
            }
        } // jthread joins here.
    }
    progress.finish();

    for (std::size_t i = 0; i < n; ++i) {
        if (!errors[i].empty())
            m5_warn("sweep job %zu failed: %s", i, errors[i].c_str());
    }
    return errors;
}

double
benchScale()
{
    if (const auto denom = envDouble("M5_BENCH_SCALE")) {
        if (*denom >= 1.0)
            return 1.0 / *denom;
        m5_warn("ignoring M5_BENCH_SCALE=%g: must be >= 1 "
                "(a 1/N footprint divisor)",
                *denom);
    }
    return kDefaultScale;
}

int
benchSeeds(int fallback)
{
    if (const auto n = envLong("M5_BENCH_SEEDS")) {
        if (*n >= 1)
            return static_cast<int>(*n);
        m5_warn("ignoring M5_BENCH_SEEDS=%ld: must be >= 1", *n);
    }
    return fallback;
}

unsigned
benchJobs()
{
    if (const auto n = envLong("M5_BENCH_JOBS")) {
        if (*n >= 1)
            return static_cast<unsigned>(*n);
        m5_warn("ignoring M5_BENCH_JOBS=%ld: must be >= 1", *n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::optional<std::string>
benchTelemetryDir()
{
    auto dir = envString("M5_BENCH_TELEMETRY");
    if (dir && dir->empty())
        return std::nullopt;
    return dir;
}

std::optional<std::string>
benchTraceDir()
{
    auto dir = envString("M5_BENCH_TRACE");
    if (dir && dir->empty())
        return std::nullopt;
    return dir;
}

std::optional<std::string>
benchFaultsSpec()
{
    auto spec = envString("M5_BENCH_FAULTS");
    if (spec && spec->empty())
        return std::nullopt;
    return spec;
}

std::optional<std::string>
benchProfDir()
{
    auto dir = envString("M5_BENCH_PROF");
    if (dir && dir->empty())
        return std::nullopt;
    return dir;
}

std::string
artifactPathForLabel(const std::string &dir, const std::string &label,
                     const std::string &suffix)
{
    std::string flat = label;
    for (char &c : flat) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                          c == '_';
        if (!keep)
            c = '_';
    }
    return dir + "/" + flat + suffix;
}

std::string
telemetryPathForLabel(const std::string &dir, const std::string &label)
{
    return artifactPathForLabel(dir, label, ".jsonl");
}

std::string
tracePathForLabel(const std::string &dir, const std::string &label)
{
    return artifactPathForLabel(dir, label, ".trace.json");
}

std::vector<std::string>
runResultCsvHeader()
{
    return {"benchmark", "policy",   "seed",
            "variant",   "accesses", "runtime",
            "app_time",  "kernel_time", "throughput",
            "steady_throughput", "p50_request", "p99_request",
            "steady_ddr_read_bytes", "steady_cxl_read_bytes",
            "llc_hits", "llc_misses", "tlb_shootdowns",
            "promoted", "demoted", "rejected_pinned",
            "rejected_not_cxl", "failed_capacity",
            "ddr_read_bytes", "cxl_read_bytes",
            "kernel_ident_cycles", "kernel_total_cycles",
            "baseline_cycles", "hot_pages", "hot_pages_hash"};
}

std::vector<std::string>
runResultCsvRow(const SweepJob &job, const RunResult &r)
{
    // %.17g round-trips doubles exactly, so identical results always
    // serialize to identical bytes (the determinism test's invariant).
    auto f = [](double v) { return strprintf("%.17g", v); };
    auto u = [](std::uint64_t v) { return std::to_string(v); };
    std::uint64_t pages_hash = 1469598103934665603ULL; // FNV-1a
    for (Pfn p : r.hot_pages) {
        pages_hash ^= p;
        pages_hash *= 1099511628211ULL;
    }
    return {job.benchmark,
            policyKindName(job.policy),
            u(job.seed),
            job.variant,
            u(r.accesses),
            u(r.runtime),
            u(r.app_time),
            u(r.kernel_time),
            f(r.throughput),
            f(r.steady_throughput),
            f(r.p50_request),
            f(r.p99_request),
            u(r.steady_ddr_read_bytes),
            u(r.steady_cxl_read_bytes),
            u(r.llc.hits),
            u(r.llc.misses),
            u(r.tlb.shootdowns),
            u(r.migration.promoted),
            u(r.migration.demoted),
            u(r.migration.rejected_pinned),
            u(r.migration.rejected_not_cxl),
            u(r.migration.failed_capacity),
            u(r.ddr_read_bytes),
            u(r.cxl_read_bytes),
            u(r.kernel_ident_cycles),
            u(r.kernel_total_cycles),
            u(r.baseline_cycles),
            u(r.hot_pages.size()),
            u(pages_hash)};
}

} // namespace m5
