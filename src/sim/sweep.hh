/**
 * @file
 * Declarative experiment sweeps.
 *
 * A SweepGrid names the axes of a paper experiment — benchmarks,
 * policies, seeds, and arbitrary SystemConfig mutations — and expands
 * into a flat, deterministically ordered list of SweepJobs.  The bench
 * harnesses declare their figure as a grid and hand the jobs to the
 * ExperimentRunner (sim/runner.hh); nothing here executes anything.
 *
 * Expansion order is benchmark-major: benchmark × variant × policy ×
 * seed, matching the row/column order the figure tables print in, so
 * results indexed by job.index land in presentation order regardless
 * of which worker finished first.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace m5 {

/** A SystemConfig mutation applied to a sweep cell. */
using ConfigMutator = std::function<void(SystemConfig &)>;

/** One named point on a custom sweep axis (e.g. "N=32K"). */
struct SweepPoint
{
    std::string label;
    ConfigMutator apply;
};

/** One fully expanded cell of a sweep, ready to execute. */
struct SweepJob
{
    std::size_t index = 0; //!< Position in deterministic grid order.
    std::string benchmark;
    PolicyKind policy = PolicyKind::None;
    std::uint64_t seed = 1;
    std::string variant; //!< Custom-axis label ("" without an axis).

    SystemConfig config;      //!< §6 config with all mutators applied.
    std::uint64_t budget = 0; //!< Post-L2 access budget for the run.

    /** "bench/policy/s<seed>[/variant]" for logs and errors. */
    std::string label() const;
};

/**
 * The declarative grid.  Unset axes default to a single cell
 * (benchmarks must be set; policies default to {None}; seeds to {1}).
 */
class SweepGrid
{
  public:
    SweepGrid();

    /** @{ Axis setters (chainable). */
    SweepGrid &benchmarks(std::vector<std::string> names);
    SweepGrid &benchmark(const std::string &name);
    SweepGrid &policies(std::vector<PolicyKind> kinds);
    SweepGrid &policy(PolicyKind kind);
    SweepGrid &seeds(int n); //!< Seeds 1..n.
    SweepGrid &seedList(std::vector<std::uint64_t> list);
    SweepGrid &axis(std::vector<SweepPoint> points); //!< Custom axis.
    /** @} */

    /** @{ Cell shaping (chainable). */
    SweepGrid &scale(double s);
    SweepGrid &recordOnly(bool v = true);
    SweepGrid &configure(ConfigMutator m); //!< Applied to every cell.
    SweepGrid &budgetScale(double f);      //!< Multiply accessBudget().
    SweepGrid &budgetOverride(std::uint64_t accesses);
    /** @} */

    /** Number of cells the grid will expand to. */
    std::size_t size() const;

    /** Expand to jobs in deterministic grid order. */
    std::vector<SweepJob> expand() const;

  private:
    std::vector<std::string> benchmarks_;
    std::vector<PolicyKind> policies_{PolicyKind::None};
    std::vector<std::uint64_t> seeds_{1};
    std::vector<SweepPoint> axis_;
    std::vector<ConfigMutator> mutators_;
    double scale_;
    bool record_only_ = false;
    double budget_scale_ = 1.0;
    std::uint64_t budget_override_ = 0;
};

} // namespace m5
