/**
 * @file
 * The shared CPU-core time model.
 *
 * The paper pins the page-migration processes and a benchmark thread to
 * one core (§6), so kernel work directly delays the application.  CpuCore
 * splits elapsed time into application vs kernel busy time, and groups
 * accesses into requests for latency-sensitive workloads so p99 request
 * latency can be reported (Figure 9, Redis).
 */

#pragma once

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Time accounting for the single simulated core. */
class CpuCore
{
  public:
    /** @param accesses_per_request 0 disables request tracking. */
    explicit CpuCore(unsigned accesses_per_request)
        : apr_(accesses_per_request)
    {
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Application executed for `t` ns. */
    void
    advanceApp(Tick t)
    {
        now_ += t;
        app_time_ += t;
    }

    /** Kernel / manager work delayed the application by `t` ns. */
    void
    advanceKernel(Tick t)
    {
        now_ += t;
        kernel_time_ += t;
    }

    /** Force the clock to an externally advanced value (event queue). */
    void
    syncTo(Tick t, bool kernel)
    {
        if (t <= now_)
            return;
        const Tick delta = t - now_;
        if (kernel)
            kernel_time_ += delta;
        else
            app_time_ += delta;
        now_ = t;
    }

    /** One application access completed (drives request grouping). */
    void onAccessRetired();

    /** Start the measurement window: drop warmup request latencies and
     *  remember the current time (steady-state metrics, §7 equilibrium). */
    void
    beginMeasurement()
    {
        requests_.reset();
        services_.clear();
        in_request_ = 0;
        request_start_ = now_;
        measure_start_ = now_;
    }

    /** Time the measurement window began (0 = start of run). */
    Tick measureStart() const { return measure_start_; }

    /** Cumulative application busy time. */
    Tick appTime() const { return app_time_; }

    /** Cumulative kernel/daemon busy time. */
    Tick kernelTime() const { return kernel_time_; }

    /** Closed-loop request-service distribution (empty when apr == 0). */
    const PercentileTracker &requestLatencies() const { return requests_; }

    /**
     * Open-loop request latencies: replay the measured service times
     * against a fixed-rate arrival process at the given utilization, so
     * a kernel burst delays every request that queues behind it — the
     * way a real load generator (YCSB) sees a stalled Redis.
     */
    PercentileTracker openLoopLatencies(double utilization) const;

    /** Register time-accounting counters as `sim.core.*` telemetry. */
    void
    registerStats(StatRegistry &reg) const
    {
        reg.addCounter("sim.core.app_time", &app_time_);
        reg.addCounter("sim.core.kernel_time", &kernel_time_);
    }

  private:
    unsigned apr_;
    Tick now_ = 0;
    Tick app_time_ = 0;
    Tick kernel_time_ = 0;
    unsigned in_request_ = 0;
    Tick request_start_ = 0;
    Tick measure_start_ = 0;
    PercentileTracker requests_;
    std::vector<double> services_; //!< Service times in arrival order.
};

} // namespace m5
