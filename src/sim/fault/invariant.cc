#include "sim/fault/invariant.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "mem/memsys.hh"
#include "os/frame_alloc.hh"
#include "os/mglru.hh"
#include "os/page_table.hh"
#include "os/tenant.hh"
#include "os/txn_migrate.hh"

namespace m5 {

InvariantChecker::InvariantChecker(const PageTable &pt,
                                   const FrameAllocator &alloc,
                                   const MemorySystem &mem,
                                   const TierLrus &lrus,
                                   const KernelLedger &ledger)
    : pt_(pt), alloc_(alloc), mem_(mem), lrus_(lrus), ledger_(ledger)
{
}

std::vector<std::string>
InvariantChecker::check(Tick now)
{
    std::vector<std::string> bad;
    auto fail = [&](std::string msg) { bad.push_back(std::move(msg)); };

    // 1. Page table self-consistency: every valid PTE maps a unique
    //    frame whose memory-map node matches the PTE's node, present
    //    implies valid, and the reverse map agrees.
    std::unordered_set<Pfn> frames;
    std::vector<std::size_t> on_node(mem_.tiers(), 0);
    for (Vpn vpn = 0; vpn < pt_.numPages(); ++vpn) {
        const Pte &e = pt_.pte(vpn);
        if (!e.valid) {
            if (e.present)
                fail(strprintf("vpn %lu present but not valid", vpn));
            continue;
        }
        if (e.node >= mem_.tiers()) {
            fail(strprintf("vpn %lu on unknown node %u", vpn, e.node));
            continue;
        }
        ++on_node[e.node];
        if (!frames.insert(e.pfn).second)
            fail(strprintf("pfn %lu mapped by more than one vpn (vpn %lu)",
                           e.pfn, vpn));
        if (mem_.nodeOf(pageBase(e.pfn)) != e.node)
            fail(strprintf("vpn %lu: pfn %lu lives on node %u but pte "
                           "says node %u",
                           vpn, e.pfn, mem_.nodeOf(pageBase(e.pfn)),
                           e.node));
        if (pt_.vpnOfPfn(e.pfn) != vpn)
            fail(strprintf("vpn %lu: reverse map for pfn %lu points at "
                           "vpn %lu",
                           vpn, e.pfn, pt_.vpnOfPfn(e.pfn)));
    }

    // 2. Tier occupancy: the page table's cached per-node counts match
    //    the recount, and the frame allocator's books balance.  With
    //    transactional migration, retained shadow frames are allocated
    //    but unmapped, so the balance widens to mapped + shadows.
    for (NodeId node = 0; node < mem_.tiers(); ++node) {
        if (pt_.pagesOnNode(node) != on_node[node])
            fail(strprintf("node %u: pagesOnNode cache %zu != recount %zu",
                           node, pt_.pagesOnNode(node), on_node[node]));
        const std::size_t shadows = txn_ ? txn_->shadowFrames(node) : 0;
        if (alloc_.usedFrames(node) != on_node[node] + shadows)
            fail(strprintf("node %u: allocator has %zu used frames but "
                           "%zu pages are mapped (+%zu shadows)",
                           node, alloc_.usedFrames(node), on_node[node],
                           shadows));
        if (alloc_.freeFrames(node) + alloc_.usedFrames(node) !=
            alloc_.totalFrames(node))
            fail(strprintf("node %u: free %zu + used %zu != total %zu",
                           node, alloc_.freeFrames(node),
                           alloc_.usedFrames(node),
                           alloc_.totalFrames(node)));
    }

    // 3. Each tracked tier's MGLRU holds exactly that tier's resident
    //    pages (the spill tier keeps no LRU).  An exchange that half
    //    completed, or a migration that skipped LRU bookkeeping, shows
    //    up here as a membership or size mismatch.
    for (NodeId node = 0; node < lrus_.trackedTiers(); ++node) {
        const MgLru &lru = lrus_.lru(node);
        std::size_t resident = 0;
        for (Vpn vpn = 0; vpn < pt_.numPages(); ++vpn) {
            const Pte &e = pt_.pte(vpn);
            const bool on_tier = e.valid && e.node == node;
            if (on_tier)
                ++resident;
            if (on_tier != lru.contains(vpn))
                fail(strprintf("vpn %lu: %s tier %u but %s in its MGLRU",
                               vpn, on_tier ? "on" : "not on", node,
                               lru.contains(vpn) ? "is" : "not"));
        }
        if (lru.size() != resident)
            fail(strprintf("tier %u MGLRU tracks %zu pages but %zu are "
                           "resident",
                           node, lru.size(), resident));
    }

    // 4. Per-tenant cgroup books (multi-tenant runs): the allocator's
    //    per-tenant cap-node charges match a page-table recount of each
    //    tenant's resident pages, and nobody exceeds its cap — the
    //    isolation guarantee colocation sells (docs/MULTITENANT.md).
    if (tenants_ && alloc_.tenantCapsEnabled()) {
        const NodeId cap_node = alloc_.capNode();
        std::vector<std::size_t> resident(tenants_->count(), 0);
        for (Vpn vpn = 0; vpn < pt_.numPages(); ++vpn) {
            const Pte &e = pt_.pte(vpn);
            if (e.valid && e.node == cap_node)
                ++resident[tenants_->tenantOf(vpn)];
        }
        for (std::size_t t = 0; t < tenants_->count(); ++t) {
            const auto tid = static_cast<TenantId>(t);
            if (alloc_.tenantUsed(tid) != resident[t])
                fail(strprintf("tenant %zu: allocator charges %zu "
                               "cap-node frames but %zu pages are "
                               "resident",
                               t, alloc_.tenantUsed(tid), resident[t]));
            if (resident[t] > alloc_.tenantCap(tid))
                fail(strprintf("tenant %zu: %zu resident cap-node pages "
                               "exceed the cap of %zu",
                               t, resident[t], alloc_.tenantCap(tid)));
        }
    }

    // 5. Shadow-frame books (transactional migration): every live
    //    shadow must back a valid page resident on the top tier (node
    //    0), be clean (its retention-time write generation still
    //    current — a stale shadow means a store skipped invalidation),
    //    and hold a unique frame that is unmapped, homed on the
    //    recorded node, and distinct from every mapped frame; the
    //    per-node shadow counts must match a recount
    //    (docs/MIGRATION.md).
    if (txn_) {
        std::vector<std::size_t> shadow_recount(mem_.tiers(), 0);
        std::unordered_set<Pfn> shadow_frames;
        for (Vpn vpn = 0; vpn < pt_.numPages(); ++vpn) {
            if (!txn_->hasShadow(vpn))
                continue;
            const Pfn spfn = txn_->shadowPfn(vpn);
            const NodeId snode = txn_->shadowNode(vpn);
            const Pte &e = pt_.pte(vpn);
            if (!e.valid || e.node != 0)
                fail(strprintf("vpn %lu: shadow on node %u but the page "
                               "is %s the top tier",
                               vpn, snode,
                               e.valid ? "not on" : "unmapped, let alone"));
            if (txn_->shadowGen(vpn) != pt_.writeGen(vpn))
                fail(strprintf("vpn %lu: stale shadow (retained at write "
                               "gen %u, page now at gen %u)",
                               vpn, txn_->shadowGen(vpn),
                               pt_.writeGen(vpn)));
            if (snode >= mem_.tiers() || snode == 0) {
                fail(strprintf("vpn %lu: shadow on bad node %u", vpn,
                               snode));
                continue;
            }
            ++shadow_recount[snode];
            if (mem_.nodeOf(pageBase(spfn)) != snode)
                fail(strprintf("vpn %lu: shadow pfn %lu lives on node %u "
                               "but the books say node %u",
                               vpn, spfn, mem_.nodeOf(pageBase(spfn)),
                               snode));
            if (pt_.vpnOfPfn(spfn) != pt_.numPages())
                fail(strprintf("vpn %lu: shadow pfn %lu is also mapped "
                               "by vpn %lu — double-accounted frame",
                               vpn, spfn, pt_.vpnOfPfn(spfn)));
            if (frames.count(spfn) ||
                !shadow_frames.insert(spfn).second)
                fail(strprintf("vpn %lu: shadow pfn %lu backs more than "
                               "one page",
                               vpn, spfn));
        }
        for (NodeId node = 0; node < mem_.tiers(); ++node) {
            if (txn_->shadowFrames(node) != shadow_recount[node])
                fail(strprintf("node %u: shadow count %zu != recount %zu",
                               node, txn_->shadowFrames(node),
                               shadow_recount[node]));
        }
    }

    // 6. Kernel ledger: books balance and never run backwards.
    Cycles sum = 0;
    for (unsigned c = 0;
         c < static_cast<unsigned>(KernelWork::NumCategories); ++c) {
        auto w = static_cast<KernelWork>(c);
        sum += ledger_.category(w);
        if (ledger_.category(w) < prev_[c])
            fail(strprintf("ledger category %s ran backwards "
                           "(%lu -> %lu)",
                           kernelWorkName(w).c_str(), prev_[c],
                           ledger_.category(w)));
        prev_[c] = ledger_.category(w);
    }
    if (sum != ledger_.total())
        fail(strprintf("ledger total %lu != category sum %lu",
                       ledger_.total(), sum));

    ++checks_;
    violations_ += bad.size();
    for (const std::string &msg : bad)
        m5_warn("invariant violation @%lu: %s", now, msg.c_str());
    return bad;
}

void
InvariantChecker::registerStats(StatRegistry &reg) const
{
    reg.addCounter("sim.invariant.checks", &checks_);
    reg.addCounter("sim.invariant.violations", &violations_);
}

} // namespace m5
