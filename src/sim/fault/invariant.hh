/**
 * @file
 * Cross-layer state invariants, checked per epoch under fault campaigns.
 *
 * Fault injection only proves something if we can show the degraded
 * pipeline never corrupts state: a transient migrate failure must leave
 * the page mapped at its source, a dropped wakeup must not leak frames,
 * a stale-MMIO degradation must not desync the MGLRU.  The checker
 * cross-references the page table, the frame allocator, per-tier
 * occupancy, the MGLRU and the kernel ledger, and reports every
 * violation as a human-readable string (docs/FAULTS.md).
 *
 * Violations are counted and warned, not fatal: a fault campaign that
 * corrupts state should finish and report, so sweeps can chart *which*
 * fault rate breaks *which* policy.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "os/kernel_ledger.hh"
#include "telemetry/registry.hh"

namespace m5 {

class PageTable;
class FrameAllocator;
class MemorySystem;
class TierLrus;
class TenantTable;
class TransactionalMigrator;

/** Per-epoch cross-layer consistency checker. */
class InvariantChecker
{
  public:
    InvariantChecker(const PageTable &pt, const FrameAllocator &alloc,
                     const MemorySystem &mem, const TierLrus &lrus,
                     const KernelLedger &ledger);

    /**
     * Run every invariant; returns one message per violation (empty
     * means clean).  Each violation is also warned and counted.
     */
    std::vector<std::string> check(Tick now);

    /** Number of check() sweeps so far. */
    std::uint64_t checks() const { return checks_; }

    /** Total violations across all sweeps. */
    std::uint64_t violations() const { return violations_; }

    /** Register `sim.invariant.checks` / `.violations` counters. */
    void registerStats(StatRegistry &reg) const;

    /**
     * Attach the tenant table (multi-tenant runs): every sweep then
     * also cross-checks the allocator's per-tenant cap books against a
     * page-table recount and the caps themselves — a tenant over its
     * cgroup budget is exactly the corruption colocation must never
     * leak (docs/MULTITENANT.md).
     */
    void attachTenants(const TenantTable *tenants) { tenants_ = tenants; }

    /**
     * Attach the transactional migrator (txn-migrate runs): every sweep
     * then cross-checks the shadow-frame books — each live shadow must
     * back a clean top-tier page with an unmapped, correctly-homed,
     * unique frame, the per-node shadow counts must match a recount,
     * and the allocator balance check widens to used == mapped +
     * shadows (docs/MIGRATION.md).
     */
    void
    attachTxn(const TransactionalMigrator *txn)
    {
        txn_ = txn;
    }

  private:
    const PageTable &pt_;
    const FrameAllocator &alloc_;
    const MemorySystem &mem_;
    const TierLrus &lrus_;
    const KernelLedger &ledger_;
    const TenantTable *tenants_ = nullptr; //!< Not owned; may be null.
    //! Not owned; may be null (transactional migration off).
    const TransactionalMigrator *txn_ = nullptr;

    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    //! Ledger snapshot from the previous sweep (monotonicity check).
    std::array<Cycles,
               static_cast<unsigned>(KernelWork::NumCategories)> prev_{};
};

} // namespace m5
