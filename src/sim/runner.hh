/**
 * @file
 * ExperimentRunner: parallel execution of sweep cells.
 *
 * Seeded simulations are independent, so a benchmark × policy × seed
 * sweep is embarrassingly parallel.  The runner executes jobs on a
 * fixed-size pool of std::jthread workers fed by a mutex/condvar work
 * queue, collects results in deterministic grid order regardless of
 * completion order, captures per-job failures (an exception or fatal()
 * in one cell reports and continues instead of aborting the sweep),
 * and paints a shared progress/ETA line on stderr.
 *
 * Pool size: RunnerOptions::jobs, else M5_BENCH_JOBS, else
 * std::thread::hardware_concurrency().  A 1-worker run produces
 * byte-identical results to an N-worker run (tests/test_runner.cc pins
 * this down); simulations share no mutable state.
 *
 * The environment knobs steering every bench harness live here too:
 * benchScale() (M5_BENCH_SCALE), benchSeeds() (M5_BENCH_SEEDS) and
 * benchJobs() (M5_BENCH_JOBS), all parsed strictly (common/env.hh).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace m5 {

/** Pool sizing and progress reporting. */
struct RunnerOptions
{
    //! Worker count; 0 = M5_BENCH_JOBS or hardware_concurrency().
    unsigned jobs = 0;
    //! Progress/ETA line on stderr; default on only when stderr is a
    //! terminal (M5_BENCH_PROGRESS=0/1 overrides either way).
    int progress = -1; //!< -1 auto, 0 off, 1 on.
    //! Prefix for the progress line (the harness/figure name).
    std::string name;
};

/** Outcome of one cell: a value, or the error that killed the cell. */
template <typename T>
struct Outcome
{
    bool ok = false;
    std::string error; //!< Failure description when !ok.
    T value{};
};

/** Run one standard cell: build the system, run the budget. */
RunResult runJob(const SweepJob &job);

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions opts = {});

    /** Workers that would be used for `pending` queued jobs. */
    unsigned workerCount(std::size_t pending) const;

    /**
     * Type-erased core: run task(i) for every i in [0, n) on the pool.
     * Returns one error string per index ("" = success).  task must
     * write its result into caller-owned slot i (never shared state),
     * which is what keeps collection deterministic.
     */
    std::vector<std::string> execute(
        std::size_t n,
        const std::function<void(std::size_t)> &task) const;

    /** Run fn over jobs; results in grid order. */
    template <typename Fn>
    auto
    map(const std::vector<SweepJob> &jobs, Fn fn) const
        -> std::vector<Outcome<
            std::decay_t<std::invoke_result_t<Fn &, const SweepJob &>>>>
    {
        using T =
            std::decay_t<std::invoke_result_t<Fn &, const SweepJob &>>;
        std::vector<Outcome<T>> out(jobs.size());
        const auto errors = execute(jobs.size(), [&](std::size_t i) {
            logSetThreadTag(jobs[i].label());
            out[i].value = fn(jobs[i]);
            out[i].ok = true;
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            if (!errors[i].empty())
                out[i].error = errors[i];
        return out;
    }

    /** Run fn over arbitrary work items; results in item order. */
    template <typename Item, typename Fn>
    auto
    mapItems(const std::vector<Item> &items, Fn fn) const
        -> std::vector<Outcome<
            std::decay_t<std::invoke_result_t<Fn &, const Item &>>>>
    {
        using T = std::decay_t<std::invoke_result_t<Fn &, const Item &>>;
        std::vector<Outcome<T>> out(items.size());
        const auto errors = execute(items.size(), [&](std::size_t i) {
            out[i].value = fn(items[i]);
            out[i].ok = true;
        });
        for (std::size_t i = 0; i < out.size(); ++i)
            if (!errors[i].empty())
                out[i].error = errors[i];
        return out;
    }

    /** Standard sweep: TieredSystem(job.config).run(job.budget). */
    std::vector<Outcome<RunResult>>
    run(const std::vector<SweepJob> &jobs) const
    {
        return map(jobs, runJob);
    }

    /** Expand a grid and run it. */
    std::vector<Outcome<RunResult>>
    run(const SweepGrid &grid) const
    {
        return run(grid.expand());
    }

  private:
    RunnerOptions opts_;
};

/** @{ Environment knobs shared by every bench harness (strict parse,
 *  one-line warning on malformed values). */

/** System scale; M5_BENCH_SCALE=32 means 1/32 of paper footprints. */
double benchScale();

/** Repeated execution points; M5_BENCH_SEEDS overrides `fallback`. */
int benchSeeds(int fallback = 3);

/** Worker-pool size; M5_BENCH_JOBS overrides hardware_concurrency(). */
unsigned benchJobs();

/** Per-cell telemetry directory; M5_BENCH_TELEMETRY names a directory
 *  that runJob fills with one `<cell-label>.jsonl` stream per sweep
 *  cell (docs/TELEMETRY.md).  nullopt when unset. */
std::optional<std::string> benchTelemetryDir();

/** Per-cell trace directory; M5_BENCH_TRACE names a directory that
 *  runJob fills with one `<cell-label>.trace.json` Chrome trace per
 *  sweep cell (docs/TRACING.md).  nullopt when unset. */
std::optional<std::string> benchTraceDir();

/** Fault-injection spec applied to every sweep cell whose config does
 *  not set one; M5_BENCH_FAULTS holds a docs/FAULTS.md spec string
 *  (e.g. "migrate_busy:p=0.05").  nullopt when unset. */
std::optional<std::string> benchFaultsSpec();

/** Per-cell profile directory; M5_BENCH_PROF names a directory that
 *  runJob fills with one `<cell-label>.prof.json` + `.folded` pair per
 *  sweep cell (docs/PROFILING.md).  nullopt when unset. */
std::optional<std::string> benchProfDir();
/** @} */

/** Deterministic artifact path for a sweep-cell label: the label with
 *  non-filename characters flattened to '_', rooted at `dir`, with
 *  `suffix` appended.  Shared by the telemetry and trace sinks so a
 *  cell's files always sit side by side. */
std::string artifactPathForLabel(const std::string &dir,
                                 const std::string &label,
                                 const std::string &suffix);

/** artifactPathForLabel with the telemetry `.jsonl` suffix. */
std::string telemetryPathForLabel(const std::string &dir,
                                  const std::string &label);

/** artifactPathForLabel with the Chrome-trace `.trace.json` suffix. */
std::string tracePathForLabel(const std::string &dir,
                              const std::string &label);

/** @{ Stable CSV serialization of RunResult, used by the determinism
 *  test and the M5_BENCH_CSV emission path. */
std::vector<std::string> runResultCsvHeader();
std::vector<std::string> runResultCsvRow(const SweepJob &job,
                                         const RunResult &r);
/** @} */

} // namespace m5
