#include "sim/engine.hh"

#include <limits>

#include "telemetry/prof.hh"

namespace m5 {

void
EventQueue::schedule(Tick when, EventFn fn)
{
    heap_.push({when, seq_++, std::move(fn)});
    ++scheduled_;
}

Tick
EventQueue::nextTime() const
{
    return heap_.empty() ? std::numeric_limits<Tick>::max()
                         : heap_.top().when;
}

Tick
EventQueue::runDue(Tick &now)
{
    Tick busy_total = 0;
    while (!heap_.empty() && heap_.top().when <= now) {
        PROF_SCOPE("sim.events.dispatch");
        EventFn fn = heap_.top().fn;
        heap_.pop();
        ++executed_;
        const Tick busy = fn(now);
        now += busy;
        busy_total += busy;
    }
    return busy_total;
}

void
EventQueue::registerStats(StatRegistry &reg) const
{
    reg.addCounter("sim.events.scheduled", &scheduled_);
    reg.addCounter("sim.events.executed", &executed_);
}

} // namespace m5
