#include "sim/sweep.hh"

#include <cmath>

#include "common/logging.hh"
#include "sim/experiment.hh"

namespace m5 {

std::string
SweepJob::label() const
{
    std::string s = benchmark + "/" + policyKindName(policy) + "/s" +
                    std::to_string(seed);
    if (!variant.empty())
        s += "/" + variant;
    return s;
}

SweepGrid::SweepGrid() : scale_(kDefaultScale)
{
}

SweepGrid &
SweepGrid::benchmarks(std::vector<std::string> names)
{
    benchmarks_ = std::move(names);
    return *this;
}

SweepGrid &
SweepGrid::benchmark(const std::string &name)
{
    benchmarks_ = {name};
    return *this;
}

SweepGrid &
SweepGrid::policies(std::vector<PolicyKind> kinds)
{
    policies_ = std::move(kinds);
    return *this;
}

SweepGrid &
SweepGrid::policy(PolicyKind kind)
{
    policies_ = {kind};
    return *this;
}

SweepGrid &
SweepGrid::seeds(int n)
{
    m5_assert(n >= 1, "need at least one seed, got %d", n);
    seeds_.clear();
    for (int s = 1; s <= n; ++s)
        seeds_.push_back(static_cast<std::uint64_t>(s));
    return *this;
}

SweepGrid &
SweepGrid::seedList(std::vector<std::uint64_t> list)
{
    m5_assert(!list.empty(), "seed list must not be empty");
    seeds_ = std::move(list);
    return *this;
}

SweepGrid &
SweepGrid::axis(std::vector<SweepPoint> points)
{
    m5_assert(!points.empty(), "custom axis must not be empty");
    axis_ = std::move(points);
    return *this;
}

SweepGrid &
SweepGrid::scale(double s)
{
    m5_assert(s > 0.0 && s <= 1.0, "scale must be in (0, 1], got %f", s);
    scale_ = s;
    return *this;
}

SweepGrid &
SweepGrid::recordOnly(bool v)
{
    record_only_ = v;
    return *this;
}

SweepGrid &
SweepGrid::configure(ConfigMutator m)
{
    mutators_.push_back(std::move(m));
    return *this;
}

SweepGrid &
SweepGrid::budgetScale(double f)
{
    m5_assert(f > 0.0, "budget scale must be positive, got %f", f);
    budget_scale_ = f;
    return *this;
}

SweepGrid &
SweepGrid::budgetOverride(std::uint64_t accesses)
{
    m5_assert(accesses > 0, "budget override must be positive");
    budget_override_ = accesses;
    return *this;
}

std::size_t
SweepGrid::size() const
{
    const std::size_t variants = axis_.empty() ? 1 : axis_.size();
    return benchmarks_.size() * variants * policies_.size() * seeds_.size();
}

std::vector<SweepJob>
SweepGrid::expand() const
{
    m5_assert(!benchmarks_.empty(),
              "sweep grid needs at least one benchmark");
    std::vector<SweepJob> jobs;
    jobs.reserve(size());
    const std::size_t variants = axis_.empty() ? 1 : axis_.size();
    for (const auto &bench : benchmarks_) {
        for (std::size_t v = 0; v < variants; ++v) {
            for (PolicyKind policy : policies_) {
                for (std::uint64_t seed : seeds_) {
                    SweepJob job;
                    job.index = jobs.size();
                    job.benchmark = bench;
                    job.policy = policy;
                    job.seed = seed;
                    job.config = makeConfig(bench, policy, scale_, seed);
                    job.config.record_only = record_only_;
                    for (const auto &m : mutators_)
                        m(job.config);
                    if (!axis_.empty()) {
                        job.variant = axis_[v].label;
                        if (axis_[v].apply)
                            axis_[v].apply(job.config);
                    }
                    // Mutators may retarget the cell (an axis that
                    // switches policy, scale, or seed); keep the job's
                    // labeling fields in sync with what actually runs.
                    job.benchmark = job.config.benchmark;
                    job.policy = job.config.policy;
                    job.seed = job.config.seed;
                    if (budget_override_) {
                        job.budget = budget_override_;
                    } else {
                        // From the post-mutation scale, so axes that
                        // grow the footprint get a matching budget.
                        const double want =
                            static_cast<double>(accessBudget(
                                bench, job.config.scale)) *
                            budget_scale_;
                        job.budget = std::max<std::uint64_t>(
                            1, static_cast<std::uint64_t>(want));
                    }
                    jobs.push_back(std::move(job));
                }
            }
        }
    }
    return jobs;
}

} // namespace m5
