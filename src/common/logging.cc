#include "common/logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

namespace m5 {

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

namespace {

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

thread_local std::string t_log_tag;
thread_local bool t_capture_fatal = false;

/** "[tag] " when the thread is tagged, "" otherwise. */
std::string
tagPrefix()
{
    return t_log_tag.empty() ? std::string() : "[" + t_log_tag + "] ";
}

} // namespace

void
logSetThreadTag(std::string tag)
{
    t_log_tag = std::move(tag);
}

const std::string &
logThreadTag()
{
    return t_log_tag;
}

FatalCaptureScope::FatalCaptureScope() : prev_(t_capture_fatal)
{
    t_capture_fatal = true;
}

FatalCaptureScope::~FatalCaptureScope()
{
    t_capture_fatal = prev_;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s%s\n  at %s:%d\n",
                     tagPrefix().c_str(), msg.c_str(), file, line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (t_capture_fatal)
        throw FatalError(msg);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s%s\n  at %s:%d\n",
                     tagPrefix().c_str(), msg.c_str(), file, line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s%s\n", tagPrefix().c_str(), msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stdout, "info: %s%s\n", tagPrefix().c_str(), msg.c_str());
}

} // namespace detail
} // namespace m5
