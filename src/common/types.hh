/**
 * @file
 * Fundamental address and time types shared by every subsystem.
 *
 * The simulated machine follows the paper's assumptions (§3): a 48-bit
 * physical address space, 4KB pages, and 64B words (cache lines).  DRAM is
 * accessed at word granularity, so a memory access address is PA[47:6]; the
 * page frame number of a 4KB page is PA[47:12].
 */

#pragma once

#include <cstdint>

namespace m5 {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** CPU clock cycles (the evaluation platform runs at 2.1 GHz). */
using Cycles = std::uint64_t;

/** Physical address (48-bit space, stored in 64 bits). */
using Addr = std::uint64_t;

/** Virtual address. */
using VAddr = std::uint64_t;

/** Page frame number: PA[47:12]. */
using Pfn = std::uint64_t;

/** Virtual page number: VA[47:12]. */
using Vpn = std::uint64_t;

/** Word (cache-line) number: PA[47:6]. */
using WordAddr = std::uint64_t;

/** Memory tier node identifier (0 = DDR, 1 = CXL by convention). */
using NodeId = std::uint32_t;

/** Colocated-tenant identifier (index into the run's tenant list). */
using TenantId = std::uint32_t;

/** "No tenant": single-tenant runs and unmapped frames resolve to this. */
inline constexpr TenantId kNoTenant = static_cast<TenantId>(-1);

/** Log2 of the 4KB page size. */
inline constexpr unsigned kPageShift = 12;
/** Page size in bytes. */
inline constexpr std::uint64_t kPageBytes = 1ULL << kPageShift;
/** Log2 of the 64B word (cache line) size. */
inline constexpr unsigned kWordShift = 6;
/** Word size in bytes. */
inline constexpr std::uint64_t kWordBytes = 1ULL << kWordShift;
/** Number of 64B words in a 4KB page. */
inline constexpr unsigned kWordsPerPage = 1u << (kPageShift - kWordShift);

/** The DDR tier node id. */
inline constexpr NodeId kNodeDdr = 0;
/** The CXL tier node id. */
inline constexpr NodeId kNodeCxl = 1;

/** Extract the page frame number from a physical address. */
constexpr Pfn
pfnOf(Addr pa)
{
    return pa >> kPageShift;
}

/** Extract the word address (PA[47:6]) from a physical address. */
constexpr WordAddr
wordOf(Addr pa)
{
    return pa >> kWordShift;
}

/** Extract the virtual page number from a virtual address. */
constexpr Vpn
vpnOf(VAddr va)
{
    return va >> kPageShift;
}

/** First byte address of a page frame. */
constexpr Addr
pageBase(Pfn pfn)
{
    return pfn << kPageShift;
}

/** Index of the 64B word within its 4KB page (0..63). */
constexpr unsigned
wordInPage(Addr pa)
{
    return static_cast<unsigned>((pa >> kWordShift) &
                                 (kWordsPerPage - 1));
}

/** Convert seconds to ticks (nanoseconds). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * 1e9);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * 1e3);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * 1e6);
}

} // namespace m5
