#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace m5 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    m5_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    m5_assert(row.size() == headers_.size(),
              "row arity %zu != header arity %zu", row.size(),
              headers_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << "=== " << title << " ===" << '\n';
}

} // namespace m5
