/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for internal invariant violations (a bug in this library);
 * fatal() is for user configuration errors.  warn()/inform() report
 * conditions without stopping the simulation.
 *
 * Emission is thread-safe: lines from concurrent ExperimentRunner
 * workers never interleave mid-line, and each thread can carry a tag
 * (the runner sets the job label) that prefixes its lines.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace m5 {

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Tag this thread's subsequent log lines ("" clears the tag). */
void logSetThreadTag(std::string tag);

/** The current thread's log tag ("" when untagged). */
const std::string &logThreadTag();

/** Thrown by fatal() inside a FatalCaptureScope instead of exiting. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * While alive on a thread, m5_fatal() on that thread throws FatalError
 * instead of exiting the process.  The ExperimentRunner wraps each job
 * in one so a misconfigured sweep cell fails that cell, not the sweep.
 */
class FatalCaptureScope
{
  public:
    FatalCaptureScope();
    ~FatalCaptureScope();
    FatalCaptureScope(const FatalCaptureScope &) = delete;
    FatalCaptureScope &operator=(const FatalCaptureScope &) = delete;

  private:
    bool prev_;
};

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
} // namespace detail

/** Abort on an internal invariant violation (library bug). */
#define m5_panic(...) \
    ::m5::detail::panicImpl(__FILE__, __LINE__, ::m5::strprintf(__VA_ARGS__))

/** Exit on a user error (bad configuration, invalid arguments). */
#define m5_fatal(...) \
    ::m5::detail::fatalImpl(__FILE__, __LINE__, ::m5::strprintf(__VA_ARGS__))

/** Report a suspicious but non-fatal condition. */
#define m5_warn(...) \
    ::m5::detail::warnImpl(::m5::strprintf(__VA_ARGS__))

/** Report normal operating status. */
#define m5_inform(...) \
    ::m5::detail::informImpl(::m5::strprintf(__VA_ARGS__))

/** Assert a library invariant; cheaper to read than raw assert(). */
#define m5_assert(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::m5::detail::panicImpl(__FILE__, __LINE__,                 \
                std::string("assertion '" #cond "' failed: ") +         \
                ::m5::strprintf(__VA_ARGS__));                          \
        }                                                               \
    } while (0)

} // namespace m5
