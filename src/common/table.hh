/**
 * @file
 * Column-aligned text tables and CSV emission for the bench harnesses.
 *
 * Every figure/table binary in bench/ prints its rows through this so the
 * output style is uniform and machine-parsable.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace m5 {

/** A simple text table: set headers, add rows, print aligned or as CSV. */
class TextTable
{
  public:
    /** Set the column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Print with aligned columns. */
    void print(std::ostream &os) const;

    /** Print as CSV. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner (used between figure panels). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace m5
