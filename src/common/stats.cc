#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace m5 {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++n_;
}

double
RunningStats::mean() const
{
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
}

void
RunningStats::reset()
{
    n_ = 0;
    sum_ = min_ = max_ = 0.0;
}

double
PercentileTracker::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    m5_assert(p >= 0.0 && p <= 100.0, "percentile %f out of range", p);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const std::size_t n = samples_.size();
    // Nearest-rank: ceil(p/100 * n), 1-based.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return samples_[rank - 1];
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

Histogram::Histogram(std::size_t buckets, double width)
    : counts_(buckets, 0), width_(width)
{
    m5_assert(buckets > 0 && width > 0.0, "bad histogram shape");
}

void
Histogram::add(double x)
{
    std::size_t i = x <= 0.0 ? 0
        : static_cast<std::size_t>(x / width_);
    if (i >= counts_.size())
        i = counts_.size() - 1;
    ++counts_[i];
    ++total_;
}

double
Histogram::cdfAt(std::size_t i) const
{
    m5_assert(i < counts_.size(), "bucket %zu out of range", i);
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j <= i; ++j)
        acc += counts_[j];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::vector<double>
empiricalCdf(std::vector<double> samples, const std::vector<double> &thresholds)
{
    std::sort(samples.begin(), samples.end());
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (double t : thresholds) {
        auto it = std::upper_bound(samples.begin(), samples.end(), t);
        out.push_back(samples.empty() ? 0.0
            : static_cast<double>(it - samples.begin()) /
              static_cast<double>(samples.size()));
    }
    return out;
}

double
percentileOf(std::vector<double> samples, double p)
{
    PercentileTracker t;
    for (double s : samples)
        t.add(s);
    return t.percentile(p);
}

double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : xs) {
        m5_assert(x >= 0.0, "jainIndex needs non-negative inputs (%f)", x);
        sum += x;
        sum_sq += x * x;
    }
    if (xs.empty() || sum_sq == 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

} // namespace m5
