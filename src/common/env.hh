/**
 * @file
 * Strict environment-variable parsing.
 *
 * The bench harnesses are steered by env knobs (M5_BENCH_SCALE,
 * M5_BENCH_SEEDS, M5_BENCH_JOBS, ...).  std::atof/std::atoi silently
 * turn garbage into 0, so a typo used to disable the knob without any
 * hint; these helpers validate the *whole* string and warn once when a
 * set-but-malformed value is rejected.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace m5 {

/**
 * Parse a whole string as a double; nullopt unless the entire string
 * (modulo trailing whitespace) is a valid, in-range number.  This is
 * the repo's one sanctioned wrapper around strtod — CLI and env
 * parsing both go through here so a typo is rejected loudly instead of
 * silently becoming 0 (see docs/LINT.md, no-raw-parse).
 */
std::optional<double> parseDouble(const std::string &s);

/** Parse a whole string as a long (base 10), same strictness. */
std::optional<long> parseLong(const std::string &s);

/** Parse a whole string as an unsigned 64-bit (base 10, no sign). */
std::optional<std::uint64_t> parseU64(const std::string &s);

/**
 * Parse an env var as a double.  Returns nullopt when the variable is
 * unset, or set but not a full valid number (a warning is emitted for
 * the latter).
 */
std::optional<double> envDouble(const char *name);

/** Parse an env var as a long (base 10), with the same strictness. */
std::optional<long> envLong(const char *name);

/**
 * Parse an env var as a boolean flag: 1/true/yes/on and 0/false/no/off
 * (case-insensitive).  Anything else warns and returns nullopt.
 */
std::optional<bool> envFlag(const char *name);

/** Raw env lookup; nullopt when unset. */
std::optional<std::string> envString(const char *name);

} // namespace m5
