#include "common/zipf.hh"

#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace m5 {
namespace {

/** Vose's alias method construction. */
void
buildAlias(const std::vector<double> &pmf, std::vector<double> &prob,
           std::vector<std::uint32_t> &alias)
{
    const std::size_t n = pmf.size();
    prob.assign(n, 0.0);
    alias.assign(n, 0);

    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i)
        scaled[i] = pmf[i] * static_cast<double>(n);

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        std::uint32_t s = small.back();
        small.pop_back();
        std::uint32_t l = large.back();
        large.pop_back();
        prob[s] = scaled[s];
        alias[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0)
            small.push_back(l);
        else
            large.push_back(l);
    }
    while (!large.empty()) {
        prob[large.back()] = 1.0;
        large.pop_back();
    }
    while (!small.empty()) {
        prob[small.back()] = 1.0;
        small.pop_back();
    }
}

} // namespace

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
{
    m5_assert(n > 0, "ZipfSampler needs at least one item");
    mass_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mass_[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        sum += mass_[i];
    }
    for (double &m : mass_)
        m /= sum;
    buildAlias(mass_, prob_, alias_);
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const std::size_t i = rng.below(prob_.size());
    return rng.real() < prob_[i] ? i : alias_[i];
}

AliasSampler::AliasSampler(const std::vector<double> &weights)
{
    m5_assert(!weights.empty(), "AliasSampler needs at least one weight");
    double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    m5_assert(sum > 0.0, "AliasSampler needs positive total weight");
    std::vector<double> pmf(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        m5_assert(weights[i] >= 0.0, "negative weight at index %zu", i);
        pmf[i] = weights[i] / sum;
    }
    buildAlias(pmf, prob_, alias_);
}

std::size_t
AliasSampler::sample(Rng &rng) const
{
    const std::size_t i = rng.below(prob_.size());
    return rng.real() < prob_[i] ? i : alias_[i];
}

} // namespace m5
