#include "common/env.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace m5 {
namespace {

/** getenv, treating the empty string as unset. */
const char *
rawEnv(const char *name)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : nullptr;
}

/** True when `end` only has trailing whitespace left. */
bool
fullyConsumed(const char *end)
{
    while (*end) {
        if (!std::isspace(static_cast<unsigned char>(*end)))
            return false;
        ++end;
    }
    return true;
}

} // namespace

std::optional<double>
parseDouble(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || !fullyConsumed(end) || errno == ERANGE)
        return std::nullopt;
    return parsed;
}

std::optional<long>
parseLong(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const long parsed = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || !fullyConsumed(end) || errno == ERANGE)
        return std::nullopt;
    return parsed;
}

std::optional<std::uint64_t>
parseU64(const std::string &s)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || !fullyConsumed(end) || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::uint64_t>(parsed);
}

std::optional<double>
envDouble(const char *name)
{
    const char *v = rawEnv(name);
    if (!v)
        return std::nullopt;
    auto parsed = parseDouble(v);
    if (!parsed)
        m5_warn("ignoring %s='%s': not a valid number", name, v);
    return parsed;
}

std::optional<long>
envLong(const char *name)
{
    const char *v = rawEnv(name);
    if (!v)
        return std::nullopt;
    auto parsed = parseLong(v);
    if (!parsed)
        m5_warn("ignoring %s='%s': not a valid integer", name, v);
    return parsed;
}

std::optional<bool>
envFlag(const char *name)
{
    const char *v = rawEnv(name);
    if (!v)
        return std::nullopt;
    std::string s(v);
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    m5_warn("ignoring %s='%s': not a boolean flag", name, v);
    return std::nullopt;
}

std::optional<std::string>
envString(const char *name)
{
    const char *v = rawEnv(name);
    if (!v)
        return std::nullopt;
    return std::string(v);
}

} // namespace m5
