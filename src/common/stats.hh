/**
 * @file
 * Lightweight statistics: running summaries, percentile reservoirs, and
 * log-bucketed histograms used by the analysis layer and the Redis p99
 * latency measurement.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace m5 {

/** Running mean / min / max / count without storing samples. */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);
    /** Number of samples. */
    std::uint64_t count() const { return n_; }
    /** Arithmetic mean (0 when empty). */
    double mean() const;
    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }
    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }
    /** Sum of samples. */
    double sum() const { return sum_; }
    /** Forget everything. */
    void reset();

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Stores every sample; exact percentiles on demand.  Suitable for the
 *  per-request latency distributions (~1e5-1e6 samples). */
class PercentileTracker
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        samples_.push_back(x);
        sorted_ = false;
    }
    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }
    /**
     * Exact percentile by nearest-rank.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;
    /** Arithmetic mean (0 when empty). */
    double mean() const;
    /** Drop all samples. */
    void reset() { samples_.clear(); }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/** Fixed-bucket histogram over [0, buckets*width). Overflow goes to the
 *  last bucket. */
class Histogram
{
  public:
    /** @param buckets Number of buckets. @param width Bucket width. */
    Histogram(std::size_t buckets, double width);
    /** Add one sample. */
    void add(double x);
    /** Count in bucket i. */
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    /** Number of buckets. */
    std::size_t buckets() const { return counts_.size(); }
    /** Total samples. */
    std::uint64_t total() const { return total_; }
    /** Fraction of samples at or below the upper edge of bucket i. */
    double cdfAt(std::size_t i) const;

  private:
    std::vector<std::uint64_t> counts_;
    double width_;
    std::uint64_t total_ = 0;
};

/**
 * Build an empirical CDF over arbitrary values: given samples, returns for
 * each requested threshold the fraction of samples <= threshold.
 */
std::vector<double> empiricalCdf(std::vector<double> samples,
                                 const std::vector<double> &thresholds);

/** Nearest-rank percentile of a (copied) sample vector. */
double percentileOf(std::vector<double> samples, double p);

/**
 * Jain's fairness index over a per-tenant metric: (Σx)² / (n·Σx²).
 * 1.0 = perfectly even, 1/n = one tenant takes everything.  Defined as
 * 1.0 for empty or all-zero inputs (nothing is being shared unevenly);
 * negative entries are a caller bug and fatal.
 */
double jainIndex(const std::vector<double> &xs);

} // namespace m5
