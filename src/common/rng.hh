/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component takes an explicit seed so whole experiments are
 * reproducible run-to-run; nothing in the library reads wall-clock entropy.
 */

#pragma once

#include <cstdint>
#include <random>

namespace m5 {

/** Seeded pseudo-random source with the helpers the simulator needs. */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed) : gen_(seed) {}

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(gen_);
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
    }

    /** Uniform real in [0, 1). */
    double
    real()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** Geometric-ish exponential sample with the given mean. */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(gen_);
    }

    /** Derive an independent child seed (for sub-components). */
    std::uint64_t
    fork()
    {
        return gen_();
    }

    /** Access the underlying engine (for std:: distributions). */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

} // namespace m5
