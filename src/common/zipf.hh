/**
 * @file
 * O(1) Zipf-distributed sampling via an alias table.
 *
 * Workload models use Zipf(alpha) page popularity to reproduce the per-page
 * access-count CDF shapes of Figure 10.  The alias method precomputes two
 * tables of size n so each sample costs one RNG draw and two loads, which
 * keeps multi-million-access experiments fast.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace m5 {

/** Samples ranks 0..n-1 where rank r has probability proportional to
 *  1/(r+1)^alpha.  Rank 0 is the most popular item. */
class ZipfSampler
{
  public:
    /**
     * Build the alias table.
     *
     * @param n Number of items (> 0).
     * @param alpha Skew parameter; 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double alpha);

    /** Draw one rank. */
    std::size_t sample(Rng &rng) const;

    /** Number of items. */
    std::size_t size() const { return prob_.size(); }

    /** Probability mass of a given rank (for tests and analysis). */
    double mass(std::size_t rank) const { return mass_[rank]; }

  private:
    std::vector<double> prob_;        //!< Alias acceptance probabilities.
    std::vector<std::uint32_t> alias_; //!< Alias targets.
    std::vector<double> mass_;        //!< Normalised pmf (kept for mass()).
};

/** Generic alias-table sampler over an arbitrary discrete distribution. */
class AliasSampler
{
  public:
    /** Build from (unnormalised) non-negative weights; at least one > 0. */
    explicit AliasSampler(const std::vector<double> &weights);

    /** Draw one index. */
    std::size_t sample(Rng &rng) const;

    /** Number of items. */
    std::size_t size() const { return prob_.size(); }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

} // namespace m5
