/**
 * @file
 * M5-manager Nominator — §5.2.
 *
 * Nominator turns HPT/HWT query results into a ranked list of pages to
 * migrate.  It keeps two structures: _HPA (hot-page addresses, each with a
 * 64-bit word mask and an access count) and _HWA (hot-word addresses).
 *
 * Three flavours (Figure 9's configurations):
 *  - HPT-only:   _HPA from HPT; rank purely by page access count.
 *  - HPT-driven: _HPA from HPT; hot words from _HWA set mask bits of the
 *                matching PFN, letting the policy prefer *dense* hot pages
 *                (Guideline 3: mixed dense/sparse apps).
 *  - HWT-driven: _HPA built only from hot-word addresses; the mask-derived
 *                counter ranks pages by how many of their words are hot
 *                (Guideline 4: sparse-only apps such as Redis).
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "os/page_table.hh"
#include "sketch/sorted_topk.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Nominator flavour. */
enum class NominatorKind
{
    HptOnly,
    HptDriven,
    HwtDriven,
};

/** Flavour name for reports. */
std::string nominatorKindName(NominatorKind kind);

/** One _HPA entry. */
struct HpaEntry
{
    Pfn pfn = 0;
    std::uint64_t mask = 0;  //!< Hot-word bits within the page.
    std::uint64_t count = 0; //!< HPT access count / hot-word counter.
};

/** Builds ranked migration candidates from tracker output. */
class Nominator
{
  public:
    /**
     * @param kind Flavour.
     * @param pt Page table for PFN -> VPN translation.
     * @param hpa_capacity Bound on _HPA (entries beyond it evict the
     *        coldest).
     */
    Nominator(NominatorKind kind, const PageTable &pt,
              std::size_t hpa_capacity = 4096);

    /** Feed a fresh HPT query result (ignored by HwtDriven).  `now` is
     *  the simulated time stamped on nominator.track trace events. */
    void updateFromHpt(const std::vector<TopKEntry> &hot_pages,
                       Tick now = 0);

    /** Feed a fresh HWT query result (ignored by HptOnly). */
    void updateFromHwt(const std::vector<TopKEntry> &hot_words,
                       Tick now = 0);

    /**
     * Produce up to max_pages nominated VPNs, best candidate first, and
     * consume the nominated entries.
     */
    std::vector<Vpn> nominate(std::size_t max_pages, Tick now = 0);

    /** Current _HPA contents (tests / inspection). */
    std::vector<HpaEntry> hpa() const;

    /** Flavour. */
    NominatorKind kind() const { return kind_; }

    /** Drop all state. */
    void clear();

    /** nominate() calls served. */
    std::uint64_t nominations() const { return nominations_; }

    /** Total VPNs handed to the Promoter across all nominations. */
    std::uint64_t nominatedPages() const { return nominated_pages_; }

    /** Register nomination counters as `m5.nominator.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    void insertOrUpdate(Pfn pfn, std::uint64_t count, std::uint64_t mask,
                        Tick now);
    void evictColdest();

    NominatorKind kind_;
    const PageTable &pt_;
    std::size_t capacity_;
    std::unordered_map<Pfn, HpaEntry> hpa_;
    std::uint64_t nominations_ = 0;
    std::uint64_t nominated_pages_ = 0;
};

} // namespace m5
