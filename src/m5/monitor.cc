#include "m5/monitor.hh"

#include "common/logging.hh"
#include "telemetry/prof.hh"
#include "telemetry/trace.hh"

namespace m5 {

const char *
monitorDegradeName(MonitorDegrade d)
{
    switch (d) {
      case MonitorDegrade::Full: return "full";
      case MonitorDegrade::HptOnly: return "hpt_only";
      case MonitorDegrade::NoOp: return "noop";
      default: m5_panic("bad MonitorDegrade %u", static_cast<unsigned>(d));
    }
}

Monitor::Monitor(const MemorySystem &mem, const PageTable &pt)
    : mem_(mem), pt_(pt),
      last_read_bytes_(mem.tiers(), 0),
      bw_(mem.tiers(), 0.0)
{
}

void
Monitor::sample(Tick now)
{
    PROF_SCOPE("m5.monitor.sample");
    const Tick elapsed = now > last_sample_ ? now - last_sample_ : 0;
    for (std::size_t n = 0; n < mem_.tiers(); ++n) {
        const std::uint64_t bytes =
            mem_.tier(static_cast<NodeId>(n)).counters().read_bytes;
        if (elapsed > 0) {
            bw_[n] = static_cast<double>(bytes - last_read_bytes_[n]) /
                     (static_cast<double>(elapsed) * 1e-9);
        }
        last_read_bytes_[n] = bytes;
    }
    last_sample_ = now;
    if (mem_.tiers() > kNodeCxl) {
        TRACE_EVENT(TraceCat::Monitor, now, "monitor.sample",
            TraceArgs()
                .d("bw_ddr", bw(kNodeDdr))
                .d("bw_cxl", bwLower())
                .d("bw_den_ddr", bwDen(kNodeDdr))
                .d("bw_den_cxl", bwDenLower())
                .u("free_ddr", freeFrames(kNodeDdr)));
    }
}

std::size_t
Monitor::nrPages(NodeId node) const
{
    return pt_.pagesOnNode(node);
}

double
Monitor::bw(NodeId node) const
{
    m5_assert(node < bw_.size(), "no node %u", node);
    return bw_[node];
}

double
Monitor::bwDen(NodeId node) const
{
    const std::size_t pages = nrPages(node);
    return pages ? bw(node) / static_cast<double>(pages) : 0.0;
}

double
Monitor::bwLower() const
{
    double t = 0.0;
    for (std::size_t n = 1; n < bw_.size(); ++n)
        t += bw_[n];
    return t;
}

double
Monitor::bwDenLower() const
{
    std::size_t pages = 0;
    for (std::size_t n = 1; n < bw_.size(); ++n)
        pages += nrPages(static_cast<NodeId>(n));
    return pages ? bwLower() / static_cast<double>(pages) : 0.0;
}

double
Monitor::bwTot() const
{
    double t = 0.0;
    for (double b : bw_)
        t += b;
    return t;
}

double
Monitor::relBwDen(NodeId node) const
{
    const double tot = bwTot();
    return tot > 0.0 ? bwDen(node) / tot : 0.0;
}

std::size_t
Monitor::freeFrames(NodeId node) const
{
    const std::size_t total = mem_.tier(node).framesTotal();
    const std::size_t used = pt_.pagesOnNode(node);
    return total > used ? total - used : 0;
}

void
Monitor::noteMmioQuery(bool primary, bool stale)
{
    const MonitorDegrade before = degrade();
    std::uint64_t &run = primary ? primary_stale_run_
                                 : secondary_stale_run_;
    if (stale) {
        ++stale_mmio_;
        ++run;
    } else {
        run = 0;
    }
    const MonitorDegrade after = degrade();
    if (after != before) {
        if (after == MonitorDegrade::NoOp)
            ++degrade_noop_;
        else if (after == MonitorDegrade::HptOnly)
            ++degrade_hpt_only_;
    }
}

MonitorDegrade
Monitor::degrade() const
{
    if (primary_stale_run_ >= kStaleRunThreshold)
        return MonitorDegrade::NoOp;
    if (secondary_stale_run_ >= kStaleRunThreshold)
        return MonitorDegrade::HptOnly;
    return MonitorDegrade::Full;
}

void
Monitor::registerStats(StatRegistry &reg, bool faults_active) const
{
    // Gauges re-read the Monitor at sampling time, so telemetry exports
    // exactly what the Elector last saw — the same memory, not a copy.
    for (std::size_t n = 0; n < mem_.tiers(); ++n) {
        const auto node = static_cast<NodeId>(n);
        const std::string tier = mem_.tier(node).config().name;
        reg.addGauge("m5.monitor.bw_" + tier,
                     [this, node] { return bw(node); });
        reg.addGauge("m5.monitor.bw_den_" + tier,
                     [this, node] { return bwDen(node); });
        reg.addGauge("m5.monitor.rel_bw_den_" + tier,
                     [this, node] { return relBwDen(node); });
        reg.addGauge("m5.monitor.nr_pages_" + tier, [this, node] {
            return static_cast<double>(nrPages(node));
        });
        reg.addGauge("m5.monitor.free_frames_" + tier, [this, node] {
            return static_cast<double>(freeFrames(node));
        });
    }
    reg.addGauge("m5.monitor.bw_tot", [this] { return bwTot(); });
    if (faults_active) {
        reg.addCounter("m5.monitor.stale_mmio", &stale_mmio_);
        reg.addCounter("m5.monitor.degrade_hpt_only", &degrade_hpt_only_);
        reg.addCounter("m5.monitor.degrade_noop", &degrade_noop_);
    }
}

} // namespace m5
