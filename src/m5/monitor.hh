/**
 * @file
 * M5-manager Monitor — §5.2, Table 1.
 *
 * Monitor samples tiered-memory utilisation the way the real system does
 * with pcm + /proc/zoneinfo: nr_pages(node) from page residency, bw(node)
 * as the read-byte delta over the elapsed interval, and bw_den(node) =
 * bw(node) / nr_pages(node).  Only read bandwidth is reported, because
 * under write-allocate every LLC write miss first performs a read (§5.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/memsys.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/**
 * Nomination degradation ladder under stale MMIO (docs/FAULTS.md).
 *
 * When tracker snapshots stop arriving the Monitor steps the manager
 * down instead of letting it act on dead data: Full (all configured
 * trackers fresh) -> HptOnly (the secondary HWT is stale; fall back to
 * page-granular HPT data) -> NoOp (the primary tracker is stale; stop
 * nominating until it recovers).
 */
enum class MonitorDegrade : std::uint8_t
{
    Full = 0,
    HptOnly,
    NoOp,
};

/** Human-readable degradation level name. */
const char *monitorDegradeName(MonitorDegrade d);

/** Sampled utilisation statistics for the migration policy. */
class Monitor
{
  public:
    Monitor(const MemorySystem &mem, const PageTable &pt);

    /** Take a sample; bandwidths cover [previous sample, now]. */
    void sample(Tick now);

    /** Number of pages resident on a node (pcp-zoneinfo). */
    std::size_t nrPages(NodeId node) const;

    /** Consumed read bandwidth of a node in bytes/s over the last
     *  sampling interval (pcm). */
    double bw(NodeId node) const;

    /** bw(node) per allocated page: the hot-page density metric. */
    double bwDen(NodeId node) const;

    /** Aggregate read bandwidth of every tier below the top — the
     *  "CXL side" of an N-tier topology (equals bw(kNodeCxl) for the
     *  default pair). */
    double bwLower() const;

    /** Aggregate bw-density of the lower tiers: their summed bandwidth
     *  over their summed residency (bit-identical to bwDen(kNodeCxl)
     *  when there is a single lower tier). */
    double bwDenLower() const;

    /** bw(DDR) + bw(CXL): proportional to application performance for a
     *  given phase (§5.2). */
    double bwTot() const;

    /** bw_den(node) normalized by bw_tot, robust to phase changes. */
    double relBwDen(NodeId node) const;

    /** Frames still unused on a node (zoneinfo free counters). */
    std::size_t freeFrames(NodeId node) const;

    /**
     * Record the freshness of one tracker MMIO query.  `primary` marks
     * the tracker the flavour cannot nominate without (the HPT for
     * HPT-driven flavours, the HWT for HWT-driven); the HPT+HWT flavour
     * reports its HWT as secondary.  Three consecutive stale snapshots
     * from a role step the ladder down; one fresh snapshot resets it.
     */
    void noteMmioQuery(bool primary, bool stale);

    /** Current nomination degradation level. */
    MonitorDegrade degrade() const;

    /** Stale MMIO snapshots observed so far. */
    std::uint64_t staleMmio() const { return stale_mmio_; }

    /**
     * Register the Table 1 metrics as `m5.monitor.*` gauges; the stale
     * MMIO / degradation counters only under fault injection
     * (docs/FAULTS.md).
     */
    void registerStats(StatRegistry &reg, bool faults_active = false) const;

    /** Consecutive stale snapshots that trigger a degradation step. */
    static constexpr std::uint64_t kStaleRunThreshold = 3;

  private:
    const MemorySystem &mem_;
    const PageTable &pt_;
    Tick last_sample_ = 0;
    std::vector<std::uint64_t> last_read_bytes_;
    std::vector<double> bw_; //!< bytes/s per node over the last interval.

    std::uint64_t stale_mmio_ = 0;
    std::uint64_t primary_stale_run_ = 0;
    std::uint64_t secondary_stale_run_ = 0;
    std::uint64_t degrade_hpt_only_ = 0; //!< Entries into HptOnly.
    std::uint64_t degrade_noop_ = 0;     //!< Entries into NoOp.
};

} // namespace m5
