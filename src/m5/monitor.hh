/**
 * @file
 * M5-manager Monitor — §5.2, Table 1.
 *
 * Monitor samples tiered-memory utilisation the way the real system does
 * with pcm + /proc/zoneinfo: nr_pages(node) from page residency, bw(node)
 * as the read-byte delta over the elapsed interval, and bw_den(node) =
 * bw(node) / nr_pages(node).  Only read bandwidth is reported, because
 * under write-allocate every LLC write miss first performs a read (§5.2).
 */

#pragma once

#include <vector>

#include "common/types.hh"
#include "mem/memsys.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Sampled utilisation statistics for the migration policy. */
class Monitor
{
  public:
    Monitor(const MemorySystem &mem, const PageTable &pt);

    /** Take a sample; bandwidths cover [previous sample, now]. */
    void sample(Tick now);

    /** Number of pages resident on a node (pcp-zoneinfo). */
    std::size_t nrPages(NodeId node) const;

    /** Consumed read bandwidth of a node in bytes/s over the last
     *  sampling interval (pcm). */
    double bw(NodeId node) const;

    /** bw(node) per allocated page: the hot-page density metric. */
    double bwDen(NodeId node) const;

    /** bw(DDR) + bw(CXL): proportional to application performance for a
     *  given phase (§5.2). */
    double bwTot() const;

    /** bw_den(node) normalized by bw_tot, robust to phase changes. */
    double relBwDen(NodeId node) const;

    /** Frames still unused on a node (zoneinfo free counters). */
    std::size_t freeFrames(NodeId node) const;

    /** Register the Table 1 metrics as `m5.monitor.*` gauges. */
    void registerStats(StatRegistry &reg) const;

  private:
    const MemorySystem &mem_;
    const PageTable &pt_;
    Tick last_sample_ = 0;
    std::vector<std::uint64_t> last_read_bytes_;
    std::vector<double> bw_; //!< bytes/s per node over the last interval.
};

} // namespace m5
