#include "m5/nominator.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "telemetry/prof.hh"
#include "telemetry/trace.hh"

namespace m5 {

std::string
nominatorKindName(NominatorKind kind)
{
    switch (kind) {
      case NominatorKind::HptOnly:
        return "HPT";
      case NominatorKind::HptDriven:
        return "HPT+HWT";
      case NominatorKind::HwtDriven:
        return "HWT";
    }
    m5_panic("unknown NominatorKind");
}

Nominator::Nominator(NominatorKind kind, const PageTable &pt,
                     std::size_t hpa_capacity)
    : kind_(kind), pt_(pt), capacity_(hpa_capacity)
{
    m5_assert(hpa_capacity > 0, "Nominator needs _HPA capacity");
}

void
Nominator::evictColdest()
{
    auto coldest = hpa_.begin();
    for (auto it = hpa_.begin(); it != hpa_.end(); ++it) {
        if (it->second.count < coldest->second.count)
            coldest = it;
    }
    hpa_.erase(coldest);
}

void
Nominator::insertOrUpdate(Pfn pfn, std::uint64_t count, std::uint64_t mask,
                          Tick now)
{
    auto it = hpa_.find(pfn);
    if (it != hpa_.end()) {
        it->second.count = std::max(it->second.count, count);
        it->second.mask |= mask;
        return;
    }
    if (hpa_.size() >= capacity_)
        evictColdest();
    hpa_.emplace(pfn, HpaEntry{pfn, mask, count});
    TRACE_EVENT(TraceCat::Nominate, now, "nominator.track",
                TraceArgs().u("page", pt_.vpnOfPfn(pfn))
                           .u("pfn", pfn)
                           .u("count", count));
}

void
Nominator::updateFromHpt(const std::vector<TopKEntry> &hot_pages, Tick now)
{
    if (kind_ == NominatorKind::HwtDriven)
        return;
    for (const auto &e : hot_pages)
        insertOrUpdate(e.tag, e.count, 0, now);
}

void
Nominator::updateFromHwt(const std::vector<TopKEntry> &hot_words, Tick now)
{
    if (kind_ == NominatorKind::HptOnly)
        return;

    for (const auto &e : hot_words) {
        const Addr pa = e.tag << kWordShift;
        const Pfn pfn = pfnOf(pa);
        const std::uint64_t bit = 1ULL << wordInPage(pa);
        if (kind_ == NominatorKind::HptDriven) {
            // Only annotate pages already nominated by HPT.
            auto it = hpa_.find(pfn);
            if (it != hpa_.end())
                it->second.mask |= bit;
        } else {
            // HWT-driven: build _HPA from words alone; the mask's
            // population count serves as the access count (§5.2).
            auto it = hpa_.find(pfn);
            if (it != hpa_.end()) {
                it->second.mask |= bit;
                it->second.count =
                    std::popcount(it->second.mask);
            } else {
                if (hpa_.size() >= capacity_)
                    evictColdest();
                hpa_.emplace(pfn, HpaEntry{pfn, bit, 1});
                TRACE_EVENT(TraceCat::Nominate, now, "nominator.track",
                            TraceArgs().u("page", pt_.vpnOfPfn(pfn))
                                       .u("pfn", pfn)
                                       .u("count", 1));
            }
        }
    }
}

std::vector<Vpn>
Nominator::nominate(std::size_t max_pages, Tick now)
{
    PROF_SCOPE("m5.nominator.nominate");
    std::vector<HpaEntry> ranked;
    ranked.reserve(hpa_.size());
    for (const auto &[pfn, e] : hpa_)
        ranked.push_back(e);

    // HPT-driven prefers dense hot pages: more set mask bits first, count
    // as tie-break.  The other flavours rank by count.
    if (kind_ == NominatorKind::HptDriven) {
        std::sort(ranked.begin(), ranked.end(),
            [](const HpaEntry &a, const HpaEntry &b) {
                const int da = std::popcount(a.mask);
                const int db = std::popcount(b.mask);
                if (da != db)
                    return da > db;
                return a.count > b.count;
            });
    } else {
        std::sort(ranked.begin(), ranked.end(),
            [](const HpaEntry &a, const HpaEntry &b) {
                return a.count > b.count;
            });
    }

    std::vector<Vpn> out;
    for (const auto &e : ranked) {
        if (out.size() >= max_pages)
            break;
        const Vpn vpn = pt_.vpnOfPfn(e.pfn);
        // Stale frames (the page was migrated away; the copy reads made
        // the *old* frame look hot to HPT) are dropped, never nominated.
        hpa_.erase(e.pfn);
        if (vpn >= pt_.numPages())
            continue;
        TRACE_EVENT(TraceCat::Nominate, now, "nominator.nominate",
                    TraceArgs().u("page", vpn)
                               .u("pfn", e.pfn)
                               .u("count", e.count)
                               .s("mask", strprintf("0x%016llx",
                                   static_cast<unsigned long long>(
                                       e.mask))));
        out.push_back(vpn);
    }
    ++nominations_;
    nominated_pages_ += out.size();
    return out;
}

std::vector<HpaEntry>
Nominator::hpa() const
{
    std::vector<HpaEntry> out;
    out.reserve(hpa_.size());
    for (const auto &[pfn, e] : hpa_)
        out.push_back(e);
    std::sort(out.begin(), out.end(),
        [](const HpaEntry &a, const HpaEntry &b) { return a.pfn < b.pfn; });
    return out;
}

void
Nominator::clear()
{
    hpa_.clear();
}

void
Nominator::registerStats(StatRegistry &reg) const
{
    reg.addCounter("m5.nominator.nominations", &nominations_);
    reg.addCounter("m5.nominator.nominated_pages", &nominated_pages_);
    reg.addGauge("m5.nominator.hpa_entries",
                 [this] { return static_cast<double>(hpa_.size()); });
}

} // namespace m5
