/**
 * @file
 * Hot huge-page tracking — the §8 extension.
 *
 * Applications using 2MB huge pages need hotness at huge-page
 * granularity.  The paper proposes two routes: (1) aggregate HPT's hot
 * 4KB page addresses into their enclosing 2MB regions (like the
 * Nominator derives 4KB pages from HWT's hot words), or (2) deploy a
 * second HPT keyed by 2MB frame numbers.  Both are provided here; either
 * way M5 must consult the OS about which regions actually are allocated
 * huge pages before migrating, modelled by a caller-supplied filter.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sketch/sorted_topk.hh"

namespace m5 {

/** 4KB pages per 2MB huge page. */
inline constexpr unsigned kPagesPerHugePage = 512;

/** 2MB huge-frame number of a 4KB PFN. */
constexpr std::uint64_t
hugeFrameOf(Pfn pfn)
{
    return pfn / kPagesPerHugePage;
}

/** Route 1: aggregate hot 4KB PFN reports into 2MB-region hotness. */
class HugePageAggregator
{
  public:
    /**
     * @param os_filter Optional predicate: true when the 2MB region is an
     *        allocated huge page (the §8 "consult the OS" step).  Null
     *        accepts everything.
     */
    explicit HugePageAggregator(
        std::function<bool(std::uint64_t)> os_filter = nullptr);

    /** Feed one HPT query result (hot 4KB PFNs with counts). */
    void update(const std::vector<TopKEntry> &hot_pages);

    /** The k hottest 2MB regions by accumulated count, filtered. */
    std::vector<TopKEntry> topHugePages(std::size_t k) const;

    /** Accumulated count of one 2MB region. */
    std::uint64_t count(std::uint64_t huge_frame) const;

    /** Distinct 4KB pages observed within a region (density signal:
     *  a region hot through many constituent pages is uniformly hot). */
    unsigned constituentPages(std::uint64_t huge_frame) const;

    /** Epoch reset. */
    void reset();

  private:
    struct Entry
    {
        std::uint64_t count = 0;
        std::uint64_t page_mask_lo = 0; //!< Coarse constituent bitmap
        std::uint64_t page_mask_hi = 0; //!< (512 pages -> 128 x 4-page
                                        //!< buckets over two words).
    };

    std::function<bool(std::uint64_t)> os_filter_;
    std::unordered_map<std::uint64_t, Entry> regions_;
};

} // namespace m5
