#include "m5/hugepage.hh"

#include <algorithm>
#include <bit>

namespace m5 {

HugePageAggregator::HugePageAggregator(
    std::function<bool(std::uint64_t)> os_filter)
    : os_filter_(std::move(os_filter))
{
}

void
HugePageAggregator::update(const std::vector<TopKEntry> &hot_pages)
{
    for (const auto &e : hot_pages) {
        Entry &region = regions_[hugeFrameOf(e.tag)];
        region.count += e.count;
        // 512 constituent pages bucketed 4-per-bit across two words.
        const unsigned bucket =
            static_cast<unsigned>(e.tag % kPagesPerHugePage) / 4;
        if (bucket < 64)
            region.page_mask_lo |= 1ULL << bucket;
        else
            region.page_mask_hi |= 1ULL << (bucket - 64);
    }
}

std::vector<TopKEntry>
HugePageAggregator::topHugePages(std::size_t k) const
{
    std::vector<TopKEntry> out;
    out.reserve(regions_.size());
    for (const auto &[frame, entry] : regions_) {
        if (os_filter_ && !os_filter_(frame))
            continue;
        out.push_back({frame, entry.count});
    }
    std::sort(out.begin(), out.end(),
        [](const TopKEntry &a, const TopKEntry &b) {
            if (a.count != b.count)
                return a.count > b.count;
            return a.tag < b.tag;
        });
    if (out.size() > k)
        out.resize(k);
    return out;
}

std::uint64_t
HugePageAggregator::count(std::uint64_t huge_frame) const
{
    auto it = regions_.find(huge_frame);
    return it == regions_.end() ? 0 : it->second.count;
}

unsigned
HugePageAggregator::constituentPages(std::uint64_t huge_frame) const
{
    auto it = regions_.find(huge_frame);
    if (it == regions_.end())
        return 0;
    return static_cast<unsigned>(std::popcount(it->second.page_mask_lo) +
                                 std::popcount(it->second.page_mask_hi));
}

void
HugePageAggregator::reset()
{
    regions_.clear();
}

} // namespace m5
