/**
 * @file
 * M5-manager Promoter — §5.2.
 *
 * Promoter is the in-kernel half of M5-manager: it receives hot-page
 * addresses (via a proc-file write in the real system), validates that
 * each page may be safely migrated — rejecting DMA-pinned pages and pages
 * the user explicitly bound to the CXL node — and invokes migrate_pages().
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Promoter outcome counters. */
struct PromoterStats
{
    std::uint64_t requested = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
};

/** Validates and launches migrations for Elector-approved pages. */
class Promoter
{
  public:
    Promoter(const PageTable &pt, MigrationEngine &engine);

    /**
     * Model a proc-file write of nominated pages followed by
     * migrate_pages() on the safe subset.
     *
     * @return Time consumed by the migrations.
     */
    Tick promote(const std::vector<Vpn> &vpns, Tick now);

    /** Statistics. */
    const PromoterStats &stats() const { return stats_; }

    /** Register outcome counters as `m5.promoter.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    const PageTable &pt_;
    MigrationEngine &engine_;
    PromoterStats stats_;
};

} // namespace m5
