/**
 * @file
 * M5-manager Promoter — §5.2.
 *
 * Promoter is the in-kernel half of M5-manager: it receives hot-page
 * addresses (via a proc-file write in the real system), validates that
 * each page may be safely migrated — rejecting DMA-pinned pages and pages
 * the user explicitly bound to the CXL node — and invokes migrate_pages().
 *
 * migrate_pages() can fail transiently (EBUSY, refcount races, target
 * allocation failure — see docs/FAULTS.md), so the Promoter keeps a
 * bounded retry queue: a transiently failed page is re-attempted on a
 * later wake with exponential backoff, and dropped with a reason after
 * too many attempts or when the queue is full.  A dropped page is not
 * lost — if it stays hot, the Nominator elects it again.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Retry policy for transiently failed promotions. */
struct RetryConfig
{
    //! Attempts per page before dropping (first try included).
    std::uint64_t max_attempts = 3;
    //! Backoff before the first retry; doubles per further attempt.
    Tick backoff_base = usToTicks(200);
    //! Bounded pending-retry queue; overflow drops the newest failure.
    std::size_t queue_capacity = 256;
};

/** Promoter outcome counters. */
struct PromoterStats
{
    std::uint64_t requested = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t retried = 0;         //!< Retry attempts issued.
    std::uint64_t retry_succeeded = 0; //!< Retries that landed the page.
    std::uint64_t dropped = 0;         //!< Pages dropped from the queue.
};

/** One promotion round's outcome (Manager feeds this to the Elector's
 *  circuit breaker). */
struct [[nodiscard]] PromoteRound
{
    Tick busy = 0;
    std::uint64_t attempted = 0; //!< migrate_pages() attempts issued.
    std::uint64_t failed = 0;    //!< Transient failures among them.
};

/** Validates and launches migrations for Elector-approved pages. */
class Promoter
{
  public:
    Promoter(const PageTable &pt, MigrationEngine &engine,
             const RetryConfig &retry = {});

    /**
     * Model a proc-file write of nominated pages followed by
     * migrate_pages() on the safe subset.  Due retries from earlier
     * rounds are re-attempted first.
     */
    PromoteRound promote(const std::vector<Vpn> &vpns, Tick now);

    /** Statistics. */
    const PromoterStats &stats() const { return stats_; }

    /** Transiently failed pages awaiting a retry. */
    std::size_t pendingRetries() const { return retry_queue_.size(); }

    /** Register outcome counters as `m5.promoter.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    struct RetryEntry
    {
        Vpn vpn = 0;
        std::uint64_t attempts = 0; //!< Attempts made so far.
        Tick not_before = 0;        //!< Earliest retry time.
    };

    /** Queue a transient failure, or drop it with a reason. */
    void noteTransient(Vpn vpn, std::uint64_t attempts, Tick now);

    /** Drop a page from the retry pipeline. */
    void drop(Vpn vpn, Tick now, const char *reason);

    const PageTable &pt_;
    MigrationEngine &engine_;
    RetryConfig retry_;
    PromoterStats stats_;
    std::deque<RetryEntry> retry_queue_;
};

} // namespace m5
