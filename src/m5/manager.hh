/**
 * @file
 * M5-manager — §5.2, Figure 6.
 *
 * The manager is a user-space control loop (only Promoter's validation and
 * migrate_pages() call are in-kernel).  Each wakeup it:
 *   1. samples Monitor,
 *   2. queries HPT (and HWT, depending on the Nominator flavour) over the
 *      MMIO interface, feeding the Nominator,
 *   3. runs one Elector iteration; if it approves, Promoter migrates the
 *      Nominator's ranked candidates,
 *   4. sleeps for the Elector-chosen period T.
 *
 * Its CPU cost is intentionally tiny — a few thousand cycles per wakeup —
 * which is the source of M5's advantage over ANB/DAMON on latency-sensitive
 * workloads (Figure 9, Redis).
 */

#pragma once

#include <memory>
#include <string>

#include "cxl/controller.hh"
#include "m5/elector.hh"
#include "m5/monitor.hh"
#include "m5/nominator.hh"
#include "m5/promoter.hh"
#include "os/daemon.hh"
#include "os/kernel_ledger.hh"
#include "os/migration.hh"
#include "os/tenant.hh"

namespace m5 {

/** M5-manager tunables. */
struct M5Config
{
    NominatorKind nominator = NominatorKind::HptDriven;
    ElectorConfig elector;
    RetryConfig retry; //!< Promoter retry/backoff (docs/FAULTS.md).
    std::size_t migrate_batch = 64; //!< Max pages promoted per wakeup.
    bool migrate = true;             //!< False = record-only (Figure 8).
    std::size_t hot_list_capacity = 128 * 1024;
    std::size_t hpa_capacity = 4096;
};

/** The M5 page-migration daemon. */
class M5Manager : public PolicyDaemon
{
  public:
    M5Manager(const M5Config &cfg, CxlController &ctrl, Monitor &monitor,
              const PageTable &pt, MigrationEngine &engine,
              KernelLedger &ledger);

    Tick nextWake() const override { return next_wake_; }
    Tick wake(Tick now) override;
    std::string name() const override;
    const HotPageList &hotPages() const override { return hot_list_; }

    /** Component accessors for inspection and tests. @{ */
    const Nominator &nominator() const { return nominator_; }
    const Elector &elector() const { return elector_; }
    const Promoter &promoter() const { return promoter_; }
    /** @} */

    /** Number of wakeups executed. */
    std::uint64_t wakeups() const { return wakeups_; }

    /**
     * Attach a fault injector (nullptr detaches).  Stale-MMIO injection
     * and the degradation ladder only operate while one is attached;
     * must precede registerStats so resilience counters are gated
     * consistently (docs/FAULTS.md).
     */
    void attachFaults(FaultInjector *faults) { faults_ = faults; }

    /**
     * Attach the tenant table (nullptr detaches): each wakeup's
     * migration batch is then budgeted per tenant in proportion to its
     * share (fair election context, docs/MULTITENANT.md), so one
     * tenant's hot streak cannot monopolize every batch.  Deferred
     * candidates stay hot and are renominated later.  Must precede
     * registerStats so the quota counter is gated consistently.
     */
    void attachTenants(TenantTable *tenants) { tenants_ = tenants; }

    /** Register `m5.manager.wakeups` plus all sub-component stats. */
    void registerStats(StatRegistry &reg) const;

  private:
    /** Apply the per-tenant batch quota to nominated candidates. */
    std::vector<Vpn> applyTenantQuota(std::vector<Vpn> candidates);

    M5Config cfg_;
    CxlController &ctrl_;
    Monitor &monitor_;
    KernelLedger &ledger_;
    FaultInjector *faults_ = nullptr; //!< Not owned; may be null.
    TenantTable *tenants_ = nullptr;  //!< Not owned; may be null.
    std::uint64_t quota_deferrals_ = 0; //!< Candidates pushed to later
                                        //!< batches by the tenant quota.

    Nominator nominator_;
    Elector elector_;
    Promoter promoter_;
    HotPageList hot_list_;

    Tick next_wake_ = usToTicks(100.0);
    std::uint64_t wakeups_ = 0;
};

} // namespace m5
