#include "m5/manager.hh"

#include "common/logging.hh"
#include "os/costs.hh"
#include "telemetry/prof.hh"
#include "telemetry/trace.hh"

namespace m5 {

M5Manager::M5Manager(const M5Config &cfg, CxlController &ctrl,
                     Monitor &monitor, const PageTable &pt,
                     MigrationEngine &engine, KernelLedger &ledger)
    : cfg_(cfg), ctrl_(ctrl), monitor_(monitor), ledger_(ledger),
      nominator_(cfg.nominator, pt, cfg.hpa_capacity),
      elector_(cfg.elector),
      promoter_(pt, engine, cfg.retry),
      hot_list_(cfg.hot_list_capacity)
{
    m5_assert(ctrl.hasHpt() || cfg.nominator == NominatorKind::HwtDriven,
              "M5Manager needs an HPT unless HWT-driven");
    m5_assert(ctrl.hasHwt() || cfg.nominator == NominatorKind::HptOnly,
              "M5Manager needs an HWT unless HPT-only");
}

std::string
M5Manager::name() const
{
    return "M5(" + nominatorKindName(cfg_.nominator) + ")";
}

Tick
M5Manager::wake(Tick now)
{
    // One wake per epoch of the decision pipeline: the scope's call
    // count doubles as the per-epoch phase marker (docs/PROFILING.md).
    PROF_SCOPE("m5.manager.wake");
    ++wakeups_;
    Cycles cycles = cost::kElectorEvaluate;

    monitor_.sample(now);

    // Query the trackers the Nominator flavour needs.  Under fault
    // injection a query can come back stale (docs/FAULTS.md): the MMIO
    // round trip is still paid, but the snapshot is discarded — the
    // tracker keeps accumulating — and the Monitor's degradation ladder
    // is informed.  The "primary" role marks the tracker this flavour
    // cannot nominate without.
    if (cfg_.nominator != NominatorKind::HwtDriven && ctrl_.hasHpt()) {
        cycles += cost::kTrackerQuery;
        const bool stale =
            faults_ && faults_->fires(FaultPoint::MmioStale, now);
        if (stale) {
            ctrl_.noteMmioTimeout();
            monitor_.noteMmioQuery(/*primary=*/true, /*stale=*/true);
            TRACE_EVENT(TraceCat::Cxl, now, "hpt.stale",
                        TraceArgs().s("reason", "mmio_timeout"));
        } else {
            auto hot_pages = ctrl_.hpt().queryAndReset();
            TRACE_EVENT(TraceCat::Cxl, now, "hpt.query",
                        TraceArgs().u("entries", hot_pages.size()));
            for (const auto &e : hot_pages)
                hot_list_.add(e.tag);
            nominator_.updateFromHpt(hot_pages, now);
            if (faults_)
                monitor_.noteMmioQuery(/*primary=*/true, /*stale=*/false);
        }
    }
    if (cfg_.nominator != NominatorKind::HptOnly && ctrl_.hasHwt()) {
        const bool primary = cfg_.nominator == NominatorKind::HwtDriven;
        cycles += cost::kTrackerQuery;
        const bool stale =
            faults_ && faults_->fires(FaultPoint::MmioStale, now);
        if (stale) {
            ctrl_.noteMmioTimeout();
            monitor_.noteMmioQuery(primary, /*stale=*/true);
            TRACE_EVENT(TraceCat::Cxl, now, "hwt.stale",
                        TraceArgs().s("reason", "mmio_timeout"));
        } else {
            auto hot_words = ctrl_.hwt().queryAndReset();
            TRACE_EVENT(TraceCat::Cxl, now, "hwt.query",
                        TraceArgs().u("entries", hot_words.size()));
            if (primary) {
                for (const auto &e : hot_words)
                    hot_list_.add(pfnOf(e.tag << kWordShift));
            }
            nominator_.updateFromHwt(hot_words, now);
            if (faults_)
                monitor_.noteMmioQuery(primary, /*stale=*/false);
        }
    }

    ledger_.charge(KernelWork::ManagerUser, cycles);
    Tick elapsed = cyclesToNs(cycles);

    const ElectorDecision decision = elector_.evaluate(monitor_);
    // The Elector's inputs and verdict, with Algorithm 1's reason: the
    // bootstrap fill, an improving rel_bw_den(DDR), a stall — or the
    // circuit breaker withholding the round after a failure spike.
    TRACE_EVENT(TraceCat::Elect, now, "elector.decision",
        TraceArgs()
            .u("migrate", decision.migrate ? 1 : 0)
            .u("period", decision.period)
            .d("bw_den_ddr", monitor_.bwDen(kNodeDdr))
            .d("bw_den_cxl", monitor_.bwDenLower())
            .d("rel_bw_den_ddr", decision.rel_bw_den_ddr)
            .s("reason", decision.breaker_open
                   ? "breaker_open"
                   : monitor_.freeFrames(kNodeDdr) > 0
                   ? "bootstrap"
                   : (decision.migrate ? "improved" : "stalled")));
    // NoOp on the ladder means the primary tracker has gone stale:
    // nominating from dead data would migrate yesterday's hot set.
    const bool degraded_noop =
        faults_ && monitor_.degrade() == MonitorDegrade::NoOp;
    if (decision.migrate && cfg_.migrate && degraded_noop) {
        TRACE_EVENT(TraceCat::Elect, now, "m5.nominate_skip",
                    TraceArgs().s("reason",
                                  monitorDegradeName(monitor_.degrade())));
    }
    if (decision.migrate && cfg_.migrate && !degraded_noop) {
        auto candidates = nominator_.nominate(cfg_.migrate_batch, now);
        if (tenants_)
            candidates = applyTenantQuota(std::move(candidates));
        const PromoteRound round =
            promoter_.promote(candidates, now + elapsed);
        elapsed += round.busy;
        elector_.noteBatchOutcome(round.attempted, round.failed);
    }

    Tick period = decision.period;
    if (!cfg_.migrate) {
        // Record-only profiling (Figure 8): without migration, DDR never
        // fills, so the Elector would stay in its bootstrap fast-path
        // forever; query at the paper's 1ms profiling rate instead.
        period = std::max(period, msToTicks(1.0));
    }
    next_wake_ = now + period;
    TRACE_SPAN(TraceCat::Sim, now, elapsed, "m5.wake",
               TraceArgs().u("wakeup", wakeups_)
                          .u("period", period));
    return elapsed;
}

std::vector<Vpn>
M5Manager::applyTenantQuota(std::vector<Vpn> candidates)
{
    // Fair election context (docs/MULTITENANT.md): tenant t may take at
    // most ceil(batch * share_t / total_share) slots of this batch, in
    // nominator rank order.  Overflow candidates are deferred, not
    // dropped — they stay hot and the trackers renominate them — so the
    // quota shapes *which batch* a page rides, never whether it moves.
    std::uint64_t total_share = 0;
    for (std::size_t t = 0; t < tenants_->count(); ++t)
        total_share += tenants_->entry(static_cast<TenantId>(t)).share;
    std::vector<std::size_t> taken(tenants_->count(), 0);
    std::vector<Vpn> kept;
    kept.reserve(candidates.size());
    for (Vpn vpn : candidates) {
        const TenantId t = tenants_->tenantOf(vpn);
        const std::size_t quota = static_cast<std::size_t>(
            (cfg_.migrate_batch * tenants_->entry(t).share +
             total_share - 1) / total_share);
        if (taken[t] >= quota) {
            ++quota_deferrals_;
            tenants_->counters(t).quota_deferred += 1;
            continue;
        }
        ++taken[t];
        tenants_->counters(t).nominated += 1;
        kept.push_back(vpn);
    }
    return kept;
}

void
M5Manager::registerStats(StatRegistry &reg) const
{
    reg.addCounter("m5.manager.wakeups", &wakeups_);
    // Gated like the fault counters: the quota only exists for
    // multi-tenant runs, whose telemetry carries the row; single-tenant
    // JSONL stays byte-identical (docs/MULTITENANT.md).
    if (tenants_)
        reg.addCounter("m5.manager.tenant_quota_deferrals",
                       &quota_deferrals_);
    nominator_.registerStats(reg);
    elector_.registerStats(reg, faults_ != nullptr);
    promoter_.registerStats(reg);
}

} // namespace m5
