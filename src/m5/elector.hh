/**
 * @file
 * M5-manager Elector — §5.2 Algorithm 1.
 *
 * The Elector paces migration by the bandwidth-density ratio
 * bw_den(CXL)/bw_den(DDR) (Guideline 1: high CXL density means hot pages
 * wait there, so migrate soon and aggressively), and gates migration on
 * rel_bw_den(DDR) still increasing (Guideline 2: keep going while the last
 * batch helped).  fscale() is pluggable; the paper's sample policy uses
 * y = x^n with n in 3..6.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "m5/monitor.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Elector tunables. */
struct ElectorConfig
{
    //! Default migration frequency in events per second of simulated time.
    double f_default = 1000.0;
    //! Exponent n of the default fscale(x) = x^n.
    double fscale_exponent = 4.0;
    //! Clamp on the fscale argument, guarding div-by-zero bw_den(DDR).
    double x_max = 8.0;
    //! Bounds on the resulting period T.
    Tick min_period = usToTicks(200.0);
    Tick max_period = msToTicks(20.0);
    //! Hysteresis: rel_bw_den(DDR) must improve by this relative margin
    //! before another migration round is approved, suppressing churn on
    //! workloads already at equilibrium.
    double improvement_margin = 0.10;
    //! Circuit breaker (docs/FAULTS.md): open when the windowed
    //! transient-failure rate reaches this fraction...
    double breaker_fail_threshold = 0.5;
    //! ...over at least this many migrate_pages() attempts.
    std::uint64_t breaker_min_samples = 8;
    //! Evaluations to sit Open (pacing widened, no batches) before
    //! probing with a half-open round.
    std::uint64_t breaker_cooldown = 4;
    //! How much an Open breaker widens the evaluation period.
    double breaker_period_factor = 4.0;
};

/** Circuit-breaker state over migration transient-failure rate. */
enum class BreakerState : std::uint8_t
{
    Closed,   //!< Normal pacing.
    Open,     //!< Failure spike: pacing widened, batches withheld.
    HalfOpen, //!< Cooldown over: one probe batch allowed.
};

/** Human-readable breaker state name. */
const char *breakerStateName(BreakerState s);

/** One Elector evaluation result. */
struct ElectorDecision
{
    Tick period;       //!< T until the next evaluation.
    bool migrate;      //!< Invoke Promoter(Nominator()) this round?
    double rel_bw_den_ddr; //!< Diagnostic: the gating metric.
    bool breaker_open = false; //!< Migration withheld by the breaker.
};

/** The Algorithm 1 control loop (one evaluation per call). */
class Elector
{
  public:
    /** fscale signature: maps bw_den(CXL)/bw_den(DDR) to a multiplier. */
    using FScale = std::function<double(double)>;

    /**
     * @param cfg Tunables.
     * @param fscale Optional custom scaling function; default x^n.
     */
    explicit Elector(const ElectorConfig &cfg, FScale fscale = nullptr);

    /** Run one iteration of Algorithm 1 against fresh Monitor samples. */
    ElectorDecision evaluate(const Monitor &monitor);

    /**
     * Feed one promotion round's outcome into the breaker window.  The
     * Manager calls this after every Promoter round; with no fault
     * injection `failed` is always 0 and the breaker never opens.
     */
    void noteBatchOutcome(std::uint64_t attempted, std::uint64_t failed);

    /** Reset the previous-round state (including the breaker). */
    void reset();

    /** The configuration in use. */
    const ElectorConfig &config() const { return cfg_; }

    /** Algorithm 1 iterations executed. */
    std::uint64_t evaluations() const { return evaluations_; }

    /** Iterations that approved a migration round. */
    std::uint64_t approvals() const { return approvals_; }

    /** Current breaker state. */
    BreakerState breakerState() const { return breaker_; }

    /** Closed -> Open (or HalfOpen -> Open) transitions. */
    std::uint64_t breakerOpened() const { return breaker_opened_; }

    /** HalfOpen -> Closed recoveries. */
    std::uint64_t breakerClosed() const { return breaker_closed_; }

    /** Migration rounds withheld while Open. */
    std::uint64_t breakerDeferred() const { return breaker_deferred_; }

    /**
     * Register decision counters as `m5.elector.*` telemetry.  The
     * breaker counters are only published under fault injection
     * (docs/FAULTS.md).
     */
    void registerStats(StatRegistry &reg, bool faults_active = false) const;

  private:
    /** Breaker overlay on one base decision (runs every evaluation). */
    void applyBreaker(ElectorDecision &decision);

    ElectorConfig cfg_;
    FScale fscale_;
    double prev_rel_bw_den_ddr_ = -1.0;
    std::uint64_t evaluations_ = 0;
    std::uint64_t approvals_ = 0;

    BreakerState breaker_ = BreakerState::Closed;
    std::uint64_t window_attempted_ = 0;
    std::uint64_t window_failed_ = 0;
    std::uint64_t cooldown_left_ = 0;
    std::uint64_t breaker_opened_ = 0;
    std::uint64_t breaker_closed_ = 0;
    std::uint64_t breaker_deferred_ = 0;
};

} // namespace m5
