/**
 * @file
 * M5-manager Elector — §5.2 Algorithm 1.
 *
 * The Elector paces migration by the bandwidth-density ratio
 * bw_den(CXL)/bw_den(DDR) (Guideline 1: high CXL density means hot pages
 * wait there, so migrate soon and aggressively), and gates migration on
 * rel_bw_den(DDR) still increasing (Guideline 2: keep going while the last
 * batch helped).  fscale() is pluggable; the paper's sample policy uses
 * y = x^n with n in 3..6.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "m5/monitor.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Elector tunables. */
struct ElectorConfig
{
    //! Default migration frequency in events per second of simulated time.
    double f_default = 1000.0;
    //! Exponent n of the default fscale(x) = x^n.
    double fscale_exponent = 4.0;
    //! Clamp on the fscale argument, guarding div-by-zero bw_den(DDR).
    double x_max = 8.0;
    //! Bounds on the resulting period T.
    Tick min_period = usToTicks(200.0);
    Tick max_period = msToTicks(20.0);
    //! Hysteresis: rel_bw_den(DDR) must improve by this relative margin
    //! before another migration round is approved, suppressing churn on
    //! workloads already at equilibrium.
    double improvement_margin = 0.10;
};

/** One Elector evaluation result. */
struct ElectorDecision
{
    Tick period;       //!< T until the next evaluation.
    bool migrate;      //!< Invoke Promoter(Nominator()) this round?
    double rel_bw_den_ddr; //!< Diagnostic: the gating metric.
};

/** The Algorithm 1 control loop (one evaluation per call). */
class Elector
{
  public:
    /** fscale signature: maps bw_den(CXL)/bw_den(DDR) to a multiplier. */
    using FScale = std::function<double(double)>;

    /**
     * @param cfg Tunables.
     * @param fscale Optional custom scaling function; default x^n.
     */
    explicit Elector(const ElectorConfig &cfg, FScale fscale = nullptr);

    /** Run one iteration of Algorithm 1 against fresh Monitor samples. */
    ElectorDecision evaluate(const Monitor &monitor);

    /** Reset the previous-round state. */
    void reset();

    /** The configuration in use. */
    const ElectorConfig &config() const { return cfg_; }

    /** Algorithm 1 iterations executed. */
    std::uint64_t evaluations() const { return evaluations_; }

    /** Iterations that approved a migration round. */
    std::uint64_t approvals() const { return approvals_; }

    /** Register decision counters as `m5.elector.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    ElectorConfig cfg_;
    FScale fscale_;
    double prev_rel_bw_den_ddr_ = -1.0;
    std::uint64_t evaluations_ = 0;
    std::uint64_t approvals_ = 0;
};

} // namespace m5
