#include "m5/promoter.hh"

#include "telemetry/prof.hh"
#include "telemetry/trace.hh"

namespace m5 {

Promoter::Promoter(const PageTable &pt, MigrationEngine &engine,
                   const RetryConfig &retry)
    : pt_(pt), engine_(engine), retry_(retry)
{
}

void
Promoter::drop(Vpn vpn, Tick now, const char *reason)
{
    ++stats_.dropped;
    engine_.noteDropped();
    TRACE_EVENT(TraceCat::Promote, now, "promoter.drop",
                TraceArgs().u("page", vpn).s("reason", reason));
}

void
Promoter::noteTransient(Vpn vpn, std::uint64_t attempts, Tick now)
{
    if (attempts >= retry_.max_attempts) {
        drop(vpn, now, "max_attempts");
        return;
    }
    if (retry_queue_.size() >= retry_.queue_capacity) {
        drop(vpn, now, "queue_full");
        return;
    }
    // Exponential backoff: base after the first failure, doubling per
    // further attempt.
    const Tick backoff = retry_.backoff_base << (attempts - 1);
    retry_queue_.push_back({vpn, attempts, now + backoff});
}

PromoteRound
Promoter::promote(const std::vector<Vpn> &vpns, Tick now)
{
    PROF_SCOPE("m5.promoter.promote");
    PromoteRound round;
    std::size_t issued = 0;
    std::size_t rejected = 0;

    // Re-attempt due retries first (FIFO among due entries).  With no
    // fault injection the queue is always empty and this is a no-op.
    const std::size_t pending = retry_queue_.size();
    for (std::size_t i = 0; i < pending; ++i) {
        RetryEntry entry = retry_queue_.front();
        retry_queue_.pop_front();
        if (entry.not_before > now) {
            retry_queue_.push_back(entry); // Not due yet; keep waiting.
            continue;
        }
        if (!engine_.canPromote(entry.vpn))
            continue; // Moved or unmapped since it failed; retry moot.
        ++stats_.retried;
        engine_.noteRetry();
        TRACE_EVENT(TraceCat::Promote, now + round.busy, "promoter.retry",
                    TraceArgs().u("page", entry.vpn)
                               .u("attempt", entry.attempts + 1));
        ++issued;
        ++round.attempted;
        MigrateResult res = engine_.promote(entry.vpn, now + round.busy);
        round.busy += res.busy;
        if (res.ok()) {
            ++stats_.retry_succeeded;
        } else if (res.transient()) {
            ++round.failed;
            noteTransient(entry.vpn, entry.attempts + 1, now + round.busy);
        }
    }

    for (Vpn vpn : vpns) {
        ++stats_.requested;
        if (!engine_.canPromote(vpn)) {
            ++stats_.rejected;
            ++rejected;
            TRACE_EVENT(TraceCat::Promote, now + round.busy,
                        "promoter.reject",
                        TraceArgs().u("page", vpn)
                                   .s("reason", pt_.pte(vpn).pinned
                                          ? "pinned" : "not_on_cxl"));
            continue;
        }
        ++stats_.accepted;
        ++issued;
        ++round.attempted;
        TRACE_EVENT(TraceCat::Promote, now + round.busy, "promoter.accept",
                    TraceArgs().u("page", vpn));
        MigrateResult res = engine_.promote(vpn, now + round.busy);
        round.busy += res.busy;
        if (res.transient()) {
            ++round.failed;
            noteTransient(vpn, 1, now + round.busy);
        }
    }
    engine_.noteBatch(issued);
    if (!vpns.empty()) {
        TRACE_SPAN(TraceCat::Promote, now, round.busy, "promoter.batch",
                   TraceArgs().u("requested", vpns.size())
                              .u("accepted", issued)
                              .u("rejected", rejected));
    }
    return round;
}

void
Promoter::registerStats(StatRegistry &reg) const
{
    reg.addCounter("m5.promoter.requested", &stats_.requested);
    reg.addCounter("m5.promoter.accepted", &stats_.accepted);
    reg.addCounter("m5.promoter.rejected", &stats_.rejected);
    // Gated like the engine's resilience counters (docs/FAULTS.md).
    if (engine_.faultsActive()) {
        reg.addCounter("m5.promoter.retried", &stats_.retried);
        reg.addCounter("m5.promoter.retry_succeeded",
                       &stats_.retry_succeeded);
        reg.addCounter("m5.promoter.dropped", &stats_.dropped);
    }
}

} // namespace m5
