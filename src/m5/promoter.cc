#include "m5/promoter.hh"

namespace m5 {

Promoter::Promoter(const PageTable &pt, MigrationEngine &engine)
    : pt_(pt), engine_(engine)
{
}

Tick
Promoter::promote(const std::vector<Vpn> &vpns, Tick now)
{
    Tick elapsed = 0;
    for (Vpn vpn : vpns) {
        ++stats_.requested;
        if (!engine_.canPromote(vpn)) {
            ++stats_.rejected;
            continue;
        }
        ++stats_.accepted;
        elapsed += engine_.promote(vpn, now + elapsed);
    }
    return elapsed;
}

} // namespace m5
