#include "m5/promoter.hh"

namespace m5 {

Promoter::Promoter(const PageTable &pt, MigrationEngine &engine)
    : pt_(pt), engine_(engine)
{
}

Tick
Promoter::promote(const std::vector<Vpn> &vpns, Tick now)
{
    Tick elapsed = 0;
    std::size_t issued = 0;
    for (Vpn vpn : vpns) {
        ++stats_.requested;
        if (!engine_.canPromote(vpn)) {
            ++stats_.rejected;
            continue;
        }
        ++stats_.accepted;
        ++issued;
        elapsed += engine_.promote(vpn, now + elapsed);
    }
    engine_.noteBatch(issued);
    return elapsed;
}

void
Promoter::registerStats(StatRegistry &reg) const
{
    reg.addCounter("m5.promoter.requested", &stats_.requested);
    reg.addCounter("m5.promoter.accepted", &stats_.accepted);
    reg.addCounter("m5.promoter.rejected", &stats_.rejected);
}

} // namespace m5
