#include "m5/promoter.hh"

#include "telemetry/trace.hh"

namespace m5 {

Promoter::Promoter(const PageTable &pt, MigrationEngine &engine)
    : pt_(pt), engine_(engine)
{
}

Tick
Promoter::promote(const std::vector<Vpn> &vpns, Tick now)
{
    Tick elapsed = 0;
    std::size_t issued = 0;
    std::size_t rejected = 0;
    for (Vpn vpn : vpns) {
        ++stats_.requested;
        if (!engine_.canPromote(vpn)) {
            ++stats_.rejected;
            ++rejected;
            TRACE_EVENT(TraceCat::Promote, now + elapsed,
                        "promoter.reject",
                        TraceArgs().u("page", vpn)
                                   .s("reason", pt_.pte(vpn).pinned
                                          ? "pinned" : "not_on_cxl"));
            continue;
        }
        ++stats_.accepted;
        ++issued;
        TRACE_EVENT(TraceCat::Promote, now + elapsed, "promoter.accept",
                    TraceArgs().u("page", vpn));
        elapsed += engine_.promote(vpn, now + elapsed);
    }
    engine_.noteBatch(issued);
    if (!vpns.empty()) {
        TRACE_SPAN(TraceCat::Promote, now, elapsed, "promoter.batch",
                   TraceArgs().u("requested", vpns.size())
                              .u("accepted", issued)
                              .u("rejected", rejected));
    }
    return elapsed;
}

void
Promoter::registerStats(StatRegistry &reg) const
{
    reg.addCounter("m5.promoter.requested", &stats_.requested);
    reg.addCounter("m5.promoter.accepted", &stats_.accepted);
    reg.addCounter("m5.promoter.rejected", &stats_.rejected);
}

} // namespace m5
