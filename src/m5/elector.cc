#include "m5/elector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "telemetry/prof.hh"

namespace m5 {

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half_open";
      default: m5_panic("bad BreakerState %u", static_cast<unsigned>(s));
    }
}

Elector::Elector(const ElectorConfig &cfg, FScale fscale)
    : cfg_(cfg), fscale_(std::move(fscale))
{
    m5_assert(cfg.f_default > 0.0, "Elector needs f_default > 0");
    m5_assert(cfg.min_period > 0 && cfg.min_period <= cfg.max_period,
              "bad Elector period bounds");
    if (!fscale_) {
        const double n = cfg_.fscale_exponent;
        fscale_ = [n](double x) { return std::pow(x, n); };
    }
}

ElectorDecision
Elector::evaluate(const Monitor &monitor)
{
    PROF_SCOPE("m5.elector.evaluate");
    // Line 2: T = 1 / (fscale(bw_den(CXL)/bw_den(DDR)) * f_default).
    // "CXL" aggregates every tier below the top in an N-tier topology.
    const double den_ddr = monitor.bwDen(kNodeDdr);
    const double den_cxl = monitor.bwDenLower();
    double x = den_ddr > 0.0 ? den_cxl / den_ddr
                             : (den_cxl > 0.0 ? cfg_.x_max : 1.0);
    x = std::clamp(x, 0.0, cfg_.x_max);
    const double scale = std::max(fscale_(x), 1e-9);
    const double t_seconds = 1.0 / (scale * cfg_.f_default);
    const Tick period = std::clamp(secondsToTicks(t_seconds),
                                   cfg_.min_period, cfg_.max_period);

    // Lines 4-8: migrate while rel_bw_den(DDR) keeps increasing.  While
    // DDR still has free frames, promotion cannot displace anything
    // hotter, so the bootstrap fill is unconditionally allowed (§7:
    // migration first uses up the 3GB DDR allowance).
    const double rel = monitor.relBwDen(kNodeDdr);
    const bool bootstrap = monitor.freeFrames(kNodeDdr) > 0;
    const double margin =
        std::abs(prev_rel_bw_den_ddr_) * cfg_.improvement_margin;
    const bool migrate =
        bootstrap || rel - prev_rel_bw_den_ddr_ > margin;
    prev_rel_bw_den_ddr_ = rel;
    ++evaluations_;

    // Guideline 1: while DDR frames sit free, migrate "as soon and as
    // aggressively as possible" — run the loop at its minimum period.
    ElectorDecision decision{bootstrap ? cfg_.min_period : period,
                             migrate, rel, false};
    applyBreaker(decision);
    if (decision.migrate)
        ++approvals_;
    return decision;
}

void
Elector::noteBatchOutcome(std::uint64_t attempted, std::uint64_t failed)
{
    window_attempted_ += attempted;
    window_failed_ += failed;
}

void
Elector::applyBreaker(ElectorDecision &decision)
{
    // With no fault injection every window has failed == 0, the rate
    // check never trips and the base decision passes through untouched
    // — the breaker is behaviorally inert (docs/FAULTS.md).
    auto window_tripped = [&] {
        return window_attempted_ >= cfg_.breaker_min_samples &&
               static_cast<double>(window_failed_) >=
                   cfg_.breaker_fail_threshold *
                       static_cast<double>(window_attempted_);
    };
    auto reset_window = [&] {
        window_attempted_ = 0;
        window_failed_ = 0;
    };

    switch (breaker_) {
      case BreakerState::Closed:
        if (window_tripped()) {
            breaker_ = BreakerState::Open;
            ++breaker_opened_;
            cooldown_left_ = cfg_.breaker_cooldown;
            reset_window();
        } else if (window_attempted_ >= cfg_.breaker_min_samples) {
            reset_window(); // Healthy window; start a fresh one.
        }
        break;
      case BreakerState::HalfOpen:
        // Judge the probe round issued while half-open; a probe batch
        // may be smaller than min_samples, so judge on rate alone.
        if (window_attempted_ > 0) {
            if (static_cast<double>(window_failed_) >=
                cfg_.breaker_fail_threshold *
                    static_cast<double>(window_attempted_)) {
                breaker_ = BreakerState::Open;
                ++breaker_opened_;
                cooldown_left_ = cfg_.breaker_cooldown;
            } else {
                breaker_ = BreakerState::Closed;
                ++breaker_closed_;
            }
            reset_window();
        }
        break;
      case BreakerState::Open:
        break;
    }

    if (breaker_ == BreakerState::Open) {
        // Widen pacing and withhold the batch while the failure spike
        // cools off.
        decision.period = static_cast<Tick>(
            static_cast<double>(decision.period) *
            cfg_.breaker_period_factor);
        if (decision.migrate)
            ++breaker_deferred_;
        decision.migrate = false;
        decision.breaker_open = true;
        if (cooldown_left_ > 0 && --cooldown_left_ == 0)
            breaker_ = BreakerState::HalfOpen;
    }
}

void
Elector::reset()
{
    prev_rel_bw_den_ddr_ = -1.0;
    breaker_ = BreakerState::Closed;
    window_attempted_ = 0;
    window_failed_ = 0;
    cooldown_left_ = 0;
}

void
Elector::registerStats(StatRegistry &reg, bool faults_active) const
{
    reg.addCounter("m5.elector.evaluations", &evaluations_);
    reg.addCounter("m5.elector.approvals", &approvals_);
    if (faults_active) {
        reg.addCounter("m5.elector.breaker_opened", &breaker_opened_);
        reg.addCounter("m5.elector.breaker_closed", &breaker_closed_);
        reg.addCounter("m5.elector.breaker_deferred", &breaker_deferred_);
    }
}

} // namespace m5
