#include "m5/elector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace m5 {

Elector::Elector(const ElectorConfig &cfg, FScale fscale)
    : cfg_(cfg), fscale_(std::move(fscale))
{
    m5_assert(cfg.f_default > 0.0, "Elector needs f_default > 0");
    m5_assert(cfg.min_period > 0 && cfg.min_period <= cfg.max_period,
              "bad Elector period bounds");
    if (!fscale_) {
        const double n = cfg_.fscale_exponent;
        fscale_ = [n](double x) { return std::pow(x, n); };
    }
}

ElectorDecision
Elector::evaluate(const Monitor &monitor)
{
    // Line 2: T = 1 / (fscale(bw_den(CXL)/bw_den(DDR)) * f_default).
    const double den_ddr = monitor.bwDen(kNodeDdr);
    const double den_cxl = monitor.bwDen(kNodeCxl);
    double x = den_ddr > 0.0 ? den_cxl / den_ddr
                             : (den_cxl > 0.0 ? cfg_.x_max : 1.0);
    x = std::clamp(x, 0.0, cfg_.x_max);
    const double scale = std::max(fscale_(x), 1e-9);
    const double t_seconds = 1.0 / (scale * cfg_.f_default);
    const Tick period = std::clamp(secondsToTicks(t_seconds),
                                   cfg_.min_period, cfg_.max_period);

    // Lines 4-8: migrate while rel_bw_den(DDR) keeps increasing.  While
    // DDR still has free frames, promotion cannot displace anything
    // hotter, so the bootstrap fill is unconditionally allowed (§7:
    // migration first uses up the 3GB DDR allowance).
    const double rel = monitor.relBwDen(kNodeDdr);
    const bool bootstrap = monitor.freeFrames(kNodeDdr) > 0;
    const double margin =
        std::abs(prev_rel_bw_den_ddr_) * cfg_.improvement_margin;
    const bool migrate =
        bootstrap || rel - prev_rel_bw_den_ddr_ > margin;
    prev_rel_bw_den_ddr_ = rel;
    ++evaluations_;
    if (migrate)
        ++approvals_;

    // Guideline 1: while DDR frames sit free, migrate "as soon and as
    // aggressively as possible" — run the loop at its minimum period.
    return {bootstrap ? cfg_.min_period : period, migrate, rel};
}

void
Elector::reset()
{
    prev_rel_bw_den_ddr_ = -1.0;
}

void
Elector::registerStats(StatRegistry &reg) const
{
    reg.addCounter("m5.elector.evaluations", &evaluations_);
    reg.addCounter("m5.elector.approvals", &approvals_);
}

} // namespace m5
