#include "fault/fault.hh"

#include <cstddef>

#include "common/env.hh"
#include "common/logging.hh"

namespace m5 {

namespace {

/** Seed salt: fault decisions come from their own stream, never the
 *  workload's (the byte-identity guarantee in docs/FAULTS.md). */
constexpr std::uint64_t kFaultSeedSalt = 0xfa417c0de5eedULL;

/** Default wake-fault magnitudes when the rule omits `delay=`. */
constexpr Tick kDefaultWakeDelay = usToTicks(500);
constexpr Tick kDefaultWakeDropRetry = msToTicks(1);

std::optional<FaultPoint>
faultPointOf(const std::string &name)
{
    for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
        auto pt = static_cast<FaultPoint>(i);
        if (name == faultPointName(pt))
            return pt;
    }
    return std::nullopt;
}

} // namespace

const char *
faultPointName(FaultPoint pt)
{
    switch (pt) {
      case FaultPoint::MigrateBusy: return "migrate_busy";
      case FaultPoint::DdrAlloc: return "ddr_alloc";
      case FaultPoint::MmioStale: return "mmio_stale";
      case FaultPoint::WakeDelay: return "wake_delay";
      case FaultPoint::WakeDrop: return "wake_drop";
      case FaultPoint::CopyRace: return "copy_race";
      default: m5_panic("bad FaultPoint %u", static_cast<unsigned>(pt));
    }
}

Tick
parseDuration(const std::string &text, const std::string &context)
{
    double scale = 1.0; // ns
    std::string num = text;
    auto ends_with = [&](const char *suffix) {
        std::string s(suffix);
        return num.size() > s.size() &&
               num.compare(num.size() - s.size(), s.size(), s) == 0;
    };
    if (ends_with("ns")) {
        num.resize(num.size() - 2);
    } else if (ends_with("us")) {
        scale = 1e3;
        num.resize(num.size() - 2);
    } else if (ends_with("ms")) {
        scale = 1e6;
        num.resize(num.size() - 2);
    } else if (ends_with("s")) {
        scale = 1e9;
        num.resize(num.size() - 1);
    }
    auto v = parseDouble(num);
    if (!v || *v < 0)
        m5_fatal("%s: bad duration '%s' (want <number>[ns|us|ms|s])",
                 context.c_str(), text.c_str());
    return static_cast<Tick>(*v * scale);
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    plan.spec = spec;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string clause = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty())
            continue;

        std::size_t colon = clause.find(':');
        if (colon == std::string::npos)
            m5_fatal("fault spec clause '%s': want point:param=value",
                     clause.c_str());
        std::string point_name = clause.substr(0, colon);
        auto pt = faultPointOf(point_name);
        if (!pt)
            m5_fatal("fault spec clause '%s': unknown point '%s'",
                     clause.c_str(), point_name.c_str());
        FaultRule &rule = plan.rules[static_cast<std::size_t>(*pt)];

        std::string param = clause.substr(colon + 1);
        std::size_t eq = param.find('=');
        if (eq == std::string::npos)
            m5_fatal("fault spec clause '%s': want point:param=value",
                     clause.c_str());
        std::string key = param.substr(0, eq);
        std::string value = param.substr(eq + 1);

        if (key == "p") {
            auto p = parseDouble(value);
            if (!p || *p < 0.0 || *p > 1.0)
                m5_fatal("fault spec clause '%s': p wants a probability "
                         "in [0,1], got '%s'",
                         clause.c_str(), value.c_str());
            rule.p = *p;
        } else if (key == "burst") {
            std::size_t at = value.find('@');
            if (at == std::string::npos)
                m5_fatal("fault spec clause '%s': burst wants "
                         "<count>@<time>", clause.c_str());
            auto count = parseU64(value.substr(0, at));
            if (!count)
                m5_fatal("fault spec clause '%s': bad burst count '%s'",
                         clause.c_str(), value.substr(0, at).c_str());
            rule.burst_count = *count;
            rule.burst_at = parseDuration(value.substr(at + 1), clause);
        } else if (key == "after") {
            rule.after = parseDuration(value, clause);
            rule.has_after = true;
        } else if (key == "delay") {
            rule.delay = parseDuration(value, clause);
        } else {
            m5_fatal("fault spec clause '%s': unknown param '%s' "
                     "(want p/burst/after/delay)",
                     clause.c_str(), key.c_str());
        }
    }
    return plan;
}

bool
FaultPlan::inert() const
{
    for (const FaultRule &rule : rules) {
        if (rule.active())
            return false;
    }
    return true;
}

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan), rng_(seed ^ kFaultSeedSalt)
{
    for (std::size_t i = 0; i < kNumFaultPoints; ++i)
        burst_left_[i] = plan_.rules[i].burst_count;
}

bool
FaultInjector::fires(FaultPoint pt, Tick now)
{
    auto i = static_cast<std::size_t>(pt);
    const FaultRule &rule = plan_.rules[i];
    bool fire = false;
    if (rule.has_after && now >= rule.after) {
        fire = true;
    } else if (burst_left_[i] > 0 && now >= rule.burst_at) {
        --burst_left_[i];
        fire = true;
    } else if (rule.p > 0.0) {
        // Guarded so rules armed purely by burst/after — and inert
        // rules — never touch the stream.
        fire = rng_.chance(rule.p);
    }
    if (fire)
        ++injected_[i];
    return fire;
}

Tick
FaultInjector::delayFor(FaultPoint pt) const
{
    const FaultRule &rule = plan_.rules[static_cast<std::size_t>(pt)];
    if (rule.delay > 0)
        return rule.delay;
    return pt == FaultPoint::WakeDrop ? kDefaultWakeDropRetry
                                      : kDefaultWakeDelay;
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : injected_)
        total += n;
    return total;
}

void
FaultInjector::registerStats(StatRegistry &reg) const
{
    for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
        auto pt = static_cast<FaultPoint>(i);
        reg.addCounter(std::string("sim.fault.") + faultPointName(pt),
                       &injected_[i]);
    }
}

} // namespace m5
