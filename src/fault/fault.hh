/**
 * @file
 * Deterministic fault injection (docs/FAULTS.md).
 *
 * Real tiered-memory systems misbehave constantly: migrate_pages()
 * returns EBUSY under refcount races, the target node runs out of
 * frames mid-batch, MMIO snapshots from a saturated CXL controller
 * arrive stale, and the manager's wakeups slip under scheduler
 * pressure.  A FaultPlan makes the simulator misbehave the same way,
 * on demand and reproducibly: a spec string like
 *
 *   migrate_busy:p=0.05,mmio_stale:after=2ms,ddr_alloc:burst=100@5ms
 *
 * arms per-injection-point rules, and a FaultInjector draws every
 * probabilistic decision from its OWN seeded RNG stream — so a plan
 * whose rules can never fire (all probabilities 0, no bursts, no
 * deadlines) is byte-identical to a fault-free run, and two runs of
 * the same plan with the same seed inject the exact same faults.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** Where a fault can be injected. */
enum class FaultPoint : unsigned
{
    MigrateBusy = 0, //!< Transient migrate_pages() failure (EBUSY / pinned
                     //!< refcount race); the page stays at its source.
    DdrAlloc,        //!< DDR frame allocation fails (target-node pressure).
    MmioStale,       //!< HPT/HWT MMIO snapshot arrives stale / times out.
    WakeDelay,       //!< Manager wakeup delayed by the rule's `delay`.
    WakeDrop,        //!< Manager wakeup dropped; retried after `delay`.
    CopyRace,        //!< A store races the transactional page copy: the
                     //!< page's write generation is bumped inside the
                     //!< copy window, so validation aborts the txn.
    NumPoints,
};

inline constexpr std::size_t kNumFaultPoints =
    static_cast<std::size_t>(FaultPoint::NumPoints);

/** Spec name of a fault point ("migrate_busy", ...). */
const char *faultPointName(FaultPoint pt);

/** When one injection point fires (any armed trigger suffices). */
struct FaultRule
{
    double p = 0.0;                //!< Per-opportunity probability.
    std::uint64_t burst_count = 0; //!< `burst=N@T`: N consecutive hits...
    Tick burst_at = 0;             //!< ...starting at simulated time T.
    bool has_after = false;        //!< `after=T` armed?
    Tick after = 0;                //!< Every opportunity from T on fires.
    Tick delay = 0;                //!< `delay=T` magnitude (wake faults);
                                   //!< 0 = the point's default.

    /** True when this rule can ever fire. */
    bool
    active() const
    {
        return p > 0.0 || burst_count > 0 || has_after;
    }
};

/**
 * A parsed fault spec: one optional rule per injection point.
 *
 * Grammar (comma-separated clauses, each `point:param=value`):
 *   point  := migrate_busy | ddr_alloc | mmio_stale | wake_delay
 *             | wake_drop | copy_race
 *   param  := p=<prob 0..1> | burst=<count>@<time> | after=<time>
 *             | delay=<time>
 *   time   := <number>[ns|us|ms|s]   (default ns)
 * The same point may appear in several clauses; later params merge
 * into the same rule.  Malformed specs are fatal (strict parsing via
 * common/env.hh, like every other knob).
 */
struct FaultPlan
{
    std::string spec;                              //!< Original text.
    std::array<FaultRule, kNumFaultPoints> rules;

    /** Parse a spec string; m5_fatal on any malformed clause. */
    static FaultPlan parse(const std::string &spec);

    /** The rule for one injection point. */
    const FaultRule &
    rule(FaultPoint pt) const
    {
        return rules[static_cast<std::size_t>(pt)];
    }

    /** True when no rule can ever fire — such a plan must leave the
     *  simulation byte-identical to a fault-free run, so the system
     *  treats it exactly like "no plan". */
    bool inert() const;
};

/** Parse `<number>[ns|us|ms|s]` into Ticks; fatal on garbage. */
Tick parseDuration(const std::string &text, const std::string &context);

/**
 * Draws fault decisions for one system from a dedicated RNG stream.
 *
 * The stream is derived from the cell seed XOR a fixed salt, so fault
 * decisions never consume workload randomness (enabling a plan cannot
 * perturb anything else) and the same seed replays the same faults at
 * any sweep worker count.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /**
     * Should the fault at `pt` fire for this opportunity?  Consults,
     * in order: the `after` deadline, the pending burst, then a
     * probability draw (the RNG is only touched when p > 0, so rules
     * armed purely by burst/after stay draw-free).
     */
    bool fires(FaultPoint pt, Tick now);

    /** The `delay` magnitude for a wake fault (its default if unset). */
    Tick delayFor(FaultPoint pt) const;

    /** Faults injected at one point so far. */
    std::uint64_t
    injected(FaultPoint pt) const
    {
        return injected_[static_cast<std::size_t>(pt)];
    }

    /** Total faults injected across all points. */
    std::uint64_t injectedTotal() const;

    /** The plan in force. */
    const FaultPlan &plan() const { return plan_; }

    /** Register `sim.fault.<point>` injection counters. */
    void registerStats(StatRegistry &reg) const;

  private:
    FaultPlan plan_;
    Rng rng_;
    std::array<std::uint64_t, kNumFaultPoints> injected_{};
    std::array<std::uint64_t, kNumFaultPoints> burst_left_{};
};

} // namespace m5
