/**
 * @file
 * Kernel cost constants (cycles / ns) for the CPU-driven page-migration
 * machinery.
 *
 * These are first-order estimates consistent with the paper's measurements:
 * ANB/DAMON inflate kernel CPU cycles by 159%/277% on average (§4.2), page
 * migration costs ~54us per 4KB page (§7.2), and the DDR/CXL access-latency
 * delta is ~170ns, so a migrated page must absorb ≥ ~318 accesses to
 * amortize its migration (§7.2).
 */

#pragma once

#include "common/types.hh"

namespace m5 {

/** CPU frequency of the modelled Xeon 6430 (2.1 GHz). */
inline constexpr double kCpuGhz = 2.1;

/** Convert CPU cycles to nanoseconds. */
constexpr Tick
cyclesToNs(Cycles c)
{
    return static_cast<Tick>(static_cast<double>(c) / kCpuGhz);
}

/** Convert nanoseconds to CPU cycles. */
constexpr Cycles
nsToCycles(Tick ns)
{
    return static_cast<Cycles>(static_cast<double>(ns) * kCpuGhz);
}

namespace cost {

/** Scanning / clearing one PTE during an ANB unmap pass. */
inline constexpr Cycles kPteUnmap = 250;

/** One TLB shootdown IPI round (amortized per page unmapped in a batch). */
inline constexpr Cycles kTlbShootdown = 1200;

/** Servicing one NUMA hinting page fault (trap, vma walk, stats, return). */
inline constexpr Cycles kHintFault = 4200;

/** DAMON: checking + clearing one sampled PTE access bit. */
inline constexpr Cycles kDamonSampleCheck = 500;

/** DAMON: per-aggregation bookkeeping per region (split/merge, damos). */
inline constexpr Cycles kDamonAggregatePerRegion = 900;

/** Hardware page-table walk latency on a TLB miss (ns). */
inline constexpr Tick kPageWalkNs = 40;

/** End-to-end cost of migrating one 4KB page (~54us, §7.2).  The copy
 *  traffic itself is modelled explicitly; this constant is the kernel
 *  software overhead component (rmap walk, PTE update, TLB flush, LRU
 *  bookkeeping), chosen so copy + overhead ≈ 54us. */
inline constexpr Cycles kMigratePageSoftware = 64000;

/** Aborted migrate_pages() attempt (rmap walk + refcount check that hit
 *  EBUSY / a pinned refcount race, then unwound).  Much cheaper than a
 *  full migration but not free — the kernel still walked the page. */
inline constexpr Cycles kMigrateAbort = 8000;

/** Demoting a still-clean shadowed page (non-exclusive tiering): the
 *  CXL copy is already in place, so the kernel only pays the rmap walk,
 *  PTE flip and LRU bookkeeping — no copy traffic at all. */
inline constexpr Cycles kDemoteFreeSoftware = 6000;

/** Releasing one retained shadow frame (allocator free + ledger/LRU
 *  bookkeeping), paid on invalidation or lazy reclaim. */
inline constexpr Cycles kShadowRelease = 600;

/** DAMOS: examining one candidate page of a hot region for migration
 *  (vma/rmap validation), paid whether or not the page actually moves —
 *  the cost DAMON keeps paying at equilibrium (§7.2, Redis). */
inline constexpr Cycles kDamosAttempt = 1000;

/** M5-manager: user-space cost of one Elector evaluation (reads Monitor
 *  counters over MMIO + arithmetic).  Tiny by design (§5.2). */
inline constexpr Cycles kElectorEvaluate = 2500;

/** M5-manager: cost of one HPT/HWT MMIO query (K entries over CXL.io). */
inline constexpr Cycles kTrackerQuery = 1800;

} // namespace cost
} // namespace m5
