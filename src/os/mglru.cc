#include "os/mglru.hh"

#include "common/logging.hh"

namespace m5 {

// Generations live in a ring of G intrusive lists.  youngest_ names the
// slot receiving touched pages; the slot at circular distance G-1 behind it
// is the oldest.  Aging rotates the ring: the oldest slot's survivors are
// folded into the second-oldest, and the vacated slot becomes the new
// youngest.

MgLru::MgLru(std::size_t num_pages, unsigned num_gens)
    : num_pages_(num_pages), num_gens_(num_gens),
      next_(num_pages + num_gens), prev_(num_pages + num_gens),
      gen_(num_pages, kNotTracked)
{
    m5_assert(num_pages > 0, "MgLru needs pages");
    m5_assert(num_gens >= 2 && num_gens < kNotTracked,
              "MgLru needs 2..254 generations");
    for (unsigned g = 0; g < num_gens; ++g) {
        const std::size_t s = sentinel(g);
        next_[s] = static_cast<std::uint32_t>(s);
        prev_[s] = static_cast<std::uint32_t>(s);
    }
}

void
MgLru::unlink(std::size_t node)
{
    next_[prev_[node]] = next_[node];
    prev_[next_[node]] = prev_[node];
}

void
MgLru::pushHead(unsigned gen, std::size_t node)
{
    const std::size_t s = sentinel(gen);
    next_[node] = next_[s];
    prev_[node] = static_cast<std::uint32_t>(s);
    prev_[next_[s]] = static_cast<std::uint32_t>(node);
    next_[s] = static_cast<std::uint32_t>(node);
}

bool
MgLru::genEmpty(unsigned gen) const
{
    const std::size_t s = sentinel(gen);
    return next_[s] == s;
}

void
MgLru::insert(Vpn vpn)
{
    m5_assert(vpn < num_pages_, "vpn out of range");
    m5_assert(gen_[vpn] == kNotTracked, "vpn %lu already tracked",
              static_cast<unsigned long>(vpn));
    gen_[vpn] = static_cast<std::uint8_t>(youngest_slot_);
    pushHead(youngest_slot_, vpn);
    ++size_;
}

void
MgLru::remove(Vpn vpn)
{
    m5_assert(vpn < num_pages_, "vpn out of range");
    m5_assert(gen_[vpn] != kNotTracked, "vpn %lu not tracked",
              static_cast<unsigned long>(vpn));
    unlink(vpn);
    gen_[vpn] = kNotTracked;
    --size_;
}

void
MgLru::touch(Vpn vpn)
{
    m5_assert(vpn < num_pages_, "vpn out of range");
    if (gen_[vpn] == kNotTracked)
        return; // Not DDR-resident; nothing to refresh.
    if (gen_[vpn] == youngest_slot_)
        return;
    unlink(vpn);
    gen_[vpn] = static_cast<std::uint8_t>(youngest_slot_);
    pushHead(youngest_slot_, vpn);
}

void
MgLru::age()
{
    const unsigned oldest = (youngest_slot_ + 1) % num_gens_;
    const unsigned second = (youngest_slot_ + 2) % num_gens_;
    // Fold the oldest slot's survivors into the tail of the second-oldest
    // (they stay the coldest pages), relabelling as we go.
    const std::size_t so = sentinel(oldest);
    const std::size_t ss = sentinel(second);
    while (next_[so] != so) {
        const std::size_t node = prev_[so]; // Take from the tail.
        unlink(node);
        gen_[node] = static_cast<std::uint8_t>(second);
        // Push to the *tail* of second so relative order is preserved.
        next_[node] = static_cast<std::uint32_t>(ss);
        prev_[node] = prev_[ss];
        next_[prev_[ss]] = static_cast<std::uint32_t>(node);
        prev_[ss] = static_cast<std::uint32_t>(node);
    }
    youngest_slot_ = oldest;
}

std::vector<Vpn>
MgLru::pickVictims(std::size_t n)
{
    std::vector<Vpn> out;
    out.reserve(n);
    // Walk slots from oldest toward youngest.
    for (unsigned d = num_gens_ - 1; d >= 1 && out.size() < n; --d) {
        const unsigned slot = (youngest_slot_ + num_gens_ - d) % num_gens_;
        const std::size_t s = sentinel(slot);
        while (out.size() < n && prev_[s] != s) {
            const std::size_t node = prev_[s]; // Tail = least recent.
            unlink(node);
            gen_[node] = kNotTracked;
            --size_;
            out.push_back(static_cast<Vpn>(node));
        }
        if (d == 1)
            break;
    }
    // Fall back to the youngest generation if everything else is empty.
    const std::size_t sy = sentinel(youngest_slot_);
    while (out.size() < n && prev_[sy] != sy) {
        const std::size_t node = prev_[sy];
        unlink(node);
        gen_[node] = kNotTracked;
        --size_;
        out.push_back(static_cast<Vpn>(node));
    }
    return out;
}

std::optional<Vpn>
MgLru::peekVictim() const
{
    // Same slot walk as pickVictims, tails first, without unlinking.
    for (unsigned d = num_gens_ - 1; d >= 1; --d) {
        const unsigned slot = (youngest_slot_ + num_gens_ - d) % num_gens_;
        const std::size_t s = sentinel(slot);
        if (prev_[s] != s)
            return static_cast<Vpn>(prev_[s]);
        if (d == 1)
            break;
    }
    const std::size_t sy = sentinel(youngest_slot_);
    if (prev_[sy] != sy)
        return static_cast<Vpn>(prev_[sy]);
    return std::nullopt;
}

std::optional<Vpn>
MgLru::peekVictimWhere(const std::function<bool(Vpn)> &pred) const
{
    // Same slot walk as peekVictim, tails first, youngest slot last;
    // within a slot walk tail -> head so the coldest match wins.
    for (unsigned d = num_gens_ - 1; d >= 1; --d) {
        const unsigned slot = (youngest_slot_ + num_gens_ - d) % num_gens_;
        const std::size_t s = sentinel(slot);
        for (std::size_t node = prev_[s]; node != s; node = prev_[node]) {
            if (pred(static_cast<Vpn>(node)))
                return static_cast<Vpn>(node);
        }
        if (d == 1)
            break;
    }
    const std::size_t sy = sentinel(youngest_slot_);
    for (std::size_t node = prev_[sy]; node != sy; node = prev_[node]) {
        if (pred(static_cast<Vpn>(node)))
            return static_cast<Vpn>(node);
    }
    return std::nullopt;
}

std::optional<Vpn>
MgLru::pickVictimWhere(const std::function<bool(Vpn)> &pred)
{
    const auto victim = peekVictimWhere(pred);
    if (victim) {
        unlink(*victim);
        gen_[*victim] = kNotTracked;
        --size_;
    }
    return victim;
}

bool
MgLru::contains(Vpn vpn) const
{
    m5_assert(vpn < num_pages_, "vpn out of range");
    return gen_[vpn] != kNotTracked;
}

unsigned
MgLru::generationOf(Vpn vpn) const
{
    m5_assert(contains(vpn), "vpn %lu not tracked",
              static_cast<unsigned long>(vpn));
    const unsigned slot = gen_[vpn];
    return (youngest_slot_ + num_gens_ - slot) % num_gens_;
}

TierLrus::TierLrus(std::size_t num_pages, std::size_t num_tiers,
                   unsigned num_gens)
    : num_tiers_(num_tiers)
{
    m5_assert(num_tiers >= 2, "TierLrus needs >= 2 tiers");
    for (std::size_t n = 0; n + 1 < num_tiers; ++n)
        lrus_.push_back(std::make_unique<MgLru>(num_pages, num_gens));
}

MgLru &
TierLrus::lru(NodeId node)
{
    m5_assert(tracked(node), "tier %u keeps no LRU", node);
    return *lrus_[node];
}

const MgLru &
TierLrus::lru(NodeId node) const
{
    m5_assert(tracked(node), "tier %u keeps no LRU", node);
    return *lrus_[node];
}

void
TierLrus::insert(Vpn vpn, NodeId node)
{
    if (tracked(node))
        lrus_[node]->insert(vpn);
}

void
TierLrus::remove(Vpn vpn, NodeId node)
{
    if (tracked(node) && lrus_[node]->contains(vpn))
        lrus_[node]->remove(vpn);
}

void
TierLrus::touch(Vpn vpn, NodeId node)
{
    if (tracked(node))
        lrus_[node]->touch(vpn);
}

void
TierLrus::age()
{
    for (auto &lru : lrus_)
        lru->age();
}

} // namespace m5
