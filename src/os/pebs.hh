/**
 * @file
 * Sampling-based page migration — §2.1 Solution 3 (PEBS / Memtis).
 *
 * The CPU samples one out of every N LLC-miss addresses into a PEBS
 * buffer; when the buffer fills, an interrupt fires and the kernel
 * processes the samples, updating per-page hotness estimates.  A
 * Memtis-style policy classifies a page as hot when its (periodically
 * cooled) estimated count crosses an adaptive threshold sized so the hot
 * set fits the fast tier, and promotes hot pages under a rate limit.
 *
 * The paper could not evaluate Memtis because Intel PEBS cannot sample
 * LLC misses to CXL devices (§4 [67]); this model assumes that capability
 * exists, making the comparison the paper wanted possible in simulation.
 * It also reproduces the §4.2 endnote: at high sampling rates (1 in 100
 * misses) the interrupt processing alone costs double-digit percent
 * overhead [75].
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "os/daemon.hh"
#include "os/kernel_ledger.hh"
#include "os/migration.hh"
#include "os/page_table.hh"
#include "telemetry/registry.hh"

namespace m5 {

/** PEBS / Memtis tunables. */
struct PebsConfig
{
    std::uint64_t sample_period = 100; //!< Sample 1 of N LLC misses.
    std::size_t buffer_entries = 512;  //!< PEBS buffer capacity.
    Tick cooling_interval = msToTicks(20.0); //!< Histogram halving.
    //! Initial hot threshold (estimated samples per page).
    std::uint32_t initial_hot_threshold = 4;
    bool migrate = true;               //!< False = record-only.
    double promote_rate_pages_per_s = 24576.0;
    std::size_t hot_list_capacity = 128 * 1024;
};

/** Per-sample and per-interrupt costs. */
namespace cost {
/** Processing one PEBS record (decode, page lookup, histogram). */
inline constexpr Cycles kPebsSampleProcess = 250;
/** PEBS buffer-full interrupt entry/exit. */
inline constexpr Cycles kPebsInterrupt = 4000;
} // namespace cost

/** The Memtis-style sampling daemon. */
class MemtisDaemon : public PolicyDaemon
{
  public:
    MemtisDaemon(const PebsConfig &cfg, PageTable &pt,
                 KernelLedger &ledger, MigrationEngine &engine);

    Tick nextWake() const override { return next_wake_; }
    Tick wake(Tick now) override;
    std::string name() const override { return "Memtis"; }
    const HotPageList &hotPages() const override { return hot_list_; }

    /**
     * Access-path hook: one LLC miss to physical address pa of page vpn.
     * Returns CPU time consumed (non-zero only when the PEBS buffer
     * filled and the interrupt handler ran).
     */
    Tick onLlcMiss(Vpn vpn, Tick now);

    /** Samples taken so far. */
    std::uint64_t samplesTaken() const { return samples_taken_; }

    /** Buffer-full interrupts so far. */
    std::uint64_t interrupts() const { return interrupts_; }

    /** Current adaptive hot threshold. */
    std::uint32_t hotThreshold() const { return hot_threshold_; }

    /** Estimated (cooled) sample count of a page. */
    std::uint32_t estimate(Vpn vpn) const;

    /** Register sampling counters as `os.pebs.*` telemetry. */
    void registerStats(StatRegistry &reg) const;

  private:
    Tick drainBuffer(Tick now);
    void cool();
    void adaptThreshold();

    PebsConfig cfg_;
    PageTable &pt_;
    KernelLedger &ledger_;
    MigrationEngine &engine_;

    std::uint64_t miss_counter_ = 0;
    std::vector<Vpn> buffer_;
    std::unordered_map<Vpn, std::uint32_t> counts_;
    std::uint32_t hot_threshold_;
    Tick next_wake_;
    std::uint64_t samples_taken_ = 0;
    std::uint64_t interrupts_ = 0;
    double tokens_ = 0.0;
    Tick token_time_ = 0;
    HotPageList hot_list_;
};

} // namespace m5
